#!/usr/bin/env bash
# Perf ratchet for the scheduler scale benchmark (ROADMAP item 6).
#
# Runs the many-flows bench at a given scale and compares its
# wheel_events_per_s against the most recent committed entry in
# BENCH_many_flows.json with the same "flows" count. Fails (exit 1) when
# throughput drops below RATCHET_FRACTION of that baseline — a committed
# regression has to be deliberate: either fix it or re-baseline by
# appending the new line (make bench-many-flows) in the same PR.
#
# With no matching-scale baseline the check warns and passes, so new
# scales can be introduced without a chicken-and-egg failure.
#
# Usage: bench_ratchet.sh [FLOWS] [WALL_SECONDS]
#   FLOWS defaults to 2000 (the CI smoke scale; full scale is 100000 via
#   `make bench-many-flows`), WALL_SECONDS to 0.5.

set -eu
cd "$(dirname "$0")/.."

FLOWS="${1:-2000}"
WALL="${2:-0.5}"
BASELINE_FILE="BENCH_many_flows.json"
# Generous on purpose: shared CI runners jitter by tens of percent; the
# ratchet is for order-of-magnitude regressions (an accidental O(n log n)
# in the hot path), not micro-noise.
RATCHET_FRACTION="${RATCHET_FRACTION:-0.7}"

FRESH_LINE=$(dune exec bench/main.exe -- --many-flows --flows "$FLOWS" --wall "$WALL" | tail -n 1)
export FRESH_LINE
echo "fresh:    $FRESH_LINE"

python3 - "$FLOWS" "$BASELINE_FILE" "$RATCHET_FRACTION" <<'EOF'
import json, os, sys

flows, path, fraction = int(sys.argv[1]), sys.argv[2], float(sys.argv[3])
fresh = json.loads(os.environ["FRESH_LINE"])

baseline = None
try:
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if entry.get("bench") == "many_flows" and entry.get("flows") == flows:
                baseline = entry  # keep the last match: most recently committed
except FileNotFoundError:
    pass

if baseline is None:
    print(f"ratchet: no committed baseline for flows={flows} in {path}; "
          f"passing (append one with: make bench-many-flows)")
    sys.exit(0)

base_eps = float(baseline["wheel_events_per_s"])
fresh_eps = float(fresh["wheel_events_per_s"])
floor = fraction * base_eps
print(f"baseline: flows={flows} wheel_events_per_s={base_eps:.0f}")
print(f"ratchet:  fresh {fresh_eps:.0f} vs floor {floor:.0f} "
      f"({fraction:.0%} of baseline)")
if fresh_eps < floor:
    print(f"ratchet: FAILED -- wheel throughput regressed more than "
          f"{1 - fraction:.0%} below the committed baseline", file=sys.stderr)
    sys.exit(1)
print("ratchet: ok")
EOF
