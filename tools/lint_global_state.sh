#!/usr/bin/env bash
# Lint: no top-level mutable ref/counter state in lib/ outside the engine.
#
# Process-global mutable state in simulator code is a data race under
# Domain.spawn grid workers and leaks identity/statistics across jobs even
# sequentially, breaking byte-identical replay (see the per-sim packet-id
# allocator in Engine.Sim). This grep-based check fails the build when a
# top-level `ref` cell is (re)introduced in lib/.
#
# Two patterns are flagged:
#   1. a top-level binding directly to a ref:        let x = ref ...
#   2. the hidden-counter closure idiom:             let f =
#                                                      let n = ref 0 in
#                                                      fun () -> ...
# Local refs inside functions are fine and ignored.
#
# Allowlisted path prefixes (one per line, # comments) live next to this
# script in lint_global_state.allow; the engine's domain-local state
# (Trace.default, Sim ambient budgets) is deliberate and listed there.

set -u
cd "$(dirname "$0")/.."

allow_file="tools/lint_global_state.allow"
fail=0

allowed() {
  local f="$1"
  while IFS= read -r prefix; do
    case "$prefix" in ''|'#'*) continue ;; esac
    case "$f" in "$prefix"*) return 0 ;; esac
  done < "$allow_file"
  return 1
}

while IFS= read -r file; do
  if allowed "$file"; then continue; fi
  # Pattern 1: top-level `let x = ref ...` (column 0).
  hits=$(grep -nE '^let [^=]*= *ref\b' "$file")
  # Pattern 2: `let x =` at column 0 immediately followed by an indented
  # `let n = ref ... in` (a closure capturing a process-lifetime counter).
  # prev must be a parameterless value binding (`let name =`): a ref in
  # the body of a *function* definition is per-call state and fine.
  hits2=$(awk 'prev ~ /^let [A-Za-z_'"'"'0-9]+ =[[:space:]]*$/ && $0 ~ /^[[:space:]]+let [A-Za-z_]+ = ref .* in[[:space:]]*$/ { printf "%d:%s\n", NR, $0 } { prev = $0 }' "$file")
  if [ -n "$hits$hits2" ]; then
    fail=1
    printf '%s: top-level mutable ref state (move it into Engine.Sim or per-instance state):\n' "$file"
    [ -n "$hits" ] && printf '%s\n' "$hits"
    [ -n "$hits2" ] && printf '%s\n' "$hits2"
  fi
done < <(find lib -name '*.ml' | sort)

# Sans-IO boundary: wall clocks and sockets belong to lib/wire (the
# real-time runtime) alone. Protocol and experiment code gets time from
# Engine.Runtime / Engine.Sim, so a direct clock or socket call in any
# other library reintroduces scheduler-specific behavior the Runtime
# refactor removed. File IO (checkpoint stores, trace sinks) is fine.
while IFS= read -r file; do
  case "$file" in
    lib/wire/*) continue ;;
    # Wall-clock job metering for the supervision report — observability,
    # not protocol behavior; virtual time still comes from Sim.
    lib/exp/runner.ml) continue ;;
  esac
  hits=$(grep -nE 'Unix\.(gettimeofday|time\b|sleepf?|select|socket|recvfrom|sendto|setsockopt|bind .*ADDR_INET)' "$file")
  if [ -n "$hits" ]; then
    fail=1
    printf '%s: wall-clock/socket call outside lib/wire (use Engine.Runtime):\n' "$file"
    printf '%s\n' "$hits"
  fi
done < <(find lib -name '*.ml' | sort)

if [ "$fail" -ne 0 ]; then
  echo "lint_global_state: FAILED (see above)" >&2
  exit 1
fi
echo "lint_global_state: ok (no top-level mutable refs outside the allowlist; clocks and sockets confined to lib/wire)"
