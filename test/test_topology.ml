(* Tests for the arbitrary-topology layer: differential byte-identity of
   the graph-backed builders against the hand-wired ones, failure-impact
   classification on the transcontinental WAN, routing recomputation on
   link-state changes, builder teardown/in-flight accounting, and graph
   fuzz scenarios under parallel execution. *)

module TB = Netsim.Topo_builders.Transcontinental

(* --- Differential: graph builders vs hand-wired builders ------------------- *)

(* Run the same scenario through both constructions and demand identical
   outcomes down to the trace digest: the graph layer must not add,
   remove, reorder or re-time a single event. *)
let diff_case name (sc : Fuzz.Scenario.t) =
  let a = Fuzz.Oracle.run ~builders:`Legacy sc in
  let b = Fuzz.Oracle.run ~builders:`Graph sc in
  Alcotest.(check (list string))
    (name ^ ": legacy passes") [] (Fuzz.Oracle.failed_oracles a);
  Alcotest.(check (list string))
    (name ^ ": graph passes") [] (Fuzz.Oracle.failed_oracles b);
  Alcotest.(check int) (name ^ ": digest") a.Fuzz.Oracle.digest b.Fuzz.Oracle.digest;
  Alcotest.(check int) (name ^ ": events") a.Fuzz.Oracle.events b.Fuzz.Oracle.events;
  Alcotest.(check int)
    (name ^ ": delivered") a.Fuzz.Oracle.delivered b.Fuzz.Oracle.delivered

let flow ?(proto = Fuzz.Scenario.Tfrc) ?(rtt_base = 0.06) ?(start = 0.) ?hop () =
  { Fuzz.Scenario.proto; rtt_base; start; hop }

let base_sc ~id ~topology ~flows ~faults ~duration =
  {
    Fuzz.Scenario.id;
    sim_seed = 11;
    topology;
    bandwidth = 1.5e6;
    delay = 0.005;
    queue = Fuzz.Scenario.Droptail 25;
    flows;
    faults;
    duration;
  }

let test_diff_fig2_dumbbell () =
  diff_case "fig2 dumbbell"
    (base_sc ~id:"diff/fig2" ~topology:Fuzz.Scenario.Dumbbell
       ~flows:[ flow (); flow ~start:0.5 (); flow ~proto:Fuzz.Scenario.Tcp () ]
       ~faults:[] ~duration:8.)

let test_diff_dumbbell_link_faults () =
  diff_case "dumbbell link faults"
    (base_sc ~id:"diff/link-faults" ~topology:Fuzz.Scenario.Dumbbell
       ~flows:[ flow (); flow ~proto:Fuzz.Scenario.Tcp ~start:0.3 () ]
       ~faults:
         [
           Fuzz.Scenario.Outage { at = 3.; duration = 1.5 };
           Fuzz.Scenario.Flap
             { at = 6.; stop = 8.; period = 0.8; down_fraction = 0.5 };
           Fuzz.Scenario.Route_change { at = 9.; bandwidth_factor = 0.5 };
         ]
       ~duration:12.)

let test_diff_dumbbell_handler_faults () =
  diff_case "dumbbell handler faults"
    (base_sc ~id:"diff/handler-faults" ~topology:Fuzz.Scenario.Dumbbell
       ~flows:[ flow (); flow ~proto:Fuzz.Scenario.Tfrcp ~start:0.2 () ]
       ~faults:
         [
           Fuzz.Scenario.Reorder { p = 0.1; jitter = 0.02 };
           Fuzz.Scenario.Duplicate { p = 0.05; delay = 0.01 };
           Fuzz.Scenario.Corrupt { p = 0.03 };
           Fuzz.Scenario.Fb_blackout { at = 4.; duration = 1. };
         ]
       ~duration:10.)

let test_diff_path () =
  diff_case "path"
    (base_sc ~id:"diff/path" ~topology:Fuzz.Scenario.Path
       ~flows:[ flow ~proto:Fuzz.Scenario.Rap (); flow ~start:0.4 () ]
       ~faults:[ Fuzz.Scenario.Outage { at = 3.; duration = 1. } ]
       ~duration:8.)

let test_diff_parking_lot () =
  diff_case "parking lot"
    (base_sc ~id:"diff/parking-lot"
       ~topology:(Fuzz.Scenario.Parking_lot 3)
       ~flows:
         [
           flow ~rtt_base:0.1 ();
           flow ~rtt_base:0.08 ~hop:2 ~start:0.3 ();
           flow ~proto:Fuzz.Scenario.Tcp ~rtt_base:0.08 ~hop:1 ~start:0.6 ();
         ]
       ~faults:[ Fuzz.Scenario.Outage { at = 4.; duration = 1.5 } ]
       ~duration:10.)

(* --- Failure impact on the transcontinental WAN ---------------------------- *)

let impact_kind =
  Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Netsim.Topology.impact_str k))
    ( = )

let make_wan () =
  let sim = Engine.Sim.create () in
  let wan = TB.create (Engine.Sim.runtime sim) ~queue:(fun () ->
      Netsim.Droptail.create ~limit_pkts:40) ()
  in
  TB.add_flow wan ~flow:1 ~src:TB.Nyc ~dst:TB.Sfo ~access:0.002;
  TB.add_flow wan ~flow:2 ~src:TB.Nyc ~dst:TB.Chi ~access:0.002;
  TB.add_flow wan ~flow:3 ~src:TB.Atl ~dst:TB.Sfo ~access:0.002;
  wan

let impact_of wan label =
  Netsim.Topology.impact (TB.topology wan) (snd (TB.link wan label))

let kind flow impacts = List.assoc flow impacts

let test_impact_healthy () =
  let wan = make_wan () in
  let chi_den = impact_of wan "chi-den" in
  Alcotest.check impact_kind "coast re-routes around chi-den"
    Netsim.Topology.Rerouted (kind 1 chi_den);
  Alcotest.check impact_kind "short unaffected by chi-den"
    Netsim.Topology.Unaffected (kind 2 chi_den);
  Alcotest.check impact_kind "south unaffected by chi-den"
    Netsim.Topology.Unaffected (kind 3 chi_den);
  (* The ring has a detour for every single-segment failure. *)
  let nyc_chi = impact_of wan "nyc-chi" in
  Alcotest.check impact_kind "short re-routes the long way"
    Netsim.Topology.Rerouted (kind 2 nyc_chi);
  let atl_sfo = impact_of wan "atl-sfo" in
  Alcotest.check impact_kind "south re-routes over the north path"
    Netsim.Topology.Rerouted (kind 3 atl_sfo);
  Alcotest.check impact_kind "coast does not use the detour when healthy"
    Netsim.Topology.Unaffected (kind 1 atl_sfo)

let set_segment wan label up =
  Netsim.Link.set_up (fst (TB.link wan label)) up;
  let rev =
    match String.split_on_char '-' label with
    | [ a; b ] -> b ^ "-" ^ a
    | _ -> assert false
  in
  Netsim.Link.set_up (fst (TB.link wan rev)) up

let test_impact_partition_when_detour_dark () =
  let wan = make_wan () in
  set_segment wan "nyc-atl" false;
  set_segment wan "atl-sfo" false;
  let chi_den = impact_of wan "chi-den" in
  Alcotest.check impact_kind "coast partitioned without the detour"
    Netsim.Topology.Partitioned (kind 1 chi_den);
  Alcotest.check impact_kind "short still unaffected"
    Netsim.Topology.Unaffected (kind 2 chi_den);
  (* Bringing the detour back restores the re-route verdict. *)
  set_segment wan "nyc-atl" true;
  set_segment wan "atl-sfo" true;
  Alcotest.check impact_kind "coast re-routes again"
    Netsim.Topology.Rerouted (kind 1 (impact_of wan "chi-den"))

let test_recompute_on_state_change () =
  let wan = make_wan () in
  ignore (impact_of wan "chi-den");
  let before = Netsim.Topology.recomputes (TB.topology wan) in
  (* A second query without any state change reuses the tables... *)
  ignore (impact_of wan "chi-den");
  Alcotest.(check int)
    "no recompute without a state change" before
    (Netsim.Topology.recomputes (TB.topology wan));
  (* ...and a link outage invalidates them. *)
  set_segment wan "chi-den" false;
  ignore (impact_of wan "nyc-chi");
  Alcotest.(check bool) "outage triggers a recompute" true
    (Netsim.Topology.recomputes (TB.topology wan) > before)

(* --- Teardown cancels in-flight deliveries --------------------------------- *)

let mk_pkt rt ~now =
  Netsim.Packet.make rt ~flow:1 ~seq:0 ~size:1000 ~now Netsim.Packet.Data

let test_dumbbell_teardown () =
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  let db =
    Netsim.Dumbbell.create rt ~bandwidth:8e5 ~delay:0.005
      ~queue:(Netsim.Dumbbell.Droptail_q 50) ()
  in
  (* rtt_base 0.1 puts 22.5 ms of scheduled access delay on each side. *)
  Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.1;
  let received = ref 0 in
  Netsim.Dumbbell.set_dst_recv db ~flow:1 (fun _ -> incr received);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Dumbbell.src_sender db ~flow:1 (mk_pkt rt ~now:0.)));
  ignore
    (Engine.Sim.at sim 0.01 (fun () ->
         Alcotest.(check bool) "delivery pending mid-flight" true
           (Netsim.Dumbbell.in_flight db > 0);
         Netsim.Dumbbell.teardown db));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "cancelled delivery never arrives" 0 !received;
  Alcotest.(check int) "no pending handles" 0 (Netsim.Dumbbell.in_flight db)

let test_parking_lot_teardown () =
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  let pl =
    Netsim.Parking_lot.create rt ~hops:2 ~bandwidth:8e5 ~delay:0.005
      ~queue:(fun () -> Netsim.Droptail.create ~limit_pkts:50)
      ()
  in
  Netsim.Parking_lot.add_through_flow pl ~flow:1 ~rtt_base:0.1;
  let received = ref 0 in
  Netsim.Parking_lot.set_dst_recv pl ~flow:1 (fun _ -> incr received);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Parking_lot.src_sender pl ~flow:1 (mk_pkt rt ~now:0.)));
  ignore
    (Engine.Sim.at sim 0.005 (fun () ->
         Alcotest.(check bool) "delivery pending mid-flight" true
           (Netsim.Parking_lot.in_flight pl > 0);
         Netsim.Parking_lot.teardown pl));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "cancelled delivery never arrives" 0 !received;
  Alcotest.(check int) "no pending handles" 0 (Netsim.Parking_lot.in_flight pl)

let test_topology_teardown () =
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  let topo = Netsim.Topology.create rt () in
  let a = Netsim.Topology.add_node topo in
  let b = Netsim.Topology.add_node topo in
  ignore (Netsim.Topology.add_wire topo ~src:a ~dst:b 0.05);
  ignore (Netsim.Topology.add_wire topo ~src:b ~dst:a 0.05);
  Netsim.Topology.add_flow topo ~flow:1 ~src:a ~dst:b;
  let received = ref 0 in
  Netsim.Topology.set_dst_recv topo ~flow:1 (fun _ -> incr received);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Topology.src_sender topo ~flow:1 (mk_pkt rt ~now:0.)));
  ignore
    (Engine.Sim.at sim 0.01 (fun () ->
         Alcotest.(check bool) "wire delivery pending" true
           (Netsim.Topology.in_flight topo > 0);
         Netsim.Topology.teardown topo));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "cancelled delivery never arrives" 0 !received;
  Alcotest.(check int) "no pending deliveries" 0 (Netsim.Topology.in_flight topo)

(* --- Graph fuzz scenarios --------------------------------------------------- *)

let graph_sc ~id ~nodes ~extra ~faults =
  {
    Fuzz.Scenario.id;
    sim_seed = 23;
    topology = Fuzz.Scenario.Graph { nodes; extra };
    bandwidth = 1.5e6;
    delay = 0.004;
    queue = Fuzz.Scenario.Droptail 25;
    flows = [ flow ~rtt_base:0.1 (); flow ~rtt_base:0.1 ~start:0.5 () ];
    faults;
    duration = 8.;
  }

(* The oracle runs every scenario twice and compares running trace
   digests, so a pass certifies the graph build is deterministic. *)
let test_graph_scenario_passes () =
  let o =
    Fuzz.Oracle.run
      (graph_sc ~id:"graph/clean" ~nodes:4 ~extra:1 ~faults:[])
  in
  Alcotest.(check (list string)) "clean graph passes" []
    (Fuzz.Oracle.failed_oracles o);
  Alcotest.(check bool) "graph delivers traffic" true (o.Fuzz.Oracle.delivered > 0);
  let o =
    Fuzz.Oracle.run
      (graph_sc ~id:"graph/outage" ~nodes:5 ~extra:2
         ~faults:[ Fuzz.Scenario.Outage { at = 3.; duration = 2. } ])
  in
  Alcotest.(check (list string)) "graph with ring outage passes" []
    (Fuzz.Oracle.failed_oracles o)

(* Graph scenarios as runner jobs: -j 2 must reproduce -j 1 byte for
   byte (digests included), like every other grid in the repo. *)
let test_graph_parallel_identical () =
  let scs =
    [
      graph_sc ~id:"graph/j/0" ~nodes:3 ~extra:1 ~faults:[];
      graph_sc ~id:"graph/j/1" ~nodes:4 ~extra:2
        ~faults:[ Fuzz.Scenario.Outage { at = 2.; duration = 1. } ];
      graph_sc ~id:"graph/j/2" ~nodes:5 ~extra:0
        ~faults:[ Fuzz.Scenario.Flap
                    { at = 2.; stop = 5.; period = 1.; down_fraction = 0.5 } ];
    ]
  in
  let jobs =
    List.map
      (fun sc ->
        Exp.Job.make sc.Fuzz.Scenario.id (fun _rng ->
            let o = Fuzz.Oracle.run sc in
            [
              ("digest", Exp.Job.i o.Fuzz.Oracle.digest);
              ("events", Exp.Job.i o.Fuzz.Oracle.events);
              ("delivered", Exp.Job.i o.Fuzz.Oracle.delivered);
              ("failures", Exp.Job.i (List.length o.Fuzz.Oracle.failures));
            ]))
      scs
  in
  let r1 = Exp.Runner.run_jobs ~j:1 ~seed:5 jobs in
  let r2 = Exp.Runner.run_jobs ~j:2 ~seed:5 jobs in
  Alcotest.(check bool) "-j 2 graph results identical to -j 1" true (r1 = r2);
  List.iter
    (fun (key, res) ->
      Alcotest.(check int) (key ^ " has no failures") 0
        (Exp.Job.get_int res "failures"))
    r1

let () =
  Alcotest.run "topology"
    [
      ( "differential",
        [
          Alcotest.test_case "fig2-like dumbbell" `Quick test_diff_fig2_dumbbell;
          Alcotest.test_case "dumbbell link faults" `Quick
            test_diff_dumbbell_link_faults;
          Alcotest.test_case "dumbbell handler faults" `Quick
            test_diff_dumbbell_handler_faults;
          Alcotest.test_case "path" `Quick test_diff_path;
          Alcotest.test_case "parking lot" `Quick test_diff_parking_lot;
        ] );
      ( "impact",
        [
          Alcotest.test_case "healthy graph" `Quick test_impact_healthy;
          Alcotest.test_case "partition when detour dark" `Quick
            test_impact_partition_when_detour_dark;
          Alcotest.test_case "recompute on state change" `Quick
            test_recompute_on_state_change;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "dumbbell teardown" `Quick test_dumbbell_teardown;
          Alcotest.test_case "parking lot teardown" `Quick
            test_parking_lot_teardown;
          Alcotest.test_case "topology teardown" `Quick test_topology_teardown;
        ] );
      ( "graph-fuzz",
        [
          Alcotest.test_case "oracles pass" `Quick test_graph_scenario_passes;
          Alcotest.test_case "-j 1 vs -j 2" `Quick test_graph_parallel_identical;
        ] );
    ]
