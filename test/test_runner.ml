(* Tests for the job-grid runner stack: the Engine.Pool domain pool, keyed
   RNG derivation (with PCG32 regression vectors), the cancelled-event
   sweep in Sim.run, and -j 1 vs -j 4 determinism of experiment output. *)

open Alcotest

(* --- PCG32 regression vectors --------------------------------------------- *)

(* Pin the exact output stream: any change to the generator silently
   reshuffles every experiment, so it must be deliberate. Vectors computed
   from the PCG32 reference algorithm (64-bit LCG, XSH-RR output) with this
   module's seeding: create ~seed uses state = seed, inc = seed lxor
   0x5DEECE66. *)
let test_pcg32_vectors () =
  let draws rng n = List.init n (fun _ -> Engine.Rng.bits32 rng) in
  check (list int) "seed 42 stream"
    [
      2769531331; 2188781966; 4193296442; 1850888506; 4221111645; 466863641;
      2883053187; 818458958;
    ]
    (draws (Engine.Rng.create ~seed:42) 8);
  check (list int) "seed 0 stream"
    [ 260884357; 965165547; 1693052134; 1943596907 ]
    (draws (Engine.Rng.create ~seed:0) 4)

let test_for_key_vectors () =
  let rng = Engine.Rng.for_key ~seed:42 "fig5/p0.010" in
  check (list int) "keyed stream"
    [ 1380819778; 1811221958; 1871254712; 4125655132 ]
    (List.init 4 (fun _ -> Engine.Rng.bits32 rng))

(* --- (seed, key) stream independence --------------------------------------- *)

let test_for_key_reproducible () =
  let a = Engine.Rng.for_key ~seed:7 "fig6/red/8/4" in
  let b = Engine.Rng.for_key ~seed:7 "fig6/red/8/4" in
  for _ = 1 to 64 do
    check int "same (seed, key), same stream" (Engine.Rng.bits32 a)
      (Engine.Rng.bits32 b)
  done

(* Across a grid of keys (and a couple of seeds), every derived generator
   must give a distinct stream: compare 32-draw windows pairwise. for_key
   hashes the key into the PCG stream selector, and PCG32 streams are
   disjoint whenever the selectors differ. *)
let test_for_key_grid_independent () =
  let keys =
    List.concat_map
      (fun q ->
        List.concat_map
          (fun flows ->
            List.map
              (fun link -> Printf.sprintf "fig6/%s/%d/%d" q flows link)
              [ 4; 8; 16 ])
          [ 2; 8; 32 ])
      [ "droptail"; "red" ]
  in
  let windows =
    List.concat_map
      (fun seed ->
        List.map
          (fun key ->
            let rng = Engine.Rng.for_key ~seed key in
            List.init 32 (fun _ -> Engine.Rng.bits32 rng))
          keys)
      [ 1; 42 ]
  in
  let rec pairwise = function
    | [] -> ()
    | w :: rest ->
        List.iter
          (fun w' -> check bool "streams differ" true (w <> w'))
          rest;
        pairwise rest
  in
  pairwise windows

(* --- Engine.Pool ------------------------------------------------------------ *)

let test_pool_map_order () =
  let pool = Engine.Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      let items = Array.init 100 (fun i -> i) in
      let out = Engine.Pool.map pool (fun i -> (i * i) + 1) items in
      check (list int) "positional results"
        (Array.to_list (Array.map (fun i -> (i * i) + 1) items))
        (Array.to_list out))

let test_pool_map_exception () =
  let pool = Engine.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      check_raises "first task exception re-raised" (Failure "boom")
        (fun () ->
          ignore
            (Engine.Pool.map pool
               (fun i -> if i = 5 then failwith "boom" else i)
               (Array.init 10 (fun i -> i)))))

(* After a task raises, map must drop the batch's queued-but-unstarted
   tasks: with a single worker the failing head task is the only one that
   can have started, so the side-effect counter stays at zero. The pool
   itself must survive — the next batch runs normally. *)
let test_pool_map_drains_on_failure () =
  let pool = Engine.Pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      (try
         ignore
           (Engine.Pool.map pool
              (fun i ->
                if i = 0 then failwith "head task fails";
                Atomic.incr ran)
              (Array.init 64 (fun i -> i)))
       with Failure _ -> ());
      check int "queued tasks dropped, none ran" 0 (Atomic.get ran);
      let out = Engine.Pool.map pool (fun i -> i + 1) [| 1; 2; 3 |] in
      check (list int) "pool usable after failed batch" [ 2; 3; 4 ]
        (Array.to_list out))

(* try_map isolates failures per task: every task runs, failures come back
   as Error slots alongside the survivors' Ok values. *)
let test_pool_try_map_isolation () =
  let pool = Engine.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Engine.Pool.shutdown pool)
    (fun () ->
      let out =
        Engine.Pool.try_map pool
          (fun i -> if i mod 2 = 1 then failwith "odd" else i * 10)
          (Array.init 10 (fun i -> i))
      in
      check int "every slot filled" 10 (Array.length out);
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
              check bool "even task succeeded" true (i mod 2 = 0 && v = i * 10)
          | Error (Failure m, _) ->
              check bool "odd task failed" true (i mod 2 = 1 && m = "odd")
          | Error _ -> fail "unexpected exception kind")
        out)

let test_pool_use_after_shutdown () =
  let pool = Engine.Pool.create 2 in
  Engine.Pool.shutdown pool;
  Engine.Pool.shutdown pool (* idempotent *);
  check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Engine.Pool.map pool (fun i -> i) [| 1; 2 |]))

(* --- Sim cancelled-event sweep ---------------------------------------------- *)

(* A workload that schedules far-future events and immediately cancels them
   must not grow the heap without bound: Sim.run sweeps cancelled entries
   once they outnumber live ones. 50 ticks x 200 cancels = 10k dead handles
   total; without the sweep pending_events climbs to ~10k, with it each
   tick starts from a swept heap. *)
let test_cancel_heavy_bounded () =
  let sim = Engine.Sim.create () in
  let max_pending = ref 0 in
  let rec tick n =
    if n > 0 then begin
      max_pending := max !max_pending (Engine.Sim.pending_events sim);
      let hs =
        List.init 200 (fun i ->
            Engine.Sim.after sim (100. +. float_of_int i) (fun () -> ()))
      in
      List.iter Engine.Sim.cancel hs;
      ignore (Engine.Sim.after sim 0.01 (fun () -> tick (n - 1)))
    end
  in
  ignore (Engine.Sim.at sim 0.0 (fun () -> tick 50));
  Engine.Sim.run sim ~until:5.;
  check bool
    (Printf.sprintf "pending bounded (max seen %d)" !max_pending)
    true
    (!max_pending < 2000)

(* --- Runner determinism ------------------------------------------------------ *)

let run_to_string ~j id =
  match Exp.Registry.find id with
  | None -> fail ("unknown experiment " ^ id)
  | Some e ->
      let buf = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buf in
      ignore
        (Exp.Runner.run_experiment ~j ~full:false ~seed:42 e ppf
          : Exp.Runner.report);
      Format.pp_print_flush ppf ();
      Buffer.contents buf

let test_determinism_fig2 () =
  check string "fig2 -j1 = -j4" (run_to_string ~j:1 "fig2")
    (run_to_string ~j:4 "fig2")

let test_determinism_fig5 () =
  check string "fig5 -j1 = -j4" (run_to_string ~j:1 "fig5")
    (run_to_string ~j:4 "fig5")

(* fig6's full quick grid takes ~80 s per run, too slow to run twice here
   (the CI `all -j` smoke covers it); a 4-cell subset of its real jobs
   exercises the same code path. *)
let test_determinism_fig6_subset () =
  let subset e = List.filteri (fun i _ -> i < 4) (e.Exp.Registry.jobs ~full:false) in
  match Exp.Registry.find "fig6" with
  | None -> fail "unknown experiment fig6"
  | Some e ->
      let dump results =
        String.concat "\n"
          (List.map (fun (k, r) -> k ^ " " ^ Exp.Job.to_json r) results)
      in
      check string "fig6 subset -j1 = -j4"
        (dump (Exp.Runner.run_jobs ~j:1 ~seed:42 (subset e)))
        (dump (Exp.Runner.run_jobs ~j:4 ~seed:42 (subset e)))

(* --- Trace capture and merge ------------------------------------------------- *)

(* Jobs that emit to their domain's default bus: under -j 1 the events reach
   the coordinator's bus live; under -j N they are captured per job on the
   worker and replayed in job-list order. Observers must see the identical
   sequence either way. *)
let trace_jobs =
  List.init 6 (fun i ->
      Exp.Job.make (Printf.sprintf "trace-test/%d" i) (fun rng ->
          let bus = Engine.Trace.default () in
          let r = Engine.Rng.bits32 rng in
          Engine.Trace.emit bus ~time:(float_of_int i) ~cat:"test" ~name:"job"
            [ ("i", Engine.Trace.Int i); ("draw", Engine.Trace.Int r) ];
          Engine.Trace.emit bus ~time:(float_of_int i +. 0.5) ~cat:"test"
            ~name:"done" [];
          [ ("draw", Exp.Job.i r) ]))

let observed ~j =
  let bus = Engine.Trace.default () in
  let sink, captured = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let results =
    Fun.protect
      ~finally:(fun () -> Engine.Trace.remove_sink bus sink)
      (fun () -> Exp.Runner.run_jobs ~j ~seed:11 trace_jobs)
  in
  (results, captured ())

let test_trace_merge () =
  let r1, ev1 = observed ~j:1 in
  let r4, ev4 = observed ~j:4 in
  check bool "results equal" true (r1 = r4);
  check int "event count" (List.length ev1) (List.length ev4);
  check bool "event sequences equal" true (ev1 = ev4)

(* Packet ids are allocated per simulation, so traces that carry them (the
   "id" field on every link event) must be byte-identical between -j 1 and
   -j 4: with the old process-global allocator, worker scheduling decided
   which ids each job's packets got. Each job runs a small traced sim whose
   link events expose ids, through an outage to also exercise the drain
   path. *)
let id_jobs =
  List.init 4 (fun k ->
      Exp.Job.make (Printf.sprintf "ids/%d" k) (fun _rng ->
          let sim = Engine.Sim.create () in
          let link =
            Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:8e4 ~delay:0.01
              ~queue:(Netsim.Droptail.create ~limit_pkts:4)
              ~label:(Printf.sprintf "l%d" k) ()
          in
          let received = ref 0 in
          Netsim.Link.set_dest link (fun _ -> incr received);
          ignore
            (Engine.Sim.at sim 0. (fun () ->
                 for seq = 1 to 8 do
                   Netsim.Link.send link
                     (Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:k ~seq ~size:1000 ~now:0.
                        Netsim.Packet.Data)
                 done));
          Netsim.Faults.outage (Engine.Sim.runtime sim) link ~at:0.2 ~duration:0.2 ();
          Engine.Sim.run sim ~until:2.;
          [ ("received", Exp.Job.i !received) ]))

let observed_ids ~j =
  let bus = Engine.Trace.default () in
  let sink, captured = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let results =
    Fun.protect
      ~finally:(fun () -> Engine.Trace.remove_sink bus sink)
      (fun () -> Exp.Runner.run_jobs ~j ~seed:7 id_jobs)
  in
  (results, String.concat "\n" (List.map Engine.Trace.to_json (captured ())))

let test_determinism_packet_ids () =
  let r1, t1 = observed_ids ~j:1 in
  let r4, t4 = observed_ids ~j:4 in
  check bool "results equal" true (r1 = r4);
  check bool "trace non-empty" true (String.length t1 > 0);
  let mentions_id s =
    Astring.String.is_infix ~affix:"\"id\"" s
  in
  check bool "trace carries packet ids" true (mentions_id t1);
  check string "id-bearing trace byte-identical j1 vs j4" t1 t4

(* Captured worker events must be replayed even when the batch ultimately
   raises: a --trace file should show the work that was done, including the
   events of the job that failed. *)
let test_trace_replay_on_failure () =
  let jobs =
    List.init 4 (fun i ->
        Exp.Job.make (Printf.sprintf "replay-fail/%d" i) (fun _rng ->
            let bus = Engine.Trace.default () in
            Engine.Trace.emit bus ~time:(float_of_int i) ~cat:"test" ~name:"ran"
              [ ("i", Engine.Trace.Int i) ];
            if i = 2 then failwith "kaput";
            [ ("i", Exp.Job.i i) ]))
  in
  let bus = Engine.Trace.default () in
  let sink, captured = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let raised =
    Fun.protect
      ~finally:(fun () -> Engine.Trace.remove_sink bus sink)
      (fun () ->
        match Exp.Runner.run_jobs ~j:4 ~seed:3 jobs with
        | _ -> false
        | exception Failure m -> m = "kaput")
  in
  check bool "failure re-raised" true raised;
  let events = captured () in
  check (list string) "all jobs' events replayed, in job order"
    [ "0"; "1"; "2"; "3" ]
    (List.map
       (fun (e : Engine.Trace.event) -> Printf.sprintf "%.0f" e.time)
       events)

let () =
  run "runner"
    [
      ( "rng",
        [
          test_case "pcg32 regression vectors" `Quick test_pcg32_vectors;
          test_case "for_key vectors" `Quick test_for_key_vectors;
          test_case "for_key reproducible" `Quick test_for_key_reproducible;
          test_case "for_key grid independence" `Quick
            test_for_key_grid_independent;
        ] );
      ( "pool",
        [
          test_case "map keeps order" `Quick test_pool_map_order;
          test_case "map re-raises" `Quick test_pool_map_exception;
          test_case "map drains on failure" `Quick
            test_pool_map_drains_on_failure;
          test_case "try_map isolates failures" `Quick
            test_pool_try_map_isolation;
          test_case "use after shutdown" `Quick test_pool_use_after_shutdown;
        ] );
      ( "sim",
        [ test_case "cancel-heavy heap bounded" `Quick test_cancel_heavy_bounded ] );
      ( "determinism",
        [
          test_case "fig2 j1=j4" `Slow test_determinism_fig2;
          test_case "fig5 j1=j4" `Slow test_determinism_fig5;
          test_case "fig6 subset j1=j4" `Slow test_determinism_fig6_subset;
          test_case "trace capture merge" `Quick test_trace_merge;
          test_case "packet-id trace j1=j4" `Quick test_determinism_packet_ids;
          test_case "trace replay on failure" `Quick
            test_trace_replay_on_failure;
        ] );
    ]
