(* Heap-vs-wheel scheduler equivalence.

   The timing wheel is only admissible as the default backend because it is
   observationally identical to the binary heap: same (time, insertion-seq)
   pop order, hence byte-identical simulations and traces. These tests
   drive both backends with the same randomized programs — at the raw
   queue level and through full [Sim] runs with cancel/sweep churn and
   far-future timers — and require exact agreement. *)

let check = Alcotest.check
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Queue level ------------------------------------------------------- *)

(* A program is a list of instructions over time values; interleaved pops
   exercise the wheel mid-advance, not just after all pushes. *)
type instr = Push of float | Pop | Prune_mod of int

let run_heap prog =
  let q = Engine.Event_queue.create () in
  let tag = ref 0 in
  let out = ref [] in
  List.iter
    (fun i ->
      match i with
      | Push t ->
          incr tag;
          Engine.Event_queue.push q ~time:t !tag
      | Pop -> out := Engine.Event_queue.pop q :: !out
      | Prune_mod k -> Engine.Event_queue.prune q ~keep:(fun v -> v mod k <> 0))
    prog;
  let rec drain () =
    match Engine.Event_queue.pop q with
    | None -> ()
    | Some _ as r ->
        out := r :: !out;
        drain ()
  in
  drain ();
  List.rev !out

let run_wheel ~granularity ~slots ~levels prog =
  let q = Engine.Timing_wheel.create ~granularity ~slots ~levels () in
  let tag = ref 0 in
  let out = ref [] in
  List.iter
    (fun i ->
      match i with
      | Push t ->
          incr tag;
          Engine.Timing_wheel.push q ~time:t !tag
      | Pop -> out := Engine.Timing_wheel.pop q :: !out
      | Prune_mod k ->
          Engine.Timing_wheel.prune q ~keep:(fun v -> v mod k <> 0))
    prog;
  let rec drain () =
    match Engine.Timing_wheel.pop q with
    | None -> ()
    | Some _ as r ->
        out := r :: !out;
        drain ()
  in
  drain ();
  List.rev !out

(* Pops may interleave with pushes, but a popped time never exceeds a
   later-pushed one within the heap's semantics — both backends see the
   same prefix at every step, so simple sequence equality is the oracle. *)
let instr_gen =
  let open QCheck.Gen in
  let time =
    (* Mixed scales: sub-granularity clusters, in-window spread, and
       far-future overflow territory. *)
    oneof
      [
        float_bound_inclusive 0.001;
        float_bound_inclusive 10.;
        float_bound_inclusive 1e5;
        map (fun t -> 1e7 +. t) (float_bound_inclusive 1e7);
      ]
  in
  let instr =
    frequency
      [
        (6, map (fun t -> Push t) time);
        (3, return Pop);
        (1, map (fun k -> Prune_mod (2 + k)) (int_bound 3));
      ]
  in
  list_size (int_range 0 200) instr

let instr_print prog =
  String.concat ";"
    (List.map
       (function
         | Push t -> Printf.sprintf "push %g" t
         | Pop -> "pop"
         | Prune_mod k -> Printf.sprintf "prune%%%d" k)
       prog)

let prop_queue_equivalence =
  QCheck.Test.make ~name:"heap and wheel pop identically" ~count:300
    (QCheck.make ~print:instr_print instr_gen)
    (fun prog ->
      let expect = run_heap prog in
      List.for_all
        (fun (granularity, slots, levels) ->
          run_wheel ~granularity ~slots ~levels prog = expect)
        [ (1e-4, 256, 4); (1e-3, 4, 2); (0.1, 8, 1); (1e-6, 16, 3) ])

(* --- Sim level --------------------------------------------------------- *)

(* One deterministic pseudo-protocol: periodic per-flow timers that
   reschedule themselves, cancel and re-arm a watchdog on every fire (the
   churn that triggers [Sim]'s bulk sweeps), and occasionally plant a
   far-future timer that the horizon never reaches. Everything observable
   goes through the trace bus and an execution log. *)
let sim_program ~seed ~scheduler =
  let bus = Engine.Trace.create () in
  let sink, captured = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let sim = Engine.Sim.create ~trace:bus ~scheduler () in
  let rng = Engine.Rng.create ~seed in
  let log = Buffer.create 4096 in
  let nflows = 40 in
  let watchdog = Array.make nflows Engine.Sim.null_handle in
  let rec fire i () =
    Buffer.add_string log
      (Printf.sprintf "%d@%.9f;" i (Engine.Sim.now sim));
    Engine.Trace.emit bus ~time:(Engine.Sim.now sim) ~cat:"test" ~name:"fire"
      [ ("flow", Engine.Trace.Int i) ];
    Engine.Sim.cancel watchdog.(i);
    watchdog.(i) <- Engine.Sim.after sim 1.5 ignore;
    if Engine.Rng.bool rng ~p:0.05 then
      (* Far-future timer: lands in overflow territory for the wheel. *)
      ignore (Engine.Sim.after sim (1e6 +. Engine.Rng.float rng 1e6) ignore);
    ignore (Engine.Sim.after sim (0.01 +. Engine.Rng.float rng 0.3) (fire i))
  in
  for i = 0 to nflows - 1 do
    ignore (Engine.Sim.at sim (Engine.Rng.float rng 0.5) (fire i))
  done;
  Engine.Sim.run sim ~until:20.;
  Engine.Trace.remove_sink bus sink;
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\n" (List.map Engine.Trace.to_json (captured ()))))
  in
  (Buffer.contents log, digest, Engine.Sim.pending_events sim)

let test_sim_equivalence () =
  List.iter
    (fun seed ->
      let log_h, digest_h, pending_h = sim_program ~seed ~scheduler:`Heap in
      let log_w, digest_w, pending_w = sim_program ~seed ~scheduler:`Wheel in
      check Alcotest.string
        (Printf.sprintf "execution log (seed %d)" seed)
        log_h log_w;
      check Alcotest.string
        (Printf.sprintf "trace digest (seed %d)" seed)
        digest_h digest_w;
      check Alcotest.int
        (Printf.sprintf "pending after run (seed %d)" seed)
        pending_h pending_w)
    [ 1; 42; 1337 ]

(* Same program under an explicit sweep-heavy regime: cancel far more than
   fires, so both backends cross the sweep threshold repeatedly. *)
let test_sim_sweep_equivalence () =
  let run scheduler =
    let sim = Engine.Sim.create ~scheduler () in
    let log = Buffer.create 1024 in
    let rec churn n () =
      Buffer.add_string log (Printf.sprintf "%d@%.9f;" n (Engine.Sim.now sim));
      if n < 400 then begin
        (* Arm a cohort of decoys and cancel them all immediately. *)
        let decoys =
          List.init 16 (fun k ->
              Engine.Sim.after sim (0.5 +. (float_of_int k *. 0.01)) ignore)
        in
        List.iter Engine.Sim.cancel decoys;
        ignore (Engine.Sim.after sim 0.001 (churn (n + 1)))
      end
    in
    ignore (Engine.Sim.at sim 0. (churn 0));
    Engine.Sim.run sim ~until:10.;
    Buffer.contents log
  in
  check Alcotest.string "sweep-heavy logs match" (run `Heap) (run `Wheel)

let () =
  Alcotest.run "scheduler"
    [
      ("queue", [ qtest prop_queue_equivalence ]);
      ( "sim",
        [
          Alcotest.test_case "trace equivalence" `Quick test_sim_equivalence;
          Alcotest.test_case "sweep-heavy equivalence" `Quick
            test_sim_sweep_equivalence;
        ] );
    ]
