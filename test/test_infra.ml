(* Tests for the supporting infrastructure added beyond the paper's core:
   packet tracer, parking-lot topology, dataset export, application-limited
   TFRC sending with rate validation. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

let pkt_sim = Engine.Sim.create ()

let mk_pkt ?(flow = 1) ~seq () =
  Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow ~seq ~size:1000 ~now:0. Netsim.Packet.Data

(* --- Tracer ----------------------------------------------------------------- *)

let test_tracer_records_in_order () =
  let now = ref 0. in
  let tr = Netsim.Tracer.create (fun () -> !now) in
  now := 1.;
  Netsim.Tracer.record tr Netsim.Tracer.Enqueue (mk_pkt ~seq:1 ());
  now := 2.;
  Netsim.Tracer.record tr Netsim.Tracer.Receive (mk_pkt ~seq:2 ());
  match Netsim.Tracer.events tr with
  | [ a; b ] ->
      checkf "first time" 1. a.Netsim.Tracer.time;
      Alcotest.(check int) "first seq" 1 a.Netsim.Tracer.seq;
      checkf "second time" 2. b.Netsim.Tracer.time;
      Alcotest.(check bool) "kinds" true
        (a.Netsim.Tracer.kind = Netsim.Tracer.Enqueue
        && b.Netsim.Tracer.kind = Netsim.Tracer.Receive)
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_tracer_limit () =
  let tr = Netsim.Tracer.create ~limit:3 (fun () -> 0.) in
  for i = 1 to 5 do
    Netsim.Tracer.record tr Netsim.Tracer.Drop (mk_pkt ~seq:i ())
  done;
  Alcotest.(check int) "capped" 3 (Netsim.Tracer.n_events tr);
  Alcotest.(check bool) "truncation flagged" true (Netsim.Tracer.truncated tr)

let test_tracer_filter () =
  let tr = Netsim.Tracer.create (fun () -> 0.) in
  Netsim.Tracer.record tr Netsim.Tracer.Receive (mk_pkt ~flow:1 ~seq:1 ());
  Netsim.Tracer.record tr Netsim.Tracer.Receive (mk_pkt ~flow:2 ~seq:2 ());
  Netsim.Tracer.record tr Netsim.Tracer.Receive (mk_pkt ~flow:1 ~seq:3 ());
  Alcotest.(check int) "flow 1 events" 2
    (List.length (Netsim.Tracer.filter tr ~flow:1))

let test_tracer_attach_link () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:1e5 ~delay:0.01
      ~queue:(Netsim.Droptail.create ~limit_pkts:2)
      ()
  in
  let received = ref 0 in
  Netsim.Link.set_dest link (fun _ -> incr received);
  let tr = Netsim.Tracer.create (fun () -> Engine.Sim.now sim) in
  Netsim.Tracer.attach_link tr link;
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 6 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  Engine.Sim.run sim ~until:2.;
  let events = Netsim.Tracer.events tr in
  let count k = List.length (List.filter (fun e -> e.Netsim.Tracer.kind = k) events) in
  Alcotest.(check int) "receives traced" 3 (count Netsim.Tracer.Receive);
  Alcotest.(check int) "drops traced" 3 (count Netsim.Tracer.Drop);
  Alcotest.(check int) "original dest still called" 3 !received

let test_tracer_pp () =
  let tr = Netsim.Tracer.create (fun () -> 1.5) in
  Netsim.Tracer.record tr Netsim.Tracer.Drop (mk_pkt ~flow:7 ~seq:3 ());
  match Netsim.Tracer.events tr with
  | [ e ] ->
      let s = Format.asprintf "%a" Netsim.Tracer.pp_event e in
      Alcotest.(check bool)
        (Printf.sprintf "trace line %S" s)
        true
        (String.length s > 0 && s.[0] = 'd')
  | _ -> Alcotest.fail "expected one event"

(* --- Parking lot --------------------------------------------------------------- *)

let make_lot ?(hops = 3) sim =
  Netsim.Parking_lot.create (Engine.Sim.runtime sim) ~hops ~bandwidth:1e7 ~delay:0.005
    ~queue:(fun () -> Netsim.Droptail.create ~limit_pkts:50)
    ()

let test_lot_through_flow_traverses_all_hops () =
  let sim = Engine.Sim.create () in
  let lot = make_lot sim in
  Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.1;
  let got = ref 0 in
  Netsim.Parking_lot.set_dst_recv lot ~flow:1 (fun _ -> incr got);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Parking_lot.src_sender lot ~flow:1 (mk_pkt ~seq:0 ())));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "delivered end to end" 1 !got;
  (* Every hop forwarded it. *)
  for hop = 1 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "hop %d forwarded" hop)
      1
      (Netsim.Link.queue (Netsim.Parking_lot.link lot ~hop)).Netsim.Queue_disc
        .stats
        .departures
  done

let test_lot_cross_flow_single_hop () =
  let sim = Engine.Sim.create () in
  let lot = make_lot sim in
  Netsim.Parking_lot.add_cross_flow lot ~flow:2 ~hop:2 ~rtt_base:0.05;
  let got = ref 0 in
  Netsim.Parking_lot.set_dst_recv lot ~flow:2 (fun _ -> incr got);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Parking_lot.src_sender lot ~flow:2 (mk_pkt ~flow:2 ~seq:0 ())));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "delivered" 1 !got;
  Alcotest.(check int) "hop 1 untouched" 0
    (Netsim.Link.queue (Netsim.Parking_lot.link lot ~hop:1)).Netsim.Queue_disc
      .stats
      .arrivals;
  Alcotest.(check int) "hop 3 untouched" 0
    (Netsim.Link.queue (Netsim.Parking_lot.link lot ~hop:3)).Netsim.Queue_disc
      .stats
      .arrivals

let test_lot_reverse_path () =
  let sim = Engine.Sim.create () in
  let lot = make_lot sim in
  Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.1;
  let echoed = ref 0. in
  Netsim.Parking_lot.set_dst_recv lot ~flow:1 (fun pkt ->
      Netsim.Parking_lot.dst_sender lot ~flow:1 pkt);
  Netsim.Parking_lot.set_src_recv lot ~flow:1 (fun _ ->
      echoed := Engine.Sim.now sim);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Parking_lot.src_sender lot ~flow:1 (mk_pkt ~seq:0 ())));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check bool)
    (Printf.sprintf "round trip ~0.1 s (got %.4f)" !echoed)
    true
    (Float.abs (!echoed -. 0.1) < 0.01)

let test_lot_validation () =
  let sim = Engine.Sim.create () in
  let lot = make_lot sim in
  Alcotest.check_raises "bad hop" (Invalid_argument "Parking_lot: bad hop")
    (fun () -> Netsim.Parking_lot.add_cross_flow lot ~flow:9 ~hop:4 ~rtt_base:0.1);
  Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.1;
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Parking_lot: flow 1 already exists") (fun () ->
      Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.1)

(* A TFRC through-flow on a parking lot shares each hop with cross TCP. *)
let test_lot_tfrc_end_to_end () =
  let sim = Engine.Sim.create () in
  let lot =
    Netsim.Parking_lot.create (Engine.Sim.runtime sim) ~hops:2
      ~bandwidth:(Engine.Units.mbps 2.)
      ~delay:0.01
      ~queue:(fun () -> Netsim.Droptail.create ~limit_pkts:25)
      ()
  in
  Netsim.Parking_lot.add_through_flow lot ~flow:1 ~rtt_base:0.08;
  let config = Tfrc.Tfrc_config.default () in
  let mon = Netsim.Flowmon.create (fun () -> Engine.Sim.now sim) in
  let receiver =
    Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1
      ~transmit:(Netsim.Parking_lot.dst_sender lot ~flow:1)
      ()
  in
  Netsim.Parking_lot.set_dst_recv lot ~flow:1
    (Netsim.Flowmon.wrap mon (Tfrc.Tfrc_receiver.recv receiver));
  let sender =
    Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1
      ~transmit:(Netsim.Parking_lot.src_sender lot ~flow:1)
      ()
  in
  Netsim.Parking_lot.set_src_recv lot ~flow:1 (Tfrc.Tfrc_sender.recv sender);
  Tfrc.Tfrc_sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:30.;
  let util =
    Netsim.Link.utilization (Netsim.Parking_lot.link lot ~hop:1) ~duration:30.
  in
  Alcotest.(check bool)
    (Printf.sprintf "TFRC fills the chain (util %.2f)" util)
    true (util > 0.8)

(* --- Dataset -------------------------------------------------------------------- *)

let test_dataset_disabled_noop () =
  Unix.putenv "TFRC_DATA_DIR" "";
  Alcotest.(check bool) "disabled" false (Exp.Dataset.enabled ());
  (* Must not raise or write anywhere. *)
  Exp.Dataset.write_xy ~name:"nope" ~x:"t" ~y:"v" [ (1., 2.) ]

let test_dataset_writes_file () =
  let dir = Filename.temp_file "tfrc_data" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Unix.putenv "TFRC_DATA_DIR" dir;
  Alcotest.(check bool) "enabled" true (Exp.Dataset.enabled ());
  Exp.Dataset.write_series ~name:"test" ~columns:[ "a"; "b"; "c" ]
    [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6.5 ] ];
  let ic = open_in (Filename.concat dir "test.dat") in
  let l1 = input_line ic and l2 = input_line ic and l3 = input_line ic in
  close_in ic;
  Unix.putenv "TFRC_DATA_DIR" "";
  Alcotest.(check string) "header" "# a b c" l1;
  Alcotest.(check string) "row 1" "1 2 3" l2;
  Alcotest.(check string) "row 2" "4 5 6.5" l3

(* --- App-limited sending / rate validation ------------------------------------ *)

let wire_tfrc ~config ~drop () =
  let sim = Engine.Sim.create () in
  let receiver_cell = ref None and sender_cell = ref None in
  let delivered = ref 0 in
  let to_receiver pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim 0.05 (fun () ->
             incr delivered;
             match !receiver_cell with
             | Some r -> Tfrc.Tfrc_receiver.recv r pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !sender_cell with
           | Some s -> Tfrc.Tfrc_sender.recv s pkt
           | None -> ()))
  in
  let sender = Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver () in
  sender_cell := Some sender;
  let receiver = Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  receiver_cell := Some receiver;
  (sim, sender, delivered)

let test_app_limit_caps_pace () =
  let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 () in
  let sim, sender, delivered = wire_tfrc ~config ~drop:(fun _ -> false) () in
  Tfrc.Tfrc_sender.set_app_limit sender (Some 20_000.) (* 20 kB/s = 20 pkt/s *);
  Tfrc.Tfrc_sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:20.;
  let rate = float_of_int !delivered *. 1000. /. 20. in
  Alcotest.(check bool)
    (Printf.sprintf "paced at ~20 kB/s (got %.0f B/s)" rate)
    true
    (rate < 25_000.)

let test_app_limit_validation () =
  Alcotest.check_raises "non-positive limit"
    (Invalid_argument "Tfrc_sender.set_app_limit: rate <= 0") (fun () ->
      let config = Tfrc.Tfrc_config.default () in
      let _, sender, _ = wire_tfrc ~config ~drop:(fun _ -> false) () in
      Tfrc.Tfrc_sender.set_app_limit sender (Some 0.))

let test_rate_validation_prevents_banked_headroom () =
  (* An app-limited flow under light loss: without validation the allowed
     rate grows far above what is actually sent; with validation it stays
     within 2x the achieved rate. *)
  let run ~rate_validation =
    let config =
      Tfrc.Tfrc_config.default ~initial_rtt:0.1 ~delay_gain:false ~ndupack:1
        ~rate_validation ()
    in
    let count = ref 0 in
    let drop _ =
      incr count;
      !count mod 100 = 0
    in
    let sim, sender, _ = wire_tfrc ~config ~drop () in
    Tfrc.Tfrc_sender.start sender ~at:0.;
    (* Let it find the equation rate first, then throttle the app. *)
    ignore
      (Engine.Sim.at sim 10. (fun () ->
           Tfrc.Tfrc_sender.set_app_limit sender (Some 10_000.)));
    Engine.Sim.run sim ~until:40.;
    Tfrc.Tfrc_sender.rate sender
  in
  let unvalidated = run ~rate_validation:false in
  let validated = run ~rate_validation:true in
  Alcotest.(check bool)
    (Printf.sprintf "validated %.0f < unvalidated %.0f and within 2x of 10kB/s"
       validated unvalidated)
    true
    (validated <= 20_000. +. 1_000. && validated < unvalidated)

(* --- Session -------------------------------------------------------------------- *)

let test_session_loopback () =
  (* Loss-free loopback: keep the run short — with nothing to stop slow
     start, the rate doubles every RTT and virtual seconds get
     exponentially expensive. *)
  let sim = Engine.Sim.create () in
  let session =
    Tfrc.Session.create (Engine.Sim.runtime sim) ~flow:1
      ~data_path:(fun deliver pkt ->
        ignore (Engine.Sim.after sim 0.05 (fun () -> deliver pkt)))
      ~feedback_path:(fun deliver pkt ->
        ignore (Engine.Sim.after sim 0.05 (fun () -> deliver pkt)))
      ()
  in
  Tfrc.Session.start session ~at:0.;
  Engine.Sim.run sim ~until:2.5;
  Alcotest.(check bool) "data delivered" true
    (Tfrc.Tfrc_receiver.packets_received session.receiver > 50);
  Alcotest.(check bool) "feedback flowing" true
    (Tfrc.Tfrc_sender.feedbacks_received session.sender > 10)

let test_session_over_dumbbell () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim)
      ~bandwidth:(Engine.Units.mbps 1.)
      ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 20) ()
  in
  let session = Tfrc.Session.over_dumbbell db ~flow:1 ~rtt_base:0.06 () in
  Tfrc.Session.start session ~at:0.;
  Engine.Sim.run sim ~until:30.;
  let util =
    Netsim.Link.utilization (Netsim.Dumbbell.forward_link db) ~duration:30.
  in
  Alcotest.(check bool)
    (Printf.sprintf "fills the link (util %.2f)" util)
    true (util > 0.8)

let test_session_stop () =
  let sim = Engine.Sim.create () in
  let session =
    Tfrc.Session.create (Engine.Sim.runtime sim) ~flow:1
      ~data_path:(fun deliver pkt ->
        ignore (Engine.Sim.after sim 0.02 (fun () -> deliver pkt)))
      ~feedback_path:(fun deliver pkt ->
        ignore (Engine.Sim.after sim 0.02 (fun () -> deliver pkt)))
      ()
  in
  Tfrc.Session.start session ~at:0.;
  Engine.Sim.run sim ~until:1.5;
  Tfrc.Session.stop session;
  let sent = Tfrc.Tfrc_sender.packets_sent session.sender in
  Engine.Sim.run sim ~until:5.;
  Alcotest.(check int) "halted" sent (Tfrc.Tfrc_sender.packets_sent session.sender)

(* --- Plot ----------------------------------------------------------------------- *)

let render_plot f =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_plot_series () =
  let out =
    render_plot (fun ppf ->
        Exp.Plot.series ppf ~title:"demo" ~ylabel:"y"
          [ (0., 0.); (1., 1.); (2., 4.); (3., 9.) ])
  in
  Alcotest.(check bool) "has title" true
    (String.length out > 0 && String.sub out 0 4 = "demo");
  Alcotest.(check bool) "has points" true (String.contains out '*');
  Alcotest.(check bool) "has axis" true (String.contains out '|')

let test_plot_multi_legend () =
  let out =
    render_plot (fun ppf ->
        Exp.Plot.multi ppf ~title:"two" ~ylabel:"v"
          [ ("a", [ (0., 1.); (1., 2.) ]); ("b", [ (0., 2.); (1., 1.) ]) ])
  in
  Alcotest.(check bool) "legend mentions both" true
    (let has s sub =
       let n = String.length sub in
       let rec scan i =
         i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
       in
       scan 0
     in
     has out "* = a" && has out "+ = b")

let test_plot_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Plot: empty series")
    (fun () ->
      render_plot (fun ppf -> Exp.Plot.series ppf ~title:"x" ~ylabel:"y" [])
      |> ignore)

let test_plot_constant_series () =
  (* Degenerate y-range must not crash or divide by zero. *)
  let out =
    render_plot (fun ppf ->
        Exp.Plot.series ppf ~title:"flat" ~ylabel:"y"
          [ (0., 5.); (1., 5.); (2., 5.) ])
  in
  Alcotest.(check bool) "rendered" true (String.length out > 0)

let () =
  Alcotest.run "infra"
    [
      ( "tracer",
        [
          Alcotest.test_case "records in order" `Quick test_tracer_records_in_order;
          Alcotest.test_case "limit" `Quick test_tracer_limit;
          Alcotest.test_case "filter" `Quick test_tracer_filter;
          Alcotest.test_case "attach link" `Quick test_tracer_attach_link;
          Alcotest.test_case "pp" `Quick test_tracer_pp;
        ] );
      ( "parking_lot",
        [
          Alcotest.test_case "through flow" `Quick
            test_lot_through_flow_traverses_all_hops;
          Alcotest.test_case "cross flow" `Quick test_lot_cross_flow_single_hop;
          Alcotest.test_case "reverse path" `Quick test_lot_reverse_path;
          Alcotest.test_case "validation" `Quick test_lot_validation;
          Alcotest.test_case "tfrc end to end" `Quick test_lot_tfrc_end_to_end;
        ] );
      ( "dataset",
        [
          Alcotest.test_case "disabled noop" `Quick test_dataset_disabled_noop;
          Alcotest.test_case "writes file" `Quick test_dataset_writes_file;
        ] );
      ( "app_limit",
        [
          Alcotest.test_case "caps pace" `Quick test_app_limit_caps_pace;
          Alcotest.test_case "validates input" `Quick test_app_limit_validation;
          Alcotest.test_case "rate validation" `Quick
            test_rate_validation_prevents_banked_headroom;
        ] );
      ( "session",
        [
          Alcotest.test_case "loopback" `Quick test_session_loopback;
          Alcotest.test_case "over dumbbell" `Quick test_session_over_dumbbell;
          Alcotest.test_case "stop" `Quick test_session_stop;
        ] );
      ( "plot",
        [
          Alcotest.test_case "series" `Quick test_plot_series;
          Alcotest.test_case "multi legend" `Quick test_plot_multi_legend;
          Alcotest.test_case "rejects empty" `Quick test_plot_rejects_empty;
          Alcotest.test_case "constant series" `Quick test_plot_constant_series;
        ] );
    ]
