(* Tests for the statistics library: running stats, time series, the
   paper's metrics (CoV / equivalence ratio), quantiles, confidence
   intervals. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Running ----------------------------------------------------------- *)

let test_running_known () =
  let r = Stats.Running.of_array [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  checkf "mean" 5. (Stats.Running.mean r);
  checkf "pop variance" 4. (Stats.Running.population_variance r);
  checkf ~eps:1e-6 "sample variance" (32. /. 7.) (Stats.Running.variance r);
  checkf "min" 2. (Stats.Running.min_value r);
  checkf "max" 9. (Stats.Running.max_value r);
  checkf "total" 40. (Stats.Running.total r);
  Alcotest.(check int) "count" 8 (Stats.Running.count r)

let test_running_empty () =
  let r = Stats.Running.create () in
  checkf "mean of empty" 0. (Stats.Running.mean r);
  checkf "variance of empty" 0. (Stats.Running.variance r);
  checkf "cov of empty" 0. (Stats.Running.cov r)

let test_running_single () =
  let r = Stats.Running.of_array [| 42. |] in
  checkf "mean" 42. (Stats.Running.mean r);
  checkf "variance needs two" 0. (Stats.Running.variance r)

let test_running_merge () =
  let a = Stats.Running.of_array [| 1.; 2.; 3. |] in
  let b = Stats.Running.of_array [| 4.; 5.; 6.; 7. |] in
  let m = Stats.Running.merge a b in
  let whole = Stats.Running.of_array [| 1.; 2.; 3.; 4.; 5.; 6.; 7. |] in
  checkf ~eps:1e-9 "merged mean" (Stats.Running.mean whole) (Stats.Running.mean m);
  checkf ~eps:1e-9 "merged variance" (Stats.Running.variance whole)
    (Stats.Running.variance m);
  Alcotest.(check int) "merged count" 7 (Stats.Running.count m)

let test_running_merge_empty () =
  let a = Stats.Running.create () in
  let b = Stats.Running.of_array [| 1.; 2. |] in
  checkf "empty+b mean" 1.5 (Stats.Running.mean (Stats.Running.merge a b));
  checkf "b+empty mean" 1.5 (Stats.Running.mean (Stats.Running.merge b a))

let test_running_nan_explicit () =
  (* Regression: a NaN sample used to poison mean/total while min/max
     silently ignored it. Now it is counted aside and excluded. *)
  let r = Stats.Running.create () in
  Stats.Running.add r 1.;
  Stats.Running.add r Float.nan;
  Stats.Running.add r 3.;
  Alcotest.(check int) "count excludes NaN" 2 (Stats.Running.count r);
  Alcotest.(check int) "nans counted" 1 (Stats.Running.nans r);
  checkf "mean unpoisoned" 2. (Stats.Running.mean r);
  checkf "total unpoisoned" 4. (Stats.Running.total r);
  checkf "min" 1. (Stats.Running.min_value r);
  checkf "max" 3. (Stats.Running.max_value r)

let test_cov_denormal_mean () =
  (* Regression: cov compared the mean to 0. exactly, so a denormal mean
     produced an astronomically large, meaningless CoV. *)
  let r = Stats.Running.of_array [| Float.min_float /. 4.; -.(Float.min_float /. 4.) |] in
  Alcotest.(check bool) "mean is tiny" true
    (Float.abs (Stats.Running.mean r) < Float.min_float);
  checkf "cov guards denormal mean" 0. (Stats.Running.cov r)

let sample_gen =
  (* Samples including occasional NaN, so the merge property covers the
     nans-field bookkeeping too. *)
  QCheck.Gen.(
    list_size (int_range 0 40)
      (frequency [ (9, float_range (-1e3) 1e3); (1, return Float.nan) ]))

let prop_merge_matches_concat =
  QCheck.Test.make ~name:"merge a b = of_array (a @ b)" ~count:300
    (QCheck.make
       ~print:(fun (a, b) ->
         let s l = String.concat "," (List.map string_of_float l) in
         Printf.sprintf "[%s] [%s]" (s a) (s b))
       (QCheck.Gen.pair sample_gen sample_gen))
    (fun (xs, ys) ->
      let a = Stats.Running.of_array (Array.of_list xs) in
      let b = Stats.Running.of_array (Array.of_list ys) in
      let m = Stats.Running.merge a b in
      let w = Stats.Running.of_array (Array.of_list (xs @ ys)) in
      let feq x y =
        (* min/max of disjoint streams are exact; the moments accumulate in
           a different order, so compare to relative tolerance. *)
        Float.abs (x -. y) <= 1e-9 *. Float.max 1. (Float.abs y)
      in
      Stats.Running.count m = Stats.Running.count w
      && Stats.Running.nans m = Stats.Running.nans w
      && feq (Stats.Running.mean m) (Stats.Running.mean w)
      && feq (Stats.Running.variance m) (Stats.Running.variance w)
      && Stats.Running.min_value m = Stats.Running.min_value w
      && Stats.Running.max_value m = Stats.Running.max_value w
      && feq (Stats.Running.total m) (Stats.Running.total w))

(* --- Soa (struct-of-arrays accumulators) ------------------------------- *)

let prop_soa_matches_running =
  QCheck.Test.make ~name:"Soa slot arithmetic = Running" ~count:200
    (QCheck.make
       ~print:(fun l -> String.concat "," (List.map string_of_float l))
       sample_gen)
    (fun xs ->
      let soa = Stats.Soa.create 3 in
      let r = Stats.Running.create () in
      List.iter
        (fun x ->
          Stats.Soa.add soa 1 x;
          Stats.Running.add r x)
        xs;
      (* Bit-for-bit: the Soa update is textually the same Welford step. *)
      Stats.Soa.count soa 1 = Stats.Running.count r
      && Stats.Soa.nans soa 1 = Stats.Running.nans r
      && Stats.Soa.mean soa 1 = Stats.Running.mean r
      && Stats.Soa.variance soa 1 = Stats.Running.variance r
      && Stats.Soa.min_value soa 1 = Stats.Running.min_value r
      && Stats.Soa.max_value soa 1 = Stats.Running.max_value r
      && Stats.Soa.total soa 1 = Stats.Running.total r
      && Stats.Soa.cov soa 1 = Stats.Running.cov r
      (* Neighboring slots must be untouched. *)
      && Stats.Soa.count soa 0 = 0
      && Stats.Soa.count soa 2 = 0)

let prop_soa_merge_matches_running =
  QCheck.Test.make ~name:"Soa.merge_into = Running.merge" ~count:200
    (QCheck.make
       ~print:(fun (a, b) ->
         let s l = String.concat "," (List.map string_of_float l) in
         Printf.sprintf "[%s] [%s]" (s a) (s b))
       (QCheck.Gen.pair sample_gen sample_gen))
    (fun (xs, ys) ->
      let src = Stats.Soa.create 1 and dst = Stats.Soa.create 1 in
      let a = Stats.Running.create () and b = Stats.Running.create () in
      List.iter
        (fun x ->
          Stats.Soa.add dst 0 x;
          Stats.Running.add a x)
        xs;
      List.iter
        (fun y ->
          Stats.Soa.add src 0 y;
          Stats.Running.add b y)
        ys;
      Stats.Soa.merge_into ~src 0 ~dst 0;
      let m = Stats.Running.merge a b in
      Stats.Soa.count dst 0 = Stats.Running.count m
      && Stats.Soa.nans dst 0 = Stats.Running.nans m
      && Stats.Soa.mean dst 0 = Stats.Running.mean m
      && Stats.Soa.variance dst 0 = Stats.Running.variance m
      && Stats.Soa.min_value dst 0 = Stats.Running.min_value m
      && Stats.Soa.max_value dst 0 = Stats.Running.max_value m
      && Stats.Soa.total dst 0 = Stats.Running.total m)

let test_soa_reset_slot () =
  let soa = Stats.Soa.create 2 in
  Stats.Soa.add soa 0 5.;
  Stats.Soa.add soa 1 7.;
  Stats.Soa.reset_slot soa 0;
  Alcotest.(check int) "reset slot empty" 0 (Stats.Soa.count soa 0);
  checkf "reset min is +inf" infinity (Stats.Soa.min_value soa 0);
  Alcotest.(check int) "other slot kept" 1 (Stats.Soa.count soa 1);
  checkf "other slot mean kept" 7. (Stats.Soa.mean soa 1)

let prop_welford_matches_naive =
  QCheck.Test.make ~name:"Welford variance matches two-pass" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-1e3) 1e3))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = Stats.Running.of_array arr in
      let n = float_of_int (Array.length arr) in
      let mean = Array.fold_left ( +. ) 0. arr /. n in
      let var =
        Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. arr /. (n -. 1.)
      in
      Float.abs (Stats.Running.variance r -. var)
      <= 1e-6 *. Float.max 1. (Float.abs var))

let prop_cov_nonneg =
  QCheck.Test.make ~name:"CoV is non-negative" ~count:200
    QCheck.(list (float_range 0. 1e3))
    (fun xs ->
      let r = Stats.Running.of_array (Array.of_list xs) in
      Stats.Running.cov r >= 0.)

(* --- Time_series -------------------------------------------------------- *)

let series_of l =
  let ts = Stats.Time_series.create () in
  List.iter (fun (t, v) -> Stats.Time_series.add ts ~time:t ~value:v) l;
  ts

let test_ts_binning () =
  let ts = series_of [ (0.1, 10.); (0.9, 5.); (1.5, 3.); (2.7, 2.) ] in
  let b = Stats.Time_series.binned ts ~t0:0. ~t1:3. ~bin:1. in
  Alcotest.(check (array (float 1e-9))) "bins" [| 15.; 3.; 2. |] b

let test_ts_binning_window () =
  let ts = series_of [ (0.5, 1.); (1.5, 2.); (2.5, 4.); (3.5, 8.) ] in
  let b = Stats.Time_series.binned ts ~t0:1. ~t1:3. ~bin:1. in
  Alcotest.(check (array (float 1e-9))) "windowed" [| 2.; 4. |] b

let test_ts_rates () =
  let ts = series_of [ (0.25, 100.); (0.75, 100.) ] in
  let r = Stats.Time_series.rates ts ~t0:0. ~t1:1. ~bin:0.5 in
  Alcotest.(check (array (float 1e-9))) "rates" [| 200.; 200. |] r

let test_ts_mean_rate () =
  let ts = series_of [ (1., 50.); (2., 50.); (3., 100.) ] in
  checkf "mean rate over [0,4)" 50. (Stats.Time_series.mean_rate ts ~t0:0. ~t1:4.)

let test_ts_final_bin_closed () =
  (* Regression: an event exactly at t1 used to be dropped, so binning a
     series over [first_time, last_time] lost the last event. *)
  let ts = series_of [ (0.5, 1.); (1., 2.); (2., 4.) ] in
  let b = Stats.Time_series.binned ts ~t0:0. ~t1:2. ~bin:1. in
  Alcotest.(check (array (float 1e-9))) "t1 event lands in final bin"
    [| 1.; 6. |] b;
  checkf "mean_rate sees the t1 event" 3.5
    (Stats.Time_series.mean_rate ts ~t0:0. ~t1:2.);
  (* Events strictly past t1 still stay out. *)
  let ts = series_of [ (0.5, 1.); (2.0000001, 4.) ] in
  let b = Stats.Time_series.binned ts ~t0:0. ~t1:2. ~bin:1. in
  Alcotest.(check (array (float 1e-9))) "past-t1 excluded" [| 1.; 0. |] b

let test_ts_monotone_required () =
  let ts = series_of [ (1., 1.) ] in
  Alcotest.check_raises "non-monotone time"
    (Invalid_argument "Time_series.add: non-monotone time") (fun () ->
      Stats.Time_series.add ts ~time:0.5 ~value:1.)

let test_ts_meta () =
  let ts = series_of [ (1., 5.); (2., 7.) ] in
  Alcotest.(check int) "n_events" 2 (Stats.Time_series.n_events ts);
  checkf "total" 12. (Stats.Time_series.total ts);
  Alcotest.(check (option (float 1e-9))) "first" (Some 1.)
    (Stats.Time_series.first_time ts);
  Alcotest.(check (option (float 1e-9))) "last" (Some 2.)
    (Stats.Time_series.last_time ts)

let test_ts_bad_args () =
  let ts = series_of [ (1., 1.) ] in
  Alcotest.check_raises "zero bin"
    (Invalid_argument "Time_series.binned: bin must be positive") (fun () ->
      ignore (Stats.Time_series.binned ts ~t0:0. ~t1:1. ~bin:0.));
  Alcotest.check_raises "empty window"
    (Invalid_argument "Time_series.binned: empty window") (fun () ->
      ignore (Stats.Time_series.binned ts ~t0:1. ~t1:1. ~bin:0.5))

let prop_binned_conserves_total =
  QCheck.Test.make ~name:"binning conserves in-window total" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (pair (float_range 0. 10.) (float_range 0. 100.)))
    (fun events ->
      let events = List.sort (fun (a, _) (b, _) -> compare a b) events in
      let ts = series_of events in
      let b = Stats.Time_series.binned ts ~t0:0. ~t1:10.5 ~bin:0.7 in
      let total = Array.fold_left ( +. ) 0. b in
      let expect =
        List.fold_left
          (fun acc (t, v) -> if t >= 0. && t <= 10.5 then acc +. v else acc)
          0. events
      in
      Float.abs (total -. expect) < 1e-6)

(* --- Metrics ------------------------------------------------------------ *)

let test_equivalence_identical () =
  match Stats.Metrics.equivalence_of_bins [| 1.; 2.; 3. |] [| 1.; 2.; 3. |] with
  | Some v -> checkf "identical flows" 1. v
  | None -> Alcotest.fail "expected defined"

let test_equivalence_known () =
  (* bins: (2,1) -> 0.5; (0,4) -> 0.; (3,3) -> 1. Average = 0.5 *)
  match
    Stats.Metrics.equivalence_of_bins [| 2.; 0.; 3. |] [| 1.; 4.; 3. |]
  with
  | Some v -> checkf "mixed" 0.5 v
  | None -> Alcotest.fail "expected defined"

let test_equivalence_skips_empty_bins () =
  match
    Stats.Metrics.equivalence_of_bins [| 0.; 2. |] [| 0.; 2. |]
  with
  | Some v -> checkf "empty bins skipped" 1. v
  | None -> Alcotest.fail "expected defined"

let test_equivalence_undefined () =
  Alcotest.(check bool)
    "all-zero is undefined" true
    (Stats.Metrics.equivalence_of_bins [| 0.; 0. |] [| 0.; 0. |] = None)

let prop_equivalence_range =
  let gen = QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0. 1e3)) in
  QCheck.Test.make ~name:"equivalence in [0,1]" ~count:300 (QCheck.pair gen gen)
    (fun (a, b) ->
      match
        Stats.Metrics.equivalence_of_bins (Array.of_list a) (Array.of_list b)
      with
      | None -> true
      | Some v -> v >= 0. && v <= 1.)

let prop_equivalence_symmetric =
  let gen = QCheck.(list_of_size Gen.(int_range 1 40) (float_range 0. 1e3)) in
  QCheck.Test.make ~name:"equivalence is symmetric" ~count:300
    (QCheck.pair gen gen) (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      Stats.Metrics.equivalence_of_bins a b = Stats.Metrics.equivalence_of_bins b a)

let test_cov_at_timescale () =
  (* Constant rate: CoV 0. *)
  let ts = series_of (List.init 100 (fun i -> (0.1 *. float_of_int i, 10.))) in
  checkf ~eps:1e-9 "constant flow CoV" 0.
    (Stats.Metrics.cov_at_timescale ts ~t0:0. ~t1:10. ~tau:1.);
  (* Alternating bins: values 20,0,20,0... mean 10 sd 10 -> CoV 1. *)
  let ts2 =
    series_of
      (List.init 10 (fun i -> (float_of_int (2 * i) +. 0.5, 20.)))
  in
  checkf ~eps:1e-9 "alternating CoV" 1.
    (Stats.Metrics.cov_at_timescale ts2 ~t0:0. ~t1:20. ~tau:1.)

let test_pairwise_equivalence () =
  let a = series_of [ (0.5, 2.); (1.5, 2.) ] in
  let b = series_of [ (0.5, 1.); (1.5, 4.) ] in
  match
    Stats.Metrics.mean_pairwise_equivalence [ a; b ] ~t0:0. ~t1:2. ~tau:1.
  with
  | Some v -> checkf "pair" 0.5 v (* bins (2,1)->0.5 and (2,4)->0.5 *)
  | None -> Alcotest.fail "expected defined"

(* --- Quantile ------------------------------------------------------------ *)

let test_quantile_known () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  checkf "median" 3. (Stats.Quantile.median a);
  checkf "q0" 1. (Stats.Quantile.quantile a 0.);
  checkf "q1" 5. (Stats.Quantile.quantile a 1.);
  checkf "q25" 2. (Stats.Quantile.quantile a 0.25)

let test_quantile_interpolates () =
  let a = [| 0.; 10. |] in
  checkf "q30 interpolated" 3. (Stats.Quantile.quantile a 0.3)

let test_quantile_unsorted_input () =
  let a = [| 5.; 1.; 3.; 2.; 4. |] in
  checkf "median of unsorted" 3. (Stats.Quantile.median a);
  (* input must not be mutated *)
  Alcotest.(check (array (float 0.))) "input untouched" [| 5.; 1.; 3.; 2.; 4. |] a

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.quantile: empty array")
    (fun () -> ignore (Stats.Quantile.median [||]))

let test_percentiles () =
  let a = Array.init 101 float_of_int in
  Alcotest.(check (list (float 1e-9)))
    "percentiles" [ 5.; 50.; 95. ]
    (Stats.Quantile.percentiles a [ 0.05; 0.5; 0.95 ])

(* --- Ci ------------------------------------------------------------------ *)

let test_ci_basics () =
  let ci = Stats.Ci.of_samples [| 10.; 12.; 8.; 11.; 9. |] in
  checkf "mean" 10. ci.Stats.Ci.mean;
  Alcotest.(check int) "n" 5 ci.Stats.Ci.n;
  Alcotest.(check bool) "positive half width" true (ci.Stats.Ci.half_width > 0.);
  checkf ~eps:1e-9 "bounds" (2. *. ci.Stats.Ci.half_width)
    (Stats.Ci.upper ci -. Stats.Ci.lower ci)

let test_ci_single_sample () =
  let ci = Stats.Ci.of_samples [| 5. |] in
  checkf "mean" 5. ci.Stats.Ci.mean;
  checkf "zero width" 0. ci.Stats.Ci.half_width

let test_ci_level_ordering () =
  let samples = [| 10.; 12.; 8.; 11.; 9.; 10.5; 9.5 |] in
  let c90 = Stats.Ci.of_samples ~level:0.90 samples in
  let c99 = Stats.Ci.of_samples ~level:0.99 samples in
  Alcotest.(check bool)
    "99% interval wider than 90%" true
    (c99.Stats.Ci.half_width > c90.Stats.Ci.half_width)

let test_ci_unsupported_level () =
  Alcotest.check_raises "bad level"
    (Invalid_argument "Ci: unsupported confidence level") (fun () ->
      ignore (Stats.Ci.of_samples ~level:0.5 [| 1.; 2.; 3. |]))

let () =
  Alcotest.run "stats"
    [
      ( "running",
        [
          Alcotest.test_case "known values" `Quick test_running_known;
          Alcotest.test_case "empty" `Quick test_running_empty;
          Alcotest.test_case "single" `Quick test_running_single;
          Alcotest.test_case "merge" `Quick test_running_merge;
          Alcotest.test_case "merge empty" `Quick test_running_merge_empty;
          Alcotest.test_case "NaN handled explicitly" `Quick
            test_running_nan_explicit;
          Alcotest.test_case "cov denormal-mean guard" `Quick
            test_cov_denormal_mean;
          qtest prop_welford_matches_naive;
          qtest prop_cov_nonneg;
          qtest prop_merge_matches_concat;
        ] );
      ( "soa",
        [
          Alcotest.test_case "reset_slot" `Quick test_soa_reset_slot;
          qtest prop_soa_matches_running;
          qtest prop_soa_merge_matches_running;
        ] );
      ( "time_series",
        [
          Alcotest.test_case "binning" `Quick test_ts_binning;
          Alcotest.test_case "binning window" `Quick test_ts_binning_window;
          Alcotest.test_case "rates" `Quick test_ts_rates;
          Alcotest.test_case "mean rate" `Quick test_ts_mean_rate;
          Alcotest.test_case "final bin closed" `Quick test_ts_final_bin_closed;
          Alcotest.test_case "monotone required" `Quick test_ts_monotone_required;
          Alcotest.test_case "metadata" `Quick test_ts_meta;
          Alcotest.test_case "bad args" `Quick test_ts_bad_args;
          qtest prop_binned_conserves_total;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "identical flows" `Quick test_equivalence_identical;
          Alcotest.test_case "known value" `Quick test_equivalence_known;
          Alcotest.test_case "skips empty bins" `Quick
            test_equivalence_skips_empty_bins;
          Alcotest.test_case "undefined when silent" `Quick
            test_equivalence_undefined;
          Alcotest.test_case "cov at timescale" `Quick test_cov_at_timescale;
          Alcotest.test_case "pairwise" `Quick test_pairwise_equivalence;
          qtest prop_equivalence_range;
          qtest prop_equivalence_symmetric;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "known" `Quick test_quantile_known;
          Alcotest.test_case "interpolates" `Quick test_quantile_interpolates;
          Alcotest.test_case "unsorted input" `Quick test_quantile_unsorted_input;
          Alcotest.test_case "errors" `Quick test_quantile_errors;
          Alcotest.test_case "percentiles" `Quick test_percentiles;
        ] );
      ( "ci",
        [
          Alcotest.test_case "basics" `Quick test_ci_basics;
          Alcotest.test_case "single sample" `Quick test_ci_single_sample;
          Alcotest.test_case "level ordering" `Quick test_ci_level_ordering;
          Alcotest.test_case "unsupported level" `Quick test_ci_unsupported_level;
        ] );
    ]
