(* Tests for the supervised execution layer: cooperative Sim budgets,
   attempt-derived RNG streams, retry/crash isolation in Exp.Runner, the
   fsync'd checkpoint store, and kill-and-resume byte-identity. *)

open Alcotest

(* A simulation that never drains its heap: each tick schedules the next.
   Only a budget can stop it. *)
let spin_sim () =
  let sim = Engine.Sim.create () in
  let rec tick () = ignore (Engine.Sim.after sim 1.0 tick) in
  ignore (Engine.Sim.at sim 0.0 tick);
  sim

(* --- Sim budgets ----------------------------------------------------------- *)

let test_budget_max_events () =
  let sim = spin_sim () in
  let b = Engine.Sim.budget ~max_events:100 () in
  (match Engine.Sim.run ~budget:b sim ~until:infinity with
  | () -> fail "spinner terminated without exhausting its budget"
  | exception Engine.Sim.Budget_exhausted _ -> ());
  (* 100 events at 1 s spacing starting from t=0: the clock cannot have
     passed the 100th tick. *)
  check bool "clock bounded by the event allowance" true
    (Engine.Sim.now sim <= 100.)

let test_budget_max_time () =
  let sim = spin_sim () in
  let b = Engine.Sim.budget ~max_time:10. () in
  (match Engine.Sim.run ~budget:b sim ~until:infinity with
  | () -> fail "spinner terminated without exhausting its budget"
  | exception Engine.Sim.Budget_exhausted _ -> ());
  check bool "stopped at the virtual-time ceiling" true
    (Engine.Sim.now sim <= 10.)

(* The event allowance is one meter across several runs: two half-budget
   runs exhaust it where either alone would not. *)
let test_budget_shared_across_runs () =
  let b = Engine.Sim.budget ~max_events:150 () in
  let sim1 = spin_sim () in
  Engine.Sim.run ~budget:b sim1 ~until:99.5 (* ~100 events *);
  let sim2 = spin_sim () in
  match Engine.Sim.run ~budget:b sim2 ~until:99.5 with
  | () -> fail "second run should exhaust the shared meter"
  | exception Engine.Sim.Budget_exhausted _ -> ()

let test_with_budget_restores () =
  check bool "no ambient budget initially" true
    (Engine.Sim.current_budget () = None);
  let b = Engine.Sim.budget ~max_events:10 () in
  (match
     Engine.Sim.with_budget b (fun () ->
         check bool "ambient budget installed" true
           (Engine.Sim.current_budget () <> None);
         failwith "escape")
   with
  | _ -> fail "exception swallowed"
  | exception Failure _ -> ());
  check bool "ambient budget restored after exception" true
    (Engine.Sim.current_budget () = None)

(* --- Attempt-derived RNG streams -------------------------------------------- *)

let draws rng n = List.init n (fun _ -> Engine.Rng.bits32 rng)

let test_for_attempt_zero_is_for_key () =
  check (list int) "attempt 0 = for_key"
    (draws (Engine.Rng.for_key ~seed:42 "fig5/p0.010") 8)
    (draws (Engine.Rng.for_attempt ~seed:42 ~attempt:0 "fig5/p0.010") 8)

(* Pin the retry streams like the base generator's: a silent change would
   reshuffle every retried cell. *)
let test_for_attempt_vectors () =
  check (list int) "attempt 1 stream"
    [ 117008709; 234914676; 3036062846; 3614203679 ]
    (draws (Engine.Rng.for_attempt ~seed:42 ~attempt:1 "fig5/p0.010") 4);
  check (list int) "attempt 2 stream"
    [ 855147049; 773415170; 1605697310; 3432908017 ]
    (draws (Engine.Rng.for_attempt ~seed:42 ~attempt:2 "fig5/p0.010") 4)

let test_for_attempt_independent () =
  let windows =
    List.init 4 (fun attempt ->
        draws (Engine.Rng.for_attempt ~seed:7 ~attempt "fig6/red/8/4") 32)
  in
  List.iteri
    (fun i w ->
      List.iteri
        (fun k w' ->
          if k > i then
            check bool
              (Printf.sprintf "attempts %d and %d differ" i (i + 1 + (k - i - 1)))
              true (w <> w'))
        windows)
    windows

(* --- Supervised runner: budgets, retries, isolation -------------------------- *)

let spinner_job key =
  Exp.Job.make key (fun _rng ->
      let sim = spin_sim () in
      Engine.Sim.run sim ~until:infinity;
      [ ("unreachable", Exp.Job.b true) ])

let test_runner_budget_kills_spinner () =
  let budget = { Exp.Job.max_events = Some 1_000; max_time = None } in
  let outcomes, report =
    Exp.Runner.run_jobs_supervised ~budget ~seed:42 [ spinner_job "spin/0" ]
  in
  (match outcomes with
  | [ (_, Exp.Runner.Gave_up f) ] ->
      check bool "classified as timeout" true (f.kind = `Timed_out);
      check int "single attempt" 1 f.attempts
  | _ -> fail "spinner should time out");
  check int "report: timed_out" 1 report.timed_out;
  check int "report: ok" 0 report.ok

let test_runner_retries_spinner () =
  let budget = { Exp.Job.max_events = Some 500; max_time = None } in
  let outcomes, _ =
    Exp.Runner.run_jobs_supervised ~retries:2 ~budget ~seed:42
      [ spinner_job "spin/retry" ]
  in
  match outcomes with
  | [ (_, Exp.Runner.Gave_up f) ] ->
      check int "all attempts consumed" 3 f.attempts
  | _ -> fail "spinner should time out"

(* A job's own budget overrides the runner-wide default. *)
let test_job_budget_overrides_default () =
  let bounded =
    Exp.Job.make ~budget:{ Exp.Job.max_events = Some 100_000; max_time = None }
      "bounded/0"
      (fun _rng ->
        let sim = Engine.Sim.create () in
        let count = ref 0 in
        let rec tick () =
          incr count;
          if !count < 2_000 then ignore (Engine.Sim.after sim 0.001 tick)
        in
        ignore (Engine.Sim.at sim 0.0 tick);
        Engine.Sim.run sim ~until:infinity;
        [ ("events", Exp.Job.i !count) ])
  in
  let tiny = { Exp.Job.max_events = Some 10; max_time = None } in
  let outcomes, report =
    Exp.Runner.run_jobs_supervised ~budget:tiny ~seed:1 [ bounded ]
  in
  (match outcomes with
  | [ (_, Exp.Runner.Completed r) ] ->
      check int "ran to completion under its own budget" 2_000
        (Exp.Job.get_int r "events")
  | _ -> fail "job budget should override the runner default");
  check int "report: ok" 1 report.ok

(* A flaky job that fails on its first call and succeeds on the second:
   with one retry the batch completes, the result comes from the attempt-1
   RNG stream, and the report counts the retry. Runs must also be
   reproducible even though the closure carries state — the runner derives
   the retry stream, not the job. *)
let test_retry_recovers_deterministically () =
  let make_flaky calls =
    Exp.Job.make "flaky/0" (fun rng ->
        incr calls;
        if !calls = 1 then failwith "transient";
        [ ("draw", Exp.Job.i (Engine.Rng.bits32 rng)) ])
  in
  let calls = ref 0 in
  let outcomes, report =
    Exp.Runner.run_jobs_supervised ~retries:1 ~seed:42 [ make_flaky calls ]
  in
  let expected =
    Engine.Rng.bits32 (Engine.Rng.for_attempt ~seed:42 ~attempt:1 "flaky/0")
  in
  (match outcomes with
  | [ (_, Exp.Runner.Completed r) ] ->
      check int "result drawn from the attempt-1 stream" expected
        (Exp.Job.get_int r "draw")
  | _ -> fail "flaky job should succeed on retry");
  check int "report: retried" 1 report.retried;
  check int "report: ok" 1 report.ok;
  check int "attempts recorded" 2 (List.hd report.jobs).attempts

(* Crash isolation end to end: one cell of a three-cell experiment raises;
   the figure still renders with an explicit MISSING line and the
   survivors' values, at -j 1 and -j 4 identically. *)
let isolation_exp : Exp.Registry.experiment =
  {
    id = "test-isolation";
    title = "crash isolation fixture";
    jobs =
      (fun ~full:_ ->
        List.init 3 (fun i ->
            Exp.Job.make (Printf.sprintf "iso/%d" i) (fun rng ->
                if i = 1 then failwith "cell exploded";
                [ ("v", Exp.Job.i (Engine.Rng.bits32 rng mod 1000)) ])));
    render =
      (fun ~full:_ ~seed:_ finished ppf ->
        List.iter
          (fun (k, r) -> Format.fprintf ppf "%s = %d@." k (Exp.Job.get_int r "v"))
          finished);
  }

let render_isolation ~j =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  let report =
    Exp.Runner.run_experiment ~j ~full:false ~seed:42 isolation_exp ppf
  in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, report)

let test_crash_isolation_renders_holes () =
  let out, report = render_isolation ~j:1 in
  check int "two cells survived" 2 report.ok;
  check int "one cell failed" 1 report.failed;
  check bool "MISSING line names the cell" true
    (Astring.String.is_infix ~affix:"MISSING(iso/1)" out);
  check bool "failure reason included" true
    (Astring.String.is_infix ~affix:"cell exploded" out);
  check bool "survivors rendered" true
    (Astring.String.is_infix ~affix:"iso/0 = " out
    && Astring.String.is_infix ~affix:"iso/2 = " out);
  let out4, report4 = render_isolation ~j:4 in
  check string "isolation output identical at -j 4" out out4;
  check int "same failure count at -j 4" report.failed report4.failed

(* --- Checkpoint store -------------------------------------------------------- *)

let tmp_dir name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "tfrc_%s_%d" name (Unix.getpid ()))

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Round-trip every value shape through the JSONL store, including the
   floats %.12g would mangle. Stdlib.compare treats nan as equal to
   itself, which is exactly the equality a byte-identical resume needs. *)
let gnarly : Exp.Job.result =
  [
    ("pi", Exp.Job.f 3.14159265358979312);
    ("tiny", Exp.Job.f 1e-300);
    ("tenth", Exp.Job.f 0.1);
    ("nan", Exp.Job.f Float.nan);
    ("inf", Exp.Job.f Float.infinity);
    ("ninf", Exp.Job.f Float.neg_infinity);
    ("nzero", Exp.Job.f (-0.));
    ("count", Exp.Job.i (-42));
    ("flag", Exp.Job.b true);
    ("label", Exp.Job.s "quotes \" backslash \\ newline \n ctrl \x01 end");
    ("series", Exp.Job.pairs [ (0.1, 0.3); (Float.nan, 2e-308) ]);
    ("names", Exp.Job.strs [ "a"; "b" ]);
  ]

let test_checkpoint_roundtrip () =
  let dir = tmp_dir "ckpt_rt" in
  rm_rf dir;
  let ck = Exp.Checkpoint.open_store ~dir ~grid:"g.seed1.quick" ~resume:false in
  Exp.Checkpoint.record ck ~key:"cell/a" gnarly;
  Exp.Checkpoint.record ck ~key:"cell/b" [ ("x", Exp.Job.f 2.5) ];
  Exp.Checkpoint.close ck;
  let ck2 = Exp.Checkpoint.open_store ~dir ~grid:"g.seed1.quick" ~resume:true in
  check int "both cells loaded" 2 (Exp.Checkpoint.completed_count ck2);
  (match Exp.Checkpoint.find ck2 "cell/a" with
  | None -> fail "cell/a missing after resume"
  | Some r ->
      check bool "gnarly result survives byte-for-byte" true
        (Stdlib.compare r gnarly = 0));
  Exp.Checkpoint.close ck2;
  (* A different grid identity must not resume this file. *)
  let ck3 = Exp.Checkpoint.open_store ~dir ~grid:"g.seed2.quick" ~resume:true in
  check int "grid mismatch starts fresh" 0 (Exp.Checkpoint.completed_count ck3);
  Exp.Checkpoint.close ck3;
  rm_rf dir

(* A SIGKILL can tear the final line; the loader must keep every complete
   line before it. *)
let test_checkpoint_torn_tail () =
  let dir = tmp_dir "ckpt_torn" in
  rm_rf dir;
  let ck = Exp.Checkpoint.open_store ~dir ~grid:"torn.seed1.quick" ~resume:false in
  Exp.Checkpoint.record ck ~key:"cell/a" [ ("x", Exp.Job.f 1.5) ];
  Exp.Checkpoint.record ck ~key:"cell/b" [ ("x", Exp.Job.f 2.5) ];
  let path = Exp.Checkpoint.path ck in
  Exp.Checkpoint.close ck;
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "{\"key\":\"cell/c\",\"result\":[[\"x\",{\"f\":\"0x1";
  close_out oc;
  let ck2 = Exp.Checkpoint.open_store ~dir ~grid:"torn.seed1.quick" ~resume:true in
  check int "complete lines kept, torn tail dropped" 2
    (Exp.Checkpoint.completed_count ck2);
  check bool "cell/b intact" true (Exp.Checkpoint.find ck2 "cell/b" <> None);
  check bool "torn cell absent" true (Exp.Checkpoint.find ck2 "cell/c" = None);
  Exp.Checkpoint.close ck2;
  rm_rf dir

(* --- Kill-and-resume byte-identity -------------------------------------------- *)

(* A synthetic six-cell experiment whose output exposes every bit of each
   cell's RNG draws (hex floats), so any resume-path divergence shows. The
   executed-cell counter proves resume actually skipped work. *)
let resume_exp executed : Exp.Registry.experiment =
  {
    id = "test-resume";
    title = "resume fixture";
    jobs =
      (fun ~full:_ ->
        List.init 6 (fun i ->
            Exp.Job.make (Printf.sprintf "cell/%d" i) (fun rng ->
                incr executed;
                let xs =
                  List.init 4 (fun _ -> Engine.Rng.uniform rng 0. 1.)
                in
                [ ("xs", Exp.Job.floats xs) ])));
    render =
      (fun ~full:_ ~seed:_ finished ppf ->
        List.iter
          (fun (k, r) ->
            Format.fprintf ppf "%s:%s@." k
              (String.concat ","
                 (List.map (Printf.sprintf "%h") (Exp.Job.get_floats r "xs"))))
          finished);
  }

let render_resume ~j ?checkpoint executed =
  executed := 0;
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  let report =
    Exp.Runner.run_experiment ~j ?checkpoint ~full:false ~seed:42
      (resume_exp executed) ppf
  in
  Format.pp_print_flush ppf ();
  (Buffer.contents buf, report)

(* Simulates a kill after three cells: run the grid checkpointed, truncate
   the store to header + 3 records, then resume and compare against an
   uninterrupted run. *)
let resume_after_partial ~j =
  let executed = ref 0 in
  let reference, _ = render_resume ~j:1 executed in
  check int "uninterrupted run executes all cells" 6 !executed;
  let dir = tmp_dir (Printf.sprintf "ckpt_resume_j%d" j) in
  rm_rf dir;
  let grid = "test-resume.seed42.quick" in
  let ck = Exp.Checkpoint.open_store ~dir ~grid ~resume:false in
  let full_out, _ = render_resume ~j:1 ~checkpoint:ck executed in
  check string "checkpointed run output unchanged" reference full_out;
  let path = Exp.Checkpoint.path ck in
  Exp.Checkpoint.close ck;
  let lines =
    let ic = open_in_bin path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  check int "store holds header + six cells" 7 (List.length lines);
  let oc = open_out_bin path in
  List.iteri
    (fun i line -> if i < 4 then output_string oc (line ^ "\n"))
    lines;
  close_out oc;
  let ck2 = Exp.Checkpoint.open_store ~dir ~grid ~resume:true in
  let resumed_out, report =
    Fun.protect
      ~finally:(fun () -> Exp.Checkpoint.close ck2)
      (fun () -> render_resume ~j ~checkpoint:ck2 executed)
  in
  check string
    (Printf.sprintf "resumed output byte-identical at -j %d" j)
    reference resumed_out;
  check int "only the lost cells re-ran" 3 !executed;
  check int "report: resumed" 3 report.resumed;
  check int "report: ok" 3 report.ok;
  rm_rf dir

let test_resume_j1 () = resume_after_partial ~j:1
let test_resume_j4 () = resume_after_partial ~j:4

let () =
  run "supervised"
    [
      ( "sim-budget",
        [
          test_case "max_events stops a spinner" `Quick test_budget_max_events;
          test_case "max_time stops a spinner" `Quick test_budget_max_time;
          test_case "meter shared across runs" `Quick
            test_budget_shared_across_runs;
          test_case "with_budget restores" `Quick test_with_budget_restores;
        ] );
      ( "rng-attempt",
        [
          test_case "attempt 0 = for_key" `Quick test_for_attempt_zero_is_for_key;
          test_case "attempt vectors" `Quick test_for_attempt_vectors;
          test_case "attempt independence" `Quick test_for_attempt_independent;
        ] );
      ( "runner",
        [
          test_case "budget kills infinite job" `Quick
            test_runner_budget_kills_spinner;
          test_case "retries consume attempts" `Quick test_runner_retries_spinner;
          test_case "job budget overrides default" `Quick
            test_job_budget_overrides_default;
          test_case "retry recovers deterministically" `Quick
            test_retry_recovers_deterministically;
          test_case "crash isolation renders holes" `Quick
            test_crash_isolation_renders_holes;
        ] );
      ( "checkpoint",
        [
          test_case "value round-trip" `Quick test_checkpoint_roundtrip;
          test_case "torn tail tolerated" `Quick test_checkpoint_torn_tail;
        ] );
      ( "resume",
        [
          test_case "kill-and-resume j1" `Quick test_resume_j1;
          test_case "kill-and-resume j4" `Quick test_resume_j4;
        ] );
    ]
