(* System-level property tests: conservation laws and protocol invariants
   that must hold for arbitrary seeds and loss patterns. *)

let qtest t = QCheck_alcotest.to_alcotest t

(* --- Conservation at the dumbbell ------------------------------------------- *)

(* Everything a CBR source injects is either delivered or dropped at the
   bottleneck queue — the topology neither loses nor duplicates packets. *)
let prop_dumbbell_conserves_packets =
  QCheck.Test.make ~name:"dumbbell conserves packets" ~count:30
    QCheck.(pair (int_range 1 1000) (int_range 1 5))
    (fun (seed, n_flows) ->
      let sim = Engine.Sim.create () in
      let db =
        Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.005
          ~queue:(Netsim.Dumbbell.Droptail_q 5) ()
      in
      let delivered = ref 0 in
      let sources =
        List.init n_flows (fun i ->
            let flow = i + 1 in
            Netsim.Dumbbell.add_flow db ~flow
              ~rtt_base:(0.02 +. (0.01 *. float_of_int i));
            Netsim.Dumbbell.set_dst_recv db ~flow (fun _ -> incr delivered);
            let src =
              Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow
                ~rate:(1e6 /. float_of_int n_flows *. 1.5)
                ~pkt_size:1000
                ~transmit:(Netsim.Dumbbell.src_sender db ~flow)
                ()
            in
            Traffic.Cbr.start src
              ~at:(0.001 *. float_of_int (seed mod 7));
            src)
      in
      Engine.Sim.run sim ~until:5.;
      (* Drain in-flight packets. *)
      List.iter Traffic.Cbr.stop sources;
      Engine.Sim.run sim ~until:7.;
      let sent =
        List.fold_left (fun a s -> a + Traffic.Cbr.packets_sent s) 0 sources
      in
      let q = Netsim.Link.queue (Netsim.Dumbbell.forward_link db) in
      let dropped = q.Netsim.Queue_disc.stats.drops in
      sent = !delivered + dropped)

(* --- TCP reliability ----------------------------------------------------------- *)

(* A finite TCP transfer completes under any Bernoulli loss rate up to 20%,
   given enough virtual time: retransmission makes delivery reliable. *)
let prop_tcp_transfer_completes =
  QCheck.Test.make ~name:"finite TCP transfer completes under random loss"
    ~count:25
    QCheck.(pair (int_range 1 10_000) (float_range 0. 0.2))
    (fun (seed, loss) ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let config = Tcpsim.Tcp_common.default ~min_rto:0.3 ~max_cwnd:32. () in
      let sink_cell = ref None and sender_cell = ref None in
      let to_sink pkt =
        if not (Engine.Rng.bool rng ~p:loss) then
          ignore
            (Engine.Sim.after sim 0.05 (fun () ->
                 match !sink_cell with
                 | Some s -> Tcpsim.Tcp_sink.recv s pkt
                 | None -> ()))
      in
      let to_sender pkt =
        ignore
          (Engine.Sim.after sim 0.05 (fun () ->
               match !sender_cell with
               | Some s -> Tcpsim.Tcp_sender.recv s pkt
               | None -> ()))
      in
      let sink = Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
      sink_cell := Some sink;
      let sender =
        Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sink ()
      in
      sender_cell := Some sender;
      Tcpsim.Tcp_sender.set_limit sender 50;
      Tcpsim.Tcp_sender.start sender ~at:0.;
      Engine.Sim.run sim ~until:600.;
      Tcpsim.Tcp_sender.finished sender
      && Tcpsim.Tcp_sink.next_expected sink >= 50)

(* TCP never leaves more than a window of packets unacknowledged. *)
let prop_tcp_flight_bounded =
  QCheck.Test.make ~name:"TCP flight bounded by max_cwnd" ~count:20
    (QCheck.int_range 1 10_000) (fun seed ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let max_cwnd = 16. in
      let config = Tcpsim.Tcp_common.default ~min_rto:0.3 ~max_cwnd () in
      let ok = ref true in
      let sink_cell = ref None and sender_cell = ref None in
      let to_sink pkt =
        if not (Engine.Rng.bool rng ~p:0.05) then
          ignore
            (Engine.Sim.after sim 0.05 (fun () ->
                 match !sink_cell with
                 | Some s -> Tcpsim.Tcp_sink.recv s pkt
                 | None -> ()))
      in
      let to_sender pkt =
        ignore
          (Engine.Sim.after sim 0.05 (fun () ->
               match !sender_cell with
               | Some s -> Tcpsim.Tcp_sender.recv s pkt
               | None -> ()))
      in
      let sink = Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
      sink_cell := Some sink;
      let sender =
        Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sink ()
      in
      sender_cell := Some sender;
      Tcpsim.Tcp_sender.start sender ~at:0.;
      let rec watch () =
        let flight =
          Tcpsim.Tcp_sender.snd_nxt sender - Tcpsim.Tcp_sender.snd_una sender
        in
        (* Flight can exceed the window only transiently after a rollback;
           allow one segment of slack. *)
        if float_of_int flight > max_cwnd +. 1. then ok := false;
        ignore (Engine.Sim.after sim 0.05 watch)
      in
      ignore (Engine.Sim.at sim 0.05 (fun () -> watch ()));
      Engine.Sim.run sim ~until:30.;
      !ok)

(* --- TFRC invariants ------------------------------------------------------------- *)

(* Through any random loss process, the sender's rate stays within
   [min_rate, +inf) and its reported p within [0, 1]. *)
let prop_tfrc_rate_and_p_in_range =
  QCheck.Test.make ~name:"TFRC rate floored, p in [0,1]" ~count:20
    QCheck.(pair (int_range 1 10_000) (float_range 0. 0.3))
    (fun (seed, loss) ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 () in
      let receiver_cell = ref None and sender_cell = ref None in
      let to_receiver pkt =
        if not (Engine.Rng.bool rng ~p:loss) then
          ignore
            (Engine.Sim.after sim 0.05 (fun () ->
                 match !receiver_cell with
                 | Some r -> Tfrc.Tfrc_receiver.recv r pkt
                 | None -> ()))
      in
      let to_sender pkt =
        ignore
          (Engine.Sim.after sim 0.05 (fun () ->
               match !sender_cell with
               | Some s -> Tfrc.Tfrc_sender.recv s pkt
               | None -> ()))
      in
      let sender =
        Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver ()
      in
      sender_cell := Some sender;
      let receiver =
        Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender ()
      in
      receiver_cell := Some receiver;
      let ok = ref true in
      Tfrc.Tfrc_sender.on_rate_update sender (fun _ ~rate ~rtt ~p ->
          if
            rate < config.Tfrc.Tfrc_config.min_rate -. 1e-9
            || p < 0. || p > 1. || rtt <= 0.
          then ok := false);
      Tfrc.Tfrc_sender.start sender ~at:0.;
      Engine.Sim.run sim ~until:30.;
      !ok)

(* The receiver's interval history only ever holds positive intervals and
   its estimate is positive once loss has been seen. *)
let prop_tfrc_estimate_positive_after_loss =
  QCheck.Test.make ~name:"TFRC estimate positive after first loss" ~count:20
    (QCheck.int_range 1 10_000) (fun seed ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 () in
      let receiver_cell = ref None and sender_cell = ref None in
      let to_receiver pkt =
        if not (Engine.Rng.bool rng ~p:0.03) then
          ignore
            (Engine.Sim.after sim 0.05 (fun () ->
                 match !receiver_cell with
                 | Some r -> Tfrc.Tfrc_receiver.recv r pkt
                 | None -> ()))
      in
      let to_sender pkt =
        ignore
          (Engine.Sim.after sim 0.05 (fun () ->
               match !sender_cell with
               | Some s -> Tfrc.Tfrc_sender.recv s pkt
               | None -> ()))
      in
      let sender =
        Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver ()
      in
      sender_cell := Some sender;
      let receiver =
        Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender ()
      in
      receiver_cell := Some receiver;
      Tfrc.Tfrc_sender.start sender ~at:0.;
      Engine.Sim.run sim ~until:20.;
      let d = Tfrc.Tfrc_receiver.detector receiver in
      (not (Tfrc.Loss_events.in_loss d))
      || Tfrc.Tfrc_receiver.loss_event_rate receiver > 0.)

(* Across randomized link-outage and feedback-blackout schedules the sender's
   rate stays within [min_rate, a capacity-derived bound], and the
   no-feedback expiration counter is monotone non-decreasing. With rate
   validation on, every feedback caps the rate at twice what the receiver
   reports arriving, so twice the line rate (plus the one-packet-per-RTT
   rescue) bounds it from above no matter how stale the report is. *)
let prop_tfrc_rate_bounded_under_outages =
  QCheck.Test.make ~name:"TFRC rate bounded through outages and blackouts"
    ~count:15
    QCheck.(
      quad (int_range 1 10_000) (int_range 30 150) (int_range 5 60)
        (int_range 30 200))
    (fun (seed, at10, dur10, black10) ->
      let outage_at = float_of_int at10 /. 10. in
      let outage_dur = float_of_int dur10 /. 10. in
      let black_at = float_of_int black10 /. 10. in
      let black_dur = (outage_dur /. 2.) +. 0.3 in
      let sim = Engine.Sim.create () in
      let bw = 8e5 (* bits/s: 100 KB/s of payload *) in
      let prop_delay = 0.02 +. (0.001 *. float_of_int (seed mod 10)) in
      let link =
        Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:bw ~delay:prop_delay
          ~queue:(Netsim.Droptail.create ~limit_pkts:20)
          ()
      in
      let config =
        Tfrc.Tfrc_config.default ~initial_rtt:0.1 ~min_rate:2000.
          ~rate_validation:true ()
      in
      let receiver_cell = ref None and sender_cell = ref None in
      Netsim.Link.set_dest link (fun pkt ->
          match !receiver_cell with
          | Some r -> Tfrc.Tfrc_receiver.recv r pkt
          | None -> ());
      (* Feedback path: fixed delay, silenced during the blackout window. *)
      let fb_handler, _ =
        Netsim.Faults.blackout
          ~now:(fun () -> Engine.Sim.now sim)
          ~windows:[ (black_at, black_at +. black_dur) ]
          (fun pkt ->
            ignore
              (Engine.Sim.after sim prop_delay (fun () ->
                   match !sender_cell with
                   | Some s -> Tfrc.Tfrc_sender.recv s pkt
                   | None -> ())))
      in
      let sender =
        Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1
          ~transmit:(Netsim.Link.send link)
          ()
      in
      sender_cell := Some sender;
      let receiver =
        Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:fb_handler ()
      in
      receiver_cell := Some receiver;
      Netsim.Faults.outage (Engine.Sim.runtime sim) link ~at:outage_at ~duration:outage_dur ();
      let ok = ref true in
      let upper =
        (2. *. (bw /. 8.))
        +. (float_of_int config.Tfrc.Tfrc_config.packet_size /. prop_delay)
      in
      Tfrc.Tfrc_sender.on_rate_update sender (fun _ ~rate ~rtt:_ ~p:_ ->
          if rate < config.Tfrc.Tfrc_config.min_rate -. 1e-6 || rate > upper
          then ok := false);
      let last_exp = ref 0 in
      let rec watch () =
        let e = Tfrc.Tfrc_sender.no_feedback_expirations sender in
        if e < !last_exp then ok := false;
        last_exp := e;
        ignore (Engine.Sim.after sim 0.1 watch)
      in
      ignore (Engine.Sim.at sim 0.1 (fun () -> watch ()));
      Tfrc.Tfrc_sender.start sender ~at:0.;
      Engine.Sim.run sim ~until:30.;
      let final_rate = Tfrc.Tfrc_sender.rate sender in
      !ok
      && final_rate >= config.Tfrc.Tfrc_config.min_rate -. 1e-6
      && final_rate <= upper)

(* --- Determinism across the whole stack -------------------------------------- *)

let prop_full_stack_deterministic =
  QCheck.Test.make ~name:"identical seeds give identical mixed runs" ~count:5
    (QCheck.int_range 1 10_000) (fun seed ->
      let run () =
        let params =
          {
            (Exp.Scenario.default_mixed ()) with
            n_tcp = 2;
            n_tfrc = 2;
            duration = 10.;
            warmup = 3.;
            seed;
          }
        in
        let r = Exp.Scenario.run_mixed params in
        List.map
          (fun (f : Exp.Scenario.flow_stats) -> f.mean_recv_rate)
          (r.tcp_flows @ r.tfrc_flows)
      in
      run () = run ())

(* --- Parking lot conservation --------------------------------------------------- *)

let prop_parking_lot_through_conservation =
  QCheck.Test.make ~name:"parking lot conserves through-flow packets" ~count:20
    QCheck.(pair (int_range 1 1000) (int_range 1 4))
    (fun (_seed, hops) ->
      let sim = Engine.Sim.create () in
      let lot =
        Netsim.Parking_lot.create (Engine.Sim.runtime sim) ~hops ~bandwidth:1e6 ~delay:0.002
          ~queue:(fun () -> Netsim.Droptail.create ~limit_pkts:4)
          ()
      in
      Netsim.Parking_lot.add_through_flow lot ~flow:1
        ~rtt_base:(0.01 +. (0.004 *. float_of_int hops));
      let delivered = ref 0 in
      Netsim.Parking_lot.set_dst_recv lot ~flow:1 (fun _ -> incr delivered);
      let src =
        Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:1 ~rate:1.5e6 ~pkt_size:1000
          ~transmit:(Netsim.Parking_lot.src_sender lot ~flow:1)
          ()
      in
      Traffic.Cbr.start src ~at:0.;
      Engine.Sim.run sim ~until:3.;
      Traffic.Cbr.stop src;
      Engine.Sim.run sim ~until:5.;
      let dropped = ref 0 in
      for hop = 1 to hops do
        let q = Netsim.Link.queue (Netsim.Parking_lot.link lot ~hop) in
        dropped := !dropped + q.Netsim.Queue_disc.stats.drops
      done;
      Traffic.Cbr.packets_sent src = !delivered + !dropped)

let () =
  Alcotest.run "properties"
    [
      ( "conservation",
        [
          qtest prop_dumbbell_conserves_packets;
          qtest prop_parking_lot_through_conservation;
        ] );
      ( "tcp",
        [ qtest prop_tcp_transfer_completes; qtest prop_tcp_flight_bounded ] );
      ( "tfrc",
        [
          qtest prop_tfrc_rate_and_p_in_range;
          qtest prop_tfrc_estimate_positive_after_loss;
          qtest prop_tfrc_rate_bounded_under_outages;
        ] );
      ("determinism", [ qtest prop_full_stack_deterministic ]);
    ]
