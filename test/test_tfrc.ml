(* Unit tests for the TFRC core: response function, loss-interval
   estimator, loss-event detection, RTT estimation, and the Appendix A
   closed forms. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Response_function --------------------------------------------------- *)

let test_simple_equation () =
  (* T = s*sqrt(1.5)/(R*sqrt(p)) *)
  let t =
    Tfrc.Response_function.rate Tfrc.Response_function.Simple ~s:1000 ~r:0.1
      ~t_rto:0.4 ~p:0.01
  in
  checkf ~eps:1e-6 "simple at p=1%" (1000. *. sqrt 1.5 /. (0.1 *. 0.1)) t

let test_pftk_equation_value () =
  (* Hand-computed: s=1000, R=0.1, tRTO=0.4, p=0.01:
     denom = 0.1*sqrt(0.0066667) + 0.4*3*sqrt(0.00375)*0.01*(1+0.0032) *)
  let denom =
    (0.1 *. sqrt (2. *. 0.01 /. 3.))
    +. (0.4 *. 3. *. sqrt (3. *. 0.01 /. 8.) *. 0.01 *. (1. +. (32. *. 0.0001)))
  in
  let expect = 1000. /. denom in
  let t =
    Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:0.1
      ~t_rto:0.4 ~p:0.01
  in
  checkf ~eps:1e-6 "pftk at p=1%" expect t

let test_pftk_below_simple_at_high_loss () =
  let simple =
    Tfrc.Response_function.rate Tfrc.Response_function.Simple ~s:1000 ~r:0.1
      ~t_rto:0.4 ~p:0.3
  in
  let pftk =
    Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:0.1
      ~t_rto:0.4 ~p:0.3
  in
  Alcotest.(check bool) "timeout term bites at high p" true (pftk < simple /. 3.)

let test_rate_pkts_per_rtt () =
  checkf ~eps:1e-6 "1.2/sqrt(p) at p=0.01"
    (sqrt 1.5 /. 0.1)
    (Tfrc.Response_function.rate_pkts_per_rtt Tfrc.Response_function.Simple
       ~t_rto_rtts:4. ~p:0.01)

let test_equation_validation () =
  Alcotest.check_raises "p=0 rejected"
    (Invalid_argument "Response_function: p must be in (0,1]") (fun () ->
      ignore
        (Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:0.1
           ~t_rto:0.4 ~p:0.))

let prop_rate_decreasing_in_p =
  QCheck.Test.make ~name:"rate decreasing in p" ~count:300
    QCheck.(pair (float_range 0.0001 0.5) (float_range 1.01 2.0))
    (fun (p, factor) ->
      let r k p =
        Tfrc.Response_function.rate k ~s:1000 ~r:0.1 ~t_rto:0.4 ~p
      in
      let p2 = Float.min 1. (p *. factor) in
      r Tfrc.Response_function.Pftk p2 < r Tfrc.Response_function.Pftk p
      && r Tfrc.Response_function.Simple p2 < r Tfrc.Response_function.Simple p)

let prop_rate_decreasing_in_rtt =
  QCheck.Test.make ~name:"rate decreasing in RTT" ~count:300
    QCheck.(pair (float_range 0.01 1.0) (float_range 0.001 0.3))
    (fun (r0, p) ->
      let rate r =
        Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r
          ~t_rto:(4. *. r) ~p
      in
      rate (2. *. r0) < rate r0)

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse(rate(p)) = p" ~count:200
    (QCheck.float_range 0.0005 0.4) (fun p ->
      let rate =
        Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:0.1
          ~t_rto:0.4 ~p
      in
      let p' =
        Tfrc.Response_function.inverse Tfrc.Response_function.Pftk ~s:1000
          ~r:0.1 ~t_rto:0.4 ~rate
      in
      Float.abs (p' -. p) /. p < 0.01)

let test_loss_event_fraction () =
  checkf ~eps:1e-9 "p_loss=0" 0.
    (Tfrc.Response_function.loss_event_fraction ~p_loss:0. ~n:10.);
  (* n=1: loss event fraction equals loss fraction. *)
  checkf ~eps:1e-9 "n=1 identity" 0.1
    (Tfrc.Response_function.loss_event_fraction ~p_loss:0.1 ~n:1.);
  (* For n>1 the event fraction is below the loss fraction. *)
  Alcotest.(check bool)
    "below y=x" true
    (Tfrc.Response_function.loss_event_fraction ~p_loss:0.1 ~n:10. < 0.1)

let prop_event_fraction_below_loss =
  QCheck.Test.make ~name:"event fraction <= loss probability" ~count:300
    QCheck.(pair (float_range 0.001 0.999) (float_range 1. 100.))
    (fun (p_loss, n) ->
      Tfrc.Response_function.loss_event_fraction ~p_loss ~n <= p_loss +. 1e-12)

let test_fixed_point_regression () =
  (* The convergence early-exit must agree with the plain 200-iteration
     damped fixed point it replaced, across a grid spanning light to
     severe loss and short to long timeouts. The damped map contracts with
     factor <= 1/2, so a step under 1e-12 bounds the remaining tail well
     inside the tolerance here. *)
  let reference kind ~t_rto_rtts ~p_loss ~rate_factor =
    if p_loss <= 0. then 0.
    else begin
      let g p_event =
        let p_event = Float.max 1e-8 (Float.min 1. p_event) in
        let n =
          Float.max 1.
            (rate_factor
            *. Tfrc.Response_function.rate_pkts_per_rtt kind ~t_rto_rtts
                 ~p:p_event)
        in
        Tfrc.Response_function.loss_event_fraction ~p_loss ~n
      in
      let p = ref p_loss in
      for _ = 1 to 200 do
        p := (0.5 *. !p) +. (0.5 *. g !p)
      done;
      !p
    end
  in
  List.iter
    (fun kind ->
      List.iter
        (fun t_rto_rtts ->
          List.iter
            (fun p_loss ->
              List.iter
                (fun rate_factor ->
                  checkf ~eps:1e-10
                    (Printf.sprintf "p_loss=%g t_rto_rtts=%g factor=%g" p_loss
                       t_rto_rtts rate_factor)
                    (reference kind ~t_rto_rtts ~p_loss ~rate_factor)
                    (Tfrc.Response_function.fixed_point_event_rate kind
                       ~t_rto_rtts ~p_loss ~rate_factor))
                [ 0.5; 1. ])
            [ 1e-5; 1e-4; 1e-3; 0.01; 0.05; 0.1; 0.2; 0.4 ])
        [ 1.; 4.; 12. ])
    [ Tfrc.Response_function.Pftk; Tfrc.Response_function.Simple ]

(* --- Loss_intervals ------------------------------------------------------- *)

let test_weights_paper_table () =
  (* Section 3.3, n = 8: 1,1,1,1,0.8,0.6,0.4,0.2 *)
  let w = Tfrc.Loss_intervals.weights ~n:8 ~constant:false in
  Alcotest.(check (array (float 1e-9)))
    "paper weights"
    [| 1.; 1.; 1.; 1.; 0.8; 0.6; 0.4; 0.2 |]
    w

let test_weights_constant () =
  let w = Tfrc.Loss_intervals.weights ~n:8 ~constant:true in
  Alcotest.(check (array (float 1e-9))) "constant" (Array.make 8 1.) w

let test_weights_n4 () =
  let w = Tfrc.Loss_intervals.weights ~n:4 ~constant:false in
  Alcotest.(check (array (float 1e-9)))
    "n=4" [| 1.; 1.; 2. /. 3.; 1. /. 3. |] w

let test_intervals_empty () =
  let t = Tfrc.Loss_intervals.create () in
  Alcotest.(check (option (float 0.))) "no average" None
    (Tfrc.Loss_intervals.average t);
  checkf "rate 0 when loss-free" 0. (Tfrc.Loss_intervals.loss_event_rate t)

let test_intervals_single () =
  let t = Tfrc.Loss_intervals.create ~discounting:false () in
  Tfrc.Loss_intervals.record_interval t ~length:100.;
  (match Tfrc.Loss_intervals.average t with
  | Some avg -> checkf "single interval average" 100. avg
  | None -> Alcotest.fail "expected average");
  checkf "p = 1/100" 0.01 (Tfrc.Loss_intervals.loss_event_rate t)

let test_intervals_equal_weights_average () =
  (* Four equal intervals, all within the full-weight half of n=8. *)
  let t = Tfrc.Loss_intervals.create ~discounting:false () in
  for _ = 1 to 4 do
    Tfrc.Loss_intervals.record_interval t ~length:50.
  done;
  match Tfrc.Loss_intervals.average t with
  | Some avg -> checkf "average of equal intervals" 50. avg
  | None -> Alcotest.fail "expected average"

let test_intervals_weighted_average_exact () =
  (* n=8 full history: intervals newest-to-oldest 8,7,...,1 recorded in
     order 1..8. s_hat = sum(w_i * s_i)/sum(w_i) with s_1=8 (most
     recent). *)
  let t = Tfrc.Loss_intervals.create ~discounting:false () in
  for i = 1 to 8 do
    Tfrc.Loss_intervals.record_interval t ~length:(float_of_int i)
  done;
  let w = [| 1.; 1.; 1.; 1.; 0.8; 0.6; 0.4; 0.2 |] in
  let num = ref 0. and den = ref 0. in
  for k = 0 to 7 do
    num := !num +. (w.(k) *. float_of_int (8 - k));
    den := !den +. w.(k)
  done;
  match Tfrc.Loss_intervals.average t with
  | Some avg -> checkf ~eps:1e-9 "weighted average" (!num /. !den) avg
  | None -> Alcotest.fail "expected average"

let test_intervals_s0_rule () =
  (* The open interval only raises the estimate when including it would
     increase the average (Section 3.3). *)
  let t = Tfrc.Loss_intervals.create ~discounting:false () in
  for _ = 1 to 8 do
    Tfrc.Loss_intervals.record_interval t ~length:100.
  done;
  let base =
    match Tfrc.Loss_intervals.average t with Some a -> a | None -> 0.
  in
  (* Small s0: no effect. *)
  Tfrc.Loss_intervals.set_open_interval t ~packets:5.;
  (match Tfrc.Loss_intervals.average t with
  | Some a -> checkf "small s0 ignored" base a
  | None -> Alcotest.fail "expected average");
  (* Huge s0: estimate rises. *)
  Tfrc.Loss_intervals.set_open_interval t ~packets:1000.;
  match Tfrc.Loss_intervals.average t with
  | Some a -> Alcotest.(check bool) "large s0 raises estimate" true (a > base)
  | None -> Alcotest.fail "expected average"

let test_intervals_seed () =
  let t = Tfrc.Loss_intervals.create () in
  Tfrc.Loss_intervals.seed t ~interval:42.;
  (match Tfrc.Loss_intervals.average t with
  | Some a -> checkf "seeded" 42. a
  | None -> Alcotest.fail "expected average");
  Alcotest.check_raises "cannot seed twice"
    (Invalid_argument "Loss_intervals.seed: history not empty") (fun () ->
      Tfrc.Loss_intervals.seed t ~interval:10.)

let test_intervals_shift () =
  (* Oldest intervals fall out after n new ones. *)
  let t = Tfrc.Loss_intervals.create ~discounting:false () in
  Tfrc.Loss_intervals.record_interval t ~length:10000.;
  for _ = 1 to 8 do
    Tfrc.Loss_intervals.record_interval t ~length:10.
  done;
  match Tfrc.Loss_intervals.average t with
  | Some a -> checkf "old interval evicted" 10. a
  | None -> Alcotest.fail "expected average"

let test_history_discounting_speeds_decay () =
  (* After a long loss-free stretch, the discounted estimator must report a
     larger average interval (smaller p) than the undiscounted one. *)
  let make discounting =
    let t = Tfrc.Loss_intervals.create ~discounting () in
    for _ = 1 to 8 do
      Tfrc.Loss_intervals.record_interval t ~length:100.
    done;
    Tfrc.Loss_intervals.set_open_interval t ~packets:500.;
    match Tfrc.Loss_intervals.average t with Some a -> a | None -> 0.
  in
  let plain = make false and discounted = make true in
  Alcotest.(check bool)
    (Printf.sprintf "discounted %.1f > plain %.1f" discounted plain)
    true (discounted > plain)

let test_discount_locked_in () =
  (* When the long interval closes, discounting of older intervals
     persists. *)
  let t = Tfrc.Loss_intervals.create ~discounting:true () in
  for _ = 1 to 8 do
    Tfrc.Loss_intervals.record_interval t ~length:100.
  done;
  Tfrc.Loss_intervals.set_open_interval t ~packets:1000.;
  Tfrc.Loss_intervals.record_interval t ~length:1000.;
  let with_discount =
    match Tfrc.Loss_intervals.average t with Some a -> a | None -> 0.
  in
  (* Undiscounted comparison: the same history without discounting. *)
  let u = Tfrc.Loss_intervals.create ~discounting:false () in
  for _ = 1 to 8 do
    Tfrc.Loss_intervals.record_interval u ~length:100.
  done;
  Tfrc.Loss_intervals.record_interval u ~length:1000.;
  let without =
    match Tfrc.Loss_intervals.average u with Some a -> a | None -> 0.
  in
  Alcotest.(check bool)
    (Printf.sprintf "locked-in discount %.1f > %.1f" with_discount without)
    true (with_discount > without)

let test_discount_threshold_clamp_exact () =
  (* n=4, constant weights, two closed 100s. With s0 = 1000 the raw factor
     2*avg/s0 = 0.2 clamps to the 0.25 threshold:
       s_hat = 100
       s_hat_new = (1000 + 0.25*100 + 0.25*100) / (1 + 0.25 + 0.25) = 700.
     With s0 = 300 the factor 200/300 = 2/3 is above the threshold:
       s_hat_new = (300 + 2/3*100*2) / (1 + 2/3*2) = 433.33/2.33 = 185.71. *)
  let make s0 =
    let t =
      Tfrc.Loss_intervals.create ~n:4 ~constant_weights:true ~discounting:true
        ~discount_threshold:0.25 ()
    in
    Tfrc.Loss_intervals.record_interval t ~length:100.;
    Tfrc.Loss_intervals.record_interval t ~length:100.;
    Tfrc.Loss_intervals.set_open_interval t ~packets:s0;
    match Tfrc.Loss_intervals.average t with
    | Some a -> a
    | None -> Alcotest.fail "expected average"
  in
  checkf ~eps:1e-9 "clamped at threshold" 700. (make 1000.);
  checkf ~eps:1e-6 "smooth factor above threshold" (1300. /. 7.) (make 300.)

let test_discount_lock_exact () =
  (* Same setup; when the 1000-packet open interval finally closes (as a
     50-packet interval — the loss ended it early), the 0.25 discount in
     force is multiplied into both stored 100s:
       mean_closed = (50 + 0.25*100 + 0.25*100) / (1 + 0.25 + 0.25) = 66.67,
     not (50 + 100 + 100)/3 = 83.33 as it would be without locking. *)
  let t =
    Tfrc.Loss_intervals.create ~n:4 ~constant_weights:true ~discounting:true
      ~discount_threshold:0.25 ()
  in
  Tfrc.Loss_intervals.record_interval t ~length:100.;
  Tfrc.Loss_intervals.record_interval t ~length:100.;
  Tfrc.Loss_intervals.set_open_interval t ~packets:1000.;
  Tfrc.Loss_intervals.record_interval t ~length:50.;
  (match Tfrc.Loss_intervals.mean_closed t with
  | Some m -> checkf ~eps:1e-6 "locked discount factors" (100. /. 1.5) m
  | None -> Alcotest.fail "expected mean");
  Alcotest.(check int) "three closed intervals" 3
    (Tfrc.Loss_intervals.n_closed t)

let test_ring_full_average_exact () =
  (* n=4 ring wraps: after recording 1..6 only 3,4,5,6 remain. With
     constant weights and s0 = 10:
       s_hat = (3+4+5+6)/4 = 4.5
       s_hat_new = (10+6+5+4)/4 = 6.25  (weights shift, oldest drops)
     and the estimator takes the max. *)
  let t =
    Tfrc.Loss_intervals.create ~n:4 ~constant_weights:true ~discounting:false
      ()
  in
  for i = 1 to 6 do
    Tfrc.Loss_intervals.record_interval t ~length:(float_of_int i)
  done;
  Alcotest.(check int) "ring capped at n" 4 (Tfrc.Loss_intervals.n_closed t);
  (match Tfrc.Loss_intervals.mean_closed t with
  | Some m -> checkf ~eps:1e-9 "closed mean after wrap" 4.5 m
  | None -> Alcotest.fail "expected mean");
  Tfrc.Loss_intervals.set_open_interval t ~packets:10.;
  match Tfrc.Loss_intervals.average t with
  | Some a -> checkf ~eps:1e-9 "shifted mean wins" 6.25 a
  | None -> Alcotest.fail "expected average"

let prop_rate_in_unit_interval =
  QCheck.Test.make ~name:"loss event rate in [0,1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0. 1e4))
    (fun intervals ->
      let t = Tfrc.Loss_intervals.create () in
      List.iter
        (fun l -> Tfrc.Loss_intervals.record_interval t ~length:l)
        intervals;
      let p = Tfrc.Loss_intervals.loss_event_rate t in
      p >= 0. && p <= 1.)

let prop_estimate_decreases_only_with_evidence =
  (* Growing the open interval can only lower the loss-rate estimate. *)
  QCheck.Test.make ~name:"open interval growth never raises p" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 10) (float_range 1. 1e3))
        (float_range 0. 1e4))
    (fun (intervals, s0) ->
      let t = Tfrc.Loss_intervals.create () in
      List.iter
        (fun l -> Tfrc.Loss_intervals.record_interval t ~length:l)
        intervals;
      Tfrc.Loss_intervals.set_open_interval t ~packets:s0;
      let p1 = Tfrc.Loss_intervals.loss_event_rate t in
      Tfrc.Loss_intervals.set_open_interval t ~packets:(s0 +. 100.);
      let p2 = Tfrc.Loss_intervals.loss_event_rate t in
      p2 <= p1 +. 1e-12)

let prop_weights_normalized_shape =
  QCheck.Test.make ~name:"weight vectors well-formed" ~count:50
    (QCheck.int_range 1 16) (fun half ->
      let n = 2 * half in
      let w = Tfrc.Loss_intervals.weights ~n ~constant:false in
      Array.length w = n
      && Array.for_all (fun x -> x > 0. && x <= 1.) w
      && (* non-increasing *)
      fst
        (Array.fold_left
           (fun (ok, prev) x -> (ok && x <= prev +. 1e-12, x))
           (true, infinity) w))

(* --- Loss_events ----------------------------------------------------------- *)

let feed detector intervals ~seq ~sent_at ~rtt =
  Tfrc.Loss_events.on_packet detector ~seq ~sent_at ~rtt ~intervals

let test_detector_no_loss () =
  let d = Tfrc.Loss_events.create () in
  let iv = Tfrc.Loss_intervals.create () in
  for seq = 0 to 20 do
    let o = feed d iv ~seq ~sent_at:(0.01 *. float_of_int seq) ~rtt:0.1 in
    Alcotest.(check int) "no events" 0 o.Tfrc.Loss_events.new_events
  done;
  Alcotest.(check bool) "not in loss" false (Tfrc.Loss_events.in_loss d);
  Alcotest.(check int) "max seq" 20 (Tfrc.Loss_events.max_seq d)

let test_detector_confirms_after_ndupack () =
  let d = Tfrc.Loss_events.create ~ndupack:3 () in
  let iv = Tfrc.Loss_intervals.create () in
  ignore (feed d iv ~seq:0 ~sent_at:0.00 ~rtt:0.1);
  ignore (feed d iv ~seq:2 ~sent_at:0.02 ~rtt:0.1) (* hole at 1 *);
  Alcotest.(check bool) "not yet confirmed" false (Tfrc.Loss_events.in_loss d);
  ignore (feed d iv ~seq:3 ~sent_at:0.03 ~rtt:0.1);
  let o = feed d iv ~seq:4 ~sent_at:0.04 ~rtt:0.1 in
  Alcotest.(check int) "first loss event" 1 o.Tfrc.Loss_events.new_events;
  Alcotest.(check bool) "first_loss flagged" true o.Tfrc.Loss_events.first_loss;
  Alcotest.(check int) "one lost packet" 1 (Tfrc.Loss_events.lost_packets d)

let test_detector_reordering_rescue () =
  let d = Tfrc.Loss_events.create ~ndupack:3 () in
  let iv = Tfrc.Loss_intervals.create () in
  ignore (feed d iv ~seq:0 ~sent_at:0.00 ~rtt:0.1);
  ignore (feed d iv ~seq:2 ~sent_at:0.02 ~rtt:0.1);
  (* late arrival of 1 before confirmation *)
  ignore (feed d iv ~seq:1 ~sent_at:0.01 ~rtt:0.1);
  ignore (feed d iv ~seq:3 ~sent_at:0.03 ~rtt:0.1);
  ignore (feed d iv ~seq:4 ~sent_at:0.04 ~rtt:0.1);
  ignore (feed d iv ~seq:5 ~sent_at:0.05 ~rtt:0.1);
  Alcotest.(check bool) "reordered packet not counted lost" false
    (Tfrc.Loss_events.in_loss d)

let test_detector_coalesces_within_rtt () =
  (* Two packets lost 10 ms apart with RTT 100 ms: one loss event. *)
  let d = Tfrc.Loss_events.create ~ndupack:1 () in
  let iv = Tfrc.Loss_intervals.create () in
  ignore (feed d iv ~seq:0 ~sent_at:0.00 ~rtt:0.1);
  (* holes at 1 and 3; sent times interpolate to ~0.01 and ~0.03 *)
  ignore (feed d iv ~seq:2 ~sent_at:0.02 ~rtt:0.1);
  ignore (feed d iv ~seq:4 ~sent_at:0.04 ~rtt:0.1);
  ignore (feed d iv ~seq:5 ~sent_at:0.05 ~rtt:0.1);
  Alcotest.(check int) "both confirmed lost" 2 (Tfrc.Loss_events.lost_packets d);
  Alcotest.(check int) "one event" 1 (Tfrc.Loss_events.loss_events d)

let test_detector_separate_events_across_rtt () =
  (* Two losses 500 ms apart with RTT 100 ms: two loss events and a
     recorded interval between their start seqs. *)
  let d = Tfrc.Loss_events.create ~ndupack:1 () in
  let iv = Tfrc.Loss_intervals.create () in
  let send_time seq = 0.01 *. float_of_int seq in
  (* First 60 packets with a hole at 10; then a hole at 50. *)
  for seq = 0 to 60 do
    if seq <> 10 && seq <> 50 then
      ignore (feed d iv ~seq ~sent_at:(send_time seq) ~rtt:0.1)
  done;
  Alcotest.(check int) "two events" 2 (Tfrc.Loss_events.loss_events d);
  Alcotest.(check int) "one closed interval" 1 (Tfrc.Loss_intervals.n_closed iv);
  (* Interval length = distance between event starts = 40. *)
  match Tfrc.Loss_intervals.average iv with
  | Some a ->
      Alcotest.(check bool)
        (Printf.sprintf "interval ~40, got %.1f" a)
        true
        (Float.abs (a -. 40.) < 1.)
  | None -> Alcotest.fail "expected average"

let test_detector_open_interval_tracks () =
  let d = Tfrc.Loss_events.create ~ndupack:1 () in
  let iv = Tfrc.Loss_intervals.create () in
  for seq = 0 to 30 do
    if seq <> 5 then
      ignore (feed d iv ~seq ~sent_at:(0.01 *. float_of_int seq) ~rtt:0.1)
  done;
  checkf "open interval = max_seq - event_start" 25.
    (Tfrc.Loss_intervals.open_interval iv)

(* --- Rtt_estimator --------------------------------------------------------- *)

let test_rtt_initial () =
  let e = Tfrc.Rtt_estimator.create ~gain:0.1 ~initial_rtt:0.5 ~t_rto_factor:4. in
  checkf "initial" 0.5 (Tfrc.Rtt_estimator.rtt e);
  checkf "t_rto factor" 2.0 (Tfrc.Rtt_estimator.t_rto e);
  Alcotest.(check bool) "no sample yet" false (Tfrc.Rtt_estimator.has_sample e)

let test_rtt_first_sample_replaces () =
  let e = Tfrc.Rtt_estimator.create ~gain:0.1 ~initial_rtt:0.5 ~t_rto_factor:4. in
  Tfrc.Rtt_estimator.sample e 0.08;
  checkf "first sample replaces initial" 0.08 (Tfrc.Rtt_estimator.rtt e)

let test_rtt_ewma () =
  let e = Tfrc.Rtt_estimator.create ~gain:0.1 ~initial_rtt:0.5 ~t_rto_factor:4. in
  Tfrc.Rtt_estimator.sample e 0.1;
  Tfrc.Rtt_estimator.sample e 0.2;
  checkf ~eps:1e-9 "ewma" ((0.9 *. 0.1) +. (0.1 *. 0.2)) (Tfrc.Rtt_estimator.rtt e)

let test_rtt_delay_factor () =
  let e = Tfrc.Rtt_estimator.create ~gain:0.1 ~initial_rtt:0.1 ~t_rto_factor:4. in
  for _ = 1 to 50 do
    Tfrc.Rtt_estimator.sample e 0.1
  done;
  checkf ~eps:1e-6 "steady state factor 1" 1. (Tfrc.Rtt_estimator.delay_factor e);
  (* A sudden RTT spike raises the factor above 1 (stronger damping). *)
  Tfrc.Rtt_estimator.sample e 0.4;
  Alcotest.(check bool)
    "spike raises factor" true
    (Tfrc.Rtt_estimator.delay_factor e > 1.2)

(* --- Analysis ---------------------------------------------------------------- *)

let test_analysis_increase_bounds () =
  (* Paper: <= 0.12 normal, <= 0.28-0.32 with discounting, <= ~0.7 at w=1 *)
  let b_normal = Tfrc.Analysis.max_delta_t ~w:(Tfrc.Analysis.recent_weight ~n:8) in
  let b_disc =
    Tfrc.Analysis.max_delta_t
      ~w:(Tfrc.Analysis.recent_weight_discounted ~n:8 ())
  in
  let b_full = Tfrc.Analysis.max_delta_t ~w:1.0 in
  Alcotest.(check bool) "normal ~0.12" true (b_normal > 0.10 && b_normal < 0.13);
  Alcotest.(check bool) "discounted ~0.28-0.33" true (b_disc > 0.25 && b_disc < 0.34);
  Alcotest.(check bool) "w=1 ~0.7" true (b_full > 0.65 && b_full < 0.75);
  Alcotest.(check bool) "all below TCP's 1 pkt/RTT" true (b_full < 1.)

let test_analysis_recent_weight () =
  checkf ~eps:1e-9 "w1/sum = 1/6" (1. /. 6.) (Tfrc.Analysis.recent_weight ~n:8)

let prop_delta_t_positive =
  QCheck.Test.make ~name:"delta_t positive and below 1.2*w" ~count:200
    QCheck.(pair (float_range 1. 1e5) (float_range 0.01 1.))
    (fun (a, w) ->
      let d = Tfrc.Analysis.delta_t ~a ~w in
      d > 0. && d <= 1.2 *. w *. 1.2)

let () =
  Alcotest.run "tfrc"
    [
      ( "response_function",
        [
          Alcotest.test_case "simple equation" `Quick test_simple_equation;
          Alcotest.test_case "pftk value" `Quick test_pftk_equation_value;
          Alcotest.test_case "timeout term at high loss" `Quick
            test_pftk_below_simple_at_high_loss;
          Alcotest.test_case "pkts per rtt" `Quick test_rate_pkts_per_rtt;
          Alcotest.test_case "validation" `Quick test_equation_validation;
          Alcotest.test_case "loss event fraction" `Quick test_loss_event_fraction;
          Alcotest.test_case "fixed point early-exit regression" `Quick
            test_fixed_point_regression;
          qtest prop_rate_decreasing_in_p;
          qtest prop_rate_decreasing_in_rtt;
          qtest prop_inverse_roundtrip;
          qtest prop_event_fraction_below_loss;
        ] );
      ( "loss_intervals",
        [
          Alcotest.test_case "paper weight table" `Quick test_weights_paper_table;
          Alcotest.test_case "constant weights" `Quick test_weights_constant;
          Alcotest.test_case "n=4 weights" `Quick test_weights_n4;
          Alcotest.test_case "empty" `Quick test_intervals_empty;
          Alcotest.test_case "single interval" `Quick test_intervals_single;
          Alcotest.test_case "equal intervals" `Quick
            test_intervals_equal_weights_average;
          Alcotest.test_case "weighted average exact" `Quick
            test_intervals_weighted_average_exact;
          Alcotest.test_case "s0 inclusion rule" `Quick test_intervals_s0_rule;
          Alcotest.test_case "seed" `Quick test_intervals_seed;
          Alcotest.test_case "eviction" `Quick test_intervals_shift;
          Alcotest.test_case "history discounting" `Quick
            test_history_discounting_speeds_decay;
          Alcotest.test_case "discount locked in" `Quick test_discount_locked_in;
          Alcotest.test_case "discount threshold clamp (exact)" `Quick
            test_discount_threshold_clamp_exact;
          Alcotest.test_case "discount lock (exact)" `Quick
            test_discount_lock_exact;
          Alcotest.test_case "ring-full average (exact)" `Quick
            test_ring_full_average_exact;
          qtest prop_rate_in_unit_interval;
          qtest prop_estimate_decreases_only_with_evidence;
          qtest prop_weights_normalized_shape;
        ] );
      ( "loss_events",
        [
          Alcotest.test_case "no loss" `Quick test_detector_no_loss;
          Alcotest.test_case "ndupack confirmation" `Quick
            test_detector_confirms_after_ndupack;
          Alcotest.test_case "reordering rescue" `Quick
            test_detector_reordering_rescue;
          Alcotest.test_case "coalesces within rtt" `Quick
            test_detector_coalesces_within_rtt;
          Alcotest.test_case "separate events across rtt" `Quick
            test_detector_separate_events_across_rtt;
          Alcotest.test_case "open interval tracks" `Quick
            test_detector_open_interval_tracks;
        ] );
      ( "rtt_estimator",
        [
          Alcotest.test_case "initial" `Quick test_rtt_initial;
          Alcotest.test_case "first sample replaces" `Quick
            test_rtt_first_sample_replaces;
          Alcotest.test_case "ewma" `Quick test_rtt_ewma;
          Alcotest.test_case "delay factor" `Quick test_rtt_delay_factor;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "increase bounds" `Quick test_analysis_increase_bounds;
          Alcotest.test_case "recent weight" `Quick test_analysis_recent_weight;
          qtest prop_delta_t_positive;
        ] );
    ]
