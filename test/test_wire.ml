(* Wire layer: codec round-trip and hostile-input behavior, shaper
   determinism, warp-loop scheduling parity with Sim, and a real-UDP
   loopback transfer. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fresh_rt () = Engine.Sim.runtime (Engine.Sim.create ())

(* --- Codec -------------------------------------------------------------- *)

let mk_packet rt ?(ecn = false) ~flow ~seq ~size ~sent_at payload =
  let p = Netsim.Packet.make rt ~ecn ~flow ~seq ~size ~now:sent_at payload in
  p

let sample_payloads : Netsim.Packet.payload list =
  [
    Data;
    Tfrc_data { rtt = 0.04637 };
    Tfrc_data { rtt = 1e-300 };
    Tfrc_feedback
      { p = 0.0123; recv_rate = 1.25e6; ts_echo = 17.75; ts_delay = 0.002 };
    Tfrc_feedback { p = 0.; recv_rate = 0.; ts_echo = -0.; ts_delay = 0.1 };
    Tcp_ack { ack = 42; sack = []; ece = false };
    Tcp_ack { ack = 7; sack = [ (10, 12); (20, 25) ]; ece = true };
  ]

(* Field-level equality; ids are per-runtime so they legitimately differ. *)
let packet_eq (a : Netsim.Packet.t) (b : Netsim.Packet.t) =
  a.flow = b.flow && a.seq = b.seq && a.size = b.size
  && Engine.Hexfloat.equal a.sent_at b.sent_at
  && a.ecn_capable = b.ecn_capable
  && a.ecn_marked = b.ecn_marked
  && a.corrupted = b.corrupted
  &&
  match (a.payload, b.payload) with
  | Data, Data -> true
  | Tfrc_data { rtt = x }, Tfrc_data { rtt = y } -> Engine.Hexfloat.equal x y
  | Tfrc_feedback x, Tfrc_feedback y ->
      Engine.Hexfloat.equal x.p y.p
      && Engine.Hexfloat.equal x.recv_rate y.recv_rate
      && Engine.Hexfloat.equal x.ts_echo y.ts_echo
      && Engine.Hexfloat.equal x.ts_delay y.ts_delay
  | Tcp_ack x, Tcp_ack y -> x.ack = y.ack && x.sack = y.sack && x.ece = y.ece
  | _ -> false

let test_codec_roundtrip () =
  let rt = fresh_rt () in
  List.iteri
    (fun i payload ->
      let p =
        mk_packet rt ~ecn:(i mod 2 = 0) ~flow:(i + 1) ~seq:(i * 7)
          ~size:(1000 + i) ~sent_at:(float_of_int i *. 0.125)
          payload
      in
      p.ecn_marked <- i mod 3 = 0;
      let frame = Wire.Codec.encode p in
      match Wire.Codec.decode_packet rt frame with
      | Error e -> Alcotest.failf "decode %d: %s" i (Wire.Codec.error_to_string e)
      | Ok p' ->
          check Alcotest.bool
            (Printf.sprintf "payload %d round-trips" i)
            true (packet_eq p p');
          (* Re-encoding the decoded packet must give the same bytes:
             string equality covers every field bit-for-bit. *)
          check Alcotest.string
            (Printf.sprintf "payload %d re-encodes identically" i)
            frame (Wire.Codec.encode p'))
    sample_payloads

let arb_payload : Netsim.Packet.payload QCheck.arbitrary =
  let open QCheck.Gen in
  let sp =
    (* Floats the wire must carry losslessly, including the awkward ones. *)
    oneofl
      [ 0.; -0.; 0.1; 1e-300; 2e-308; 1.5e15; 0.04637; infinity *. 0. |> Float.abs ]
  in
  let sp = map (fun f -> if Float.is_nan f then 0.25 else f) sp in
  let gen =
    frequency
      [
        (1, return Netsim.Packet.Data);
        (2, map (fun rtt -> Netsim.Packet.Tfrc_data { rtt }) sp);
        ( 3,
          map
            (fun ((p, recv_rate), (ts_echo, ts_delay)) ->
              Netsim.Packet.Tfrc_feedback { p; recv_rate; ts_echo; ts_delay })
            (pair (pair sp sp) (pair sp sp)) );
        ( 2,
          map
            (fun (ack, (sack, ece)) -> Netsim.Packet.Tcp_ack { ack; sack; ece })
            (pair (int_bound 1_000_000)
               (pair
                  (list_size (int_bound 5)
                     (map
                        (fun (lo, n) -> (lo, lo + n))
                        (pair (int_bound 100_000) (int_bound 50))))
                  bool)) );
      ]
  in
  QCheck.make gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips arbitrary packets" ~count:300
    (QCheck.triple arb_payload
       (QCheck.int_bound 100_000)
       (QCheck.int_bound 10_000))
    (fun (payload, seq, flow) ->
      let rt = fresh_rt () in
      let p =
        mk_packet rt ~flow ~seq ~size:((seq mod 1500) + 1)
          ~sent_at:(float_of_int seq *. 0.01)
          payload
      in
      let frame = Wire.Codec.encode p in
      match Wire.Codec.decode_packet rt frame with
      | Error e -> QCheck.Test.fail_report (Wire.Codec.error_to_string e)
      | Ok p' -> packet_eq p p' && String.equal frame (Wire.Codec.encode p'))

let test_codec_rejects_hostile () =
  let rt = fresh_rt () in
  let p =
    mk_packet rt ~flow:3 ~seq:9 ~size:1000 ~sent_at:1.5
      (Tfrc_feedback
         { p = 0.01; recv_rate = 5e5; ts_echo = 1.25; ts_delay = 0.004 })
  in
  let frame = Wire.Codec.encode p in
  let expect_error what = function
    | Ok _ -> Alcotest.failf "%s decoded successfully" what
    | Error _ -> ()
  in
  (* Every truncation of a valid frame must be rejected. *)
  for len = 0 to String.length frame - 1 do
    expect_error
      (Printf.sprintf "truncation to %d bytes" len)
      (Wire.Codec.decode rt (String.sub frame 0 len))
  done;
  (* Every single-bit flip must be rejected: the checksum covers all
     bytes outside its own field, and flips inside the field mismatch
     the recomputation. *)
  for byte = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      expect_error
        (Printf.sprintf "bit flip at %d.%d" byte bit)
        (Wire.Codec.decode rt (Bytes.to_string b))
    done
  done;
  (* Trailing garbage, oversized input, and junk never raise. *)
  expect_error "trailing garbage" (Wire.Codec.decode rt (frame ^ "x"));
  expect_error "oversized"
    (Wire.Codec.decode rt (String.make (Wire.Codec.max_frame + 1) 'T'));
  expect_error "empty" (Wire.Codec.decode rt "");
  expect_error "junk" (Wire.Codec.decode rt "this is not a TFRC frame");
  (* A sack count pointing past the end of the datagram. *)
  let b = Bytes.of_string frame in
  Bytes.set_uint8 b 3 1 (* claim Tcp_ack *);
  expect_error "tag swapped" (Wire.Codec.decode rt (Bytes.to_string b))

let test_codec_encode_validates () =
  let rt = fresh_rt () in
  let p = mk_packet rt ~flow:(-1) ~seq:0 ~size:10 ~sent_at:0. Data in
  (match Wire.Codec.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative flow encoded");
  let p = mk_packet rt ~flow:1 ~seq:0x1_0000_0000 ~size:10 ~sent_at:0. Data in
  match Wire.Codec.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range seq encoded"

(* --- Codec v2: session epochs and control frames ------------------------ *)

let test_codec_epoch_roundtrip () =
  let rt = fresh_rt () in
  let p =
    mk_packet rt ~flow:5 ~seq:3 ~size:1200 ~sent_at:2.5
      (Tfrc_data { rtt = 0.05 })
  in
  List.iter
    (fun epoch ->
      let frame = Wire.Codec.encode ~epoch p in
      match Wire.Codec.decode rt frame with
      | Error e ->
          Alcotest.failf "epoch %d: %s" epoch (Wire.Codec.error_to_string e)
      | Ok m ->
          check Alcotest.int "epoch carried" epoch m.Wire.Codec.epoch;
          check Alcotest.int "flow carried" 5 m.flow;
          (match m.body with
          | Wire.Codec.Packet p' ->
              check Alcotest.bool "packet intact" true (packet_eq p p')
          | _ -> Alcotest.fail "data frame decoded to a control message"))
    [ 0; 1; 7; Wire.Codec.max_epoch ];
  match Wire.Codec.encode ~epoch:(Wire.Codec.max_epoch + 1) p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range epoch encoded"

let test_codec_control_frames () =
  let rt = fresh_rt () in
  let close = Wire.Codec.encode_close ~epoch:3 ~flow:9 ~now:1.25 in
  (match Wire.Codec.decode rt close with
  | Ok { Wire.Codec.epoch = 3; flow = 9; body = Wire.Codec.Close } -> ()
  | Ok _ -> Alcotest.fail "CLOSE decoded to the wrong message"
  | Error e -> Alcotest.failf "CLOSE: %s" (Wire.Codec.error_to_string e));
  let ack = Wire.Codec.encode_close_ack ~epoch:3 ~flow:9 ~now:1.5 in
  (match Wire.Codec.decode rt ack with
  | Ok { Wire.Codec.epoch = 3; flow = 9; body = Wire.Codec.Close_ack } -> ()
  | Ok _ -> Alcotest.fail "CLOSE-ACK decoded to the wrong message"
  | Error e -> Alcotest.failf "CLOSE-ACK: %s" (Wire.Codec.error_to_string e));
  (* Control frames are data-plane errors for pre-session callers. *)
  match Wire.Codec.decode_packet rt close with
  | Error (Wire.Codec.Bad_value _) -> ()
  | _ -> Alcotest.fail "decode_packet accepted a control frame"

let test_codec_rejects_v1 () =
  (* A frame claiming the old version must fail with Bad_version, not be
     misparsed: the epoch/checksum fields moved between v1 and v2. *)
  let rt = fresh_rt () in
  let p = mk_packet rt ~flow:1 ~seq:2 ~size:100 ~sent_at:0.5 Data in
  let b = Bytes.of_string (Wire.Codec.encode p) in
  Bytes.set_uint8 b 2 1;
  match Wire.Codec.decode rt (Bytes.to_string b) with
  | Error (Wire.Codec.Bad_version 1) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Wire.Codec.error_to_string e)
  | Ok _ -> Alcotest.fail "v1 frame decoded"

(* --- Shaper ------------------------------------------------------------- *)

(* Same seed => identical drop/delay/reorder pattern, on any runtime. *)
let shaper_trace ~seed ~config n =
  let sim = Engine.Sim.create ~trace:(Engine.Trace.create ()) () in
  let rt = Engine.Sim.runtime sim in
  let log = ref [] in
  let sh =
    Wire.Shaper.create rt ~seed ~config
      ~deliver:(fun i ->
        log := (i, Engine.Runtime.now rt) :: !log)
      ()
  in
  for i = 1 to n do
    Wire.Shaper.send sh i
  done;
  Engine.Sim.run sim ~until:10.;
  (List.rev !log, Wire.Shaper.dropped sh, Wire.Shaper.reordered sh)

let test_shaper_deterministic () =
  let config =
    { Wire.Shaper.loss = 0.2; delay = 0.05; jitter = 0.02; reorder = 0.1 }
  in
  let a = shaper_trace ~seed:7 ~config 500 in
  let b = shaper_trace ~seed:7 ~config 500 in
  let c = shaper_trace ~seed:8 ~config 500 in
  check Alcotest.bool "same seed, same trace" true (a = b);
  let log_a, dropped_a, _ = a and log_c, _, _ = c in
  check Alcotest.bool "different seed differs" true (log_a <> log_c);
  check Alcotest.bool "losses happened" true (dropped_a > 0);
  check Alcotest.int "drops + deliveries = sends" 500
    (dropped_a + List.length log_a)

let test_shaper_passthrough_ordered () =
  let log, dropped, reordered =
    shaper_trace ~seed:3 ~config:Wire.Shaper.passthrough 100
  in
  check Alcotest.int "nothing dropped" 0 dropped;
  check Alcotest.int "nothing reordered" 0 reordered;
  check
    Alcotest.(list int)
    "FIFO order preserved"
    (List.init 100 (fun i -> i + 1))
    (List.map fst log)

(* --- Faultio ------------------------------------------------------------ *)

(* Timer-driven traffic between two real sockets, send faults on one
   side and recv faults on the other. Returns everything observable so
   determinism can compare whole runs. *)
let faultio_session ~seed =
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let rt = Wire.Loop.runtime loop in
  let send_plan =
    {
      Wire.Faultio.no_faults with
      send_eagain = 0.15;
      send_eintr = 0.1;
      send_refused = 0.05;
    }
  in
  let recv_plan =
    {
      Wire.Faultio.no_faults with
      recv_drop = 0.1;
      recv_truncate = 0.1;
      recv_eintr = 0.1;
    }
  in
  let fa = Wire.Faultio.wrap rt ~seed ~plan:send_plan (Wire.Netio.unix ()) in
  let fb =
    Wire.Faultio.wrap rt ~seed:(seed + 1) ~plan:recv_plan (Wire.Netio.unix ())
  in
  let a = Wire.Udp.create loop ~netio:(Wire.Faultio.netio fa) () in
  let b = Wire.Udp.create loop ~netio:(Wire.Faultio.netio fb) () in
  let got = ref [] in
  Wire.Udp.set_handler b (fun data _src -> got := data :: !got);
  let dest = Wire.Udp.addr ~port:(Wire.Udp.port b) in
  for i = 1 to 200 do
    ignore
      (Wire.Loop.at loop
         (float_of_int i *. 0.01)
         (fun () -> Wire.Udp.send a ~dest (Printf.sprintf "datagram-%03d" i)))
  done;
  Wire.Loop.run loop ~until:3.;
  Wire.Loop.settle_io loop;
  let r =
    ( Wire.Faultio.log fa,
      Wire.Faultio.log fb,
      Wire.Faultio.counts fa,
      Wire.Faultio.counts fb,
      (Wire.Udp.datagrams_sent a, Wire.Udp.send_drops a),
      (Wire.Faultio.pulled fb, Wire.Faultio.drops fb, Wire.Faultio.truncated fb),
      List.rev !got )
  in
  Wire.Udp.close a;
  Wire.Udp.close b;
  r

let test_faultio_deterministic () =
  let x = faultio_session ~seed:5 in
  let y = faultio_session ~seed:5 in
  let z = faultio_session ~seed:6 in
  check Alcotest.bool "same seed, same injections and deliveries" true (x = y);
  let log_x, _, _, _, _, _, _ = x and log_z, _, _, _, _, _, _ = z in
  check Alcotest.bool "different seed differs" true (log_x <> log_z);
  check Alcotest.bool "send faults fired" true (log_x <> [])

let test_faultio_conservation () =
  (* Every datagram is accounted for exactly once: sends either failed at
     the syscall (drops) or reached the kernel; everything the kernel
     delivered was pulled, and every pull was dropped, truncated-then-
     delivered, or delivered intact. *)
  let log_a, _, _, _, (sent, sdrops), (pulled, fdrops, trunc), got =
    faultio_session ~seed:5
  in
  check Alcotest.int "attempts = sent + syscall drops" 200 (sent + sdrops);
  check Alcotest.int "kernel conserved datagrams" sent pulled;
  check Alcotest.int "pulls = fault drops + deliveries" pulled
    (fdrops + List.length got);
  check Alcotest.bool "some of everything happened" true
    (sdrops > 0 && fdrops > 0 && trunc > 0 && log_a <> []);
  (* Truncation delivers a strict prefix, never garbage: every delivery
     matches its sent form "datagram-NNN" up to its own length. *)
  List.iter
    (fun d ->
      let n = String.length d in
      check Alcotest.bool "delivery is a datagram prefix" true
        (n <= 12 && String.sub d 0 (min n 9) = String.sub "datagram-" 0 (min n 9)))
    got

let test_faultio_validates_plan () =
  let rt = fresh_rt () in
  (match
     Wire.Faultio.wrap rt ~seed:1
       ~plan:{ Wire.Faultio.no_faults with send_eagain = 0.7; send_eintr = 0.7 }
       (Wire.Netio.unix ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "fate probabilities summing past 1 accepted");
  (match
     Wire.Faultio.wrap rt ~seed:1
       ~plan:{ Wire.Faultio.no_faults with recv_drop = -0.1 }
       (Wire.Netio.unix ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative probability accepted");
  match
    Wire.Faultio.wrap rt ~seed:1
      ~plan:{ Wire.Faultio.no_faults with send_blackout = Some (2., 1.) }
      (Wire.Netio.unix ())
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted blackout window accepted"

(* --- Warp loop ---------------------------------------------------------- *)

(* The warp loop must fire timers in Sim's exact (time, insertion-seq)
   order, including same-time ties and cancellations. *)
let schedule_mix schedule_at cancel now =
  let log = ref [] in
  let note tag () = log := (tag, now ()) :: !log in
  ignore (schedule_at 0.5 (note "a"));
  let h = schedule_at 0.5 (note "cancelled") in
  ignore (schedule_at 0.5 (note "b"));
  ignore (schedule_at 0.1 (note "early"));
  ignore
    (schedule_at 0.2 (fun () ->
         note "nest" ();
         ignore (schedule_at 0.2 (note "nest-same-time"))));
  cancel h;
  log

let test_warp_matches_sim_order () =
  let sim = Engine.Sim.create ~trace:(Engine.Trace.create ()) () in
  let sim_log =
    schedule_mix
      (fun t f -> Engine.Sim.at sim t f)
      Engine.Sim.cancel
      (fun () -> Engine.Sim.now sim)
  in
  Engine.Sim.run sim ~until:1.;
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let loop_log =
    schedule_mix
      (fun t f -> Wire.Loop.at loop t f)
      Wire.Loop.cancel
      (fun () -> Wire.Loop.now loop)
  in
  Wire.Loop.run loop ~until:1.;
  check
    Alcotest.(list (pair string (float 0.)))
    "identical firing order and times" (List.rev !sim_log)
    (List.rev !loop_log);
  check Alcotest.(float 0.) "clock lands on until" 1. (Wire.Loop.now loop)

let test_loop_guards () =
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  (match Wire.Loop.at loop Float.nan ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan accepted");
  (match Wire.Loop.after loop (-1.) ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted");
  let h = Wire.Loop.after loop 1. ignore in
  check Alcotest.bool "pending" true (Wire.Loop.is_pending h);
  Wire.Loop.cancel h;
  check Alcotest.bool "cancelled" false (Wire.Loop.is_pending h);
  Wire.Loop.run loop ~until:2.;
  check Alcotest.(float 0.) "time advanced to until" 2. (Wire.Loop.now loop)

(* --- Sim-vs-wire differential ------------------------------------------- *)

let test_validate_passthrough () =
  (* The acceptance setting: zero loss, zero delay. The app limit bounds
     slow start's exponential rate growth so 30 virtual seconds stay
     cheap; it is applied identically on both sides. *)
  let r = Wire.Validate.run ~app_limit:1e5 ~seed:42 ~duration:30. () in
  (match r.first_diff with
  | Some (i, a, b) ->
      Alcotest.failf "diverged at %d:\n  sim:  %s\n  wire: %s" i a b
  | None -> ());
  check Alcotest.bool "logs equal" true r.equal;
  check Alcotest.bool "made enough decisions" true (r.decisions_sim > 20)

let test_validate_under_impairment () =
  (* Loss, delay, jitter and reordering: both sides draw identical RNG
     streams, so decisions must still match bit-for-bit. *)
  let shaper =
    { Wire.Shaper.loss = 0.02; delay = 0.03; jitter = 0.005; reorder = 0.01 }
  in
  let r = Wire.Validate.run ~shaper ~seed:7 ~duration:30. () in
  (match r.first_diff with
  | Some (i, a, b) ->
      Alcotest.failf "diverged at %d:\n  sim:  %s\n  wire: %s" i a b
  | None -> ());
  check Alcotest.bool "decisions under loss" true (r.decisions_sim > 20)

(* --- Real UDP loopback -------------------------------------------------- *)

let test_udp_loopback_transfer () =
  let r = Wire.Endpoint.loopback_demo ~packets:30 ~seed:1 ~timeout:20. () in
  if not r.completed then
    Alcotest.failf "transfer incomplete: %s"
      (Format.asprintf "%a" Wire.Endpoint.pp_demo_result r);
  check Alcotest.bool "received at least the target" true
    (r.data_received >= 30);
  check Alcotest.bool "feedback flowed" true (r.feedbacks_received > 0);
  check Alcotest.int "no decode errors" 0 r.decode_errors

let test_udp_socket_basics () =
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) () in
  let a = Wire.Udp.create loop () in
  let b = Wire.Udp.create loop () in
  let got = ref [] in
  Wire.Udp.set_handler b (fun data _src ->
      got := data :: !got;
      if List.length !got >= 2 then Wire.Loop.stop loop);
  let dest = Wire.Udp.addr ~port:(Wire.Udp.port b) in
  Wire.Udp.send a ~dest "hello";
  Wire.Udp.send a ~dest "world";
  Wire.Loop.run loop ~until:5.;
  check
    Alcotest.(slist string compare)
    "both datagrams arrived" [ "hello"; "world" ] !got;
  check Alcotest.int "tx counted" 2 (Wire.Udp.datagrams_sent a);
  check Alcotest.int "rx counted" 2 (Wire.Udp.datagrams_received b);
  Wire.Udp.close a;
  Wire.Udp.close b;
  (* Idempotent close. *)
  Wire.Udp.close a

let test_udp_zero_length_datagram () =
  (* A zero-length datagram is valid UDP: it must be delivered (and
     counted), not spin or end the drain — and the codec rejects it as
     truncated rather than crashing. *)
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) () in
  let a = Wire.Udp.create loop () in
  let b = Wire.Udp.create loop () in
  let got = ref None in
  Wire.Udp.set_handler b (fun data _src ->
      got := Some data;
      Wire.Loop.stop loop);
  Wire.Udp.send a ~dest:(Wire.Udp.addr ~port:(Wire.Udp.port b)) "";
  Wire.Loop.run loop ~until:5.;
  check
    Alcotest.(option string)
    "empty datagram delivered" (Some "") !got;
  check Alcotest.int "rx counted" 1 (Wire.Udp.datagrams_received b);
  (match Wire.Codec.decode (fresh_rt ()) "" with
  | Error (Wire.Codec.Truncated _) -> ()
  | _ -> Alcotest.fail "empty frame not rejected as truncated");
  Wire.Udp.close a;
  Wire.Udp.close b

let test_udp_hard_errno_policy () =
  (* Hard send errnos (EHOSTUNREACH et al) never unwind into the caller:
     they are counted as send errors and surfaced to the health handler. *)
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) () in
  let hostile =
    {
      (Wire.Netio.unix ()) with
      Wire.Netio.sendto =
        (fun _ _ _ _ _ -> raise (Unix.Unix_error (Unix.EHOSTUNREACH, "sendto", "")));
    }
  in
  let a = Wire.Udp.create loop ~netio:hostile () in
  let health = ref [] in
  Wire.Udp.set_health_handler a (fun err -> health := err :: !health);
  let dest = Wire.Udp.addr ~port:9 in
  for _ = 1 to 5 do
    Wire.Udp.send a ~dest "x"
  done;
  check Alcotest.int "nothing sent" 0 (Wire.Udp.datagrams_sent a);
  check Alcotest.int "every failure counted as a send error" 5
    (Wire.Udp.send_errors a);
  check Alcotest.int "no transient drops" 0 (Wire.Udp.send_drops a);
  check Alcotest.int "health handler saw every failure" 5 (List.length !health);
  check Alcotest.bool "with the errno" true
    (List.for_all (fun e -> e = Unix.EHOSTUNREACH) !health);
  Wire.Udp.close a

let test_udp_transient_errno_policy () =
  (* Transient errnos are UDP drops: counted, no health signal. *)
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) () in
  let full =
    {
      (Wire.Netio.unix ()) with
      Wire.Netio.sendto =
        (fun _ _ _ _ _ ->
          raise (Unix.Unix_error (Unix.EAGAIN, "sendto", "")));
    }
  in
  let a = Wire.Udp.create loop ~netio:full () in
  let health = ref 0 in
  Wire.Udp.set_health_handler a (fun _ -> incr health);
  for _ = 1 to 4 do
    Wire.Udp.send a ~dest:(Wire.Udp.addr ~port:9) "x"
  done;
  check Alcotest.int "all dropped" 4 (Wire.Udp.send_drops a);
  check Alcotest.int "no send errors" 0 (Wire.Udp.send_errors a);
  check Alcotest.int "health handler silent" 0 !health;
  Wire.Udp.close a

(* --- Supervisor --------------------------------------------------------- *)

let sup_test_config =
  {
    Wire.Supervisor.default_config with
    backoff_base = 0.25;
    backoff_max = 1.;
    close_timeout = 0.5;
    health_period = 0.05;
  }

let sup_tfrc_config =
  Tfrc.Tfrc_config.default ~initial_rtt:0.05 ~min_rate:500. ~t_mbi:0.25
    ~initial_nofb_timeout:0.5 ()

(* A supervised sender and a managed receiver on real sockets, the
   sender's syscalls behind a fault plan, invariants checked online.
   Both directions cross a lossless shaper with a few ms of delay: on a
   warp loop a direct loopback send is delivered at the *same* virtual
   time, so the measured RTT would be zero and the rate degenerate. *)
let sup_session ?(snd_plan = Wire.Faultio.no_faults) ?(mutate = false) ~seed ()
    =
  let bus = Engine.Trace.create ~ring:40 () in
  let checker = Tfrc.Invariants.create () in
  Tfrc.Invariants.attach checker bus;
  let loop = Wire.Loop.create ~trace:bus ~mode:`Warp () in
  let rt = Wire.Loop.runtime loop in
  let fio = Wire.Faultio.wrap rt ~seed ~plan:snd_plan (Wire.Netio.unix ()) in
  let snd_udp = Wire.Udp.create loop ~netio:(Wire.Faultio.netio fio) () in
  let rcv_udp = Wire.Udp.create loop () in
  let snd_addr = Wire.Udp.addr ~port:(Wire.Udp.port snd_udp) in
  let rcv_addr = Wire.Udp.addr ~port:(Wire.Udp.port rcv_udp) in
  let wire = { Wire.Shaper.passthrough with delay = 0.005 } in
  let data_shaper =
    Wire.Shaper.create rt ~seed:(seed + 2) ~config:wire
      ~deliver:(fun frame -> Wire.Udp.send snd_udp ~dest:rcv_addr frame)
      ()
  in
  let fb_shaper =
    Wire.Shaper.create rt ~seed:(seed + 3) ~config:wire
      ~deliver:(fun frame -> Wire.Udp.send rcv_udp ~dest:snd_addr frame)
      ()
  in
  let sup =
    Wire.Supervisor.create loop snd_udp ~config:sup_tfrc_config
      ~sup:sup_test_config ~flow:1 ~dest:rcv_addr
      ~send:(Wire.Shaper.send data_shaper)
      ~seed:(seed + 1) ~mutate ()
  in
  let rcv =
    Wire.Supervisor.Receiver.create loop rcv_udp ~config:sup_tfrc_config
      ~flow:1
      ~send:(Wire.Shaper.send fb_shaper)
      ()
  in
  Tfrc.Tfrc_sender.set_app_limit (Wire.Supervisor.machine sup) (Some 8e3);
  (loop, checker, sup, rcv, snd_udp, rcv_udp)

let finish_session loop sup rcv a b ~until =
  Wire.Supervisor.quiesce sup;
  Wire.Supervisor.Receiver.quiesce rcv;
  Wire.Loop.run loop ~until;
  Wire.Loop.settle_io loop;
  Wire.Udp.close a;
  Wire.Udp.close b

let test_supervisor_legal_matches_checker () =
  (* The wire layer's transition relation and the invariant checker's
     string table must agree edge-for-edge. *)
  let states =
    Wire.Supervisor.[ Starting; Established; Degraded; Backoff; Closed ]
  in
  List.iter
    (fun from ->
      List.iter
        (fun to_ ->
          let n = Wire.Supervisor.state_name in
          check Alcotest.bool
            (Printf.sprintf "%s -> %s" (n from) (n to_))
            (Tfrc.Invariants.sup_legal (n from) (n to_))
            (Wire.Supervisor.legal from to_))
        states)
    states

let test_supervisor_death_and_recovery () =
  (* The acceptance scenario: every send fails with EHOSTUNREACH for a
     long window. The loop must not crash; the supervisor must degrade,
     declare the peer dead, back off, restart on a fresh epoch, and
     re-establish once the faults clear. *)
  let plan =
    {
      Wire.Faultio.no_faults with
      send_blackout = Some (0.5, 6.);
      blackout_errno = Unix.EHOSTUNREACH;
    }
  in
  let loop, checker, sup, rcv, a, b = sup_session ~snd_plan:plan ~seed:11 () in
  Wire.Supervisor.start sup ~at:0.;
  Wire.Loop.run loop ~until:12.;
  check Alcotest.string "re-established after the blackout" "established"
    (Wire.Supervisor.state_name (Wire.Supervisor.state sup));
  check Alcotest.bool "restarted at least once" true
    (Wire.Supervisor.restarts sup >= 1);
  check Alcotest.bool "epoch bumped" true (Wire.Supervisor.epoch sup >= 2);
  let visited =
    List.map (fun (_, _, to_) -> to_) (Wire.Supervisor.transitions sup)
  in
  List.iter
    (fun s ->
      check Alcotest.bool
        (Wire.Supervisor.state_name s ^ " visited")
        true (List.mem s visited))
    Wire.Supervisor.[ Established; Degraded; Backoff; Starting ];
  check Alcotest.bool "hard errnos surfaced, not raised" true
    (Wire.Udp.send_errors a > 0);
  check Alcotest.bool "receiver adopted the new incarnation" true
    (Wire.Supervisor.Receiver.epochs_seen rcv >= 2);
  check Alcotest.bool "old-epoch stragglers discarded or none arrived" true
    (Wire.Supervisor.Receiver.current_epoch rcv = Wire.Supervisor.epoch sup);
  if not (Tfrc.Invariants.ok checker) then
    Alcotest.failf "invariant violations:@.%a" (fun ppf () ->
        Tfrc.Invariants.report ppf checker) ();
  finish_session loop sup rcv a b ~until:12.1

let test_supervisor_mutate_caught () =
  (* The planted bug — a dead peer restarts immediately, skipping
     Backoff — must trip the wire-sup-legal rule and nothing else needs
     to notice. This is the self-test behind `wire soak --mutate`. *)
  let plan =
    {
      Wire.Faultio.no_faults with
      send_blackout = Some (0.5, 6.);
      blackout_errno = Unix.EHOSTUNREACH;
    }
  in
  let loop, checker, sup, rcv, a, b =
    sup_session ~snd_plan:plan ~mutate:true ~seed:11 ()
  in
  Wire.Supervisor.start sup ~at:0.;
  Wire.Loop.run loop ~until:12.;
  check Alcotest.bool "illegal edge detected" false (Tfrc.Invariants.ok checker);
  check Alcotest.bool "attributed to wire-sup-legal" true
    (List.exists
       (fun (v : Tfrc.Invariants.violation) -> v.rule = "wire-sup-legal")
       (Tfrc.Invariants.violations checker));
  finish_session loop sup rcv a b ~until:12.1

let test_supervisor_graceful_close () =
  let loop, checker, sup, rcv, a, b = sup_session ~seed:21 () in
  Wire.Supervisor.start sup ~at:0.;
  ignore (Wire.Loop.after loop 2. (fun () -> Wire.Supervisor.close sup));
  Wire.Loop.run loop ~until:4.;
  Wire.Loop.settle_io loop;
  check Alcotest.string "closed" "closed"
    (Wire.Supervisor.state_name (Wire.Supervisor.state sup));
  check Alcotest.bool "receiver saw the close" true
    (Wire.Supervisor.Receiver.closed rcv);
  check Alcotest.bool "CLOSE/CLOSE-ACK exchanged" true
    (Wire.Supervisor.ctrl_frames sup > 0
    && Wire.Supervisor.Receiver.ctrl_frames rcv > 0);
  check Alcotest.int "healthy session never restarted" 0
    (Wire.Supervisor.restarts sup);
  check Alcotest.bool "feedback flowed first" true
    (Wire.Supervisor.feedback_delivered sup > 0);
  check Alcotest.bool "invariants hold" true (Tfrc.Invariants.ok checker);
  finish_session loop sup rcv a b ~until:4.1

let test_supervisor_close_timeout () =
  (* CLOSE into the void: no CLOSE-ACK ever comes back, so the timeout
     fallback must still reach Closed. *)
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let a = Wire.Udp.create loop () in
  let sup =
    Wire.Supervisor.create loop a ~config:sup_tfrc_config ~sup:sup_test_config
      ~flow:1
      ~dest:(Wire.Udp.addr ~port:(Wire.Udp.port a))
      ~send:(fun _ -> ())
      ~seed:3 ()
  in
  Wire.Supervisor.start sup ~at:0.;
  ignore (Wire.Loop.after loop 0.3 (fun () -> Wire.Supervisor.close sup));
  Wire.Loop.run loop ~until:2.;
  check Alcotest.string "closed by timeout" "closed"
    (Wire.Supervisor.state_name (Wire.Supervisor.state sup));
  Wire.Udp.close a

let test_receiver_epoch_adoption () =
  (* Two sender incarnations from two sockets: the receiver adopts the
     higher epoch (fresh machine — sequence numbers restart), discards
     old-epoch stragglers, and re-learns the peer address latest-wins. *)
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let rt = Wire.Loop.runtime loop in
  let src1 = Wire.Udp.create loop () in
  let src2 = Wire.Udp.create loop () in
  let got1 = ref 0 and got2 = ref 0 in
  Wire.Udp.set_handler src1 (fun _ _ -> incr got1);
  Wire.Udp.set_handler src2 (fun _ _ -> incr got2);
  let rcv_udp = Wire.Udp.create loop () in
  let rcv =
    Wire.Supervisor.Receiver.create loop rcv_udp ~config:sup_tfrc_config
      ~flow:1 ()
  in
  let dest = Wire.Udp.addr ~port:(Wire.Udp.port rcv_udp) in
  let send_at udp t ~epoch ~seq =
    ignore
      (Wire.Loop.at loop t (fun () ->
           let p =
             mk_packet rt ~flow:1 ~seq ~size:1000 ~sent_at:t
               (Tfrc_data { rtt = 0.05 })
           in
           Wire.Udp.send udp ~dest (Wire.Codec.encode ~epoch p)))
  in
  send_at src1 0.1 ~epoch:1 ~seq:0;
  send_at src1 0.2 ~epoch:1 ~seq:1;
  send_at src2 0.3 ~epoch:2 ~seq:0;
  (* A straggler from the retired incarnation. *)
  send_at src1 0.4 ~epoch:1 ~seq:2;
  send_at src2 0.5 ~epoch:2 ~seq:1;
  Wire.Loop.run loop ~until:1.;
  Wire.Loop.settle_io loop;
  check Alcotest.int "current epoch" 2
    (Wire.Supervisor.Receiver.current_epoch rcv);
  check Alcotest.int "incarnations adopted" 2
    (Wire.Supervisor.Receiver.epochs_seen rcv);
  check Alcotest.int "frames delivered across epochs" 4
    (Wire.Supervisor.Receiver.delivered rcv);
  check Alcotest.int "straggler discarded as stale" 1
    (Wire.Supervisor.Receiver.stale_frames rcv);
  check Alcotest.bool "feedback flowed" true
    (Wire.Supervisor.Receiver.feedbacks_sent rcv > 0);
  check Alcotest.bool "feedback re-targeted the newest peer" true (!got2 > 0);
  Wire.Supervisor.Receiver.quiesce rcv;
  List.iter Wire.Udp.close [ src1; src2; rcv_udp ]

(* --- Chaos soak --------------------------------------------------------- *)

let soak_config ?(j = 1) cases mutate =
  { Fuzz.Wire_soak.cases; seed = 1; j; mutate; artifacts = None }

let soak_output config =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let s = Fuzz.Wire_soak.run ~out config in
  Format.pp_print_flush out ();
  (s, Buffer.contents buf)

let test_soak_smoke () =
  let s, rendered = soak_output (soak_config 3 false) in
  if s.Fuzz.Wire_soak.failed > 0 then
    Alcotest.failf "soak failures:\n%s" rendered;
  check Alcotest.int "all cases passed" 3 s.passed;
  check Alcotest.bool "data flowed" true (s.delivered > 0);
  check Alcotest.bool "faults injected" true (s.injected > 0);
  (* The report is a pure function of the config: parallel workers must
     render byte-identically to sequential. *)
  let _, rendered_j2 = soak_output (soak_config ~j:2 3 false) in
  check Alcotest.string "-j2 output byte-identical to -j1" rendered
    rendered_j2

let test_soak_mutate_self_test () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let s = Fuzz.Wire_soak.run ~out (soak_config 5 true) in
  Format.pp_print_flush out ();
  check Alcotest.bool "planted bug caught, and only by sup-legal" true
    (Fuzz.Wire_soak.mutate_ok s)

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip samples" `Quick test_codec_roundtrip;
          qtest prop_codec_roundtrip;
          Alcotest.test_case "hostile input" `Quick test_codec_rejects_hostile;
          Alcotest.test_case "encode validates" `Quick
            test_codec_encode_validates;
          Alcotest.test_case "epoch round-trip" `Quick
            test_codec_epoch_roundtrip;
          Alcotest.test_case "control frames" `Quick test_codec_control_frames;
          Alcotest.test_case "rejects v1" `Quick test_codec_rejects_v1;
        ] );
      ( "shaper",
        [
          Alcotest.test_case "deterministic" `Quick test_shaper_deterministic;
          Alcotest.test_case "passthrough order" `Quick
            test_shaper_passthrough_ordered;
        ] );
      ( "faultio",
        [
          Alcotest.test_case "deterministic" `Quick test_faultio_deterministic;
          Alcotest.test_case "conservation" `Quick test_faultio_conservation;
          Alcotest.test_case "plan validation" `Quick
            test_faultio_validates_plan;
        ] );
      ( "loop",
        [
          Alcotest.test_case "warp matches sim" `Quick
            test_warp_matches_sim_order;
          Alcotest.test_case "guards" `Quick test_loop_guards;
        ] );
      ( "differential",
        [
          Alcotest.test_case "passthrough" `Quick test_validate_passthrough;
          Alcotest.test_case "under impairment" `Quick
            test_validate_under_impairment;
        ] );
      ( "udp",
        [
          Alcotest.test_case "socket basics" `Quick test_udp_socket_basics;
          Alcotest.test_case "loopback transfer" `Slow
            test_udp_loopback_transfer;
          Alcotest.test_case "zero-length datagram" `Quick
            test_udp_zero_length_datagram;
          Alcotest.test_case "hard errno policy" `Quick
            test_udp_hard_errno_policy;
          Alcotest.test_case "transient errno policy" `Quick
            test_udp_transient_errno_policy;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "legal matches checker" `Quick
            test_supervisor_legal_matches_checker;
          Alcotest.test_case "death and recovery" `Quick
            test_supervisor_death_and_recovery;
          Alcotest.test_case "mutate caught" `Quick
            test_supervisor_mutate_caught;
          Alcotest.test_case "graceful close" `Quick
            test_supervisor_graceful_close;
          Alcotest.test_case "close timeout" `Quick
            test_supervisor_close_timeout;
          Alcotest.test_case "epoch adoption" `Quick
            test_receiver_epoch_adoption;
        ] );
      ( "soak",
        [
          Alcotest.test_case "smoke" `Slow test_soak_smoke;
          Alcotest.test_case "mutate self-test" `Slow
            test_soak_mutate_self_test;
        ] );
    ]
