(* Wire layer: codec round-trip and hostile-input behavior, shaper
   determinism, warp-loop scheduling parity with Sim, and a real-UDP
   loopback transfer. *)

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fresh_rt () = Engine.Sim.runtime (Engine.Sim.create ())

(* --- Codec -------------------------------------------------------------- *)

let mk_packet rt ?(ecn = false) ~flow ~seq ~size ~sent_at payload =
  let p = Netsim.Packet.make rt ~ecn ~flow ~seq ~size ~now:sent_at payload in
  p

let sample_payloads : Netsim.Packet.payload list =
  [
    Data;
    Tfrc_data { rtt = 0.04637 };
    Tfrc_data { rtt = 1e-300 };
    Tfrc_feedback
      { p = 0.0123; recv_rate = 1.25e6; ts_echo = 17.75; ts_delay = 0.002 };
    Tfrc_feedback { p = 0.; recv_rate = 0.; ts_echo = -0.; ts_delay = 0.1 };
    Tcp_ack { ack = 42; sack = []; ece = false };
    Tcp_ack { ack = 7; sack = [ (10, 12); (20, 25) ]; ece = true };
  ]

(* Field-level equality; ids are per-runtime so they legitimately differ. *)
let packet_eq (a : Netsim.Packet.t) (b : Netsim.Packet.t) =
  a.flow = b.flow && a.seq = b.seq && a.size = b.size
  && Engine.Hexfloat.equal a.sent_at b.sent_at
  && a.ecn_capable = b.ecn_capable
  && a.ecn_marked = b.ecn_marked
  && a.corrupted = b.corrupted
  &&
  match (a.payload, b.payload) with
  | Data, Data -> true
  | Tfrc_data { rtt = x }, Tfrc_data { rtt = y } -> Engine.Hexfloat.equal x y
  | Tfrc_feedback x, Tfrc_feedback y ->
      Engine.Hexfloat.equal x.p y.p
      && Engine.Hexfloat.equal x.recv_rate y.recv_rate
      && Engine.Hexfloat.equal x.ts_echo y.ts_echo
      && Engine.Hexfloat.equal x.ts_delay y.ts_delay
  | Tcp_ack x, Tcp_ack y -> x.ack = y.ack && x.sack = y.sack && x.ece = y.ece
  | _ -> false

let test_codec_roundtrip () =
  let rt = fresh_rt () in
  List.iteri
    (fun i payload ->
      let p =
        mk_packet rt ~ecn:(i mod 2 = 0) ~flow:(i + 1) ~seq:(i * 7)
          ~size:(1000 + i) ~sent_at:(float_of_int i *. 0.125)
          payload
      in
      p.ecn_marked <- i mod 3 = 0;
      let frame = Wire.Codec.encode p in
      match Wire.Codec.decode rt frame with
      | Error e -> Alcotest.failf "decode %d: %s" i (Wire.Codec.error_to_string e)
      | Ok p' ->
          check Alcotest.bool
            (Printf.sprintf "payload %d round-trips" i)
            true (packet_eq p p');
          (* Re-encoding the decoded packet must give the same bytes:
             string equality covers every field bit-for-bit. *)
          check Alcotest.string
            (Printf.sprintf "payload %d re-encodes identically" i)
            frame (Wire.Codec.encode p'))
    sample_payloads

let arb_payload : Netsim.Packet.payload QCheck.arbitrary =
  let open QCheck.Gen in
  let sp =
    (* Floats the wire must carry losslessly, including the awkward ones. *)
    oneofl
      [ 0.; -0.; 0.1; 1e-300; 2e-308; 1.5e15; 0.04637; infinity *. 0. |> Float.abs ]
  in
  let sp = map (fun f -> if Float.is_nan f then 0.25 else f) sp in
  let gen =
    frequency
      [
        (1, return Netsim.Packet.Data);
        (2, map (fun rtt -> Netsim.Packet.Tfrc_data { rtt }) sp);
        ( 3,
          map
            (fun ((p, recv_rate), (ts_echo, ts_delay)) ->
              Netsim.Packet.Tfrc_feedback { p; recv_rate; ts_echo; ts_delay })
            (pair (pair sp sp) (pair sp sp)) );
        ( 2,
          map
            (fun (ack, (sack, ece)) -> Netsim.Packet.Tcp_ack { ack; sack; ece })
            (pair (int_bound 1_000_000)
               (pair
                  (list_size (int_bound 5)
                     (map
                        (fun (lo, n) -> (lo, lo + n))
                        (pair (int_bound 100_000) (int_bound 50))))
                  bool)) );
      ]
  in
  QCheck.make gen

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips arbitrary packets" ~count:300
    (QCheck.triple arb_payload
       (QCheck.int_bound 100_000)
       (QCheck.int_bound 10_000))
    (fun (payload, seq, flow) ->
      let rt = fresh_rt () in
      let p =
        mk_packet rt ~flow ~seq ~size:((seq mod 1500) + 1)
          ~sent_at:(float_of_int seq *. 0.01)
          payload
      in
      let frame = Wire.Codec.encode p in
      match Wire.Codec.decode rt frame with
      | Error e -> QCheck.Test.fail_report (Wire.Codec.error_to_string e)
      | Ok p' -> packet_eq p p' && String.equal frame (Wire.Codec.encode p'))

let test_codec_rejects_hostile () =
  let rt = fresh_rt () in
  let p =
    mk_packet rt ~flow:3 ~seq:9 ~size:1000 ~sent_at:1.5
      (Tfrc_feedback
         { p = 0.01; recv_rate = 5e5; ts_echo = 1.25; ts_delay = 0.004 })
  in
  let frame = Wire.Codec.encode p in
  let expect_error what = function
    | Ok _ -> Alcotest.failf "%s decoded successfully" what
    | Error _ -> ()
  in
  (* Every truncation of a valid frame must be rejected. *)
  for len = 0 to String.length frame - 1 do
    expect_error
      (Printf.sprintf "truncation to %d bytes" len)
      (Wire.Codec.decode rt (String.sub frame 0 len))
  done;
  (* Every single-bit flip must be rejected: the checksum covers all
     bytes outside its own field, and flips inside the field mismatch
     the recomputation. *)
  for byte = 0 to String.length frame - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string frame in
      Bytes.set b byte
        (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      expect_error
        (Printf.sprintf "bit flip at %d.%d" byte bit)
        (Wire.Codec.decode rt (Bytes.to_string b))
    done
  done;
  (* Trailing garbage, oversized input, and junk never raise. *)
  expect_error "trailing garbage" (Wire.Codec.decode rt (frame ^ "x"));
  expect_error "oversized"
    (Wire.Codec.decode rt (String.make (Wire.Codec.max_frame + 1) 'T'));
  expect_error "empty" (Wire.Codec.decode rt "");
  expect_error "junk" (Wire.Codec.decode rt "this is not a TFRC frame");
  (* A sack count pointing past the end of the datagram. *)
  let b = Bytes.of_string frame in
  Bytes.set_uint8 b 3 1 (* claim Tcp_ack *);
  expect_error "tag swapped" (Wire.Codec.decode rt (Bytes.to_string b))

let test_codec_encode_validates () =
  let rt = fresh_rt () in
  let p = mk_packet rt ~flow:(-1) ~seq:0 ~size:10 ~sent_at:0. Data in
  (match Wire.Codec.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative flow encoded");
  let p = mk_packet rt ~flow:1 ~seq:0x1_0000_0000 ~size:10 ~sent_at:0. Data in
  match Wire.Codec.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range seq encoded"

(* --- Shaper ------------------------------------------------------------- *)

(* Same seed => identical drop/delay/reorder pattern, on any runtime. *)
let shaper_trace ~seed ~config n =
  let sim = Engine.Sim.create ~trace:(Engine.Trace.create ()) () in
  let rt = Engine.Sim.runtime sim in
  let log = ref [] in
  let sh =
    Wire.Shaper.create rt ~seed ~config
      ~deliver:(fun i ->
        log := (i, Engine.Runtime.now rt) :: !log)
      ()
  in
  for i = 1 to n do
    Wire.Shaper.send sh i
  done;
  Engine.Sim.run sim ~until:10.;
  (List.rev !log, Wire.Shaper.dropped sh, Wire.Shaper.reordered sh)

let test_shaper_deterministic () =
  let config =
    { Wire.Shaper.loss = 0.2; delay = 0.05; jitter = 0.02; reorder = 0.1 }
  in
  let a = shaper_trace ~seed:7 ~config 500 in
  let b = shaper_trace ~seed:7 ~config 500 in
  let c = shaper_trace ~seed:8 ~config 500 in
  check Alcotest.bool "same seed, same trace" true (a = b);
  let log_a, dropped_a, _ = a and log_c, _, _ = c in
  check Alcotest.bool "different seed differs" true (log_a <> log_c);
  check Alcotest.bool "losses happened" true (dropped_a > 0);
  check Alcotest.int "drops + deliveries = sends" 500
    (dropped_a + List.length log_a)

let test_shaper_passthrough_ordered () =
  let log, dropped, reordered =
    shaper_trace ~seed:3 ~config:Wire.Shaper.passthrough 100
  in
  check Alcotest.int "nothing dropped" 0 dropped;
  check Alcotest.int "nothing reordered" 0 reordered;
  check
    Alcotest.(list int)
    "FIFO order preserved"
    (List.init 100 (fun i -> i + 1))
    (List.map fst log)

(* --- Warp loop ---------------------------------------------------------- *)

(* The warp loop must fire timers in Sim's exact (time, insertion-seq)
   order, including same-time ties and cancellations. *)
let schedule_mix schedule_at cancel now =
  let log = ref [] in
  let note tag () = log := (tag, now ()) :: !log in
  ignore (schedule_at 0.5 (note "a"));
  let h = schedule_at 0.5 (note "cancelled") in
  ignore (schedule_at 0.5 (note "b"));
  ignore (schedule_at 0.1 (note "early"));
  ignore
    (schedule_at 0.2 (fun () ->
         note "nest" ();
         ignore (schedule_at 0.2 (note "nest-same-time"))));
  cancel h;
  log

let test_warp_matches_sim_order () =
  let sim = Engine.Sim.create ~trace:(Engine.Trace.create ()) () in
  let sim_log =
    schedule_mix
      (fun t f -> Engine.Sim.at sim t f)
      Engine.Sim.cancel
      (fun () -> Engine.Sim.now sim)
  in
  Engine.Sim.run sim ~until:1.;
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let loop_log =
    schedule_mix
      (fun t f -> Wire.Loop.at loop t f)
      Wire.Loop.cancel
      (fun () -> Wire.Loop.now loop)
  in
  Wire.Loop.run loop ~until:1.;
  check
    Alcotest.(list (pair string (float 0.)))
    "identical firing order and times" (List.rev !sim_log)
    (List.rev !loop_log);
  check Alcotest.(float 0.) "clock lands on until" 1. (Wire.Loop.now loop)

let test_loop_guards () =
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  (match Wire.Loop.at loop Float.nan ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan accepted");
  (match Wire.Loop.after loop (-1.) ignore with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative delay accepted");
  let h = Wire.Loop.after loop 1. ignore in
  check Alcotest.bool "pending" true (Wire.Loop.is_pending h);
  Wire.Loop.cancel h;
  check Alcotest.bool "cancelled" false (Wire.Loop.is_pending h);
  Wire.Loop.run loop ~until:2.;
  check Alcotest.(float 0.) "time advanced to until" 2. (Wire.Loop.now loop)

(* --- Sim-vs-wire differential ------------------------------------------- *)

let test_validate_passthrough () =
  (* The acceptance setting: zero loss, zero delay. The app limit bounds
     slow start's exponential rate growth so 30 virtual seconds stay
     cheap; it is applied identically on both sides. *)
  let r = Wire.Validate.run ~app_limit:1e5 ~seed:42 ~duration:30. () in
  (match r.first_diff with
  | Some (i, a, b) ->
      Alcotest.failf "diverged at %d:\n  sim:  %s\n  wire: %s" i a b
  | None -> ());
  check Alcotest.bool "logs equal" true r.equal;
  check Alcotest.bool "made enough decisions" true (r.decisions_sim > 20)

let test_validate_under_impairment () =
  (* Loss, delay, jitter and reordering: both sides draw identical RNG
     streams, so decisions must still match bit-for-bit. *)
  let shaper =
    { Wire.Shaper.loss = 0.02; delay = 0.03; jitter = 0.005; reorder = 0.01 }
  in
  let r = Wire.Validate.run ~shaper ~seed:7 ~duration:30. () in
  (match r.first_diff with
  | Some (i, a, b) ->
      Alcotest.failf "diverged at %d:\n  sim:  %s\n  wire: %s" i a b
  | None -> ());
  check Alcotest.bool "decisions under loss" true (r.decisions_sim > 20)

(* --- Real UDP loopback -------------------------------------------------- *)

let test_udp_loopback_transfer () =
  let r = Wire.Endpoint.loopback_demo ~packets:30 ~seed:1 ~timeout:20. () in
  if not r.completed then
    Alcotest.failf "transfer incomplete: %s"
      (Format.asprintf "%a" Wire.Endpoint.pp_demo_result r);
  check Alcotest.bool "received at least the target" true
    (r.data_received >= 30);
  check Alcotest.bool "feedback flowed" true (r.feedbacks_received > 0);
  check Alcotest.int "no decode errors" 0 r.decode_errors

let test_udp_socket_basics () =
  let loop = Wire.Loop.create ~trace:(Engine.Trace.create ()) () in
  let a = Wire.Udp.create loop () in
  let b = Wire.Udp.create loop () in
  let got = ref [] in
  Wire.Udp.set_handler b (fun data _src ->
      got := data :: !got;
      if List.length !got >= 2 then Wire.Loop.stop loop);
  let dest = Wire.Udp.addr ~port:(Wire.Udp.port b) in
  Wire.Udp.send a ~dest "hello";
  Wire.Udp.send a ~dest "world";
  Wire.Loop.run loop ~until:5.;
  check
    Alcotest.(slist string compare)
    "both datagrams arrived" [ "hello"; "world" ] !got;
  check Alcotest.int "tx counted" 2 (Wire.Udp.datagrams_sent a);
  check Alcotest.int "rx counted" 2 (Wire.Udp.datagrams_received b);
  Wire.Udp.close a;
  Wire.Udp.close b;
  (* Idempotent close. *)
  Wire.Udp.close a

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip samples" `Quick test_codec_roundtrip;
          qtest prop_codec_roundtrip;
          Alcotest.test_case "hostile input" `Quick test_codec_rejects_hostile;
          Alcotest.test_case "encode validates" `Quick
            test_codec_encode_validates;
        ] );
      ( "shaper",
        [
          Alcotest.test_case "deterministic" `Quick test_shaper_deterministic;
          Alcotest.test_case "passthrough order" `Quick
            test_shaper_passthrough_ordered;
        ] );
      ( "loop",
        [
          Alcotest.test_case "warp matches sim" `Quick
            test_warp_matches_sim_order;
          Alcotest.test_case "guards" `Quick test_loop_guards;
        ] );
      ( "differential",
        [
          Alcotest.test_case "passthrough" `Quick test_validate_passthrough;
          Alcotest.test_case "under impairment" `Quick
            test_validate_under_impairment;
        ] );
      ( "udp",
        [
          Alcotest.test_case "socket basics" `Quick test_udp_socket_basics;
          Alcotest.test_case "loopback transfer" `Slow
            test_udp_loopback_transfer;
        ] );
    ]
