(* End-to-end TFRC protocol tests: the full sender/receiver pair over
   idealized paths and the dumbbell, checking the paper's behavioral
   claims. *)

(* Idealized path with injectable loss, like Exp.Direct_path but local so
   this suite only depends on the libraries under test. *)
type path = {
  sim : Engine.Sim.t;
  sender : Tfrc.Tfrc_sender.t;
  receiver : Tfrc.Tfrc_receiver.t;
  delivered : int ref;
  feedback_blocked : bool ref;
}

let wire ?(config = Tfrc.Tfrc_config.default ()) ?(rtt = 0.1) ~drop () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let feedback_blocked = ref false in
  let receiver_cell = ref None and sender_cell = ref None in
  let to_receiver pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             incr delivered;
             match !receiver_cell with
             | Some r -> Tfrc.Tfrc_receiver.recv r pkt
             | None -> ()))
  in
  let to_sender pkt =
    if not !feedback_blocked then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             match !sender_cell with
             | Some s -> Tfrc.Tfrc_sender.recv s pkt
             | None -> ()))
  in
  let sender = Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver () in
  sender_cell := Some sender;
  let receiver = Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  receiver_cell := Some receiver;
  { sim; sender; receiver; delivered; feedback_blocked }

(* --- steady state ----------------------------------------------------------- *)

let test_steady_rate_matches_equation () =
  (* Periodic 1% loss, fixed RTT: the sending rate must settle near the
     control equation's value. *)
  let config =
    Tfrc.Tfrc_config.default ~delay_gain:false ~initial_rtt:0.1 ~ndupack:1 ()
  in
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let p = wire ~config ~drop () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:60.;
  let measured = Tfrc.Tfrc_sender.rate p.sender in
  let rtt = Tfrc.Tfrc_sender.rtt p.sender in
  let expect =
    Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:rtt
      ~t_rto:(4. *. rtt) ~p:0.01
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f within 30%% of equation %.0f" measured expect)
    true
    (Float.abs (measured -. expect) /. expect < 0.3);
  (* Loss event rate must be close to the configured 1%. *)
  let p_est = Tfrc.Tfrc_receiver.loss_event_rate p.receiver in
  Alcotest.(check bool)
    (Printf.sprintf "p estimate %.4f ~ 0.01" p_est)
    true
    (p_est > 0.007 && p_est < 0.014)

let test_rtt_converges () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 200 = 0
  in
  let p = wire ~rtt:0.08 ~drop () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:30.;
  let rtt = Tfrc.Tfrc_sender.rtt p.sender in
  Alcotest.(check bool)
    (Printf.sprintf "rtt estimate %.3f ~ 0.08" rtt)
    true
    (Float.abs (rtt -. 0.08) < 0.005)

(* --- slow start ------------------------------------------------------------- *)

let test_slow_start_doubles () =
  let p = wire ~drop:(fun _ -> false) () in
  let rates = ref [] in
  Tfrc.Tfrc_sender.on_rate_update p.sender (fun time ~rate ~rtt:_ ~p:_ ->
      rates := (time, rate) :: !rates);
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:3.;
  Alcotest.(check bool) "still in slow start" true
    (Tfrc.Tfrc_sender.in_slow_start p.sender);
  (* Rate should have grown by orders of magnitude over 3 s of doubling. *)
  let final = Tfrc.Tfrc_sender.rate p.sender in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f grew substantially" final)
    true (final > 100_000.)

let test_slow_start_terminated_by_loss () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 50 = 0
  in
  let p = wire ~drop () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:20.;
  Alcotest.(check bool) "left slow start" false
    (Tfrc.Tfrc_sender.in_slow_start p.sender);
  Alcotest.(check bool) "loss rate learned" true
    (Tfrc.Tfrc_sender.loss_event_rate p.sender > 0.)

let test_history_seeded_on_first_loss () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count = 500 (* single loss, long after startup *)
  in
  let p = wire ~drop () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:10.;
  let iv = Tfrc.Tfrc_receiver.intervals p.receiver in
  Alcotest.(check bool)
    "history has the synthetic seed" true
    (Tfrc.Loss_intervals.n_closed iv >= 1)

(* --- no-feedback behavior ----------------------------------------------------- *)

let test_nofeedback_halves_rate () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let p = wire ~drop () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:20.;
  let rate_before = Tfrc.Tfrc_sender.rate p.sender in
  (* Kill the feedback channel. *)
  p.feedback_blocked := true;
  Engine.Sim.run p.sim ~until:25.;
  let rate_after = Tfrc.Tfrc_sender.rate p.sender in
  Alcotest.(check bool)
    (Printf.sprintf "rate collapsed %.0f -> %.0f" rate_before rate_after)
    true
    (rate_after <= rate_before /. 2.);
  Alcotest.(check bool) "expirations counted" true
    (Tfrc.Tfrc_sender.no_feedback_expirations p.sender >= 1)

let test_rate_floor () =
  (* Even with feedback dead forever, the rate never goes below the
     one-packet-per-64s floor. *)
  let p = wire ~drop:(fun _ -> false) () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:2.;
  p.feedback_blocked := true;
  Engine.Sim.run p.sim ~until:120.;
  Alcotest.(check bool) "floored" true
    (Tfrc.Tfrc_sender.rate p.sender >= 1000. /. 64. -. 1e-9)

(* RFC 3448 4.2/4.3: before any feedback has produced a real RTT sample,
   the no-feedback timer is the 2 s initial value, not t_rto_factor times
   the configured initial-RTT guess. With initial_rtt = 0.05 the old code
   armed a 0.2 s timer and fired repeatedly within the first second. *)
let test_initial_nofb_timer_rfc_default () =
  let config =
    Tfrc.Tfrc_config.default ~delay_gain:false ~initial_rtt:0.05 ()
  in
  (* Drop everything: the receiver never sees a packet, so no feedback and
     no RTT sample ever arrive. *)
  let p = wire ~config ~drop:(fun _ -> true) () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:1.0;
  Alcotest.(check int) "no expiry before the 2 s initial timer" 0
    (Tfrc.Tfrc_sender.no_feedback_expirations p.sender);
  Engine.Sim.run p.sim ~until:3.0;
  Alcotest.(check bool) "expires once the initial timer lapses" true
    (Tfrc.Tfrc_sender.no_feedback_expirations p.sender >= 1)

let test_initial_nofb_timer_configurable () =
  let config =
    Tfrc.Tfrc_config.default ~delay_gain:false ~initial_rtt:0.05
      ~initial_nofb_timeout:0.3 ()
  in
  let p = wire ~config ~drop:(fun _ -> true) () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:0.5;
  Alcotest.(check bool) "knob shortens the pre-sample timer" true
    (Tfrc.Tfrc_sender.no_feedback_expirations p.sender >= 1);
  Alcotest.check_raises "knob must be positive"
    (Invalid_argument
       "Tfrc_config: initial_nofb_timeout must be positive (got 0)")
    (fun () -> ignore (Tfrc.Tfrc_config.default ~initial_nofb_timeout:0. ()))

let test_sender_stop_halts_traffic () =
  let p = wire ~drop:(fun _ -> false) () in
  Tfrc.Tfrc_sender.start p.sender ~at:0.;
  Engine.Sim.run p.sim ~until:1.;
  Tfrc.Tfrc_sender.stop p.sender;
  let sent = Tfrc.Tfrc_sender.packets_sent p.sender in
  Engine.Sim.run p.sim ~until:5.;
  Alcotest.(check int) "no packets after stop" sent
    (Tfrc.Tfrc_sender.packets_sent p.sender)

(* --- appendix dynamics --------------------------------------------------------- *)

let test_increase_rate_bounded () =
  (* Appendix A.1: after congestion ends, the increase per RTT stays below
     ~0.14 pkts/RTT until discounting, and around ~0.3 after. Individual
     steps between feedbacks can overshoot the analytic bound slightly
     because feedback intervals are not exactly one RTT; allow 0.45. *)
  let samples, _rtt = Exp.Fig19.trace ~duration:13. () in
  let rec max_step acc = function
    | (t1, r1) :: ((t2, r2) :: _ as rest) when t1 >= 10.3 ->
        let rtts = (t2 -. t1) /. 0.1 in
        let step = if rtts > 0. then (r2 -. r1) /. rtts else 0. in
        max_step (Float.max acc step) rest
    | _ :: rest -> max_step acc rest
    | [] -> acc
  in
  let worst = max_step 0. samples in
  Alcotest.(check bool)
    (Printf.sprintf "max increase %.3f pkts/RTT per RTT <= 0.45" worst)
    true
    (worst <= 0.45 +. 1e-6)

let test_a2_at_least_five_rtts () =
  (* Appendix A.2: at low drop rates the sender needs at least ~5 RTTs of
     persistent congestion to halve. *)
  let n, _ = Exp.Fig20_21.rtts_to_halve ~p0:0.01 in
  Alcotest.(check bool)
    (Printf.sprintf "%d RTTs to halve (>= 5)" n)
    true (n >= 5);
  Alcotest.(check bool) "but not forever" true (n < 15)

(* --- dumbbell integration -------------------------------------------------------- *)

let test_tfrc_alone_fills_link () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim)
      ~bandwidth:(Engine.Units.mbps 1.5)
      ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 25) ()
  in
  let h =
    Exp.Scenario.attach_tfrc db ~flow:1 ~rtt_base:0.06
      ~config:(Tfrc.Tfrc_config.default ())
  in
  Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.;
  Engine.Sim.run sim ~until:40.;
  let util =
    Netsim.Link.utilization (Netsim.Dumbbell.forward_link db) ~duration:40.
  in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f > 0.85" util)
    true (util > 0.85)

let test_tfrc_fair_with_tcp () =
  let params =
    {
      (Exp.Scenario.default_mixed ()) with
      bandwidth = Engine.Units.mbps 15.;
      n_tcp = 4;
      n_tfrc = 4;
      duration = 60.;
      warmup = 20.;
      seed = 17;
    }
  in
  let r = Exp.Scenario.run_mixed params in
  let tcp_mean = Exp.Scenario.mean (fst (Exp.Scenario.normalized_throughputs r)) in
  let tfrc_mean = Exp.Scenario.mean (snd (Exp.Scenario.normalized_throughputs r)) in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.2f / tfrc %.2f of fair share" tcp_mean tfrc_mean)
    true
    (tcp_mean > 0.5 && tcp_mean < 1.7 && tfrc_mean > 0.5 && tfrc_mean < 1.7);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f" r.utilization)
    true (r.utilization > 0.85)

let test_tfrc_smoother_than_tcp () =
  let params =
    {
      (Exp.Scenario.default_mixed ()) with
      bandwidth = Engine.Units.mbps 15.;
      n_tcp = 8;
      n_tfrc = 8;
      duration = 40.;
      warmup = 15.;
      seed = 23;
    }
  in
  let r = Exp.Scenario.run_mixed params in
  let mean_cov flows =
    Exp.Scenario.mean
      (List.map
         (fun (f : Exp.Scenario.flow_stats) ->
           Stats.Metrics.cov_at_timescale f.recv_series ~t0:r.t0 ~t1:r.t1
             ~tau:0.5)
         flows)
  in
  let tfrc_cov = mean_cov r.tfrc_flows and tcp_cov = mean_cov r.tcp_flows in
  Alcotest.(check bool)
    (Printf.sprintf "TFRC CoV %.2f < TCP CoV %.2f" tfrc_cov tcp_cov)
    true (tfrc_cov < tcp_cov)

let test_deterministic_reproduction () =
  (* Same seed, same result — the whole stack is deterministic. *)
  let run () =
    let params =
      {
        (Exp.Scenario.default_mixed ()) with
        n_tcp = 2;
        n_tfrc = 2;
        duration = 20.;
        warmup = 5.;
        seed = 99;
      }
    in
    let r = Exp.Scenario.run_mixed params in
    List.map (fun (f : Exp.Scenario.flow_stats) -> f.mean_recv_rate)
      (r.tcp_flows @ r.tfrc_flows)
  in
  let a = run () and b = run () in
  Alcotest.(check (list (float 0.))) "bit-identical reruns" a b

let () =
  Alcotest.run "tfrc_protocol"
    [
      ( "steady_state",
        [
          Alcotest.test_case "rate matches equation" `Quick
            test_steady_rate_matches_equation;
          Alcotest.test_case "rtt converges" `Quick test_rtt_converges;
        ] );
      ( "slow_start",
        [
          Alcotest.test_case "doubles" `Quick test_slow_start_doubles;
          Alcotest.test_case "terminated by loss" `Quick
            test_slow_start_terminated_by_loss;
          Alcotest.test_case "history seeded" `Quick
            test_history_seeded_on_first_loss;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "no-feedback halving" `Quick
            test_nofeedback_halves_rate;
          Alcotest.test_case "rate floor" `Quick test_rate_floor;
          Alcotest.test_case "initial nofb timer (RFC default)" `Quick
            test_initial_nofb_timer_rfc_default;
          Alcotest.test_case "initial nofb timer knob" `Quick
            test_initial_nofb_timer_configurable;
          Alcotest.test_case "stop" `Quick test_sender_stop_halts_traffic;
        ] );
      ( "appendix",
        [
          Alcotest.test_case "A.1 increase bound" `Quick test_increase_rate_bounded;
          Alcotest.test_case "A.2 five RTTs to halve" `Quick
            test_a2_at_least_five_rtts;
        ] );
      ( "dumbbell",
        [
          Alcotest.test_case "fills a link alone" `Quick test_tfrc_alone_fills_link;
          Alcotest.test_case "fair with tcp" `Quick test_tfrc_fair_with_tcp;
          Alcotest.test_case "smoother than tcp" `Quick test_tfrc_smoother_than_tcp;
          Alcotest.test_case "deterministic" `Quick test_deterministic_reproduction;
        ] );
    ]
