(* Tests for the TCP substrate: RTO estimation, the sink's ack/SACK
   generation, and sender congestion-control behavior under controlled
   loss. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- Rto --------------------------------------------------------------- *)

let test_rto_initial () =
  let r = Tcpsim.Rto.create () in
  checkf "initial rto" 3.0 (Tcpsim.Rto.rto r);
  Alcotest.(check (option (float 0.))) "no srtt" None (Tcpsim.Rto.srtt r)

let test_rto_first_sample () =
  let r = Tcpsim.Rto.create ~min_rto:0.2 () in
  Tcpsim.Rto.sample r 0.1;
  Alcotest.(check (option (float 1e-9))) "srtt = sample" (Some 0.1)
    (Tcpsim.Rto.srtt r);
  checkf "rttvar = sample/2" 0.05 (Tcpsim.Rto.rttvar r);
  checkf "rto = srtt+4var" 0.3 (Tcpsim.Rto.rto r)

let test_rto_ewma () =
  let r = Tcpsim.Rto.create ~min_rto:0.01 () in
  Tcpsim.Rto.sample r 0.1;
  Tcpsim.Rto.sample r 0.2;
  (* srtt = 0.875*0.1 + 0.125*0.2 = 0.1125
     rttvar = 0.75*0.05 + 0.25*|0.1-0.2| = 0.0625 *)
  Alcotest.(check (option (float 1e-9))) "srtt" (Some 0.1125) (Tcpsim.Rto.srtt r);
  checkf "rttvar" 0.0625 (Tcpsim.Rto.rttvar r)

let test_rto_min_floor () =
  let r = Tcpsim.Rto.create ~min_rto:1.0 () in
  for _ = 1 to 20 do
    Tcpsim.Rto.sample r 0.01
  done;
  checkf "floored at min_rto" 1.0 (Tcpsim.Rto.rto r)

let test_rto_granularity () =
  let r = Tcpsim.Rto.create ~granularity:0.5 ~min_rto:0.2 () in
  Tcpsim.Rto.sample r 0.3;
  (* base = 0.3 + 4*0.15 = 0.9 -> rounded up to 1.0 *)
  checkf "quantized" 1.0 (Tcpsim.Rto.rto r)

let test_rto_backoff () =
  let r = Tcpsim.Rto.create ~min_rto:0.2 () in
  Tcpsim.Rto.sample r 0.1;
  let base = Tcpsim.Rto.rto r in
  Tcpsim.Rto.backoff r;
  checkf ~eps:1e-9 "doubled" (2. *. base) (Tcpsim.Rto.rto r);
  Tcpsim.Rto.backoff r;
  checkf ~eps:1e-9 "doubled again" (4. *. base) (Tcpsim.Rto.rto r);
  Tcpsim.Rto.reset_backoff r;
  checkf ~eps:1e-9 "reset" base (Tcpsim.Rto.rto r)

let test_rto_max_cap () =
  let r = Tcpsim.Rto.create () in
  for _ = 1 to 20 do
    Tcpsim.Rto.backoff r
  done;
  Alcotest.(check bool) "capped at max" true (Tcpsim.Rto.rto r <= 64.)

let test_rto_aggressive_mode () =
  let normal = Tcpsim.Rto.create ~min_rto:0.2 () in
  let aggro = Tcpsim.Rto.create ~min_rto:0.2 ~mode:`Aggressive () in
  Tcpsim.Rto.sample normal 0.1;
  Tcpsim.Rto.sample aggro 0.1;
  Alcotest.(check bool)
    "aggressive rto below normal" true
    (Tcpsim.Rto.rto aggro < Tcpsim.Rto.rto normal)

(* --- Tcp_sink ----------------------------------------------------------- *)

let pkt_sim = Engine.Sim.create ()

let mk_data ~seq =
  Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq ~size:1000 ~now:0. Netsim.Packet.Data

let sink_harness () =
  let sim = Engine.Sim.create () in
  let acks = ref [] in
  let sink =
    Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config:(Tcpsim.Tcp_common.default ()) ~flow:1
      ~transmit:(fun pkt ->
        match pkt.Netsim.Packet.payload with
        | Netsim.Packet.Tcp_ack { ack; sack; _ } -> acks := (ack, sack) :: !acks
        | _ -> ())
      ()
  in
  (sim, sink, acks)

let test_sink_cumulative () =
  let _, sink, acks = sink_harness () in
  let recv = Tcpsim.Tcp_sink.recv sink in
  recv (mk_data ~seq:0);
  recv (mk_data ~seq:1);
  recv (mk_data ~seq:2);
  (match !acks with
  | (3, []) :: _ -> ()
  | (a, _) :: _ -> Alcotest.failf "expected ack 3, got %d" a
  | [] -> Alcotest.fail "no acks");
  Alcotest.(check int) "next expected" 3 (Tcpsim.Tcp_sink.next_expected sink);
  Alcotest.(check int) "three acks" 3 (List.length !acks)

let test_sink_gap_dupack_and_sack () =
  let _, sink, acks = sink_harness () in
  let recv = Tcpsim.Tcp_sink.recv sink in
  recv (mk_data ~seq:0);
  recv (mk_data ~seq:2) (* hole at 1 *);
  (match !acks with
  | (1, [ (2, 3) ]) :: _ -> ()
  | (a, sack) :: _ ->
      Alcotest.failf "expected dup ack 1 with sack [2,3), got ack %d (%d blocks)"
        a (List.length sack)
  | [] -> Alcotest.fail "no acks");
  (* Filling the hole advances past everything. *)
  recv (mk_data ~seq:1);
  match !acks with
  | (3, []) :: _ -> ()
  | (a, _) :: _ -> Alcotest.failf "expected ack 3 after fill, got %d" a
  | [] -> Alcotest.fail "no acks"

let test_sink_sack_block_merging () =
  let _, sink, acks = sink_harness () in
  let recv = Tcpsim.Tcp_sink.recv sink in
  recv (mk_data ~seq:0);
  recv (mk_data ~seq:2);
  recv (mk_data ~seq:3);
  recv (mk_data ~seq:5);
  (* out-of-order: {2,3} and {5}; most recent block first *)
  match !acks with
  | (1, blocks) :: _ ->
      Alcotest.(check (list (pair int int)))
        "blocks, recent first"
        [ (5, 6); (2, 4) ]
        blocks
  | _ -> Alcotest.fail "no acks"

let test_sink_sack_limit () =
  let _, sink, acks = sink_harness () in
  let recv = Tcpsim.Tcp_sink.recv sink in
  recv (mk_data ~seq:0);
  List.iter (fun s -> recv (mk_data ~seq:s)) [ 2; 4; 6; 8; 10 ];
  match !acks with
  | (1, blocks) :: _ ->
      Alcotest.(check int) "at most 3 sack blocks" 3 (List.length blocks)
  | _ -> Alcotest.fail "no acks"

let test_sink_duplicate_data () =
  let _, sink, acks = sink_harness () in
  let recv = Tcpsim.Tcp_sink.recv sink in
  recv (mk_data ~seq:0);
  recv (mk_data ~seq:0);
  (* duplicate still acked (so the sender sees a dupack), next stays 1 *)
  Alcotest.(check int) "two acks" 2 (List.length !acks);
  Alcotest.(check int) "next expected still 1" 1
    (Tcpsim.Tcp_sink.next_expected sink)

let test_sink_delack () =
  let sim = Engine.Sim.create () in
  let acks = ref 0 in
  let sink =
    Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim)
      ~config:(Tcpsim.Tcp_common.default ~delack:true ())
      ~flow:1
      ~transmit:(fun _ -> incr acks)
      ()
  in
  let recv = Tcpsim.Tcp_sink.recv sink in
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         recv (mk_data ~seq:0);
         recv (mk_data ~seq:1);
         recv (mk_data ~seq:2)));
  Engine.Sim.run sim ~until:1.;
  (* 3 in-order segments with delack: ack on 2nd, timer ack for 3rd = 2. *)
  Alcotest.(check int) "delayed acks" 2 !acks

(* --- Tcp_sender: controlled-path harness --------------------------------- *)

type harness = {
  sim : Engine.Sim.t;
  sender : Tcpsim.Tcp_sender.t;
  delivered : int ref; (* data packets that reached the sink *)
}

(* Direct wiring with an injectable drop decision on the data direction. *)
let wire ?(rtt = 0.1)
    ?(config = Tcpsim.Tcp_common.default ~min_rto:0.3 ~max_cwnd:64. ())
    ~drop () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let sink_cell = ref None in
  let sender_cell = ref None in
  let to_sink pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             incr delivered;
             match !sink_cell with
             | Some sink -> Tcpsim.Tcp_sink.recv sink pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim (rtt /. 2.) (fun () ->
           match !sender_cell with
           | Some s -> Tcpsim.Tcp_sender.recv s pkt
           | None -> ()))
  in
  let sink = Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  sink_cell := Some sink;
  let sender = Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sink () in
  sender_cell := Some sender;
  { sim; sender; delivered }

let test_sender_slow_start_doubling () =
  let h = wire ~drop:(fun _ -> false) () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  (* After k RTTs of slow start from cwnd=2, cwnd ~= 2^(k+1). *)
  Engine.Sim.run h.sim ~until:0.34;
  let cwnd = Tcpsim.Tcp_sender.cwnd h.sender in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd %.0f after 3 RTTs" cwnd)
    true
    (cwnd >= 12. && cwnd <= 20.)

let test_sender_no_loss_no_retransmit () =
  let h = wire ~drop:(fun _ -> false) () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:2.;
  let st = Tcpsim.Tcp_sender.stats h.sender in
  Alcotest.(check int) "no retransmits" 0 st.retransmits;
  Alcotest.(check int) "no timeouts" 0 st.timeouts

let test_sender_fast_retransmit () =
  (* Drop exactly one packet once the window is big enough for 3 dupacks. *)
  let dropped = ref None in
  let count = ref 0 in
  let drop (pkt : Netsim.Packet.t) =
    incr count;
    if !count = 30 && !dropped = None then begin
      dropped := Some pkt.seq;
      true
    end
    else false
  in
  let h = wire ~drop () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:3.;
  let st = Tcpsim.Tcp_sender.stats h.sender in
  Alcotest.(check int) "one fast retransmit" 1 st.fast_retransmits;
  Alcotest.(check int) "no timeout needed" 0 st.timeouts;
  Alcotest.(check int) "exactly one retransmission" 1 st.retransmits

let test_sender_halves_on_loss () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count = 30
  in
  let h = wire ~drop () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  (* Sample cwnd just before and after the loss response. *)
  Engine.Sim.run h.sim ~until:3.;
  let st = Tcpsim.Tcp_sender.stats h.sender in
  Alcotest.(check int) "one window halving" 1 st.window_halvings;
  Alcotest.(check bool)
    "ssthresh set below the peak" true
    (Tcpsim.Tcp_sender.ssthresh h.sender < 30.)

let test_sender_timeout_on_total_loss () =
  (* All packets dropped after the 10th: only a timeout can save it. *)
  let count = ref 0 in
  let blackout = ref false in
  let drop _ =
    incr count;
    if !count > 10 then blackout := true;
    !blackout
  in
  let h = wire ~drop () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:5.;
  let st = Tcpsim.Tcp_sender.stats h.sender in
  Alcotest.(check bool) "timeouts occurred" true (st.timeouts >= 1);
  checkf "cwnd collapsed to 1" 1. (Tcpsim.Tcp_sender.cwnd h.sender)

let test_sender_recovers_after_blackout () =
  let blackout t = t >= 1. && t < 2. in
  let h_ref = ref None in
  let drop _ =
    match !h_ref with
    | Some h -> blackout (Engine.Sim.now h.sim)
    | None -> false
  in
  let h = wire ~drop () in
  h_ref := Some h;
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:8.;
  let before = !(h.delivered) in
  Engine.Sim.run h.sim ~until:10.;
  Alcotest.(check bool)
    "delivering again after blackout" true
    (!(h.delivered) > before + 100)

let test_sender_respects_limit () =
  let h = wire ~drop:(fun _ -> false) () in
  Tcpsim.Tcp_sender.set_limit h.sender 25;
  let completed = ref false in
  Tcpsim.Tcp_sender.on_complete h.sender (fun () -> completed := true);
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:5.;
  Alcotest.(check bool) "completed" true !completed;
  Alcotest.(check bool) "finished" true (Tcpsim.Tcp_sender.finished h.sender);
  Alcotest.(check int) "sent exactly the limit" 25
    (Tcpsim.Tcp_sender.stats h.sender).packets_sent

let test_sender_limit_with_loss () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count = 5
  in
  let h = wire ~drop () in
  Tcpsim.Tcp_sender.set_limit h.sender 25;
  let completed = ref false in
  Tcpsim.Tcp_sender.on_complete h.sender (fun () -> completed := true);
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:10.;
  Alcotest.(check bool) "completed despite a loss" true !completed

let test_sender_stop () =
  let h = wire ~drop:(fun _ -> false) () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:0.5;
  Tcpsim.Tcp_sender.stop h.sender;
  let sent = (Tcpsim.Tcp_sender.stats h.sender).packets_sent in
  Engine.Sim.run h.sim ~until:2.;
  Alcotest.(check int) "no sends after stop" sent
    (Tcpsim.Tcp_sender.stats h.sender).packets_sent

(* Each variant must fill a clean pipe. *)
let test_variant_throughput variant () =
  let config = Tcpsim.Tcp_common.default ~variant ~max_cwnd:64. () in
  (* Periodic 1% loss so congestion control is exercised. *)
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let h = wire ~config ~drop () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:30.;
  let st = Tcpsim.Tcp_sender.stats h.sender in
  Alcotest.(check bool)
    (Printf.sprintf "%s delivered %d, rtx %d, to %d"
       (Tcpsim.Tcp_common.variant_name variant)
       !(h.delivered) st.retransmits st.timeouts)
    true
    (!(h.delivered) > 2000)

let test_srtt_measured () =
  let h = wire ~rtt:0.08 ~drop:(fun _ -> false) () in
  Tcpsim.Tcp_sender.start h.sender ~at:0.;
  Engine.Sim.run h.sim ~until:3.;
  match Tcpsim.Tcp_sender.srtt h.sender with
  | Some srtt ->
      Alcotest.(check bool)
        (Printf.sprintf "srtt %.3f ~ 0.08" srtt)
        true
        (Float.abs (srtt -. 0.08) < 0.01)
  | None -> Alcotest.fail "no srtt"

let () =
  Alcotest.run "tcp"
    [
      ( "rto",
        [
          Alcotest.test_case "initial" `Quick test_rto_initial;
          Alcotest.test_case "first sample" `Quick test_rto_first_sample;
          Alcotest.test_case "ewma" `Quick test_rto_ewma;
          Alcotest.test_case "min floor" `Quick test_rto_min_floor;
          Alcotest.test_case "granularity" `Quick test_rto_granularity;
          Alcotest.test_case "backoff" `Quick test_rto_backoff;
          Alcotest.test_case "max cap" `Quick test_rto_max_cap;
          Alcotest.test_case "aggressive mode" `Quick test_rto_aggressive_mode;
        ] );
      ( "sink",
        [
          Alcotest.test_case "cumulative acks" `Quick test_sink_cumulative;
          Alcotest.test_case "gap -> dupack + sack" `Quick
            test_sink_gap_dupack_and_sack;
          Alcotest.test_case "sack block merging" `Quick
            test_sink_sack_block_merging;
          Alcotest.test_case "sack block limit" `Quick test_sink_sack_limit;
          Alcotest.test_case "duplicate data" `Quick test_sink_duplicate_data;
          Alcotest.test_case "delayed acks" `Quick test_sink_delack;
        ] );
      ( "sender",
        [
          Alcotest.test_case "slow start doubling" `Quick
            test_sender_slow_start_doubling;
          Alcotest.test_case "clean path, no retransmits" `Quick
            test_sender_no_loss_no_retransmit;
          Alcotest.test_case "fast retransmit" `Quick test_sender_fast_retransmit;
          Alcotest.test_case "halves on loss" `Quick test_sender_halves_on_loss;
          Alcotest.test_case "timeout on total loss" `Quick
            test_sender_timeout_on_total_loss;
          Alcotest.test_case "recovers after blackout" `Quick
            test_sender_recovers_after_blackout;
          Alcotest.test_case "respects limit" `Quick test_sender_respects_limit;
          Alcotest.test_case "limit with loss" `Quick test_sender_limit_with_loss;
          Alcotest.test_case "stop" `Quick test_sender_stop;
          Alcotest.test_case "srtt measured" `Quick test_srtt_measured;
        ] );
      ( "variants",
        [
          Alcotest.test_case "sack throughput" `Quick
            (test_variant_throughput Tcpsim.Tcp_common.Sack);
          Alcotest.test_case "reno throughput" `Quick
            (test_variant_throughput Tcpsim.Tcp_common.Reno);
          Alcotest.test_case "newreno throughput" `Quick
            (test_variant_throughput Tcpsim.Tcp_common.Newreno);
          Alcotest.test_case "tahoe throughput" `Quick
            (test_variant_throughput Tcpsim.Tcp_common.Tahoe);
        ] );
    ]
