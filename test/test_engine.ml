(* Tests for the simulation kernel: RNG, event queue, scheduler, units. *)

let check = Alcotest.check
let checkf msg = Alcotest.check (Alcotest.float 1e-9) msg
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Engine.Rng.create ~seed:7 and b = Engine.Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Engine.Rng.bits32 a) (Engine.Rng.bits32 b)
  done

let test_rng_seed_sensitivity () =
  let a = Engine.Rng.create ~seed:1 and b = Engine.Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Engine.Rng.bits32 a <> Engine.Rng.bits32 b then differs := true
  done;
  check Alcotest.bool "different seeds differ" true !differs

let test_rng_copy () =
  let a = Engine.Rng.create ~seed:3 in
  ignore (Engine.Rng.bits32 a);
  let b = Engine.Rng.copy a in
  for _ = 1 to 50 do
    check Alcotest.int "copy continues stream" (Engine.Rng.bits32 a)
      (Engine.Rng.bits32 b)
  done

let test_rng_split_independent () =
  let a = Engine.Rng.create ~seed:3 in
  let b = Engine.Rng.split a in
  let matches = ref 0 in
  for _ = 1 to 100 do
    if Engine.Rng.bits32 a = Engine.Rng.bits32 b then incr matches
  done;
  Alcotest.(check bool) "split streams diverge" true (!matches < 5)

let test_rng_uniform_mean () =
  let rng = Engine.Rng.create ~seed:11 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.uniform rng 2. 4.
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "uniform(2,4) mean ~3" true (Float.abs (mean -. 3.) < 0.02)

let test_rng_bool_frequency () =
  let rng = Engine.Rng.create ~seed:13 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Engine.Rng.bool rng ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "p=0.3 frequency" true (Float.abs (freq -. 0.3) < 0.01)

let test_rng_exponential_mean () =
  let rng = Engine.Rng.create ~seed:17 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.exponential rng ~mean:2.5
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean" true (Float.abs (mean -. 2.5) < 0.05)

let test_rng_pareto_mean () =
  let rng = Engine.Rng.create ~seed:19 in
  let shape = 2.5 and scale = 1.0 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Engine.Rng.pareto rng ~shape ~scale
  done;
  let mean = !sum /. float_of_int n in
  let expect = Engine.Rng.pareto_mean ~shape ~scale in
  Alcotest.(check bool)
    (Printf.sprintf "pareto mean %.3f vs %.3f" mean expect)
    true
    (Float.abs (mean -. expect) /. expect < 0.05)

let test_rng_pareto_minimum () =
  let rng = Engine.Rng.create ~seed:23 in
  for _ = 1 to 1000 do
    let v = Engine.Rng.pareto rng ~shape:1.5 ~scale:3.0 in
    Alcotest.(check bool) "pareto >= scale" true (v >= 3.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Engine.Rng.create ~seed:29 in
  let a = Array.init 50 Fun.id in
  Engine.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check
    Alcotest.(array int)
    "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Engine.Rng.create ~seed in
      let v = Engine.Rng.int rng bound in
      v >= 0 && v < bound)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float in [0, bound)" ~count:500
    QCheck.(pair small_int (float_range 0.001 1e6))
    (fun (seed, bound) ->
      let rng = Engine.Rng.create ~seed in
      let v = Engine.Rng.float rng bound in
      v >= 0. && v < bound)

(* --- Event_queue ------------------------------------------------------ *)

let test_heap_ordering () =
  let q = Engine.Event_queue.create () in
  List.iter
    (fun t -> Engine.Event_queue.push q ~time:t t)
    [ 5.; 1.; 3.; 2.; 4.; 0.5 ];
  let rec drain acc =
    match Engine.Event_queue.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  check
    Alcotest.(list (float 1e-9))
    "pops in time order"
    [ 0.5; 1.; 2.; 3.; 4.; 5. ]
    (drain [])

let test_heap_fifo_ties () =
  let q = Engine.Event_queue.create () in
  List.iter (fun v -> Engine.Event_queue.push q ~time:1. v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Engine.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check Alcotest.(list int) "ties pop in insertion order" [ 1; 2; 3; 4; 5 ]
    (drain [])

let test_heap_empty () =
  let q = Engine.Event_queue.create () in
  check Alcotest.bool "is_empty" true (Engine.Event_queue.is_empty q);
  check Alcotest.(option (float 0.)) "peek empty" None
    (Engine.Event_queue.peek_time q);
  check Alcotest.bool "pop empty" true (Engine.Event_queue.pop q = None)

let test_heap_size_and_clear () =
  let q = Engine.Event_queue.create () in
  for i = 1 to 10 do
    Engine.Event_queue.push q ~time:(float_of_int i) i
  done;
  check Alcotest.int "size" 10 (Engine.Event_queue.size q);
  Engine.Event_queue.clear q;
  check Alcotest.int "cleared" 0 (Engine.Event_queue.size q)

(* Space-leak regressions: popped/cleared slots must drop their references
   so the GC can collect the scheduled values. [Sys.opaque_identity]-free
   helper functions keep the value out of test-frame registers. *)

let[@inline never] push_weak q w =
  let v = Bytes.make 64 'x' in
  Weak.set w 0 (Some v);
  Engine.Event_queue.push q ~time:1. v

let collected w =
  Gc.full_major ();
  Gc.full_major ();
  Weak.get w 0 = None

let test_heap_pop_releases () =
  let q = Engine.Event_queue.create () in
  let w = Weak.create 1 in
  push_weak q w;
  ignore (Engine.Event_queue.pop q);
  check Alcotest.bool "popped value collectable" true (collected w)

let test_heap_clear_releases () =
  let q = Engine.Event_queue.create () in
  let w = Weak.create 1 in
  push_weak q w;
  Engine.Event_queue.clear q;
  check Alcotest.bool "cleared value collectable" true (collected w)

let test_heap_compact () =
  let q = Engine.Event_queue.create () in
  for i = 1 to 1000 do
    Engine.Event_queue.push q ~time:(float_of_int i) i
  done;
  for _ = 1 to 995 do
    ignore (Engine.Event_queue.pop q)
  done;
  Engine.Event_queue.compact q;
  check Alcotest.int "size preserved" 5 (Engine.Event_queue.size q);
  (* Remaining entries still pop in order after the shrink. *)
  let rec drain acc =
    match Engine.Event_queue.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check Alcotest.(list int) "order survives compact" [ 996; 997; 998; 999; 1000 ]
    (drain []);
  Engine.Event_queue.compact q;
  check Alcotest.bool "empty after drain" true (Engine.Event_queue.is_empty q);
  Engine.Event_queue.push q ~time:1. 7;
  check Alcotest.bool "usable after empty compact" true
    (Engine.Event_queue.pop q = Some (1., 7))

let prop_heap_sorts =
  QCheck.Test.make ~name:"event queue sorts any input" ~count:200
    QCheck.(list (float_range 0. 1e6))
    (fun times ->
      let q = Engine.Event_queue.create () in
      List.iter (fun t -> Engine.Event_queue.push q ~time:t t) times;
      let rec drain acc =
        match Engine.Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      drain [] = List.sort compare times)

(* --- Timing_wheel ------------------------------------------------------ *)

let test_wheel_ordering () =
  let q = Engine.Timing_wheel.create () in
  List.iter
    (fun t -> Engine.Timing_wheel.push q ~time:t t)
    [ 5.; 1.; 3.; 2.; 4.; 0.5 ];
  let rec drain acc =
    match Engine.Timing_wheel.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  check
    Alcotest.(list (float 1e-9))
    "pops in time order"
    [ 0.5; 1.; 2.; 3.; 4.; 5. ]
    (drain [])

let test_wheel_fifo_ties () =
  let q = Engine.Timing_wheel.create () in
  List.iter (fun v -> Engine.Timing_wheel.push q ~time:1. v) [ 1; 2; 3; 4; 5 ];
  let rec drain acc =
    match Engine.Timing_wheel.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check Alcotest.(list int) "ties pop in insertion order" [ 1; 2; 3; 4; 5 ]
    (drain [])

let test_wheel_far_future_overflow () =
  (* A tiny wheel whose total window is granularity*slots^levels = 0.016 s:
     far-future pushes must overflow and still come back in order. *)
  let q = Engine.Timing_wheel.create ~granularity:1e-3 ~slots:4 ~levels:2 () in
  List.iter
    (fun t -> Engine.Timing_wheel.push q ~time:t t)
    [ 100.; 0.001; 7.; 0.01; 1e6; 0.5 ];
  let rec drain acc =
    match Engine.Timing_wheel.pop q with
    | None -> List.rev acc
    | Some (t, _) -> drain (t :: acc)
  in
  check
    Alcotest.(list (float 1e-9))
    "overflow drains in order"
    [ 0.001; 0.01; 0.5; 7.; 100.; 1e6 ]
    (drain [])

let test_wheel_rejects_bad_times () =
  let q = Engine.Timing_wheel.create () in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        "non-finite/negative push raises" true
        (match Engine.Timing_wheel.push q ~time:t 0 with
        | () -> false
        | exception Invalid_argument _ -> true))
    [ Float.nan; infinity; neg_infinity; -1. ]

let test_wheel_prune () =
  let q = Engine.Timing_wheel.create ~granularity:1e-3 ~slots:4 ~levels:2 () in
  for i = 1 to 20 do
    Engine.Timing_wheel.push q ~time:(float_of_int i *. 0.4) i
  done;
  Engine.Timing_wheel.prune q ~keep:(fun v -> v mod 2 = 0);
  check Alcotest.int "half survive" 10 (Engine.Timing_wheel.size q);
  let rec drain acc =
    match Engine.Timing_wheel.pop q with
    | None -> List.rev acc
    | Some (_, v) -> drain (v :: acc)
  in
  check Alcotest.(list int) "survivors in order"
    [ 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ]
    (drain [])

let[@inline never] wheel_push_weak q w =
  let v = Bytes.make 64 'x' in
  Weak.set w 0 (Some v);
  Engine.Timing_wheel.push q ~time:1. v

let test_wheel_pop_releases () =
  let q = Engine.Timing_wheel.create () in
  let w = Weak.create 1 in
  wheel_push_weak q w;
  ignore (Engine.Timing_wheel.pop q);
  check Alcotest.bool "popped value collectable" true (collected w)

let test_wheel_clear_releases () =
  let q = Engine.Timing_wheel.create () in
  let w = Weak.create 1 in
  wheel_push_weak q w;
  Engine.Timing_wheel.clear q;
  check Alcotest.bool "cleared value collectable" true (collected w)

let prop_wheel_sorts =
  QCheck.Test.make ~name:"timing wheel sorts any input" ~count:200
    QCheck.(list (float_range 0. 1e6))
    (fun times ->
      let q = Engine.Timing_wheel.create () in
      List.iter (fun t -> Engine.Timing_wheel.push q ~time:t t) times;
      let rec drain acc =
        match Engine.Timing_wheel.pop q with
        | None -> List.rev acc
        | Some (t, _) -> drain (t :: acc)
      in
      drain [] = List.sort compare times)

(* --- Sim --------------------------------------------------------------- *)

let test_sim_runs_in_order () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  ignore (Engine.Sim.at sim 2. (fun () -> log := 2 :: !log));
  ignore (Engine.Sim.at sim 1. (fun () -> log := 1 :: !log));
  ignore (Engine.Sim.at sim 3. (fun () -> log := 3 :: !log));
  Engine.Sim.run sim ~until:10.;
  check Alcotest.(list int) "order" [ 1; 2; 3 ] (List.rev !log);
  checkf "clock at until" 10. (Engine.Sim.now sim)

let test_sim_until_stops () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  ignore (Engine.Sim.at sim 5. (fun () -> fired := true));
  Engine.Sim.run sim ~until:4.;
  check Alcotest.bool "not fired" false !fired;
  Engine.Sim.run sim ~until:6.;
  check Alcotest.bool "fired" true !fired

let test_sim_cancel () =
  let sim = Engine.Sim.create () in
  let fired = ref false in
  let h = Engine.Sim.at sim 1. (fun () -> fired := true) in
  Engine.Sim.cancel h;
  Engine.Sim.run sim ~until:2.;
  check Alcotest.bool "cancelled handler did not run" false !fired

let test_sim_after_relative () =
  let sim = Engine.Sim.create () in
  let when_fired = ref 0. in
  ignore
    (Engine.Sim.at sim 1. (fun () ->
         ignore
           (Engine.Sim.after sim 0.5 (fun () -> when_fired := Engine.Sim.now sim))));
  Engine.Sim.run sim ~until:3.;
  checkf "after fires at now+delay" 1.5 !when_fired

let test_sim_past_raises () =
  let sim = Engine.Sim.create () in
  ignore (Engine.Sim.at sim 5. ignore);
  Engine.Sim.run sim ~until:6.;
  Alcotest.check_raises "scheduling in the past"
    (Invalid_argument "Sim.at: time 1 is in the past (now 6)") (fun () ->
      ignore (Engine.Sim.at sim 1. ignore))

let test_sim_rejects_non_finite () =
  (* Regression: NaN slipped past the past-guard ([nan < clock] is false)
     and then wandered the queue unorderably; +inf pinned [run] forever. *)
  let sim = Engine.Sim.create () in
  Alcotest.check_raises "at nan" (Invalid_argument "Sim.at: non-finite time nan")
    (fun () -> ignore (Engine.Sim.at sim Float.nan ignore));
  Alcotest.check_raises "at +inf"
    (Invalid_argument "Sim.at: non-finite time inf") (fun () ->
      ignore (Engine.Sim.at sim infinity ignore));
  Alcotest.check_raises "after nan"
    (Invalid_argument "Sim.after: non-finite delay nan") (fun () ->
      ignore (Engine.Sim.after sim Float.nan ignore));
  Alcotest.check_raises "after +inf"
    (Invalid_argument "Sim.after: non-finite delay inf") (fun () ->
      ignore (Engine.Sim.after sim infinity ignore));
  check Alcotest.int "nothing was scheduled" 0 (Engine.Sim.pending_events sim);
  (* The sim must still run normally afterwards. *)
  let fired = ref false in
  ignore (Engine.Sim.at sim 1. (fun () -> fired := true));
  Engine.Sim.run sim ~until:2.;
  check Alcotest.bool "still usable" true !fired

let test_sim_stop () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count >= 5 then Engine.Sim.stop sim
    else ignore (Engine.Sim.after sim 1. tick)
  in
  ignore (Engine.Sim.after sim 1. tick);
  Engine.Sim.run sim ~until:100.;
  check Alcotest.int "stopped after 5 ticks" 5 !count

let test_sim_cascading_events () =
  let sim = Engine.Sim.create () in
  let log = ref [] in
  ignore
    (Engine.Sim.at sim 1. (fun () ->
         log := "a" :: !log;
         ignore (Engine.Sim.after sim 0. (fun () -> log := "b" :: !log))));
  Engine.Sim.run sim ~until:1.5;
  check Alcotest.(list string) "cascade" [ "a"; "b" ] (List.rev !log)

let test_sim_is_pending () =
  let sim = Engine.Sim.create () in
  let h = Engine.Sim.at sim 1. ignore in
  check Alcotest.bool "pending before run" true (Engine.Sim.is_pending h);
  Engine.Sim.run sim ~until:2.;
  check Alcotest.bool "not pending after firing" false (Engine.Sim.is_pending h);
  check Alcotest.bool "null handle never pending" false
    (Engine.Sim.is_pending Engine.Sim.null_handle)

let test_sim_fresh_id_monotone () =
  let sim = Engine.Sim.create () in
  check Alcotest.int "nothing allocated yet" 0 (Engine.Sim.ids_allocated sim);
  check
    Alcotest.(list int)
    "ids are 1, 2, 3 in allocation order" [ 1; 2; 3 ]
    (List.init 3 (fun _ -> Engine.Sim.fresh_id sim));
  check Alcotest.int "allocation count" 3 (Engine.Sim.ids_allocated sim)

let test_sim_fresh_id_independent () =
  (* Each simulation owns its id space: allocating in one must never
     advance another, whatever the interleaving. *)
  let a = Engine.Sim.create () and b = Engine.Sim.create () in
  check Alcotest.int "a starts at 1" 1 (Engine.Sim.fresh_id a);
  check Alcotest.int "b starts at 1 too" 1 (Engine.Sim.fresh_id b);
  check Alcotest.int "a continues at 2" 2 (Engine.Sim.fresh_id a);
  check Alcotest.int "b unaffected by a" 2 (Engine.Sim.fresh_id b)

(* --- Runtime ------------------------------------------------------------ *)

let test_runtime_mirrors_sim () =
  (* The sans-IO view must be indistinguishable from calling Sim directly:
     same clock, same timer semantics, same id stream, and memoized. *)
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  check Alcotest.bool "memoized" true (rt == Engine.Sim.runtime sim);
  check Alcotest.int "shares the sim's id allocator" 1
    (Engine.Runtime.fresh_id rt);
  check Alcotest.int "sim sees runtime allocations" 2 (Engine.Sim.fresh_id sim);
  let log = ref [] in
  let h_cancelled =
    Engine.Runtime.after rt 2. (fun () -> log := "cancelled" :: !log)
  in
  ignore
    (Engine.Runtime.at rt 1. (fun () ->
         log := Printf.sprintf "at %g" (Engine.Runtime.now rt) :: !log));
  check Alcotest.bool "pending before run" true
    (Engine.Runtime.is_pending h_cancelled);
  Engine.Runtime.cancel h_cancelled;
  check Alcotest.bool "cancelled" false (Engine.Runtime.is_pending h_cancelled);
  Engine.Sim.run sim ~until:5.;
  check Alcotest.(list string) "only the live timer fired" [ "at 1" ] !log;
  check Alcotest.bool "null handle never pending" false
    (Engine.Runtime.is_pending Engine.Runtime.null_handle)

(* --- Hexfloat ----------------------------------------------------------- *)

let test_hexfloat_roundtrip () =
  (* The floats %.12g mangles — the exact set Checkpoint and the fuzzer's
     scenario codec depend on surviving bit-for-bit. *)
  let cases =
    [ 3.14159265358979312; 0.1; 1e-300; 2e-308; Float.nan; Float.infinity;
      Float.neg_infinity; -0.; 0.; Float.max_float; Float.min_float;
      epsilon_float; 1.5e200; -7.25 ]
  in
  List.iter
    (fun f ->
      let s = Engine.Hexfloat.to_string f in
      check Alcotest.bool
        (Printf.sprintf "%s round-trips bit-exactly" s)
        true
        (Engine.Hexfloat.equal f (Engine.Hexfloat.of_string s));
      match Engine.Hexfloat.of_string_opt s with
      | Some f' ->
          check Alcotest.bool (s ^ " via of_string_opt") true
            (Engine.Hexfloat.equal f f')
      | None -> Alcotest.fail (s ^ " failed to parse"))
    cases;
  check Alcotest.bool "-0. distinguished from 0." false
    (Engine.Hexfloat.equal (-0.) 0.);
  check Alcotest.bool "nan equals nan under round-trip equality" true
    (Engine.Hexfloat.equal Float.nan Float.nan);
  check Alcotest.(option (float 0.)) "garbage rejected" None
    (Engine.Hexfloat.of_string_opt "0xzoo");
  match Engine.Hexfloat.of_string "not a float" with
  | exception Failure _ -> ()
  | f -> Alcotest.failf "of_string accepted garbage: %h" f

(* --- Units ------------------------------------------------------------- *)

let test_units () =
  checkf "mbps" 15e6 (Engine.Units.mbps 15.);
  checkf "kbps" 500e3 (Engine.Units.kbps 500.);
  checkf "byte rate" 1.875e6 (Engine.Units.bps_to_byte_rate 15e6);
  checkf "tx time" 8e-3 (Engine.Units.tx_time ~bits_per_s:1e6 ~bytes:1000);
  checkf "ms" 0.05 (Engine.Units.ms 50.);
  checkf "bits of bytes" 8000. (Engine.Units.bits_of_bytes 1000);
  checkf "mbps roundtrip" 15.
    (Engine.Units.byte_rate_to_mbps (Engine.Units.bps_to_byte_rate 15e6))

let () =
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "bool frequency" `Quick test_rng_bool_frequency;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "pareto mean" `Quick test_rng_pareto_mean;
          Alcotest.test_case "pareto minimum" `Quick test_rng_pareto_minimum;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
          qtest prop_int_in_bounds;
          qtest prop_float_in_bounds;
        ] );
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "size and clear" `Quick test_heap_size_and_clear;
          Alcotest.test_case "pop releases reference" `Quick
            test_heap_pop_releases;
          Alcotest.test_case "clear releases references" `Quick
            test_heap_clear_releases;
          Alcotest.test_case "compact" `Quick test_heap_compact;
          qtest prop_heap_sorts;
        ] );
      ( "timing_wheel",
        [
          Alcotest.test_case "ordering" `Quick test_wheel_ordering;
          Alcotest.test_case "fifo ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "far-future overflow" `Quick
            test_wheel_far_future_overflow;
          Alcotest.test_case "rejects bad times" `Quick
            test_wheel_rejects_bad_times;
          Alcotest.test_case "prune" `Quick test_wheel_prune;
          Alcotest.test_case "pop releases reference" `Quick
            test_wheel_pop_releases;
          Alcotest.test_case "clear releases references" `Quick
            test_wheel_clear_releases;
          qtest prop_wheel_sorts;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "until stops" `Quick test_sim_until_stops;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "after relative" `Quick test_sim_after_relative;
          Alcotest.test_case "past raises" `Quick test_sim_past_raises;
          Alcotest.test_case "rejects non-finite times" `Quick
            test_sim_rejects_non_finite;
          Alcotest.test_case "stop" `Quick test_sim_stop;
          Alcotest.test_case "cascading events" `Quick test_sim_cascading_events;
          Alcotest.test_case "is_pending" `Quick test_sim_is_pending;
          Alcotest.test_case "fresh_id monotone" `Quick
            test_sim_fresh_id_monotone;
          Alcotest.test_case "fresh_id per-sim" `Quick
            test_sim_fresh_id_independent;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "mirrors sim" `Quick test_runtime_mirrors_sim;
        ] );
      ( "hexfloat",
        [
          Alcotest.test_case "round-trip" `Quick test_hexfloat_roundtrip;
        ] );
      ("units", [ Alcotest.test_case "conversions" `Quick test_units ]);
    ]
