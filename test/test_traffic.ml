(* Tests for the traffic generators: CBR, Pareto ON/OFF, web-like mix. *)

let test_cbr_rate () =
  let sim = Engine.Sim.create () in
  let bytes = ref 0 in
  let src =
    Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:1 ~rate:(Engine.Units.kbps 800.) ~pkt_size:1000
      ~transmit:(fun p -> bytes := !bytes + p.Netsim.Packet.size)
      ()
  in
  Traffic.Cbr.start src ~at:0.;
  Engine.Sim.run sim ~until:10.;
  (* 800 kb/s = 100 kB/s = 100 pkts/s for 10 s. *)
  Alcotest.(check bool)
    (Printf.sprintf "bytes %d ~ 1e6" !bytes)
    true
    (abs (!bytes - 1_000_000) <= 1000);
  Alcotest.(check int) "counter" (!bytes / 1000) (Traffic.Cbr.packets_sent src)

let test_cbr_start_time () =
  let sim = Engine.Sim.create () in
  let first = ref None in
  let src =
    Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:1 ~rate:1e5 ~pkt_size:1000
      ~transmit:(fun _ ->
        if !first = None then first := Some (Engine.Sim.now sim))
      ()
  in
  Traffic.Cbr.start src ~at:2.5;
  Engine.Sim.run sim ~until:5.;
  match !first with
  | Some t -> Alcotest.(check (float 1e-9)) "starts on time" 2.5 t
  | None -> Alcotest.fail "never started"

let test_cbr_stop () =
  let sim = Engine.Sim.create () in
  let count = ref 0 in
  let src =
    Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:1 ~rate:1e5 ~pkt_size:1000
      ~transmit:(fun _ -> incr count)
      ()
  in
  Traffic.Cbr.start src ~at:0.;
  ignore (Engine.Sim.at sim 1. (fun () -> Traffic.Cbr.stop src));
  Engine.Sim.run sim ~until:10.;
  let at_stop = !count in
  Alcotest.(check bool) "no sends after stop" true (at_stop <= 14)

let test_onoff_duty_cycle () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:3 in
  let bytes = ref 0 in
  let src =
    Traffic.On_off.create (Engine.Sim.runtime sim) rng ~flow:1 ~on_rate:(Engine.Units.kbps 500.)
      ~pkt_size:1000 ~mean_on:1. ~mean_off:2.
      ~transmit:(fun p -> bytes := !bytes + p.Netsim.Packet.size)
      ()
  in
  Traffic.On_off.start src ~at:0.;
  Engine.Sim.run sim ~until:3000.;
  (* Mean rate = on_rate * mean_on/(mean_on+mean_off) = 500k/3 bits/s. *)
  let rate = 8. *. float_of_int !bytes /. 3000. in
  let expect = Engine.Units.kbps 500. /. 3. in
  Alcotest.(check bool)
    (Printf.sprintf "long-run rate %.0f ~ %.0f" rate expect)
    true
    (Float.abs (rate -. expect) /. expect < 0.25)

let test_onoff_bursty () =
  (* The source must actually alternate: the 100 ms bin series should have
     both silent and full bins. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:4 in
  let ts = Stats.Time_series.create () in
  let src =
    Traffic.On_off.create (Engine.Sim.runtime sim) rng ~flow:1 ~on_rate:(Engine.Units.kbps 500.)
      ~pkt_size:500 ~mean_on:1. ~mean_off:2.
      ~transmit:(fun p ->
        Stats.Time_series.add ts ~time:(Engine.Sim.now sim)
          ~value:(float_of_int p.Netsim.Packet.size))
      ()
  in
  Traffic.On_off.start src ~at:0.;
  Engine.Sim.run sim ~until:120.;
  let bins = Stats.Time_series.binned ts ~t0:0. ~t1:120. ~bin:0.5 in
  let silent = Array.fold_left (fun n v -> if v = 0. then n + 1 else n) 0 bins in
  let busy = Array.length bins - silent in
  Alcotest.(check bool)
    (Printf.sprintf "bursty: %d silent, %d busy bins" silent busy)
    true
    (silent > 20 && busy > 20)

let test_onoff_validation () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:1 in
  Alcotest.check_raises "shape must exceed 1"
    (Invalid_argument "On_off.create: shape must exceed 1") (fun () ->
      ignore
        (Traffic.On_off.create (Engine.Sim.runtime sim) rng ~flow:1 ~on_rate:1e5 ~pkt_size:1000
           ~mean_on:1. ~mean_off:2. ~shape:0.9 ~transmit:ignore ()))

let test_web_mix_transfers_complete () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim)
      ~bandwidth:(Engine.Units.mbps 10.)
      ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 100) ()
  in
  let web =
    Traffic.Web_mix.create db rng ~first_flow_id:100 ~arrival_rate:5.
      ~mean_size:10. ()
  in
  Traffic.Web_mix.start web ~at:0.;
  Engine.Sim.run sim ~until:60.;
  let started = Traffic.Web_mix.connections_started web in
  let completed = Traffic.Web_mix.connections_completed web in
  Alcotest.(check bool)
    (Printf.sprintf "started %d ~ 300" started)
    true
    (started > 200 && started < 400);
  Alcotest.(check bool)
    (Printf.sprintf "completed %d of %d" completed started)
    true
    (float_of_int completed > 0.8 *. float_of_int started);
  Alcotest.(check bool) "packets delivered" true
    (Traffic.Web_mix.packets_delivered web > 1000)

let test_web_mix_stop () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:8 in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim)
      ~bandwidth:(Engine.Units.mbps 10.)
      ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 100) ()
  in
  let web =
    Traffic.Web_mix.create db rng ~first_flow_id:100 ~arrival_rate:10.
      ~mean_size:5. ()
  in
  Traffic.Web_mix.start web ~at:0.;
  ignore (Engine.Sim.at sim 5. (fun () -> Traffic.Web_mix.stop web));
  Engine.Sim.run sim ~until:30.;
  let started = Traffic.Web_mix.connections_started web in
  Alcotest.(check bool)
    (Printf.sprintf "no arrivals after stop (%d)" started)
    true
    (started < 80)

let () =
  Alcotest.run "traffic"
    [
      ( "cbr",
        [
          Alcotest.test_case "rate" `Quick test_cbr_rate;
          Alcotest.test_case "start time" `Quick test_cbr_start_time;
          Alcotest.test_case "stop" `Quick test_cbr_stop;
        ] );
      ( "on_off",
        [
          Alcotest.test_case "duty cycle" `Quick test_onoff_duty_cycle;
          Alcotest.test_case "bursty" `Quick test_onoff_bursty;
          Alcotest.test_case "validation" `Quick test_onoff_validation;
        ] );
      ( "web_mix",
        [
          Alcotest.test_case "transfers complete" `Quick
            test_web_mix_transfers_complete;
          Alcotest.test_case "stop" `Quick test_web_mix_stop;
        ] );
    ]
