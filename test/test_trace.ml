(* Tests for the structured trace bus (Engine.Trace) and the online
   RFC 3448 invariant checker (Tfrc.Invariants). *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest t = QCheck_alcotest.to_alcotest t

let ev ?(time = 0.) cat name fields = { Engine.Trace.time; cat; name; fields }

(* --- Bus ------------------------------------------------------------------ *)

let test_memory_sink_order () =
  let bus = Engine.Trace.create () in
  let sink, events = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  Engine.Trace.emit bus ~time:1. ~cat:"a" ~name:"x" [];
  Engine.Trace.emit bus ~time:2. ~cat:"b" ~name:"y"
    [ ("k", Engine.Trace.Int 7) ];
  let evs = events () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  let e1 = List.nth evs 0 and e2 = List.nth evs 1 in
  checkf "first time" 1. e1.Engine.Trace.time;
  Alcotest.(check string) "first cat" "a" e1.Engine.Trace.cat;
  Alcotest.(check string) "second name" "y" e2.Engine.Trace.name;
  Alcotest.(check int) "field survives" 7
    (Engine.Trace.get_int e2 "k" ~default:0);
  Alcotest.(check int) "emitted counter" 2 (Engine.Trace.emitted bus)

let test_inactive_bus_noop () =
  let bus = Engine.Trace.create () in
  Alcotest.(check bool) "no sinks: inactive" false (Engine.Trace.active bus);
  Engine.Trace.emit bus ~time:1. ~cat:"a" ~name:"x" [];
  Alcotest.(check int) "nothing counted" 0 (Engine.Trace.emitted bus);
  Alcotest.(check (list reject)) "no ring" []
    (List.map (fun _ -> ()) (Engine.Trace.recent bus))

let test_ring_oldest_first () =
  let bus = Engine.Trace.create ~ring:3 () in
  Alcotest.(check bool) "ring makes bus active" true (Engine.Trace.active bus);
  for i = 1 to 5 do
    Engine.Trace.emit bus ~time:(float_of_int i) ~cat:"c" ~name:"n" []
  done;
  let times =
    List.map (fun e -> e.Engine.Trace.time) (Engine.Trace.recent bus)
  in
  Alcotest.(check (list (float 1e-9))) "last three, oldest first"
    [ 3.; 4.; 5. ] times

let test_to_json_exact () =
  let e =
    ev ~time:1.5 "link" "drop"
      [
        ("link", Engine.Trace.Str "bottleneck-fwd");
        ("seq", Engine.Trace.Int 42);
        ("x", Engine.Trace.Float 2.25);
        ("up", Engine.Trace.Bool false);
      ]
  in
  Alcotest.(check string) "json line"
    "{\"t\":1.5,\"cat\":\"link\",\"ev\":\"drop\",\"link\":\"bottleneck-fwd\",\"seq\":42,\"x\":2.25,\"up\":false}"
    (Engine.Trace.to_json e);
  Alcotest.(check string) "no fields"
    "{\"t\":0,\"cat\":\"sim\",\"ev\":\"created\"}"
    (Engine.Trace.to_json (ev "sim" "created" []));
  Alcotest.(check string) "nan renders as null"
    "{\"t\":0,\"cat\":\"c\",\"ev\":\"n\",\"v\":null}"
    (Engine.Trace.to_json (ev "c" "n" [ ("v", Engine.Trace.Float Float.nan) ]))

let test_file_sink_jsonl () =
  let path = Filename.temp_file "trace_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let bus = Engine.Trace.create () in
      Engine.Trace.add_sink bus (Engine.Trace.file_sink path);
      Engine.Trace.emit bus ~time:0.5 ~cat:"a" ~name:"x"
        [ ("n", Engine.Trace.Int 1) ];
      Engine.Trace.emit bus ~time:1.5 ~cat:"a" ~name:"y" [];
      Engine.Trace.close bus;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "two lines" 2 (List.length lines);
      Alcotest.(check string) "first line"
        "{\"t\":0.5,\"cat\":\"a\",\"ev\":\"x\",\"n\":1}" (List.nth lines 0))

let test_remove_sink_physical_eq () =
  let bus = Engine.Trace.create () in
  let s1, events1 = Engine.Trace.memory_sink () in
  let s2, events2 = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus s1;
  Engine.Trace.add_sink bus s2;
  Engine.Trace.emit bus ~time:1. ~cat:"c" ~name:"n" [];
  Engine.Trace.remove_sink bus s1;
  Engine.Trace.emit bus ~time:2. ~cat:"c" ~name:"n" [];
  Alcotest.(check int) "detached sink stops receiving" 1
    (List.length (events1 ()));
  Alcotest.(check int) "other sink keeps receiving" 2
    (List.length (events2 ()));
  Engine.Trace.remove_sink bus s2;
  Alcotest.(check bool) "bus inactive again" false (Engine.Trace.active bus)

let test_accessors () =
  let e =
    ev "c" "n"
      [
        ("f", Engine.Trace.Float 3.5);
        ("i", Engine.Trace.Int 9);
        ("s", Engine.Trace.Str "hello");
        ("b", Engine.Trace.Bool true);
      ]
  in
  checkf "float field" 3.5 (Engine.Trace.get_float e "f" ~default:0.);
  checkf "int read as float" 9. (Engine.Trace.get_float e "i" ~default:0.);
  Alcotest.(check int) "int field" 9 (Engine.Trace.get_int e "i" ~default:0);
  Alcotest.(check string) "str field" "hello"
    (Engine.Trace.get_str e "s" ~default:"");
  Alcotest.(check bool) "bool field" true
    (Engine.Trace.get_bool e "b" ~default:false);
  checkf "missing gives default" 7. (Engine.Trace.get_float e "zz" ~default:7.);
  Alcotest.(check bool) "find present" true
    (Engine.Trace.find e "s" <> None);
  Alcotest.(check bool) "find absent" true (Engine.Trace.find e "zz" = None)

(* --- Sim integration ------------------------------------------------------ *)

let test_sim_lifecycle_events () =
  let bus = Engine.Trace.create () in
  let sink, events = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let sim = Engine.Sim.create ~trace:bus () in
  ignore (Engine.Sim.at sim 1. (fun () -> ()));
  Engine.Sim.run sim ~until:2.;
  let names =
    List.map
      (fun e -> (e.Engine.Trace.cat, e.Engine.Trace.name))
      (events ())
  in
  Alcotest.(check bool) "sim/created" true
    (List.mem ("sim", "created") names);
  Alcotest.(check bool) "sim/run_start" true
    (List.mem ("sim", "run_start") names);
  Alcotest.(check bool) "sim/run_end" true (List.mem ("sim", "run_end") names)

(* --- Invariant checker units ---------------------------------------------- *)

let f x = Engine.Trace.Float x
let i x = Engine.Trace.Int x
let b x = Engine.Trace.Bool x
let s x = Engine.Trace.Str x

(* One-shot per-flow config event: the checker reads s/min_rate/rv/t_mbi
   from this, so every sender-rule test starts with it. *)
let start_ev ?(time = 0.) ?(flow = 1) ?(rate = 1000.) ?(seg = 1000.)
    ?(min_rate = 100.) ?(rv = true) ?(t_mbi = 64.) () =
  ev ~time "tfrc" "start"
    [
      ("flow", i flow); ("rate", f rate); ("s", f seg);
      ("min_rate", f min_rate); ("rv", b rv); ("t_mbi", f t_mbi);
    ]

let rate_update_ev ?(time = 1.) ?(flow = 1) ~rate ~prev_rate ~recv_rate ~p
    ~rtt () =
  ev ~time "tfrc" "rate_update"
    [
      ("flow", i flow); ("rate", f rate); ("prev_rate", f prev_rate);
      ("recv_rate", f recv_rate); ("p", f p); ("rtt", f rtt);
    ]

let test_checker_clean_rate_update () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ());
  Tfrc.Invariants.check_event t
    (rate_update_ev ~rate:1800. ~prev_rate:1000. ~recv_rate:1000. ~p:0.05
       ~rtt:0.1 ());
  Alcotest.(check bool) "clean update passes" true (Tfrc.Invariants.ok t);
  Alcotest.(check int) "events counted" 2 (Tfrc.Invariants.n_events t)

(* Acceptance: a sender pushing rate > 2·X_recv under rate validation is
   flagged. *)
let test_checker_broken_sender () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ());
  Tfrc.Invariants.check_event t
    (rate_update_ev ~rate:5000. ~prev_rate:1000. ~recv_rate:1000. ~p:0.1
       ~rtt:0.1 ());
  Alcotest.(check bool) "violation detected" false (Tfrc.Invariants.ok t);
  match Tfrc.Invariants.violations t with
  | [ v ] ->
      Alcotest.(check string) "rule name" "sender-rate-bound"
        v.Tfrc.Invariants.rule
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l)

(* Same broken sender, but with the fields in a non-canonical order so the
   checker's keyed-lookup fallback (not the shape-match fast path) runs. *)
let test_checker_broken_sender_shuffled_fields () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ());
  Tfrc.Invariants.check_event t
    (ev ~time:1. "tfrc" "rate_update"
       [
         ("p", f 0.1); ("rtt", f 0.1); ("rate", f 5000.); ("flow", i 1);
         ("recv_rate", f 1000.); ("prev_rate", f 1000.);
       ]);
  Alcotest.(check bool) "violation via fallback path" false
    (Tfrc.Invariants.ok t);
  match Tfrc.Invariants.violations t with
  | [ v ] ->
      Alcotest.(check string) "rule name" "sender-rate-bound"
        v.Tfrc.Invariants.rule
  | l -> Alcotest.failf "expected one violation, got %d" (List.length l)

let nofb_ev ?(time = 1.) ?(flow = 1) ~rate ~interval ~consecutive () =
  ev ~time "tfrc" "nofb_expiry"
    [
      ("flow", i flow); ("rate", f rate); ("interval", f interval);
      ("consecutive", i consecutive);
    ]

let test_checker_nofb_exceeds_t_mbi () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ~t_mbi:64. ());
  Tfrc.Invariants.check_event t
    (nofb_ev ~rate:500. ~interval:100. ~consecutive:1 ());
  Alcotest.(check bool) "interval above t_mbi flagged" false
    (Tfrc.Invariants.ok t)

let test_checker_nofb_shrinking_backoff () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ());
  Tfrc.Invariants.check_event t
    (nofb_ev ~time:1. ~rate:500. ~interval:20. ~consecutive:1 ());
  Alcotest.(check bool) "first expiry fine" true (Tfrc.Invariants.ok t);
  Tfrc.Invariants.check_event t
    (nofb_ev ~time:2. ~rate:500. ~interval:10. ~consecutive:2 ());
  Alcotest.(check bool) "shrinking consecutive interval flagged" false
    (Tfrc.Invariants.ok t)

let test_checker_nofb_below_floor () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ~min_rate:100. ());
  Tfrc.Invariants.check_event t
    (nofb_ev ~rate:50. ~interval:1. ~consecutive:1 ());
  Alcotest.(check bool) "rate below configured floor flagged" false
    (Tfrc.Invariants.ok t)

let feedback_ev ?(time = 1.) ?(flow = 1) ~p ~recv_rate ~n_closed ~avg () =
  ev ~time "tfrc" "feedback"
    [
      ("flow", i flow); ("p", f p); ("recv_rate", f recv_rate);
      ("n_closed", i n_closed); ("avg_interval", f avg);
    ]

let test_checker_loss_rate_range () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t
    (feedback_ev ~p:1.5 ~recv_rate:1000. ~n_closed:0 ~avg:0. ());
  Alcotest.(check bool) "p > 1 flagged" false (Tfrc.Invariants.ok t)

let test_checker_loss_rate_zero_with_history () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t
    (feedback_ev ~p:0. ~recv_rate:1000. ~n_closed:3 ~avg:50. ());
  Alcotest.(check bool) "p = 0 despite closed intervals flagged" false
    (Tfrc.Invariants.ok t)

let test_checker_time_monotone () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (ev ~time:5. "queue" "sample" []);
  Tfrc.Invariants.check_event t (ev ~time:4. "queue" "sample" []);
  Alcotest.(check bool) "time going backwards flagged" false
    (Tfrc.Invariants.ok t);
  (* A new simulation resets the watermark: time restarting at 0 after a
     sim/created event is not a violation. *)
  let t2 = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t2 (ev ~time:5. "queue" "sample" []);
  Tfrc.Invariants.check_event t2 (ev ~time:0. "sim" "created" []);
  Tfrc.Invariants.check_event t2 (ev ~time:0.5 "queue" "sample" []);
  Alcotest.(check bool) "new sim resets watermark" true
    (Tfrc.Invariants.ok t2)

let test_checker_link_conservation () =
  let t = Tfrc.Invariants.create () in
  let link_ev name =
    ev ~time:1. "link" name
      [ ("link", s "l0"); ("flow", i 1); ("seq", i 0); ("size", i 1000) ]
  in
  Tfrc.Invariants.check_event t (link_ev "send");
  Tfrc.Invariants.check_event t (link_ev "deliver");
  Alcotest.(check bool) "balanced link fine" true (Tfrc.Invariants.ok t);
  Tfrc.Invariants.check_event t (link_ev "deliver");
  Alcotest.(check bool) "delivery without send flagged" false
    (Tfrc.Invariants.ok t)

let test_checker_queue_conservation () =
  (* link/queue snapshots carry the queue's own counters, which admit an
     exact balance: arrivals = departures + drops + queued. *)
  let queue_ev ~arrivals ~departures ~drops ~queued =
    ev ~time:1. "link" "queue"
      [
        ("link", s "l0");
        ("arrivals", i arrivals);
        ("departures", i departures);
        ("drops", i drops);
        ("queued", i queued);
      ]
  in
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t
    (queue_ev ~arrivals:10 ~departures:6 ~drops:2 ~queued:2);
  Alcotest.(check bool) "balanced snapshot fine" true (Tfrc.Invariants.ok t);
  Tfrc.Invariants.check_event t
    (queue_ev ~arrivals:10 ~departures:6 ~drops:2 ~queued:1);
  Alcotest.(check bool) "off-by-one imbalance flagged" false
    (Tfrc.Invariants.ok t);
  (match Tfrc.Invariants.violations t with
  | [ v ] ->
      Alcotest.(check string) "rule name" "queue-conservation"
        v.Tfrc.Invariants.rule
  | vs -> Alcotest.failf "expected exactly one violation, got %d"
            (List.length vs))

let test_checker_report_format () =
  let t = Tfrc.Invariants.create () in
  Tfrc.Invariants.check_event t (start_ev ());
  Tfrc.Invariants.check_event t
    (rate_update_ev ~rate:5000. ~prev_rate:1000. ~recv_rate:1000. ~p:0.1
       ~rtt:0.1 ());
  let txt = Format.asprintf "%a" Tfrc.Invariants.report t in
  let has sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length txt && (String.sub txt i n = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "report names the rule" true (has "sender-rate-bound");
  Alcotest.(check bool) "report counts violations" true (has "1 VIOLATIONS")

(* --- Checker against a real simulation ------------------------------------ *)

(* A clean TFRC transfer over a dumbbell, traced on a private bus. Mirrors
   the resilience wiring minus the faults. *)
let run_dumbbell_checked ~seed ~rogue =
  let bus = Engine.Trace.create () in
  let checker = Tfrc.Invariants.create () in
  Tfrc.Invariants.attach checker bus;
  let sim = Engine.Sim.create ~trace:bus () in
  ignore seed;
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:(Engine.Units.mbps 2.) ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 20) ()
  in
  let flow = 1 in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base:0.04;
  let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 ~min_rate:1000. () in
  let receiver =
    Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow
      ~transmit:(Netsim.Dumbbell.dst_sender db ~flow)
      ()
  in
  Netsim.Dumbbell.set_dst_recv db ~flow (Tfrc.Tfrc_receiver.recv receiver);
  let sender =
    Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow
      ~transmit:(Netsim.Dumbbell.src_sender db ~flow)
      ()
  in
  Netsim.Dumbbell.set_src_recv db ~flow (Tfrc.Tfrc_sender.recv sender);
  Tfrc.Tfrc_sender.start sender ~at:0.;
  if rogue then
    (* A fabricated flow that violates the 2·X_recv bound mid-run: the
       checker must catch it inside an otherwise clean trace. *)
    ignore
      (Engine.Sim.at sim 30. (fun () ->
           let now = Engine.Sim.now sim in
           Engine.Trace.emit bus ~time:now ~cat:"tfrc" ~name:"start"
             [
               ("flow", i 99); ("rate", f 1000.); ("s", f 1000.);
               ("min_rate", f 100.); ("rv", b true); ("t_mbi", f 64.);
             ];
           Engine.Trace.emit bus ~time:now ~cat:"tfrc" ~name:"rate_update"
             [
               ("flow", i 99); ("rate", f 5000.); ("prev_rate", f 1000.);
               ("recv_rate", f 1000.); ("p", f 0.1); ("rtt", f 0.1);
             ]));
  Engine.Sim.run sim ~until:60.;
  Tfrc.Invariants.detach checker bus;
  checker

let prop_clean_run_satisfies_invariants =
  QCheck.Test.make ~name:"clean dumbbell run satisfies all invariants"
    ~count:3
    QCheck.(int_range 1 1000)
    (fun seed ->
      let checker = run_dumbbell_checked ~seed ~rogue:false in
      Tfrc.Invariants.ok checker && Tfrc.Invariants.n_events checker > 100)

let test_rogue_flow_caught () =
  let checker = run_dumbbell_checked ~seed:1 ~rogue:true in
  Alcotest.(check bool) "rogue rate update caught" false
    (Tfrc.Invariants.ok checker);
  Alcotest.(check bool) "exactly the injected violations" true
    (Tfrc.Invariants.n_violations checker >= 1)

(* --- Queue sampler tracing ------------------------------------------------ *)

let test_sampler_traces_and_stops () =
  let bus = Engine.Trace.create () in
  let sink, events = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let sim = Engine.Sim.create ~trace:bus () in
  let q = Netsim.Droptail.create ~limit_pkts:100 in
  let sampler = Netsim.Flowmon.Queue_sampler.start (Engine.Sim.runtime sim) ~period:0.1 ~queue:q in
  ignore
    (Engine.Sim.at sim 0.45 (fun () ->
         Netsim.Flowmon.Queue_sampler.stop sampler));
  Engine.Sim.run sim ~until:1.;
  let samples =
    List.filter
      (fun e ->
        e.Engine.Trace.cat = "queue" && e.Engine.Trace.name = "sample")
      (events ())
  in
  Alcotest.(check bool) "t0 sample emitted" true
    (match samples with e :: _ -> e.Engine.Trace.time = 0. | [] -> false);
  (* Samples at 0.0 .. 0.4 only: stop at 0.45 cancels the pending timer. *)
  Alcotest.(check int) "no samples after stop" 5 (List.length samples);
  Engine.Sim.run sim ~until:2.;
  Alcotest.(check int) "still none later" 5
    (List.length
       (List.filter (fun e -> e.Engine.Trace.cat = "queue") (events ())))

let () =
  Alcotest.run "trace"
    [
      ( "bus",
        [
          Alcotest.test_case "memory sink order" `Quick test_memory_sink_order;
          Alcotest.test_case "inactive bus no-op" `Quick test_inactive_bus_noop;
          Alcotest.test_case "ring oldest first" `Quick test_ring_oldest_first;
          Alcotest.test_case "to_json exact" `Quick test_to_json_exact;
          Alcotest.test_case "file sink jsonl" `Quick test_file_sink_jsonl;
          Alcotest.test_case "remove sink physical eq" `Quick
            test_remove_sink_physical_eq;
          Alcotest.test_case "field accessors" `Quick test_accessors;
        ] );
      ( "sim",
        [
          Alcotest.test_case "lifecycle events" `Quick
            test_sim_lifecycle_events;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "clean rate update" `Quick
            test_checker_clean_rate_update;
          Alcotest.test_case "broken sender caught" `Quick
            test_checker_broken_sender;
          Alcotest.test_case "broken sender, shuffled fields" `Quick
            test_checker_broken_sender_shuffled_fields;
          Alcotest.test_case "nofb above t_mbi" `Quick
            test_checker_nofb_exceeds_t_mbi;
          Alcotest.test_case "nofb shrinking backoff" `Quick
            test_checker_nofb_shrinking_backoff;
          Alcotest.test_case "nofb below floor" `Quick
            test_checker_nofb_below_floor;
          Alcotest.test_case "loss rate out of range" `Quick
            test_checker_loss_rate_range;
          Alcotest.test_case "loss rate zero with history" `Quick
            test_checker_loss_rate_zero_with_history;
          Alcotest.test_case "time monotone" `Quick test_checker_time_monotone;
          Alcotest.test_case "link conservation" `Quick
            test_checker_link_conservation;
          Alcotest.test_case "queue conservation" `Quick
            test_checker_queue_conservation;
          Alcotest.test_case "report format" `Quick test_checker_report_format;
        ] );
      ( "end-to-end",
        [
          qtest prop_clean_run_satisfies_invariants;
          Alcotest.test_case "rogue flow caught" `Quick test_rogue_flow_caught;
          Alcotest.test_case "sampler traces and stops" `Quick
            test_sampler_traces_and_stops;
        ] );
    ]
