(* Tests for the network simulator: packets, queue disciplines, links,
   loss models, the dumbbell topology and monitors. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest t = QCheck_alcotest.to_alcotest t

(* Dedicated id-allocator sim for hand-built packets: ids are unique
   within it, and the simulations under test keep their own id spaces. *)
let pkt_sim = Engine.Sim.create ()

let mk_pkt ?(flow = 1) ?(seq = 0) ?(size = 1000) ?(now = 0.) () =
  Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow ~seq ~size ~now Netsim.Packet.Data

(* --- Packet --------------------------------------------------------------- *)

let test_packet_unique_ids () =
  let a = mk_pkt () and b = mk_pkt () in
  Alcotest.(check bool) "distinct ids" true (a.Netsim.Packet.id <> b.Netsim.Packet.id)

let test_packet_pp () =
  let s = Format.asprintf "%a" Netsim.Packet.pp (mk_pkt ~flow:3 ~seq:9 ()) in
  Alcotest.(check bool) "mentions flow and seq" true
    (String.length s > 0
    &&
    let has sub =
      let n = String.length sub in
      let rec scan i =
        i + n <= String.length s && (String.sub s i n = sub || scan (i + 1))
      in
      scan 0
    in
    has "flow 3" && has "seq 9")

let test_packet_is_data () =
  Alcotest.(check bool) "data" true (Netsim.Packet.is_data (mk_pkt ()));
  let ack =
    Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq:0 ~size:40 ~now:0.
      (Netsim.Packet.Tcp_ack { ack = 1; sack = []; ece = false })
  in
  Alcotest.(check bool) "ack is not data" false (Netsim.Packet.is_data ack);
  let fb =
    Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq:0 ~size:40 ~now:0.
      (Netsim.Packet.Tfrc_feedback
         { p = 0.; recv_rate = 0.; ts_echo = 0.; ts_delay = 0. })
  in
  Alcotest.(check bool) "feedback is not data" false (Netsim.Packet.is_data fb)

(* The freelist pool must recycle records (that's its whole point) while
   keeping packet identity fresh: a reused record gets a new id from the
   sim allocator and fully reinitialized fields. *)
let test_packet_pool_recycles () =
  let sim = Engine.Sim.create () in
  let pool = Netsim.Packet.Pool.create () in
  let p1 =
    Netsim.Packet.Pool.alloc pool (Engine.Sim.runtime sim) ~ecn:true ~flow:1 ~seq:10 ~size:1000
      ~now:1. Netsim.Packet.Data
  in
  let id1 = p1.Netsim.Packet.id in
  p1.Netsim.Packet.ecn_marked <- true;
  p1.Netsim.Packet.corrupted <- true;
  Alcotest.(check int) "one outstanding" 1
    (Netsim.Packet.Pool.outstanding pool);
  Netsim.Packet.Pool.release pool p1;
  Alcotest.(check int) "none outstanding" 0
    (Netsim.Packet.Pool.outstanding pool);
  Alcotest.(check int) "one idle" 1 (Netsim.Packet.Pool.idle pool);
  let p2 =
    Netsim.Packet.Pool.alloc pool (Engine.Sim.runtime sim) ~flow:2 ~seq:20 ~size:500 ~now:2.
      Netsim.Packet.Data
  in
  Alcotest.(check bool) "record reused" true (p1 == p2);
  Alcotest.(check bool) "fresh id on reuse" true (p2.Netsim.Packet.id <> id1);
  Alcotest.(check int) "flow rewritten" 2 p2.Netsim.Packet.flow;
  Alcotest.(check int) "seq rewritten" 20 p2.Netsim.Packet.seq;
  Alcotest.(check int) "size rewritten" 500 p2.Netsim.Packet.size;
  Alcotest.(check bool) "ecn reset" false p2.Netsim.Packet.ecn_capable;
  Alcotest.(check bool) "mark reset" false p2.Netsim.Packet.ecn_marked;
  Alcotest.(check bool) "corruption reset" false p2.Netsim.Packet.corrupted

(* Packet ids are a pure function of the owning simulation's allocation
   order, never of process-global state: two sims in one process each get
   the sequence 1, 2, 3, ... regardless of how their allocations
   interleave. This is what makes -j 1 and -j N grid runs byte-identical
   when traces carry packet ids. *)
let test_packet_ids_per_sim () =
  let mk sim seq =
    Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:1 ~seq ~size:100 ~now:0. Netsim.Packet.Data
  in
  let a = Engine.Sim.create () and b = Engine.Sim.create () in
  let ids_a = ref [] and ids_b = ref [] in
  for seq = 1 to 5 do
    ids_a := (mk a seq).Netsim.Packet.id :: !ids_a;
    ids_b := (mk b seq).Netsim.Packet.id :: !ids_b
  done;
  Alcotest.(check (list int))
    "sim A allocates 1..5" [ 1; 2; 3; 4; 5 ]
    (List.rev !ids_a);
  Alcotest.(check (list int))
    "sim B allocates 1..5 independently" [ 1; 2; 3; 4; 5 ]
    (List.rev !ids_b)

let prop_packet_ids_independent =
  QCheck.Test.make ~count:200 ~name:"packet ids independent of interleaving"
    QCheck.(list bool)
    (fun choices ->
      let a = Engine.Sim.create () and b = Engine.Sim.create () in
      let got_a = ref [] and got_b = ref [] in
      List.iter
        (fun pick_a ->
          let sim, acc = if pick_a then (a, got_a) else (b, got_b) in
          let pkt =
            Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:0 ~seq:0 ~size:40 ~now:0.
              Netsim.Packet.Data
          in
          acc := pkt.Netsim.Packet.id :: !acc)
        choices;
      let is_sequence l =
        List.rev l = List.init (List.length l) (fun i -> i + 1)
      in
      is_sequence !got_a && is_sequence !got_b)

(* --- Droptail ------------------------------------------------------------- *)

let test_droptail_fifo () =
  let q = Netsim.Droptail.create ~limit_pkts:10 in
  let p1 = mk_pkt ~seq:1 () and p2 = mk_pkt ~seq:2 () in
  Alcotest.(check bool) "accept 1" true (q.Netsim.Queue_disc.enqueue p1);
  Alcotest.(check bool) "accept 2" true (q.Netsim.Queue_disc.enqueue p2);
  (match q.Netsim.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "fifo order" 1 p.Netsim.Packet.seq
  | None -> Alcotest.fail "expected packet");
  Alcotest.(check int) "len" 1 (q.Netsim.Queue_disc.len_pkts ())

let test_droptail_overflow () =
  let q = Netsim.Droptail.create ~limit_pkts:3 in
  for i = 1 to 5 do
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()))
  done;
  Alcotest.(check int) "len capped" 3 (q.Netsim.Queue_disc.len_pkts ());
  Alcotest.(check int) "drops" 2 q.Netsim.Queue_disc.stats.drops;
  checkf "drop rate" 0.4 (Netsim.Queue_disc.drop_rate q)

let test_droptail_bytes () =
  let q = Netsim.Droptail.create ~limit_pkts:10 in
  ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~size:500 ()));
  ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~size:700 ()));
  Alcotest.(check int) "bytes" 1200 (q.Netsim.Queue_disc.len_bytes ());
  ignore (q.Netsim.Queue_disc.dequeue ());
  Alcotest.(check int) "bytes after dequeue" 700 (q.Netsim.Queue_disc.len_bytes ())

let test_droptail_bad_limit () =
  Alcotest.check_raises "limit > 0"
    (Invalid_argument "Droptail.create: limit must be positive") (fun () ->
      ignore (Netsim.Droptail.create ~limit_pkts:0))

(* --- RED ------------------------------------------------------------------ *)

let make_red ?(min_th = 5.) ?(max_th = 15.) ?(limit = 50) ?(gentle = true) now =
  Netsim.Red.create
    ~params:(Netsim.Red.params ~min_th ~max_th ~gentle ~limit_pkts:limit ())
    ~now ~ptc:1000.

let test_red_no_drop_below_minth () =
  let now = ref 0. in
  let q = make_red (fun () -> !now) in
  (* Keep the instantaneous queue small: alternate enqueue/dequeue. *)
  for i = 1 to 100 do
    now := float_of_int i *. 1e-3;
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()));
    ignore (q.Netsim.Queue_disc.dequeue ())
  done;
  Alcotest.(check int) "no early drops below min_th" 0
    q.Netsim.Queue_disc.stats.drops

let test_red_drops_under_sustained_load () =
  let now = ref 0. in
  let q = make_red (fun () -> !now) in
  for i = 1 to 200 do
    now := float_of_int i *. 1e-4;
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()));
    (* drain slowly: every 4th packet *)
    if i mod 4 = 0 then ignore (q.Netsim.Queue_disc.dequeue ())
  done;
  Alcotest.(check bool)
    "drops under sustained overload" true
    (q.Netsim.Queue_disc.stats.drops > 0)

let test_red_physical_limit () =
  let now = ref 0. in
  let q = make_red ~limit:10 (fun () -> !now) in
  for i = 1 to 100 do
    now := float_of_int i *. 1e-4;
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()))
  done;
  Alcotest.(check bool)
    "never exceeds physical limit" true
    (q.Netsim.Queue_disc.len_pkts () <= 10)

let test_red_avg_tracks_queue () =
  let now = ref 0. in
  let q = make_red (fun () -> !now) in
  for i = 1 to 100 do
    now := float_of_int i *. 1e-4;
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()))
  done;
  Alcotest.(check bool) "avg rose" true (Netsim.Red.avg_queue q > 0.)

let test_red_idle_aging () =
  let now = ref 0. in
  let q = make_red (fun () -> !now) in
  (* Build up some average. *)
  for i = 1 to 30 do
    now := float_of_int i *. 1e-4;
    ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()))
  done;
  while q.Netsim.Queue_disc.dequeue () <> None do
    ()
  done;
  let avg_before = Netsim.Red.avg_queue q in
  (* Long idle period, then one arrival: the average must have decayed. *)
  now := !now +. 10.;
  ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:999 ()));
  let avg_after = Netsim.Red.avg_queue q in
  Alcotest.(check bool)
    (Printf.sprintf "aged %.3f -> %.3f" avg_before avg_after)
    true (avg_after < 0.1 *. avg_before)

let test_red_gentle_vs_not () =
  (* Push the average far past max_th: the non-gentle queue force-drops
     every arrival there; the gentle queue still accepts some. *)
  let drive gentle =
    let now = ref 0. in
    let q = make_red ~min_th:2. ~max_th:4. ~gentle ~limit:200 (fun () -> !now) in
    let accepted = ref 0 in
    for i = 1 to 3000 do
      now := !now +. 1e-5;
      if q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()) then incr accepted
    done;
    !accepted
  in
  let strict = drive false and gentle = drive true in
  Alcotest.(check bool)
    (Printf.sprintf "gentle accepts more (%d vs %d)" gentle strict)
    true (gentle > strict)

let test_red_params_validation () =
  Alcotest.check_raises "min < max"
    (Invalid_argument "Red.params: need 0 < min_th < max_th") (fun () ->
      ignore (Netsim.Red.params ~min_th:10. ~max_th:5. ~limit_pkts:50 ()));
  Alcotest.check_raises "not a red queue"
    (Invalid_argument "Red.avg_queue: not a RED queue") (fun () ->
      ignore (Netsim.Red.avg_queue (Netsim.Droptail.create ~limit_pkts:5)))

(* --- Link ----------------------------------------------------------------- *)

let test_link_serialization_and_delay () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.05
      ~queue:(Netsim.Droptail.create ~limit_pkts:10)
      ()
  in
  let arrived = ref [] in
  Netsim.Link.set_dest link (fun p ->
      arrived := (Engine.Sim.now sim, p.Netsim.Packet.seq) :: !arrived);
  (* 1000B at 1 Mb/s = 8 ms serialization + 50 ms propagation. *)
  ignore (Engine.Sim.at sim 0. (fun () -> Netsim.Link.send link (mk_pkt ~seq:1 ())));
  Engine.Sim.run sim ~until:1.;
  match !arrived with
  | [ (t, 1) ] -> checkf ~eps:1e-9 "arrival time" 0.058 t
  | _ -> Alcotest.fail "expected exactly one arrival"

let test_link_pipelining () =
  (* Two packets sent back to back: arrivals separated by the serialization
     time only (propagation overlaps). *)
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.05
      ~queue:(Netsim.Droptail.create ~limit_pkts:10)
      ()
  in
  let times = ref [] in
  Netsim.Link.set_dest link (fun _ -> times := Engine.Sim.now sim :: !times);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Link.send link (mk_pkt ~seq:1 ());
         Netsim.Link.send link (mk_pkt ~seq:2 ())));
  Engine.Sim.run sim ~until:1.;
  match List.rev !times with
  | [ t1; t2 ] ->
      checkf ~eps:1e-9 "first" 0.058 t1;
      checkf ~eps:1e-9 "second spaced by tx time" 0.066 t2
  | _ -> Alcotest.fail "expected two arrivals"

let test_link_drop_listener () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:1e4 ~delay:0.
      ~queue:(Netsim.Droptail.create ~limit_pkts:1)
      ()
  in
  Netsim.Link.set_dest link ignore;
  let drops = ref 0 in
  Netsim.Link.on_drop link (fun _ -> incr drops);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         (* one serializing, one queued, rest dropped *)
         for i = 1 to 5 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  Engine.Sim.run sim ~until:10.;
  Alcotest.(check int) "drops observed" 3 !drops

let test_link_utilization () =
  let sim = Engine.Sim.create () in
  let link =
    Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:8e5 ~delay:0.
      ~queue:(Netsim.Droptail.create ~limit_pkts:100)
      ()
  in
  Netsim.Link.set_dest link ignore;
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 50 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  Engine.Sim.run sim ~until:1.;
  (* 50 kB = 4e5 bits over an 8e5-bit/s link in 1 s: utilization 0.5 *)
  checkf ~eps:1e-6 "utilization" 0.5 (Netsim.Link.utilization link ~duration:1.);
  checkf ~eps:1e-6 "busy time" 0.5 (Netsim.Link.busy_time link);
  Alcotest.(check int) "delivered bytes" 50_000 (Netsim.Link.delivered_bytes link)

(* --- Loss models ----------------------------------------------------------- *)

let count_passed handler packets =
  let passed = ref 0 in
  let dest _ = incr passed in
  let h = handler dest in
  for i = 1 to packets do
    h (mk_pkt ~seq:i ())
  done;
  !passed

let test_bernoulli_rate () =
  let rng = Engine.Rng.create ~seed:5 in
  let passed = count_passed (Netsim.Loss_model.bernoulli rng ~p:0.1) 50_000 in
  let loss = 1. -. (float_of_int passed /. 50_000.) in
  Alcotest.(check bool) "bernoulli 10%" true (Float.abs (loss -. 0.1) < 0.01)

let test_bernoulli_extremes () =
  let rng = Engine.Rng.create ~seed:5 in
  Alcotest.(check int) "p=0 passes all" 100
    (count_passed (Netsim.Loss_model.bernoulli rng ~p:0.) 100);
  Alcotest.(check int) "p=1 drops all" 0
    (count_passed (Netsim.Loss_model.bernoulli rng ~p:1.) 100)

let test_periodic_exact () =
  Alcotest.(check int) "every 10th dropped" 90
    (count_passed (Netsim.Loss_model.periodic ~period:10) 100)

let test_periodic_rate () =
  Alcotest.(check int) "2.5% rate" 975
    (count_passed (Netsim.Loss_model.periodic_rate ~rate:0.025) 1000);
  Alcotest.(check int) "zero rate never drops" 500
    (count_passed (Netsim.Loss_model.periodic_rate ~rate:0.) 500)

let test_time_varying () =
  let now = ref 0. in
  let schedule t = if t < 1. then 0.5 else 0. in
  let passed = ref 0 in
  let h =
    Netsim.Loss_model.time_varying ~schedule
      ~now:(fun () -> !now)
      (fun _ -> incr passed)
  in
  for i = 1 to 100 do
    now := 0.5;
    ignore i;
    h (mk_pkt ())
  done;
  Alcotest.(check int) "50% dropped in phase 1" 50 !passed;
  for _ = 1 to 100 do
    now := 2.;
    h (mk_pkt ())
  done;
  Alcotest.(check int) "none dropped in phase 2" 150 !passed

let test_gilbert_burstiness () =
  let rng = Engine.Rng.create ~seed:9 in
  let passed =
    count_passed
      (Netsim.Loss_model.gilbert rng ~p_gb:0.01 ~p_bg:0.3 ~loss_good:0.001
         ~loss_bad:0.3)
      50_000
  in
  let loss = 1. -. (float_of_int passed /. 50_000.) in
  Alcotest.(check bool)
    (Printf.sprintf "gilbert loss %.4f plausible" loss)
    true
    (loss > 0.002 && loss < 0.05)

let test_counted () =
  let h, count = Netsim.Loss_model.counted ignore in
  for i = 1 to 7 do
    h (mk_pkt ~seq:i ())
  done;
  Alcotest.(check int) "counted" 7 (count ())

(* --- Dumbbell ---------------------------------------------------------------- *)

let test_dumbbell_roundtrip_delay () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e8 ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 100) ()
  in
  Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.1;
  let fwd_arrival = ref 0. and bwd_arrival = ref 0. in
  Netsim.Dumbbell.set_dst_recv db ~flow:1 (fun pkt ->
      fwd_arrival := Engine.Sim.now sim;
      Netsim.Dumbbell.dst_send db ~flow:1 pkt);
  Netsim.Dumbbell.set_src_recv db ~flow:1 (fun _ ->
      bwd_arrival := Engine.Sim.now sim);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Dumbbell.src_send db ~flow:1 (mk_pkt ~size:100 ())));
  Engine.Sim.run sim ~until:1.;
  (* One-way base = 0.05 + serialization (100B at 1e8 = 8 microseconds). *)
  Alcotest.(check bool)
    (Printf.sprintf "one way %.4f" !fwd_arrival)
    true
    (Float.abs (!fwd_arrival -. 0.05) < 1e-3);
  Alcotest.(check bool)
    (Printf.sprintf "round trip %.4f" !bwd_arrival)
    true
    (Float.abs (!bwd_arrival -. 0.1) < 2e-3)

let test_dumbbell_duplicate_flow () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 10) ()
  in
  Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.1;
  Alcotest.check_raises "duplicate flow id"
    (Invalid_argument "Dumbbell.add_flow: flow 1 already exists") (fun () ->
      Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.1)

let test_dumbbell_rtt_too_small () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.05
      ~queue:(Netsim.Dumbbell.Droptail_q 10) ()
  in
  Alcotest.check_raises "rtt below bottleneck"
    (Invalid_argument "Dumbbell.add_flow: rtt_base smaller than bottleneck RTT")
    (fun () -> Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.05)

let test_dumbbell_unknown_flow () =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e6 ~delay:0.01
      ~queue:(Netsim.Dumbbell.Droptail_q 10) ()
  in
  Alcotest.check_raises "unknown flow"
    (Invalid_argument "Dumbbell: unknown flow 9") (fun () ->
      Netsim.Dumbbell.src_send db ~flow:9 (mk_pkt ()))

let test_dumbbell_isolation () =
  (* Two flows: packets demux to the right receivers. *)
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:1e7 ~delay:0.005
      ~queue:(Netsim.Dumbbell.Droptail_q 100) ()
  in
  Netsim.Dumbbell.add_flow db ~flow:1 ~rtt_base:0.05;
  Netsim.Dumbbell.add_flow db ~flow:2 ~rtt_base:0.05;
  let got1 = ref 0 and got2 = ref 0 in
  Netsim.Dumbbell.set_dst_recv db ~flow:1 (fun _ -> incr got1);
  Netsim.Dumbbell.set_dst_recv db ~flow:2 (fun _ -> incr got2);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 3 do
           Netsim.Dumbbell.src_send db ~flow:1 (mk_pkt ~flow:1 ~seq:i ())
         done;
         Netsim.Dumbbell.src_send db ~flow:2 (mk_pkt ~flow:2 ~seq:1 ())));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "flow 1 packets" 3 !got1;
  Alcotest.(check int) "flow 2 packets" 1 !got2

(* --- Flowmon ---------------------------------------------------------------- *)

let test_flowmon_records_data_only () =
  let now = ref 1.5 in
  let mon = Netsim.Flowmon.create (fun () -> !now) in
  let sink = Netsim.Flowmon.tap mon in
  sink (mk_pkt ~size:100 ());
  sink
    (Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq:0 ~size:40 ~now:0.
       (Netsim.Packet.Tcp_ack { ack = 1; sack = []; ece = false }));
  Alcotest.(check int) "one data packet" 1 (Netsim.Flowmon.packets mon);
  Alcotest.(check int) "bytes" 100 (Netsim.Flowmon.bytes mon);
  checkf "mean rate" 100. (Netsim.Flowmon.mean_rate mon ~t0:1. ~t1:2.)

let test_queue_sampler () =
  let sim = Engine.Sim.create () in
  let q = Netsim.Droptail.create ~limit_pkts:100 in
  let sampler = Netsim.Flowmon.Queue_sampler.start (Engine.Sim.runtime sim) ~period:0.1 ~queue:q in
  ignore
    (Engine.Sim.at sim 0.05 (fun () ->
         for i = 1 to 5 do
           ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ~seq:i ()))
         done));
  Engine.Sim.run sim ~until:1.;
  let events = Stats.Time_series.events (Netsim.Flowmon.Queue_sampler.series sampler) in
  Alcotest.(check bool) "several samples" true (Array.length events >= 9);
  let _, v = events.(2) in
  checkf "queue depth sampled" 5. v;
  Netsim.Flowmon.Queue_sampler.stop sampler;
  Engine.Sim.run sim ~until:2.;
  Alcotest.(check bool)
    "no samples after stop" true
    (Array.length (Stats.Time_series.events (Netsim.Flowmon.Queue_sampler.series sampler))
    <= Array.length events + 1)

let prop_droptail_never_exceeds_limit =
  QCheck.Test.make ~name:"droptail occupancy never exceeds limit" ~count:100
    QCheck.(pair (int_range 1 20) (list_of_size Gen.(int_range 0 100) bool))
    (fun (limit, ops) ->
      let q = Netsim.Droptail.create ~limit_pkts:limit in
      List.for_all
        (fun enq ->
          if enq then ignore (q.Netsim.Queue_disc.enqueue (mk_pkt ()))
          else ignore (q.Netsim.Queue_disc.dequeue ());
          q.Netsim.Queue_disc.len_pkts () <= limit)
        ops)

let () =
  Alcotest.run "netsim"
    [
      ( "packet",
        [
          Alcotest.test_case "unique ids" `Quick test_packet_unique_ids;
          Alcotest.test_case "per-sim id sequences" `Quick
            test_packet_ids_per_sim;
          qtest prop_packet_ids_independent;
          Alcotest.test_case "pool recycles records" `Quick
            test_packet_pool_recycles;
          Alcotest.test_case "is_data" `Quick test_packet_is_data;
          Alcotest.test_case "pp" `Quick test_packet_pp;
        ] );
      ( "droptail",
        [
          Alcotest.test_case "fifo" `Quick test_droptail_fifo;
          Alcotest.test_case "overflow" `Quick test_droptail_overflow;
          Alcotest.test_case "byte accounting" `Quick test_droptail_bytes;
          Alcotest.test_case "bad limit" `Quick test_droptail_bad_limit;
          qtest prop_droptail_never_exceeds_limit;
        ] );
      ( "red",
        [
          Alcotest.test_case "no drop below min_th" `Quick
            test_red_no_drop_below_minth;
          Alcotest.test_case "drops under load" `Quick
            test_red_drops_under_sustained_load;
          Alcotest.test_case "physical limit" `Quick test_red_physical_limit;
          Alcotest.test_case "avg tracks queue" `Quick test_red_avg_tracks_queue;
          Alcotest.test_case "idle aging" `Quick test_red_idle_aging;
          Alcotest.test_case "params validation" `Quick test_red_params_validation;
          Alcotest.test_case "gentle vs strict" `Quick test_red_gentle_vs_not;
        ] );
      ( "link",
        [
          Alcotest.test_case "serialization + delay" `Quick
            test_link_serialization_and_delay;
          Alcotest.test_case "pipelining" `Quick test_link_pipelining;
          Alcotest.test_case "drop listener" `Quick test_link_drop_listener;
          Alcotest.test_case "utilization" `Quick test_link_utilization;
        ] );
      ( "loss_model",
        [
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "periodic exact" `Quick test_periodic_exact;
          Alcotest.test_case "periodic rate" `Quick test_periodic_rate;
          Alcotest.test_case "time varying" `Quick test_time_varying;
          Alcotest.test_case "gilbert burstiness" `Quick test_gilbert_burstiness;
          Alcotest.test_case "counted" `Quick test_counted;
        ] );
      ( "dumbbell",
        [
          Alcotest.test_case "roundtrip delay" `Quick test_dumbbell_roundtrip_delay;
          Alcotest.test_case "duplicate flow" `Quick test_dumbbell_duplicate_flow;
          Alcotest.test_case "rtt too small" `Quick test_dumbbell_rtt_too_small;
          Alcotest.test_case "unknown flow" `Quick test_dumbbell_unknown_flow;
          Alcotest.test_case "flow isolation" `Quick test_dumbbell_isolation;
        ] );
      ( "flowmon",
        [
          Alcotest.test_case "records data only" `Quick
            test_flowmon_records_data_only;
          Alcotest.test_case "queue sampler" `Quick test_queue_sampler;
        ] );
    ]
