(* Tests for the fault-injection layer: link outage/flap/route-change
   mechanics, handler-level fault wrappers, endpoint hardening against
   duplicates/reordering/corruption, and the scripted-outage acceptance
   scenario (no-feedback backoff to the rate floor, then slow restart). *)

let pkt_sim = Engine.Sim.create ()

let mk_pkt ?(flow = 1) ?(seq = 0) ?(size = 1000) ?(now = 0.) () =
  Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow ~seq ~size ~now Netsim.Packet.Data

let mk_link ?(bandwidth = 8e5) ?(delay = 0.) ?(limit = 100) sim =
  Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth ~delay
    ~queue:(Netsim.Droptail.create ~limit_pkts:limit)
    ()

(* --- Link up/down mechanics ------------------------------------------------ *)

let test_send_without_dest_raises () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  Alcotest.check_raises "send before set_dest"
    (Invalid_argument
       "Link.send: destination not set (call Link.set_dest before sending)")
    (fun () -> Netsim.Link.send link (mk_pkt ()))

let test_down_link_drops_ingress () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  let received = ref 0 and dropped = ref 0 in
  Netsim.Link.set_dest link (fun _ -> incr received);
  Netsim.Link.on_drop link (fun _ -> incr dropped);
  Netsim.Link.set_up link false;
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 5 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "all dropped" 5 !dropped;
  Alcotest.(check int) "outage drops counted" 5 (Netsim.Link.outage_drops link)

let test_down_policy_drop_queued () =
  let sim = Engine.Sim.create () in
  (* 8 kb/s: 1000-byte packets serialize in 1 s, so the queue holds them. *)
  let link = mk_link ~bandwidth:8e3 sim in
  let received = ref 0 and dropped = ref 0 in
  Netsim.Link.set_dest link (fun _ -> incr received);
  Netsim.Link.on_drop link (fun _ -> incr dropped);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 4 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  (* At t=0.5, packet 1 is mid-serialization and 2-4 are queued. *)
  ignore
    (Engine.Sim.at sim 0.5 (fun () ->
         Netsim.Link.set_up link ~policy:Netsim.Link.Drop_queued false));
  Engine.Sim.run sim ~until:10.;
  Alcotest.(check int) "only the in-flight packet arrives" 1 !received;
  Alcotest.(check int) "queued packets flushed" 3 !dropped

let test_down_policy_hold_queued () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~bandwidth:8e3 sim in
  let received = ref 0 and dropped = ref 0 in
  Netsim.Link.set_dest link (fun _ -> incr received);
  Netsim.Link.on_drop link (fun _ -> incr dropped);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 4 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  ignore
    (Engine.Sim.at sim 0.5 (fun () ->
         Netsim.Link.set_up link ~policy:Netsim.Link.Hold_queued false));
  ignore (Engine.Sim.at sim 2.0 (fun () -> Netsim.Link.set_up link true));
  Engine.Sim.run sim ~until:20.;
  Alcotest.(check int) "held packets delivered after restoration" 4 !received;
  Alcotest.(check int) "nothing dropped" 0 !dropped

(* Outage drain books every flushed packet as a drop exactly once: the
   queue's counters keep the exact conservation law
   [arrivals = departures + drops + queued] through the outage, and the
   flush does not inflate departures (the pre-fix bug: draining via
   [dequeue] counted each flushed packet as a departure in the queue's
   stats while the link also counted it as an outage drop). *)
let check_outage_drain_conservation queue =
  let sim = Engine.Sim.create () in
  let link = Netsim.Link.create (Engine.Sim.runtime sim) ~bandwidth:8e3 ~delay:0. ~queue () in
  let received = ref 0 and dropped = ref 0 in
  Netsim.Link.set_dest link (fun _ -> incr received);
  Netsim.Link.on_drop link (fun _ -> incr dropped);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 6 do
           Netsim.Link.send link (mk_pkt ~seq:i ())
         done));
  (* At t=0.5 packet 1 is mid-serialization (1 s each at 8 kb/s) and
     packets 2-6 sit in the queue. *)
  ignore
    (Engine.Sim.at sim 0.5 (fun () ->
         Netsim.Link.set_up link ~policy:Netsim.Link.Drop_queued false));
  ignore (Engine.Sim.at sim 2.0 (fun () -> Netsim.Link.set_up link true));
  Engine.Sim.run sim ~until:10.;
  let q = Netsim.Link.queue link in
  let st = q.Netsim.Queue_disc.stats in
  Alcotest.(check int) "all sends counted as arrivals" 6
    st.Netsim.Queue_disc.arrivals;
  Alcotest.(check int) "only the in-flight packet departed" 1
    st.Netsim.Queue_disc.departures;
  Alcotest.(check int) "flushed packets booked as queue drops" 5
    st.Netsim.Queue_disc.drops;
  Alcotest.(check int) "flushed packets booked as outage drops" 5
    (Netsim.Link.outage_drops link);
  Alcotest.(check int) "in-flight packet delivered" 1 !received;
  Alcotest.(check int) "drop handler saw each flushed packet once" 5 !dropped;
  Alcotest.(check int) "exact balance" 0 (Netsim.Queue_disc.imbalance q);
  Alcotest.(check bool) "conserved" true (Netsim.Queue_disc.conserved q)

let test_outage_drain_conservation_droptail () =
  check_outage_drain_conservation (Netsim.Droptail.create ~limit_pkts:100)

let test_outage_drain_conservation_red () =
  (* High thresholds so RED itself drops nothing: every drop in this
     scenario must come from the outage drain. *)
  let sim_clock = ref 0. in
  let queue =
    Netsim.Red.create
      ~params:(Netsim.Red.params ~min_th:20. ~max_th:40. ~limit_pkts:50 ())
      ~now:(fun () -> !sim_clock)
      ~ptc:1.
  in
  check_outage_drain_conservation queue

(* End-to-end: the tightened queue-conservation invariant holds across a
   traced flap scenario — every link/queue snapshot the transitions emit
   balances exactly. *)
let test_flap_queue_conservation_checked () =
  let bus = Engine.Trace.create () in
  let checker = Tfrc.Invariants.create () in
  Tfrc.Invariants.attach checker bus;
  let sim = Engine.Sim.create ~trace:bus () in
  let link = mk_link ~bandwidth:8e4 ~limit:8 sim in
  Netsim.Link.set_dest link ignore;
  let cbr =
    Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:1 ~rate:1.6e5 ~pkt_size:1000
      ~transmit:(Netsim.Link.send link) ()
  in
  Traffic.Cbr.start cbr ~at:0.;
  Netsim.Faults.flapping (Engine.Sim.runtime sim) link ~start:0.5 ~stop:4.5 ~period:1.
    ~down_fraction:0.4 ();
  Engine.Sim.run sim ~until:5.;
  Netsim.Link.emit_queue_stats link;
  Alcotest.(check bool) "queue snapshots were emitted and checked" true
    (Tfrc.Invariants.n_events checker > 0);
  Alcotest.(check bool)
    (Format.asprintf "no invariant violations:@ %a" Tfrc.Invariants.report
       checker)
    true
    (Tfrc.Invariants.ok checker);
  Alcotest.(check bool) "queue counters balance after the run" true
    (Netsim.Queue_disc.conserved (Netsim.Link.queue link))

let test_set_bandwidth_changes_pacing () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~bandwidth:8e3 sim in
  let times = ref [] in
  Netsim.Link.set_dest link (fun _ -> times := Engine.Sim.now sim :: !times);
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         Netsim.Link.send link (mk_pkt ~seq:1 ());
         Netsim.Link.send link (mk_pkt ~seq:2 ())));
  (* Halve the serialization time while packet 1 is on the wire: packet 1
     still takes 1 s, packet 2 only 0.5 s. *)
  ignore
    (Engine.Sim.at sim 0.1 (fun () -> Netsim.Link.set_bandwidth link 16e3));
  Engine.Sim.run sim ~until:10.;
  match List.rev !times with
  | [ t1; t2 ] ->
      Alcotest.(check (float 1e-6)) "first at old rate" 1.0 t1;
      Alcotest.(check (float 1e-6)) "second at new rate" 1.5 t2
  | l -> Alcotest.failf "expected 2 deliveries, got %d" (List.length l)

let test_link_setters_validate () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Link.set_bandwidth: bandwidth must be positive")
    (fun () -> Netsim.Link.set_bandwidth link 0.);
  Alcotest.check_raises "bad delay"
    (Invalid_argument "Link.set_delay: negative delay") (fun () ->
      Netsim.Link.set_delay link (-1.))

(* --- Scheduled link faults ------------------------------------------------- *)

let test_outage_schedule () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  Netsim.Link.set_dest link ignore;
  Netsim.Faults.outage (Engine.Sim.runtime sim) link ~at:1. ~duration:2. ();
  let probe t expect =
    ignore
      (Engine.Sim.at sim t (fun () ->
           Alcotest.(check bool)
             (Printf.sprintf "link state at %.1f" t)
             expect (Netsim.Link.is_up link)))
  in
  probe 0.5 true;
  probe 1.5 false;
  probe 2.9 false;
  probe 3.1 true;
  Engine.Sim.run sim ~until:5.

let test_flapping_ends_up () =
  let sim = Engine.Sim.create () in
  let link = mk_link sim in
  Netsim.Link.set_dest link ignore;
  let transitions = ref 0 in
  Netsim.Link.on_state_change link (fun _ -> incr transitions);
  Netsim.Faults.flapping (Engine.Sim.runtime sim) link ~start:0. ~stop:10. ~period:2.
    ~down_fraction:0.5 ();
  Engine.Sim.run sim ~until:20.;
  Alcotest.(check bool) "up after stop" true (Netsim.Link.is_up link);
  Alcotest.(check bool)
    (Printf.sprintf "flapped several times (%d transitions)" !transitions)
    true
    (!transitions >= 8)

let test_route_change () =
  let sim = Engine.Sim.create () in
  let link = mk_link ~bandwidth:8e3 ~delay:0.1 sim in
  Netsim.Link.set_dest link ignore;
  Netsim.Faults.route_change (Engine.Sim.runtime sim) link ~at:1. ~bandwidth:16e3 ~delay:0.3 ();
  Engine.Sim.run sim ~until:2.;
  Alcotest.(check (float 1e-9)) "new bandwidth" 16e3 (Netsim.Link.bandwidth link);
  Alcotest.(check (float 1e-9)) "new delay" 0.3 (Netsim.Link.delay link)

(* --- Handler fault wrappers ------------------------------------------------ *)

let test_duplicate_wrapper () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:7 in
  let received = ref 0 in
  let handler, dups =
    Netsim.Faults.duplicate (Engine.Sim.runtime sim) rng ~p:1. (fun _ -> incr received)
  in
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 10 do
           handler (mk_pkt ~seq:i ())
         done));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "each packet delivered twice" 20 !received;
  Alcotest.(check int) "duplications counted" 10 (dups ())

let test_corrupt_wrapper () =
  let rng = Engine.Rng.create ~seed:7 in
  let corrupted = ref 0 in
  let handler, count =
    Netsim.Faults.corrupt rng ~p:1. (fun p ->
        if p.Netsim.Packet.corrupted then incr corrupted)
  in
  for i = 1 to 10 do
    handler (mk_pkt ~seq:i ())
  done;
  Alcotest.(check int) "all marked corrupted" 10 !corrupted;
  Alcotest.(check int) "corruptions counted" 10 (count ())

let test_reorder_wrapper_conserves () =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:3 in
  let seqs = ref [] in
  let handler, count =
    Netsim.Faults.reorder (Engine.Sim.runtime sim) rng ~p:0.5 ~jitter:0.05 (fun p ->
        seqs := p.Netsim.Packet.seq :: !seqs)
  in
  ignore
    (Engine.Sim.at sim 0. (fun () ->
         for i = 1 to 50 do
           ignore
             (Engine.Sim.after sim (0.001 *. float_of_int i) (fun () ->
                  handler (mk_pkt ~seq:i ())))
         done));
  Engine.Sim.run sim ~until:1.;
  Alcotest.(check int) "every packet delivered exactly once" 50
    (List.length !seqs);
  Alcotest.(check bool) "some packets jittered" true (count () > 0);
  Alcotest.(check bool) "delivery order scrambled" true
    (List.rev !seqs <> List.init 50 (fun i -> i + 1))

let test_blackout_wrapper () =
  let now = ref 0. in
  let received = ref [] in
  let handler, dropped =
    Netsim.Faults.blackout
      ~now:(fun () -> !now)
      ~windows:[ (1., 2.); (3., 4.) ]
      (fun p -> received := p.Netsim.Packet.seq :: !received)
  in
  List.iter
    (fun (t, seq) ->
      now := t;
      handler (mk_pkt ~seq ()))
    [ (0.5, 1); (1.5, 2); (2.5, 3); (3.5, 4); (4.5, 5) ];
  Alcotest.(check (list int)) "windows filtered" [ 1; 3; 5 ] (List.rev !received);
  Alcotest.(check int) "drops counted" 2 (dropped ())

(* --- Endpoint hardening ---------------------------------------------------- *)

let feed_receiver recv seqs =
  List.iteri
    (fun i seq ->
      let pkt =
        Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq ~size:1000
          ~now:(0.01 *. float_of_int i)
          (Netsim.Packet.Tfrc_data { rtt = 0.1 })
      in
      recv pkt)
    seqs

let mk_receiver () =
  let sim = Engine.Sim.create () in
  let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 () in
  Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:ignore ()

let test_receiver_discards_duplicates () =
  let r = mk_receiver () in
  let recv = Tfrc.Tfrc_receiver.recv r in
  feed_receiver recv [ 0; 1; 2; 3; 4; 2; 2; 0 ];
  Alcotest.(check int) "unique packets counted once" 5
    (Tfrc.Tfrc_receiver.packets_received r);
  Alcotest.(check int) "duplicates discarded" 3
    (Tfrc.Tfrc_receiver.duplicates_discarded r);
  Alcotest.(check int) "duplicated bytes not recorded" 5000
    (Tfrc.Tfrc_receiver.bytes_received r);
  Alcotest.(check (float 1e-9))
    "no fabricated loss" 0.
    (Tfrc.Tfrc_receiver.loss_event_rate r)

let test_receiver_tolerates_reordering () =
  let r = mk_receiver () in
  let recv = Tfrc.Tfrc_receiver.recv r in
  (* Swaps within the ndupack=3 window: candidate holes are rescued. *)
  feed_receiver recv [ 0; 2; 1; 3; 5; 4; 6; 8; 7; 9 ];
  Alcotest.(check int) "all packets counted" 10
    (Tfrc.Tfrc_receiver.packets_received r);
  Alcotest.(check (float 1e-9))
    "no fabricated loss" 0.
    (Tfrc.Tfrc_receiver.loss_event_rate r);
  Alcotest.(check int) "no losses recorded" 0
    (Tfrc.Loss_events.lost_packets (Tfrc.Tfrc_receiver.detector r))

let test_receiver_discards_corrupted () =
  let r = mk_receiver () in
  let recv = Tfrc.Tfrc_receiver.recv r in
  feed_receiver recv [ 0; 1 ];
  let bad =
    Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~flow:1 ~seq:2 ~size:1000 ~now:0.03
      (Netsim.Packet.Tfrc_data { rtt = 0.1 })
  in
  bad.Netsim.Packet.corrupted <- true;
  recv bad;
  feed_receiver recv [ 3; 4; 5; 6 ];
  Alcotest.(check int) "corrupted discarded" 1
    (Tfrc.Tfrc_receiver.corrupted_discarded r);
  Alcotest.(check int) "corrupted not counted as received" 6
    (Tfrc.Tfrc_receiver.packets_received r);
  (* The corrupted packet left a confirmed sequence hole: charged as loss. *)
  Alcotest.(check int) "hole charged as loss" 1
    (Tfrc.Loss_events.lost_packets (Tfrc.Tfrc_receiver.detector r))

(* --- Config validation ----------------------------------------------------- *)

let test_config_validation () =
  let check_raises msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" msg
  in
  check_raises "min_rate 0" (fun () ->
      Tfrc.Tfrc_config.default ~min_rate:0. ());
  check_raises "negative min_rate" (fun () ->
      Tfrc.Tfrc_config.default ~min_rate:(-5.) ());
  check_raises "negative initial_rtt" (fun () ->
      Tfrc.Tfrc_config.default ~initial_rtt:(-0.1) ());
  check_raises "zero packet_size" (fun () ->
      Tfrc.Tfrc_config.default ~packet_size:0 ());
  check_raises "bad rtt_gain" (fun () ->
      Tfrc.Tfrc_config.default ~rtt_gain:1.5 ());
  check_raises "bad t_rto_factor" (fun () ->
      Tfrc.Tfrc_config.default ~t_rto_factor:0. ());
  check_raises "bad t_mbi" (fun () -> Tfrc.Tfrc_config.default ~t_mbi:0. ());
  check_raises "record update" (fun () ->
      Tfrc.Tfrc_config.validate
        { (Tfrc.Tfrc_config.default ()) with ndupack = 0 });
  (* A valid config passes through unchanged. *)
  let c = Tfrc.Tfrc_config.default ~min_rate:123. () in
  Alcotest.(check (float 1e-9)) "explicit min_rate kept" 123.
    c.Tfrc.Tfrc_config.min_rate

(* --- Acceptance: 2 s outage -> backoff to floor -> slow restart ------------ *)

let test_outage_backoff_and_slow_restart () =
  let at = 15. and duration = 2. in
  let report, pace =
    Exp.Resilience.tfrc_outage_case ~seed:42 ~at ~duration ()
  in
  let fault_end = at +. duration in
  let floor = 8000. (* Resilience's configured min_rate *) in
  Alcotest.(check bool)
    (Printf.sprintf "several no-feedback expirations (%d)" report.nofb_expiries)
    true
    (report.Exp.Resilience.nofb_expiries >= 5);
  Alcotest.(check bool)
    (Printf.sprintf "backed off to the floor (min %.0f B/s)"
       report.min_send_during)
    true
    (report.min_send_during <= floor *. 1.01);
  Alcotest.(check bool) "never below the floor" true report.floor_ok;
  (* Slow restart: the first rate restored by post-outage feedback must be
     far below the pre-outage rate — no instantaneous jump back. *)
  let pre_pace =
    Array.fold_left
      (fun acc (t, r) -> if t < at then r else acc)
      0. pace
  in
  let first_restored =
    let rec scan i =
      if i >= Array.length pace then None
      else
        let t, r = pace.(i) in
        if t > fault_end && r > floor *. 1.5 then Some r else scan (i + 1)
    in
    scan 0
  in
  (match first_restored with
  | None -> Alcotest.fail "rate never restored after the outage"
  | Some r ->
      Alcotest.(check bool)
        (Printf.sprintf "slow restart: %.0f B/s vs pre-outage %.0f B/s" r
           pre_pace)
        true
        (r <= 0.25 *. pre_pace));
  (* ... and the flow does recover. *)
  Alcotest.(check bool)
    (Printf.sprintf "recovered in %.1f s" report.recovery_time)
    true
    ((not (Float.is_nan report.recovery_time)) && report.recovery_time <= 5.);
  Alcotest.(check bool)
    (Printf.sprintf "no overshoot (%.2f)" report.overshoot)
    true (report.overshoot <= 1.3);
  Alcotest.(check bool)
    (Printf.sprintf "post rate %.0f vs pre %.0f" report.post_rate
       report.pre_rate)
    true
    (report.post_rate >= 0.7 *. report.pre_rate)

(* --- Matrix sanity and JSON ------------------------------------------------ *)

let test_matrix_sane () =
  let reports = Exp.Resilience.matrix ~seed:42 ~full:false in
  Alcotest.(check int) "5 cases x 2 protocols" 10 (List.length reports);
  List.iter
    (fun (r : Exp.Resilience.report) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s floor" r.case r.proto)
        true r.floor_ok;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s pre_rate positive" r.case r.proto)
        true (r.pre_rate > 0.);
      if r.proto = "tfrc" && (r.case = "outage-2s" || r.case = "fb-blackout-2s")
      then
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s saw expirations" r.case r.proto)
          true
          (r.nofb_expiries > 0))
    reports

let test_json_line () =
  let line = Exp.Resilience.json_line ~seed:1 in
  let has sub =
    let n = String.length sub in
    let rec scan i =
      i + n <= String.length line && (String.sub line i n = sub || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "tagged" true (has "\"bench\":\"resilience\"");
  Alcotest.(check bool) "has outage case" true (has "\"case\":\"outage-2s\"");
  Alcotest.(check bool) "has both protocols" true
    (has "\"proto\":\"tfrc\"" && has "\"proto\":\"tcp-sack\"");
  Alcotest.(check bool) "single line" true
    (not (String.contains line '\n'))

let () =
  Alcotest.run "faults"
    [
      ( "link",
        [
          Alcotest.test_case "send without dest raises" `Quick
            test_send_without_dest_raises;
          Alcotest.test_case "down link drops ingress" `Quick
            test_down_link_drops_ingress;
          Alcotest.test_case "drop-queued policy" `Quick
            test_down_policy_drop_queued;
          Alcotest.test_case "hold-queued policy" `Quick
            test_down_policy_hold_queued;
          Alcotest.test_case "drain conservation (droptail)" `Quick
            test_outage_drain_conservation_droptail;
          Alcotest.test_case "drain conservation (red)" `Quick
            test_outage_drain_conservation_red;
          Alcotest.test_case "flap conservation checked" `Quick
            test_flap_queue_conservation_checked;
          Alcotest.test_case "set_bandwidth repaces" `Quick
            test_set_bandwidth_changes_pacing;
          Alcotest.test_case "setter validation" `Quick
            test_link_setters_validate;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "outage window" `Quick test_outage_schedule;
          Alcotest.test_case "flapping ends up" `Quick test_flapping_ends_up;
          Alcotest.test_case "route change" `Quick test_route_change;
        ] );
      ( "wrappers",
        [
          Alcotest.test_case "duplicate" `Quick test_duplicate_wrapper;
          Alcotest.test_case "corrupt" `Quick test_corrupt_wrapper;
          Alcotest.test_case "reorder conserves" `Quick
            test_reorder_wrapper_conserves;
          Alcotest.test_case "blackout windows" `Quick test_blackout_wrapper;
        ] );
      ( "endpoints",
        [
          Alcotest.test_case "receiver discards duplicates" `Quick
            test_receiver_discards_duplicates;
          Alcotest.test_case "receiver tolerates reordering" `Quick
            test_receiver_tolerates_reordering;
          Alcotest.test_case "receiver discards corrupted" `Quick
            test_receiver_discards_corrupted;
        ] );
      ("config", [ Alcotest.test_case "validation" `Quick test_config_validation ]);
      ( "acceptance",
        [
          Alcotest.test_case "outage backoff and slow restart" `Quick
            test_outage_backoff_and_slow_restart;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "matrix sane" `Quick test_matrix_sane;
          Alcotest.test_case "json line" `Quick test_json_line;
        ] );
    ]
