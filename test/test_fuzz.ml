(* Tests for the scenario fuzzer: sexp codec, generator determinism,
   shrinking, oracles, repro bundles, driver determinism across -j, and
   the hostile-stream property test for the TFRC receiver. *)

let qtest t = QCheck_alcotest.to_alcotest t

(* --- Sexp ------------------------------------------------------------------ *)

let sexp_round_trip v =
  Alcotest.(check bool)
    (Fuzz.Sexp.to_string v)
    true
    (Fuzz.Sexp.of_string (Fuzz.Sexp.to_string v) = v)

let test_sexp_round_trip () =
  let open Fuzz.Sexp in
  sexp_round_trip (Atom "plain");
  sexp_round_trip (Atom "");
  sexp_round_trip (Atom "with space");
  sexp_round_trip (Atom "quote\"and\\back");
  sexp_round_trip (Atom "parens()");
  sexp_round_trip (Atom "ctrl\x01\n\tbytes\x7f");
  sexp_round_trip (Atom "; not a comment");
  sexp_round_trip (List []);
  sexp_round_trip
    (List [ Atom "a"; List [ Atom "b"; Atom "c d" ]; List []; Atom "e" ]);
  (* hum rendering parses back to the same value *)
  let v = List [ Atom "x"; List [ Atom "y"; Atom "1" ]; Atom "z w" ] in
  Alcotest.(check bool) "hum round-trips" true (of_string (to_string_hum v) = v)

let test_sexp_errors () =
  let bad s =
    match Fuzz.Sexp.of_string s with
    | exception Fuzz.Sexp.Parse_error _ -> ()
    | v ->
        Alcotest.failf "expected parse error for %S, got %s" s
          (Fuzz.Sexp.to_string v)
  in
  bad "(unclosed";
  bad "extra)";
  bad "\"unterminated";
  bad "two things";
  bad ""

(* --- Scenario generation and codec ----------------------------------------- *)

let gen ~seed ~id = Fuzz.Scenario.generate ~id (Engine.Rng.for_key ~seed id)

let test_generate_deterministic () =
  let a = gen ~seed:7 ~id:"fuzz/0001" and b = gen ~seed:7 ~id:"fuzz/0001" in
  Alcotest.(check bool) "same (seed, id) -> same scenario" true (a = b);
  let c = gen ~seed:7 ~id:"fuzz/0002" in
  Alcotest.(check bool) "different id -> different scenario" true (a <> c)

let prop_scenario_codec_round_trip =
  QCheck.Test.make ~name:"scenario sexp codec round-trips exactly" ~count:100
    QCheck.(pair (int_range 0 10_000) small_nat)
    (fun (seed, i) ->
      let sc = gen ~seed ~id:(Printf.sprintf "fuzz/%04d" i) in
      Fuzz.Scenario.of_sexp (Fuzz.Sexp.of_string
        (Fuzz.Sexp.to_string (Fuzz.Scenario.to_sexp sc))) = sc)

(* Every generated scenario and every shrink candidate must be buildable:
   RTT floors hold, cross-flow hops exist, at least one flow remains. *)
let well_formed (sc : Fuzz.Scenario.t) =
  let hops = Fuzz.Scenario.hops sc in
  sc.flows <> []
  && List.for_all
       (fun (f : Fuzz.Scenario.flow) ->
         match f.hop with
         | Some h ->
             h >= 1 && h <= hops && f.rtt_base >= 2. *. sc.delay
         | None ->
             f.rtt_base
             >= Fuzz.Scenario.min_rtt sc.topology ~delay:sc.delay -. 1e-12)
       sc.flows
  && (match sc.topology with
     | Fuzz.Scenario.Parking_lot h -> h >= 2
     | Fuzz.Scenario.Graph { nodes; extra } -> nodes >= 3 && extra >= 0
     | Fuzz.Scenario.Path | Fuzz.Scenario.Dumbbell -> true)
  && sc.duration > 0.

let prop_shrink_candidates_well_formed =
  QCheck.Test.make ~name:"shrink candidates stay well-formed" ~count:100
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let sc = gen ~seed ~id:"fuzz/0000" in
      well_formed sc
      && List.for_all well_formed (Fuzz.Scenario.shrink_candidates sc))

(* --- Oracle and mutation plant --------------------------------------------- *)

(* A hand-built scenario guaranteed to produce outage drops: a TFRC flow
   in steady state when the only link goes down mid-run. *)
let outage_scenario =
  {
    Fuzz.Scenario.id = "test/outage";
    sim_seed = 11;
    topology = Fuzz.Scenario.Path;
    bandwidth = 1e6;
    delay = 0.005;
    queue = Fuzz.Scenario.Droptail 20;
    flows =
      [ { Fuzz.Scenario.proto = Tfrc; rtt_base = 0.05; start = 0.; hop = None } ];
    faults = [ Fuzz.Scenario.Outage { at = 2.; duration = 1. } ];
    duration = 6.;
  }

let failed sc ~mutate =
  Fuzz.Oracle.failed_oracles (Fuzz.Oracle.run ~mutate sc)

let test_oracle_clean_run () =
  Alcotest.(check (list string)) "clean without mutation" []
    (failed outage_scenario ~mutate:false)

let test_mutate_detected () =
  Alcotest.(check (list string)) "plant caught by queue conservation"
    [ "queue-conservation" ]
    (failed outage_scenario ~mutate:true)

let test_mutate_inert_without_outage () =
  (* No outage drops -> the plant has nothing to corrupt -> clean run. *)
  let sc = { outage_scenario with Fuzz.Scenario.faults = [] } in
  Alcotest.(check (list string)) "no faults, no plant" [] (failed sc ~mutate:true)

let test_shrink_minimizes () =
  (* Decorate the failing scenario with removable structure; the shrinker
     must strip it and keep the failure. *)
  let sc =
    {
      outage_scenario with
      Fuzz.Scenario.id = "test/shrink";
      topology = Fuzz.Scenario.Dumbbell;
      flows =
        [
          { Fuzz.Scenario.proto = Tfrc; rtt_base = 0.05; start = 0.; hop = None };
          { Fuzz.Scenario.proto = Tcp; rtt_base = 0.06; start = 0.5; hop = None };
        ];
      faults =
        [
          Fuzz.Scenario.Corrupt { p = 0.01 };
          Fuzz.Scenario.Outage { at = 2.; duration = 1. };
        ];
      duration = 12.;
    }
  in
  Alcotest.(check (list string)) "decorated scenario still fails"
    [ "queue-conservation" ] (failed sc ~mutate:true);
  let r =
    Fuzz.Shrink.minimize ~mutate:true ~oracle:"queue-conservation" sc
  in
  Alcotest.(check bool) "adopted at least one simplification" true (r.steps > 0);
  Alcotest.(check bool) "minimal scenario still fails the same oracle" true
    (List.mem "queue-conservation" (Fuzz.Oracle.failed_oracles r.outcome));
  Alcotest.(check int) "second flow removed" 1
    (List.length r.scenario.Fuzz.Scenario.flows);
  Alcotest.(check int) "decoration fault removed" 1
    (List.length r.scenario.Fuzz.Scenario.faults);
  Alcotest.(check bool) "topology simplified to path" true
    (r.scenario.Fuzz.Scenario.topology = Fuzz.Scenario.Path);
  (* Fixpoint: no candidate of the minimum still fails. *)
  List.iter
    (fun cand ->
      Alcotest.(check bool) "candidate of the minimum passes" false
        (List.mem "queue-conservation" (failed cand ~mutate:true)))
    (Fuzz.Scenario.shrink_candidates r.scenario)

(* --- Bundles ---------------------------------------------------------------- *)

let temp_dir prefix =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  Exp.Checkpoint.ensure_dir d;
  d

let test_bundle_round_trip () =
  let outcome = Fuzz.Oracle.run ~mutate:true outage_scenario in
  let b =
    Fuzz.Bundle.make ~case_key:"fuzz/0042" ~fuzz_seed:9 ~mutate:true
      ~original:{ outage_scenario with Fuzz.Scenario.duration = 12. }
      ~shrink_steps:2 outage_scenario outcome
  in
  let dir = temp_dir "tfrc-bundle" in
  let path = Fuzz.Bundle.save ~dir b in
  Alcotest.(check string) "filename flattens the key"
    (Filename.concat dir "fuzz-0042.repro") path;
  let b' = Fuzz.Bundle.load path in
  Alcotest.(check bool) "bundle round-trips" true (b = b');
  Sys.remove path

let test_bundle_load_errors () =
  (match Fuzz.Bundle.load "/nonexistent/bundle.repro" with
  | exception Failure msg ->
      Alcotest.(check bool) "message names the path" true
        (Astring.String.is_infix ~affix:"/nonexistent/bundle.repro" msg)
  | _ -> Alcotest.fail "expected Failure on missing bundle");
  let dir = temp_dir "tfrc-bundle-bad" in
  let path = Filename.concat dir "garbage.repro" in
  let oc = open_out path in
  output_string oc "(not a bundle)";
  close_out oc;
  (match Fuzz.Bundle.load path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on malformed bundle");
  Sys.remove path

(* --- Checkpoint dir handling (satellite) ------------------------------------ *)

let test_ensure_dir () =
  let root = temp_dir "tfrc-ensure" in
  let nested = Filename.concat root "a/b/c" in
  Exp.Checkpoint.ensure_dir nested;
  Alcotest.(check bool) "nested parents created" true (Sys.is_directory nested);
  Exp.Checkpoint.ensure_dir nested (* idempotent *);
  let file = Filename.concat root "plain-file" in
  let oc = open_out file in
  close_out oc;
  (match Exp.Checkpoint.ensure_dir (Filename.concat file "x") with
  | exception Failure msg ->
      Alcotest.(check bool) "clear message on file-in-the-way" true
        (Astring.String.is_infix ~affix:"cannot create directory" msg)
  | () -> Alcotest.fail "expected Failure when a path component is a file");
  match Exp.Checkpoint.ensure_dir file with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected Failure when the dir itself is a file"

(* --- Driver ----------------------------------------------------------------- *)

let run_driver ~j ~mutate ~shrink ~artifacts =
  let buf = Buffer.create 1024 in
  let out = Format.formatter_of_buffer buf in
  let summary =
    Fuzz.Driver.run ~out
      {
        Fuzz.Driver.cases = 6;
        seed = 3;
        j;
        shrink;
        mutate;
        artifacts;
        max_shrink_runs = 60;
      }
  in
  Format.pp_print_flush out ();
  (summary, Buffer.contents buf)

let test_driver_parallel_identical () =
  let s1, out1 = run_driver ~j:1 ~mutate:false ~shrink:false ~artifacts:None in
  let s2, out2 = run_driver ~j:2 ~mutate:false ~shrink:false ~artifacts:None in
  Alcotest.(check string) "-j 2 output byte-identical to -j 1" out1 out2;
  Alcotest.(check bool) "summaries equal" true (s1 = s2);
  Alcotest.(check int) "all six cases ran" 6 s1.Fuzz.Driver.total

let test_driver_mutate_self_test () =
  (* Enough cases that at least one draws an effective outage/flap; the
     plant must be the only thing the fuzzer finds. *)
  let dir = temp_dir "tfrc-driver-art" in
  let rec find_failing cases =
    if cases > 96 then Alcotest.fail "no case tripped the plant within 96"
    else
      let buf = Buffer.create 1024 in
      let out = Format.formatter_of_buffer buf in
      let s =
        Fuzz.Driver.run ~out
          {
            Fuzz.Driver.cases;
            seed = 3;
            j = 1;
            shrink = true;
            mutate = true;
            artifacts = Some dir;
            max_shrink_runs = 60;
          }
      in
      Format.pp_print_flush out ();
      if s.Fuzz.Driver.failed = 0 then find_failing (cases * 2) else s
  in
  let s = find_failing 12 in
  Alcotest.(check bool) "self-test accepted" true (Fuzz.Driver.mutate_ok s);
  let f = List.hd s.Fuzz.Driver.failures in
  Alcotest.(check (list string)) "failure is the planted bug"
    [ "queue-conservation" ] f.Fuzz.Driver.oracles;
  (* The emitted bundle replays to the recorded verdict. *)
  match f.Fuzz.Driver.bundle_path with
  | None -> Alcotest.fail "expected a bundle path"
  | Some path ->
      let b = Fuzz.Bundle.load path in
      let out = Format.formatter_of_buffer (Buffer.create 256) in
      Alcotest.(check bool) "bundle replays" true (Fuzz.Driver.repro ~out b);
      Sys.remove path

(* --- TFRC receiver vs hostile streams (satellite property test) ------------- *)

(* Arbitrary fuzz-shaped packet streams — reordered and duplicated seqs,
   corrupted payloads, stale feedback echoes, foreign payload kinds —
   must never crash the receiver or push its loss-event rate out of
   [0, 1]. Mirrors what the data-path fault wrappers can produce. *)
let prop_receiver_survives_hostile_streams =
  QCheck.Test.make ~name:"TFRC receiver survives hostile packet streams"
    ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let sim = Engine.Sim.create () in
      let rng = Engine.Rng.create ~seed in
      let config = Tfrc.Tfrc_config.default () in
      let flow = 7 in
      let receiver =
        Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow ~transmit:ignore ()
      in
      let recv = Tfrc.Tfrc_receiver.recv receiver in
      let n = 200 + Engine.Rng.int rng 300 in
      let t = ref 0.001 in
      for _ = 1 to n do
        t := !t +. Engine.Rng.float rng 0.01;
        ignore
          (Engine.Sim.at sim !t (fun () ->
               let now = Engine.Sim.now sim in
               (* Random walk over a small seq window: duplicates and
                  reorderings are frequent by construction. *)
               let seq = Engine.Rng.int rng 150 in
               let payload =
                 match Engine.Rng.int rng 10 with
                 | 0 -> Netsim.Packet.Data
                 | 1 ->
                     Netsim.Packet.Tcp_ack
                       {
                         ack = Engine.Rng.int rng 100;
                         sack = [ (3, 5) ];
                         ece = Engine.Rng.bool rng ~p:0.5;
                       }
                 | 2 ->
                     (* A stale feedback echo bounced back at the
                        receiver, with adversarial field values. *)
                     Netsim.Packet.Tfrc_feedback
                       {
                         p = Engine.Rng.uniform rng (-0.5) 1.5;
                         recv_rate = Engine.Rng.uniform rng (-1e6) 1e7;
                         ts_echo = Engine.Rng.uniform rng (-1.) 100.;
                         ts_delay = Engine.Rng.uniform rng (-1.) 1.;
                       }
                 | _ ->
                     Netsim.Packet.Tfrc_data
                       { rtt = Engine.Rng.uniform rng 0. 0.5 }
               in
               let pkt =
                 Netsim.Packet.make (Engine.Sim.runtime sim) ~flow ~seq ~size:1000 ~now payload
               in
               if Engine.Rng.bool rng ~p:0.15 then
                 pkt.Netsim.Packet.corrupted <- true;
               recv pkt))
      done;
      Engine.Sim.run sim ~until:(!t +. 1.);
      let p = Tfrc.Tfrc_receiver.loss_event_rate receiver in
      (not (Float.is_nan p)) && p >= 0. && p <= 1.)

let () =
  Alcotest.run "fuzz"
    [
      ( "sexp",
        [
          Alcotest.test_case "round-trip" `Quick test_sexp_round_trip;
          Alcotest.test_case "parse errors" `Quick test_sexp_errors;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "deterministic generation" `Quick
            test_generate_deterministic;
          qtest prop_scenario_codec_round_trip;
          qtest prop_shrink_candidates_well_formed;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean run" `Quick test_oracle_clean_run;
          Alcotest.test_case "mutation detected" `Quick test_mutate_detected;
          Alcotest.test_case "mutation inert without outage" `Quick
            test_mutate_inert_without_outage;
          Alcotest.test_case "shrink minimizes" `Quick test_shrink_minimizes;
        ] );
      ( "bundle",
        [
          Alcotest.test_case "round-trip" `Quick test_bundle_round_trip;
          Alcotest.test_case "load errors" `Quick test_bundle_load_errors;
        ] );
      ( "checkpoint-dirs",
        [ Alcotest.test_case "ensure_dir" `Quick test_ensure_dir ] );
      ( "driver",
        [
          Alcotest.test_case "parallel output identical" `Quick
            test_driver_parallel_identical;
          Alcotest.test_case "mutate self-test end-to-end" `Slow
            test_driver_mutate_self_test;
        ] );
      ( "receiver-hostile",
        [ qtest prop_receiver_survives_hostile_streams ] );
    ]
