(* Tests for the Section 5 comparison protocols: the echo sink, RAP and
   TFRCP. *)

(* Direct path: protocol sender <-> echo sink, injectable loss. *)
let wire_rap ?(rtt = 0.1) ~drop () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let sink_cell = ref None and sender_cell = ref None in
  let to_sink pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             incr delivered;
             match !sink_cell with
             | Some s -> Baselines.Echo_sink.recv s pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim (rtt /. 2.) (fun () ->
           match !sender_cell with
           | Some s -> Baselines.Rap.recv s pkt
           | None -> ()))
  in
  let sender = Baselines.Rap.create (Engine.Sim.runtime sim) ~initial_rtt:rtt ~flow:1 ~transmit:to_sink () in
  sender_cell := Some sender;
  let sink = Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow:1 ~transmit:to_sender () in
  sink_cell := Some sink;
  (sim, sender, delivered)

let wire_tfrcp ?(rtt = 0.1) ~drop () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let sink_cell = ref None and sender_cell = ref None in
  let to_sink pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             incr delivered;
             match !sink_cell with
             | Some s -> Baselines.Echo_sink.recv s pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim (rtt /. 2.) (fun () ->
           match !sender_cell with
           | Some s -> Baselines.Tfrcp.recv s pkt
           | None -> ()))
  in
  let sender =
    Baselines.Tfrcp.create (Engine.Sim.runtime sim) ~initial_rtt:rtt ~flow:1 ~transmit:to_sink ()
  in
  sender_cell := Some sender;
  let sink = Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow:1 ~transmit:to_sender () in
  sink_cell := Some sink;
  (sim, sender, delivered)

(* --- Echo_sink ------------------------------------------------------------ *)

let test_echo_sink_echoes_each_packet () =
  let sim = Engine.Sim.create () in
  let echoes = ref [] in
  let sink =
    Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow:1
      ~transmit:(fun pkt ->
        match pkt.Netsim.Packet.payload with
        | Netsim.Packet.Tcp_ack { ack; _ } -> echoes := ack :: !echoes
        | _ -> ())
      ()
  in
  let recv = Baselines.Echo_sink.recv sink in
  List.iter
    (fun seq ->
      recv (Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:1 ~seq ~size:1000 ~now:0. Netsim.Packet.Data))
    [ 0; 1; 3 ];
  Alcotest.(check (list int)) "echoes seq+1, per packet" [ 1; 2; 4 ]
    (List.rev !echoes);
  Alcotest.(check int) "count" 3 (Baselines.Echo_sink.packets_received sink)

let test_echo_sink_ignores_acks () =
  let sim = Engine.Sim.create () in
  let echoes = ref 0 in
  let sink =
    Baselines.Echo_sink.create (Engine.Sim.runtime sim) ~flow:1 ~transmit:(fun _ -> incr echoes) ()
  in
  Baselines.Echo_sink.recv sink
    (Netsim.Packet.make (Engine.Sim.runtime sim) ~flow:1 ~seq:0 ~size:40 ~now:0.
       (Netsim.Packet.Tcp_ack { ack = 1; sack = []; ece = false }));
  Alcotest.(check int) "no echo for an ack" 0 !echoes

(* --- RAP -------------------------------------------------------------------- *)

let test_rap_additive_increase () =
  let sim, rap, _ = wire_rap ~drop:(fun _ -> false) () in
  Baselines.Rap.start rap ~at:0.;
  Engine.Sim.run sim ~until:1.;
  let r1 = Baselines.Rap.rate rap in
  Engine.Sim.run sim ~until:2.;
  let r2 = Baselines.Rap.rate rap in
  Alcotest.(check bool)
    (Printf.sprintf "rate grows without loss: %.0f -> %.0f" r1 r2)
    true (r2 > r1);
  Alcotest.(check int) "no loss events" 0 (Baselines.Rap.loss_events rap)

let test_rap_halves_on_gap () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count = 50
  in
  let sim, rap, _ = wire_rap ~drop () in
  Baselines.Rap.start rap ~at:0.;
  Engine.Sim.run sim ~until:10.;
  Alcotest.(check bool)
    (Printf.sprintf "loss events %d >= 1" (Baselines.Rap.loss_events rap))
    true
    (Baselines.Rap.loss_events rap >= 1)

let test_rap_aimd_equilibrium () =
  (* Periodic loss: AIMD settles; rate should stay within sane bounds. *)
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let sim, rap, delivered = wire_rap ~drop () in
  Baselines.Rap.start rap ~at:0.;
  Engine.Sim.run sim ~until:60.;
  Alcotest.(check bool)
    (Printf.sprintf "delivered %d" !delivered)
    true
    (!delivered > 2000);
  Alcotest.(check bool) "several aimd cycles" true
    (Baselines.Rap.loss_events rap > 5)

(* --- TFRCP ------------------------------------------------------------------- *)

let test_tfrcp_rate_follows_equation () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 50 = 0
  in
  let sim, tp, _ = wire_tfrcp ~drop () in
  Baselines.Tfrcp.start tp ~at:0.;
  Engine.Sim.run sim ~until:60.;
  let p = Baselines.Tfrcp.loss_estimate tp in
  Alcotest.(check bool)
    (Printf.sprintf "loss estimate %.3f ~ 0.02" p)
    true
    (p > 0.005 && p < 0.06);
  let rate = Baselines.Tfrcp.rate tp in
  let expect =
    Tfrc.Response_function.rate Tfrc.Response_function.Pftk ~s:1000 ~r:0.1
      ~t_rto:0.4 ~p:0.02
  in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f within 3x of equation %.0f" rate expect)
    true
    (rate > expect /. 3. && rate < expect *. 3.)

let test_tfrcp_doubles_when_loss_free () =
  let sim, tp, _ = wire_tfrcp ~drop:(fun _ -> false) () in
  Baselines.Tfrcp.start tp ~at:0.;
  let r0 = Baselines.Tfrcp.rate tp in
  Engine.Sim.run sim ~until:3.;
  Alcotest.(check bool) "rate grew" true (Baselines.Tfrcp.rate tp > 4. *. r0)

let test_tfrcp_stop () =
  let sim, tp, _ = wire_tfrcp ~drop:(fun _ -> false) () in
  Baselines.Tfrcp.start tp ~at:0.;
  Engine.Sim.run sim ~until:1.;
  Baselines.Tfrcp.stop tp;
  let sent = Baselines.Tfrcp.packets_sent tp in
  Engine.Sim.run sim ~until:3.;
  Alcotest.(check int) "halted" sent (Baselines.Tfrcp.packets_sent tp)

(* TFRC's responsiveness advantage over TFRCP (the paper's Section 5
   claim): after a step increase in loss, TFRC reacts within a few RTTs,
   TFRCP only at its next epoch or later. *)
let test_tfrc_reacts_faster_than_tfrcp () =
  (* Common loss pattern: none until t=10, then 10% periodic. *)
  let run_tfrcp () =
    let phase sim = Engine.Sim.now sim >= 10. in
    let sim_cell = ref None in
    let count = ref 0 in
    let drop _ =
      match !sim_cell with
      | Some sim when phase sim ->
          incr count;
          !count mod 10 = 0
      | _ -> false
    in
    let sim, tp, _ = wire_tfrcp ~drop () in
    sim_cell := Some sim;
    Baselines.Tfrcp.start tp ~at:0.;
    Engine.Sim.run sim ~until:10.;
    let before = Baselines.Tfrcp.rate tp in
    Engine.Sim.run sim ~until:12.;
    Baselines.Tfrcp.rate tp /. before
  in
  let ratio_tfrcp = run_tfrcp () in
  Alcotest.(check bool)
    (Printf.sprintf "tfrcp cut to %.3f of pre-loss rate in 2 s" ratio_tfrcp)
    true
    (ratio_tfrcp < 0.5)

let () =
  Alcotest.run "baselines"
    [
      ( "echo_sink",
        [
          Alcotest.test_case "echoes each packet" `Quick
            test_echo_sink_echoes_each_packet;
          Alcotest.test_case "ignores acks" `Quick test_echo_sink_ignores_acks;
        ] );
      ( "rap",
        [
          Alcotest.test_case "additive increase" `Quick test_rap_additive_increase;
          Alcotest.test_case "halves on gap" `Quick test_rap_halves_on_gap;
          Alcotest.test_case "aimd equilibrium" `Quick test_rap_aimd_equilibrium;
        ] );
      ( "tfrcp",
        [
          Alcotest.test_case "follows equation" `Quick
            test_tfrcp_rate_follows_equation;
          Alcotest.test_case "doubles when loss-free" `Quick
            test_tfrcp_doubles_when_loss_free;
          Alcotest.test_case "stop" `Quick test_tfrcp_stop;
          Alcotest.test_case "reacts to loss step" `Quick
            test_tfrc_reacts_faster_than_tfrcp;
        ] );
    ]
