(* Tests for TEAR, generalized AIMD(a,b) TCP, and the self-similarity
   estimator. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- TEAR ----------------------------------------------------------------- *)

let wire_tear ?(rtt = 0.1) ~drop () =
  let sim = Engine.Sim.create () in
  let delivered = ref 0 in
  let recv_cell = ref None and send_cell = ref None in
  let to_receiver pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim (rtt /. 2.) (fun () ->
             incr delivered;
             match !recv_cell with
             | Some r -> Baselines.Tear.Receiver.recv r pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim (rtt /. 2.) (fun () ->
           match !send_cell with
           | Some s -> Baselines.Tear.Sender.recv s pkt
           | None -> ()))
  in
  let sender = Baselines.Tear.Sender.create (Engine.Sim.runtime sim) ~flow:1 ~transmit:to_receiver () in
  send_cell := Some sender;
  let receiver = Baselines.Tear.Receiver.create (Engine.Sim.runtime sim) ~flow:1 ~transmit:to_sender () in
  recv_cell := Some receiver;
  (sim, sender, receiver, delivered)

let test_tear_grows_without_loss () =
  let sim, sender, receiver, _ = wire_tear ~drop:(fun _ -> false) () in
  Baselines.Tear.Sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:3.;
  Alcotest.(check bool) "cwnd grew" true (Baselines.Tear.Receiver.cwnd receiver > 10.);
  Alcotest.(check bool) "rate followed" true (Baselines.Tear.Sender.rate sender > 20_000.)

let test_tear_halves_emulated_window_on_loss () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 50 = 0
  in
  let sim, sender, receiver, _ = wire_tear ~drop () in
  Baselines.Tear.Sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:30.;
  Alcotest.(check bool) "losses seen" true (Baselines.Tear.Receiver.losses receiver > 5);
  (* With 2% loss the emulated window oscillates around
     sqrt(1.5/0.02) ~ 8.7; allow a broad band. *)
  let cwnd = Baselines.Tear.Receiver.cwnd receiver in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd %.1f in AIMD band" cwnd)
    true
    (cwnd > 2. && cwnd < 40.)

let test_tear_steady_rate_reasonable () =
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let sim, sender, _, delivered = wire_tear ~drop () in
  Baselines.Tear.Sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:60.;
  (* TCP-equation ballpark at p=0.01, rtt ~0.1: ~12 pkts/RTT = 120 pkt/s.
     TEAR should land within a factor ~2.5. *)
  let rate = float_of_int !delivered /. 60. in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f pkt/s near TCP-friendly band" rate)
    true
    (rate > 120. /. 2.5 && rate < 120. *. 2.5)

let test_tear_sender_stop () =
  let sim, sender, _, _ = wire_tear ~drop:(fun _ -> false) () in
  Baselines.Tear.Sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:1.;
  Baselines.Tear.Sender.stop sender;
  let sent = Baselines.Tear.Sender.packets_sent sender in
  Engine.Sim.run sim ~until:3.;
  Alcotest.(check int) "halted" sent (Baselines.Tear.Sender.packets_sent sender)

(* --- AIMD(a,b) --------------------------------------------------------------- *)

let test_tcp_compatible_aimd_formula () =
  checkf ~eps:1e-9 "b=1/2 -> a=1" 1. (Tcpsim.Tcp_common.tcp_compatible_aimd ~md:0.5);
  checkf ~eps:1e-6 "b=7/8 -> a~0.3125" 0.3125
    (Tcpsim.Tcp_common.tcp_compatible_aimd ~md:(7. /. 8.));
  Alcotest.check_raises "md out of range"
    (Invalid_argument "tcp_compatible_aimd: md in (0,1)") (fun () ->
      ignore (Tcpsim.Tcp_common.tcp_compatible_aimd ~md:1.))

let test_aimd_smooth_profile () =
  let c = Tcpsim.Tcp_common.aimd_smooth in
  checkf ~eps:1e-6 "md" (7. /. 8.) c.Tcpsim.Tcp_common.md;
  checkf ~eps:1e-6 "ai matched" 0.3125 c.Tcpsim.Tcp_common.ai

(* Smooth AIMD halves less deeply and climbs slower: its cwnd trace should
   have a smaller peak-to-trough ratio under periodic loss. *)
let wire_tcp ~config ~drop () =
  let sim = Engine.Sim.create () in
  let sink_cell = ref None and sender_cell = ref None in
  let to_sink pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim 0.05 (fun () ->
             match !sink_cell with
             | Some s -> Tcpsim.Tcp_sink.recv s pkt
             | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !sender_cell with
           | Some s -> Tcpsim.Tcp_sender.recv s pkt
           | None -> ()))
  in
  let sink = Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  sink_cell := Some sink;
  let sender = Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sink () in
  sender_cell := Some sender;
  (sim, sender)

let cwnd_swing ~ai ~md =
  let config = Tcpsim.Tcp_common.default ~max_cwnd:64. ~ai ~md () in
  let count = ref 0 in
  let drop _ =
    incr count;
    !count mod 100 = 0
  in
  let sim, sender = wire_tcp ~config ~drop () in
  Tcpsim.Tcp_sender.start sender ~at:0.;
  (* Sample cwnd periodically over the steady phase. *)
  let lo = ref infinity and hi = ref 0. in
  let rec sample () =
    if Engine.Sim.now sim > 20. then begin
      let c = Tcpsim.Tcp_sender.cwnd sender in
      if c < !lo then lo := c;
      if c > !hi then hi := c
    end;
    ignore (Engine.Sim.after sim 0.1 sample)
  in
  ignore (Engine.Sim.at sim 0.1 (fun () -> sample ()));
  Engine.Sim.run sim ~until:60.;
  !hi /. Float.max 1. !lo

let test_smooth_aimd_narrower_sawtooth () =
  let standard = cwnd_swing ~ai:1. ~md:0.5 in
  let smooth = cwnd_swing ~ai:0.3125 ~md:(7. /. 8.) in
  Alcotest.(check bool)
    (Printf.sprintf "smooth swing %.2f < standard %.2f" smooth standard)
    true (smooth < standard)

let test_smooth_aimd_comparable_throughput () =
  (* TCP-compatible tuning: throughput under the same periodic loss within
     ~40% of standard TCP's. *)
  let throughput ~ai ~md =
    let config = Tcpsim.Tcp_common.default ~max_cwnd:64. ~ai ~md () in
    let count = ref 0 in
    let drop _ =
      incr count;
      !count mod 100 = 0
    in
    let sim, sender = wire_tcp ~config ~drop () in
    Tcpsim.Tcp_sender.start sender ~at:0.;
    Engine.Sim.run sim ~until:60.;
    float_of_int (Tcpsim.Tcp_sender.stats sender).packets_sent
  in
  let std = throughput ~ai:1. ~md:0.5 in
  let smooth = throughput ~ai:0.3125 ~md:(7. /. 8.) in
  Alcotest.(check bool)
    (Printf.sprintf "smooth %.0f vs std %.0f pkts" smooth std)
    true
    (smooth > 0.6 *. std && smooth < 1.67 *. std)

(* --- Self-similarity --------------------------------------------------------- *)

let test_aggregate () =
  Alcotest.(check (array (float 1e-9)))
    "sum pairs"
    [| 3.; 7. |]
    (Stats.Selfsim.aggregate [| 1.; 2.; 3.; 4.; 5. |] 2)

let test_hurst_iid_near_half () =
  let rng = Engine.Rng.create ~seed:5 in
  let counts = Array.init 4096 (fun _ -> Engine.Rng.float rng 10.) in
  let h = Stats.Selfsim.hurst_variance_time counts in
  Alcotest.(check bool) (Printf.sprintf "iid H=%.2f ~ 0.5" h) true (h < 0.62)

let test_hurst_pareto_onoff_high () =
  (* Aggregate 30 Pareto ON/OFF sources (shape 1.2: heavy tail), count
     arrivals in 100 ms bins, estimate H. [WTSW95] predicts H = (3-a)/2 =
     0.9; the finite-horizon estimate lands well above the iid value. *)
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:11 in
  let ts = Stats.Time_series.create () in
  for i = 1 to 30 do
    ignore i;
    let src =
      Traffic.On_off.create (Engine.Sim.runtime sim) (Engine.Rng.split rng) ~flow:i
        ~on_rate:(Engine.Units.kbps 100.) ~pkt_size:500 ~mean_on:1.
        ~mean_off:2. ~shape:1.2
        ~transmit:(fun p ->
          Stats.Time_series.add ts ~time:(Engine.Sim.now sim)
            ~value:(float_of_int p.Netsim.Packet.size))
        ()
    in
    Traffic.On_off.start src ~at:(Engine.Rng.float rng 3.)
  done;
  Engine.Sim.run sim ~until:820.;
  let counts = Stats.Time_series.binned ts ~t0:10. ~t1:810. ~bin:0.1 in
  let h = Stats.Selfsim.hurst_variance_time ~min_m:64 counts in
  Alcotest.(check bool)
    (Printf.sprintf "ON/OFF aggregate H=%.2f > 0.65" h)
    true (h > 0.65)

let test_hurst_needs_data () =
  Alcotest.check_raises "too short"
    (Invalid_argument "Selfsim.hurst_variance_time: need at least 16 points")
    (fun () -> ignore (Stats.Selfsim.hurst_variance_time (Array.make 8 1.)))

let () =
  Alcotest.run "extras"
    [
      ( "tear",
        [
          Alcotest.test_case "grows without loss" `Quick test_tear_grows_without_loss;
          Alcotest.test_case "halves on loss" `Quick
            test_tear_halves_emulated_window_on_loss;
          Alcotest.test_case "steady rate" `Quick test_tear_steady_rate_reasonable;
          Alcotest.test_case "stop" `Quick test_tear_sender_stop;
        ] );
      ( "aimd",
        [
          Alcotest.test_case "compatibility formula" `Quick
            test_tcp_compatible_aimd_formula;
          Alcotest.test_case "smooth profile" `Quick test_aimd_smooth_profile;
          Alcotest.test_case "narrower sawtooth" `Quick
            test_smooth_aimd_narrower_sawtooth;
          Alcotest.test_case "comparable throughput" `Quick
            test_smooth_aimd_comparable_throughput;
        ] );
      ( "selfsim",
        [
          Alcotest.test_case "aggregate" `Quick test_aggregate;
          Alcotest.test_case "iid near 0.5" `Quick test_hurst_iid_near_half;
          Alcotest.test_case "pareto on/off high" `Slow test_hurst_pareto_onoff_high;
          Alcotest.test_case "needs data" `Quick test_hurst_needs_data;
        ] );
    ]
