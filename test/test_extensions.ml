(* Tests for the extension features: ECN (packets, RED marking, TCP ECE,
   TFRC marks-as-loss-events), the Section 4.1 burst option, and the Jain
   fairness index. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg
let qtest t = QCheck_alcotest.to_alcotest t

(* --- Fairness index ------------------------------------------------------ *)

let test_jain_equal () = checkf "equal shares" 1. (Stats.Fairness.jain [ 5.; 5.; 5. ])

let test_jain_single_hog () =
  checkf ~eps:1e-9 "one flow has all" 0.25 (Stats.Fairness.jain [ 8.; 0.; 0.; 0. ])

let test_jain_known () =
  (* (1+2+3)^2 / (3 * (1+4+9)) = 36/42 *)
  checkf ~eps:1e-9 "known" (36. /. 42.) (Stats.Fairness.jain [ 1.; 2.; 3. ])

let test_jain_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Fairness.jain: empty")
    (fun () -> ignore (Stats.Fairness.jain []))

let test_min_max_ratio () =
  checkf "ratio" 0.5 (Stats.Fairness.min_max_ratio [ 1.; 2. ]);
  checkf "all zero" 0. (Stats.Fairness.min_max_ratio [ 0.; 0. ])

let prop_jain_range =
  QCheck.Test.make ~name:"jain in [1/n, 1]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 30) (float_range 0. 1e6))
    (fun xs ->
      let j = Stats.Fairness.jain xs in
      let n = float_of_int (List.length xs) in
      j >= (1. /. n) -. 1e-9 && j <= 1. +. 1e-9)

(* --- ECN: packets and RED -------------------------------------------------- *)

let pkt_sim = Engine.Sim.create ()

let mk_pkt ?(ecn = false) ~seq () =
  Netsim.Packet.make (Engine.Sim.runtime pkt_sim) ~ecn ~flow:1 ~seq ~size:1000 ~now:0.
    Netsim.Packet.Data

let test_packet_ecn_default_off () =
  let p = mk_pkt ~seq:0 () in
  Alcotest.(check bool) "not capable" false p.Netsim.Packet.ecn_capable;
  Alcotest.(check bool) "not marked" false p.Netsim.Packet.ecn_marked

let red_with_ecn ~ecn now =
  Netsim.Red.create
    ~params:(Netsim.Red.params ~min_th:5. ~max_th:15. ~ecn ~limit_pkts:50 ())
    ~now ~ptc:1000.

let drive_red q ~ecn_pkts =
  (* Sustained overload to push the average past min_th. *)
  let now = ref 0. in
  ignore now;
  let marked = ref 0 and dropped = ref 0 in
  for i = 1 to 300 do
    let pkt = mk_pkt ~ecn:ecn_pkts ~seq:i () in
    if not (q.Netsim.Queue_disc.enqueue pkt) then incr dropped
    else if pkt.Netsim.Packet.ecn_marked then incr marked;
    if i mod 4 = 0 then ignore (q.Netsim.Queue_disc.dequeue ())
  done;
  (!marked, !dropped)

let test_red_marks_instead_of_drops () =
  let now = ref 0. in
  let tick () = now := !now +. 1e-4; !now in
  let q_ecn = red_with_ecn ~ecn:true (fun () -> tick ()) in
  let marked, _ = drive_red q_ecn ~ecn_pkts:true in
  Alcotest.(check bool) (Printf.sprintf "marked %d > 0" marked) true (marked > 0)

let test_red_drops_non_capable_even_in_ecn_mode () =
  let now = ref 0. in
  let tick () = now := !now +. 1e-4; !now in
  let q_ecn = red_with_ecn ~ecn:true (fun () -> tick ()) in
  let marked, dropped = drive_red q_ecn ~ecn_pkts:false in
  Alcotest.(check int) "no marks on non-capable traffic" 0 marked;
  Alcotest.(check bool) "drops instead" true (dropped > 0)

let test_red_ecn_off_never_marks () =
  let now = ref 0. in
  let tick () = now := !now +. 1e-4; !now in
  let q = red_with_ecn ~ecn:false (fun () -> tick ()) in
  let marked, dropped = drive_red q ~ecn_pkts:true in
  Alcotest.(check int) "no marks with ecn off" 0 marked;
  Alcotest.(check bool) "drops" true (dropped > 0)

let test_red_ecn_still_drops_on_overflow () =
  let now = ref 0. in
  let q =
    Netsim.Red.create
      ~params:(Netsim.Red.params ~min_th:5. ~max_th:15. ~ecn:true ~limit_pkts:10 ())
      ~now:(fun () -> !now)
      ~ptc:1000.
  in
  let dropped = ref 0 in
  for i = 1 to 100 do
    now := float_of_int i *. 1e-5;
    if not (q.Netsim.Queue_disc.enqueue (mk_pkt ~ecn:true ~seq:i ())) then
      incr dropped
  done;
  Alcotest.(check bool) "physical overflow still drops" true (!dropped > 0);
  Alcotest.(check bool) "limit respected" true
    (q.Netsim.Queue_disc.len_pkts () <= 10)

(* --- ECN: loss-event coalescing of marks ----------------------------------- *)

let test_marks_counted_as_loss_events () =
  let d = Tfrc.Loss_events.create ~ndupack:1 () in
  let iv = Tfrc.Loss_intervals.create () in
  (* 50 packets arrive cleanly, then one carries a mark. *)
  for seq = 0 to 49 do
    ignore
      (Tfrc.Loss_events.on_packet d ~seq ~sent_at:(0.01 *. float_of_int seq)
         ~rtt:0.1 ~intervals:iv)
  done;
  let o = Tfrc.Loss_events.on_marked d ~seq:49 ~sent_at:0.49 ~rtt:0.1 ~intervals:iv in
  Alcotest.(check int) "mark starts an event" 1 o.Tfrc.Loss_events.new_events;
  Alcotest.(check bool) "flagged first loss" true o.Tfrc.Loss_events.first_loss;
  Alcotest.(check int) "counted as mark, not loss" 0
    (Tfrc.Loss_events.lost_packets d);
  Alcotest.(check int) "marked counter" 1 (Tfrc.Loss_events.marked_packets d)

let test_marks_coalesce_within_rtt () =
  let d = Tfrc.Loss_events.create ~ndupack:1 () in
  let iv = Tfrc.Loss_intervals.create () in
  for seq = 0 to 9 do
    ignore
      (Tfrc.Loss_events.on_packet d ~seq ~sent_at:(0.01 *. float_of_int seq)
         ~rtt:0.1 ~intervals:iv)
  done;
  (* Two marks 20 ms apart with RTT 100 ms: one event. *)
  ignore (Tfrc.Loss_events.on_marked d ~seq:7 ~sent_at:0.07 ~rtt:0.1 ~intervals:iv);
  let o = Tfrc.Loss_events.on_marked d ~seq:9 ~sent_at:0.09 ~rtt:0.1 ~intervals:iv in
  Alcotest.(check int) "second mark coalesced" 0 o.Tfrc.Loss_events.new_events;
  Alcotest.(check int) "one event" 1 (Tfrc.Loss_events.loss_events d)

(* --- ECN: TCP end to end ------------------------------------------------------ *)

let test_tcp_sink_echoes_ece () =
  let sim = Engine.Sim.create () in
  let eces = ref [] in
  let sink =
    Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim)
      ~config:(Tcpsim.Tcp_common.default ~ecn:true ())
      ~flow:1
      ~transmit:(fun pkt ->
        match pkt.Netsim.Packet.payload with
        | Netsim.Packet.Tcp_ack { ece; _ } -> eces := ece :: !eces
        | _ -> ())
      ()
  in
  let recv = Tcpsim.Tcp_sink.recv sink in
  let marked = mk_pkt ~ecn:true ~seq:0 () in
  marked.Netsim.Packet.ecn_marked <- true;
  recv marked;
  recv (mk_pkt ~seq:1 ());
  (match List.rev !eces with
  | [ true; false ] -> ()
  | l -> Alcotest.failf "expected [true; false], got %d acks" (List.length l));
  ()

let test_tcp_halves_on_ece () =
  (* Direct wiring: grow the window, then deliver a marked packet. *)
  let sim = Engine.Sim.create () in
  let config = Tcpsim.Tcp_common.default ~ecn:true ~max_cwnd:64. () in
  let sender_cell = ref None in
  let mark_all = ref false in
  let sink_cell = ref None in
  let to_sink pkt =
    if !mark_all then pkt.Netsim.Packet.ecn_marked <- true;
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !sink_cell with
           | Some s -> Tcpsim.Tcp_sink.recv s pkt
           | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !sender_cell with
           | Some s -> Tcpsim.Tcp_sender.recv s pkt
           | None -> ()))
  in
  let sink = Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  sink_cell := Some sink;
  let sender = Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sink () in
  sender_cell := Some sender;
  Tcpsim.Tcp_sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:1.;
  let cwnd_before = Tcpsim.Tcp_sender.cwnd sender in
  mark_all := true;
  Engine.Sim.run sim ~until:1.3;
  let cwnd_after = Tcpsim.Tcp_sender.cwnd sender in
  Alcotest.(check bool)
    (Printf.sprintf "cwnd %.1f -> %.1f on ECE" cwnd_before cwnd_after)
    true
    (cwnd_after <= (cwnd_before /. 2.) +. 2.);
  Alcotest.(check int) "no retransmissions: congestion without loss" 0
    (Tcpsim.Tcp_sender.stats sender).retransmits

(* --- ECN: TFRC end to end ----------------------------------------------------- *)

let test_tfrc_responds_to_marks_without_loss () =
  let sim = Engine.Sim.create () in
  let config = Tfrc.Tfrc_config.default ~ecn:true ~initial_rtt:0.1 () in
  let receiver_cell = ref None and sender_cell = ref None in
  let count = ref 0 in
  let to_receiver pkt =
    incr count;
    (* Mark every 50th packet: congestion signal, nothing dropped. *)
    if !count mod 50 = 0 then pkt.Netsim.Packet.ecn_marked <- true;
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !receiver_cell with
           | Some r -> Tfrc.Tfrc_receiver.recv r pkt
           | None -> ()))
  in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim 0.05 (fun () ->
           match !sender_cell with
           | Some s -> Tfrc.Tfrc_sender.recv s pkt
           | None -> ()))
  in
  let sender = Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver () in
  sender_cell := Some sender;
  let receiver = Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
  receiver_cell := Some receiver;
  Tfrc.Tfrc_sender.start sender ~at:0.;
  Engine.Sim.run sim ~until:60.;
  (* The sender must have left slow start and settled near the equation
     rate for p ~ 0.02, despite zero actual loss. *)
  Alcotest.(check bool) "left slow start" false (Tfrc.Tfrc_sender.in_slow_start sender);
  let p = Tfrc.Tfrc_sender.loss_event_rate sender in
  Alcotest.(check bool)
    (Printf.sprintf "p %.4f ~ 0.02 from marks alone" p)
    true
    (p > 0.01 && p < 0.04);
  Alcotest.(check int) "zero packets actually lost" 0
    (Tfrc.Loss_events.lost_packets (Tfrc.Tfrc_receiver.detector receiver));
  Alcotest.(check bool) "marks registered" true
    (Tfrc.Loss_events.marked_packets (Tfrc.Tfrc_receiver.detector receiver) > 10)

(* --- burst option ---------------------------------------------------------------- *)

let test_burst_preserves_rate () =
  (* Same loss pattern, burst 1 vs 2: long-run throughput within 15%. *)
  let run ~burst_pkts =
    let sim = Engine.Sim.create () in
    let config =
      Tfrc.Tfrc_config.default ~burst_pkts ~initial_rtt:0.1 ~delay_gain:false ()
    in
    let receiver_cell = ref None and sender_cell = ref None in
    let count = ref 0 and delivered = ref 0 in
    let to_receiver pkt =
      incr count;
      if !count mod 100 <> 0 then
        ignore
          (Engine.Sim.after sim 0.05 (fun () ->
               incr delivered;
               match !receiver_cell with
               | Some r -> Tfrc.Tfrc_receiver.recv r pkt
               | None -> ()))
    in
    let to_sender pkt =
      ignore
        (Engine.Sim.after sim 0.05 (fun () ->
             match !sender_cell with
             | Some s -> Tfrc.Tfrc_sender.recv s pkt
             | None -> ()))
    in
    let sender = Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver () in
    sender_cell := Some sender;
    let receiver = Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender () in
    receiver_cell := Some receiver;
    Tfrc.Tfrc_sender.start sender ~at:0.;
    Engine.Sim.run sim ~until:60.;
    float_of_int !delivered
  in
  let r1 = run ~burst_pkts:1 and r2 = run ~burst_pkts:2 in
  Alcotest.(check bool)
    (Printf.sprintf "burst 1: %.0f vs burst 2: %.0f pkts" r1 r2)
    true
    (Float.abs (r1 -. r2) /. r1 < 0.15)

let test_burst_config_floor () =
  (* Construction-time validation replaced the old silent clamp. *)
  Alcotest.check_raises "burst 0 rejected"
    (Invalid_argument "Tfrc_config: burst_pkts must be at least 1 (got 0)")
    (fun () -> ignore (Tfrc.Tfrc_config.default ~burst_pkts:0 ()))

let () =
  Alcotest.run "extensions"
    [
      ( "fairness",
        [
          Alcotest.test_case "jain equal" `Quick test_jain_equal;
          Alcotest.test_case "jain single hog" `Quick test_jain_single_hog;
          Alcotest.test_case "jain known" `Quick test_jain_known;
          Alcotest.test_case "jain empty" `Quick test_jain_empty;
          Alcotest.test_case "min max ratio" `Quick test_min_max_ratio;
          qtest prop_jain_range;
        ] );
      ( "ecn_red",
        [
          Alcotest.test_case "packet default" `Quick test_packet_ecn_default_off;
          Alcotest.test_case "marks instead of drops" `Quick
            test_red_marks_instead_of_drops;
          Alcotest.test_case "drops non-capable" `Quick
            test_red_drops_non_capable_even_in_ecn_mode;
          Alcotest.test_case "ecn off never marks" `Quick test_red_ecn_off_never_marks;
          Alcotest.test_case "overflow still drops" `Quick
            test_red_ecn_still_drops_on_overflow;
        ] );
      ( "ecn_events",
        [
          Alcotest.test_case "marks are loss events" `Quick
            test_marks_counted_as_loss_events;
          Alcotest.test_case "marks coalesce" `Quick test_marks_coalesce_within_rtt;
        ] );
      ( "ecn_protocols",
        [
          Alcotest.test_case "tcp sink echoes ece" `Quick test_tcp_sink_echoes_ece;
          Alcotest.test_case "tcp halves on ece" `Quick test_tcp_halves_on_ece;
          Alcotest.test_case "tfrc responds to marks" `Quick
            test_tfrc_responds_to_marks_without_loss;
        ] );
      ( "burst",
        [
          Alcotest.test_case "rate preserved" `Quick test_burst_preserves_rate;
          Alcotest.test_case "config floor" `Quick test_burst_config_floor;
        ] );
    ]
