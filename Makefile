.PHONY: all check test bench bench-many-flows ratchet topo-smoke wire-smoke soak-smoke lint clean

all:
	dune build @all

# What CI should run: full build with the dev profile's warnings-as-errors,
# then the whole test suite.
check:
	dune build @check

test:
	dune runtest

# No top-level mutable ref/counter state in lib/ outside the engine
# allowlist (also enforced by `dune runtest` via a rule in ./dune).
lint:
	bash tools/lint_global_state.sh

bench:
	dune exec bench/main.exe

# Full-scale scheduler scale bench; appends this run's JSON line to the
# in-repo trajectory (ROADMAP item 6). Commit the result with the PR.
bench-many-flows:
	dune exec bench/main.exe -- --many-flows >> BENCH_many_flows.json
	tail -n 1 BENCH_many_flows.json

# Perf ratchet (CI): rerun the scale bench at the smoke scale and fail on
# a >30% wheel-throughput regression against the last committed
# BENCH_many_flows.json entry at that scale.
ratchet:
	bash tools/bench_ratchet.sh

# Routed-WAN failure-impact smoke: static partition/re-route analysis
# must agree with the goodput the chaos layer produces (exits non-zero
# on a mismatch or an invariant violation).
topo-smoke:
	dune exec bin/tfrc_sim.exe -- topo --check
	dune exec bin/tfrc_sim.exe -- topo --dark nyc-atl --dark atl-sfo --check

# Real-UDP smoke: deterministic seeded loopback transfer plus the
# sim-vs-wire decision-log differential.
wire-smoke:
	dune exec bin/tfrc_sim.exe -- wire loopback-demo --packets 100 --seed 7
	dune exec bin/tfrc_sim.exe -- wire validate --duration 10

# Wire-mode chaos soak: seeded syscall-fault endurance runs with the
# supervised endpoint lifecycle, plus the planted-bug oracle self-test.
soak-smoke:
	dune exec bin/tfrc_sim.exe -- wire soak --cases 50 --seed 1
	dune exec bin/tfrc_sim.exe -- wire soak --cases 20 --seed 1 --mutate

clean:
	dune clean
