.PHONY: all check test bench bench-many-flows lint clean

all:
	dune build @all

# What CI should run: full build with the dev profile's warnings-as-errors,
# then the whole test suite.
check:
	dune build @check

test:
	dune runtest

# No top-level mutable ref/counter state in lib/ outside the engine
# allowlist (also enforced by `dune runtest` via a rule in ./dune).
lint:
	bash tools/lint_global_state.sh

bench:
	dune exec bench/main.exe

# Full-scale scheduler scale bench; appends this run's JSON line to the
# in-repo trajectory (ROADMAP item 6). Commit the result with the PR.
bench-many-flows:
	dune exec bench/main.exe -- --many-flows >> BENCH_many_flows.json
	tail -n 1 BENCH_many_flows.json

clean:
	dune clean
