.PHONY: all check test bench lint clean

all:
	dune build @all

# What CI should run: full build with the dev profile's warnings-as-errors,
# then the whole test suite.
check:
	dune build @check

test:
	dune runtest

# No top-level mutable ref/counter state in lib/ outside the engine
# allowlist (also enforced by `dune runtest` via a rule in ./dune).
lint:
	bash tools/lint_global_state.sh

bench:
	dune exec bench/main.exe

clean:
	dune clean
