.PHONY: all check test bench clean

all:
	dune build @all

# What CI should run: full build with the dev profile's warnings-as-errors,
# then the whole test suite.
check:
	dune build @check

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
