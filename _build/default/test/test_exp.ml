(* Tests for the experiment harness: scenario plumbing, the experiment
   registry, table rendering, and shape checks on the cheap figure
   computations. *)

let checkf ?(eps = 1e-9) msg = Alcotest.check (Alcotest.float eps) msg

(* --- Table ------------------------------------------------------------ *)

let render_table header rows =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Exp.Table.print ppf ~header rows;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_table_alignment () =
  let out = render_table [ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let lines = String.split_on_char '\n' out in
  (match lines with
  | header :: sep :: _ ->
      Alcotest.(check int) "separator matches header width"
        (String.length header) (String.length sep)
  | _ -> Alcotest.fail "expected at least two lines");
  Alcotest.(check bool) "contains data" true (String.length out > 0)

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Table.print: ragged row")
    (fun () -> ignore (render_table [ "a"; "b" ] [ [ "only one" ] ]))

let test_formatters () =
  Alcotest.(check string) "f2" "3.14" (Exp.Table.f2 3.14159);
  Alcotest.(check string) "f3" "3.142" (Exp.Table.f3 3.14159);
  Alcotest.(check string) "f4" "3.1416" (Exp.Table.f4 3.14159)

let test_sparkline () =
  Alcotest.(check string) "empty" "" (Exp.Table.sparkline [||]);
  let s = Exp.Table.sparkline [| 0.; 1. |] in
  Alcotest.(check bool) "two glyphs" true (String.length s > 0);
  (* Constant input must not crash (degenerate range). *)
  ignore (Exp.Table.sparkline [| 5.; 5.; 5. |])

(* --- Registry ----------------------------------------------------------- *)

let test_registry_ids_unique () =
  let ids = Exp.Registry.ids () in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "no duplicate ids" (List.length ids) (List.length sorted)

let test_registry_covers_the_paper () =
  (* Every evaluation figure of the paper has an entry. *)
  List.iter
    (fun id ->
      match Exp.Registry.find id with
      | Some _ -> ()
      | None -> Alcotest.failf "missing experiment %s" id)
    [
      "fig2"; "fig3"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig11";
      "fig14"; "fig15"; "fig18"; "fig19"; "fig20"; "tableA1";
    ]

let test_registry_find_missing () =
  Alcotest.(check bool) "unknown id" true (Exp.Registry.find "fig99" = None)

(* --- Scenario ------------------------------------------------------------- *)

let test_scaled_queue () =
  (match Exp.Scenario.scaled_queue `Droptail ~bandwidth:(Engine.Units.mbps 15.) with
  | Netsim.Dumbbell.Droptail_q n ->
      Alcotest.(check bool) (Printf.sprintf "15 Mb/s -> %d pkts" n) true
        (n >= 90 && n <= 110)
  | _ -> Alcotest.fail "expected droptail");
  match Exp.Scenario.scaled_queue `Red ~bandwidth:(Engine.Units.mbps 15.) with
  | Netsim.Dumbbell.Red_q p ->
      Alcotest.(check bool) "thresholds ordered" true
        (p.Netsim.Red.min_th < p.Netsim.Red.max_th)
  | _ -> Alcotest.fail "expected red"

let test_scaled_queue_floor () =
  match Exp.Scenario.scaled_queue `Droptail ~bandwidth:(Engine.Units.kbps 100.) with
  | Netsim.Dumbbell.Droptail_q n -> Alcotest.(check int) "floor 10" 10 n
  | _ -> Alcotest.fail "expected droptail"

let test_run_mixed_accounting () =
  let params =
    {
      (Exp.Scenario.default_mixed ()) with
      n_tcp = 2;
      n_tfrc = 2;
      duration = 15.;
      warmup = 5.;
      seed = 5;
    }
  in
  let r = Exp.Scenario.run_mixed params in
  Alcotest.(check int) "tcp flows" 2 (List.length r.tcp_flows);
  Alcotest.(check int) "tfrc flows" 2 (List.length r.tfrc_flows);
  checkf ~eps:1e-6 "fair share"
    (Engine.Units.bps_to_byte_rate params.bandwidth /. 4.)
    r.fair_share;
  Alcotest.(check bool) "everyone sent" true
    (List.for_all
       (fun (f : Exp.Scenario.flow_stats) -> f.mean_recv_rate > 0.)
       (r.tcp_flows @ r.tfrc_flows));
  Alcotest.(check bool) "utilization sane" true
    (r.utilization > 0.3 && r.utilization <= 1.01)

let test_normalized_throughputs_sum () =
  let params =
    {
      (Exp.Scenario.default_mixed ()) with
      n_tcp = 2;
      n_tfrc = 2;
      duration = 15.;
      warmup = 5.;
      seed = 6;
    }
  in
  let r = Exp.Scenario.run_mixed params in
  let tcp, tfrc = Exp.Scenario.normalized_throughputs r in
  let total = List.fold_left ( +. ) 0. (tcp @ tfrc) in
  (* Sum of normalized shares ~ n * utilization. *)
  Alcotest.(check bool)
    (Printf.sprintf "normalized sum %.2f ~ 4 * util %.2f" total r.utilization)
    true
    (Float.abs (total -. (4. *. r.utilization)) < 0.3)

let test_mean_helper () =
  checkf "mean" 2. (Exp.Scenario.mean [ 1.; 2.; 3. ]);
  checkf "mean empty" 0. (Exp.Scenario.mean [])

(* --- Cheap figure computations ---------------------------------------------- *)

let test_fig5_shape () =
  (* Loss-event fraction below the loss probability, and the 2x-rate flow
     sees a lower event fraction than the 0.5x-rate flow. *)
  List.iter
    (fun p_loss ->
      let f1 = Exp.Fig5.analytic ~p_loss ~factor:1.0 in
      let f2 = Exp.Fig5.analytic ~p_loss ~factor:2.0 in
      let f05 = Exp.Fig5.analytic ~p_loss ~factor:0.5 in
      Alcotest.(check bool) "below y=x" true (f1 <= p_loss +. 1e-9);
      Alcotest.(check bool) "faster flow, lower event fraction" true
        (f2 <= f05 +. 1e-9))
    [ 0.01; 0.05; 0.1 ]

let test_fig5_monte_carlo_close_to_analytic () =
  let rng = Engine.Rng.create ~seed:21 in
  let p_loss = 0.05 in
  let analytic = Exp.Fig5.analytic ~p_loss ~factor:1.0 in
  let mc = Exp.Fig5.monte_carlo rng ~p_loss ~factor:1.0 ~packets:200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f vs analytic %.4f" mc analytic)
    true
    (Float.abs (mc -. analytic) /. analytic < 0.1)

let test_fig2_estimator_tracks_phases () =
  let data = Exp.Fig2.samples ~duration:16. () in
  let mean_p a b =
    let xs =
      List.filter_map
        (fun (t, _, _, p, _) -> if t >= a && t < b then Some p else None)
        data
    in
    Exp.Scenario.mean xs
  in
  let phase1 = mean_p 4. 6. in
  let phase2 = mean_p 8. 9. in
  Alcotest.(check bool)
    (Printf.sprintf "phase1 %.4f ~ 1%%" phase1)
    true
    (phase1 > 0.005 && phase1 < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "phase2 %.4f ~ 10%%" phase2)
    true
    (phase2 > 0.05 && phase2 < 0.15)

let test_fig18_history_size_helps () =
  let traces = Exp.Fig18.standard_traces ~seed:31 ~packets_per_trace:100_000 in
  let err n =
    fst (Exp.Fig18.evaluate ~history:n ~constant_weights:false ~traces)
  in
  Alcotest.(check bool) "n=8 beats n=2" true (err 8 < err 2)

let test_fig19_steady_state_rate () =
  let samples, _ = Exp.Fig19.trace ~duration:11. () in
  let steady =
    Exp.Scenario.mean
      (List.filter_map
         (fun (t, v) -> if t >= 8. && t < 10. then Some v else None)
         samples)
  in
  (* Simple equation at p=0.01: 1.2/sqrt(0.01) ~= 12.2 pkts/RTT. *)
  Alcotest.(check bool)
    (Printf.sprintf "steady %.1f ~ 12" steady)
    true
    (steady > 11. && steady < 14.)

let test_fig3_damping_effect () =
  let c_without, m1 = Exp.Fig3_4.oscillation ~delay_gain:false ~buffer:64 ~duration:40. in
  let c_with, m2 = Exp.Fig3_4.oscillation ~delay_gain:true ~buffer:64 ~duration:40. in
  Alcotest.(check bool)
    (Printf.sprintf "damped: %.3f -> %.3f" c_without c_with)
    true (c_with < c_without);
  (* Both should still use the link well. *)
  Alcotest.(check bool) "throughput maintained" true
    (m1 > 150_000. && m2 > 150_000.)

let test_fig15_profiles_well_formed () =
  let names = List.map (fun p -> p.Exp.Fig15_17.name) Exp.Fig15_17.profiles in
  Alcotest.(check int) "five paths" 5 (List.length names);
  Alcotest.(check bool) "has the Solaris pathology" true
    (List.mem "UMASS (Solaris)" names);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (p.Exp.Fig15_17.name ^ " rates positive")
        true
        (p.Exp.Fig15_17.bandwidth > 0. && p.Exp.Fig15_17.rtt > 0.))
    Exp.Fig15_17.profiles

let () =
  Alcotest.run "exp"
    [
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected;
          Alcotest.test_case "formatters" `Quick test_formatters;
          Alcotest.test_case "sparkline" `Quick test_sparkline;
        ] );
      ( "registry",
        [
          Alcotest.test_case "unique ids" `Quick test_registry_ids_unique;
          Alcotest.test_case "covers the paper" `Quick
            test_registry_covers_the_paper;
          Alcotest.test_case "find missing" `Quick test_registry_find_missing;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "scaled queue" `Quick test_scaled_queue;
          Alcotest.test_case "scaled queue floor" `Quick test_scaled_queue_floor;
          Alcotest.test_case "run_mixed accounting" `Quick
            test_run_mixed_accounting;
          Alcotest.test_case "normalized sum" `Quick
            test_normalized_throughputs_sum;
          Alcotest.test_case "mean helper" `Quick test_mean_helper;
        ] );
      ( "figures",
        [
          Alcotest.test_case "fig5 shape" `Quick test_fig5_shape;
          Alcotest.test_case "fig5 monte carlo" `Quick
            test_fig5_monte_carlo_close_to_analytic;
          Alcotest.test_case "fig2 estimator phases" `Quick
            test_fig2_estimator_tracks_phases;
          Alcotest.test_case "fig18 history size" `Quick
            test_fig18_history_size_helps;
          Alcotest.test_case "fig19 steady state" `Quick
            test_fig19_steady_state_rate;
          Alcotest.test_case "fig3/4 damping" `Quick test_fig3_damping_effect;
          Alcotest.test_case "fig15 profiles" `Quick
            test_fig15_profiles_well_formed;
        ] );
    ]
