test/test_baselines.ml: Alcotest Baselines Engine List Netsim Printf Tfrc
