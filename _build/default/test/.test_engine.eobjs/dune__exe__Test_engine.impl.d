test/test_engine.ml: Alcotest Array Engine Float Fun List Printf QCheck QCheck_alcotest
