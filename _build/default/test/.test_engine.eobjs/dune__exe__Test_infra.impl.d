test/test_infra.ml: Alcotest Buffer Engine Exp Filename Float Format List Netsim Printf String Sys Tfrc Unix
