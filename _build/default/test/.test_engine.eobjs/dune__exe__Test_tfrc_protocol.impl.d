test/test_tfrc_protocol.ml: Alcotest Engine Exp Float List Netsim Printf Stats Tfrc
