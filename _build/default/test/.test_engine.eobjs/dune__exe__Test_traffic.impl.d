test/test_traffic.ml: Alcotest Array Engine Float Netsim Printf Stats Traffic
