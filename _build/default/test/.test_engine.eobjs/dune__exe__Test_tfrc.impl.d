test/test_tfrc.ml: Alcotest Array Float Gen List Printf QCheck QCheck_alcotest Tfrc
