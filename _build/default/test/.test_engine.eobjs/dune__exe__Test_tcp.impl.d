test/test_tcp.ml: Alcotest Engine Float List Netsim Printf Tcpsim
