test/test_netsim.ml: Alcotest Array Engine Float Format Gen List Netsim Printf QCheck QCheck_alcotest Stats String
