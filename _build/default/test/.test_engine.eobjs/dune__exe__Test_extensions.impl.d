test/test_extensions.ml: Alcotest Engine Float Gen List Netsim Printf QCheck QCheck_alcotest Stats Tcpsim Tfrc
