test/test_extras.ml: Alcotest Array Baselines Engine Float Netsim Printf Stats Tcpsim Traffic
