test/test_exp.ml: Alcotest Buffer Engine Exp Float Format List Netsim Printf String
