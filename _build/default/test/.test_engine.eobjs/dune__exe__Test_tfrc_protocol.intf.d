test/test_tfrc_protocol.mli:
