test/test_properties.ml: Alcotest Engine Exp List Netsim QCheck QCheck_alcotest Tcpsim Tfrc Traffic
