(** Closed-form results from Appendix A.1: the bound on TFRC's per-RTT rate
    increase.

    With the simple control equation, a fixed RTT, average loss interval A
    (packets) and normalized weight w on the most recent interval, one
    loss-free RTT increases the allowed rate by

    {v delta_T = 1.2 ( sqrt(A + w*1.2*sqrt A) - sqrt A ) v}

    packets/RTT (Equation 4). For TFRC's n=8 weighting w = 1/6 and
    delta_T <= 0.12; with maximal history discounting w = 0.4 and
    delta_T <= 0.28; even w = 1 gives only ~0.7 — less than TCP's one
    packet per RTT. *)

(** [delta_t ~a ~w] evaluates Equation 4 at average loss interval [a]. *)
val delta_t : a:float -> w:float -> float

(** [max_delta_t ~w] is the supremum of [delta_t] over a >= 1 (numeric
    scan; the function is increasing in a toward its limit). *)
val max_delta_t : w:float -> float

(** Normalized weight of the most recent interval for history size [n]
    with the standard decreasing weights: w_1 / sum(w). 1/6 for n = 8. *)
val recent_weight : n:int -> float

(** Same under maximal history discounting (older weights scaled by
    [threshold], default 0.25): 0.4-ish for n = 8. *)
val recent_weight_discounted : ?threshold:float -> n:int -> unit -> float
