(** TFRC receiver (Section 3.3).

    Detects losses, coalesces them into loss events within one RTT,
    maintains the Average Loss Interval history, measures the receive rate,
    and reports feedback to the sender once per round-trip time (plus
    expedited feedback when a new loss event is detected). On the first
    loss event it seeds the interval history with the synthetic interval
    that the control equation associates with half the current receive rate
    (slow-start termination, Section 3.4.1). *)

type t

val create :
  Engine.Sim.t ->
  config:Tfrc_config.t ->
  flow:int ->
  transmit:Netsim.Packet.handler (** feedback goes here *) ->
  unit ->
  t

(** Feed arriving data packets here. *)
val recv : t -> Netsim.Packet.handler

(** Current loss event rate estimate (0. while loss-free). *)
val loss_event_rate : t -> float

val intervals : t -> Loss_intervals.t
val detector : t -> Loss_events.t
val packets_received : t -> int
val bytes_received : t -> int
val feedbacks_sent : t -> int

(** Stops the feedback timer. *)
val stop : t -> unit
