type t = {
  packet_size : int;
  feedback_size : int;
  n_intervals : int;
  history_discounting : bool;
  discount_threshold : float;
  constant_weights : bool;
  rtt_gain : float;
  delay_gain : bool;
  t_rto_factor : float;
  response : Response_function.kind;
  initial_rtt : float;
  ndupack : int;
  slow_start : bool;
  min_rate : float;
  feedback_on_loss : bool;
  ecn : bool;
  burst_pkts : int;
  rate_validation : bool;
}

let default ?(packet_size = 1000) ?(n_intervals = 8) ?(history_discounting = true)
    ?(constant_weights = false) ?(rtt_gain = 0.1) ?(delay_gain = true)
    ?(t_rto_factor = 4.) ?(response = Response_function.Pftk)
    ?(initial_rtt = 0.5) ?(slow_start = true) ?(feedback_on_loss = true)
    ?(ndupack = 3) ?(ecn = false) ?(burst_pkts = 1)
    ?(rate_validation = false) () =
  {
    packet_size;
    feedback_size = 40;
    n_intervals;
    history_discounting;
    discount_threshold = 0.25;
    constant_weights;
    rtt_gain;
    delay_gain;
    t_rto_factor;
    response;
    initial_rtt;
    ndupack;
    slow_start;
    min_rate = float_of_int packet_size /. 64.;
    feedback_on_loss;
    ecn;
    burst_pkts = max 1 burst_pkts;
    rate_validation;
  }
