let delta_t ~a ~w =
  if a <= 0. then invalid_arg "Analysis.delta_t: a must be positive";
  1.2 *. (sqrt (a +. (w *. 1.2 *. sqrt a)) -. sqrt a)

let max_delta_t ~w =
  (* delta_t grows toward its limit 0.6*1.2*w as a -> infinity; scan a
     dense grid plus a large endpoint to be safe against non-monotone
     regions at small a. *)
  let best = ref 0. in
  let a = ref 1. in
  while !a < 1e7 do
    best := Float.max !best (delta_t ~a:!a ~w);
    a := !a *. 1.3
  done;
  !best

let recent_weight ~n =
  let w = Loss_intervals.weights ~n ~constant:false in
  let sum = Array.fold_left ( +. ) 0. w in
  w.(0) /. sum

let recent_weight_discounted ?(threshold = 0.25) ~n () =
  let w = Loss_intervals.weights ~n ~constant:false in
  let sum = ref 0. in
  Array.iteri (fun i x -> sum := !sum +. if i = 0 then x else threshold *. x) w;
  w.(0) /. !sum
