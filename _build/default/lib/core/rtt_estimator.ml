type t = {
  gain : float;
  t_rto_factor : float;
  initial_rtt : float;
  mutable srtt : float;
  mutable last : float;
  mutable sqrt_mean : float;
  mutable have : bool;
}

let create ~gain ~initial_rtt ~t_rto_factor =
  if gain <= 0. || gain > 1. then invalid_arg "Rtt_estimator.create: bad gain";
  if initial_rtt <= 0. then invalid_arg "Rtt_estimator.create: bad initial RTT";
  {
    gain;
    t_rto_factor;
    initial_rtt;
    srtt = initial_rtt;
    last = initial_rtt;
    sqrt_mean = sqrt initial_rtt;
    have = false;
  }

let sample t rtt =
  if rtt <= 0. then invalid_arg "Rtt_estimator.sample: non-positive RTT";
  if not t.have then begin
    t.srtt <- rtt;
    t.sqrt_mean <- sqrt rtt;
    t.have <- true
  end
  else begin
    t.srtt <- ((1. -. t.gain) *. t.srtt) +. (t.gain *. rtt);
    t.sqrt_mean <- ((1. -. t.gain) *. t.sqrt_mean) +. (t.gain *. sqrt rtt)
  end;
  t.last <- rtt

let rtt t = t.srtt
let last_sample t = t.last
let sqrt_mean t = t.sqrt_mean
let t_rto t = t.t_rto_factor *. t.srtt
let has_sample t = t.have
let delay_factor t = if t.sqrt_mean <= 0. then 1. else sqrt t.last /. t.sqrt_mean
