(** Sender-side round-trip-time smoothing for TFRC (Sections 3.2 and 3.4).

    Keeps an EWMA of the RTT (gain [rtt_gain] on new samples), the most
    recent raw sample R0, and an EWMA [M] of sqrt(RTT) with the same time
    constant. The control equation uses the smoothed R; the interpacket
    spacing uses sqrt(R0)/M to add damped short-term delay-based congestion
    avoidance. t_RTO is the paper's heuristic [t_rto_factor * R]. *)

type t

val create : gain:float -> initial_rtt:float -> t_rto_factor:float -> t

val sample : t -> float -> unit

(** Smoothed RTT ([initial_rtt] until the first sample). *)
val rtt : t -> float

(** Most recent raw sample (falls back to [initial_rtt]). *)
val last_sample : t -> float

(** EWMA of sqrt(RTT). *)
val sqrt_mean : t -> float

val t_rto : t -> float
val has_sample : t -> bool

(** [delay_factor t] is sqrt(R0)/M, the interpacket-spacing adjustment. *)
val delay_factor : t -> float
