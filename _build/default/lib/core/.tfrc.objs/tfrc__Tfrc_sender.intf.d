lib/core/tfrc_sender.mli: Engine Netsim Tfrc_config
