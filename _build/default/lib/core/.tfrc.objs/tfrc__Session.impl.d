lib/core/session.ml: Netsim Tfrc_config Tfrc_receiver Tfrc_sender
