lib/core/tfrc_sender.ml: Engine Float List Netsim Response_function Rtt_estimator Tfrc_config
