lib/core/tfrc_config.mli: Response_function
