lib/core/tfrc_receiver.ml: Engine Float Loss_events Loss_intervals Netsim Response_function Tfrc_config
