lib/core/loss_events.ml: Float List Loss_intervals
