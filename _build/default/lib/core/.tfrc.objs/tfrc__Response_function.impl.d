lib/core/response_function.ml: Float
