lib/core/tfrc_receiver.mli: Engine Loss_events Loss_intervals Netsim Tfrc_config
