lib/core/loss_events.mli: Loss_intervals
