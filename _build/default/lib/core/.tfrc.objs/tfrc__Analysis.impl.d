lib/core/analysis.ml: Array Float Loss_intervals
