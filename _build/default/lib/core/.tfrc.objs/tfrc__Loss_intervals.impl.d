lib/core/loss_intervals.ml: Array Float
