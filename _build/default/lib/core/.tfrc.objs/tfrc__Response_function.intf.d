lib/core/response_function.mli:
