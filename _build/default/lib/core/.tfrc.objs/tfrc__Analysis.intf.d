lib/core/analysis.mli:
