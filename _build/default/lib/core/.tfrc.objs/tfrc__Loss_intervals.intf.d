lib/core/loss_intervals.mli:
