lib/core/session.mli: Engine Netsim Tfrc_config Tfrc_receiver Tfrc_sender
