lib/core/tfrc_config.ml: Response_function
