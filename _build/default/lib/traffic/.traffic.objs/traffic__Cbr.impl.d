lib/traffic/cbr.ml: Engine Netsim
