lib/traffic/on_off.ml: Engine Float Netsim
