lib/traffic/on_off.mli: Engine Netsim
