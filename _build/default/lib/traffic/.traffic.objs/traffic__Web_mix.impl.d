lib/traffic/web_mix.ml: Engine Netsim Tcpsim
