lib/traffic/web_mix.mli: Engine Netsim Tcpsim
