lib/traffic/cbr.mli: Engine Netsim
