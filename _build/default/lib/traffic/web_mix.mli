(** Web-like background traffic: a stream of short TCP transfers.

    New connections arrive as a Poisson process; each transfers a
    Pareto-distributed number of packets through its own TCP sender/sink
    pair over the shared dumbbell (Figure 14's "short-lived background TCP
    traffic"). Flow ids are drawn from a reserved range. *)

type t

val create :
  Netsim.Dumbbell.t ->
  Engine.Rng.t ->
  first_flow_id:int ->
  arrival_rate:float (** new connections per second *) ->
  mean_size:float (** mean transfer size, packets *) ->
  ?shape:float (** Pareto shape for sizes, default 1.3 *) ->
  ?rtt_base:float (** base RTT for background flows, default 0.08 *) ->
  ?config:Tcpsim.Tcp_common.config ->
  unit ->
  t

val start : t -> at:float -> unit
val stop : t -> unit
val connections_started : t -> int
val connections_completed : t -> int
val packets_delivered : t -> int
