lib/engine/sim.mli:
