lib/engine/units.ml: Float Format
