lib/engine/rng.mli:
