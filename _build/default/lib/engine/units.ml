let bits_of_bytes b = 8. *. float_of_int b
let bytes_of_bits b = b /. 8.
let mbps f = f *. 1e6
let kbps f = f *. 1e3
let bps_to_byte_rate bps = bps /. 8.
let byte_rate_to_mbps r = r *. 8. /. 1e6
let kbytes_per_s r = r /. 1e3
let ms f = f /. 1e3

let tx_time ~bits_per_s ~bytes =
  assert (bits_per_s > 0.);
  bits_of_bytes bytes /. bits_per_s

let pp_rate ppf r =
  let abs = Float.abs r in
  if abs >= 1e6 then Format.fprintf ppf "%.2f MB/s" (r /. 1e6)
  else if abs >= 1e3 then Format.fprintf ppf "%.2f KB/s" (r /. 1e3)
  else Format.fprintf ppf "%.1f B/s" r

let pp_time ppf t =
  let abs = Float.abs t in
  if abs >= 1. then Format.fprintf ppf "%.3f s" t
  else if abs >= 1e-3 then Format.fprintf ppf "%.2f ms" (t *. 1e3)
  else Format.fprintf ppf "%.1f us" (t *. 1e6)
