(** Unit conversions and pretty-printers used throughout the simulator.

    Internal conventions: time in seconds, rates in bytes/second, sizes in
    bytes, link bandwidths in bits/second. *)

val bits_of_bytes : int -> float
val bytes_of_bits : float -> float

(** [mbps f] converts megabits/second to bits/second. *)
val mbps : float -> float

(** [kbps f] converts kilobits/second to bits/second. *)
val kbps : float -> float

(** [bps_to_byte_rate bps] converts bits/second to bytes/second. *)
val bps_to_byte_rate : float -> float

(** [byte_rate_to_mbps r] converts bytes/second to megabits/second. *)
val byte_rate_to_mbps : float -> float

(** [kbytes_per_s r] converts bytes/second to kilobytes/second (KB = 1000). *)
val kbytes_per_s : float -> float

(** [ms f] converts milliseconds to seconds. *)
val ms : float -> float

(** [tx_time ~bits_per_s ~bytes] is the serialization delay of a packet. *)
val tx_time : bits_per_s:float -> bytes:int -> float

(** [pp_rate ppf r] prints a byte rate with an adaptive unit. *)
val pp_rate : Format.formatter -> float -> unit

(** [pp_time ppf t] prints a duration with an adaptive unit. *)
val pp_time : Format.formatter -> float -> unit
