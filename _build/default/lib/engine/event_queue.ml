(* Array-backed binary min-heap ordered by (time, seq). The sequence number
   breaks ties so that simultaneous events run in insertion order. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.heap) in
  let h = Array.make cap q.heap.(0) in
  Array.blit q.heap 0 h 0 q.size;
  q.heap <- h

let push q ~time v =
  let e = { time; seq = q.next_seq; value = v } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then
    if q.size = 0 then q.heap <- Array.make 16 e else grow q;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      q.heap.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let sift_down q =
  let n = q.size in
  let e = q.heap.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && less q.heap.(l) q.heap.(!smallest) then smallest := l;
    if r < n && less q.heap.(r) q.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      q.heap.(!i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- e;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      q.heap.(q.size) <- top;
      (* keep slot initialized; value is overwritten on next push *)
      sift_down q
    end;
    Some (top.time, top.value)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time
let size q = q.size
let is_empty q = q.size = 0
let clear q = q.size <- 0
