(** Drop-tail (FIFO) queue with a packet-count limit, matching ns-2's
    default DropTail behavior used throughout the paper's simulations. *)

(** [create ~limit_pkts] builds a FIFO that drops arrivals once [limit_pkts]
    packets are buffered. *)
val create : limit_pkts:int -> Queue_disc.t
