let custom ~drop dest pkt = if drop pkt then () else dest pkt

let bernoulli rng ~p dest =
  if p < 0. || p > 1. then invalid_arg "Loss_model.bernoulli: bad p";
  custom ~drop:(fun _ -> Engine.Rng.bool rng ~p) dest

let periodic ~period dest =
  if period < 1 then invalid_arg "Loss_model.periodic: period must be >= 1";
  let count = ref 0 in
  custom
    ~drop:(fun _ ->
      incr count;
      if !count >= period then begin
        count := 0;
        true
      end
      else false)
    dest

(* Evenly spaced drops at an arbitrary fraction: accumulate [rate] per
   packet and drop whenever the accumulator crosses 1. *)
let spaced_dropper rate_fn =
  let acc = ref 0. in
  fun _pkt ->
    let rate = rate_fn () in
    if rate <= 0. then false
    else begin
      acc := !acc +. rate;
      if !acc >= 1. then begin
        acc := !acc -. 1.;
        true
      end
      else false
    end

let periodic_rate ~rate dest =
  if rate < 0. || rate >= 1. then invalid_arg "Loss_model.periodic_rate: bad rate";
  custom ~drop:(spaced_dropper (fun () -> rate)) dest

let time_varying ~schedule ~now dest =
  custom ~drop:(spaced_dropper (fun () -> schedule (now ()))) dest

let gilbert rng ~p_gb ~p_bg ~loss_good ~loss_bad dest =
  let bad = ref false in
  custom
    ~drop:(fun _ ->
      (if !bad then begin
         if Engine.Rng.bool rng ~p:p_bg then bad := false
       end
       else if Engine.Rng.bool rng ~p:p_gb then bad := true);
      Engine.Rng.bool rng ~p:(if !bad then loss_bad else loss_good))
    dest

let counted dest =
  let n = ref 0 in
  let handler pkt =
    incr n;
    dest pkt
  in
  (handler, fun () -> !n)
