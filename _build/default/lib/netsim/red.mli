(** Random Early Detection queue management (Floyd & Jacobson 1993), with
    the "gentle" extension enabled in the paper's simulations.

    Average queue length is an EWMA updated at each arrival, with idle-time
    compensation based on the link's packet transmission capacity. Between
    [min_th] and [max_th] the drop probability rises linearly to [max_p];
    with [gentle], between [max_th] and [2*max_th] it rises linearly from
    [max_p] to 1 instead of jumping to forced drop. The inter-drop spacing
    uniformization (count-based p_a = p_b / (1 - count*p_b)) follows the
    original paper. *)

type params = {
  w_q : float;  (** EWMA weight for the average queue (default 0.002) *)
  min_th : float;  (** packets *)
  max_th : float;  (** packets *)
  max_p : float;
  gentle : bool;
  limit_pkts : int;  (** physical buffer limit *)
  ecn : bool;
      (** mark ECN-capable packets on early congestion instead of dropping
          them (physical overflow still drops) *)
}

(** Defaults modelled on ns-2: [w_q = 0.002], [max_p = 0.1],
    [gentle = true], [ecn = false]. [min_th], [max_th] and [limit_pkts]
    must be given. *)
val params :
  ?w_q:float ->
  ?max_p:float ->
  ?gentle:bool ->
  ?ecn:bool ->
  min_th:float ->
  max_th:float ->
  limit_pkts:int ->
  unit ->
  params

(** [create ~params ~now ~ptc] builds the discipline. [now] supplies virtual
    time; [ptc] is the link's packet transmission capacity in packets/s
    (link bandwidth over mean packet size), used to age the average queue
    across idle periods. *)
val create : params:params -> now:(unit -> float) -> ptc:float -> Queue_disc.t

(** [avg_queue t] exposes the current EWMA average queue length (packets) of
    a RED discipline created by [create]; for testing and monitoring. *)
val avg_queue : Queue_disc.t -> float
