type event_kind = Enqueue | Dequeue | Drop | Receive

type event = {
  time : float;
  kind : event_kind;
  flow : int;
  seq : int;
  size : int;
  pkt_id : int;
}

type t = {
  now : unit -> float;
  limit : int;
  mutable events : event list; (* newest first *)
  mutable count : int;
  mutable truncated : bool;
}

let create ?(limit = 1_000_000) now =
  { now; limit; events = []; count = 0; truncated = false }

let record t kind (pkt : Packet.t) =
  if t.count >= t.limit then t.truncated <- true
  else begin
    t.events <-
      {
        time = t.now ();
        kind;
        flow = pkt.flow;
        seq = pkt.seq;
        size = pkt.size;
        pkt_id = pkt.id;
      }
      :: t.events;
    t.count <- t.count + 1
  end

let attach_link t link =
  Link.on_drop link (fun pkt -> record t Drop pkt);
  let prev = ref ignore in
  let dest pkt =
    record t Receive pkt;
    !prev pkt
  in
  (* Wrap whatever destination the link has when traffic starts flowing:
     the tracer is installed as the link's dest and forwards to the
     original one. *)
  prev := Link.current_dest link;
  Link.set_dest link dest

let events t = List.rev t.events
let n_events t = t.count
let truncated t = t.truncated
let filter t ~flow = List.filter (fun e -> e.flow = flow) (events t)

let code = function
  | Enqueue -> "+"
  | Dequeue -> "-"
  | Drop -> "d"
  | Receive -> "r"

let pp_event ppf e =
  Format.fprintf ppf "%s %.6f %d %d %d %d" (code e.kind) e.time e.flow e.seq
    e.size e.pkt_id

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t);
      Format.pp_print_flush ppf ())
