type t = {
  now : unit -> float;
  series : Stats.Time_series.t;
  mutable packets : int;
  mutable bytes : int;
}

let create now = { now; series = Stats.Time_series.create (); packets = 0; bytes = 0 }

let record t (pkt : Packet.t) =
  if Packet.is_data pkt then begin
    t.packets <- t.packets + 1;
    t.bytes <- t.bytes + pkt.size;
    Stats.Time_series.add t.series ~time:(t.now ()) ~value:(float_of_int pkt.size)
  end

let wrap t handler pkt =
  record t pkt;
  handler pkt

let tap t = wrap t ignore
let series t = t.series
let packets t = t.packets
let bytes t = t.bytes
let mean_rate t ~t0 ~t1 = Stats.Time_series.mean_rate t.series ~t0 ~t1

module Queue_sampler = struct
  type sampler = {
    series : Stats.Time_series.t;
    mutable running : bool;
  }

  let start sim ~period ~queue =
    if period <= 0. then invalid_arg "Queue_sampler.start: period must be positive";
    let s = { series = Stats.Time_series.create (); running = true } in
    let rec tick () =
      if s.running then begin
        Stats.Time_series.add s.series ~time:(Engine.Sim.now sim)
          ~value:(float_of_int (queue.Queue_disc.len_pkts ()));
        ignore (Engine.Sim.after sim period tick)
      end
    in
    ignore (Engine.Sim.after sim period tick);
    s

  let series s = s.series
  let stop s = s.running <- false
end
