(** Inline packet droppers: wrap a destination handler with a loss process.

    Used for idealized experiments (Figure 2's periodic loss, Figure 5's
    Bernoulli loss, the deterministic patterns of Figures 19-21) and for
    emulated "Internet path" noise. *)

(** [bernoulli rng ~p dest] drops each packet independently with
    probability [p]. *)
val bernoulli : Engine.Rng.t -> p:float -> Packet.handler -> Packet.handler

(** [periodic ~period dest] drops every [period]-th packet (the
    [period]-th, [2*period]-th, ...). [period >= 1]; [period = 1] drops
    everything. *)
val periodic : period:int -> Packet.handler -> Packet.handler

(** [periodic_rate ~rate dest] drops so the long-run loss fraction is
    [rate], spacing drops evenly ([rate = 0.] never drops). Uses an error
    accumulator, so non-integer periods are honored. *)
val periodic_rate : rate:float -> Packet.handler -> Packet.handler

(** [time_varying ~schedule now dest]: [schedule now] returns the current
    target loss fraction; drops are spaced evenly at that fraction. Used for
    Figure 2's 1% - 10% - 0.5% phases. *)
val time_varying :
  schedule:(float -> float) -> now:(unit -> float) -> Packet.handler -> Packet.handler

(** [gilbert rng ~p_gb ~p_bg ~loss_good ~loss_bad now dest]: two-state
    Gilbert-Elliott burst-loss channel. State flips are evaluated per
    packet: good->bad with probability [p_gb], bad->good with [p_bg]; the
    loss probability is [loss_good] or [loss_bad] accordingly. *)
val gilbert :
  Engine.Rng.t ->
  p_gb:float ->
  p_bg:float ->
  loss_good:float ->
  loss_bad:float ->
  Packet.handler ->
  Packet.handler

(** [custom ~drop dest] drops packets for which [drop pkt] is [true]. *)
val custom : drop:(Packet.t -> bool) -> Packet.handler -> Packet.handler

(** [counted dest] returns the wrapped handler plus a counter of packets
    that passed through it. Place one before and one after a dropper to
    measure the realized loss fraction. *)
val counted : Packet.handler -> Packet.handler * (unit -> int)
