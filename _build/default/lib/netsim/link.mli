(** Unidirectional link: a queue discipline feeding a transmitter with a
    fixed bandwidth and propagation delay.

    Packets are serialized one at a time at [bandwidth] bits/s; each then
    propagates for [delay] seconds before delivery to the destination
    handler, so the link pipelines (a packet can be in flight while the next
    is serializing), like a real link and like ns-2's DelayLink. *)

type t

(** [create sim ~bandwidth ~delay ~queue ()] makes a link. Set the
    destination with [set_dest] before sending. *)
val create :
  Engine.Sim.t ->
  bandwidth:float (** bits/s *) ->
  delay:float (** seconds *) ->
  queue:Queue_disc.t ->
  unit ->
  t

val set_dest : t -> Packet.handler -> unit

(** The currently installed destination ([ignore] until set). *)
val current_dest : t -> Packet.handler

(** [send t pkt] offers the packet to the queue; it is dropped if the
    discipline rejects it (drop listeners fire). *)
val send : t -> Packet.t -> unit

(** [on_drop t f] registers a listener called with each dropped packet. *)
val on_drop : t -> Packet.handler -> unit

val queue : t -> Queue_disc.t
val bandwidth : t -> float
val delay : t -> float

(** Bytes handed to the destination so far. *)
val delivered_bytes : t -> int

(** [utilization t ~duration] is delivered bits over capacity in
    [duration] seconds. *)
val utilization : t -> duration:float -> float

(** [busy_time t] is the cumulative serialization time. *)
val busy_time : t -> float
