type stats = {
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_queued : int;
}

type t = {
  enqueue : Packet.t -> bool;
  dequeue : unit -> Packet.t option;
  len_pkts : unit -> int;
  len_bytes : unit -> int;
  stats : stats;
}

let make_stats () = { arrivals = 0; drops = 0; departures = 0; bytes_queued = 0 }

let drop_rate t =
  if t.stats.arrivals = 0 then 0.
  else float_of_int t.stats.drops /. float_of_int t.stats.arrivals
