type t = {
  sim : Engine.Sim.t;
  bandwidth : float;
  delay : float;
  queue : Queue_disc.t;
  mutable dest : Packet.handler;
  mutable busy : bool;
  mutable drop_listeners : Packet.handler list;
  mutable delivered_bytes : int;
  mutable busy_time : float;
}

let create sim ~bandwidth ~delay ~queue () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  {
    sim;
    bandwidth;
    delay;
    queue;
    dest = ignore;
    busy = false;
    drop_listeners = [];
    delivered_bytes = 0;
    busy_time = 0.;
  }

let set_dest t handler = t.dest <- handler
let current_dest t = t.dest
let on_drop t f = t.drop_listeners <- f :: t.drop_listeners
let queue t = t.queue
let bandwidth t = t.bandwidth
let delay t = t.delay
let delivered_bytes t = t.delivered_bytes
let busy_time t = t.busy_time

let utilization t ~duration =
  if duration <= 0. then 0.
  else 8. *. float_of_int t.delivered_bytes /. (t.bandwidth *. duration)

(* Serialize the head-of-line packet; at end of serialization start the next
   one and schedule the propagation-delayed delivery. *)
let rec start_tx t =
  match t.queue.Queue_disc.dequeue () with
  | None -> t.busy <- false
  | Some pkt ->
      t.busy <- true;
      let tx = Engine.Units.tx_time ~bits_per_s:t.bandwidth ~bytes:pkt.Packet.size in
      t.busy_time <- t.busy_time +. tx;
      ignore
        (Engine.Sim.after t.sim tx (fun () ->
             t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
             if t.delay > 0. then
               ignore (Engine.Sim.after t.sim t.delay (fun () -> t.dest pkt))
             else t.dest pkt;
             start_tx t))

let send t pkt =
  if t.queue.Queue_disc.enqueue pkt then begin
    if not t.busy then start_tx t
  end
  else List.iter (fun f -> f pkt) t.drop_listeners
