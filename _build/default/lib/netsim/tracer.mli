(** ns-2-style packet event tracing.

    A tracer records enqueue/dequeue/drop/receive events with timestamps
    and packet identity, for debugging protocol dynamics or exporting
    traces. Attach to a {!Link} with {!attach_link}, or record manually.

    Event codes follow ns-2's trace format: [`Enqueue] "+", [`Dequeue] "-",
    [`Drop] "d", [`Receive] "r". *)

type event_kind = Enqueue | Dequeue | Drop | Receive

type event = {
  time : float;
  kind : event_kind;
  flow : int;
  seq : int;
  size : int;
  pkt_id : int;
}

type t

(** [create now] makes an empty tracer; [limit] (default 1_000_000) caps
    stored events to bound memory — older events are retained, new ones
    dropped once full ([truncated t] reports if that happened). *)
val create : ?limit:int -> (unit -> float) -> t

(** [record t kind pkt] appends an event. *)
val record : t -> event_kind -> Packet.t -> unit

(** [attach_link t link] records [Drop] for packets rejected by the link's
    queue and [Receive] when the link delivers. Must be called before other
    [Link.set_dest]/[on_drop] wiring is finalized downstream: it wraps the
    link's current destination. *)
val attach_link : t -> Link.t -> unit

val events : t -> event list
val n_events : t -> int
val truncated : t -> bool

(** [filter t ~flow] is the events of one flow, in order. *)
val filter : t -> flow:int -> event list

(** [pp_event ppf e] prints one event in ns-2 trace style:
    ["<code> <time> <flow> <seq> <size> <id>"]. *)
val pp_event : Format.formatter -> event -> unit

(** [write t path] writes all events to a file, one per line. *)
val write : t -> string -> unit
