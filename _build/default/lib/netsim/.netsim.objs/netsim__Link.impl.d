lib/netsim/link.ml: Engine List Packet Queue_disc
