lib/netsim/dumbbell.ml: Droptail Engine Hashtbl Link Option Packet Printf Queue_disc Red
