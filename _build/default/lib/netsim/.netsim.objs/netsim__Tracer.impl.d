lib/netsim/tracer.ml: Format Fun Link List Packet
