lib/netsim/parking_lot.mli: Engine Link Packet Queue_disc
