lib/netsim/red.mli: Queue_disc
