lib/netsim/link.mli: Engine Packet Queue_disc
