lib/netsim/flowmon.ml: Engine Packet Queue_disc Stats
