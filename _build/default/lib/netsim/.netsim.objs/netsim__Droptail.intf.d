lib/netsim/droptail.mli: Queue_disc
