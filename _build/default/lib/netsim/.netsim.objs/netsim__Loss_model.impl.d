lib/netsim/loss_model.ml: Engine
