lib/netsim/flowmon.mli: Engine Packet Queue_disc Stats
