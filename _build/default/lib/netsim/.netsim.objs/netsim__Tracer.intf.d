lib/netsim/tracer.mli: Format Link Packet
