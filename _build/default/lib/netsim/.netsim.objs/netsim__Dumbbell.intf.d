lib/netsim/dumbbell.mli: Engine Link Packet Red
