lib/netsim/droptail.ml: Packet Queue Queue_disc
