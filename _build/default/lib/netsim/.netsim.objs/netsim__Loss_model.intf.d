lib/netsim/loss_model.mli: Engine Packet
