lib/netsim/red.ml: Float List Packet Queue Queue_disc
