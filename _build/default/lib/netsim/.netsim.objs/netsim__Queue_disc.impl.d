lib/netsim/queue_disc.ml: Packet
