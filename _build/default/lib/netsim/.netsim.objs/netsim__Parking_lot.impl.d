lib/netsim/parking_lot.ml: Array Engine Hashtbl Link Packet Printf Queue_disc
