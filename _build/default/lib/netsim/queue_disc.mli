(** Queue discipline interface shared by DropTail and RED.

    A discipline owns the buffered packets; the link drives it with
    [enqueue]/[dequeue]. Implementations record aggregate statistics. *)

type stats = {
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_queued : int;  (** current occupancy in bytes *)
}

type t = {
  enqueue : Packet.t -> bool;
      (** [true] if accepted, [false] if the packet was dropped *)
  dequeue : unit -> Packet.t option;
  len_pkts : unit -> int;
  len_bytes : unit -> int;
  stats : stats;
}

val make_stats : unit -> stats

(** [drop_rate t] is drops / arrivals (0. before any arrival). *)
val drop_rate : t -> float
