lib/baselines/echo_sink.ml: Engine Netsim
