lib/baselines/tear.mli: Engine Netsim
