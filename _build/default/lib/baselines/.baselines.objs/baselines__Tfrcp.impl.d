lib/baselines/tfrcp.ml: Engine Float Netsim Tfrc
