lib/baselines/rap.mli: Engine Netsim
