lib/baselines/tear.ml: Engine Float Netsim
