lib/baselines/rap.ml: Engine Float Netsim
