lib/baselines/tfrcp.mli: Engine Netsim
