lib/baselines/echo_sink.mli: Engine Netsim
