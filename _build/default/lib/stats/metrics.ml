let cov_of_bins bins =
  let r = Running.of_array bins in
  Running.cov r

let cov_at_timescale series ~t0 ~t1 ~tau =
  cov_of_bins (Time_series.binned series ~t0 ~t1 ~bin:tau)

let equivalence_of_bins a b =
  let n = min (Array.length a) (Array.length b) in
  let sum = ref 0. and defined = ref 0 in
  for i = 0 to n - 1 do
    let x = a.(i) and y = b.(i) in
    if x > 0. || y > 0. then begin
      incr defined;
      if x > 0. && y > 0. then sum := !sum +. Float.min (x /. y) (y /. x)
      (* one side zero: equivalence contribution is 0 *)
    end
  done;
  if !defined = 0 then None else Some (!sum /. float_of_int !defined)

let equivalence_ratio a b ~t0 ~t1 ~tau =
  equivalence_of_bins
    (Time_series.binned a ~t0 ~t1 ~bin:tau)
    (Time_series.binned b ~t0 ~t1 ~bin:tau)

let mean_of_defined l =
  let defined = List.filter_map Fun.id l in
  match defined with
  | [] -> None
  | _ ->
      let sum = List.fold_left ( +. ) 0. defined in
      Some (sum /. float_of_int (List.length defined))

let mean_pairwise_equivalence series ~t0 ~t1 ~tau =
  let binned = List.map (fun s -> Time_series.binned s ~t0 ~t1 ~bin:tau) series in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> equivalence_of_bins x y) rest @ pairs rest
  in
  mean_of_defined (pairs binned)

let mean_cross_equivalence xs ys ~t0 ~t1 ~tau =
  let bx = List.map (fun s -> Time_series.binned s ~t0 ~t1 ~bin:tau) xs in
  let by = List.map (fun s -> Time_series.binned s ~t0 ~t1 ~bin:tau) ys in
  let all =
    List.concat_map (fun x -> List.map (fun y -> equivalence_of_bins x y) by) bx
  in
  mean_of_defined all
