type t = { mean : float; half_width : float; n : int }

(* Two-sided Student's t critical values by degrees of freedom; rows for the
   confidence levels we support. Values beyond df=30 use the normal
   approximation. *)
let t_table_90 =
  [| 6.314; 2.920; 2.353; 2.132; 2.015; 1.943; 1.895; 1.860; 1.833; 1.812;
     1.796; 1.782; 1.771; 1.761; 1.753; 1.746; 1.740; 1.734; 1.729; 1.725;
     1.721; 1.717; 1.714; 1.711; 1.708; 1.706; 1.703; 1.701; 1.699; 1.697 |]

let t_table_95 =
  [| 12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
     2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
     2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042 |]

let t_table_99 =
  [| 63.657; 9.925; 5.841; 4.604; 4.032; 3.707; 3.499; 3.355; 3.250; 3.169;
     3.106; 3.055; 3.012; 2.977; 2.947; 2.921; 2.898; 2.878; 2.861; 2.845;
     2.831; 2.819; 2.807; 2.797; 2.787; 2.779; 2.771; 2.763; 2.756; 2.750 |]

let critical ~level ~df =
  let table, z =
    if Float.abs (level -. 0.90) < 1e-9 then (t_table_90, 1.645)
    else if Float.abs (level -. 0.95) < 1e-9 then (t_table_95, 1.960)
    else if Float.abs (level -. 0.99) < 1e-9 then (t_table_99, 2.576)
    else invalid_arg "Ci: unsupported confidence level"
  in
  if df < 1 then 0.
  else if df <= Array.length table then table.(df - 1)
  else z

let of_samples ?(level = 0.90) xs =
  let r = Running.of_array xs in
  let n = Running.count r in
  let mean = Running.mean r in
  if n < 2 then { mean; half_width = 0.; n }
  else begin
    let se = Running.stddev r /. sqrt (float_of_int n) in
    { mean; half_width = critical ~level ~df:(n - 1) *. se; n }
  end

let lower t = t.mean -. t.half_width
let upper t = t.mean +. t.half_width
let pp ppf t = Format.fprintf ppf "%.4f +/- %.4f (n=%d)" t.mean t.half_width t.n
