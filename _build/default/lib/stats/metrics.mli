(** The paper's comparison metrics (Section 4.1.1).

    - [cov_at_timescale]: coefficient of variation of the send-rate time
      series R_{tau,F} — equation (2); lower is smoother.
    - [equivalence_ratio]: mean of e_{tau,a,b}(t) = min(Ra/Rb, Rb/Ra) over
      bins where at least one flow sent data — equation (3); closer to 1 is
      fairer. *)

(** [cov_of_bins bins] is population-stddev / mean of the bin values;
    0. if the mean is 0. *)
val cov_of_bins : float array -> float

(** [cov_at_timescale series ~t0 ~t1 ~tau] bins the series at width [tau]
    and returns the CoV of the resulting per-bin totals. *)
val cov_at_timescale : Time_series.t -> t0:float -> t1:float -> tau:float -> float

(** [equivalence_of_bins a b] implements equation (3) on two equal-length
    binned series: for each index where [a.(i) > 0 || b.(i) > 0] take
    [min (a/b) (b/a)] (0. if one side is 0), and return the mean of the
    defined elements. Returns [None] when no element is defined. *)
val equivalence_of_bins : float array -> float array -> float option

(** [equivalence_ratio a b ~t0 ~t1 ~tau] bins both series at [tau] over the
    window and applies [equivalence_of_bins]. *)
val equivalence_ratio :
  Time_series.t -> Time_series.t -> t0:float -> t1:float -> tau:float -> float option

(** [mean_pairwise_equivalence series ~t0 ~t1 ~tau] is the average
    equivalence ratio over all unordered pairs drawn from [series]; used for
    the TCP-vs-TCP and TFRC-vs-TFRC curves of Figure 9. *)
val mean_pairwise_equivalence :
  Time_series.t list -> t0:float -> t1:float -> tau:float -> float option

(** [mean_cross_equivalence xs ys ~t0 ~t1 ~tau] averages the equivalence
    ratio over all (x, y) pairs with [x] from [xs] and [y] from [ys]. *)
val mean_cross_equivalence :
  Time_series.t list ->
  Time_series.t list ->
  t0:float ->
  t1:float ->
  tau:float ->
  float option
