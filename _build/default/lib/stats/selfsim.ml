let aggregate counts m =
  if m <= 0 then invalid_arg "Selfsim.aggregate: m must be positive";
  let n = Array.length counts / m in
  Array.init n (fun i ->
      let s = ref 0. in
      for k = 0 to m - 1 do
        s := !s +. counts.((i * m) + k)
      done;
      !s)

let hurst_variance_time ?(min_m = 1) counts =
  if Array.length counts < 16 then
    invalid_arg "Selfsim.hurst_variance_time: need at least 16 points";
  (* Normalized variance of the aggregated-and-averaged series. *)
  let var_at m =
    let agg = aggregate counts m in
    let mean_agg = Array.map (fun v -> v /. float_of_int m) agg in
    Running.population_variance (Running.of_array mean_agg)
  in
  let points = ref [] in
  let m = ref 1 in
  while Array.length counts / !m >= 8 do
    if !m >= min_m then begin
      let v = var_at !m in
      if v > 0. then points := (log (float_of_int !m), log v) :: !points
    end;
    m := !m * 2
  done;
  match !points with
  | [] | [ _ ] -> 0.5
  | pts ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
      let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
      let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
      let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
      let slope = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
      let h = 1. +. (slope /. 2.) in
      Float.max 0.5 (Float.min 1.0 h)
