(** Confidence intervals over repeated simulation runs.

    The paper reports means of 10-14 runs with 90% confidence intervals
    (Figure 9 and others); this module provides the matching computation
    using Student's t critical values. *)

type t = { mean : float; half_width : float; n : int }

(** [of_samples ?level xs] computes the mean and the half-width of the
    confidence interval at [level] (default [0.90]). With fewer than two
    samples the half-width is 0. Supported levels: 0.90, 0.95, 0.99. *)
val of_samples : ?level:float -> float array -> t

val lower : t -> float
val upper : t -> float
val pp : Format.formatter -> t -> unit
