(** Order statistics on float arrays. *)

(** [quantile a q] for [q] in [\[0, 1\]] using linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array. *)
val quantile : float array -> float -> float

val median : float array -> float

(** [percentiles a qs] evaluates several quantiles with a single sort. *)
val percentiles : float array -> float list -> float list
