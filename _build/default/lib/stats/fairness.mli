(** Fairness indices over per-flow allocations. *)

(** [jain xs] is Jain's fairness index: [(sum x)^2 / (n * sum x^2)].
    1.0 means perfectly equal shares; 1/n means one flow has everything.
    Raises [Invalid_argument] on an empty list. *)
val jain : float list -> float

(** [min_max_ratio xs] is [min/max] of the allocations (0. if max is 0). *)
val min_max_ratio : float list -> float
