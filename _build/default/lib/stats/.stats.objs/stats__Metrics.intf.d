lib/stats/metrics.mli: Time_series
