lib/stats/ci.ml: Array Float Format Running
