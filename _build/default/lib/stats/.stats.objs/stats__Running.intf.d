lib/stats/running.mli:
