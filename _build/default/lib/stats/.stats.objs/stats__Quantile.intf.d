lib/stats/quantile.mli:
