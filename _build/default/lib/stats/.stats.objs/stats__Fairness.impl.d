lib/stats/fairness.ml: Float List
