lib/stats/time_series.ml: Array
