lib/stats/time_series.mli:
