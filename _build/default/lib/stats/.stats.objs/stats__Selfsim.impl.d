lib/stats/selfsim.ml: Array Float List Running
