lib/stats/metrics.ml: Array Float Fun List Running Time_series
