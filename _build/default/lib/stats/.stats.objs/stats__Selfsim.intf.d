lib/stats/selfsim.mli:
