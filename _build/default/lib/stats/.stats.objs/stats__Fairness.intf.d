lib/stats/fairness.mli:
