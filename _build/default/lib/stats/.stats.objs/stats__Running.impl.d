lib/stats/running.ml: Array Float
