(** Self-similarity diagnostics for traffic processes (variance-time
    method).

    For a second-order self-similar process with Hurst parameter H, the
    variance of the m-aggregated series decays as m^(2H-2); estimating the
    slope of log Var(X^(m)) against log m gives H. Poisson-like traffic has
    H ~ 0.5; aggregated heavy-tailed ON/OFF sources (the paper's
    Section 4.1.3 background, after [WTSW95]) have H well above it. *)

(** [hurst_variance_time ?min_m counts] estimates H from a base series of
    equal-bin counts by aggregating at levels 1, 2, 4, ... while at least 8
    aggregated points remain, and least-squares fitting the log-log
    variance decay. [min_m] (default 1) excludes aggregation levels below
    it from the fit: set it so [min_m * bin] exceeds the sources'
    short-range correlation timescale (e.g. the ON/OFF cycle), which would
    otherwise bias H upward. Requires at least 16 points; result clamped
    to [0.5, 1.0]. *)
val hurst_variance_time : ?min_m:int -> float array -> float

(** [aggregate counts m] sums consecutive groups of [m] entries (dropping
    the ragged tail). *)
val aggregate : float array -> int -> float array
