let jain = function
  | [] -> invalid_arg "Fairness.jain: empty"
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0. xs in
      let s2 = List.fold_left (fun a x -> a +. (x *. x)) 0. xs in
      if s2 = 0. then 1. else s *. s /. (n *. s2)

let min_max_ratio = function
  | [] -> invalid_arg "Fairness.min_max_ratio: empty"
  | xs ->
      let mn = List.fold_left Float.min infinity xs in
      let mx = List.fold_left Float.max neg_infinity xs in
      if mx <= 0. then 0. else mn /. mx
