(** Axis-labelled ASCII line plots for experiment output — a step up from
    sparklines when the shape of a series matters (figure 2's estimator
    tracking, figure 20's rate collapse). *)

(** [series ppf ~title ~ylabel ?height ?width points] renders one (x, y)
    series as a dot plot with a y-axis scale and x-range footer. Points
    must be non-empty; x ascending is assumed for the footer but not
    required for rendering. *)
val series :
  Format.formatter ->
  title:string ->
  ylabel:string ->
  ?height:int ->
  ?width:int ->
  (float * float) list ->
  unit

(** [multi ppf ~title ~ylabel ?height ?width named_series] overlays up to
    five series, each drawn with its own glyph, with a legend line. *)
val multi :
  Format.formatter ->
  title:string ->
  ylabel:string ->
  ?height:int ->
  ?width:int ->
  (string * (float * float) list) list ->
  unit
