let glyphs = [| '*'; '+'; 'o'; 'x'; '#' |]

let bounds named_series =
  let xs = List.concat_map (fun (_, pts) -> List.map fst pts) named_series in
  let ys = List.concat_map (fun (_, pts) -> List.map snd pts) named_series in
  match (xs, ys) with
  | [], _ | _, [] -> invalid_arg "Plot: empty series"
  | _ ->
      let min_l = List.fold_left Float.min infinity in
      let max_l = List.fold_left Float.max neg_infinity in
      (min_l xs, max_l xs, min_l ys, max_l ys)

let render ppf ~title ~ylabel ~height ~width named_series =
  let x0, x1, y0, y1 = bounds named_series in
  let xspan = if x1 > x0 then x1 -. x0 else 1. in
  let yspan = if y1 > y0 then y1 -. y0 else 1. in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si (_, pts) ->
      let glyph = glyphs.(si mod Array.length glyphs) in
      List.iter
        (fun (x, y) ->
          let col =
            int_of_float ((x -. x0) /. xspan *. float_of_int (width - 1))
          in
          let row =
            height - 1
            - int_of_float ((y -. y0) /. yspan *. float_of_int (height - 1))
          in
          if row >= 0 && row < height && col >= 0 && col < width then
            grid.(row).(col) <- glyph)
        pts)
    named_series;
  Format.fprintf ppf "%s@." title;
  Array.iteri
    (fun row line ->
      let y_here =
        y1 -. (float_of_int row /. float_of_int (height - 1) *. yspan)
      in
      let label =
        if row = 0 || row = height - 1 || row = height / 2 then
          Printf.sprintf "%10.3g |" y_here
        else Printf.sprintf "%10s |" ""
      in
      Format.fprintf ppf "%s%s@." label (String.init width (Array.get line)))
    grid;
  Format.fprintf ppf "%10s +%s@." "" (String.make width '-');
  let left = Printf.sprintf "%.3g" x0 and right = Printf.sprintf "%.3g" x1 in
  let pad = max 1 (width - String.length left - String.length right) in
  Format.fprintf ppf "%10s  %s%s%s   (%s)@." "" left (String.make pad ' ')
    right ylabel;
  if List.length named_series > 1 then begin
    Format.fprintf ppf "%10s  " "";
    List.iteri
      (fun si (name, _) ->
        Format.fprintf ppf "%c = %s   " glyphs.(si mod Array.length glyphs) name)
      named_series;
    Format.fprintf ppf "@."
  end

let multi ppf ~title ~ylabel ?(height = 12) ?(width = 64) named_series =
  if named_series = [] || List.exists (fun (_, p) -> p = []) named_series then
    invalid_arg "Plot: empty series";
  render ppf ~title ~ylabel ~height ~width named_series

let series ppf ~title ~ylabel ?(height = 12) ?(width = 64) points =
  multi ppf ~title ~ylabel ~height ~width [ ("", points) ]
