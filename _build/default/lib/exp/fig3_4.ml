(* Dummynet profile: one flow through a 2 Mb/s pipe (250 KB/s, matching the
   figures' 0-300 KB/s axis), 30 ms base RTT, DropTail buffer swept. *)

let bandwidth = Engine.Units.mbps 2.
let rtt_base = 0.030

(* Run one flow over the Dummynet-like pipe and return its send-side
   series (shared by the CoV and trace views). *)
let run_flow ~rtt_gain ~delay_gain ~buffer ~duration =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create sim ~bandwidth ~delay:0.005
      ~queue:(Netsim.Dumbbell.Droptail_q buffer) ()
  in
  let config = Tfrc.Tfrc_config.default ~rtt_gain ~delay_gain () in
  let h = Scenario.attach_tfrc db ~flow:1 ~rtt_base ~config in
  Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.;
  Engine.Sim.run sim ~until:duration;
  Netsim.Flowmon.series h.tfrc_send_mon

let oscillation_with ~rtt_gain ~delay_gain ~buffer ~duration =
  let series = run_flow ~rtt_gain ~delay_gain ~buffer ~duration in
  let t0 = duration /. 2. and t1 = duration in
  ( Stats.Metrics.cov_at_timescale series ~t0 ~t1 ~tau:0.2,
    Stats.Time_series.mean_rate series ~t0 ~t1 )

let oscillation ~delay_gain ~buffer ~duration =
  oscillation_with ~rtt_gain:0.05 ~delay_gain ~buffer ~duration

let rate_trace ~delay_gain ~buffer ~duration =
  let series = run_flow ~rtt_gain:0.05 ~delay_gain ~buffer ~duration in
  Stats.Time_series.rates series ~t0:(duration /. 2.) ~t1:duration ~bin:0.5

let buffers = [ 2; 8; 32; 64 ]

let run ~full ~seed:_ ppf =
  let duration = if full then 180. else 60. in
  let section title delay_gain =
    Format.fprintf ppf "%s@.@." title;
    let rows =
      List.map
        (fun buffer ->
          let cov, mean = oscillation ~delay_gain ~buffer ~duration in
          [
            string_of_int buffer;
            Table.f2 (mean /. 1e3);
            Table.f3 cov;
            Table.sparkline (rate_trace ~delay_gain ~buffer ~duration);
          ])
        buffers
    in
    Table.print ppf
      ~header:[ "buffer (pkts)"; "mean rate KB/s"; "CoV(0.2s)"; "rate trace" ]
      rows;
    Format.fprintf ppf "@."
  in
  section
    "Figure 3: TFRC over Dummynet, EWMA weight 0.05, no interpacket-spacing \
     adjustment"
    false;
  section "Figure 4: same, with the sqrt(R0)/M interpacket-spacing adjustment"
    true;
  (* Headline comparison at the large-buffer end, where Figure 3's
     oscillations are worst. *)
  let c3, _ = oscillation ~delay_gain:false ~buffer:64 ~duration in
  let c4, _ = oscillation ~delay_gain:true ~buffer:64 ~duration in
  Format.fprintf ppf
    "oscillation (CoV at 64-pkt buffer): without adjustment %.3f, with \
     adjustment %.3f -> damped %s@."
    c3 c4
    (if c4 < c3 then "yes" else "NO")
