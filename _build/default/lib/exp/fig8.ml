let section ppf ~queue ~title ~duration ~seed =
  let bandwidth = Engine.Units.mbps 15. in
  let params =
    {
      (Scenario.default_mixed ()) with
      bandwidth;
      queue = Scenario.scaled_queue queue ~bandwidth;
      n_tcp = 16;
      n_tfrc = 16;
      duration;
      warmup = duration /. 2.;
      seed;
    }
  in
  let r = Scenario.run_mixed params in
  Format.fprintf ppf "%s@.@." title;
  let t0 = r.t0 and t1 = r.t1 in
  let bins s = Stats.Time_series.binned s ~t0 ~t1 ~bin:0.15 in
  let show label (f : Scenario.flow_stats) =
    let b = Array.map (fun v -> v /. 1e3 /. 0.15) (bins f.recv_series) in
    let cov = Stats.Metrics.cov_of_bins b in
    Format.fprintf ppf "%-7s CoV=%.2f %s@." label cov
      (Table.sparkline (Array.sub b 0 (min 100 (Array.length b))))
  in
  List.iteri
    (fun i f -> if i < 4 then show (Printf.sprintf "TFRC %d" (i + 1)) f)
    r.tfrc_flows;
  List.iteri
    (fun i f -> if i < 4 then show (Printf.sprintf "TCP %d" (i + 1)) f)
    r.tcp_flows;
  let mean_cov flows =
    Scenario.mean
      (List.map
         (fun (f : Scenario.flow_stats) ->
           Stats.Metrics.cov_of_bins (bins f.recv_series))
         flows)
  in
  let tfrc_cov = mean_cov r.tfrc_flows and tcp_cov = mean_cov r.tcp_flows in
  Format.fprintf ppf
    "drops in window: %d; mean CoV over 0.15s bins: TFRC %.2f vs TCP %.2f -> \
     TFRC smoother: %s@.@."
    (List.length (List.filter (fun t -> t >= t0) r.drop_times))
    tfrc_cov tcp_cov
    (if tfrc_cov < tcp_cov then "yes" else "NO");
  (tfrc_cov, tcp_cov)

let run ~full ~seed ppf =
  let duration = if full then 30. else 20. in
  Format.fprintf ppf
    "Figure 8: per-flow throughput in 0.15 s bins, 16 TCP + 16 TFRC, 15 \
     Mb/s (first 4 flows of each shown, second half of the run)@.@.";
  let _ =
    section ppf ~queue:`Red ~title:"RED queue" ~duration ~seed
  in
  let _ =
    section ppf ~queue:`Droptail ~title:"DropTail queue" ~duration ~seed
  in
  ()
