lib/exp/increase_bound.ml: Format List Table Tfrc
