lib/exp/dataset.mli:
