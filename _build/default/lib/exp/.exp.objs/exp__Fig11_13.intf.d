lib/exp/fig11_13.mli: Format
