lib/exp/plot.ml: Array Float Format List Printf String
