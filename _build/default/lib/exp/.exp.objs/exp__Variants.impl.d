lib/exp/variants.ml: Engine Format List Scenario Stats Table Tcpsim
