lib/exp/fig14.ml: Array Engine Format List Netsim Scenario Stats Table Tcpsim Tfrc Traffic
