lib/exp/fig5.mli: Engine Format
