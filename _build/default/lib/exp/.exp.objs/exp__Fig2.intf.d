lib/exp/fig2.mli: Format
