lib/exp/phase_effects.ml: Engine Format List Netsim Scenario Stats Table Tcpsim Tfrc
