lib/exp/ablations.mli: Format
