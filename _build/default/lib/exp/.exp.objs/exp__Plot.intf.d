lib/exp/plot.mli: Format
