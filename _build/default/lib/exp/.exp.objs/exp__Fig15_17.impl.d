lib/exp/fig15_17.ml: Array Engine Format List Netsim Option Printf Scenario Stats Table Tcpsim Tfrc Traffic
