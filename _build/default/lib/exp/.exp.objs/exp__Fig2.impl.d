lib/exp/fig2.ml: Dataset Direct_path Engine Format List Netsim Option Plot Printf Table Tfrc
