lib/exp/variants.mli: Format
