lib/exp/fig3_4.mli: Format
