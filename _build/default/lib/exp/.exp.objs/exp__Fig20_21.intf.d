lib/exp/fig20_21.mli: Format
