lib/exp/fig7.ml: Array Engine Format List Scenario Stats Table
