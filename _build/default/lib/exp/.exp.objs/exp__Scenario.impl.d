lib/exp/scenario.ml: Engine Float List Netsim Stats Tcpsim Tfrc
