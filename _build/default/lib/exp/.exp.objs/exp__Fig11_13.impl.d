lib/exp/fig11_13.ml: Engine Format List Netsim Option Printf Scenario Stats Table Tcpsim Tfrc Traffic
