lib/exp/registry.mli: Format
