lib/exp/registry.ml: Ablations Fig11_13 Fig14 Fig15_17 Fig18 Fig19 Fig2 Fig20_21 Fig3_4 Fig5 Fig6 Fig7 Fig8 Fig9_10 Format Increase_bound List Phase_effects Traffic_model Variants
