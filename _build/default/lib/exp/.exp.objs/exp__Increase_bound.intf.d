lib/exp/increase_bound.mli: Format
