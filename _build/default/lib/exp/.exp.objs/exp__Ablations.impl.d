lib/exp/ablations.ml: Direct_path Engine Fig3_4 Format List Netsim Printf Scenario Stats Table Tcpsim Tfrc
