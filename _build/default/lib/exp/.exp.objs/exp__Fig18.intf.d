lib/exp/fig18.mli: Format
