lib/exp/traffic_model.mli: Format
