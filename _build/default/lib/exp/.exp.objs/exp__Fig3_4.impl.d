lib/exp/fig3_4.ml: Engine Format List Netsim Scenario Stats Table Tfrc
