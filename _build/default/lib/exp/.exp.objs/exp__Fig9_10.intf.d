lib/exp/fig9_10.mli: Format Stats
