lib/exp/fig8.ml: Array Engine Format List Printf Scenario Stats Table
