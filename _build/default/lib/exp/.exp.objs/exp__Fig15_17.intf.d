lib/exp/fig15_17.mli: Format Tcpsim
