lib/exp/fig9_10.ml: Array Dataset Engine Format List Netsim Option Scenario Stats Table
