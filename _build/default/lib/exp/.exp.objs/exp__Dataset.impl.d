lib/exp/dataset.ml: Filename Fun List Printf String Sys
