lib/exp/direct_path.ml: Engine Tfrc
