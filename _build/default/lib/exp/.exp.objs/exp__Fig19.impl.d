lib/exp/fig19.ml: Dataset Direct_path Engine Format List Scenario Table Tfrc
