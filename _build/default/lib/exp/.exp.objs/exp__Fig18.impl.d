lib/exp/fig18.ml: Array Engine Float Format List Stats Table Tfrc
