lib/exp/scenario.mli: Netsim Stats Tcpsim Tfrc
