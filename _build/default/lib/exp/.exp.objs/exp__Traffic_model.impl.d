lib/exp/traffic_model.ml: Engine Format List Netsim Stats Table Traffic
