lib/exp/fig8.mli: Format
