lib/exp/fig20_21.ml: Dataset Direct_path Engine Format List Plot Table Tfrc
