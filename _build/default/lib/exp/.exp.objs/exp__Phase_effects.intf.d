lib/exp/phase_effects.mli: Format
