lib/exp/fig6.mli: Format
