lib/exp/fig19.mli: Format
