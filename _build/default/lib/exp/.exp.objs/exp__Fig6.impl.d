lib/exp/fig6.ml: Engine Float Format List Printf Scenario Table
