lib/exp/fig7.mli: Format
