lib/exp/direct_path.mli: Engine Netsim Tfrc
