lib/exp/fig5.ml: Engine Float Format List Table Tfrc
