lib/exp/table.mli: Format
