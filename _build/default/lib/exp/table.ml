let print ppf ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  List.iter
    (fun r ->
      if List.length r <> cols then invalid_arg "Table.print: ragged row")
    rows;
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render row =
    String.concat "  "
      (List.mapi
         (fun i cell -> Printf.sprintf "%*s" (List.nth widths i) cell)
         row)
  in
  Format.fprintf ppf "%s@." (render header);
  Format.fprintf ppf "%s@."
    (String.concat "  " (List.map (fun w -> String.make w '-') widths));
  List.iter (fun row -> Format.fprintf ppf "%s@." (render row)) rows

let f2 v = Printf.sprintf "%.2f" v
let f3 v = Printf.sprintf "%.3f" v
let f4 v = Printf.sprintf "%.4f" v

let series ppf ~label ?(fmt = f2) pairs =
  Format.fprintf ppf "%s:@." label;
  List.iteri
    (fun i (t, v) ->
      Format.fprintf ppf " %6.2f:%-8s" t (fmt v);
      if (i + 1) mod 6 = 0 then Format.fprintf ppf "@.")
    pairs;
  if List.length pairs mod 6 <> 0 then Format.fprintf ppf "@."

let sparkline values =
  let blocks = [| " "; "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                  "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                  "\xe2\x96\x87"; "\xe2\x96\x88" |] in
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let lo = Array.fold_left Float.min infinity values in
    let hi = Array.fold_left Float.max neg_infinity values in
    let buf = Buffer.create (n * 3) in
    Array.iter
      (fun v ->
        let idx =
          if hi <= lo then 4
          else int_of_float ((v -. lo) /. (hi -. lo) *. 8.)
        in
        Buffer.add_string buf blocks.(max 0 (min 8 idx)))
      values;
    Buffer.contents buf
  end
