(** Minimal aligned ASCII tables and series printers for experiment
    output. *)

(** [print ppf ~header rows] renders a left-padded table; every row must
    have the header's arity. *)
val print : Format.formatter -> header:string list -> string list list -> unit

(** [series ppf ~label pairs] prints "label: t=v t=v ..." rows of a
    (time, value) series, one pair per column, wrapped. *)
val series :
  Format.formatter -> label:string -> ?fmt:(float -> string) -> (float * float) list -> unit

val f2 : float -> string
val f3 : float -> string
val f4 : float -> string

(** [sparkline values] maps values to unicode block characters for a quick
    visual of a series' shape. *)
val sparkline : float array -> string
