(** Ablation studies over TFRC's design choices (beyond the paper's own
    figures, but directly motivated by its Section 3 discussion):

    - loss-interval history size n (the paper argues n=8 is the knee),
    - history discounting on/off (recovery speed after congestion ends),
    - RTT EWMA gain x interpacket-spacing stabilization (oscillations),
    - expedited feedback on loss events on/off (response time),
    - the Section 4.1 burstiness aid (two packets every two intervals)
      against a small-window TCP competitor,
    - ECN marking vs dropping at a RED bottleneck (Section 7 outlook). *)

val run : full:bool -> seed:int -> Format.formatter -> unit
