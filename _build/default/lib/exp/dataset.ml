let dir () =
  match Sys.getenv_opt "TFRC_DATA_DIR" with
  | Some d when d <> "" -> Some d
  | _ -> None

let enabled () = dir () <> None

let write_series ~name ~columns rows =
  match dir () with
  | None -> ()
  | Some d -> (
      let arity = List.length columns in
      List.iter
        (fun row ->
          if List.length row <> arity then
            invalid_arg "Dataset.write_series: ragged row")
        rows;
      let path = Filename.concat d (name ^ ".dat") in
      try
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc ("# " ^ String.concat " " columns ^ "\n");
            List.iter
              (fun row ->
                output_string oc
                  (String.concat " " (List.map (Printf.sprintf "%.6g") row));
                output_char oc '\n')
              rows)
      with Sys_error msg ->
        Printf.eprintf "tfrc: could not write %s: %s\n%!" path msg)

let write_xy ~name ~x ~y pairs =
  write_series ~name ~columns:[ x; y ] (List.map (fun (a, b) -> [ a; b ]) pairs)
