(** Shared plumbing for the paper's experiments: wiring protocol agents
    onto a dumbbell, monitored on both the send and receive side, plus the
    mixed TCP/TFRC workload used by Figures 6-10. *)

type tcp_handle = {
  tcp_sender : Tcpsim.Tcp_sender.t;
  tcp_sink : Tcpsim.Tcp_sink.t;
  tcp_send_mon : Netsim.Flowmon.t;  (** packets leaving the sender *)
  tcp_recv_mon : Netsim.Flowmon.t;  (** packets arriving at the sink *)
}

type tfrc_handle = {
  tfrc_sender : Tfrc.Tfrc_sender.t;
  tfrc_receiver : Tfrc.Tfrc_receiver.t;
  tfrc_send_mon : Netsim.Flowmon.t;
  tfrc_recv_mon : Netsim.Flowmon.t;
}

(** [attach_tcp db ~flow ~rtt_base ~config] registers the flow on the
    dumbbell and wires a monitored sender/sink pair. Call
    [Tcpsim.Tcp_sender.start] on the result. *)
val attach_tcp :
  Netsim.Dumbbell.t ->
  flow:int ->
  rtt_base:float ->
  config:Tcpsim.Tcp_common.config ->
  tcp_handle

val attach_tfrc :
  Netsim.Dumbbell.t ->
  flow:int ->
  rtt_base:float ->
  config:Tfrc.Tfrc_config.t ->
  tfrc_handle

(** Queue sizing rule used across the simulation figures: the buffer scales
    with bandwidth (about two-thirds of the 100 ms bandwidth-delay product,
    matching the paper's 100-packet buffer at 15 Mb/s), with RED thresholds
    at 1/10 and 1/2 of the buffer (the Figure 9 footnote parameters). *)
val scaled_queue : [ `Droptail | `Red ] -> bandwidth:float -> Netsim.Dumbbell.queue_spec

(** Parameters for the standard mixed TCP/TFRC dumbbell experiment. *)
type mixed_params = {
  bandwidth : float;  (** bits/s *)
  delay : float;  (** bottleneck one-way propagation, s *)
  queue : Netsim.Dumbbell.queue_spec;
  n_tcp : int;
  n_tfrc : int;
  rtt_min : float;  (** per-flow base RTTs drawn uniformly *)
  rtt_max : float;
  start_spread : float;  (** starts drawn uniformly in [0, spread] *)
  duration : float;
  warmup : float;  (** measurement window is [warmup, duration] *)
  seed : int;
  tcp_config : Tcpsim.Tcp_common.config;
  tfrc_config : Tfrc.Tfrc_config.t;
}

val default_mixed : unit -> mixed_params

type flow_stats = {
  flow_id : int;
  mean_recv_rate : float;  (** bytes/s over the measurement window *)
  recv_series : Stats.Time_series.t;
  send_series : Stats.Time_series.t;
}

type mixed_result = {
  tcp_flows : flow_stats list;
  tfrc_flows : flow_stats list;
  utilization : float;
  drop_rate : float;
  fair_share : float;  (** bytes/s per flow at perfect fairness *)
  t0 : float;  (** measurement window *)
  t1 : float;
  drop_times : float list;  (** times of forward-bottleneck drops *)
}

val run_mixed : mixed_params -> mixed_result

(** [normalized_throughputs r] maps each flow's mean receive rate to a
    multiple of the fair share: (tcp list, tfrc list). *)
val normalized_throughputs : mixed_result -> float list * float list

val mean : float list -> float
