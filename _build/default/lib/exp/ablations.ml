(* Each ablation isolates one knob of the TFRC design and measures the
   axis it is supposed to affect. *)

(* Shared harness: one TFRC with the given config vs one SACK TCP over a
   15 Mb/s RED dumbbell; returns (normalized TFRC rate, normalized TCP
   rate, TFRC CoV at 0.5 s). *)
let versus_tcp ~config ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let db =
    Netsim.Dumbbell.create sim ~bandwidth ~delay:0.025
      ~queue:(Scenario.scaled_queue `Red ~bandwidth) ()
  in
  (* Background load so a meaningful loss process exists. *)
  for i = 1 to 6 do
    let h =
      Scenario.attach_tcp db ~flow:(10 + i)
        ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
        ~config:Tcpsim.Tcp_common.ns_sack
    in
    Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.)
  done;
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:(Engine.Rng.float rng 2.);
  let tfrc =
    Scenario.attach_tfrc db ~flow:2
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:(Engine.Rng.float rng 2.);
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 3. and t1 = duration in
  let fair = Engine.Units.bps_to_byte_rate bandwidth /. 8. in
  ( Netsim.Flowmon.mean_rate tfrc.tfrc_recv_mon ~t0 ~t1 /. fair,
    Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1 /. fair,
    Stats.Metrics.cov_at_timescale
      (Netsim.Flowmon.series tfrc.tfrc_send_mon)
      ~t0 ~t1 ~tau:0.5 )

(* --- A: history size ------------------------------------------------------- *)

let history_size ppf ~duration ~seed =
  Format.fprintf ppf "A. Loss-interval history size n (8 is the paper's choice)@.@.";
  let rows =
    List.map
      (fun n ->
        let config = Tfrc.Tfrc_config.default ~n_intervals:n () in
        let tfrc, tcp, cov = versus_tcp ~config ~duration ~seed in
        (* Responsiveness: RTTs to halve under the A.2 scenario with this
           history size. *)
        [
          string_of_int n;
          Table.f2 tfrc;
          Table.f2 tcp;
          Table.f2 cov;
        ])
      [ 4; 8; 16; 32 ]
  in
  Table.print ppf
    ~header:[ "n"; "TFRC norm"; "TCP norm"; "TFRC CoV(0.5s)" ]
    rows;
  Format.fprintf ppf
    "(larger n smooths more but reacts slower; n=8 balances — Section 3.3)@.@."

(* --- B: history discounting ------------------------------------------------- *)

let discounting ppf =
  Format.fprintf ppf "B. History discounting: recovery after congestion ends@.@.";
  let slope ~discounting =
    (* Fig19 scenario but with discounting toggled: measure the rate gained
       between t=11.5 and t=13 (the discounting window). *)
    let config =
      Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Simple
        ~delay_gain:false ~initial_rtt:0.1 ~ndupack:1
        ~history_discounting:discounting ()
    in
    let count = ref 0 in
    let time = ref (fun () -> 0.) in
    let drop _ =
      incr count;
      !time () < 10. && !count mod 100 = 0
    in
    let path = Direct_path.create ~config ~rtt:0.1 ~drop () in
    (time := fun () -> Engine.Sim.now path.sim);
    let samples = ref [] in
    Tfrc.Tfrc_sender.on_rate_update path.sender (fun t ~rate ~rtt:r ~p:_ ->
        samples := (t, rate *. r /. 1000.) :: !samples);
    Direct_path.run path ~until:13.5;
    let ordered = List.rev !samples in
    (* Rate at the last update before t0 (not a running max: the slow-start
       overshoot would swamp it). *)
    let at t0 =
      List.fold_left (fun acc (t, v) -> if t <= t0 then v else acc) 0. ordered
    in
    at 13.4 -. at 11.5
  in
  let without = slope ~discounting:false in
  let with_d = slope ~discounting:true in
  Table.print ppf
    ~header:[ "history discounting"; "rate gained 11.5s-13.4s (pkts/RTT)" ]
    [ [ "off"; Table.f2 without ]; [ "on"; Table.f2 with_d ] ];
  Format.fprintf ppf
    "(discounting roughly doubles the recovery speed after a long loss-free \
     period: %s)@.@."
    (if with_d > 1.5 *. without then "reproduced" else "NOT reproduced")

(* --- C: RTT gain x delay gain ------------------------------------------------ *)

let rtt_gain ppf ~duration =
  Format.fprintf ppf
    "C. RTT EWMA gain and interpacket-spacing stabilization (Section 3.4)@.@.";
  let rows =
    List.concat_map
      (fun gain ->
        List.map
          (fun delay_gain ->
            let cov, mean =
              Fig3_4.oscillation_with ~rtt_gain:gain ~delay_gain ~buffer:64
                ~duration
            in
            [
              Printf.sprintf "%.2f" gain;
              (if delay_gain then "on" else "off");
              Table.f3 cov;
              Table.f2 (mean /. 1e3);
            ])
          [ false; true ])
      [ 0.05; 0.1; 0.5 ]
  in
  Table.print ppf
    ~header:[ "EWMA gain"; "sqrt(R0)/M"; "CoV(0.2s)"; "rate KB/s" ]
    rows;
  Format.fprintf ppf
    "(the stabilization damps oscillations at every gain; a large gain \
     alone gives jittery delay-based backoff — Section 3.4)@.@."

(* --- D: expedited feedback ----------------------------------------------------- *)

let expedited_feedback ppf =
  Format.fprintf ppf "D. Expedited feedback on loss events@.@.";
  let rtts ~feedback_on_loss =
    let config =
      Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Pftk
        ~delay_gain:false ~initial_rtt:0.1 ~ndupack:1 ~feedback_on_loss ()
    in
    let count = ref 0 in
    let time = ref (fun () -> 0.) in
    let drop _ =
      incr count;
      if !time () < 10. then !count mod 100 = 0 else !count mod 2 = 0
    in
    let path = Direct_path.create ~config ~rtt:0.1 ~drop () in
    (time := fun () -> Engine.Sim.now path.sim);
    let samples = ref [] in
    Tfrc.Tfrc_sender.on_rate_update path.sender (fun t ~rate ~rtt:_ ~p:_ ->
        samples := (t, rate) :: !samples);
    Direct_path.run path ~until:14.;
    let samples = List.rev !samples in
    let before =
      List.fold_left (fun acc (t, r) -> if t < 10. then r else acc) 0. samples
    in
    match
      List.find_opt (fun (t, r) -> t >= 10. && r <= before /. 2.) samples
    with
    | Some (t, _) -> Printf.sprintf "%.0f" (ceil ((t -. 10.) /. 0.1))
    | None -> "never"
  in
  Table.print ppf
    ~header:[ "feedback on loss"; "RTTs to halve under persistent congestion" ]
    [
      [ "on (default)"; rtts ~feedback_on_loss:true ];
      [ "off (per-RTT only)"; rtts ~feedback_on_loss:false ];
    ];
  Format.fprintf ppf "@."

(* --- E: burstiness aid ------------------------------------------------------------ *)

let burstiness ppf ~duration ~seed =
  Format.fprintf ppf
    "E. Sending two packets every two interpacket intervals (Section 4.1) — \
     small-window TCP competitor@.@.";
  (* Low-bandwidth bottleneck: TCP's window is tiny and TFRC's perfectly
     smooth spacing can crowd it out of a DropTail buffer. *)
  let run ~burst_pkts =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed in
    let bandwidth = Engine.Units.mbps 0.8 in
    let db =
      Netsim.Dumbbell.create sim ~bandwidth ~delay:0.02
        ~queue:(Netsim.Dumbbell.Droptail_q 8) ()
    in
    let tcp =
      Scenario.attach_tcp db ~flow:1
        ~rtt_base:(Engine.Rng.uniform rng 0.09 0.11)
        ~config:Tcpsim.Tcp_common.ns_sack
    in
    Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.5;
    let tfrc =
      Scenario.attach_tfrc db ~flow:2
        ~rtt_base:(Engine.Rng.uniform rng 0.09 0.11)
        ~config:(Tfrc.Tfrc_config.default ~burst_pkts ())
    in
    Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:0.;
    Engine.Sim.run sim ~until:duration;
    let t0 = duration /. 3. and t1 = duration in
    let tcp_rate = Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1 in
    let tfrc_rate = Netsim.Flowmon.mean_rate tfrc.tfrc_recv_mon ~t0 ~t1 in
    (tcp_rate /. 1e3, tfrc_rate /. 1e3)
  in
  let t1, f1 = run ~burst_pkts:1 in
  let t2, f2 = run ~burst_pkts:2 in
  Table.print ppf
    ~header:[ "TFRC bursting"; "TCP KB/s"; "TFRC KB/s"; "TCP share" ]
    [
      [ "1 pkt / interval"; Table.f2 t1; Table.f2 f1; Table.f2 (t1 /. (t1 +. f1)) ];
      [ "2 pkts / 2 intervals"; Table.f2 t2; Table.f2 f2; Table.f2 (t2 /. (t2 +. f2)) ];
    ];
  Format.fprintf ppf "@."

(* --- F: ECN ------------------------------------------------------------------------- *)

let ecn ppf ~duration ~seed =
  Format.fprintf ppf
    "F. ECN: marking instead of dropping at the RED bottleneck (Section 7 \
     outlook)@.@.";
  let run ~use_ecn =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed in
    let bandwidth = Engine.Units.mbps 15. in
    let red =
      Netsim.Red.params ~min_th:10. ~max_th:50. ~limit_pkts:100 ~ecn:use_ecn ()
    in
    let db =
      Netsim.Dumbbell.create sim ~bandwidth ~delay:0.025
        ~queue:(Netsim.Dumbbell.Red_q red) ()
    in
    let tcps =
      List.init 8 (fun i ->
          let h =
            Scenario.attach_tcp db ~flow:(i + 1)
              ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
              ~config:(Tcpsim.Tcp_common.default ~ecn:use_ecn ())
          in
          Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.);
          h)
    in
    let tfrcs =
      List.init 8 (fun i ->
          let h =
            Scenario.attach_tfrc db ~flow:(100 + i)
              ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
              ~config:(Tfrc.Tfrc_config.default ~ecn:use_ecn ())
          in
          Tfrc.Tfrc_sender.start h.tfrc_sender ~at:(Engine.Rng.float rng 2.);
          h)
    in
    Engine.Sim.run sim ~until:duration;
    let t0 = duration /. 3. and t1 = duration in
    let rate mon = Netsim.Flowmon.mean_rate mon ~t0 ~t1 in
    let tcp_rates = List.map (fun h -> rate h.Scenario.tcp_recv_mon) tcps in
    let tfrc_rates = List.map (fun h -> rate h.Scenario.tfrc_recv_mon) tfrcs in
    let marks =
      List.fold_left
        (fun acc h ->
          acc
          + Tfrc.Loss_events.marked_packets
              (Tfrc.Tfrc_receiver.detector h.Scenario.tfrc_receiver))
        0 tfrcs
    in
    ( Netsim.Dumbbell.forward_drop_rate db,
      Stats.Fairness.jain (tcp_rates @ tfrc_rates),
      Scenario.mean tcp_rates /. Scenario.mean tfrc_rates,
      marks )
  in
  let d0, j0, r0, _ = run ~use_ecn:false in
  let d1, j1, r1, marks = run ~use_ecn:true in
  Table.print ppf
    ~header:[ "mode"; "drop rate %"; "Jain index"; "TCP/TFRC ratio"; "ECN marks" ]
    [
      [ "drop (no ECN)"; Table.f2 (100. *. d0); Table.f3 j0; Table.f2 r0; "-" ];
      [
        "ECN marking";
        Table.f2 (100. *. d1);
        Table.f3 j1;
        Table.f2 r1;
        string_of_int marks;
      ];
    ];
  Format.fprintf ppf
    "(with ECN the early-congestion signal arrives without packet loss: \
     drops %s, fairness preserved: %s)@.@."
    (if d1 < d0 then "fall" else "did NOT fall")
    (if j1 > 0.7 then "yes" else "NO")

(* --- G: smooth AIMD vs equation-based ------------------------------------------ *)

let smooth_aimd ppf ~duration ~seed =
  Format.fprintf ppf
    "G. Alternative smooth congestion control: TCP-compatible AIMD(a, 7/8)      vs TFRC ([FHP00], Section 2.1)@.@.";
  (* Mixed run: 4 standard TCP + 4 smooth-AIMD "TCP" flows. *)
  let mixed ~smooth_config =
    let sim = Engine.Sim.create () in
    let rng = Engine.Rng.create ~seed in
    let bandwidth = Engine.Units.mbps 15. in
    let db =
      Netsim.Dumbbell.create sim ~bandwidth ~delay:0.025
        ~queue:(Scenario.scaled_queue `Red ~bandwidth) ()
    in
    let attach config flow =
      let h =
        Scenario.attach_tcp db ~flow
          ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
          ~config
      in
      Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.);
      h
    in
    let std = List.init 4 (fun i -> attach Tcpsim.Tcp_common.ns_sack (i + 1)) in
    let smooth = List.init 4 (fun i -> attach smooth_config (100 + i)) in
    Engine.Sim.run sim ~until:duration;
    let t0 = duration /. 3. and t1 = duration in
    let fair = Engine.Units.bps_to_byte_rate bandwidth /. 8. in
    let norm h = Netsim.Flowmon.mean_rate h.Scenario.tcp_recv_mon ~t0 ~t1 /. fair in
    let cov h =
      Stats.Metrics.cov_at_timescale
        (Netsim.Flowmon.series h.Scenario.tcp_send_mon)
        ~t0 ~t1 ~tau:0.5
    in
    ( Scenario.mean (List.map norm std),
      Scenario.mean (List.map norm smooth),
      Scenario.mean (List.map cov smooth) )
  in
  let tcp_norm, aimd_norm, aimd_cov = mixed ~smooth_config:Tcpsim.Tcp_common.aimd_smooth in
  (* TFRC reference from the shared harness. *)
  let tfrc_norm, _, tfrc_cov =
    versus_tcp ~config:(Tfrc.Tfrc_config.default ()) ~duration ~seed
  in
  Table.print ppf
    ~header:[ "contender"; "norm. throughput"; "CoV(0.5s)" ]
    [
      [ "std TCP (control)"; Table.f2 tcp_norm; "-" ];
      [ "AIMD(0.31, 7/8)"; Table.f2 aimd_norm; Table.f3 aimd_cov ];
      [ "TFRC"; Table.f2 tfrc_norm; Table.f3 tfrc_cov ];
    ];
  Format.fprintf ppf
    "(smooth AIMD narrows TCP's oscillations but still reduces on every      loss event; TFRC's CoV stays lowest — the [FHP00] conclusion)@.@."

let run ~full ~seed ppf =
  let duration = if full then 120. else 45. in
  Format.fprintf ppf "Ablations over TFRC's design choices@.@.";
  history_size ppf ~duration ~seed;
  discounting ppf;
  rtt_gain ppf ~duration:(if full then 120. else 40.);
  expedited_feedback ppf;
  burstiness ppf ~duration ~seed;
  ecn ppf ~duration ~seed;
  smooth_aimd ppf ~duration ~seed
