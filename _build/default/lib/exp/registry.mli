(** Registry of all reproducible experiments: one entry per paper figure
    (plus the Appendix A.1 table). Used by the CLI and the benchmark
    harness. *)

type experiment = {
  id : string;  (** e.g. "fig6" *)
  title : string;
  run : full:bool -> seed:int -> Format.formatter -> unit;
}

val all : experiment list
val find : string -> experiment option
val ids : unit -> string list
