(** A TFRC connection over an idealized path: fixed propagation delay, no
    bandwidth limit, and an arbitrary drop function on the data direction.

    This is the setup of the paper's controlled experiments: Figure 2
    (periodic loss whose rate changes over time) and Figures 19-21
    (deterministic every-Nth-packet drop patterns). *)

type t = {
  sim : Engine.Sim.t;
  sender : Tfrc.Tfrc_sender.t;
  receiver : Tfrc.Tfrc_receiver.t;
}

(** [create ?config ~rtt ~drop ()] wires sender and receiver over a
    symmetric path of [rtt/2] one-way delay; data packets for which
    [drop pkt] is true are discarded in flight. *)
val create :
  ?config:Tfrc.Tfrc_config.t ->
  rtt:float ->
  drop:(Netsim.Packet.t -> bool) ->
  unit ->
  t

(** [run t ~until] starts the sender at time 0 and runs the simulation. *)
val run : t -> until:float -> unit
