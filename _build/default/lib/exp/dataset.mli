(** Optional gnuplot-ready data export for the experiment harness.

    When the environment variable [TFRC_DATA_DIR] names a directory, each
    figure writes its raw series there as whitespace-separated columns with
    a '#' header line; otherwise every call is a no-op. Keeps the printed
    tables as the primary interface while letting users regenerate the
    paper's actual plots. *)

(** [enabled ()] is true when [TFRC_DATA_DIR] is set. *)
val enabled : unit -> bool

(** [dir ()] is the target directory, if enabled. *)
val dir : unit -> string option

(** [write_series ~name ~columns rows] writes [name].dat with a header
    naming the columns. Row arity must match. No-op when disabled; errors
    writing the file are reported on stderr, never raised. *)
val write_series : name:string -> columns:string list -> float list list -> unit

(** [write_xy ~name ~x ~y pairs] shorthand for two columns. *)
val write_xy : name:string -> x:string -> y:string -> (float * float) list -> unit
