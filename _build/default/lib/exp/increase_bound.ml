let run ~full:_ ~seed:_ ppf =
  Format.fprintf ppf
    "Appendix A.1: upper bound on the rate increase (Equation 4), \
     packets/RTT per loss-free RTT@.@.";
  let w_normal = Tfrc.Analysis.recent_weight ~n:8 in
  let w_discount = Tfrc.Analysis.recent_weight_discounted ~n:8 () in
  let cases =
    [
      ("normal (w = w1/sum = 1/6)", w_normal);
      ("max history discounting", w_discount);
      ("all weight on recent (w = 1)", 1.0);
    ]
  in
  Table.print ppf
    ~header:[ "weighting"; "w"; "dT @ A=100"; "sup dT (bound)" ]
    (List.map
       (fun (label, w) ->
         [
           label;
           Table.f3 w;
           Table.f3 (Tfrc.Analysis.delta_t ~a:100. ~w);
           Table.f3 (Tfrc.Analysis.max_delta_t ~w);
         ])
       cases);
  Format.fprintf ppf
    "@.(paper: ~0.12 without discounting, ~0.28 with, ~0.7 even at w=1 — \
     all below TCP's 1 pkt/RTT)@."
