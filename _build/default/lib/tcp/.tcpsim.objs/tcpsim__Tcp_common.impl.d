lib/tcp/tcp_common.ml: Rto
