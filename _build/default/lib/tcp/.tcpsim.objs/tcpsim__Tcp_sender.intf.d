lib/tcp/tcp_sender.mli: Engine Netsim Tcp_common
