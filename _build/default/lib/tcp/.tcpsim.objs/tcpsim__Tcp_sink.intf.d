lib/tcp/tcp_sink.mli: Engine Netsim Tcp_common
