lib/tcp/tcp_sink.ml: Engine Int List Netsim Set Tcp_common
