lib/tcp/rto.mli:
