lib/tcp/tcp_sender.ml: Engine Float Int List Netsim Rto Set Tcp_common
