lib/tcp/tcp_common.mli: Rto
