type mode = [ `Normal | `Aggressive ]

type t = {
  granularity : float;
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  mode : mode;
  mutable srtt : float;
  mutable rttvar : float;
  mutable have_sample : bool;
  mutable backoff : float; (* multiplier, power of two *)
}

let create ?(granularity = 0.) ?(min_rto = 1.0) ?(max_rto = 64.) ?(initial_rto = 3.0)
    ?(mode = `Normal) () =
  if granularity < 0. then invalid_arg "Rto.create: negative granularity";
  if min_rto <= 0. || max_rto < min_rto then invalid_arg "Rto.create: bad bounds";
  {
    granularity;
    min_rto;
    max_rto;
    initial_rto;
    mode;
    srtt = 0.;
    rttvar = 0.;
    have_sample = false;
    backoff = 1.;
  }

let sample t rtt =
  if rtt < 0. then invalid_arg "Rto.sample: negative RTT";
  if not t.have_sample then begin
    t.srtt <- rtt;
    t.rttvar <- rtt /. 2.;
    t.have_sample <- true
  end
  else begin
    (* RFC 6298 constants: alpha = 1/8, beta = 1/4. *)
    t.rttvar <- (0.75 *. t.rttvar) +. (0.25 *. Float.abs (t.srtt -. rtt));
    t.srtt <- (0.875 *. t.srtt) +. (0.125 *. rtt)
  end

let srtt t = if t.have_sample then Some t.srtt else None
let rttvar t = t.rttvar

let quantize t v =
  if t.granularity <= 0. then v
  else t.granularity *. ceil (v /. t.granularity)

let rto t =
  let base =
    if not t.have_sample then t.initial_rto
    else
      match t.mode with
      | `Normal -> t.srtt +. (4. *. t.rttvar)
      | `Aggressive ->
          (* Spurious-timeout-prone: barely above SRTT, tiny floor. *)
          1.2 *. t.srtt
  in
  let floor_rto = match t.mode with `Normal -> t.min_rto | `Aggressive -> 0.05 in
  Float.min t.max_rto (Float.max floor_rto (quantize t base) *. t.backoff)

let backoff t = t.backoff <- Float.min 64. (t.backoff *. 2.)
let reset_backoff t = t.backoff <- 1.
