(** Shared TCP configuration.

    Sequence numbers count packets (segments), as in ns-2; all segments
    carry [mss] bytes. The paper's headline comparisons use Sack1 TCP;
    Tahoe/Reno/NewReno are provided because Section 4.1 also evaluates
    against them ("we have also looked at Tahoe and Reno..."). *)

type variant = Tahoe | Reno | Newreno | Sack

type config = {
  variant : variant;
  mss : int;  (** segment size, bytes (paper: 1000) *)
  ack_size : int;  (** ack packet size, bytes *)
  init_cwnd : float;  (** initial congestion window, packets *)
  max_cwnd : float;  (** receiver-advertised window, packets *)
  dupack_thresh : int;  (** fast-retransmit threshold, default 3 *)
  granularity : float;  (** RTO clock granularity, seconds *)
  min_rto : float;
  rto_mode : Rto.mode;
  delack : bool;  (** delayed acknowledgements at the sink *)
  delack_timeout : float;
  ecn : bool;  (** negotiate ECN: data marked instead of dropped at an
                   ECN queue; the sender halves once per window on ECE *)
  ai : float;  (** additive increase per RTT, packets (standard TCP: 1) *)
  md : float;
      (** fraction of the window retained on a congestion signal
          (standard TCP: 0.5; DECbit-style smooth AIMD: 7/8) *)
}

val default :
  ?variant:variant ->
  ?mss:int ->
  ?init_cwnd:float ->
  ?max_cwnd:float ->
  ?granularity:float ->
  ?min_rto:float ->
  ?rto_mode:Rto.mode ->
  ?delack:bool ->
  ?ecn:bool ->
  ?ai:float ->
  ?md:float ->
  unit ->
  config

val variant_name : variant -> string

(** Profile matching ns-2 Sack1 with fine timers (the paper's simulation
    baseline). *)
val ns_sack : config

(** Profile matching a conservative FreeBSD stack: 500 ms clock. *)
val freebsd_coarse : config

(** The "Solaris 2.7" pathology: aggressive RTO, spurious timeouts. *)
val solaris_aggressive : config

(** [tcp_compatible_aimd ~md] is the additive increase that makes
    AIMD(a, md) match standard TCP's steady-state throughput:
    a = 4(1 - md^2)/3. *)
val tcp_compatible_aimd : md:float -> float

(** TCP-compatible smooth AIMD: decrease to 7/8, increase ~0.31/RTT
    (Section 2.1's DECbit discussion; evaluated against TFRC in
    [FHP00]). *)
val aimd_smooth : config
