(** TCP retransmission-timeout estimation (Jacobson/Karels SRTT + 4*RTTVAR)
    with configurable clock granularity and exponential backoff.

    Granularity matters to the paper: the FreeBSD TCPs it tested against
    used a 500 ms clock, making them conservative under high loss
    (Section 4.3); ns-2's Sack agent uses a fine clock. Both are modelled by
    the [granularity] parameter. The [`Aggressive] mode reproduces the
    "Solaris 2.7" pathology — a too-small minimum RTO and no variance
    cushion causing spurious retransmissions (Figure 16/17 discussion). *)

type mode = [ `Normal | `Aggressive ]

type t

val create :
  ?granularity:float (** rounding unit for the timeout, default 0. *) ->
  ?min_rto:float (** default 1.0 s, RFC 2988 *) ->
  ?max_rto:float (** default 64 s *) ->
  ?initial_rto:float (** before any sample, default 3.0 s *) ->
  ?mode:mode ->
  unit ->
  t

(** [sample t rtt] folds in a new round-trip time measurement. *)
val sample : t -> float -> unit

(** [srtt t] is the smoothed RTT, if at least one sample arrived. *)
val srtt : t -> float option

(** [rttvar t] is the smoothed mean deviation. *)
val rttvar : t -> float

(** [rto t] is the current timeout including backoff. *)
val rto : t -> float

(** [backoff t] doubles the timeout (capped at [max_rto]). *)
val backoff : t -> unit

(** [reset_backoff t] clears exponential backoff after a valid sample. *)
val reset_backoff : t -> unit
