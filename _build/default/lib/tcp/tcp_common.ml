type variant = Tahoe | Reno | Newreno | Sack

type config = {
  variant : variant;
  mss : int;
  ack_size : int;
  init_cwnd : float;
  max_cwnd : float;
  dupack_thresh : int;
  granularity : float;
  min_rto : float;
  rto_mode : Rto.mode;
  delack : bool;
  delack_timeout : float;
  ecn : bool;
  ai : float;
  md : float;
}

let default ?(variant = Sack) ?(mss = 1000) ?(init_cwnd = 2.) ?(max_cwnd = 10000.)
    ?(granularity = 0.) ?(min_rto = 0.2) ?(rto_mode = `Normal) ?(delack = false)
    ?(ecn = false) ?(ai = 1.) ?(md = 0.5) () =
  {
    variant;
    mss;
    ack_size = 40;
    init_cwnd;
    max_cwnd;
    dupack_thresh = 3;
    granularity;
    min_rto;
    rto_mode;
    delack;
    delack_timeout = 0.1;
    ecn;
    ai;
    md;
  }

let variant_name = function
  | Tahoe -> "tahoe"
  | Reno -> "reno"
  | Newreno -> "newreno"
  | Sack -> "sack"

let ns_sack = default ~variant:Sack ()
let freebsd_coarse = default ~variant:Reno ~granularity:0.5 ~min_rto:1.0 ()
let solaris_aggressive = default ~variant:Reno ~rto_mode:`Aggressive ~min_rto:0.05 ()

(* TCP-compatible AIMD(a,b): for a decrease to fraction b of the window,
   a = 4(1 - b^2)/3 keeps the steady-state throughput equal to standard
   TCP's (b = 1/2 gives a = 1). The paper's Section 2.1 discusses the
   DECbit-style 7/8 decrease; [FHP00] evaluates these against TFRC. *)
let tcp_compatible_aimd ~md =
  if md <= 0. || md >= 1. then invalid_arg "tcp_compatible_aimd: md in (0,1)";
  4. *. (1. -. (md *. md)) /. 3.

let aimd_smooth =
  let md = 7. /. 8. in
  default ~variant:Sack ~ecn:false () |> fun c ->
  { c with ai = tcp_compatible_aimd ~md; md }
