(* Fairness duel: n TCP vs n TFRC on one bottleneck.

   The deployment question the paper answers: if TFRC streams share a
   congested FIFO queue with TCP, does either side starve? Prints per-flow
   normalized throughput for DropTail and RED.

     dune exec examples/fairness_duel.exe *)

let () =
  let bandwidth = Engine.Units.mbps 15. in
  let run queue_kind label =
    let params =
      {
        (Exp.Scenario.default_mixed ()) with
        bandwidth;
        queue = Exp.Scenario.scaled_queue queue_kind ~bandwidth;
        n_tcp = 8;
        n_tfrc = 8;
        duration = 90.;
        warmup = 30.;
        seed = 2;
      }
    in
    let r = Exp.Scenario.run_mixed params in
    let tcp, tfrc = Exp.Scenario.normalized_throughputs r in
    Printf.printf "%s: 8 TCP + 8 TFRC on 15 Mb/s\n" label;
    let spark l =
      Exp.Table.sparkline (Array.of_list l)
    in
    Printf.printf "  TCP  mean %.2f of fair share  per-flow %s\n"
      (Exp.Scenario.mean tcp) (spark tcp);
    Printf.printf "  TFRC mean %.2f of fair share  per-flow %s\n"
      (Exp.Scenario.mean tfrc) (spark tfrc);
    Printf.printf "  utilization %.1f%%, drop rate %.2f%%\n\n"
      (100. *. r.utilization)
      (100. *. r.drop_rate)
  in
  run `Droptail "DropTail";
  run `Red "RED";
  Printf.printf
    "Both protocols hold close to the fair share — equation-based control \
     with the TCP response function coexists with TCP (paper section 4.1).\n"
