examples/loss_predictor.mli:
