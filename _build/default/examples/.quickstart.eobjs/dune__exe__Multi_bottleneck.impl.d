examples/multi_bottleneck.ml: Engine List Netsim Printf String Tcpsim Tfrc
