examples/streaming_media.mli:
