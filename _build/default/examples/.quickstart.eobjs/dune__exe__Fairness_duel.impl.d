examples/fairness_duel.ml: Array Engine Exp Printf
