examples/streaming_media.ml: Array Engine Exp Float Netsim Printf Stats Tcpsim Tfrc Traffic
