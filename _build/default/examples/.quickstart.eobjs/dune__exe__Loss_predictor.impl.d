examples/loss_predictor.ml: Engine Float List Printf Stats Tfrc
