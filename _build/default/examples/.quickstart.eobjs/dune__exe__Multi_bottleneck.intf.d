examples/multi_bottleneck.mli:
