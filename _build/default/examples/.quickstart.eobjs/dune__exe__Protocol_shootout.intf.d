examples/protocol_shootout.mli:
