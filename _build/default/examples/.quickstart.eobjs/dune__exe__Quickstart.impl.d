examples/quickstart.ml: Engine Netsim Printf Tfrc
