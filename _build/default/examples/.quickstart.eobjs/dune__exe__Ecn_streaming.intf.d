examples/ecn_streaming.mli:
