examples/quickstart.mli:
