examples/protocol_shootout.ml: Baselines Engine Exp Float Netsim Printf Stats Tcpsim Tfrc
