examples/ecn_streaming.ml: Engine Exp List Netsim Printf Tcpsim Tfrc
