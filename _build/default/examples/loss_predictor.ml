(* Loss predictor: using the Average Loss Interval estimator standalone.

   The estimator at the heart of TFRC is useful on its own: feed it loss
   intervals, read a smoothed loss-rate estimate. Here we drive it over a
   bursty (Gilbert) channel and compare history settings.

     dune exec examples/loss_predictor.exe *)

let () =
  let rng = Engine.Rng.create ~seed:5 in
  (* A bursty channel: mostly 0.3% loss with 5% bursts. *)
  let bad = ref false in
  let interval_trace =
    let out = ref [] and run = ref 0 in
    for _ = 1 to 200_000 do
      incr run;
      (if !bad then begin
         if Engine.Rng.bool rng ~p:0.05 then bad := false
       end
       else if Engine.Rng.bool rng ~p:0.002 then bad := true);
      if Engine.Rng.bool rng ~p:(if !bad then 0.05 else 0.003) then begin
        out := float_of_int !run :: !out;
        run := 0
      end
    done;
    List.rev !out
  in
  Printf.printf
    "Average Loss Interval estimator on a bursty channel (%d loss events):\n\n"
    (List.length interval_trace);
  Printf.printf "%-34s %-12s %s\n" "estimator" "mean |err|" "responsiveness";
  let evaluate ~n ~constant_weights ~discounting label =
    let est = Tfrc.Loss_intervals.create ~n ~constant_weights ~discounting () in
    let err = Stats.Running.create () in
    let worst_lag = ref 0. in
    List.iter
      (fun interval ->
        (match Tfrc.Loss_intervals.average est with
        | Some avg when avg > 0. ->
            let predicted = 1. /. avg in
            let actual = 1. /. Float.max 1. interval in
            Stats.Running.add err (Float.abs (predicted -. actual));
            worst_lag := Float.max !worst_lag (predicted /. Float.max 1e-9 actual)
        | _ -> ());
        Tfrc.Loss_intervals.record_interval est ~length:interval)
      interval_trace;
    Printf.printf "%-34s %-12.4f max over-estimate %.0fx\n" label
      (Stats.Running.mean err) !worst_lag
  in
  evaluate ~n:2 ~constant_weights:true ~discounting:false
    "n=2, constant weights";
  evaluate ~n:8 ~constant_weights:true ~discounting:false
    "n=8, constant weights";
  evaluate ~n:8 ~constant_weights:false ~discounting:false
    "n=8, decreasing weights";
  evaluate ~n:8 ~constant_weights:false ~discounting:true
    "n=8, decreasing + discounting";
  evaluate ~n:32 ~constant_weights:false ~discounting:false
    "n=32, decreasing weights";
  Printf.printf
    "\nTFRC's operating point (n=8, decreasing weights, history \
     discounting) balances noise resistance against responsiveness \
     (paper section 3.3, figure 18).\n"
