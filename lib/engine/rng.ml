(* PCG32 (Melissa O'Neill, pcg-random.org): 64-bit LCG state with a 32-bit
   XSH-RR output permutation. Small, fast, and good statistical quality for
   simulation purposes. *)

type t = {
  mutable state : int64;
  inc : int64; (* stream selector; always odd *)
}

let multiplier = 6364136223846793005L

let step t = t.state <- Int64.add (Int64.mul t.state multiplier) t.inc

let output state =
  (* XSH-RR: xorshift high bits, then rotate right by the top 5 bits. *)
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical
            (Int64.logxor (Int64.shift_right_logical state 18) state)
            27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical state 59) in
  let v = (xorshifted lsr rot) lor (xorshifted lsl (-rot land 31)) in
  v land 0xFFFFFFFF

let make ~state ~inc =
  let t = { state = 0L; inc = Int64.logor (Int64.shift_left inc 1) 1L } in
  step t;
  t.state <- Int64.add t.state state;
  step t;
  t

let create ~seed =
  make ~state:(Int64.of_int seed) ~inc:(Int64.of_int (seed lxor 0x5DEECE66))

(* FNV-1a, 64-bit: mixes a textual key into an initial hash state. Used to
   derive per-job generators — cheap, stable across runs, and good enough
   dispersion that distinct keys land on distinct PCG streams. *)
let fnv1a64 init s =
  let prime = 0x100000001B3L in
  let h = ref init in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let fnv_offset = 0xCBF29CE484222325L

let for_key ~seed key =
  let state = fnv1a64 (Int64.logxor fnv_offset (Int64.of_int seed)) key in
  (* Second pass from a perturbed origin decorrelates the stream selector
     from the state; PCG32 streams differ whenever [inc] differs, so even a
     [state] collision between two keys cannot alias their streams. *)
  let inc = fnv1a64 (Int64.logxor state 0x9E3779B97F4A7C15L) key in
  make ~state ~inc

(* Retry streams extend the key with a NUL-separated attempt tag: job keys
   are human-readable path-ish strings that never contain NUL, so an
   attempt-tagged key cannot collide with any real grid key, and attempt 0
   is exactly [for_key] — supervised runs with no retries stay
   byte-identical to unsupervised ones. *)
let for_attempt ~seed ~attempt key =
  if attempt < 0 then invalid_arg "Rng.for_attempt: negative attempt";
  if attempt = 0 then for_key ~seed key
  else for_key ~seed (Printf.sprintf "%s\x00attempt%d" key attempt)

let bits32 t =
  let v = output t.state in
  step t;
  v

let split t =
  let s = Int64.of_int (bits32 t) in
  let i = Int64.of_int (bits32 t) in
  make ~state:(Int64.logor (Int64.shift_left s 32) i) ~inc:i

let copy t = { state = t.state; inc = t.inc }

let int t bound =
  assert (bound > 0);
  if bound <= 0x40000000 then begin
    (* Rejection sampling to avoid modulo bias. *)
    let rec draw () =
      let v = bits32 t in
      let r = v mod bound in
      if v - r + (bound - 1) < 0x100000000 then r else draw ()
    in
    draw ()
  end
  else (bits32 t lsl 31) lxor bits32 t land max_int mod bound

let float t bound =
  assert (bound > 0.);
  (* 53 bits of mantissa from two draws. *)
  let hi = bits32 t land 0x1FFFFF (* 21 bits *) and lo = bits32 t in
  let x = (float_of_int hi *. 4294967296.) +. float_of_int lo in
  x /. 9007199254740992. *. bound

let uniform t a b =
  assert (b >= a);
  if b = a then a else a +. float t (b -. a)

let bool t ~p =
  assert (p >= 0. && p <= 1.);
  if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let exponential t ~mean =
  assert (mean > 0.);
  let rec positive () =
    let u = float t 1.0 in
    if u > 0. then u else positive ()
  in
  -.mean *. log (positive ())

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let rec positive () =
    let u = float t 1.0 in
    if u > 0. then u else positive ()
  in
  scale /. (positive () ** (1. /. shape))

let pareto_mean ~shape ~scale =
  assert (shape > 1.);
  scale *. shape /. (shape -. 1.)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
