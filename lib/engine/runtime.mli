(** Sans-IO runtime interface.

    A [Runtime.t] is the complete contract between protocol state machines
    (TFRC sender/receiver, the baseline controllers) and whatever drives
    them: a virtual clock with one-shot cancellable timers, a trace bus,
    and a per-runtime identity allocator. Protocol modules written against
    this interface contain no scheduler- or IO-specific code, so the same
    modules run

    - under {!Sim} (the discrete-event simulator; {!Sim.runtime} is the
      canonical implementation and every existing experiment uses it), and
    - under [Wire.Loop] (a real-time poll loop over the monotonic clock
      and UDP sockets).

    What a protocol module may assume about a runtime:
    - [now] is monotone non-decreasing and starts at 0 at runtime creation;
    - a timer scheduled with [at]/[after] fires at most once, at a time
      [>= ] its deadline, with [now] reading the deadline or later inside
      the callback; timers fire in (deadline, scheduling order);
    - [cancel] is idempotent and a cancelled timer never fires;
    - [fresh_id] yields 1, 2, 3, … private to this runtime.

    What it must {e not} assume: that time advances only when events fire
    (real time moves between callbacks), that scheduling is free, or that
    two runtimes in one process share any state. See DESIGN.md,
    "Sans-IO runtime contract". *)

(** Cancellable handle for a scheduled timer. *)
type handle

(** [handle ~cancel ~is_pending] wraps an implementation's timer.
    [cancel] must be idempotent. *)
val handle : cancel:(unit -> unit) -> is_pending:(unit -> bool) -> handle

(** A handle that is never pending; useful as an initial field value. *)
val null_handle : handle

(** [cancel h] prevents the timer from firing. Idempotent. *)
val cancel : handle -> unit

(** [is_pending h] is [true] if the timer has neither fired nor been
    cancelled. *)
val is_pending : handle -> bool

type t

(** [make ~now ~at ~after ~trace ~fresh_id] builds a runtime from an
    implementation's closures. [at] schedules at an absolute time on the
    runtime's clock; [after] relative to [now]; both must reject
    non-finite arguments rather than corrupt their timer queue. *)
val make :
  now:(unit -> float) ->
  at:(float -> (unit -> unit) -> handle) ->
  after:(float -> (unit -> unit) -> handle) ->
  trace:Trace.t ->
  fresh_id:(unit -> int) ->
  t

(** Current time in seconds on this runtime's clock (0 at creation). *)
val now : t -> float

(** [at t time f] schedules [f] at absolute [time]; [after t delay f]
    schedules [f] in [delay] seconds. *)
val at : t -> float -> (unit -> unit) -> handle

val after : t -> float -> (unit -> unit) -> handle

(** The trace bus components built on this runtime emit to. *)
val trace : t -> Trace.t

(** Next identity from this runtime's private counter (1, 2, 3, …);
    packet ids are drawn here, so identity streams are deterministic per
    runtime, never process-global. *)
val fresh_id : t -> int
