type handle = {
  mutable state : [ `Pending | `Fired | `Cancelled ];
  f : unit -> unit;
  (* Shared with the owning scheduler: counts cancelled handles still
     sitting in its heap, so [run] knows when a sweep pays off. *)
  cancelled_in_heap : int ref;
}

type scheduler = [ `Heap | `Wheel ]

(* The two queue backends share the (time, seq) contract, so which one a
   simulation runs on is unobservable — same pop order, same traces. A
   direct two-constructor dispatch keeps the per-event cost at a branch
   instead of a closure call. *)
type equeue = Heap of handle Event_queue.t | Wheel of handle Timing_wheel.t

type t = {
  mutable clock : float;
  events : equeue;
  mutable stopping : bool;
  cancelled : int ref;
  trace : Trace.t;
  (* Per-simulation identity allocator (packet ids, default link labels).
     Keeping the counter on the scheduler — not in a process-global ref —
     makes id streams a pure function of the simulation's own event
     sequence: two sims in one process, or the same grid cell on any
     worker domain, allocate identical ids. *)
  mutable next_id : int;
  (* Memoized sans-IO view of this scheduler ({!runtime}): built on first
     use so handing a sim to protocol code costs one record, not one per
     call. *)
  mutable runtime : Runtime.t option;
}

(* --- Cooperative budgets --------------------------------------------------

   A budget caps what a run may consume: a count of executed events
   (cumulative across every [run] the budget is installed for, so a job
   that builds several schedulers still has one meter) and a virtual-time
   ceiling per run. Exhaustion raises [Budget_exhausted] out of [run] —
   through the job code and back to whatever supervisor installed the
   budget — instead of letting a runaway simulation spin forever.

   The ambient budget is domain-local (like {!Trace.default}): a
   supervisor wraps a job in [with_budget] and every [Sim.run] underneath
   it is metered, without the job threading anything through. *)

type budget = {
  mutable events_left : int; (* counts down across runs; max_int = unlimited *)
  max_time : float; (* virtual-time ceiling per run; infinity = unlimited *)
}

exception Budget_exhausted of string

let () =
  Printexc.register_printer (function
    | Budget_exhausted detail -> Some ("Sim.Budget_exhausted: " ^ detail)
    | _ -> None)

let budget ?max_events ?max_time () =
  (match max_events with
  | Some n when n <= 0 -> invalid_arg "Sim.budget: max_events must be positive"
  | _ -> ());
  (match max_time with
  | Some t when t <= 0. -> invalid_arg "Sim.budget: max_time must be positive"
  | _ -> ());
  {
    events_left = Option.value max_events ~default:max_int;
    max_time = Option.value max_time ~default:infinity;
  }

let ambient_budget_key : budget option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_budget b = Domain.DLS.set ambient_budget_key b
let current_budget () = Domain.DLS.get ambient_budget_key

let with_budget b f =
  let prev = current_budget () in
  set_budget (Some b);
  Fun.protect ~finally:(fun () -> set_budget prev) f

(* --- Scheduler backend ----------------------------------------------------

   The ambient default is domain-local (like {!Trace.default} and the
   budget): a driver selects the backend once and every [Sim.create ()]
   underneath — including inside experiment jobs — picks it up without
   threading a parameter through scenario builders. [Exp.Runner]
   re-installs the coordinator's choice on each worker domain so [-j N]
   runs the same backend as [-j 1]. *)

let default_scheduler_key : scheduler Domain.DLS.key =
  Domain.DLS.new_key (fun () -> `Wheel)

let set_default_scheduler s = Domain.DLS.set default_scheduler_key s
let default_scheduler () = Domain.DLS.get default_scheduler_key

let scheduler_of_string = function
  | "heap" -> Some `Heap
  | "wheel" -> Some `Wheel
  | _ -> None

let scheduler_name = function `Heap -> "heap" | `Wheel -> "wheel"

(* Queue dispatch: the only places the backends differ. *)

let q_push t ~time h =
  match t.events with
  | Heap q -> Event_queue.push q ~time h
  | Wheel w -> Timing_wheel.push w ~time h

let q_pop t =
  match t.events with
  | Heap q -> Event_queue.pop q
  | Wheel w -> Timing_wheel.pop w

let q_peek_time t =
  match t.events with
  | Heap q -> Event_queue.peek_time q
  | Wheel w -> Timing_wheel.peek_time w

let q_size t =
  match t.events with
  | Heap q -> Event_queue.size q
  | Wheel w -> Timing_wheel.size w

let q_prune t ~keep =
  match t.events with
  | Heap q -> Event_queue.prune q ~keep
  | Wheel w -> Timing_wheel.prune w ~keep

let q_compact t =
  match t.events with
  | Heap q -> Event_queue.compact q
  | Wheel w -> Timing_wheel.compact w

let create ?trace ?scheduler () =
  let trace = match trace with Some tr -> tr | None -> Trace.default () in
  let scheduler =
    match scheduler with Some s -> s | None -> default_scheduler ()
  in
  let t =
    {
      clock = 0.;
      events =
        (match scheduler with
        | `Heap -> Heap (Event_queue.create ())
        | `Wheel -> Wheel (Timing_wheel.create ()));
      stopping = false;
      cancelled = ref 0;
      trace;
      next_id = 0;
      runtime = None;
    }
  in
  (* Marks a fresh virtual clock: observers (e.g. the invariant checker)
     reset per-run state like the time-monotonicity watermark here. *)
  if Trace.active trace then Trace.emit trace ~time:0. ~cat:"sim" ~name:"created" [];
  t

let now t = t.clock
let trace t = t.trace

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let ids_allocated t = t.next_id

let at t time f =
  (* NaN would sail through the past-guard below ([nan < clock] is false)
     and then wander the queue unorderably; infinity would pin [run]'s
     [peek_time > until] check forever. Reject both up front. *)
  if not (Float.is_finite time) then
    invalid_arg (Printf.sprintf "Sim.at: non-finite time %g" time);
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time t.clock);
  let h = { state = `Pending; f; cancelled_in_heap = t.cancelled } in
  q_push t ~time h;
  h

let after t delay f =
  if not (Float.is_finite delay) then
    invalid_arg (Printf.sprintf "Sim.after: non-finite delay %g" delay);
  if delay < 0. then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) f

let cancel h =
  if h.state = `Pending then begin
    h.state <- `Cancelled;
    incr h.cancelled_in_heap
  end

let is_pending h = h.state = `Pending

let null_handle = { state = `Fired; f = ignore; cancelled_in_heap = ref 0 }

let pending_events t = q_size t

let stop t = t.stopping <- true

(* The canonical {!Runtime} implementation: virtual time, the event heap's
   timers, this sim's trace bus and id allocator. Wrapping a handle costs
   one record + two closures per scheduled timer — the sans-IO price, paid
   only by components written against Runtime (the TFRC state machines),
   not by raw [Sim.at] users. *)
let wrap_handle h =
  Runtime.handle
    ~cancel:(fun () -> cancel h)
    ~is_pending:(fun () -> is_pending h)

let runtime t =
  match t.runtime with
  | Some rt -> rt
  | None ->
      let rt =
        Runtime.make
          ~now:(fun () -> t.clock)
          ~at:(fun time f -> wrap_handle (at t time f))
          ~after:(fun delay f -> wrap_handle (after t delay f))
          ~trace:t.trace
          ~fresh_id:(fun () -> fresh_id t)
      in
      t.runtime <- Some rt;
      rt

(* Sweep the heap once cancelled entries dominate it: timer-heavy protocols
   (TCP retransmit, TFRC no-feedback) cancel far more events than they fire,
   and without a sweep those dead entries — and the closures they capture —
   survive until their original expiry pops them. The size floor keeps tiny
   heaps from paying the O(n log n) sort. *)
let sweep_floor = 64

let maybe_sweep t =
  let n = q_size t in
  if n >= sweep_floor && 2 * !(t.cancelled) > n then begin
    q_prune t ~keep:(fun h -> h.state = `Pending);
    q_compact t;
    t.cancelled := 0;
    if Trace.active t.trace then
      Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"sweep"
        [ ("before", Trace.Int n); ("after", Trace.Int (q_size t)) ]
  end

let exhaust t detail =
  if Trace.active t.trace then
    Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"budget_exhausted"
      [ ("detail", Trace.Str detail) ];
  raise (Budget_exhausted detail)

let run ?budget t ~until =
  let budget =
    match budget with Some _ as b -> b | None -> current_budget ()
  in
  t.stopping <- false;
  if Trace.active t.trace then
    Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"run_start"
      [ ("until", Trace.Float until) ];
  let continue = ref true in
  while !continue && not t.stopping do
    maybe_sweep t;
    match q_peek_time t with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some _ -> (
        match q_pop t with
        | None -> continue := false
        | Some (time, h) -> (
            match h.state with
            | `Cancelled -> decr t.cancelled
            | `Fired -> ()
            | `Pending ->
                (match budget with
                | None -> ()
                | Some b ->
                    if time > b.max_time then
                      exhaust t
                        (Printf.sprintf
                           "virtual-time budget exhausted: next event at %g \
                            past max_time %g"
                           time b.max_time);
                    if b.events_left <= 0 then
                      exhaust t
                        (Printf.sprintf
                           "event budget exhausted at t=%g (max_events \
                            reached)"
                           t.clock);
                    b.events_left <- b.events_left - 1);
                t.clock <- time;
                h.state <- `Fired;
                h.f ()))
  done;
  if until < infinity && t.clock < until && not t.stopping then t.clock <- until;
  if Trace.active t.trace then
    Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"run_end"
      [ ("pending", Trace.Int (q_size t)) ]
