type handle = { mutable state : [ `Pending | `Fired | `Cancelled ]; f : unit -> unit }

type t = {
  mutable clock : float;
  events : handle Event_queue.t;
  mutable stopping : bool;
  trace : Trace.t;
}

let create ?trace () =
  let trace = match trace with Some tr -> tr | None -> Trace.default () in
  let t = { clock = 0.; events = Event_queue.create (); stopping = false; trace } in
  (* Marks a fresh virtual clock: observers (e.g. the invariant checker)
     reset per-run state like the time-monotonicity watermark here. *)
  if Trace.active trace then Trace.emit trace ~time:0. ~cat:"sim" ~name:"created" [];
  t

let now t = t.clock
let trace t = t.trace

let at t time f =
  if time < t.clock then
    invalid_arg
      (Printf.sprintf "Sim.at: time %g is in the past (now %g)" time t.clock);
  let h = { state = `Pending; f } in
  Event_queue.push t.events ~time h;
  h

let after t delay f =
  if delay < 0. then invalid_arg "Sim.after: negative delay";
  at t (t.clock +. delay) f

let cancel h = if h.state = `Pending then h.state <- `Cancelled

let is_pending h = h.state = `Pending

let null_handle = { state = `Fired; f = ignore }

let pending_events t = Event_queue.size t.events

let stop t = t.stopping <- true

let run t ~until =
  t.stopping <- false;
  if Trace.active t.trace then
    Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"run_start"
      [ ("until", Trace.Float until) ];
  let continue = ref true in
  while !continue && not t.stopping do
    match Event_queue.peek_time t.events with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some _ -> (
        match Event_queue.pop t.events with
        | None -> continue := false
        | Some (time, h) -> (
            match h.state with
            | `Cancelled | `Fired -> ()
            | `Pending ->
                t.clock <- time;
                h.state <- `Fired;
                h.f ()))
  done;
  if until < infinity && t.clock < until && not t.stopping then t.clock <- until;
  if Trace.active t.trace then
    Trace.emit t.trace ~time:t.clock ~cat:"sim" ~name:"run_end"
      [ ("pending", Trace.Int (Event_queue.size t.events)) ]
