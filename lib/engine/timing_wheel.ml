(* Hierarchical timing wheel with a binary-heap overflow, keyed by
   (time, insertion sequence) exactly like [Event_queue]: the two backends
   must produce byte-identical pop orders so a simulation is deterministic
   whichever one the scheduler uses.

   Layout. Level l has [nslots] slots of width w_l = granularity * nslots^l;
   an entry lives in the lowest level whose current window (the [nslots]
   slots starting at the wheel position) contains its timestamp, and spills
   to the [overflow] heap beyond the top level's window. Entries at or
   before the wheel position sit in [ready], a small heap ordered by
   (time, seq) — pops come from there, so within-slot order is exact even
   though slot lists are unsorted.

   All bucketing is integer arithmetic on the level-0 absolute slot index
   [idx0 time = int_of_float (time /. granularity)] (times are >= 0, so
   truncation is floor). Floats appear only in pre-guards against indices
   too large to compute; the integer comparison is what decides placement,
   so a boundary-rounding disagreement between a float guard and the
   integer rule cannot misorder entries — at worst an entry takes the
   overflow path, which is ordered anyway.

   Invariants, with [cur0] the wheel position (a level-0 absolute index):
   - every wheel entry e has [idx0 e.time >= cur0]; [ready] holds exactly
     the entries with [idx0 e.time < cur0];
   - a slot array cell at level l holds entries of a single absolute
     level-l index in [cur0/r_l, cur0/r_l + nslots) (r_l = nslots^l);
   - [overflow] entries do not fit any level's current window, so every
     one of them is strictly later than every wheel entry.
   [settle] advances [cur0] only after cascading the then-current slot of
   every upper level down and draining newly-fitting overflow entries, so
   no entry is ever left behind the position that scans for it. *)

type 'a entry = { time : float; seq : int; value : 'a }

(* --- Small binary min-heap of entries, ordered by (time, seq). Used for
   [ready] and [overflow]. Vacated slots are reset to [None] so the heap
   never retains popped or pruned closures (same contract as
   [Event_queue]). *)
module Eheap = struct
  type 'a t = { mutable heap : 'a entry option array; mutable size : int }

  let create () = { heap = [||]; size = 0 }

  let get h i = match h.heap.(i) with Some e -> e | None -> assert false

  let less (a : 'a entry) (b : 'a entry) =
    a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let push h e =
    if h.size = Array.length h.heap then begin
      let cap = max 16 (2 * Array.length h.heap) in
      let a = Array.make cap None in
      Array.blit h.heap 0 a 0 h.size;
      h.heap <- a
    end;
    let i = ref h.size in
    h.size <- h.size + 1;
    h.heap.(!i) <- Some e;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less e (get h parent) then begin
        h.heap.(!i) <- h.heap.(parent);
        h.heap.(parent) <- Some e;
        i := parent
      end
      else continue := false
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = get h 0 in
      h.size <- h.size - 1;
      if h.size > 0 then begin
        let e = get h h.size in
        h.heap.(0) <- Some e;
        h.heap.(h.size) <- None;
        let n = h.size in
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < n && less (get h l) (get h !smallest) then smallest := l;
          if r < n && less (get h r) (get h !smallest) then smallest := r;
          if !smallest <> !i then begin
            h.heap.(!i) <- h.heap.(!smallest);
            h.heap.(!smallest) <- Some e;
            i := !smallest
          end
          else continue := false
        done
      end
      else h.heap.(0) <- None;
      Some top
    end

  let peek h = if h.size = 0 then None else Some (get h 0)

  let clear h =
    Array.fill h.heap 0 h.size None;
    h.size <- 0

  let drain_into h f =
    (* Hand every entry to [f] in arbitrary order, emptying the heap. *)
    for i = 0 to h.size - 1 do
      f (get h i);
      h.heap.(i) <- None
    done;
    h.size <- 0

  let compact h =
    let cap = if h.size = 0 then 0 else max 16 h.size in
    if Array.length h.heap > cap then begin
      let a = Array.make cap None in
      Array.blit h.heap 0 a 0 h.size;
      h.heap <- a
    end
end

type 'a t = {
  granularity : float; (* level-0 slot width w_0, seconds *)
  nslots : int; (* slots per level *)
  nlevels : int;
  widths : float array; (* widths.(l) = granularity *. nslots^l *)
  ratios : int array; (* ratios.(l) = nslots^l *)
  slots : 'a entry list array array; (* slots.(l).(i): unsorted bucket *)
  counts : int array; (* live entries per level *)
  mutable cur0 : int; (* wheel position as a level-0 absolute index *)
  ready : 'a Eheap.t; (* entries at or before the position; pop source *)
  overflow : 'a Eheap.t; (* beyond the top level's window *)
  idx_cap : float; (* times past this use overflow only: idx0 overflows *)
  mutable next_seq : int;
  mutable total : int;
}

let create ?(granularity = 1e-4) ?(slots = 256) ?(levels = 4) () =
  if not (Float.is_finite granularity) || granularity <= 0. then
    invalid_arg "Timing_wheel.create: granularity must be positive and finite";
  if slots < 2 then invalid_arg "Timing_wheel.create: need at least 2 slots";
  if levels < 1 then invalid_arg "Timing_wheel.create: need at least 1 level";
  (* ratios must stay well inside the int range; 2^40 of headroom is far
     beyond any useful configuration and keeps index arithmetic exact. *)
  let max_ratio = 1 lsl 40 in
  let ratios = Array.make levels 1 in
  for l = 1 to levels - 1 do
    if ratios.(l - 1) > max_ratio / slots then
      invalid_arg "Timing_wheel.create: slots^levels too large";
    ratios.(l) <- ratios.(l - 1) * slots
  done;
  {
    granularity;
    nslots = slots;
    nlevels = levels;
    widths = Array.map (fun r -> granularity *. float_of_int r) ratios;
    ratios;
    slots = Array.init levels (fun _ -> Array.make slots []);
    counts = Array.make levels 0;
    cur0 = 0;
    ready = Eheap.create ();
    overflow = Eheap.create ();
    (* Level-0 indices are exact below 2^52; beyond that the entry goes to
       the overflow heap and stays there (see [settle]'s degraded path). *)
    idx_cap = Float.ldexp granularity 52;
    next_seq = 0;
    total = 0;
  }

let size t = t.total
let is_empty t = t.total = 0

let idx0 t time = int_of_float (time /. t.granularity)

let wheel_count t =
  let n = ref 0 in
  for l = 0 to t.nlevels - 1 do
    n := !n + t.counts.(l)
  done;
  !n

(* Place an entry (known to satisfy [idx0 >= cur0] and [time < idx_cap])
   into the lowest level of [0, max_level) whose current window contains
   it, or into overflow if none does. *)
let insert_wheel t ~max_level (e : 'a entry) i0 =
  let rec go l =
    if l >= max_level then Eheap.push t.overflow e
    else
      let r = t.ratios.(l) in
      if (i0 / r) - (t.cur0 / r) < t.nslots then begin
        let k = i0 / r mod t.nslots in
        t.slots.(l).(k) <- e :: t.slots.(l).(k);
        t.counts.(l) <- t.counts.(l) + 1
      end
      else go (l + 1)
  in
  go 0

let push t ~time v =
  if Float.is_nan time || time < 0. || time = Float.infinity then
    invalid_arg
      (Printf.sprintf "Timing_wheel.push: time %g not finite and >= 0" time);
  let e = { time; seq = t.next_seq; value = v } in
  t.next_seq <- t.next_seq + 1;
  t.total <- t.total + 1;
  if time >= t.idx_cap then Eheap.push t.overflow e
  else
    let i0 = idx0 t time in
    if i0 < t.cur0 then Eheap.push t.ready e
    else insert_wheel t ~max_level:t.nlevels e i0

(* Move overflow entries that now fit some level's window into the wheel.
   The fit test is the exact integer rule, so anything left behind is
   strictly later than everything in the wheel. *)
let drain_overflow t =
  let continue = ref true in
  while !continue do
    match Eheap.peek t.overflow with
    | Some e
      when e.time < t.idx_cap
           && (idx0 t e.time / t.ratios.(t.nlevels - 1))
              - (t.cur0 / t.ratios.(t.nlevels - 1))
              < t.nslots ->
        let e = Option.get (Eheap.pop t.overflow) in
        insert_wheel t ~max_level:t.nlevels e (idx0 t e.time)
    | _ -> continue := false
  done

(* Redistribute the current slot of every upper level into lower levels.
   Top-down, so entries cascading out of level 2 can land in the level-1
   slot that is itself about to cascade. An entry in the current level-l
   slot always fits level l-1's window (its index is within r_l = r_{l-1} *
   nslots of the position), so redistribution strictly descends. *)
let cascade_due t =
  for l = t.nlevels - 1 downto 1 do
    let k = t.cur0 / t.ratios.(l) mod t.nslots in
    match t.slots.(l).(k) with
    | [] -> ()
    | entries ->
        t.slots.(l).(k) <- [];
        t.counts.(l) <- t.counts.(l) - List.length entries;
        List.iter (fun e -> insert_wheel t ~max_level:l e (idx0 t e.time)) entries
  done

(* Advance the wheel until [ready] holds the earliest pending entry (or
   everything is empty). Each iteration either dumps one level-0 slot into
   [ready], or moves the position to the next boundary of the lowest
   occupied level (cascading and overflow-draining on the way), or — when
   the wheel is empty — rebase onto the overflow heap's minimum. *)
let settle t =
  while Eheap.peek t.ready = None && t.total > 0 do
    if wheel_count t = 0 then begin
      (* Wheel empty: everything pending is in overflow. *)
      match Eheap.peek t.overflow with
      | None -> assert false (* total > 0 and ready empty *)
      | Some e when e.time >= t.idx_cap ->
          (* Degraded far-far-future path: beyond exact index range the
             structure is just the overflow heap, which is ordered. *)
          Eheap.push t.ready (Option.get (Eheap.pop t.overflow))
      | Some e ->
          t.cur0 <- idx0 t e.time;
          drain_overflow t
    end
    else begin
      drain_overflow t;
      cascade_due t;
      (* Scan level 0 only up to the next level-1 boundary: a level-1 slot
         past that boundary may hold entries earlier than a level-0 entry
         further along the window, and it only cascades once the position
         reaches it. (The boundary also equals one full wrap when there is
         a single level, so the scan never aliases slots.) *)
      let boundary = ((t.cur0 / t.nslots) + 1) * t.nslots in
      if t.counts.(0) > 0 then begin
        let found = ref false in
        let pos = ref t.cur0 in
        while (not !found) && !pos < boundary do
          (match t.slots.(0).(!pos mod t.nslots) with
          | [] -> ()
          | entries ->
              found := true;
              t.slots.(0).(!pos mod t.nslots) <- [];
              t.counts.(0) <- t.counts.(0) - List.length entries;
              List.iter (Eheap.push t.ready) entries;
              t.cur0 <- !pos + 1);
          incr pos
        done;
        (* Nothing before the boundary: step onto it; the next iteration
           cascades the level-1 slot that starts there and rescans. *)
        if not !found then t.cur0 <- boundary
      end
      else begin
        (* Level 0 empty: jump to the next boundary of the lowest occupied
           level (every level's current slot was just cascaded, so nothing
           is skipped). If only overflow remains, the loop rebases next. *)
        let l = ref 1 in
        while !l < t.nlevels && t.counts.(!l) = 0 do
          incr l
        done;
        if !l < t.nlevels then begin
          let r = t.ratios.(!l) in
          t.cur0 <- ((t.cur0 / r) + 1) * r
        end
      end
    end
  done

let pop t =
  settle t;
  match Eheap.pop t.ready with
  | None -> None
  | Some e ->
      t.total <- t.total - 1;
      Some (e.time, e.value)

let peek_time t =
  settle t;
  match Eheap.peek t.ready with None -> None | Some e -> Some e.time

let clear t =
  Eheap.clear t.ready;
  Eheap.clear t.overflow;
  for l = 0 to t.nlevels - 1 do
    Array.fill t.slots.(l) 0 t.nslots [];
    t.counts.(l) <- 0
  done;
  t.total <- 0

let prune t ~keep =
  let kept = ref 0 in
  let keep_entry (e : 'a entry) = keep e.value in
  (* Rebuild both heaps from their survivors; heap pushes re-establish the
     (time, seq) order exactly. *)
  let rebuild h =
    let survivors = ref [] in
    Eheap.drain_into h (fun e ->
        if keep_entry e then survivors := e :: !survivors);
    List.iter
      (fun e ->
        incr kept;
        Eheap.push h e)
      !survivors
  in
  rebuild t.ready;
  rebuild t.overflow;
  for l = 0 to t.nlevels - 1 do
    let count = ref 0 in
    for k = 0 to t.nslots - 1 do
      let survivors = List.filter keep_entry t.slots.(l).(k) in
      t.slots.(l).(k) <- survivors;
      count := !count + List.length survivors
    done;
    t.counts.(l) <- !count;
    kept := !kept + !count
  done;
  t.total <- !kept

let compact t =
  Eheap.compact t.ready;
  Eheap.compact t.overflow
