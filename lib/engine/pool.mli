(** Fixed pool of worker domains (stdlib-only: [Domain] + [Mutex] +
    [Condition]).

    Built for the experiment runner: a grid of independent simulation cells
    is mapped over the pool, each cell running on whichever worker domain
    picks it up. Results come back positionally, so callers see the same
    ordering regardless of scheduling.

    Threading contract: [map] and [shutdown] must be called from the owning
    (coordinating) domain; tasks run on worker domains and must not touch
    the coordinator's domain-local state (e.g. its {!Trace.default} bus —
    each worker domain has its own). *)

type t

(** [create n] spawns [n] worker domains ([n >= 1]). Remember that the
    coordinating domain also counts against the runtime's recommended
    domain count. *)
val create : int -> t

(** Number of worker domains. *)
val size : t -> int

(** [try_map t f items] runs [f items.(i)] for every [i] on the pool and
    blocks until all are done. Every task runs to completion regardless of
    other tasks' failures: slot [i] is [Ok (f items.(i))], or
    [Error (exn, backtrace)] if that task raised — one crashing cell never
    poisons the batch. Tasks must not themselves call [try_map], [map] or
    [shutdown] on this pool. *)
val try_map :
  t -> ('a -> 'b) -> 'a array -> ('b, exn * Printexc.raw_backtrace) result array

(** [map t f items] is the fail-fast variant: result [i] is [f items.(i)],
    and if any task raises, the batch's queued-but-unstarted tasks are
    discarded (they never run), in-flight tasks finish, and the first
    exception observed is re-raised on the caller with its backtrace — so
    [map] returns promptly after a failure and a subsequent {!shutdown}
    does not burn time on abandoned work. Use {!try_map} to run every task
    and observe per-task outcomes instead. Tasks must not themselves call
    [try_map], [map] or [shutdown] on this pool. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [shutdown t] finishes queued work, then joins all workers. Idempotent.
    Calling [map] afterwards raises [Invalid_argument]. *)
val shutdown : t -> unit
