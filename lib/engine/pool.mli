(** Fixed pool of worker domains (stdlib-only: [Domain] + [Mutex] +
    [Condition]).

    Built for the experiment runner: a grid of independent simulation cells
    is mapped over the pool, each cell running on whichever worker domain
    picks it up. Results come back positionally, so callers see the same
    ordering regardless of scheduling.

    Threading contract: [map] and [shutdown] must be called from the owning
    (coordinating) domain; tasks run on worker domains and must not touch
    the coordinator's domain-local state (e.g. its {!Trace.default} bus —
    each worker domain has its own). *)

type t

(** [create n] spawns [n] worker domains ([n >= 1]). Remember that the
    coordinating domain also counts against the runtime's recommended
    domain count. *)
val create : int -> t

(** Number of worker domains. *)
val size : t -> int

(** [map t f items] runs [f items.(i)] for every [i] on the pool and blocks
    until all are done; result [i] is [f items.(i)]. If one or more tasks
    raise, the remaining tasks still run to completion and the first
    exception observed is re-raised on the caller. Tasks must not
    themselves call [map] or [shutdown] on this pool. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

(** [shutdown t] finishes queued work, then joins all workers. Idempotent.
    Calling [map] afterwards raises [Invalid_argument]. *)
val shutdown : t -> unit
