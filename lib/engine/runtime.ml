(* Record-of-closures runtime: one allocation per runtime, one indirect
   call per operation. The protocol hot paths go through [at]/[after]
   once per packet or timer, so the indirection is noise next to the
   scheduling work behind it. *)

type handle = { h_cancel : unit -> unit; h_pending : unit -> bool }

let handle ~cancel ~is_pending = { h_cancel = cancel; h_pending = is_pending }

let null_handle = { h_cancel = ignore; h_pending = (fun () -> false) }

let cancel h = h.h_cancel ()
let is_pending h = h.h_pending ()

type t = {
  r_now : unit -> float;
  r_at : float -> (unit -> unit) -> handle;
  r_after : float -> (unit -> unit) -> handle;
  r_trace : Trace.t;
  r_fresh_id : unit -> int;
}

let make ~now ~at ~after ~trace ~fresh_id =
  { r_now = now; r_at = at; r_after = after; r_trace = trace;
    r_fresh_id = fresh_id }

let now t = t.r_now ()
let at t time f = t.r_at time f
let after t delay f = t.r_after delay f
let trace t = t.r_trace
let fresh_id t = t.r_fresh_id ()
