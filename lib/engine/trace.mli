(** Structured trace bus.

    Simulation components emit typed events — [(time, category, name,
    fields)] — onto a bus, which fans them out to pluggable sinks (JSONL
    file, stdout, in-memory for tests) and optionally keeps the most recent
    events in a ring buffer. A bus with no sinks and no ring is inactive:
    [emit] returns immediately, and instrumentation sites guard field-list
    construction behind {!active}, so tracing costs one branch per site when
    off.

    Every {!Sim.create} attaches to the {!default} bus of the calling domain
    unless told otherwise, which is how [tfrc_sim --trace]/[--check] observe
    simulations built deep inside an experiment, and how
    {!Tfrc.Invariants} audits runs online.

    {2 Threading contract}

    A bus is {b not} thread-safe: [emit], [add_sink], [remove_sink] and
    [close] must all happen on the domain that uses the bus. Synchronising
    the hot [emit] path would tax every traced simulation, so none is done.
    Instead, {!default} is {e domain-local} ([Domain.DLS]): each domain
    lazily gets its own inert bus, and simulations running on a worker
    domain emit to that worker's bus only. To observe events across
    domains, attach a {!memory_sink} to the worker's bus from {e within}
    the worker, then hand the captured event list back to the coordinating
    domain and replay it with {!emit} — this is what [Exp.Runner] does to
    keep [--trace]/[--check] output identical between sequential and
    parallel runs. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type event = {
  time : float;  (** virtual time the event was emitted at *)
  cat : string;  (** component category: "sim", "link", "queue", "fault", "tfrc" *)
  name : string;  (** event name within the category, e.g. "rate_update" *)
  fields : (string * value) list;
}

(** A sink receives every event emitted while attached. [close] flushes and
    releases whatever the sink holds; the bus calls it from {!close}. *)
type sink = { emit : event -> unit; close : unit -> unit }

type t

(** [create ?ring ()] makes a bus keeping the last [ring] events in memory
    (default 0: no ring). *)
val create : ?ring:int -> unit -> t

(** The calling domain's default bus. Created lazily per domain
    ([Domain.DLS]), no ring, no sinks: inert until someone attaches a sink.
    Distinct domains see distinct buses — see the threading contract
    above. *)
val default : unit -> t

(** [active t] is true when at least one sink is attached or a ring is
    configured. Guard event construction with this at hot call sites. *)
val active : t -> bool

(** [emit t ~time ~cat ~name fields] delivers one event to the ring and all
    sinks. No-op when the bus is inactive. *)
val emit :
  t -> time:float -> cat:string -> name:string -> (string * value) list -> unit

val add_sink : t -> sink -> unit

(** [remove_sink t s] detaches [s] (by physical equality). Does not call
    [s.close]. *)
val remove_sink : t -> sink -> unit

(** [close t] closes and detaches every sink. *)
val close : t -> unit

(** Number of events delivered over the bus's lifetime (while active). *)
val emitted : t -> int

(** The ring contents, oldest first. Empty when the bus has no ring. *)
val recent : t -> event list

(** [memory_sink ()] is a sink plus a function returning everything it has
    received, in emission order. *)
val memory_sink : unit -> sink * (unit -> event list)

(** JSONL sink on an existing channel; [close] flushes but does not close
    the channel. *)
val jsonl_sink : out_channel -> sink

(** JSONL sink writing to [path] (truncates); [close] closes the file. *)
val file_sink : string -> sink

val stdout_sink : unit -> sink

(** One-line JSON rendering: [{"t":…,"cat":"…","ev":"…",<fields>}]. NaN
    renders as [null]. *)
val to_json : event -> string

(** Field accessors; [get_float] also accepts [Int] fields. *)
val find : event -> string -> value option

val get_float : event -> string -> default:float -> float
val get_int : event -> string -> default:int -> int
val get_str : event -> string -> default:string -> string
val get_bool : event -> string -> default:bool -> bool
