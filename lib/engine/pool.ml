(* Fixed pool of worker domains fed from a mutex+condition work queue.

   Stdlib-only by design (no domainslib in the image): workers block on
   [nonempty] until a task or shutdown arrives; [map] enqueues one task per
   array element and blocks on [all_done] until the last one finishes.

   Memory-model note: [map]'s results array is written by workers and read
   by the caller, but every slot write happens before the worker's matching
   [remaining] decrement under the pool mutex, and the caller only reads the
   array after observing [remaining = 0] under that same mutex — so all
   writes are published before any read. *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  tasks : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

let rec worker t =
  Mutex.lock t.m;
  while Queue.is_empty t.tasks && not t.closing do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.tasks then Mutex.unlock t.m (* closing: drain done *)
  else begin
    let task = Queue.pop t.tasks in
    Mutex.unlock t.m;
    task ();
    worker t
  end

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      tasks = Queue.create ();
      closing = false;
      workers = [||];
    }
  in
  t.workers <- Array.init n (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = Array.length t.workers

(* Shared batch machinery. Each task records its own ('b, exn * bt) result
   slot; [drain_on_error] additionally cancels the batch's queued-but-
   unstarted tasks the moment one task raises. Only one batch can be in
   flight at a time (map/try_map block their caller and tasks may not
   submit work), so everything sitting in [t.tasks] at failure time belongs
   to this batch and clearing the queue drops exactly the unstarted
   remainder — their slots stay [None]. *)
let run_batch ~drain_on_error t f items =
  let n = Array.length items in
  let results = Array.make n None in
  let first_error = ref None in
  let remaining = ref n in
  let all_done = Condition.create () in
  Mutex.lock t.m;
  if t.closing then begin
    Mutex.unlock t.m;
    invalid_arg "Pool.map: pool is shut down"
  end;
  for i = 0 to n - 1 do
    Queue.add
      (fun () ->
        (match f items.(i) with
        | r -> results.(i) <- Some (Ok r)
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            results.(i) <- Some (Error (e, bt));
            Mutex.lock t.m;
            if !first_error = None then first_error := Some (e, bt);
            if drain_on_error then begin
              remaining := !remaining - Queue.length t.tasks;
              Queue.clear t.tasks
            end;
            Mutex.unlock t.m);
        Mutex.lock t.m;
        decr remaining;
        if !remaining <= 0 then Condition.signal all_done;
        Mutex.unlock t.m)
      t.tasks
  done;
  Condition.broadcast t.nonempty;
  while !remaining > 0 do
    Condition.wait all_done t.m
  done;
  Mutex.unlock t.m;
  (results, !first_error)

let try_map t f items =
  if Array.length items = 0 then [||]
  else
    let results, _ = run_batch ~drain_on_error:false t f items in
    Array.map
      (function Some r -> r | None -> assert false (* every task ran *))
      results

let map t f items =
  if Array.length items = 0 then [||]
  else
    let results, first_error = run_batch ~drain_on_error:true t f items in
    match first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.map
          (function Some (Ok r) -> r | _ -> assert false (* error raised *))
          results

let shutdown t =
  Mutex.lock t.m;
  let already = t.closing in
  t.closing <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  if not already then Array.iter Domain.join t.workers
