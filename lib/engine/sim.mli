(** Discrete-event simulation scheduler.

    A [Sim.t] owns a virtual clock and an event heap. Agents schedule
    callbacks at absolute or relative virtual times; [run] executes events in
    timestamp order, advancing the clock. This plays the role of the ns-2
    scheduler in the paper's experiments. *)

type t

(** Cancellable handle for a scheduled event (a timer). *)
type handle

(** Event-queue backend: a hierarchical {!Timing_wheel} (default — O(levels)
    per operation, built for very many short-horizon timers) or the binary
    heap {!Event_queue} (O(log n)). Both obey the same (time, insertion
    sequence) dequeue contract, so a simulation's behavior — including
    traces — is byte-identical across backends. *)
type scheduler = [ `Heap | `Wheel ]

(** [create ?trace ?scheduler ()] makes a scheduler at virtual time 0,
    attached to [trace] (default: the process-wide {!Trace.default} bus),
    using the given queue backend (default: the domain's ambient
    {!default_scheduler}). Emits a [sim/created] event so observers can
    reset per-run state. *)
val create : ?trace:Trace.t -> ?scheduler:scheduler -> unit -> t

(** [set_default_scheduler s] sets the calling domain's ambient backend,
    used by {!create} when [?scheduler] is omitted (initially [`Wheel]).
    [Exp.Runner] re-installs the coordinator's choice on each worker
    domain, so setting it once before a run covers [-j N] too. *)
val set_default_scheduler : scheduler -> unit

val default_scheduler : unit -> scheduler

(** [scheduler_of_string s] parses ["heap"] / ["wheel"];
    [scheduler_name] is its inverse. *)
val scheduler_of_string : string -> scheduler option

val scheduler_name : scheduler -> string

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** The trace bus this scheduler (and components built on it) emits to. *)
val trace : t -> Trace.t

(** [fresh_id t] allocates the next identity from this simulation's private
    counter (1, 2, 3, ...). Used for packet ids and default link labels, so
    identities are deterministic per simulation: the stream depends only on
    this sim's own allocation order, never on other sims in the process or
    on which domain runs the sim. *)
val fresh_id : t -> int

(** [ids_allocated t] is how many ids {!fresh_id} has handed out. *)
val ids_allocated : t -> int

(** [at t time f] schedules [f] to run at absolute virtual [time]. [time]
    must be finite (NaN and infinities raise [Invalid_argument]) and not
    earlier than [now t]. *)
val at : t -> float -> (unit -> unit) -> handle

(** [after t delay f] schedules [f] to run [delay] seconds from now.
    [delay] must be finite and non-negative. *)
val after : t -> float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing. Idempotent. *)
val cancel : handle -> unit

(** [is_pending h] is [true] if the event has neither fired nor been
    cancelled. *)
val is_pending : handle -> bool

(** A dummy handle that is never pending; useful as an initial value. *)
val null_handle : handle

(** [runtime t] is the sans-IO {!Runtime} view of this scheduler — virtual
    clock, cancellable timers, trace bus and id allocator — the canonical
    runtime implementation that protocol state machines ([Tfrc_sender],
    [Tfrc_receiver], the baselines) are written against. Memoized: repeated
    calls return the same record. Timers scheduled through it are ordinary
    sim events, so behavior — including traces and [-j N] byte-identity —
    is exactly as if the protocol called [Sim.at] directly. *)
val runtime : t -> Runtime.t

(** {2 Cooperative budgets}

    A budget caps what {!run} may consume: a total count of executed events
    (shared across every [run] while the budget is installed, so a job that
    builds several schedulers still has one meter) and a virtual-time
    ceiling per run. When exhausted, [run] raises {!Budget_exhausted}
    instead of spinning forever — the supervisor that installed the budget
    catches it and marks the job timed out (see [Exp.Runner]). *)

type budget

(** Raised by {!run} when the installed budget is exhausted; the payload is
    a human-readable reason. *)
exception Budget_exhausted of string

(** [budget ?max_events ?max_time ()] makes a fresh budget. [max_events]
    is the total number of events the budget allows (positive);
    [max_time] caps each run's virtual clock (positive, seconds). Omitted
    limits are unlimited. *)
val budget : ?max_events:int -> ?max_time:float -> unit -> budget

(** [with_budget b f] installs [b] as the calling domain's ambient budget
    (consulted by every {!run} without an explicit [?budget]), runs [f],
    and restores the previous ambient budget — even on exceptions. *)
val with_budget : budget -> (unit -> 'a) -> 'a

(** [set_budget b] sets the calling domain's ambient budget directly;
    [current_budget ()] reads it. Prefer {!with_budget}. *)
val set_budget : budget option -> unit

val current_budget : unit -> budget option

(** [run t ~until] executes events in time order until the heap is empty or
    the next event is past [until]; the clock ends at [until] (or at the
    last event if the heap drains first and [until] is infinite).

    [?budget] (default: the domain's ambient budget, see {!with_budget})
    meters the run: each executed event decrements the shared event
    allowance, and an event past the budget's [max_time] stops the run.
    Exhaustion emits a [sim/budget_exhausted] trace event and raises
    {!Budget_exhausted}.

    Between pops, when the heap has grown past a small floor and more than
    half of it is cancelled timers, the run loop prunes the cancelled
    entries in bulk (emitting a [sim/sweep] trace event), so cancel-heavy
    workloads keep {!pending_events} — and the memory retained by dead
    timer closures — bounded by twice the live-timer count. *)
val run : ?budget:budget -> t -> until:float -> unit

(** [pending_events t] is the number of events still in the heap, including
    cancelled events that have not yet been swept out (see {!run} for when
    sweeps happen). *)
val pending_events : t -> int

(** [stop t] makes [run] return after the currently executing event. *)
val stop : t -> unit
