(** Discrete-event simulation scheduler.

    A [Sim.t] owns a virtual clock and an event heap. Agents schedule
    callbacks at absolute or relative virtual times; [run] executes events in
    timestamp order, advancing the clock. This plays the role of the ns-2
    scheduler in the paper's experiments. *)

type t

(** Cancellable handle for a scheduled event (a timer). *)
type handle

(** [create ?trace ()] makes a scheduler at virtual time 0, attached to
    [trace] (default: the process-wide {!Trace.default} bus). Emits a
    [sim/created] event so observers can reset per-run state. *)
val create : ?trace:Trace.t -> unit -> t

(** [now t] is the current virtual time in seconds. *)
val now : t -> float

(** The trace bus this scheduler (and components built on it) emits to. *)
val trace : t -> Trace.t

(** [at t time f] schedules [f] to run at absolute virtual [time]. [time]
    must not be earlier than [now t]. *)
val at : t -> float -> (unit -> unit) -> handle

(** [after t delay f] schedules [f] to run [delay] seconds from now. *)
val after : t -> float -> (unit -> unit) -> handle

(** [cancel h] prevents the event from firing. Idempotent. *)
val cancel : handle -> unit

(** [is_pending h] is [true] if the event has neither fired nor been
    cancelled. *)
val is_pending : handle -> bool

(** A dummy handle that is never pending; useful as an initial value. *)
val null_handle : handle

(** [run t ~until] executes events in time order until the heap is empty or
    the next event is past [until]; the clock ends at [until] (or at the
    last event if the heap drains first and [until] is infinite).

    Between pops, when the heap has grown past a small floor and more than
    half of it is cancelled timers, the run loop prunes the cancelled
    entries in bulk (emitting a [sim/sweep] trace event), so cancel-heavy
    workloads keep {!pending_events} — and the memory retained by dead
    timer closures — bounded by twice the live-timer count. *)
val run : t -> until:float -> unit

(** [pending_events t] is the number of events still in the heap, including
    cancelled events that have not yet been swept out (see {!run} for when
    sweeps happen). *)
val pending_events : t -> int

(** [stop t] makes [run] return after the currently executing event. *)
val stop : t -> unit
