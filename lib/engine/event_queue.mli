(** Binary min-heap priority queue keyed by (time, insertion sequence).

    Events with equal timestamps dequeue in insertion order, which keeps
    simulations deterministic.

    The queue never retains references to popped or cleared elements:
    vacated slots are reset immediately, so a long-lived queue does not pin
    fired or cancelled closures (and whatever they captured). *)

type 'a t

val create : unit -> 'a t

(** [push q ~time v] inserts [v] at priority [time]. *)
val push : 'a t -> time:float -> 'a -> unit

(** [pop q] removes and returns the earliest element, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time q] is the timestamp of the earliest element, if any. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [clear q] removes all elements, dropping every reference they held. *)
val clear : 'a t -> unit

(** [prune q ~keep] removes every element [v] with [keep v = false],
    preserving (time, seq) order among survivors. O(n log n); used to sweep
    cancelled timers out of a scheduler heap in bulk. *)
val prune : 'a t -> keep:('a -> bool) -> unit

(** [compact q] shrinks the backing array to fit the current size (down to
    nothing when empty). Useful after a burst left a large capacity behind. *)
val compact : 'a t -> unit
