(* Structured trace bus: typed events fanned out to pluggable sinks, with an
   optional in-memory ring of the most recent events for post-mortems. A bus
   with no sinks and no ring is inactive and [emit] is a no-op, so
   instrumentation sites guard with [active] and pay one branch when tracing
   is off. *)

type value = Bool of bool | Int of int | Float of float | Str of string

type event = {
  time : float;
  cat : string;
  name : string;
  fields : (string * value) list;
}

type sink = { emit : event -> unit; close : unit -> unit }

type t = {
  mutable sinks : sink list;
  mutable ring : event array;
  ring_cap : int;
  mutable ring_pos : int; (* next write position *)
  mutable ring_len : int;
  mutable emitted : int;
}

let create ?(ring = 0) () =
  if ring < 0 then invalid_arg "Trace.create: negative ring size";
  { sinks = []; ring = [||]; ring_cap = ring; ring_pos = 0; ring_len = 0; emitted = 0 }

(* Per-domain bus that every [Sim.create ()] attaches to, so a CLI flag or
   a test can observe simulations it did not build itself. No ring: fully
   inert until a sink is added.

   This used to be a [lazy] global, which is shared mutable state: two
   domains forcing it or mutating [sinks] concurrently would race. Buses are
   deliberately unsynchronised (emit is on the hot path), so instead each
   domain gets its own inert default bus via [Domain.DLS]. Cross-domain
   observation is done above this layer: a parallel runner captures each
   worker's events with a [memory_sink] on the worker's bus and replays them
   on the coordinating domain's bus (see [Exp.Runner]). *)
let default_key = Domain.DLS.new_key (fun () -> create ())
let default () = Domain.DLS.get default_key

let active t = t.sinks <> [] || t.ring_cap > 0

let add_sink t s = t.sinks <- t.sinks @ [ s ]
let remove_sink t s = t.sinks <- List.filter (fun s' -> s' != s) t.sinks

let close t =
  List.iter (fun s -> s.close ()) t.sinks;
  t.sinks <- []

let emitted t = t.emitted

(* Manual fan-out loop: [List.iter] would allocate a closure per event. *)
let rec fanout sinks ev =
  match sinks with
  | [] -> ()
  | s :: rest ->
      s.emit ev;
      fanout rest ev

let emit t ~time ~cat ~name fields =
  if active t then begin
    let ev = { time; cat; name; fields } in
    t.emitted <- t.emitted + 1;
    if t.ring_cap > 0 then begin
      if t.ring = [||] then t.ring <- Array.make t.ring_cap ev;
      t.ring.(t.ring_pos) <- ev;
      t.ring_pos <- (t.ring_pos + 1) mod t.ring_cap;
      if t.ring_len < t.ring_cap then t.ring_len <- t.ring_len + 1
    end;
    fanout t.sinks ev
  end

let recent t =
  List.init t.ring_len (fun i ->
      t.ring.((t.ring_pos - t.ring_len + i + (2 * t.ring_cap)) mod t.ring_cap))

(* --- Field access -------------------------------------------------------- *)

(* These scans are on the checker's per-event hot path: [String.equal]
   (not polymorphic [=], which goes through the generic compare runtime)
   and a direct default return (no intermediate option allocation). *)

let find ev key =
  let rec go = function
    | [] -> None
    | (k, v) :: rest -> if String.equal k key then Some v else go rest
  in
  go ev.fields

let get_float ev key ~default =
  let rec go = function
    | [] -> default
    | (k, v) :: rest ->
        if String.equal k key then
          match v with Float f -> f | Int i -> float_of_int i | _ -> default
        else go rest
  in
  go ev.fields

let get_int ev key ~default =
  let rec go = function
    | [] -> default
    | (k, v) :: rest ->
        if String.equal k key then match v with Int i -> i | _ -> default
        else go rest
  in
  go ev.fields

let get_str ev key ~default =
  let rec go = function
    | [] -> default
    | (k, v) :: rest ->
        if String.equal k key then match v with Str s -> s | _ -> default
        else go rest
  in
  go ev.fields

let get_bool ev key ~default =
  let rec go = function
    | [] -> default
    | (k, v) :: rest ->
        if String.equal k key then match v with Bool b -> b | _ -> default
        else go rest
  in
  go ev.fields

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.12g" f

let json_value = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)

let to_json ev =
  let fields =
    List.map
      (fun (k, v) -> Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
      ev.fields
  in
  Printf.sprintf "{\"t\":%s,\"cat\":\"%s\",\"ev\":\"%s\"%s}" (json_float ev.time)
    (json_escape ev.cat) (json_escape ev.name)
    (match fields with [] -> "" | l -> "," ^ String.concat "," l)

(* --- Sinks --------------------------------------------------------------- *)

let memory_sink () =
  let events = ref [] in
  ( { emit = (fun ev -> events := ev :: !events); close = ignore },
    fun () -> List.rev !events )

let jsonl_sink oc =
  {
    emit =
      (fun ev ->
        output_string oc (to_json ev);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let file_sink path =
  let oc = open_out path in
  {
    emit =
      (fun ev ->
        output_string oc (to_json ev);
        output_char oc '\n');
    close = (fun () -> close_out oc);
  }

let stdout_sink () = jsonl_sink stdout
