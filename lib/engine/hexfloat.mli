(** Lossless float <-> string encoding (hexadecimal floats).

    [%.12g]-style decimal rendering is not a round trip for doubles;
    OCaml's [%h] hexadecimal notation is, including for [nan],
    [infinity], [-0.] and denormals, and [float_of_string] reads it
    back exactly. Both the experiment checkpoint store
    ([Exp.Checkpoint]) and the fuzzer's scenario codec ([Fuzz.Sexp] /
    [Fuzz.Scenario]) depend on this round trip — this module is their
    single shared implementation. *)

(** [to_string f] renders [f] losslessly: ["0x1.999999999999ap-4"] for
    finite values, ["nan"] / ["inf"] / ["-inf"] for the specials. *)
val to_string : float -> string

(** [of_string s] parses anything {!to_string} produces (and any other
    [float_of_string] syntax). Raises [Failure] on malformed input. *)
val of_string : string -> float

(** [of_string_opt s] is [of_string] returning [None] on malformed
    input. *)
val of_string_opt : string -> float option

(** [equal a b] is round-trip equality: any NaN equals any NaN (payload
    bits do not survive ["nan"]), every other value compares bit-for-bit,
    so [0.] differs from [-0.]. This is the equality the round-trip
    tests check, not IEEE [=]. *)
val equal : float -> float -> bool
