(** Deterministic pseudo-random number generator (PCG32).

    Every stochastic element of the simulator draws from an explicit [Rng.t]
    so that experiments are reproducible from a seed and independent streams
    can be split off for independent traffic sources. *)

type t

(** [create ~seed] returns a fresh generator. Equal seeds give equal
    streams. *)
val create : seed:int -> t

(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Used to give each flow or source its own stream. *)
val split : t -> t

(** [for_key ~seed key] derives a generator from the pair [(seed, key)] by
    hashing (FNV-1a 64). Equal pairs give equal streams; distinct keys give
    distinct PCG32 stream selectors, so a grid of jobs keyed by cell name
    draws from non-overlapping streams in any execution order. *)
val for_key : seed:int -> string -> t

(** [for_attempt ~seed ~attempt key] derives the generator for retry number
    [attempt] of job [key]: attempt 0 is exactly [for_key ~seed key], and
    each later attempt hashes a NUL-tagged variant of the key (job keys
    never contain NUL, so attempt streams cannot collide with any grid
    cell's stream). Retries are therefore reproducible and independent of
    the attempt-0 stream. *)
val for_attempt : seed:int -> attempt:int -> string -> t

(** [copy t] duplicates the generator state (same future stream). *)
val copy : t -> t

(** [bits32 t] returns the next raw 32-bit output (as a non-negative int). *)
val bits32 : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)
val float : t -> float -> float

(** [uniform t a b] is uniform in [\[a, b)]. *)
val uniform : t -> float -> float -> float

(** [bool t ~p] is [true] with probability [p]. *)
val bool : t -> p:float -> bool

(** [exponential t ~mean] draws from an exponential distribution. *)
val exponential : t -> mean:float -> float

(** [pareto t ~shape ~scale] draws from a Pareto distribution with the given
    shape (tail index) and scale (minimum value). Heavy-tailed for
    [shape <= 2]; used for self-similar ON/OFF traffic. *)
val pareto : t -> shape:float -> scale:float -> float

(** [pareto_mean ~shape ~scale] is the analytic mean, for [shape > 1]. *)
val pareto_mean : shape:float -> scale:float -> float

(** [shuffle t a] permutes the array in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
