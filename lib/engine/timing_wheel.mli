(** Hierarchical timing wheel priority queue keyed by (time, insertion
    sequence) — a drop-in alternative to {!Event_queue} for scheduler hot
    paths with very many short-horizon timers (packet transmissions,
    retransmit/no-feedback timers across 100k+ flows).

    Level [l] consists of [slots] buckets of width [granularity * slots^l]
    seconds; an event is filed in the lowest level whose current window
    contains its timestamp and cascades toward level 0 as the wheel
    advances, so push and pop cost O(levels) bucket arithmetic plus a small
    heap bounded by one bucket's occupancy — independent of the total
    number of pending events, where a binary heap pays O(log n) per
    operation on an n-event array. Events beyond the top level's window
    spill to an overflow heap and are drained back as the wheel reaches
    them.

    Determinism contract: pops come out in exactly the same
    (time, insertion-sequence) order as {!Event_queue} — equal timestamps
    dequeue in insertion order — so the two backends are byte-identical
    under simulation, traces included. Times must be finite and
    non-negative (the scheduler's virtual clock never runs backwards);
    {!push} raises [Invalid_argument] otherwise.

    Like {!Event_queue}, the queue never retains references to popped,
    cleared or pruned elements. *)

type 'a t

(** [create ?granularity ?slots ?levels ()] makes an empty wheel.
    [granularity] (default [1e-4] s) is the level-0 bucket width — events
    closer together than this still order correctly (they share a bucket
    and sort exactly on dequeue), it only tunes how much time one bucket
    spans. [slots] (default 256) is the bucket count per level and
    [levels] (default 4) the hierarchy depth, giving a default in-wheel
    horizon of [granularity * slots^levels ≈ 4.3e5] seconds; later events
    use the overflow heap. Raises [Invalid_argument] on non-positive
    [granularity], [slots < 2], [levels < 1], or [slots^levels] too large
    for exact integer indexing. *)
val create : ?granularity:float -> ?slots:int -> ?levels:int -> unit -> 'a t

(** [push q ~time v] inserts [v] at priority [time]. Raises
    [Invalid_argument] if [time] is NaN, infinite or negative. *)
val push : 'a t -> time:float -> 'a -> unit

(** [pop q] removes and returns the earliest element, or [None] if empty. *)
val pop : 'a t -> (float * 'a) option

(** [peek_time q] is the timestamp of the earliest element, if any. *)
val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

(** [clear q] removes all elements, dropping every reference they held. *)
val clear : 'a t -> unit

(** [prune q ~keep] removes every element [v] with [keep v = false],
    preserving (time, seq) order among survivors. O(n + levels * slots);
    used to sweep cancelled timers out of a scheduler in bulk. *)
val prune : 'a t -> keep:('a -> bool) -> unit

(** [compact q] shrinks the internal heap arrays to fit their current
    occupancy, releasing capacity left behind by a burst. *)
val compact : 'a t -> unit
