(* Array-backed binary min-heap ordered by (time, seq). The sequence number
   breaks ties so that simultaneous events run in insertion order.

   Slots at indices >= size are always [Free]: [pop] and [clear] overwrite
   vacated slots so the scheduler never retains popped or cancelled closures
   (an earlier version parked the popped entry at [heap.(size)], keeping it —
   and everything its closure captured — reachable for the life of the
   queue). [Free] is also the filler for [grow], so a resize introduces no
   dummy entry either. *)

type 'a slot = Free | Busy of { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a slot array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let less a b =
  match (a, b) with
  | Busy a, Busy b -> a.time < b.time || (a.time = b.time && a.seq < b.seq)
  | Free, _ | _, Free -> assert false

let grow q =
  let cap = max 16 (2 * Array.length q.heap) in
  let h = Array.make cap Free in
  Array.blit q.heap 0 h 0 q.size;
  q.heap <- h

let push q ~time v =
  let e = Busy { time; seq = q.next_seq; value = v } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then grow q;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- e;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less e q.heap.(parent) then begin
      q.heap.(!i) <- q.heap.(parent);
      q.heap.(parent) <- e;
      i := parent
    end
    else continue := false
  done

let sift_down q =
  let n = q.size in
  let e = q.heap.(0) in
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < n && less q.heap.(l) q.heap.(!smallest) then smallest := l;
    if r < n && less q.heap.(r) q.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      q.heap.(!i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- e;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else
    match q.heap.(0) with
    | Free -> assert false
    | Busy top ->
        let result = Some (top.time, top.value) in
        q.size <- q.size - 1;
        if q.size > 0 then begin
          q.heap.(0) <- q.heap.(q.size);
          q.heap.(q.size) <- Free;
          sift_down q
        end
        else q.heap.(0) <- Free;
        result

let peek_time q =
  if q.size = 0 then None
  else match q.heap.(0) with Busy e -> Some e.time | Free -> assert false

let size q = q.size
let is_empty q = q.size = 0

let clear q =
  Array.fill q.heap 0 q.size Free;
  q.size <- 0

let prune q ~keep =
  (* Collect survivors, order them by (time, seq), and store them back as a
     prefix: a sorted array satisfies the heap invariant, so no sift is
     needed. *)
  let kept = ref [] in
  let n_kept = ref 0 in
  for i = q.size - 1 downto 0 do
    match q.heap.(i) with
    | Free -> assert false
    | Busy e as slot ->
        if keep e.value then begin
          kept := slot :: !kept;
          incr n_kept
        end
  done;
  let survivors = Array.of_list !kept in
  Array.sort
    (fun a b ->
      match (a, b) with
      | Busy a, Busy b ->
          let c = Float.compare a.time b.time in
          if c <> 0 then c else Int.compare a.seq b.seq
      | Free, _ | _, Free -> assert false)
    survivors;
  Array.blit survivors 0 q.heap 0 !n_kept;
  Array.fill q.heap !n_kept (q.size - !n_kept) Free;
  q.size <- !n_kept

let compact q =
  let cap = if q.size = 0 then 0 else max 16 q.size in
  if Array.length q.heap > cap then begin
    let h = Array.make cap Free in
    Array.blit q.heap 0 h 0 q.size;
    q.heap <- h
  end
