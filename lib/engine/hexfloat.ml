let to_string f = Printf.sprintf "%h" f

let of_string s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> failwith (Printf.sprintf "Hexfloat.of_string: %S" s)

let of_string_opt = float_of_string_opt

(* [%h] renders every NaN as "nan", so payload bits do not survive the
   round trip — only NaN-ness does. Treating all NaNs as equal matches
   what the consumers check (Stdlib.compare in Checkpoint's resume test
   does the same); everything else is compared bit-for-bit, which keeps
   -0. distinct from 0. *)
let equal a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
