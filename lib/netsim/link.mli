(** Unidirectional link: a queue discipline feeding a transmitter with a
    fixed bandwidth and propagation delay.

    Packets are serialized one at a time at [bandwidth] bits/s; each then
    propagates for [delay] seconds before delivery to the destination
    handler, so the link pipelines (a packet can be in flight while the next
    is serializing), like a real link and like ns-2's DelayLink.

    For fault injection the link carries mutable state: it can be taken
    down and brought back up ({!set_up}), and its bandwidth and delay can
    change mid-simulation ({!set_bandwidth}, {!set_delay}) to emulate route
    changes. See {!Faults} for schedulable outage/flap helpers. *)

type t

(** What happens to packets sitting in the queue when the link goes down:
    [Drop_queued] flushes them through the drop listeners (a router losing
    power), [Hold_queued] parks them until the link comes back (a pause or
    layer-2 rerouting hiccup). *)
type down_policy = Drop_queued | Hold_queued

(** [create rt ?label ~bandwidth ~delay ~queue ()] makes a link, initially
    up, on the given sans-IO runtime (use [Engine.Sim.runtime sim] under the
    simulator). Set the destination with [set_dest] before sending. [label]
    names the link in trace events ("link-N" by default, numbered from the
    runtime's id allocator); the invariant checker keys per-link
    packet-conservation counters on it.

    When the simulation's trace bus is active the link emits [link/send],
    [link/deliver], [link/drop] (with a ["queue"] or ["outage"] reason) and
    [link/up]/[link/down] events; per-packet events carry the packet's
    deterministic per-sim [id]. Up/down transitions additionally emit a
    [link/queue] snapshot of the discipline's conservation counters
    (arrivals, departures, drops, queued), which the invariant checker
    verifies satisfy [arrivals = departures + drops + queued] exactly. *)
val create :
  Engine.Runtime.t ->
  ?label:string ->
  bandwidth:float (** bits/s *) ->
  delay:float (** seconds *) ->
  queue:Queue_disc.t ->
  unit ->
  t

(** The link's trace label. *)
val label : t -> string

val set_dest : t -> Packet.handler -> unit

(** The currently installed destination ([ignore] until set). *)
val current_dest : t -> Packet.handler

(** [send t pkt] offers the packet to the queue; it is dropped if the
    discipline rejects it or the link is down (drop listeners fire either
    way). Raises [Invalid_argument] if no destination has been installed —
    sending into the placeholder would silently blackhole traffic. *)
val send : t -> Packet.t -> unit

(** [on_drop t f] registers a listener called with each dropped packet,
    whether dropped by the queue discipline or by an outage. *)
val on_drop : t -> Packet.handler -> unit

(** [set_up t ?policy up] changes the link's operational state. Going down
    applies [policy] (default [Drop_queued]) to queued packets and stalls
    the transmitter; packets already serialized still propagate. While
    down, [send] drops immediately. Coming up resumes transmission of any
    held queue. No-op if the state is unchanged.

    [Drop_queued] flushes via the discipline's [drain] operation, so the
    flushed packets are booked as queue {e drops} (not departures) exactly
    once, keeping [Queue_disc] stats conservation exact; each flushed
    packet then reaches the drop listeners with reason ["outage"]. *)
val set_up : t -> ?policy:down_policy -> bool -> unit

(** [emit_queue_stats t] emits a [link/queue] conservation-counter snapshot
    on the trace bus now (no-op when tracing is off). Called automatically
    at every up/down transition; scenarios may call it at quiescent points
    to let the invariant checker audit queue arithmetic. *)
val emit_queue_stats : t -> unit

val is_up : t -> bool

(** [on_state_change t f] calls [f up] after every up/down transition. *)
val on_state_change : t -> (bool -> unit) -> unit

(** [set_bandwidth t bw] changes the serialization rate for subsequent
    packets (the head-of-line packet finishes at the old rate). *)
val set_bandwidth : t -> float -> unit

(** [set_delay t d] changes the propagation delay for subsequent
    deliveries. *)
val set_delay : t -> float -> unit

val queue : t -> Queue_disc.t
val bandwidth : t -> float
val delay : t -> float

(** Bytes handed to the destination so far. *)
val delivered_bytes : t -> int

(** Packets dropped because the link was down (ingress arrivals plus any
    flushed queue contents). *)
val outage_drops : t -> int

(** [utilization t ~duration] is delivered bits over capacity in
    [duration] seconds. *)
val utilization : t -> duration:float -> float

(** [busy_time t] is the cumulative serialization time. *)
val busy_time : t -> float
