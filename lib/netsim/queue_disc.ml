type stats = {
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_queued : int;
}

type t = {
  enqueue : Packet.t -> bool;
  dequeue : unit -> Packet.t option;
  drain : unit -> Packet.t list;
  len_pkts : unit -> int;
  len_bytes : unit -> int;
  stats : stats;
  gauges : (string * (unit -> float)) list;
}

let make_stats () = { arrivals = 0; drops = 0; departures = 0; bytes_queued = 0 }

let drop_rate t =
  if t.stats.arrivals = 0 then 0.
  else float_of_int t.stats.drops /. float_of_int t.stats.arrivals

(* Shared drain implementation: empty the raw queue, booking every removed
   packet as a *drop* (never a departure — it was not delivered) in one
   place, so outage flushes cannot skew departure counts or byte gauges. *)
let drain_queue (q : Packet.t Queue.t) stats =
  let rec go acc =
    match Queue.take_opt q with
    | None -> List.rev acc
    | Some pkt ->
        stats.drops <- stats.drops + 1;
        stats.bytes_queued <- stats.bytes_queued - pkt.Packet.size;
        go (pkt :: acc)
  in
  go []

let imbalance t =
  t.stats.arrivals - t.stats.departures - t.stats.drops - t.len_pkts ()

let conserved t = imbalance t = 0

let gauge t name = List.assoc_opt name t.gauges
