(** Per-flow receive monitors and queue samplers.

    A [Flowmon.t] interposes on a packet handler and records arriving data
    bytes into a {!Stats.Time_series} for later rate/CoV/equivalence
    analysis. [Queue_sampler] polls a queue's occupancy on a fixed period
    (Figure 14's queue-size traces). *)

type t

(** [create now] makes an idle monitor stamped with virtual time [now]. *)
val create : (unit -> float) -> t

(** [wrap t handler] returns a handler that records then forwards. Only
    data packets ([Data] / [Tfrc_data]) are recorded. *)
val wrap : t -> Packet.handler -> Packet.handler

(** [tap t] is [wrap t ignore]: a pure sink that records. *)
val tap : t -> Packet.handler

val series : t -> Stats.Time_series.t
val packets : t -> int
val bytes : t -> int

(** [mean_rate t ~t0 ~t1] bytes/s received in the window. *)
val mean_rate : t -> t0:float -> t1:float -> float

module Queue_sampler : sig
  type sampler

  (** [start rt ~period ~queue] records (time, queue length in packets)
      immediately and then every [period] seconds until the simulation ends
      or {!stop} is called. Samples are also emitted as [queue/sample]
      trace events when the simulation's bus is active. *)
  val start : Engine.Runtime.t -> period:float -> queue:Queue_disc.t -> sampler

  val series : sampler -> Stats.Time_series.t

  (** [stop s] stops sampling and cancels the pending timer, so the sampler
      is no longer reachable from the event heap. Idempotent. *)
  val stop : sampler -> unit
end
