let create ~limit_pkts =
  if limit_pkts <= 0 then invalid_arg "Droptail.create: limit must be positive";
  let q : Packet.t Queue.t = Queue.create () in
  let stats = Queue_disc.make_stats () in
  let enqueue pkt =
    stats.arrivals <- stats.arrivals + 1;
    if Queue.length q >= limit_pkts then begin
      stats.drops <- stats.drops + 1;
      false
    end
    else begin
      Queue.add pkt q;
      stats.bytes_queued <- stats.bytes_queued + pkt.Packet.size;
      true
    end
  in
  let dequeue () =
    match Queue.take_opt q with
    | None -> None
    | Some pkt ->
        stats.departures <- stats.departures + 1;
        stats.bytes_queued <- stats.bytes_queued - pkt.Packet.size;
        Some pkt
  in
  {
    Queue_disc.enqueue;
    dequeue;
    drain = (fun () -> Queue_disc.drain_queue q stats);
    len_pkts = (fun () -> Queue.length q);
    len_bytes = (fun () -> stats.bytes_queued);
    stats;
    gauges = [];
  }
