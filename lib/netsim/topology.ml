type node = int

type edge_kind =
  | Wire of { wdelay : float; always_schedule : bool }
  | Queued of Link.t

type edge = {
  eid : int;
  esrc : node;
  edst : node;
  kind : edge_kind;
  mutable cost : float option; (* explicit override; None = cost model *)
}

type cost_model = Hop | Delay

type flow_info = {
  fid : int;
  fsrc : node;
  fdst : node;
  mutable src_recv : Packet.handler;
  mutable dst_recv : Packet.handler;
}

(* Per-packet forwarding state, installed at injection and removed at final
   delivery, on any drop (queue, outage or TTL), or when the packet turns
   out to be unroutable. Keyed by the packet's runtime-unique id. *)
type target = {
  tnode : node;
  tflow : flow_info;
  tdir : [ `Fwd | `Bwd ];
  mutable ttl : int;
}

type impact_kind = Partitioned | Rerouted | Unaffected

type t = {
  rt : Engine.Runtime.t;
  cost_model : cost_model;
  mutable n_nodes : int;
  mutable adj : edge list array; (* out-edges, most recent first *)
  mutable all_edges : edge list; (* most recent first *)
  mutable n_edges : int;
  flows : (int, flow_info) Hashtbl.t;
  targets : (int, target) Hashtbl.t;
  (* Routing tables, keyed (node, destination). [next_up] uses only up
     links; [next_all] ignores link state and is the fallback that keeps
     traffic heading into a failed link when no alternate path exists, so
     it blackholes at the outage exactly like a hand-wired topology. *)
  next_up : (node * node, edge) Hashtbl.t;
  next_all : (node * node, edge) Hashtbl.t;
  mutable dirty : bool;
  mutable recomputes : int;
  (* Pending wire deliveries, cancellable at teardown (see Dumbbell). *)
  pending : (int, Engine.Runtime.handle) Hashtbl.t;
  mutable next_token : int;
}

let create ?(cost_model = Hop) rt () =
  {
    rt;
    cost_model;
    n_nodes = 0;
    adj = Array.make 8 [];
    all_edges = [];
    n_edges = 0;
    flows = Hashtbl.create 32;
    targets = Hashtbl.create 256;
    next_up = Hashtbl.create 64;
    next_all = Hashtbl.create 64;
    dirty = true;
    recomputes = 0;
    pending = Hashtbl.create 64;
    next_token = 0;
  }

let runtime t = t.rt
let n_nodes t = t.n_nodes
let recomputes t = t.recomputes
let invalidate t = t.dirty <- true

let add_node t =
  let n = t.n_nodes in
  if n = Array.length t.adj then begin
    let bigger = Array.make (2 * n) [] in
    Array.blit t.adj 0 bigger 0 n;
    t.adj <- bigger
  end;
  t.n_nodes <- n + 1;
  n

let check_node t v name =
  if v < 0 || v >= t.n_nodes then
    invalid_arg (Printf.sprintf "Topology.%s: unknown node %d" name v)

(* --- packet movement ------------------------------------------------------ *)

let delayed t d f =
  let k = t.next_token in
  t.next_token <- k + 1;
  let h =
    Engine.Runtime.after t.rt d (fun () ->
        Hashtbl.remove t.pending k;
        f ())
  in
  Hashtbl.add t.pending k h

let loop_ev t node (pkt : Packet.t) =
  let tr = Engine.Runtime.trace t.rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:(Engine.Runtime.now t.rt) ~cat:"topo" ~name:"loop"
      [
        ("node", Engine.Trace.Int node);
        ("id", Engine.Trace.Int pkt.id);
        ("flow", Engine.Trace.Int pkt.flow);
      ]

(* Shortest-path recomputation: one Dijkstra per destination over the
   reversed graph (small graphs; selection-based extract-min is plenty),
   then each node's next hop is its out-edge minimizing
   [cost e + dist (edst e)], ties broken by lowest edge id so routes are
   deterministic regardless of hash order. *)

let edge_cost t e =
  match e.cost with
  | Some c -> c
  | None -> (
      match t.cost_model with
      | Hop -> 1.
      | Delay -> (
          match e.kind with
          | Wire { wdelay; _ } -> wdelay
          | Queued l -> Link.delay l))

let edge_usable up_only e =
  (not up_only)
  || match e.kind with Wire _ -> true | Queued l -> Link.is_up l

let fill_table t ~up_only table =
  let n = t.n_nodes in
  let in_edges = Array.make (max n 1) [] in
  List.iter
    (fun e ->
      if edge_usable up_only e then
        in_edges.(e.edst) <- e :: in_edges.(e.edst))
    t.all_edges;
  let by_id a b = compare a.eid b.eid in
  let out_sorted =
    Array.init n (fun u ->
        List.sort by_id (List.filter (edge_usable up_only) t.adj.(u)))
  in
  let dist = Array.make (max n 1) infinity in
  let visited = Array.make (max n 1) false in
  for d = 0 to n - 1 do
    Array.fill dist 0 n infinity;
    Array.fill visited 0 n false;
    dist.(d) <- 0.;
    (try
       for _ = 0 to n - 1 do
         (* extract-min over unvisited nodes *)
         let u = ref (-1) in
         for v = 0 to n - 1 do
           if (not visited.(v)) && (!u < 0 || dist.(v) < dist.(!u)) then u := v
         done;
         if !u < 0 || dist.(!u) = infinity then raise Exit;
         visited.(!u) <- true;
         (* relax reversed edges: e runs esrc -> edst = !u in the real
            graph, so it improves dist from esrc. *)
         List.iter
           (fun e ->
             let c = dist.(!u) +. edge_cost t e in
             if c < dist.(e.esrc) then dist.(e.esrc) <- c)
           in_edges.(!u)
       done
     with Exit -> ());
    for u = 0 to n - 1 do
      if u <> d && dist.(u) < infinity then begin
        let best = ref None in
        List.iter
          (fun e ->
            let c = edge_cost t e +. dist.(e.edst) in
            match !best with
            | Some (bc, _) when bc <= c -> ()
            | _ -> best := Some (c, e))
          out_sorted.(u);
        match !best with
        | Some (_, e) -> Hashtbl.replace table (u, d) e
        | None -> ()
      end
    done
  done

let recompute t =
  Hashtbl.reset t.next_up;
  Hashtbl.reset t.next_all;
  fill_table t ~up_only:true t.next_up;
  fill_table t ~up_only:false t.next_all;
  t.recomputes <- t.recomputes + 1;
  t.dirty <- false

let ensure_routes t = if t.dirty then recompute t

let next_edge t u d =
  ensure_routes t;
  match Hashtbl.find_opt t.next_up (u, d) with
  | Some e -> Some e
  | None -> Hashtbl.find_opt t.next_all (u, d)

let rec arrive t node (pkt : Packet.t) =
  match Hashtbl.find_opt t.targets pkt.id with
  | None -> () (* unrouted packet: silently discarded, like the demuxes *)
  | Some tg ->
      if node = tg.tnode then begin
        Hashtbl.remove t.targets pkt.id;
        match tg.tdir with
        | `Fwd -> tg.tflow.dst_recv pkt
        | `Bwd -> tg.tflow.src_recv pkt
      end
      else if tg.ttl <= 0 then begin
        (* Forwarding loop: impossible while routes come from a shortest-
           path tree, so any occurrence is a routing bug. The trace event
           trips the invariant checker's topo-loop-free rule. *)
        Hashtbl.remove t.targets pkt.id;
        loop_ev t node pkt
      end
      else begin
        tg.ttl <- tg.ttl - 1;
        match next_edge t node tg.tnode with
        | None -> Hashtbl.remove t.targets pkt.id (* statically unreachable *)
        | Some e -> forward t e pkt
      end

and forward t e pkt =
  match e.kind with
  | Queued l -> Link.send l pkt
  | Wire { wdelay; always_schedule } ->
      if wdelay > 0. || always_schedule then
        delayed t wdelay (fun () -> arrive t e.edst pkt)
      else arrive t e.edst pkt

(* --- construction --------------------------------------------------------- *)

let register_edge t e =
  t.adj.(e.esrc) <- e :: t.adj.(e.esrc);
  t.all_edges <- e :: t.all_edges;
  t.n_edges <- t.n_edges + 1;
  t.dirty <- true;
  e

let add_link t ~src ~dst ?cost link =
  check_node t src "add_link";
  check_node t dst "add_link";
  let e =
    register_edge t
      { eid = t.n_edges; esrc = src; edst = dst; kind = Queued link; cost }
  in
  Link.set_dest link (fun pkt -> arrive t dst pkt);
  (* A dropped packet is dead: forget its forwarding state. *)
  Link.on_drop link (fun pkt -> Hashtbl.remove t.targets pkt.Packet.id);
  Link.on_state_change link (fun _ -> t.dirty <- true);
  e

let add_wire t ~src ~dst ?cost ?(always_schedule = false) delay =
  check_node t src "add_wire";
  check_node t dst "add_wire";
  if delay < 0. then invalid_arg "Topology.add_wire: negative delay";
  register_edge t
    {
      eid = t.n_edges;
      esrc = src;
      edst = dst;
      kind = Wire { wdelay = delay; always_schedule };
      cost;
    }

let set_cost t e c =
  e.cost <- Some c;
  t.dirty <- true

let edges t = List.rev t.all_edges
let edge_id e = e.eid
let edge_src e = e.esrc
let edge_dst e = e.edst
let edge_link e = match e.kind with Queued l -> Some l | Wire _ -> None

let find_link t label =
  List.find_map
    (fun e ->
      match e.kind with
      | Queued l when Link.label l = label -> Some (l, e)
      | _ -> None)
    (edges t)

(* --- flows ---------------------------------------------------------------- *)

let add_flow t ~flow ~src ~dst =
  check_node t src "add_flow";
  check_node t dst "add_flow";
  if Hashtbl.mem t.flows flow then
    invalid_arg (Printf.sprintf "Topology.add_flow: flow %d already exists" flow);
  Hashtbl.replace t.flows flow
    { fid = flow; fsrc = src; fdst = dst; src_recv = ignore; dst_recv = ignore }

let find t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some fi -> fi
  | None -> invalid_arg (Printf.sprintf "Topology: unknown flow %d" flow)

let set_src_recv t ~flow h = (find t flow).src_recv <- h
let set_dst_recv t ~flow h = (find t flow).dst_recv <- h

let send t fi dir pkt =
  let start, tnode =
    match dir with
    | `Fwd -> (fi.fsrc, fi.fdst)
    | `Bwd -> (fi.fdst, fi.fsrc)
  in
  Hashtbl.replace t.targets pkt.Packet.id
    { tnode; tflow = fi; tdir = dir; ttl = t.n_nodes };
  arrive t start pkt

let src_sender t ~flow =
  let fi = find t flow in
  fun pkt -> send t fi `Fwd pkt

let dst_sender t ~flow =
  let fi = find t flow in
  fun pkt -> send t fi `Bwd pkt

let in_flight t = Hashtbl.length t.pending

let teardown t =
  Hashtbl.iter (fun _ h -> Engine.Runtime.cancel h) t.pending;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.targets

(* --- routing / impact queries --------------------------------------------- *)

let route t ~src ~dst =
  check_node t src "route";
  check_node t dst "route";
  ensure_routes t;
  let rec walk acc u budget =
    if u = dst then Some (List.rev acc)
    else if budget <= 0 then None
    else
      match Hashtbl.find_opt t.next_up (u, dst) with
      | None -> None
      | Some e -> walk (e :: acc) e.edst (budget - 1)
  in
  walk [] src t.n_nodes

(* Reachability over up links with one edge excised, by breadth-first
   search — the counterfactual a link failure poses. *)
let reachable_without t ~without ~src ~dst =
  let seen = Array.make (max t.n_nodes 1) false in
  let q = Queue.create () in
  seen.(src) <- true;
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    if u = dst then found := true
    else
      List.iter
        (fun e ->
          if e.eid <> without.eid && edge_usable true e && not seen.(e.edst)
          then begin
            seen.(e.edst) <- true;
            Queue.add e.edst q
          end)
        t.adj.(u)
  done;
  !found || src = dst

let flow_uses t e ~src ~dst =
  match route t ~src ~dst with
  | None -> false
  | Some path -> List.exists (fun e' -> e'.eid = e.eid) path

let impact t e =
  ensure_routes t;
  let flows =
    Hashtbl.fold (fun _ fi acc -> fi :: acc) t.flows []
    |> List.sort (fun a b -> compare a.fid b.fid)
  in
  List.map
    (fun fi ->
      let fwd = flow_uses t e ~src:fi.fsrc ~dst:fi.fdst in
      let bwd = flow_uses t e ~src:fi.fdst ~dst:fi.fsrc in
      let kind =
        if not (fwd || bwd) then Unaffected
        else if
          (fwd && not (reachable_without t ~without:e ~src:fi.fsrc ~dst:fi.fdst))
          || bwd
             && not (reachable_without t ~without:e ~src:fi.fdst ~dst:fi.fsrc)
        then Partitioned
        else Rerouted
      in
      (fi.fid, kind))
    flows

let impact_str = function
  | Partitioned -> "partitioned"
  | Rerouted -> "rerouted"
  | Unaffected -> "unaffected"
