(** Queue discipline interface shared by DropTail and RED.

    A discipline owns the buffered packets; the link drives it with
    [enqueue]/[dequeue], and flushes it with [drain] when the link goes
    down. Implementations record aggregate statistics that satisfy the
    exact conservation law [arrivals = departures + drops + len_pkts ()]
    at every quiescent point (see {!imbalance}). *)

type stats = {
  mutable arrivals : int;
  mutable drops : int;
  mutable departures : int;
  mutable bytes_queued : int;  (** current occupancy in bytes *)
}

type t = {
  enqueue : Packet.t -> bool;
      (** [true] if accepted, [false] if the packet was dropped *)
  dequeue : unit -> Packet.t option;
      (** removes the head packet for transmission; counted as a
          departure *)
  drain : unit -> Packet.t list;
      (** removes every queued packet (head first), booking each as a
          {e drop} — never a departure — so a link flushing its queue on
          an outage keeps the stats conservation law exact. The caller
          owns delivering the packets to drop listeners. *)
  len_pkts : unit -> int;
  len_bytes : unit -> int;
  stats : stats;
  gauges : (string * (unit -> float)) list;
      (** named introspection gauges a discipline exposes (e.g. RED's
          ["red_avg"] EWMA queue average); keyed per instance, replacing
          any process-global registry *)
}

val make_stats : unit -> stats

(** [drop_rate t] is drops / arrivals (0. before any arrival). *)
val drop_rate : t -> float

(** [drain_queue q stats] is the shared [drain] implementation for
    disciplines backed by a raw [Queue.t]: empties [q] in order, counting
    each packet as a drop and releasing its bytes. *)
val drain_queue : Packet.t Queue.t -> stats -> Packet.t list

(** [imbalance t] is [arrivals - departures - drops - len_pkts ()]; zero
    for a correctly accounted discipline at any quiescent point. *)
val imbalance : t -> int

(** [conserved t] is [imbalance t = 0]. *)
val conserved : t -> bool

(** [gauge t name] looks up an introspection gauge by name. *)
val gauge : t -> string -> (unit -> float) option
