type payload =
  | Data
  | Tcp_ack of { ack : int; sack : (int * int) list; ece : bool }
  | Tfrc_data of { rtt : float }
  | Tfrc_feedback of {
      p : float;
      recv_rate : float;
      ts_echo : float;
      ts_delay : float;
    }

type t = {
  id : int;
  flow : int;
  seq : int;
  size : int;
  sent_at : float;
  payload : payload;
  ecn_capable : bool;
  mutable ecn_marked : bool; (* set by an ECN queue in flight *)
  mutable corrupted : bool; (* damaged in flight; endpoints must discard *)
}

type handler = t -> unit

(* Ids come from the owning simulation's allocator, never from a process
   global: a global counter is a data race under [Domain.spawn] workers and
   leaks identity across jobs even sequentially, breaking byte-identical
   replay of a grid cell. *)
let make sim ?(ecn = false) ~flow ~seq ~size ~now payload =
  {
    id = Engine.Sim.fresh_id sim;
    flow;
    seq;
    size;
    sent_at = now;
    payload;
    ecn_capable = ecn;
    ecn_marked = false;
    corrupted = false;
  }

let is_data p = match p.payload with Data | Tfrc_data _ -> true | _ -> false

let pp ppf p =
  let kind =
    match p.payload with
    | Data -> "data"
    | Tcp_ack { ack; _ } -> Printf.sprintf "ack=%d" ack
    | Tfrc_data _ -> "tfrc-data"
    | Tfrc_feedback { p = lr; _ } -> Printf.sprintf "fb p=%.4f" lr
  in
  Format.fprintf ppf "[flow %d seq %d %dB %s @%.4f]" p.flow p.seq p.size kind
    p.sent_at
