type payload =
  | Data
  | Tcp_ack of { ack : int; sack : (int * int) list; ece : bool }
  | Tfrc_data of { rtt : float }
  | Tfrc_feedback of {
      p : float;
      recv_rate : float;
      ts_echo : float;
      ts_delay : float;
    }

type t = {
  (* All fields mutable so a freelist ({!Pool}) can recycle records:
     outside the pool the record is still used write-once. *)
  mutable id : int;
  mutable flow : int;
  mutable seq : int;
  mutable size : int;
  mutable sent_at : float;
  mutable payload : payload;
  mutable ecn_capable : bool;
  mutable ecn_marked : bool; (* set by an ECN queue in flight *)
  mutable corrupted : bool; (* damaged in flight; endpoints must discard *)
}

type handler = t -> unit

(* Ids come from the owning runtime's allocator, never from a process
   global: a global counter is a data race under [Domain.spawn] workers and
   leaks identity across jobs even sequentially, breaking byte-identical
   replay of a grid cell. Taking {!Engine.Runtime.t} (not [Sim.t]) keeps
   packet construction usable from the real-time wire loop too. *)
let make rt ?(ecn = false) ~flow ~seq ~size ~now payload =
  {
    id = Engine.Runtime.fresh_id rt;
    flow;
    seq;
    size;
    sent_at = now;
    payload;
    ecn_capable = ecn;
    ecn_marked = false;
    corrupted = false;
  }

let is_data p = match p.payload with Data | Tfrc_data _ -> true | _ -> false

(* Per-sim freelist. At 100k+ flows, packet allocation dominates the minor
   GC; recycling records through a pool turns each send into field stores
   on an already-hot record. Use is opt-in at the allocation site that owns
   the packet's lifetime — a site may only [release] a packet it knows no
   tracer, queue, or endpoint still references, so the pool is deliberately
   not wired into generic link delivery. *)
module Pool = struct
  type packet = t

  type t = { mutable free : packet list; mutable outstanding : int }

  let create () = { free = []; outstanding = 0 }

  let alloc pool rt ?(ecn = false) ~flow ~seq ~size ~now payload =
    pool.outstanding <- pool.outstanding + 1;
    match pool.free with
    | [] -> make rt ~ecn ~flow ~seq ~size ~now payload
    | p :: rest ->
        pool.free <- rest;
        (* Fresh id even on reuse: packet identity stays unique per
           runtime regardless of which record carries it. *)
        p.id <- Engine.Runtime.fresh_id rt;
        p.flow <- flow;
        p.seq <- seq;
        p.size <- size;
        p.sent_at <- now;
        p.payload <- payload;
        p.ecn_capable <- ecn;
        p.ecn_marked <- false;
        p.corrupted <- false;
        p

  let release pool p =
    pool.outstanding <- pool.outstanding - 1;
    pool.free <- p :: pool.free

  let outstanding pool = pool.outstanding
  let idle pool = List.length pool.free
end

let pp ppf p =
  let kind =
    match p.payload with
    | Data -> "data"
    | Tcp_ack { ack; _ } -> Printf.sprintf "ack=%d" ack
    | Tfrc_data _ -> "tfrc-data"
    | Tfrc_feedback { p = lr; _ } -> Printf.sprintf "fb p=%.4f" lr
  in
  Format.fprintf ppf "[flow %d seq %d %dB %s @%.4f]" p.flow p.seq p.size kind
    p.sent_at
