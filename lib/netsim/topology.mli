(** Arbitrary-topology network layer: a directed graph of nodes joined by
    either queued {!Link}s (bandwidth + queue discipline + propagation
    delay, the congestible hops) or pure-delay wires (over-provisioned
    access/stub segments). Multi-queue routers arise naturally: a node with
    several outgoing queued links owns one queue per link, and each queue
    keeps its own conservation counters, so the invariant checker's
    queue-conservation rule holds per queue across the graph.

    Forwarding is per-hop: packets follow static shortest-path routes
    (Dijkstra over configurable link costs, deterministic lowest-edge-id
    tie-break). Routes are recomputed lazily whenever a link changes
    up/down state, so {!Faults.outage} and flapping actually shift traffic
    onto alternate paths when one exists. When no up path remains, packets
    fall back to the full-graph route and blackhole at the failed link's
    ingress — identical drop accounting to a hand-wired topology.

    {!impact} answers the planning-side question a failure poses: which
    flows does losing this edge partition (no alternate path) and which
    merely re-route. *)

type node = int
type t

(** An edge of the graph; compare with {!edge_id}. *)
type edge

(** Default per-edge cost when none is given explicitly: [Hop] counts
    edges; [Delay] reads each edge's propagation delay at recompute time
    (so a {!Faults.route_change} that alters a link's delay shifts routes
    after {!invalidate}). *)
type cost_model = Hop | Delay

type impact_kind = Partitioned | Rerouted | Unaffected

(** [create ?cost_model rt ()] makes an empty graph on the given sans-IO
    runtime (use [Engine.Sim.runtime sim] under the simulator).
    [cost_model] defaults to [Hop]. *)
val create : ?cost_model:cost_model -> Engine.Runtime.t -> unit -> t

val runtime : t -> Engine.Runtime.t

(** [add_node t] returns a fresh node (0, 1, 2, …). *)
val add_node : t -> node

val n_nodes : t -> int

(** [add_link t ~src ~dst ?cost link] adds a unidirectional queued edge
    carried by [link]. The topology takes over the link's destination
    handler and registers drop/state-change listeners; callers may still
    add their own drop listeners and drive faults at the link. *)
val add_link : t -> src:node -> dst:node -> ?cost:float -> Link.t -> edge

(** [add_wire t ~src ~dst ?cost ?always_schedule delay] adds a
    unidirectional pure-delay edge. With [delay = 0] the hop is traversed
    synchronously unless [always_schedule] (default false) forces a
    zero-delay scheduler event — builders use this to reproduce the legacy
    hand-wired builders' event structure exactly. *)
val add_wire :
  t -> src:node -> dst:node -> ?cost:float -> ?always_schedule:bool -> float -> edge

(** [set_cost t e c] overrides the edge's cost and invalidates routes. *)
val set_cost : t -> edge -> float -> unit

(** Mark routing tables stale; the next packet (or query) recomputes them.
    Needed only for changes the topology cannot observe itself, e.g. a
    [Faults.route_change] delay shift under the [Delay] cost model. *)
val invalidate : t -> unit

(** Number of routing recomputations so far (tests assert outages
    actually trigger one). *)
val recomputes : t -> int

(** Edges in creation order. *)
val edges : t -> edge list

val edge_id : edge -> int
val edge_src : edge -> node
val edge_dst : edge -> node

(** The underlying link of a queued edge; [None] for wires. *)
val edge_link : edge -> Link.t option

(** [find_link t label] finds a queued edge by its link's trace label. *)
val find_link : t -> string -> (Link.t * edge) option

(** [add_flow t ~flow ~src ~dst] registers a flow between two (usually
    host) nodes. Raises if the flow id is taken. *)
val add_flow : t -> flow:int -> src:node -> dst:node -> unit

val set_src_recv : t -> flow:int -> Packet.handler -> unit
val set_dst_recv : t -> flow:int -> Packet.handler -> unit

(** [src_sender t ~flow] injects packets at the flow's source, routed to
    its destination ([dst_sender] the reverse). Unroutable packets are
    silently discarded, like the hand-wired builders' demuxes. *)
val src_sender : t -> flow:int -> Packet.handler

val dst_sender : t -> flow:int -> Packet.handler

(** [route t ~src ~dst] is the current up-links-only shortest path, or
    [None] when [dst] is unreachable. *)
val route : t -> src:node -> dst:node -> edge list option

(** [impact t e] classifies every flow against the hypothetical failure of
    edge [e], in flow-id order: [Partitioned] if the flow's forward or
    reverse path uses [e] and no alternate up path exists, [Rerouted] if it
    uses [e] but can detour, [Unaffected] otherwise. Pure query — no
    link state is touched. *)
val impact : t -> edge -> (int * impact_kind) list

val impact_str : impact_kind -> string

(** Pending wire deliveries not yet fired. *)
val in_flight : t -> int

(** [teardown t] cancels pending wire deliveries and forgets per-packet
    forwarding state. *)
val teardown : t -> unit
