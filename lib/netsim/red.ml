type params = {
  w_q : float;
  min_th : float;
  max_th : float;
  max_p : float;
  gentle : bool;
  limit_pkts : int;
  ecn : bool;
}

let params ?(w_q = 0.002) ?(max_p = 0.1) ?(gentle = true) ?(ecn = false)
    ~min_th ~max_th ~limit_pkts () =
  if min_th <= 0. || max_th <= min_th then
    invalid_arg "Red.params: need 0 < min_th < max_th";
  if limit_pkts <= 0 then invalid_arg "Red.params: limit must be positive";
  { w_q; min_th; max_th; max_p; gentle; limit_pkts; ecn }

type state = {
  p : params;
  now : unit -> float;
  ptc : float;
  q : Packet.t Queue.t;
  mutable avg : float;
  mutable count : int; (* packets since last drop while avg in drop region *)
  mutable idle_since : float; (* < 0. when the queue is non-empty *)
  mutable rng_state : int; (* deterministic xorshift for drop decisions *)
}

(* A small private xorshift keeps RED self-contained and deterministic
   without threading an Engine.Rng through every topology builder. *)
let next_uniform st =
  let x = st.rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  let x = x land max_int in
  st.rng_state <- (if x = 0 then 0x9E3779B9 else x);
  float_of_int st.rng_state /. float_of_int max_int

let update_avg st =
  let qlen = float_of_int (Queue.length st.q) in
  if Queue.length st.q = 0 && st.idle_since >= 0. then begin
    (* Age the average across the idle period: pretend m small packets
       could have been transmitted. *)
    let m = st.ptc *. (st.now () -. st.idle_since) in
    st.avg <- st.avg *. ((1. -. st.p.w_q) ** Float.max 0. m)
  end
  else st.avg <- st.avg +. (st.p.w_q *. (qlen -. st.avg))

(* Returns [true] when the arriving packet should be dropped early. *)
let early_drop st =
  let { min_th; max_th; max_p; gentle; _ } = st.p in
  let avg = st.avg in
  if avg < min_th then begin
    st.count <- -1;
    false
  end
  else begin
    let p_b =
      if avg < max_th then max_p *. (avg -. min_th) /. (max_th -. min_th)
      else if gentle && avg < 2. *. max_th then
        max_p +. ((1. -. max_p) *. (avg -. max_th) /. max_th)
      else 1.
    in
    if p_b >= 1. then begin
      st.count <- 0;
      true
    end
    else begin
      st.count <- st.count + 1;
      let denom = 1. -. (float_of_int st.count *. p_b) in
      let p_a = if denom <= 0. then 1. else Float.min 1. (p_b /. denom) in
      if next_uniform st < p_a then begin
        st.count <- 0;
        true
      end
      else false
    end
  end

let create ~params ~now ~ptc =
  if ptc <= 0. then invalid_arg "Red.create: ptc must be positive";
  let st =
    {
      p = params;
      now;
      ptc;
      q = Queue.create ();
      avg = 0.;
      count = -1;
      idle_since = 0.;
      rng_state = 0x2545F491;
    }
  in
  let stats = Queue_disc.make_stats () in
  let enqueue (pkt : Packet.t) =
    stats.arrivals <- stats.arrivals + 1;
    update_avg st;
    st.idle_since <- -1.;
    let overflow = Queue.length st.q >= st.p.limit_pkts in
    let early = (not overflow) && early_drop st in
    (* With ECN, an early congestion indication marks an ECN-capable packet
       instead of dropping it (RFC 3168 / the paper's Section 7 outlook);
       physical overflow always drops. *)
    let drop =
      overflow
      || (early && not (st.p.ecn && pkt.Packet.ecn_capable))
    in
    if early && not drop then pkt.Packet.ecn_marked <- true;
    if drop then begin
      stats.drops <- stats.drops + 1;
      (* If the buffer is still empty after a drop, we are idle again. *)
      if Queue.length st.q = 0 then st.idle_since <- st.now ();
      false
    end
    else begin
      Queue.add pkt st.q;
      stats.bytes_queued <- stats.bytes_queued + pkt.Packet.size;
      true
    end
  in
  let dequeue () =
    match Queue.take_opt st.q with
    | None -> None
    | Some pkt ->
        stats.departures <- stats.departures + 1;
        stats.bytes_queued <- stats.bytes_queued - pkt.Packet.size;
        if Queue.length st.q = 0 then st.idle_since <- st.now ();
        Some pkt
  in
  let drain () =
    let flushed = Queue_disc.drain_queue st.q stats in
    (* The buffer is empty after a flush: start an idle period, exactly as
       a dequeue that empties the queue would. *)
    if flushed <> [] then st.idle_since <- st.now ();
    flushed
  in
  {
    Queue_disc.enqueue;
    dequeue;
    drain;
    len_pkts = (fun () -> Queue.length st.q);
    len_bytes = (fun () -> stats.bytes_queued);
    stats;
    (* Instance-scoped introspection, replacing the old process-global
       registry (which both leaked state entries and raced under
       domain-parallel grid runs). *)
    gauges = [ ("red_avg", fun () -> st.avg) ];
  }

let avg_queue disc =
  match Queue_disc.gauge disc "red_avg" with
  | Some g -> g ()
  | None -> invalid_arg "Red.avg_queue: not a RED queue"
