type route = {
  entry : int; (* first hop index, 0-based *)
  exit_ : int; (* last hop index, 0-based *)
  access : float; (* delay before entry and after exit *)
  reverse : float; (* one-way delay of the reverse path *)
  mutable src_recv : Packet.handler;
  mutable dst_recv : Packet.handler;
}

type t = {
  rt : Engine.Runtime.t;
  links : Link.t array;
  delay : float;
  flows : (int, route) Hashtbl.t;
  (* Pending access/reverse-segment deliveries, retained so teardown can
     cancel them instead of letting them fire into stopped endpoints (and
     keep the endpoint closures live) in cancel-heavy sims. Timers remove
     their own entry on firing. *)
  pending : (int, Engine.Runtime.handle) Hashtbl.t;
  mutable next_token : int;
}

let delayed t d f =
  let k = t.next_token in
  t.next_token <- k + 1;
  let h =
    Engine.Runtime.after t.rt d (fun () ->
        Hashtbl.remove t.pending k;
        f ())
  in
  Hashtbl.add t.pending k h

let create rt ~hops ~bandwidth ~delay ~queue () =
  if hops < 1 then invalid_arg "Parking_lot.create: need at least one hop";
  let links =
    Array.init hops (fun _ -> Link.create rt ~bandwidth ~delay ~queue:(queue ()) ())
  in
  let t =
    {
      rt;
      links;
      delay;
      flows = Hashtbl.create 32;
      pending = Hashtbl.create 64;
      next_token = 0;
    }
  in
  (* Each link forwards to the next hop or delivers to the flow's
     destination after its egress access delay. *)
  Array.iteri
    (fun hop link ->
      Link.set_dest link (fun pkt ->
          match Hashtbl.find_opt t.flows pkt.Packet.flow with
          | None -> ()
          | Some r ->
              if hop < r.exit_ then Link.send t.links.(hop + 1) pkt
              else delayed t r.access (fun () -> r.dst_recv pkt)))
    links;
  t

let runtime t = t.rt
let n_hops t = Array.length t.links

let register t ~flow ~entry ~exit_ ~rtt_base =
  if Hashtbl.mem t.flows flow then
    invalid_arg (Printf.sprintf "Parking_lot: flow %d already exists" flow);
  let span = float_of_int (exit_ - entry + 1) *. t.delay in
  let one_way = rtt_base /. 2. in
  let access = (one_way -. span) /. 2. in
  if access < 0. then
    invalid_arg "Parking_lot: rtt_base smaller than the path propagation";
  Hashtbl.replace t.flows flow
    {
      entry;
      exit_;
      access;
      reverse = one_way;
      src_recv = ignore;
      dst_recv = ignore;
    }

let add_through_flow t ~flow ~rtt_base =
  register t ~flow ~entry:0 ~exit_:(n_hops t - 1) ~rtt_base

let add_cross_flow t ~flow ~hop ~rtt_base =
  if hop < 1 || hop > n_hops t then invalid_arg "Parking_lot: bad hop";
  register t ~flow ~entry:(hop - 1) ~exit_:(hop - 1) ~rtt_base

let find t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Parking_lot: unknown flow %d" flow)

let set_src_recv t ~flow h = (find t flow).src_recv <- h
let set_dst_recv t ~flow h = (find t flow).dst_recv <- h

let src_sender t ~flow pkt =
  let r = find t flow in
  delayed t r.access (fun () -> Link.send t.links.(r.entry) pkt)

let dst_sender t ~flow pkt =
  let r = find t flow in
  (* Well-provisioned reverse path: fixed delay. *)
  delayed t r.reverse (fun () -> r.src_recv pkt)

let link t ~hop =
  if hop < 1 || hop > n_hops t then invalid_arg "Parking_lot: bad hop";
  t.links.(hop - 1)

let drop_rate t =
  let arrivals = ref 0 and drops = ref 0 in
  Array.iter
    (fun l ->
      let s = (Link.queue l).Queue_disc.stats in
      arrivals := !arrivals + s.arrivals;
      drops := !drops + s.drops)
    t.links;
  if !arrivals = 0 then 0. else float_of_int !drops /. float_of_int !arrivals

let in_flight t = Hashtbl.length t.pending

let teardown t =
  Hashtbl.iter (fun _ h -> Engine.Runtime.cancel h) t.pending;
  Hashtbl.reset t.pending
