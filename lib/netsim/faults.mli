(** Fault injection ("chaos") layer for the network simulator.

    Two kinds of faults compose here:

    {ol
    {- {b Link-level faults} driven by the scheduler: outages, flapping and
       route changes mutate a {!Link}'s up/down state, bandwidth or delay
       at scripted times.}
    {- {b Handler-level faults}: wrappers around a {!Packet.handler} that
       reorder, duplicate, corrupt or black out packets in flight. They
       compose with each other and with {!Loss_model} wrappers, e.g.
       [Faults.reorder rt rng ~p ~jitter (Loss_model.bernoulli rng ~p:0.01
       dest)].}}

    All randomness comes from an explicit {!Engine.Rng.t} so chaos schedules
    are reproducible from a seed. *)

(** {1 Link faults} *)

(** [outage rt link ~at ~duration ?policy ()] takes the link down at time
    [at] and restores it [duration] seconds later. [policy] (default
    [Drop_queued]) governs packets queued at the moment of failure. *)
val outage :
  Engine.Runtime.t ->
  Link.t ->
  at:float ->
  duration:float ->
  ?policy:Link.down_policy ->
  unit ->
  unit

(** [flapping rt link ~start ~stop ~period ~down_fraction ?policy ()]
    makes the link flap between [start] and [stop]: each [period] it is up
    for [(1 - down_fraction) * period] then down for the rest. The link is
    left up at [stop]. *)
val flapping :
  Engine.Runtime.t ->
  Link.t ->
  start:float ->
  stop:float ->
  period:float ->
  down_fraction:float ->
  ?policy:Link.down_policy ->
  unit ->
  unit

(** [route_change rt link ~at ?bandwidth ?delay ()] applies new link
    parameters at time [at], emulating a route switching to a path with
    different capacity and propagation delay. Omitted parameters keep
    their current value. *)
val route_change :
  Engine.Runtime.t ->
  Link.t ->
  at:float ->
  ?bandwidth:float ->
  ?delay:float ->
  unit ->
  unit

(** {1 Handler faults}

    Each wrapper keeps a count of the faults it injected, readable through
    the second component of the returned pair. *)

(** [reorder rt rng ~p ~jitter dest] delays each packet by an extra
    uniform [0, jitter) seconds with probability [p] before delivering it,
    letting later packets overtake it — random reordering as seen across
    route flutter. Unaffected packets are delivered synchronously. *)
val reorder :
  Engine.Runtime.t ->
  Engine.Rng.t ->
  p:float ->
  jitter:float ->
  Packet.handler ->
  Packet.handler * (unit -> int)

(** [duplicate rt rng ~p ?delay dest] delivers each packet once and, with
    probability [p], a second time [delay] (default 0) seconds later —
    duplication as produced by spurious link-layer retransmission. *)
val duplicate :
  Engine.Runtime.t ->
  Engine.Rng.t ->
  p:float ->
  ?delay:float ->
  Packet.handler ->
  Packet.handler * (unit -> int)

(** [corrupt rng ~p dest] sets {!Packet.t.corrupted} with probability [p]
    before delivery; conforming endpoints discard such packets (checksum
    failure), turning corruption into loss without the queue noticing. *)
val corrupt :
  Engine.Rng.t -> p:float -> Packet.handler -> Packet.handler * (unit -> int)

(** [blackout ~now ~windows dest] drops every packet whose delivery time
    falls inside one of the [(start, stop)] windows — a total path failure,
    typically installed on the feedback direction to starve the sender of
    acknowledgements while data keeps flowing. *)
val blackout :
  now:(unit -> float) ->
  windows:(float * float) list ->
  Packet.handler ->
  Packet.handler * (unit -> int)
