(** Multi-bottleneck "parking lot" topology: a chain of hops where
    long-haul flows traverse every hop and per-hop cross traffic congests
    individual links. The standard generalization of the dumbbell for
    studying multi-bottleneck fairness (a long flow competes at every hop,
    cross flows only at one).

    Flow kinds:
    - a {e through} flow enters before hop 1 and exits after the last hop;
    - a {e cross} flow of hop k enters before hop k and exits after it.

    Reverse direction (acks/feedback) is modelled as a well-provisioned
    fixed-delay path, since the paper's scenarios never congest it. *)

type t

(** [create rt ~hops ~bandwidth ~delay ~queue ()] builds a chain of
    [hops] identical links on the given sans-IO runtime (use
    [Engine.Sim.runtime sim] under the simulator). [queue] builds a fresh
    discipline per hop (disciplines are stateful and cannot be shared). *)
val create :
  Engine.Runtime.t ->
  hops:int ->
  bandwidth:float ->
  delay:float ->
  queue:(unit -> Queue_disc.t) ->
  unit ->
  t

val runtime : t -> Engine.Runtime.t
val n_hops : t -> int

(** [add_through_flow t ~flow ~rtt_base] registers an end-to-end flow.
    [rtt_base] must be at least the chain's round-trip propagation. *)
val add_through_flow : t -> flow:int -> rtt_base:float -> unit

(** [add_cross_flow t ~flow ~hop ~rtt_base] registers a flow crossing only
    [hop] (1-based). *)
val add_cross_flow : t -> flow:int -> hop:int -> rtt_base:float -> unit

val set_src_recv : t -> flow:int -> Packet.handler -> unit
val set_dst_recv : t -> flow:int -> Packet.handler -> unit
val src_sender : t -> flow:int -> Packet.handler
val dst_sender : t -> flow:int -> Packet.handler

(** [link t ~hop] is the forward link of the given hop (1-based). *)
val link : t -> hop:int -> Link.t

(** Aggregate drop rate across all hops. *)
val drop_rate : t -> float

(** Number of access/reverse-segment deliveries scheduled but not yet
    fired. *)
val in_flight : t -> int

(** [teardown t] cancels every pending access/reverse-segment delivery so
    nothing fires into an endpoint after the scenario has stopped. *)
val teardown : t -> unit
