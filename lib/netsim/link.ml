type down_policy = Drop_queued | Hold_queued

type t = {
  rt : Engine.Runtime.t;
  label : string;
  mutable bandwidth : float;
  mutable delay : float;
  queue : Queue_disc.t;
  mutable dest : Packet.handler;
  mutable dest_set : bool;
  mutable busy : bool;
  mutable up : bool;
  mutable drop_listeners : Packet.handler list;
  mutable state_listeners : (bool -> unit) list;
  mutable delivered_bytes : int;
  mutable busy_time : float;
  mutable outage_drops : int;
}

let create rt ?label ~bandwidth ~delay ~queue () =
  if bandwidth <= 0. then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  {
    rt;
    (* Default labels come from the runtime's own allocator, not a process
       global: trace output stays identical across process lifetimes and
       worker domains. *)
    label =
      (match label with
      | Some l -> l
      | None -> Printf.sprintf "link-%d" (Engine.Runtime.fresh_id rt));
    bandwidth;
    delay;
    queue;
    dest = ignore;
    dest_set = false;
    busy = false;
    up = true;
    drop_listeners = [];
    state_listeners = [];
    delivered_bytes = 0;
    busy_time = 0.;
    outage_drops = 0;
  }

(* Trace instrumentation: [tracing t] is the hot-path guard; [ev] builds and
   emits, so call sites only allocate field lists when a sink is attached. *)
let tracing t = Engine.Trace.active (Engine.Runtime.trace t.rt)

let ev t name fields =
  Engine.Trace.emit (Engine.Runtime.trace t.rt) ~time:(Engine.Runtime.now t.rt)
    ~cat:"link" ~name
    (("link", Engine.Trace.Str t.label) :: fields)

let pkt_fields (pkt : Packet.t) =
  [
    ("id", Engine.Trace.Int pkt.id);
    ("flow", Engine.Trace.Int pkt.flow);
    ("seq", Engine.Trace.Int pkt.seq);
    ("size", Engine.Trace.Int pkt.size);
  ]

(* Snapshot of the queue discipline's conservation counters; the invariant
   checker verifies arrivals = departures + drops + queued exactly on each
   of these. Emitted at up/down transitions (rare), not per packet. *)
let emit_queue_stats t =
  if tracing t then begin
    let st = t.queue.Queue_disc.stats in
    ev t "queue"
      [
        ("arrivals", Engine.Trace.Int st.arrivals);
        ("departures", Engine.Trace.Int st.departures);
        ("drops", Engine.Trace.Int st.drops);
        ("queued", Engine.Trace.Int (t.queue.Queue_disc.len_pkts ()));
      ]
  end

let set_dest t handler =
  t.dest <- handler;
  t.dest_set <- true

let current_dest t = t.dest
let on_drop t f = t.drop_listeners <- f :: t.drop_listeners
let on_state_change t f = t.state_listeners <- f :: t.state_listeners
let queue t = t.queue
let label t = t.label
let bandwidth t = t.bandwidth
let delay t = t.delay
let is_up t = t.up
let delivered_bytes t = t.delivered_bytes
let busy_time t = t.busy_time
let outage_drops t = t.outage_drops

let set_bandwidth t bw =
  if bw <= 0. then invalid_arg "Link.set_bandwidth: bandwidth must be positive";
  t.bandwidth <- bw

let set_delay t d =
  if d < 0. then invalid_arg "Link.set_delay: negative delay";
  t.delay <- d

let utilization t ~duration =
  if duration <= 0. then 0.
  else 8. *. float_of_int t.delivered_bytes /. (t.bandwidth *. duration)

let drop ?(reason = "queue") t pkt =
  if tracing t then
    ev t "drop" (pkt_fields pkt @ [ ("reason", Engine.Trace.Str reason) ]);
  List.iter (fun f -> f pkt) t.drop_listeners

let deliver t pkt =
  if tracing t then ev t "deliver" (pkt_fields pkt);
  t.dest pkt

(* Serialize the head-of-line packet; at end of serialization start the next
   one and schedule the propagation-delayed delivery. *)
let rec start_tx t =
  if not t.up then t.busy <- false
  else
    match t.queue.Queue_disc.dequeue () with
    | None -> t.busy <- false
    | Some pkt ->
        t.busy <- true;
        let tx = Engine.Units.tx_time ~bits_per_s:t.bandwidth ~bytes:pkt.Packet.size in
        t.busy_time <- t.busy_time +. tx;
        ignore
          (Engine.Runtime.after t.rt tx (fun () ->
               t.delivered_bytes <- t.delivered_bytes + pkt.Packet.size;
               if t.delay > 0. then
                 ignore (Engine.Runtime.after t.rt t.delay (fun () -> deliver t pkt))
               else deliver t pkt;
               start_tx t))

let set_up t ?(policy = Drop_queued) up =
  if up <> t.up then begin
    t.up <- up;
    if tracing t then ev t (if up then "up" else "down") [];
    if not up then begin
      (* Packets already serialized are on the wire and still arrive; the
         transmitter stalls at the next head-of-line packet. *)
      match policy with
      | Hold_queued -> ()
      | Drop_queued ->
          (* Flush through the discipline's drain op, which books the
             flushed packets as drops in one place. Dequeuing them here
             would count each as a departure (as if delivered) *and* an
             outage drop — double-counted and mis-bucketed, skewing
             Flowmon and the conservation invariant. *)
          let flushed = t.queue.Queue_disc.drain () in
          t.outage_drops <- t.outage_drops + List.length flushed;
          List.iter (fun pkt -> drop ~reason:"outage" t pkt) flushed
    end
    else if not t.busy then start_tx t;
    emit_queue_stats t;
    List.iter (fun f -> f up) t.state_listeners
  end

let send t pkt =
  if not t.dest_set then
    invalid_arg
      "Link.send: destination not set (call Link.set_dest before sending)";
  if tracing t then ev t "send" (pkt_fields pkt);
  if not t.up then begin
    (* A down link blackholes at the ingress: no queueing, immediate loss. *)
    t.outage_drops <- t.outage_drops + 1;
    drop ~reason:"outage" t pkt
  end
  else if t.queue.Queue_disc.enqueue pkt then begin
    if not t.busy then start_tx t
  end
  else drop t pkt
