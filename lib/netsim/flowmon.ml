type t = {
  now : unit -> float;
  series : Stats.Time_series.t;
  mutable packets : int;
  mutable bytes : int;
}

let create now = { now; series = Stats.Time_series.create (); packets = 0; bytes = 0 }

let record t (pkt : Packet.t) =
  if Packet.is_data pkt then begin
    t.packets <- t.packets + 1;
    t.bytes <- t.bytes + pkt.size;
    Stats.Time_series.add t.series ~time:(t.now ()) ~value:(float_of_int pkt.size)
  end

let wrap t handler pkt =
  record t pkt;
  handler pkt

let tap t = wrap t ignore
let series t = t.series
let packets t = t.packets
let bytes t = t.bytes
let mean_rate t ~t0 ~t1 = Stats.Time_series.mean_rate t.series ~t0 ~t1

module Queue_sampler = struct
  type sampler = {
    series : Stats.Time_series.t;
    mutable running : bool;
    mutable timer : Engine.Runtime.handle; (* pending tick, cancelled on stop *)
  }

  let start rt ~period ~queue =
    if period <= 0. then invalid_arg "Queue_sampler.start: period must be positive";
    let s =
      {
        series = Stats.Time_series.create ();
        running = true;
        timer = Engine.Runtime.null_handle;
      }
    in
    let sample () =
      let now = Engine.Runtime.now rt in
      let len = queue.Queue_disc.len_pkts () in
      Stats.Time_series.add s.series ~time:now ~value:(float_of_int len);
      let tr = Engine.Runtime.trace rt in
      if Engine.Trace.active tr then
        Engine.Trace.emit tr ~time:now ~cat:"queue" ~name:"sample"
          [ ("len", Engine.Trace.Int len) ]
    in
    let rec tick () =
      if s.running then begin
        sample ();
        s.timer <- Engine.Runtime.after rt period tick
      end
    in
    (* Sample at t0 too, so the first period isn't blind. *)
    sample ();
    s.timer <- Engine.Runtime.after rt period tick;
    s

  let series s = s.series

  let stop s =
    s.running <- false;
    (* Cancel rather than rely on the [running] flag: an orphaned pending
       tick would keep the sampler (queue closure included) live in the
       event heap until it fired. *)
    Engine.Runtime.cancel s.timer
end
