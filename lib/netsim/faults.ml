(* Link faults ------------------------------------------------------------- *)

(* Fault events ride the simulation's trace bus alongside the [link/*]
   events the link itself emits, so a trace reader can tell injected faults
   from organic congestion. *)
let fault_ev rt link name fields =
  let tr = Engine.Runtime.trace rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:(Engine.Runtime.now rt) ~cat:"fault" ~name
      (("link", Engine.Trace.Str (Link.label link)) :: fields)

let outage rt link ~at ~duration ?(policy = Link.Drop_queued) () =
  if duration < 0. then invalid_arg "Faults.outage: negative duration";
  ignore
    (Engine.Runtime.at rt at (fun () ->
         Link.set_up link ~policy false;
         fault_ev rt link "outage_start"
           [ ("duration", Engine.Trace.Float duration) ]));
  ignore
    (Engine.Runtime.at rt (at +. duration) (fun () ->
         Link.set_up link true;
         fault_ev rt link "outage_end" []))

let flapping rt link ~start ~stop ~period ~down_fraction ?(policy = Link.Drop_queued)
    () =
  if period <= 0. then invalid_arg "Faults.flapping: period must be positive";
  if down_fraction < 0. || down_fraction > 1. then
    invalid_arg "Faults.flapping: down_fraction must be in [0, 1]";
  let up_span = (1. -. down_fraction) *. period in
  let rec cycle at =
    if at < stop then begin
      let down_at = at +. up_span in
      if down_at < stop then begin
        ignore
          (Engine.Runtime.at rt down_at (fun () -> Link.set_up link ~policy false));
        let up_at = Float.min (at +. period) stop in
        ignore (Engine.Runtime.at rt up_at (fun () -> Link.set_up link true));
        cycle (at +. period)
      end
    end
  in
  cycle start;
  (* Whatever phase the last cycle ended in, the link is up after [stop]. *)
  ignore (Engine.Runtime.at rt stop (fun () -> Link.set_up link true))

let route_change rt link ~at ?bandwidth ?delay () =
  ignore
    (Engine.Runtime.at rt at (fun () ->
         Option.iter (Link.set_bandwidth link) bandwidth;
         Option.iter (Link.set_delay link) delay;
         fault_ev rt link "route_change"
           [
             ("bandwidth", Engine.Trace.Float (Link.bandwidth link));
             ("delay", Engine.Trace.Float (Link.delay link));
           ]))

(* Handler faults ----------------------------------------------------------- *)

let counted f =
  let n = ref 0 in
  (f (fun () -> incr n), fun () -> !n)

let reorder rt rng ~p ~jitter dest =
  if p < 0. || p > 1. then invalid_arg "Faults.reorder: bad p";
  if jitter < 0. then invalid_arg "Faults.reorder: negative jitter";
  counted (fun hit pkt ->
      if jitter > 0. && Engine.Rng.bool rng ~p then begin
        hit ();
        ignore
          (Engine.Runtime.after rt (Engine.Rng.float rng jitter) (fun () ->
               dest pkt))
      end
      else dest pkt)

let duplicate rt rng ~p ?(delay = 0.) dest =
  if p < 0. || p > 1. then invalid_arg "Faults.duplicate: bad p";
  if delay < 0. then invalid_arg "Faults.duplicate: negative delay";
  counted (fun hit pkt ->
      dest pkt;
      if Engine.Rng.bool rng ~p then begin
        hit ();
        if delay > 0. then
          ignore (Engine.Runtime.after rt delay (fun () -> dest pkt))
        else dest pkt
      end)

let corrupt rng ~p dest =
  if p < 0. || p > 1. then invalid_arg "Faults.corrupt: bad p";
  counted (fun hit pkt ->
      if Engine.Rng.bool rng ~p then begin
        hit ();
        pkt.Packet.corrupted <- true
      end;
      dest pkt)

let blackout ~now ~windows dest =
  List.iter
    (fun (a, b) ->
      if b < a then invalid_arg "Faults.blackout: window ends before it starts")
    windows;
  counted (fun hit pkt ->
      let t = now () in
      if List.exists (fun (a, b) -> t >= a && t < b) windows then hit ()
      else dest pkt)
