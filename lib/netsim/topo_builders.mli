(** Graph-backed scenario builders over {!Topology}.

    {!Graph_dumbbell} and {!Graph_parking_lot} are drop-in equivalents of
    the hand-wired {!Dumbbell} and {!Parking_lot} builders with a hard
    guarantee: identical inputs produce {e byte-identical} traces (same
    events, same times, same packet ids), verified by differential tests.
    {!Fat_tree} and {!Transcontinental} are graph-native scenarios with
    redundant paths for routing and failure-impact studies. *)

module Graph_dumbbell : sig
  type t

  val create :
    Engine.Runtime.t ->
    bandwidth:float ->
    delay:float ->
    queue:Dumbbell.queue_spec ->
    ?reverse_queue:Dumbbell.queue_spec ->
    ?mean_pktsize:int ->
    unit ->
    t

  val topology : t -> Topology.t
  val runtime : t -> Engine.Runtime.t
  val add_flow : t -> flow:int -> rtt_base:float -> unit
  val set_src_recv : t -> flow:int -> Packet.handler -> unit
  val set_dst_recv : t -> flow:int -> Packet.handler -> unit
  val src_sender : t -> flow:int -> Packet.handler
  val dst_sender : t -> flow:int -> Packet.handler
  val forward_link : t -> Link.t
  val reverse_link : t -> Link.t
  val forward_drop_rate : t -> float
end

module Graph_parking_lot : sig
  type t

  val create :
    Engine.Runtime.t ->
    hops:int ->
    bandwidth:float ->
    delay:float ->
    queue:(unit -> Queue_disc.t) ->
    unit ->
    t

  val topology : t -> Topology.t
  val runtime : t -> Engine.Runtime.t
  val n_hops : t -> int
  val add_through_flow : t -> flow:int -> rtt_base:float -> unit
  val add_cross_flow : t -> flow:int -> hop:int -> rtt_base:float -> unit
  val set_src_recv : t -> flow:int -> Packet.handler -> unit
  val set_dst_recv : t -> flow:int -> Packet.handler -> unit
  val src_sender : t -> flow:int -> Packet.handler
  val dst_sender : t -> flow:int -> Packet.handler
  val link : t -> hop:int -> Link.t
  val drop_rate : t -> float
end

module Fat_tree : sig
  type t

  (** [create rt ~pods ~bandwidth ~delay ~queue ()] builds a two-core
      spine with [pods] pods of one aggregation and two edge switches
      each; every switch-to-switch hop is a queued link in each direction,
      labelled ["c0-a1"], ["a1-e1.0"], … *)
  val create :
    Engine.Runtime.t ->
    pods:int ->
    bandwidth:float ->
    delay:float ->
    queue:(unit -> Queue_disc.t) ->
    unit ->
    t

  val topology : t -> Topology.t
  val pods : t -> int

  (** [add_flow t ~flow ~src_pod ~src_edge ~dst_pod ~dst_edge ~access]
      attaches fresh host nodes under the named edge switches
      ([*_edge] is 0 or 1) with [access]-delay wires. *)
  val add_flow :
    t ->
    flow:int ->
    src_pod:int ->
    src_edge:int ->
    dst_pod:int ->
    dst_edge:int ->
    access:float ->
    unit

  val set_src_recv : t -> flow:int -> Packet.handler -> unit
  val set_dst_recv : t -> flow:int -> Packet.handler -> unit
  val src_sender : t -> flow:int -> Packet.handler
  val dst_sender : t -> flow:int -> Packet.handler

  (** [link t label] finds a switch link by label; raises if absent. *)
  val link : t -> string -> Link.t
end

module Transcontinental : sig
  type t
  type city = Nyc | Chi | Den | Sfo | Atl

  val city_str : city -> string
  val city_of_string : string -> city option
  val cities : city list

  (** [create rt ~queue ()] builds the two-route WAN: a fast northern path
      nyc-chi-den-sfo and a thin southern detour nyc-atl-sfo, under the
      [Delay] cost model so the north is preferred while it is up. Links
      are labelled ["nyc-chi"], ["chi-den"], … per direction. *)
  val create : Engine.Runtime.t -> queue:(unit -> Queue_disc.t) -> unit -> t

  val topology : t -> Topology.t

  val add_flow : t -> flow:int -> src:city -> dst:city -> access:float -> unit
  val set_src_recv : t -> flow:int -> Packet.handler -> unit
  val set_dst_recv : t -> flow:int -> Packet.handler -> unit
  val src_sender : t -> flow:int -> Packet.handler
  val dst_sender : t -> flow:int -> Packet.handler

  (** [link t label] finds a segment by label; raises if absent. *)
  val link : t -> string -> Link.t * Topology.edge

  (** All link labels, in creation order. *)
  val labels : t -> string list
end
