(** Single-bottleneck ("dumbbell") topology, the workhorse of the paper's
    simulations.

    n sources on the left share one congested link to n sinks on the right;
    access segments are over-provisioned (modelled as pure delay) so drops
    and queueing happen only at the bottleneck. A reverse bottleneck of the
    same bandwidth carries acknowledgements/feedback (and optional
    reverse-path traffic).

    Per-flow wiring: an agent on the left sends with [src_send] and receives
    reverse packets through the handler registered with [set_src_recv]; the
    right-side agent uses [dst_send]/[set_dst_recv]. Per-flow access delay
    sets the base RTT. *)

type queue_spec =
  | Droptail_q of int  (** buffer limit in packets *)
  | Red_q of Red.params

type t

(** [create rt ~bandwidth ~delay ~queue ()] builds the bottleneck pair on
    the given sans-IO runtime (use [Engine.Sim.runtime sim] under the
    simulator). [bandwidth] in bits/s, [delay] one-way propagation of the
    bottleneck. [reverse_queue] defaults to [queue]. [mean_pktsize]
    (default 1000) calibrates RED's idle-time aging. *)
val create :
  Engine.Runtime.t ->
  bandwidth:float ->
  delay:float ->
  queue:queue_spec ->
  ?reverse_queue:queue_spec ->
  ?mean_pktsize:int ->
  unit ->
  t

val runtime : t -> Engine.Runtime.t

(** [add_flow t ~flow ~rtt_base] registers a flow whose base round-trip
    time (excluding queueing) is [rtt_base]. The access delay on each of
    the four access segments is [(rtt_base / 2 - delay) / 2]; [rtt_base]
    must be at least [2 * delay]. Raises if the flow id is taken. *)
val add_flow : t -> flow:int -> rtt_base:float -> unit

val set_src_recv : t -> flow:int -> Packet.handler -> unit
val set_dst_recv : t -> flow:int -> Packet.handler -> unit

(** [src_send t ~flow pkt] injects a packet at the left (data direction). *)
val src_send : t -> flow:int -> Packet.t -> unit

(** [dst_send t ~flow pkt] injects at the right (ack/feedback direction). *)
val dst_send : t -> flow:int -> Packet.t -> unit

(** Direct handlers, convenient to hand to agents. *)
val src_sender : t -> flow:int -> Packet.handler

val dst_sender : t -> flow:int -> Packet.handler

val forward_link : t -> Link.t
val reverse_link : t -> Link.t

(** [on_forward_drop t f] observes drops at the congested queue. *)
val on_forward_drop : t -> Packet.handler -> unit

(** Loss fraction at the forward bottleneck queue so far. *)
val forward_drop_rate : t -> float

(** Number of access-segment deliveries currently scheduled but not yet
    fired. *)
val in_flight : t -> int

(** [teardown t] cancels every pending access-segment delivery, so no
    packet fires into an endpoint after the scenario has stopped. The
    topology remains usable (subsequent sends schedule normally). *)
val teardown : t -> unit
