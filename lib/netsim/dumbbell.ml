type queue_spec = Droptail_q of int | Red_q of Red.params

type entry = {
  access : float; (* one-way delay of each access segment *)
  mutable src_recv : Packet.handler;
  mutable dst_recv : Packet.handler;
}

type t = {
  rt : Engine.Runtime.t;
  fwd : Link.t;
  bwd : Link.t;
  flows : (int, entry) Hashtbl.t;
  (* Pending access-segment deliveries, so teardown can cancel them: a
     delivery scheduled into a torn-down flow would otherwise fire into a
     stopped endpoint and keep the packet (and the endpoint closure) live
     until the timer's deadline. Each timer removes its own entry when it
     fires, so the table tracks only genuinely in-flight deliveries. *)
  pending : (int, Engine.Runtime.handle) Hashtbl.t;
  mutable next_token : int;
}

let make_queue rt ~spec ~bandwidth ~mean_pktsize =
  match spec with
  | Droptail_q limit -> Droptail.create ~limit_pkts:limit
  | Red_q params ->
      Red.create ~params
        ~now:(fun () -> Engine.Runtime.now rt)
        ~ptc:(bandwidth /. (8. *. float_of_int mean_pktsize))

(* Schedule [f] after the access delay, retaining the cancel handle until
   the timer fires. Zero-delay segments stay synchronous (no event), which
   keeps traces identical to the pre-handle-retention behavior. *)
let delayed t d f =
  if d > 0. then begin
    let k = t.next_token in
    t.next_token <- k + 1;
    let h =
      Engine.Runtime.after t.rt d (fun () ->
          Hashtbl.remove t.pending k;
          f ())
    in
    Hashtbl.add t.pending k h
  end
  else f ()

let create rt ~bandwidth ~delay ~queue ?reverse_queue ?(mean_pktsize = 1000) () =
  let reverse_queue = Option.value reverse_queue ~default:queue in
  let fwd_q = make_queue rt ~spec:queue ~bandwidth ~mean_pktsize in
  let bwd_q = make_queue rt ~spec:reverse_queue ~bandwidth ~mean_pktsize in
  let fwd = Link.create rt ~label:"bottleneck-fwd" ~bandwidth ~delay ~queue:fwd_q () in
  let bwd = Link.create rt ~label:"bottleneck-bwd" ~bandwidth ~delay ~queue:bwd_q () in
  let t =
    {
      rt;
      fwd;
      bwd;
      flows = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      next_token = 0;
    }
  in
  (* Demultiplex by flow id after the bottleneck, applying the flow's
     egress access delay. *)
  let demux side pkt =
    match Hashtbl.find_opt t.flows pkt.Packet.flow with
    | None -> () (* unrouted packet: silently discarded *)
    | Some e ->
        delayed t e.access (fun () ->
            match side with `Fwd -> e.dst_recv pkt | `Bwd -> e.src_recv pkt)
  in
  Link.set_dest fwd (demux `Fwd);
  Link.set_dest bwd (demux `Bwd);
  t

let runtime t = t.rt

let add_flow t ~flow ~rtt_base =
  if Hashtbl.mem t.flows flow then
    invalid_arg (Printf.sprintf "Dumbbell.add_flow: flow %d already exists" flow);
  let bneck_delay = Link.delay t.fwd in
  let access = ((rtt_base /. 2.) -. bneck_delay) /. 2. in
  if access < 0. then
    invalid_arg "Dumbbell.add_flow: rtt_base smaller than bottleneck RTT";
  Hashtbl.replace t.flows flow { access; src_recv = ignore; dst_recv = ignore }

let find t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Dumbbell: unknown flow %d" flow)

let set_src_recv t ~flow h = (find t flow).src_recv <- h
let set_dst_recv t ~flow h = (find t flow).dst_recv <- h

let inject t link ~flow pkt =
  let e = find t flow in
  delayed t e.access (fun () -> Link.send link pkt)

let src_send t ~flow pkt = inject t t.fwd ~flow pkt
let dst_send t ~flow pkt = inject t t.bwd ~flow pkt
let src_sender t ~flow pkt = src_send t ~flow pkt
let dst_sender t ~flow pkt = dst_send t ~flow pkt
let forward_link t = t.fwd
let reverse_link t = t.bwd
let on_forward_drop t f = Link.on_drop t.fwd f
let forward_drop_rate t = Queue_disc.drop_rate (Link.queue t.fwd)
let in_flight t = Hashtbl.length t.pending

let teardown t =
  Hashtbl.iter (fun _ h -> Engine.Runtime.cancel h) t.pending;
  Hashtbl.reset t.pending
