type queue_spec = Droptail_q of int | Red_q of Red.params

type entry = {
  access : float; (* one-way delay of each access segment *)
  mutable src_recv : Packet.handler;
  mutable dst_recv : Packet.handler;
}

type t = {
  sim : Engine.Sim.t;
  fwd : Link.t;
  bwd : Link.t;
  flows : (int, entry) Hashtbl.t;
}

let make_queue sim ~spec ~bandwidth ~mean_pktsize =
  match spec with
  | Droptail_q limit -> Droptail.create ~limit_pkts:limit
  | Red_q params ->
      Red.create ~params
        ~now:(fun () -> Engine.Sim.now sim)
        ~ptc:(bandwidth /. (8. *. float_of_int mean_pktsize))

let create sim ~bandwidth ~delay ~queue ?reverse_queue ?(mean_pktsize = 1000) () =
  let reverse_queue = Option.value reverse_queue ~default:queue in
  let fwd_q = make_queue sim ~spec:queue ~bandwidth ~mean_pktsize in
  let bwd_q = make_queue sim ~spec:reverse_queue ~bandwidth ~mean_pktsize in
  let fwd = Link.create sim ~label:"bottleneck-fwd" ~bandwidth ~delay ~queue:fwd_q () in
  let bwd = Link.create sim ~label:"bottleneck-bwd" ~bandwidth ~delay ~queue:bwd_q () in
  let t = { sim; fwd; bwd; flows = Hashtbl.create 64 } in
  (* Demultiplex by flow id after the bottleneck, applying the flow's
     egress access delay. *)
  let demux side pkt =
    match Hashtbl.find_opt t.flows pkt.Packet.flow with
    | None -> () (* unrouted packet: silently discarded *)
    | Some e ->
        let deliver () =
          match side with `Fwd -> e.dst_recv pkt | `Bwd -> e.src_recv pkt
        in
        if e.access > 0. then
          ignore (Engine.Sim.after sim e.access (fun () -> deliver ()))
        else deliver ()
  in
  Link.set_dest fwd (demux `Fwd);
  Link.set_dest bwd (demux `Bwd);
  t

let sim t = t.sim

let add_flow t ~flow ~rtt_base =
  if Hashtbl.mem t.flows flow then
    invalid_arg (Printf.sprintf "Dumbbell.add_flow: flow %d already exists" flow);
  let bneck_delay = Link.delay t.fwd in
  let access = ((rtt_base /. 2.) -. bneck_delay) /. 2. in
  if access < 0. then
    invalid_arg "Dumbbell.add_flow: rtt_base smaller than bottleneck RTT";
  Hashtbl.replace t.flows flow { access; src_recv = ignore; dst_recv = ignore }

let find t flow =
  match Hashtbl.find_opt t.flows flow with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Dumbbell: unknown flow %d" flow)

let set_src_recv t ~flow h = (find t flow).src_recv <- h
let set_dst_recv t ~flow h = (find t flow).dst_recv <- h

let inject t link ~flow pkt =
  let e = find t flow in
  if e.access > 0. then
    ignore (Engine.Sim.after t.sim e.access (fun () -> Link.send link pkt))
  else Link.send link pkt

let src_send t ~flow pkt = inject t t.fwd ~flow pkt
let dst_send t ~flow pkt = inject t t.bwd ~flow pkt
let src_sender t ~flow pkt = src_send t ~flow pkt
let dst_sender t ~flow pkt = dst_send t ~flow pkt
let forward_link t = t.fwd
let reverse_link t = t.bwd
let on_forward_drop t f = Link.on_drop t.fwd f
let forward_drop_rate t = Queue_disc.drop_rate (Link.queue t.fwd)
