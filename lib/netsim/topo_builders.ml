(* Graph-backed scenario builders. [dumbbell] and [parking_lot] replicate
   the hand-wired {!Dumbbell}/{!Parking_lot} builders' event structure and
   fresh-id consumption exactly, so their traces are byte-identical — the
   differential tests in test_topology.ml hold them to that. [fat_tree] and
   [transcontinental] are graph-native scenarios with redundant paths, the
   shapes routing and failure-impact analysis exist for. *)

(* --- graph-backed dumbbell ------------------------------------------------ *)

module Graph_dumbbell = struct
  type t = {
    topo : Topology.t;
    left : Topology.node;
    right : Topology.node;
    fwd : Link.t;
    bwd : Link.t;
    delay : float;
  }

  let make_queue rt ~spec ~bandwidth ~mean_pktsize =
    match spec with
    | Dumbbell.Droptail_q limit -> Droptail.create ~limit_pkts:limit
    | Dumbbell.Red_q params ->
        Red.create ~params
          ~now:(fun () -> Engine.Runtime.now rt)
          ~ptc:(bandwidth /. (8. *. float_of_int mean_pktsize))

  let create rt ~bandwidth ~delay ~queue ?reverse_queue ?(mean_pktsize = 1000)
      () =
    let reverse_queue = Option.value reverse_queue ~default:queue in
    let fwd_q = make_queue rt ~spec:queue ~bandwidth ~mean_pktsize in
    let bwd_q = make_queue rt ~spec:reverse_queue ~bandwidth ~mean_pktsize in
    (* Same explicit labels as Dumbbell.create: no fresh ids consumed, so
       packet ids downstream are unchanged. *)
    let fwd =
      Link.create rt ~label:"bottleneck-fwd" ~bandwidth ~delay ~queue:fwd_q ()
    in
    let bwd =
      Link.create rt ~label:"bottleneck-bwd" ~bandwidth ~delay ~queue:bwd_q ()
    in
    let topo = Topology.create rt () in
    let left = Topology.add_node topo in
    let right = Topology.add_node topo in
    ignore (Topology.add_link topo ~src:left ~dst:right fwd);
    ignore (Topology.add_link topo ~src:right ~dst:left bwd);
    { topo; left; right; fwd; bwd; delay }

  let topology t = t.topo
  let runtime t = Topology.runtime t.topo

  let add_flow t ~flow ~rtt_base =
    let access = ((rtt_base /. 2.) -. t.delay) /. 2. in
    if access < 0. then
      invalid_arg "Graph_dumbbell.add_flow: rtt_base smaller than bottleneck RTT";
    let src = Topology.add_node t.topo in
    let dst = Topology.add_node t.topo in
    (* Zero-delay access wires stay synchronous, like Dumbbell's demux. *)
    ignore (Topology.add_wire t.topo ~src ~dst:t.left access);
    ignore (Topology.add_wire t.topo ~src:t.left ~dst:src access);
    ignore (Topology.add_wire t.topo ~src:t.right ~dst access);
    ignore (Topology.add_wire t.topo ~src:dst ~dst:t.right access);
    Topology.add_flow t.topo ~flow ~src ~dst

  let set_src_recv t ~flow h = Topology.set_src_recv t.topo ~flow h
  let set_dst_recv t ~flow h = Topology.set_dst_recv t.topo ~flow h
  let src_sender t ~flow = Topology.src_sender t.topo ~flow
  let dst_sender t ~flow = Topology.dst_sender t.topo ~flow
  let forward_link t = t.fwd
  let reverse_link t = t.bwd
  let forward_drop_rate t = Queue_disc.drop_rate (Link.queue t.fwd)
end

(* --- graph-backed parking lot --------------------------------------------- *)

module Graph_parking_lot = struct
  type t = {
    topo : Topology.t;
    links : Link.t array;
    routers : Topology.node array; (* hops + 1 of them *)
    delay : float;
  }

  let create rt ~hops ~bandwidth ~delay ~queue () =
    if hops < 1 then
      invalid_arg "Graph_parking_lot.create: need at least one hop";
    (* Unlabelled links first, in hop order: consumes fresh ids 1..hops
       exactly like Parking_lot.create, keeping default labels and all
       later packet ids identical. *)
    let links =
      Array.init hops (fun _ ->
          Link.create rt ~bandwidth ~delay ~queue:(queue ()) ())
    in
    let topo = Topology.create rt () in
    let routers = Array.init (hops + 1) (fun _ -> Topology.add_node topo) in
    Array.iteri
      (fun i link ->
        ignore
          (Topology.add_link topo ~src:routers.(i) ~dst:routers.(i + 1) link))
      links;
    { topo; links; routers; delay }

  let topology t = t.topo
  let runtime t = Topology.runtime t.topo
  let n_hops t = Array.length t.links

  let register t ~flow ~entry ~exit_ ~rtt_base =
    let span = float_of_int (exit_ - entry + 1) *. t.delay in
    let one_way = rtt_base /. 2. in
    let access = (one_way -. span) /. 2. in
    if access < 0. then
      invalid_arg "Graph_parking_lot: rtt_base smaller than the path propagation";
    let src = Topology.add_node t.topo in
    let dst = Topology.add_node t.topo in
    (* The legacy builder schedules every access/reverse segment through
       the event queue even at zero delay; always_schedule matches that. *)
    ignore
      (Topology.add_wire t.topo ~src ~dst:t.routers.(entry) ~always_schedule:true
         access);
    ignore
      (Topology.add_wire t.topo ~src:t.routers.(exit_ + 1) ~dst
         ~always_schedule:true access);
    (* Well-provisioned reverse path: one fixed-delay wire. *)
    ignore (Topology.add_wire t.topo ~src:dst ~dst:src ~always_schedule:true one_way);
    Topology.add_flow t.topo ~flow ~src ~dst

  let add_through_flow t ~flow ~rtt_base =
    register t ~flow ~entry:0 ~exit_:(n_hops t - 1) ~rtt_base

  let add_cross_flow t ~flow ~hop ~rtt_base =
    if hop < 1 || hop > n_hops t then invalid_arg "Graph_parking_lot: bad hop";
    register t ~flow ~entry:(hop - 1) ~exit_:(hop - 1) ~rtt_base

  let set_src_recv t ~flow h = Topology.set_src_recv t.topo ~flow h
  let set_dst_recv t ~flow h = Topology.set_dst_recv t.topo ~flow h
  let src_sender t ~flow = Topology.src_sender t.topo ~flow
  let dst_sender t ~flow = Topology.dst_sender t.topo ~flow

  let link t ~hop =
    if hop < 1 || hop > n_hops t then invalid_arg "Graph_parking_lot: bad hop";
    t.links.(hop - 1)

  let drop_rate t =
    let arrivals = ref 0 and drops = ref 0 in
    Array.iter
      (fun l ->
        let s = (Link.queue l).Queue_disc.stats in
        arrivals := !arrivals + s.arrivals;
        drops := !drops + s.drops)
      t.links;
    if !arrivals = 0 then 0.
    else float_of_int !drops /. float_of_int !arrivals
end

(* --- fat tree ------------------------------------------------------------- *)

module Fat_tree = struct
  type t = {
    topo : Topology.t;
    cores : Topology.node array; (* 2 cores: redundant spine *)
    aggs : Topology.node array; (* one per pod *)
    edges : Topology.node array array; (* 2 edge switches per pod *)
  }

  let duplex topo ~a ~b make_link label_ab label_ba =
    ignore (Topology.add_link topo ~src:a ~dst:b (make_link label_ab));
    ignore (Topology.add_link topo ~src:b ~dst:a (make_link label_ba))

  let create rt ~pods ~bandwidth ~delay ~queue () =
    if pods < 2 then invalid_arg "Fat_tree.create: need at least two pods";
    let topo = Topology.create rt () in
    let mk label = Link.create rt ~label ~bandwidth ~delay ~queue:(queue ()) () in
    let cores = Array.init 2 (fun _ -> Topology.add_node topo) in
    let aggs = Array.init pods (fun _ -> Topology.add_node topo) in
    let edges =
      Array.init pods (fun _ ->
          Array.init 2 (fun _ -> Topology.add_node topo))
    in
    Array.iteri
      (fun p agg ->
        Array.iteri
          (fun c core ->
            duplex topo ~a:core ~b:agg mk
              (Printf.sprintf "c%d-a%d" c p)
              (Printf.sprintf "a%d-c%d" p c))
          cores;
        Array.iteri
          (fun e edge ->
            duplex topo ~a:agg ~b:edge mk
              (Printf.sprintf "a%d-e%d.%d" p p e)
              (Printf.sprintf "e%d.%d-a%d" p e p))
          edges.(p))
      aggs;
    { topo; cores; aggs; edges }

  let topology t = t.topo
  let pods t = Array.length t.aggs

  let check_pod t p name =
    if p < 0 || p >= pods t then invalid_arg ("Fat_tree." ^ name ^ ": bad pod")

  (* Hosts hang off edge switches by pure-delay wires, one node per flow
     endpoint so each flow gets its own access delay. *)
  let add_flow t ~flow ~src_pod ~src_edge ~dst_pod ~dst_edge ~access =
    check_pod t src_pod "add_flow";
    check_pod t dst_pod "add_flow";
    if src_edge < 0 || src_edge > 1 || dst_edge < 0 || dst_edge > 1 then
      invalid_arg "Fat_tree.add_flow: edge switch index must be 0 or 1";
    let host sw =
      let h = Topology.add_node t.topo in
      ignore (Topology.add_wire t.topo ~src:h ~dst:sw access);
      ignore (Topology.add_wire t.topo ~src:sw ~dst:h access);
      h
    in
    let src = host t.edges.(src_pod).(src_edge) in
    let dst = host t.edges.(dst_pod).(dst_edge) in
    Topology.add_flow t.topo ~flow ~src ~dst

  let set_src_recv t ~flow h = Topology.set_src_recv t.topo ~flow h
  let set_dst_recv t ~flow h = Topology.set_dst_recv t.topo ~flow h
  let src_sender t ~flow = Topology.src_sender t.topo ~flow
  let dst_sender t ~flow = Topology.dst_sender t.topo ~flow

  let link t label =
    match Topology.find_link t.topo label with
    | Some (l, _) -> l
    | None -> invalid_arg ("Fat_tree.link: no link labelled " ^ label)
end

(* --- transcontinental multi-bottleneck ------------------------------------ *)

module Transcontinental = struct
  (* A two-route WAN: the northern path (nyc-chi-den-sfo) is fast and
     preferred under the Delay cost model; the southern path (nyc-atl-sfo)
     is a slower detour. Losing one northern segment re-routes coast-to-
     coast traffic south; losing a city's only remaining attachment
     partitions it — the canonical impact-analysis scenario. *)
  type t = {
    topo : Topology.t;
    nyc : Topology.node;
    chi : Topology.node;
    den : Topology.node;
    sfo : Topology.node;
    atl : Topology.node;
  }

  type city = Nyc | Chi | Den | Sfo | Atl

  let node t = function
    | Nyc -> t.nyc
    | Chi -> t.chi
    | Den -> t.den
    | Sfo -> t.sfo
    | Atl -> t.atl

  let city_str = function
    | Nyc -> "nyc"
    | Chi -> "chi"
    | Den -> "den"
    | Sfo -> "sfo"
    | Atl -> "atl"

  let city_of_string = function
    | "nyc" -> Some Nyc
    | "chi" -> Some Chi
    | "den" -> Some Den
    | "sfo" -> Some Sfo
    | "atl" -> Some Atl
    | _ -> None

  let cities = [ Nyc; Chi; Den; Sfo; Atl ]

  let create rt ~queue () =
    let topo = Topology.create ~cost_model:Topology.Delay rt () in
    let nyc = Topology.add_node topo in
    let chi = Topology.add_node topo in
    let den = Topology.add_node topo in
    let sfo = Topology.add_node topo in
    let atl = Topology.add_node topo in
    let t = { topo; nyc; chi; den; sfo; atl } in
    let duplex a b ~bandwidth ~delay =
      let mk la lb =
        let label = Printf.sprintf "%s-%s" (city_str la) (city_str lb) in
        Link.create rt ~label ~bandwidth ~delay ~queue:(queue ()) ()
      in
      ignore (Topology.add_link topo ~src:(node t a) ~dst:(node t b) (mk a b));
      ignore (Topology.add_link topo ~src:(node t b) ~dst:(node t a) (mk b a))
    in
    (* Northern route: fat, low-delay segments. *)
    duplex Nyc Chi ~bandwidth:45e6 ~delay:0.008;
    duplex Chi Den ~bandwidth:45e6 ~delay:0.010;
    duplex Den Sfo ~bandwidth:45e6 ~delay:0.012;
    (* Southern detour: thinner and slower, used only under failure. *)
    duplex Nyc Atl ~bandwidth:10e6 ~delay:0.012;
    duplex Atl Sfo ~bandwidth:10e6 ~delay:0.030;
    t

  let topology t = t.topo

  let add_flow t ~flow ~src ~dst ~access =
    let host city =
      let h = Topology.add_node t.topo in
      ignore (Topology.add_wire t.topo ~src:h ~dst:(node t city) access);
      ignore (Topology.add_wire t.topo ~src:(node t city) ~dst:h access);
      h
    in
    Topology.add_flow t.topo ~flow ~src:(host src) ~dst:(host dst)

  let set_src_recv t ~flow h = Topology.set_src_recv t.topo ~flow h
  let set_dst_recv t ~flow h = Topology.set_dst_recv t.topo ~flow h
  let src_sender t ~flow = Topology.src_sender t.topo ~flow
  let dst_sender t ~flow = Topology.dst_sender t.topo ~flow

  let link t label =
    match Topology.find_link t.topo label with
    | Some (l, e) -> (l, e)
    | None -> invalid_arg ("Transcontinental.link: no link labelled " ^ label)

  let labels t =
    List.filter_map
      (fun e -> Option.map Link.label (Topology.edge_link e))
      (Topology.edges t.topo)
end
