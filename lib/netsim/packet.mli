(** Simulated packets.

    A packet carries the common header fields (flow id, per-flow sequence
    number, size in bytes, send timestamp) plus a protocol-specific payload
    variant. Sizes include the transport/network header; serialization and
    queueing cost is charged on [size]. *)

type payload =
  | Data  (** generic data: TCP segments, UDP datagrams *)
  | Tcp_ack of {
      ack : int;  (** next expected in-order sequence number (cumulative) *)
      sack : (int * int) list;
          (** SACK blocks as half-open ranges [lo, hi) of packet seqnos,
              most recent first *)
      ece : bool;  (** ECN-echo: the acked data carried a CE mark *)
    }
  | Tfrc_data of {
      rtt : float;  (** sender's current RTT estimate, piggybacked so the
                        receiver can coalesce losses into loss events *)
    }
  | Tfrc_feedback of {
      p : float;  (** receiver's loss event rate estimate *)
      recv_rate : float;  (** bytes/s received over the last RTT *)
      ts_echo : float;  (** timestamp of the most recent data packet *)
      ts_delay : float;  (** receiver dwell time between that packet's
                             arrival and this feedback *)
    }

type t = {
  mutable id : int;
      (** unique within the owning simulation, allocated by
          {!Engine.Sim.fresh_id}; deterministic per sim *)
  mutable flow : int;
  mutable seq : int;
  mutable size : int;  (** bytes *)
  mutable sent_at : float;  (** virtual time the source emitted the packet *)
  mutable payload : payload;
  mutable ecn_capable : bool;
      (** sender supports Explicit Congestion Notification *)
  mutable ecn_marked : bool;  (** CE mark set by an ECN-enabled queue *)
  mutable corrupted : bool;
      (** payload damaged in flight (fault injection); a real stack's
          checksum would fail, so endpoints discard such packets on
          arrival *)
}
(** Header fields are mutable only so {!Pool} can recycle records; outside
    the pool a packet is written once at allocation and treated as
    immutable apart from the in-flight [ecn_marked]/[corrupted] marks. *)

(** [make rt ?ecn ~flow ~seq ~size ~now payload] allocates a packet whose
    id is drawn from [rt]'s per-runtime counter
    ({!Engine.Runtime.fresh_id}), so packet identity is deterministic per
    simulation (pass [Engine.Sim.runtime sim]) and safe under
    domain-parallel runs — there is no process-global id state. The wire
    loop's runtime serves the same role for real-time endpoints. [ecn]
    (default false) declares the flow ECN-capable. *)
val make :
  Engine.Runtime.t ->
  ?ecn:bool ->
  flow:int ->
  seq:int ->
  size:int ->
  now:float ->
  payload ->
  t

(** Handler type: where packets go. *)
type handler = t -> unit

(** Per-simulation packet freelist.

    Recycles packet records so steady-state sending allocates nothing: at
    100k+ flows the minor GC churn of one fresh record per packet is a
    dominant cost. Opt-in at allocation sites that own the packet's whole
    lifetime — only [release] a packet once nothing (queue, tracer,
    endpoint, loss history) still references it, or the next [alloc] will
    mutate it under that reader. Ids are drawn fresh from the runtime on
    every [alloc], reused record or not, so packet identity is
    unaffected. *)
module Pool : sig
  type packet := t
  type t

  val create : unit -> t

  (** Like {!make}, but reuses a released record when one is available. *)
  val alloc :
    t ->
    Engine.Runtime.t ->
    ?ecn:bool ->
    flow:int ->
    seq:int ->
    size:int ->
    now:float ->
    payload ->
    packet

  (** [release pool p] returns [p] to the freelist. The caller must hold
      the only live reference. *)
  val release : t -> packet -> unit

  (** Packets allocated and not yet released. *)
  val outstanding : t -> int

  (** Records currently idle on the freelist (O(n)). *)
  val idle : t -> int
end

val is_data : t -> bool
val pp : Format.formatter -> t -> unit
