(** Simulated packets.

    A packet carries the common header fields (flow id, per-flow sequence
    number, size in bytes, send timestamp) plus a protocol-specific payload
    variant. Sizes include the transport/network header; serialization and
    queueing cost is charged on [size]. *)

type payload =
  | Data  (** generic data: TCP segments, UDP datagrams *)
  | Tcp_ack of {
      ack : int;  (** next expected in-order sequence number (cumulative) *)
      sack : (int * int) list;
          (** SACK blocks as half-open ranges [lo, hi) of packet seqnos,
              most recent first *)
      ece : bool;  (** ECN-echo: the acked data carried a CE mark *)
    }
  | Tfrc_data of {
      rtt : float;  (** sender's current RTT estimate, piggybacked so the
                        receiver can coalesce losses into loss events *)
    }
  | Tfrc_feedback of {
      p : float;  (** receiver's loss event rate estimate *)
      recv_rate : float;  (** bytes/s received over the last RTT *)
      ts_echo : float;  (** timestamp of the most recent data packet *)
      ts_delay : float;  (** receiver dwell time between that packet's
                             arrival and this feedback *)
    }

type t = {
  id : int;  (** unique within the owning simulation, allocated by
                 {!Engine.Sim.fresh_id}; deterministic per sim *)
  flow : int;
  seq : int;
  size : int;  (** bytes *)
  sent_at : float;  (** virtual time the source emitted the packet *)
  payload : payload;
  ecn_capable : bool;  (** sender supports Explicit Congestion Notification *)
  mutable ecn_marked : bool;  (** CE mark set by an ECN-enabled queue *)
  mutable corrupted : bool;
      (** payload damaged in flight (fault injection); a real stack's
          checksum would fail, so endpoints discard such packets on
          arrival *)
}

(** [make sim ?ecn ~flow ~seq ~size ~now payload] allocates a packet whose
    id is drawn from [sim]'s per-simulation counter ({!Engine.Sim.fresh_id}),
    so packet identity is deterministic per simulation and safe under
    domain-parallel runs — there is no process-global id state. [ecn]
    (default false) declares the flow ECN-capable. *)
val make :
  Engine.Sim.t ->
  ?ecn:bool ->
  flow:int ->
  seq:int ->
  size:int ->
  now:float ->
  payload ->
  t

(** Handler type: where packets go. *)
type handler = t -> unit

val is_data : t -> bool
val pp : Format.formatter -> t -> unit
