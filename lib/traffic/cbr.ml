type t = {
  rt : Engine.Runtime.t;
  flow : int;
  interval : float;
  pkt_size : int;
  transmit : Netsim.Packet.handler;
  mutable running : bool;
  mutable seq : int;
}

let create rt ~flow ~rate ~pkt_size ~transmit () =
  if rate <= 0. then invalid_arg "Cbr.create: rate must be positive";
  {
    rt;
    flow;
    interval = 8. *. float_of_int pkt_size /. rate;
    pkt_size;
    transmit;
    running = false;
    seq = 0;
  }

let rec send t =
  if t.running then begin
    let pkt =
      Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.seq ~size:t.pkt_size
        ~now:(Engine.Runtime.now t.rt) Netsim.Packet.Data
    in
    t.seq <- t.seq + 1;
    t.transmit pkt;
    ignore (Engine.Runtime.after t.rt t.interval (fun () -> send t))
  end

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         send t))

let stop t = t.running <- false
let packets_sent t = t.seq
