(** Pareto ON/OFF UDP source (Section 4.1.3 background traffic).

    Alternates between ON periods (sending at a fixed rate) and silent OFF
    periods, with both durations drawn from heavy-tailed Pareto
    distributions; aggregating many such sources yields self-similar
    traffic [WTSW95]. The paper's setup: mean ON 1 s, mean OFF 2 s, 500
    kbit/s during ON. *)

type t

val create :
  Engine.Runtime.t ->
  Engine.Rng.t ->
  flow:int ->
  on_rate:float (** bits/s while ON *) ->
  pkt_size:int ->
  mean_on:float (** seconds *) ->
  mean_off:float (** seconds *) ->
  ?shape:float (** Pareto shape, default 1.5 *) ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

val start : t -> at:float -> unit
val stop : t -> unit
val packets_sent : t -> int

(** Fraction of elapsed time spent ON so far (diagnostics). *)
val on_fraction : t -> float
