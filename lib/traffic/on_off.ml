type t = {
  rt : Engine.Runtime.t;
  rng : Engine.Rng.t;
  flow : int;
  interval : float; (* interpacket interval while ON *)
  pkt_size : int;
  on_scale : float;
  off_scale : float;
  shape : float;
  transmit : Netsim.Packet.handler;
  mutable running : bool;
  mutable on : bool;
  mutable phase_end : float; (* when the current ON phase ends *)
  mutable seq : int;
  mutable on_time : float;
  mutable started_at : float;
}

let create rt rng ~flow ~on_rate ~pkt_size ~mean_on ~mean_off ?(shape = 1.5)
    ~transmit () =
  if on_rate <= 0. then invalid_arg "On_off.create: rate must be positive";
  if shape <= 1. then invalid_arg "On_off.create: shape must exceed 1";
  let scale_for mean = mean *. (shape -. 1.) /. shape in
  {
    rt;
    rng;
    flow;
    interval = 8. *. float_of_int pkt_size /. on_rate;
    pkt_size;
    on_scale = scale_for mean_on;
    off_scale = scale_for mean_off;
    shape;
    transmit;
    running = false;
    on = false;
    phase_end = 0.;
    seq = 0;
    on_time = 0.;
    started_at = 0.;
  }

let rec send_loop t =
  if t.running && t.on then begin
    let now = Engine.Runtime.now t.rt in
    if now >= t.phase_end then go_off t
    else begin
      let pkt =
        Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.seq ~size:t.pkt_size ~now
          Netsim.Packet.Data
      in
      t.seq <- t.seq + 1;
      t.transmit pkt;
      ignore (Engine.Runtime.after t.rt t.interval (fun () -> send_loop t))
    end
  end

and go_on t =
  if t.running then begin
    let d = Engine.Rng.pareto t.rng ~shape:t.shape ~scale:t.on_scale in
    t.on <- true;
    t.on_time <- t.on_time +. d;
    t.phase_end <- Engine.Runtime.now t.rt +. d;
    send_loop t
  end

and go_off t =
  if t.running then begin
    let d = Engine.Rng.pareto t.rng ~shape:t.shape ~scale:t.off_scale in
    t.on <- false;
    ignore (Engine.Runtime.after t.rt d (fun () -> go_on t))
  end

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         t.started_at <- Engine.Runtime.now t.rt;
         (* Begin in a random phase to decorrelate sources. *)
         if Engine.Rng.bool t.rng ~p:(1. /. 3.) then go_on t else go_off t))

let stop t = t.running <- false
let packets_sent t = t.seq

let on_fraction t =
  let elapsed = Engine.Runtime.now t.rt -. t.started_at in
  if elapsed <= 0. then 0. else Float.min 1. (t.on_time /. elapsed)
