(** Constant-bit-rate UDP source. *)

type t

(** [create sim ~flow ~rate ~pkt_size ~transmit ()] sends [pkt_size]-byte
    [Data] packets back to back at [rate] bits/s. *)
val create :
  Engine.Runtime.t ->
  flow:int ->
  rate:float (** bits/s *) ->
  pkt_size:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

val start : t -> at:float -> unit
val stop : t -> unit
val packets_sent : t -> int
