type t = {
  db : Netsim.Dumbbell.t;
  rng : Engine.Rng.t;
  arrival_rate : float;
  mean_size : float;
  shape : float;
  rtt_base : float;
  config : Tcpsim.Tcp_common.config;
  mutable next_flow : int;
  mutable running : bool;
  mutable started : int;
  mutable completed : int;
  mutable delivered : int;
}

let create db rng ~first_flow_id ~arrival_rate ~mean_size ?(shape = 1.3)
    ?(rtt_base = 0.08) ?(config = Tcpsim.Tcp_common.ns_sack) () =
  if arrival_rate <= 0. then invalid_arg "Web_mix.create: arrival rate";
  if mean_size < 1. then invalid_arg "Web_mix.create: mean size";
  {
    db;
    rng;
    arrival_rate;
    mean_size;
    shape;
    rtt_base;
    config;
    next_flow = first_flow_id;
    running = false;
    started = 0;
    completed = 0;
    delivered = 0;
  }

let transfer_size t =
  let scale = t.mean_size *. (t.shape -. 1.) /. t.shape in
  let n = Engine.Rng.pareto t.rng ~shape:t.shape ~scale in
  max 1 (int_of_float (ceil n))

let spawn t =
  let rt = Netsim.Dumbbell.runtime t.db in
  let flow = t.next_flow in
  t.next_flow <- t.next_flow + 1;
  t.started <- t.started + 1;
  (* Jitter the base RTT so background flows do not phase-lock. *)
  let rtt = t.rtt_base *. (0.8 +. Engine.Rng.float t.rng 0.4) in
  Netsim.Dumbbell.add_flow t.db ~flow ~rtt_base:rtt;
  let sink =
    Tcpsim.Tcp_sink.create rt ~config:t.config ~flow
      ~transmit:(Netsim.Dumbbell.dst_sender t.db ~flow) ()
  in
  Netsim.Dumbbell.set_dst_recv t.db ~flow (Tcpsim.Tcp_sink.recv sink);
  let sender =
    Tcpsim.Tcp_sender.create rt ~config:t.config ~flow
      ~transmit:(Netsim.Dumbbell.src_sender t.db ~flow) ()
  in
  Netsim.Dumbbell.set_src_recv t.db ~flow (Tcpsim.Tcp_sender.recv sender);
  let size = transfer_size t in
  Tcpsim.Tcp_sender.set_limit sender size;
  Tcpsim.Tcp_sender.on_complete sender (fun () ->
      t.completed <- t.completed + 1;
      t.delivered <- t.delivered + size);
  Tcpsim.Tcp_sender.start sender ~at:(Engine.Runtime.now rt)

let rec arrival_loop t =
  if t.running then begin
    let rt = Netsim.Dumbbell.runtime t.db in
    let gap = Engine.Rng.exponential t.rng ~mean:(1. /. t.arrival_rate) in
    ignore
      (Engine.Runtime.after rt gap (fun () ->
           if t.running then begin
             spawn t;
             arrival_loop t
           end))
  end

let start t ~at =
  let rt = Netsim.Dumbbell.runtime t.db in
  ignore
    (Engine.Runtime.at rt at (fun () ->
         t.running <- true;
         arrival_loop t))

let stop t = t.running <- false
let connections_started t = t.started
let connections_completed t = t.completed
let packets_delivered t = t.delivered
