(** TCP receiver: cumulative acknowledgements plus SACK blocks.

    Acks every data packet (or every second packet with delayed acks; gaps
    force an immediate duplicate ack, per RFC 5681). SACK blocks report
    out-of-order data as half-open packet ranges, block containing the most
    recent arrival first, up to three blocks. *)

type t

val create :
  Engine.Runtime.t ->
  config:Tcp_common.config ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

(** Feed incoming data packets here. *)
val recv : t -> Netsim.Packet.handler

val packets_received : t -> int
val bytes_received : t -> int

(** Next in-order sequence number expected (= current cumulative ack). *)
val next_expected : t -> int
