(** Window-based TCP sender with Tahoe / Reno / NewReno / Sack congestion
    control, modelled on the ns-2 agents used in the paper.

    Packet-granularity sequence numbers; the application always has data to
    send (the paper's model). Implements slow start, congestion avoidance,
    fast retransmit on three duplicate acks, per-variant loss recovery
    (Reno window inflation, NewReno partial-ack retransmission, a
    conservative SACK pipe algorithm), retransmission timeouts with Karn's
    algorithm and exponential backoff. *)

type t

type stats = {
  mutable packets_sent : int;  (** data packets, including retransmits *)
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable window_halvings : int;  (** congestion responses of any kind *)
}

(** [create sim ~config ~flow ~transmit ()] builds a sender that emits
    packets through [transmit]. Wire acks into {!recv}. Call {!start}. *)
val create :
  Engine.Runtime.t ->
  config:Tcp_common.config ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

(** Feed acknowledgement packets here. *)
val recv : t -> Netsim.Packet.handler

(** [start t ~at] begins transmission at virtual time [at]. *)
val start : t -> at:float -> unit

(** [stop t] halts transmission and cancels timers. *)
val stop : t -> unit

val cwnd : t -> float
val ssthresh : t -> float
val stats : t -> stats
val srtt : t -> float option

(** Lowest unacknowledged sequence number. *)
val snd_una : t -> int

(** Next new sequence number to be sent. *)
val snd_nxt : t -> int

val in_recovery : t -> bool

(** [set_limit t n] makes this a finite transfer of [n] packets; the sender
    stops and fires the completion callback once everything is acked. Used
    for web-like background traffic. *)
val set_limit : t -> int -> unit

val on_complete : t -> (unit -> unit) -> unit
val finished : t -> bool
