module Int_set = Set.Make (Int)

type t = {
  rt : Engine.Runtime.t;
  config : Tcp_common.config;
  flow : int;
  transmit : Netsim.Packet.handler;
  mutable next_expected : int;
  mutable ooo : Int_set.t; (* out-of-order packets above next_expected *)
  mutable last_arrival : int; (* most recently arrived seq, for SACK order *)
  mutable packets : int;
  mutable bytes : int;
  mutable unacked : int; (* data packets since last ack (delack) *)
  mutable delack_timer : Engine.Runtime.handle;
  mutable ce_pending : bool; (* a CE mark not yet echoed *)
}

let create rt ~config ~flow ~transmit () =
  {
    rt;
    config;
    flow;
    transmit;
    next_expected = 0;
    ooo = Int_set.empty;
    last_arrival = -1;
    packets = 0;
    bytes = 0;
    unacked = 0;
    delack_timer = Engine.Runtime.null_handle;
    ce_pending = false;
  }

(* Contiguous ranges of the out-of-order set, as half-open [lo, hi). *)
let ranges set =
  Int_set.fold
    (fun s acc ->
      match acc with
      | (lo, hi) :: rest when s = hi -> (lo, s + 1) :: rest
      | _ -> (s, s + 1) :: acc)
    set []
  |> List.rev

let sack_blocks t =
  let rs = ranges t.ooo in
  (* Most recent arrival's block first (RFC 2018), then the rest in
     descending order of lo. *)
  let contains (lo, hi) = t.last_arrival >= lo && t.last_arrival < hi in
  let recent, others = List.partition contains rs in
  let others = List.sort (fun (a, _) (b, _) -> compare b a) others in
  let blocks = recent @ others in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  take 3 blocks

let send_ack t =
  t.unacked <- 0;
  Engine.Runtime.cancel t.delack_timer;
  let pkt =
    Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.next_expected ~size:t.config.ack_size
      ~now:(Engine.Runtime.now t.rt)
      (Netsim.Packet.Tcp_ack
         { ack = t.next_expected; sack = sack_blocks t; ece = t.ce_pending })
  in
  t.ce_pending <- false;
  t.transmit pkt

let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | _ when pkt.corrupted -> () (* checksum failure: segment is discarded *)
  | Data | Tfrc_data _ ->
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + pkt.size;
      if t.config.ecn && pkt.ecn_marked then t.ce_pending <- true;
      t.last_arrival <- pkt.seq;
      let in_order = pkt.seq = t.next_expected in
      if in_order then begin
        t.next_expected <- t.next_expected + 1;
        while Int_set.mem t.next_expected t.ooo do
          t.ooo <- Int_set.remove t.next_expected t.ooo;
          t.next_expected <- t.next_expected + 1
        done
      end
      else if pkt.seq > t.next_expected then t.ooo <- Int_set.add pkt.seq t.ooo;
      (* Immediate ack on any gap/out-of-order or when delack is off;
         otherwise ack every second segment or on timer. *)
      let gap = (not in_order) || not (Int_set.is_empty t.ooo) in
      if (not t.config.delack) || gap then send_ack t
      else begin
        t.unacked <- t.unacked + 1;
        if t.unacked >= 2 then send_ack t
        else if not (Engine.Runtime.is_pending t.delack_timer) then
          t.delack_timer <-
            Engine.Runtime.after t.rt t.config.delack_timeout (fun () ->
                if t.unacked > 0 then send_ack t)
      end
  | Tcp_ack _ | Tfrc_feedback _ -> ()

let recv t = recv t
let packets_received t = t.packets
let bytes_received t = t.bytes
let next_expected t = t.next_expected
