module Int_set = Set.Make (Int)

type stats = {
  mutable packets_sent : int;
  mutable retransmits : int;
  mutable timeouts : int;
  mutable fast_retransmits : int;
  mutable window_halvings : int;
}

type recovery = { recover : int (* highest seq outstanding at loss detection *) }

type t = {
  rt : Engine.Runtime.t;
  config : Tcp_common.config;
  flow : int;
  transmit : Netsim.Packet.handler;
  rto : Rto.t;
  mutable running : bool;
  mutable cwnd : float; (* packets *)
  mutable ssthresh : float;
  mutable snd_una : int; (* lowest unacked seq *)
  mutable snd_nxt : int; (* next seq to send (rolled back after a timeout) *)
  mutable high_water : int; (* highest seq ever sent + 1 *)
  mutable recover_point : int;
      (* No new fast retransmit until snd_una passes this point (ns-2's
         "bugfix": prevents false fast retransmits triggered by dup acks
         for segments re-sent after a timeout, and Tahoe/Reno multiple
         window reductions for one loss window). *)
  mutable dupacks : int;
  mutable recovery : recovery option;
  mutable sacked : Int_set.t; (* seqs >= snd_una reported received *)
  mutable rtx : Int_set.t; (* retransmitted during current recovery *)
  mutable timing : (int * float) option;
      (* One segment timed at a time (ns-2 style); cancelled when that
         segment is retransmitted, so stale samples never poison the RTO
         (Karn's algorithm). *)
  mutable rto_timer : Engine.Runtime.handle;
  mutable limit : int option; (* total packets to transfer; None = infinite *)
  mutable on_complete : unit -> unit;
  stats : stats;
}

let create rt ~config ~flow ~transmit () =
  {
    rt;
    config;
    flow;
    transmit;
    rto =
      Rto.create ~granularity:config.Tcp_common.granularity
        ~min_rto:config.Tcp_common.min_rto ~mode:config.Tcp_common.rto_mode ();
    running = false;
    cwnd = config.Tcp_common.init_cwnd;
    ssthresh = config.Tcp_common.max_cwnd;
    snd_una = 0;
    snd_nxt = 0;
    high_water = 0;
    recover_point = -1;
    dupacks = 0;
    recovery = None;
    sacked = Int_set.empty;
    rtx = Int_set.empty;
    timing = None;
    rto_timer = Engine.Runtime.null_handle;
    limit = None;
    on_complete = ignore;
    stats =
      {
        packets_sent = 0;
        retransmits = 0;
        timeouts = 0;
        fast_retransmits = 0;
        window_halvings = 0;
      };
  }

let flight t = t.snd_nxt - t.snd_una

let can_send_new t =
  match t.limit with None -> true | Some l -> t.snd_nxt < l
let window t = Float.max 1. (Float.min t.cwnd t.config.max_cwnd)
let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let stats t = t.stats
let srtt t = Rto.srtt t.rto
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let in_recovery t = t.recovery <> None

(* --- retransmission timer ------------------------------------------------ *)

let rec set_rto_timer t =
  Engine.Runtime.cancel t.rto_timer;
  if t.running && flight t > 0 then
    t.rto_timer <- Engine.Runtime.after t.rt (Rto.rto t.rto) (fun () -> on_timeout t)

and on_timeout t =
  if t.running && flight t > 0 then begin
    t.stats.timeouts <- t.stats.timeouts + 1;
    t.recover_point <- t.high_water - 1;
    t.stats.window_halvings <- t.stats.window_halvings + 1;
    t.ssthresh <- Float.max 2. (float_of_int (flight t) *. t.config.md);
    t.cwnd <- 1.;
    t.dupacks <- 0;
    t.recovery <- None;
    t.rtx <- Int_set.empty;
    (* Keep nothing from the scoreboard: be conservative after a timeout. *)
    t.sacked <- Int_set.empty;
    Rto.backoff t.rto;
    (* Karn: nothing outstanding may be sampled after a timeout. *)
    t.timing <- None;
    (* Go-back-N: slow start resends everything from the hole (BSD / ns-2
       behavior); the sink discards duplicates and the cumulative ack
       advances past every hole in one RTT per window. *)
    t.snd_nxt <- t.snd_una;
    send_seq t t.snd_una;
    t.snd_nxt <- t.snd_una + 1;
    set_rto_timer t
  end

(* --- transmission -------------------------------------------------------- *)

and send_seq t seq =
  (* A retransmission is any send below the high-water mark. *)
  let retransmit = seq < t.high_water in
  if not retransmit then t.high_water <- seq + 1;
  let pkt =
    Netsim.Packet.make t.rt ~ecn:t.config.ecn ~flow:t.flow ~seq ~size:t.config.mss
      ~now:(Engine.Runtime.now t.rt) Netsim.Packet.Data
  in
  t.stats.packets_sent <- t.stats.packets_sent + 1;
  if retransmit then begin
    t.stats.retransmits <- t.stats.retransmits + 1;
    (match t.timing with
    | Some (s, _) when s = seq -> t.timing <- None (* Karn *)
    | _ -> ())
  end
  else if t.timing = None then
    t.timing <- Some (seq, Engine.Runtime.now t.rt);
  t.transmit pkt;
  if not (Engine.Runtime.is_pending t.rto_timer) then set_rto_timer t

(* SACK loss inference, RFC 6675 style (simplified): a hole is deemed lost
   once [dupack_thresh] sacked packets lie above it. *)
let sacked_above t seq =
  Int_set.fold (fun s n -> if s > seq then n + 1 else n) t.sacked 0

let deemed_lost t seq = sacked_above t seq >= t.config.dupack_thresh

(* Conservative pipe estimate: packets sent but presumed still in the
   network — not sacked and (not deemed lost or retransmitted since). *)
let pipe t =
  let n = ref 0 in
  for seq = t.snd_una to t.snd_nxt - 1 do
    if Int_set.mem seq t.sacked then ()
    else if deemed_lost t seq then begin
      if Int_set.mem seq t.rtx then incr n
    end
    else incr n
  done;
  !n

(* First hole eligible for SACK retransmission. *)
let next_hole t =
  let rec scan seq =
    if seq >= t.snd_nxt then None
    else if
      (not (Int_set.mem seq t.sacked))
      && (not (Int_set.mem seq t.rtx))
      && deemed_lost t seq
    then Some seq
    else scan (seq + 1)
  in
  scan t.snd_una

let rec sack_output t =
  if t.running && pipe t < int_of_float (window t) then begin
    match next_hole t with
    | Some seq ->
        t.rtx <- Int_set.add seq t.rtx;
        send_seq t seq;
        sack_output t
    | None ->
        if float_of_int (flight t) < window t && can_send_new t then begin
          let seq = t.snd_nxt in
          t.snd_nxt <- t.snd_nxt + 1;
          send_seq t seq;
          sack_output t
        end
  end

let maybe_send t =
  if t.running then
    if t.config.variant = Tcp_common.Sack && t.recovery <> None then sack_output t
    else begin
      while float_of_int (flight t) < window t && t.running && can_send_new t do
        let seq = t.snd_nxt in
        t.snd_nxt <- t.snd_nxt + 1;
        send_seq t seq
      done
    end

(* --- congestion window updates ------------------------------------------- *)

let open_window t =
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1. (* slow start *)
  else t.cwnd <- t.cwnd +. (t.config.ai /. t.cwnd) (* AIMD(a, b): +a/RTT *);
  if t.cwnd > t.config.max_cwnd then t.cwnd <- t.config.max_cwnd

let enter_loss_recovery t =
  t.stats.fast_retransmits <- t.stats.fast_retransmits + 1;
  t.stats.window_halvings <- t.stats.window_halvings + 1;
  t.ssthresh <- Float.max 2. (float_of_int (flight t) *. t.config.md);
  let recover = t.snd_nxt - 1 in
  t.recover_point <- t.high_water - 1;
  (match t.config.variant with
  | Tcp_common.Tahoe ->
      t.cwnd <- 1.;
      t.recovery <- None;
      t.dupacks <- 0;
      (* Tahoe slow-starts from the hole (go-back-N). *)
      t.snd_nxt <- t.snd_una;
      send_seq t t.snd_una;
      t.snd_nxt <- t.snd_una + 1
  | Tcp_common.Reno | Tcp_common.Newreno ->
      t.recovery <- Some { recover };
      t.cwnd <- t.ssthresh +. float_of_int t.config.dupack_thresh;
      send_seq t t.snd_una
  | Tcp_common.Sack ->
      t.recovery <- Some { recover };
      t.cwnd <- t.ssthresh;
      t.rtx <- Int_set.add t.snd_una t.rtx;
      send_seq t t.snd_una;
      sack_output t);
  set_rto_timer t

(* --- ack processing ------------------------------------------------------ *)

let note_sack t blocks =
  List.iter
    (fun (lo, hi) ->
      for seq = lo to hi - 1 do
        if seq >= t.snd_una then t.sacked <- Int_set.add seq t.sacked
      done)
    blocks

let sample_rtt t ~ack =
  match t.timing with
  | Some (seq, sent) when ack > seq ->
      Rto.sample t.rto (Engine.Runtime.now t.rt -. sent);
      Rto.reset_backoff t.rto;
      t.timing <- None
  | _ -> ()

let prune_scoreboard t =
  t.sacked <- Int_set.filter (fun s -> s >= t.snd_una) t.sacked;
  t.rtx <- Int_set.filter (fun s -> s >= t.snd_una) t.rtx

let exit_recovery t =
  t.cwnd <- t.ssthresh;
  t.recovery <- None;
  t.dupacks <- 0;
  t.rtx <- Int_set.empty

let on_new_ack t ~ack =
  let old_una = t.snd_una in
  t.snd_una <- ack;
  if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
  sample_rtt t ~ack;
  (* Any forward progress clears exponential backoff (BSD / ns-2
     behavior); without this a flow whose timed segment was lost can stay
     locked out behind a full DropTail queue for minutes. *)
  Rto.reset_backoff t.rto;
  prune_scoreboard t;
  (match t.recovery with
  | Some { recover } ->
      if ack > recover then exit_recovery t
      else begin
        (* Partial ack. *)
        match t.config.variant with
        | Tcp_common.Reno ->
            (* Classic Reno deflates and leaves recovery on any new ack;
               remaining losses usually cost another halving or a timeout
               (the "reduces the window twice" behavior of Section 3.5.1). *)
            exit_recovery t
        | Tcp_common.Newreno ->
            (* Retransmit the next hole, partial window deflation. *)
            let acked = float_of_int (ack - old_una) in
            t.cwnd <- Float.max t.ssthresh (t.cwnd -. acked +. 1.);
            t.dupacks <- 0;
            send_seq t t.snd_una;
            set_rto_timer t
        | Tcp_common.Sack ->
            t.rtx <- Int_set.remove old_una t.rtx;
            sack_output t;
            set_rto_timer t
        | Tcp_common.Tahoe -> ()
      end
  | None ->
      t.dupacks <- 0;
      open_window t);
  if t.recovery = None then t.dupacks <- 0;
  set_rto_timer t;
  maybe_send t

let on_dupack t =
  t.dupacks <- t.dupacks + 1;
  match t.recovery with
  | Some _ -> (
      match t.config.variant with
      | Tcp_common.Reno | Tcp_common.Newreno ->
          (* Window inflation: each dupack signals a departure. *)
          t.cwnd <- t.cwnd +. 1.;
          maybe_send t
      | Tcp_common.Sack -> sack_output t
      | Tcp_common.Tahoe -> ())
  | None ->
      if
        t.dupacks = t.config.dupack_thresh
        && flight t > 0
        && t.snd_una > t.recover_point
      then enter_loss_recovery t
      else if t.config.variant = Tcp_common.Sack && flight t > 0 then
        (* Limited transmit would go here; keep strict windows instead. *)
        ()

let check_complete t =
  match t.limit with
  | Some l when t.snd_una >= l && t.running ->
      t.running <- false;
      Engine.Runtime.cancel t.rto_timer;
      t.on_complete ()
  | _ -> ()

(* ECE: congestion was signalled without loss — halve once per window
   (RFC 3168 semantics, reusing the fast-retransmit suppression point). *)
let on_ece t =
  if t.snd_una > t.recover_point then begin
    t.stats.window_halvings <- t.stats.window_halvings + 1;
    t.ssthresh <- Float.max 2. (float_of_int (flight t) *. t.config.md);
    t.cwnd <- t.ssthresh;
    t.recover_point <- t.high_water - 1
  end

let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | _ when pkt.corrupted -> () (* checksum failure: ack is discarded *)
  | Tcp_ack { ack; sack; ece } ->
      if t.running then begin
        if ece && t.config.ecn then on_ece t;
        note_sack t sack;
        if ack > t.snd_una then begin
          on_new_ack t ~ack;
          check_complete t
        end
        else if flight t > 0 then on_dupack t
      end
  | Data | Tfrc_data _ | Tfrc_feedback _ -> ()

let recv t = recv t

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         maybe_send t))

let stop t =
  t.running <- false;
  Engine.Runtime.cancel t.rto_timer

let set_limit t n =
  if n <= 0 then invalid_arg "Tcp_sender.set_limit: must be positive";
  t.limit <- Some n

let on_complete t f = t.on_complete <- f
let finished t = match t.limit with Some l -> t.snd_una >= l | None -> false
