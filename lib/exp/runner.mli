(** Executes experiment job grids, sequentially or on a fixed pool of
    worker domains.

    Output is byte-identical at any worker count: every job's RNG is
    derived from [(seed, job key)] ({!Engine.Rng.for_key}), results return
    in job-list order regardless of scheduling, and events a job emits to
    its domain's {!Engine.Trace.default} bus are captured per job and
    replayed on the calling domain's bus in job-list order — exactly the
    order a sequential run emits them. *)

(** [run_jobs ~j ~seed jobs] executes every job and returns
    [(key, result)] pairs in job-list order. [j <= 1] (the default) runs on
    the calling domain, with trace events emitted live; [j > 1] runs on a
    pool of [min j (List.length jobs)] worker domains, capturing and
    replaying trace events only when the calling domain's default bus is
    active. If a job raises, the first exception observed is re-raised
    after the remaining jobs finish. *)
val run_jobs :
  ?j:int -> seed:int -> Job.t list -> (string * Job.result) list

(** [run_experiment ~j ~full ~seed e ppf] builds [e]'s grid, runs it, and
    renders the finished results to [ppf]. *)
val run_experiment :
  ?j:int ->
  full:bool ->
  seed:int ->
  Registry.experiment ->
  Format.formatter ->
  unit
