(** Supervised execution of experiment job grids, sequentially or on a
    fixed pool of worker domains.

    Output is byte-identical at any worker count: every job's RNG is
    derived from [(seed, job key, attempt)] ({!Engine.Rng.for_attempt}),
    results return in job-list order regardless of scheduling, and events a
    job emits to its domain's {!Engine.Trace.default} bus are captured per
    job and replayed on the calling domain's bus in job-list order —
    exactly the order a sequential run emits them. Replay happens before
    any failure is surfaced, so trace observers always see the work that
    was actually done.

    Supervision adds per-cell fault containment on top: cooperative
    budgets (a job exceeding them raises {!Engine.Sim.Budget_exhausted}
    and counts as timed out), bounded retries with deterministically
    re-derived RNG streams, crash isolation (a raising cell becomes a
    reported hole, not a lost batch), and an fsync'd {!Checkpoint} store
    for kill-and-resume. *)

(** Why the runner stopped trying a cell. [attempts] counts tries made
    (1 = no retries granted or needed). [exn_]/[backtrace] are the final
    attempt's exception, preserved for re-raising. *)
type failure = {
  kind : [ `Timed_out | `Failed ];
  detail : string;
  attempts : int;
  exn_ : exn;
  backtrace : Printexc.raw_backtrace;
}

type outcome = Completed of Job.result | Gave_up of failure

type status = [ `Ok | `Timed_out | `Failed | `Resumed ]

type job_stat = { key : string; status : status; attempts : int; wall_s : float }

(** Structured summary of one supervised batch. [retried] counts cells
    that succeeded after at least one failed attempt; [resumed] counts
    cells served from the checkpoint store without running. *)
type report = {
  total : int;
  ok : int;
  resumed : int;
  retried : int;
  timed_out : int;
  failed : int;
  wall_s : float;
  jobs : job_stat list;
}

(** One human-readable line, e.g. ["timed out after 3 attempts: ..."]. *)
val failure_summary : failure -> string

val status_str : status -> string

(** One-line JSON rendering of a report, for machine-readable logs. *)
val report_json : report -> string

(** [run_jobs_supervised ~j ~retries ~budget ~checkpoint ~seed jobs]
    executes every job under supervision and returns outcomes in job-list
    order plus a run report. [j <= 1] (the default) runs on the calling
    domain with trace events emitted live; [j > 1] runs on a pool of
    [min j n] worker domains with capture-and-replay. A cell that raises
    is retried up to [retries] times (default 0), each attempt with the
    RNG from {!Engine.Rng.for_attempt}; [budget] (default none) installs
    a cooperative meter around each attempt unless the job carries its
    own. With [checkpoint], cells found in the store are returned as
    [Completed] without running (status [`Resumed]) and fresh completions
    are recorded as they finish.

    When supervision is active (retries, a budget, or a checkpoint) and
    the calling domain's trace bus has sinks, per-job ["exp"/"job"] events
    and one ["exp"/"report"] event are emitted after the batch. *)
val run_jobs_supervised :
  ?j:int ->
  ?retries:int ->
  ?budget:Job.budget ->
  ?checkpoint:Checkpoint.t ->
  seed:int ->
  Job.t list ->
  (string * outcome) list * report

(** [run_jobs ~j ~seed jobs] executes every job and returns
    [(key, result)] pairs in job-list order — the unsupervised contract.
    Every job still runs to an outcome (crash isolation) and captured
    trace events are replayed first; then, if any job failed, the first
    failure in job-list order is re-raised with its original backtrace. *)
val run_jobs :
  ?j:int -> seed:int -> Job.t list -> (string * Job.result) list

(** [run_experiment ~j ~retries ~budget ~checkpoint ~full ~seed e ppf]
    builds [e]'s grid, runs it supervised, and renders the finished
    results to [ppf]. Cells the runner gave up on are substituted with
    {!Job.missing} placeholders and announced as [MISSING(key): reason]
    lines above the figure; if the render step still raises on the holes,
    the partial output is kept and the abort is reported inline. Returns
    the run report. *)
val run_experiment :
  ?j:int ->
  ?retries:int ->
  ?budget:Job.budget ->
  ?checkpoint:Checkpoint.t ->
  full:bool ->
  seed:int ->
  Registry.experiment ->
  Format.formatter ->
  report
