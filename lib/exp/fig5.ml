let t_rto_rtts = 4.

let analytic ~p_loss ~factor =
  Tfrc.Response_function.fixed_point_event_rate Tfrc.Response_function.Pftk
    ~t_rto_rtts ~p_loss ~rate_factor:factor

(* Monte-Carlo: the flow sends N packets per RTT where N comes from the
   equation evaluated at the measured event rate; we iterate the rate a few
   times to self-consistency, then measure events/packet directly. *)
let monte_carlo rng ~p_loss ~factor ~packets =
  let n = ref 10. in
  for _ = 1 to 30 do
    let p_event =
      Tfrc.Response_function.loss_event_fraction ~p_loss ~n:!n
    in
    let p_event = Float.max 1e-8 (Float.min 1. p_event) in
    let rate =
      factor
      *. Tfrc.Response_function.rate_pkts_per_rtt Tfrc.Response_function.Pftk
           ~t_rto_rtts ~p:p_event
    in
    n := Float.max 1. ((0.5 *. !n) +. (0.5 *. rate))
  done;
  let per_rtt = max 1 (int_of_float (Float.round !n)) in
  let events = ref 0 and sent = ref 0 in
  let in_rtt = ref 0 and event_this_rtt = ref false in
  while !sent < packets do
    incr sent;
    incr in_rtt;
    if Engine.Rng.bool rng ~p:p_loss && not !event_this_rtt then begin
      incr events;
      event_this_rtt := true
    end;
    if !in_rtt >= per_rtt then begin
      in_rtt := 0;
      event_this_rtt := false
    end
  done;
  float_of_int !events /. float_of_int !sent

let grid = [ 0.005; 0.01; 0.02; 0.05; 0.075; 0.1; 0.125; 0.15; 0.2; 0.25 ]

(* One job per loss probability: the analytic curves are pure, so only the
   Monte-Carlo column consumes the cell's keyed RNG stream. *)
let jobs ~full =
  let packets = if full then 2_000_000 else 200_000 in
  List.map
    (fun p_loss ->
      Job.make (Printf.sprintf "fig5/p%.3f" p_loss) (fun rng ->
          [
            ("p_loss", Job.f p_loss);
            ("a1", Job.f (analytic ~p_loss ~factor:1.0));
            ("a2", Job.f (analytic ~p_loss ~factor:2.0));
            ("a05", Job.f (analytic ~p_loss ~factor:0.5));
            ("mc", Job.f (monte_carlo rng ~p_loss ~factor:1.0 ~packets));
          ]))
    grid

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf
    "Figure 5: loss events per packet vs Bernoulli loss probability@.@.";
  let rows =
    List.map
      (fun (_, r) ->
        let p_loss = Job.get_float r "p_loss" in
        [
          Table.f3 p_loss;
          Table.f4 (Job.get_float r "a1");
          Table.f4 (Job.get_float r "a2");
          Table.f4 (Job.get_float r "a05");
          Table.f4 (Job.get_float r "mc");
          Table.f3 p_loss;
        ])
      finished
  in
  Table.print ppf
    ~header:
      [ "p_loss"; "1.0x rate"; "2.0x rate"; "0.5x rate"; "1.0x (MC)"; "y=x" ]
    rows;
  (* Paper claims: the three curves stay close (<= ~10% relative spread at
     moderate loss) and all fall below y=x. *)
  let max_gap =
    List.fold_left
      (fun acc (_, r) ->
        let a2 = Job.get_float r "a2" in
        let a05 = Job.get_float r "a05" in
        let hi = Float.max a2 a05 and lo = Float.min a2 a05 in
        Float.max acc ((hi -. lo) /. hi))
      0. finished
  in
  Format.fprintf ppf
    "@.max relative spread between 2.0x and 0.5x curves: %.1f%% (paper: \
     differences at most ~10%%-ish for these flows)@."
    (100. *. max_gap)
