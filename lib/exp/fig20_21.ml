let rtt = 0.1

let rtts_to_halve ~p0 =
  (* Full Equation (1): its nonlinearity in p above ~5%% is what makes the
     response strong at high pre-existing loss rates (Appendix A.2). *)
  let config =
    Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Pftk
      ~delay_gain:false ~initial_rtt:rtt ~ndupack:1 ()
  in
  let count = ref 0 in
  let path_time = ref (fun () -> 0.) in
  let period = max 2 (int_of_float (1. /. p0)) in
  let drop _pkt =
    incr count;
    let now = !path_time () in
    if now < 10. then !count mod period = 0 else !count mod 2 = 0
  in
  let path = Direct_path.create ~config ~rtt ~drop () in
  (path_time := fun () -> Engine.Sim.now path.sim);
  let samples = ref [] in
  Tfrc.Tfrc_sender.on_rate_update path.sender (fun time ~rate ~rtt:_ ~p:_ ->
      samples := (time, rate) :: !samples);
  Direct_path.run path ~until:14.;
  let samples = List.rev !samples in
  (* Rate just before the onset of persistent congestion. *)
  let before =
    List.fold_left (fun acc (t, r) -> if t < 10. then r else acc) 0. samples
  in
  let halved_at =
    List.find_opt (fun (t, r) -> t >= 10. && r <= before /. 2.) samples
  in
  let n_rtts =
    match halved_at with
    | Some (t, _) -> int_of_float (ceil ((t -. 10.) /. rtt))
    | None -> max_int
  in
  (n_rtts, samples)

let p0s ~full =
  if full then [ 0.005; 0.01; 0.02; 0.04; 0.08; 0.12; 0.16; 0.20; 0.25 ]
  else [ 0.005; 0.01; 0.04; 0.10; 0.25 ]

let key p0 = Printf.sprintf "fig20_21/p%.3f" p0

(* One deterministic job per initial drop rate; only the p0=0.01 cell keeps
   its sample series, which Figure 20 displays. *)
let jobs ~full =
  List.map
    (fun p0 ->
      Job.make (key p0) (fun _rng ->
          let n, samples = rtts_to_halve ~p0 in
          let base = [ ("n_rtts", Job.i n) ] in
          if p0 = 0.01 then base @ [ ("samples", Job.pairs samples) ] else base))
    (p0s ~full)

let render ~full ~seed:_ finished ppf =
  Format.fprintf ppf
    "Figure 20: allowed sending rate with persistent congestion starting \
     at t=10 (p0 = 0.01, then every 2nd packet dropped)@.@.";
  let r01 = Job.lookup finished (key 0.01) in
  let n = Job.get_int r01 "n_rtts" in
  let samples = Job.get_pairs r01 "samples" in
  Dataset.write_xy ~name:"fig20" ~x:"time" ~y:"rate_bytes_s" samples;
  let display =
    List.filter (fun (t, _) -> t >= 8. && t <= 12.5) samples
    |> List.filteri (fun i _ -> i mod 3 = 0)
    |> List.map (fun (t, r) -> (t, r /. 1e3))
  in
  Table.series ppf ~label:"allowed rate (KB/s)" display;
  Format.fprintf ppf "@.";
  Plot.series ppf ~title:"allowed rate (KB/s) around t=10" ~ylabel:"t, s"
    (List.filter_map
       (fun (t, r) -> if t >= 8. then Some (t, r /. 1e3) else None)
       samples);
  Format.fprintf ppf
    "@.RTTs of persistent congestion to halve the rate at p0=0.01: %d \
     (paper: 5)@.@." n;
  Format.fprintf ppf
    "Figure 21: round-trip times to halve the sending rate vs initial drop \
     rate@.@.";
  let results =
    List.map
      (fun p0 -> (p0, Job.get_int (Job.lookup finished (key p0)) "n_rtts"))
      (p0s ~full)
  in
  Table.print ppf
    ~header:[ "initial drop rate"; "RTTs to halve" ]
    (List.map
       (fun (p0, n) ->
         [
           Table.f3 p0;
           (if n = max_int then "never" else string_of_int n);
         ])
       results);
  let lo = List.fold_left (fun a (_, n) -> min a n) max_int results in
  let hi =
    List.fold_left
      (fun a (_, n) -> if n = max_int then a else max a n)
      0 results
  in
  Format.fprintf ppf
    "@.range: %d-%d RTTs (paper: three to eight; never fewer than five at \
     low drop rates)@."
    lo hi
