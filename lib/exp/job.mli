(** One cell of an experiment grid.

    A job pairs a stable key (e.g. ["fig6/red/16/8"]) with a pure function
    from an RNG to a serializable {!result}. Jobs never touch a formatter:
    rendering happens after all cells finish, so the runner is free to
    execute them out of order or on worker domains. The RNG a job receives
    is derived from [(experiment seed, key)] (see {!Engine.Rng.for_key}),
    making each cell's stream independent of scheduling. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list

(** A serializable record of what one cell measured. *)
type result = (string * value) list

(** A per-cell execution budget, enforced cooperatively by [Engine.Sim.run]
    when the supervised runner installs it around the job: [max_events]
    meters executed simulator events across the whole cell, [max_time]
    caps each run's virtual clock (seconds). A job's own budget overrides
    the runner-wide default. *)
type budget = { max_events : int option; max_time : float option }

type t = {
  key : string;
  run : Engine.Rng.t -> result;
  budget : budget option;  (** default budget for this cell; [None] = the runner's *)
}

val make : ?budget:budget -> string -> (Engine.Rng.t -> result) -> t

(** [derive_seed rng] draws an integer seed for sub-components that take
    [seed : int] (e.g. {!Scenario.run_mixed}), keeping the value a pure
    function of [(experiment seed, job key)]. *)
val derive_seed : Engine.Rng.t -> int

(** {2 Value constructors} *)

val b : bool -> value
val i : int -> value
val f : float -> value
val s : string -> value
val floats : float list -> value
val pairs : (float * float) list -> value

(** [rows ll] encodes a numeric table, one inner list per row. *)
val rows : float list list -> value

val strs : string list -> value

(** {2 Missing-cell placeholders}

    When the supervised runner gives up on a cell (timed out or crashed
    after retries) it substitutes [missing ~reason] for the result and
    prints an explicit [MISSING(key: reason)] line; the typed accessors
    below return inert hole values on such placeholders (nan / 0 / [""] /
    [[]]) so renderers lay out the surviving cells instead of raising. *)

val missing : reason:string -> result

(** [missing_reason r] is [Some reason] iff [r] is a placeholder. *)
val missing_reason : result -> string option

val is_missing : result -> bool

(** {2 Accessors}

    All raise [Failure] naming the field when it is absent or has the wrong
    shape — a mismatch is a bug in the experiment's job/render pairing.
    [get_float] and the list accessors also accept [Int] elements. On a
    {!missing} placeholder the typed accessors return hole values instead
    of raising (see above). *)

val get : result -> string -> value
val get_float : result -> string -> float
val get_int : result -> string -> int
val get_str : result -> string -> string
val get_bool : result -> string -> bool
val get_floats : result -> string -> float list
val get_pairs : result -> string -> (float * float) list
val get_rows : result -> string -> float list list
val get_strs : result -> string -> string list

(** [lookup finished key] finds one job's result in a finished-run list
    (as handed to a render step). Raises [Failure] on unknown keys. *)
val lookup : (string * result) list -> string -> result

(** One-line JSON rendering of a result, e.g. for machine-readable logs. *)
val to_json : result -> string

(** JSON string-content escaping (backslash, quote, control characters);
    shared by the checkpoint store and the runner's report writer. *)
val json_escape : string -> string
