type profile = {
  name : string;
  bandwidth : float;
  rtt : float;
  queue_pkts : int;
  bg_load : float;
  tcp_config : Tcpsim.Tcp_common.config;
}

(* One profile per paper path. Rates/RTTs chosen to match the described
   links: UCL->ACIRI transcontinental (~3 Mb/s share, 150 ms), Mannheim
   (T1-ish), UMass Linux vs Solaris (same path, different TCP), Nokia
   Boston (loaded T1).

   Known deviation (see EXPERIMENTS.md): on these synthetic two-flow
   DropTail paths TFRC earns roughly half of TCP's rate, putting the
   equivalence ratio near 0.4-0.5 instead of the paper's 0.6-0.8 from live
   paths. A smoothly paced flow samples a DropTail queue's overflow
   episodes every round-trip, while bursty TCP skips some between bursts;
   on real Internet paths richer cross traffic decorrelates the overflow
   process. The relative claims (TFRC smoother everywhere; the
   aggressive-RTO "Solaris" TCP hurting itself) still reproduce. *)
let profiles =
  [
    {
      name = "UCL";
      bandwidth = Engine.Units.mbps 3.;
      rtt = 0.15;
      queue_pkts = 40;
      bg_load = 0.15;
      tcp_config = Tcpsim.Tcp_common.freebsd_coarse;
    };
    {
      name = "Mannheim";
      bandwidth = Engine.Units.mbps 2.;
      rtt = 0.06;
      queue_pkts = 30;
      bg_load = 0.1;
      tcp_config = Tcpsim.Tcp_common.ns_sack;
    };
    {
      name = "UMASS (Linux)";
      bandwidth = Engine.Units.mbps 4.;
      rtt = 0.09;
      queue_pkts = 50;
      bg_load = 0.1;
      tcp_config = Tcpsim.Tcp_common.default ~variant:Tcpsim.Tcp_common.Sack ();
    };
    {
      name = "UMASS (Solaris)";
      bandwidth = Engine.Units.mbps 4.;
      rtt = 0.09;
      queue_pkts = 50;
      bg_load = 0.1;
      tcp_config = Tcpsim.Tcp_common.solaris_aggressive;
    };
    {
      name = "Nokia, Boston";
      bandwidth = Engine.Units.mbps 1.5;
      rtt = 0.07;
      queue_pkts = 20;
      bg_load = 0.3;
      tcp_config = Tcpsim.Tcp_common.freebsd_coarse;
    };
  ]

type path_result = {
  profile_name : string;
  timescales : float list;
  equivalence : float list;
  cov_tfrc : float list;
  cov_tcp : float list;
  tcp_rate : float;
  tfrc_rate : float;
  loss_rate : float;
}

let timescales = [ 0.5; 1.; 2.; 5.; 10.; 20.; 50. ]

let build_path p ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:p.bandwidth ~delay:(p.rtt /. 4.)
      ~queue:(Netsim.Dumbbell.Droptail_q p.queue_pkts) ()
  in
  (* Background web-like traffic sized to the profile's load. *)
  if p.bg_load > 0. then begin
    let web =
      Traffic.Web_mix.create db (Engine.Rng.split rng) ~first_flow_id:5000
        ~arrival_rate:(p.bg_load *. p.bandwidth /. 8. /. 1000. /. 20.)
        ~mean_size:20. ~rtt_base:p.rtt ()
    in
    Traffic.Web_mix.start web ~at:0.
  end;
  (sim, rng, db)

let measure_path p ~duration ~seed =
  let sim, rng, db = build_path p ~seed in
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(p.rtt *. (0.95 +. Engine.Rng.float rng 0.1))
      ~config:p.tcp_config
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:(Engine.Rng.float rng 1.);
  let tfrc =
    Scenario.attach_tfrc db ~flow:2
      ~rtt_base:(p.rtt *. (0.95 +. Engine.Rng.float rng 0.1))
      ~config:(Tfrc.Tfrc_config.default ())
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:(Engine.Rng.float rng 1.);
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 5. and t1 = duration in
  let eq tau =
    Option.value ~default:0.
      (Stats.Metrics.equivalence_ratio
         (Netsim.Flowmon.series tfrc.tfrc_send_mon)
         (Netsim.Flowmon.series tcp.tcp_send_mon)
         ~t0 ~t1 ~tau)
  in
  let cov mon tau =
    Stats.Metrics.cov_at_timescale (Netsim.Flowmon.series mon) ~t0 ~t1 ~tau
  in
  {
    profile_name = p.name;
    timescales;
    equivalence = List.map eq timescales;
    cov_tfrc = List.map (cov tfrc.tfrc_send_mon) timescales;
    cov_tcp = List.map (cov tcp.tcp_send_mon) timescales;
    tcp_rate = Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1;
    tfrc_rate = Netsim.Flowmon.mean_rate tfrc.tfrc_recv_mon ~t0 ~t1;
    loss_rate = Netsim.Dumbbell.forward_drop_rate db;
  }

(* Figure 15's headline run: 3 TCP + 1 TFRC on the UCL profile, 1 s
   throughput bins, returned as data for the render step. *)
let fig15_job ~duration rng =
  let p = List.hd profiles in
  let seed = Job.derive_seed rng in
  let sim, rng, db = build_path p ~seed in
  let tcps =
    List.init 3 (fun i ->
        let h =
          Scenario.attach_tcp db ~flow:(i + 1)
            ~rtt_base:(p.rtt *. (0.95 +. Engine.Rng.float rng 0.1))
            ~config:p.tcp_config
        in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 1.);
        h)
  in
  let tfrc =
    Scenario.attach_tfrc db ~flow:10
      ~rtt_base:(p.rtt *. (0.95 +. Engine.Rng.float rng 0.1))
      ~config:(Tfrc.Tfrc_config.default ())
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:(Engine.Rng.float rng 1.);
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 4. and t1 = duration in
  let kb_bins series =
    Stats.Time_series.rates series ~t0 ~t1 ~bin:1.0
    |> Array.map (fun v -> v /. 1e3)
    |> Array.to_list
  in
  let sd_of series =
    let b = Stats.Time_series.rates series ~t0 ~t1 ~bin:1.0 in
    Stats.Running.cov (Stats.Running.of_array b)
  in
  [
    ( "tcp_bins",
      Job.rows
        (List.map
           (fun h -> kb_bins (Netsim.Flowmon.series h.Scenario.tcp_send_mon))
           tcps) );
    ("tfrc_bins", Job.floats (kb_bins (Netsim.Flowmon.series tfrc.tfrc_send_mon)));
    ("tfrc_cov", Job.f (sd_of (Netsim.Flowmon.series tfrc.tfrc_send_mon)));
    ( "tcp_cov",
      Job.f
        (Scenario.mean
           (List.map
              (fun h -> sd_of (Netsim.Flowmon.series h.Scenario.tcp_send_mon))
              tcps)) );
  ]

let path_key p = Printf.sprintf "fig15_17/path/%s" p.name

let jobs ~full =
  let duration = if full then 400. else 120. in
  Job.make "fig15_17/fig15" (fig15_job ~duration)
  :: List.map
       (fun p ->
         Job.make (path_key p) (fun rng ->
             let r = measure_path p ~duration ~seed:(Job.derive_seed rng) in
             [
               ("equivalence", Job.floats r.equivalence);
               ("cov_tfrc", Job.floats r.cov_tfrc);
               ("cov_tcp", Job.floats r.cov_tcp);
               ("tcp_rate", Job.f r.tcp_rate);
               ("tfrc_rate", Job.f r.tfrc_rate);
               ("loss_rate", Job.f r.loss_rate);
             ]))
       profiles

let render_fig15 finished ppf =
  let r = Job.lookup finished "fig15_17/fig15" in
  let p = List.hd profiles in
  Format.fprintf ppf
    "Figure 15: 3 TCP + 1 TFRC on the '%s' profile (1 s bins, KB/s)@.@."
    p.name;
  let show label bins =
    let b = Array.of_list bins in
    let r = Stats.Running.of_array b in
    Format.fprintf ppf "%-6s mean %6.1f KB/s sd %5.1f  %s@." label
      (Stats.Running.mean r) (Stats.Running.stddev r)
      (Table.sparkline (Array.sub b 0 (min 90 (Array.length b))))
  in
  List.iteri
    (fun i bins -> show (Printf.sprintf "TCP%d" (i + 1)) bins)
    (Job.get_rows r "tcp_bins");
  show "TFRC" (Job.get_floats r "tfrc_bins");
  Format.fprintf ppf
    "@.TFRC CoV %.2f vs mean TCP CoV %.2f at 1 s (paper: TFRC smooth, \
     slightly below TCP's average rate)@.@."
    (Job.get_float r "tfrc_cov")
    (Job.get_float r "tcp_cov")

let render ~full:_ ~seed:_ finished ppf =
  render_fig15 finished ppf;
  let results =
    List.map
      (fun p ->
        let r = Job.lookup finished (path_key p) in
        {
          profile_name = p.name;
          timescales;
          equivalence = Job.get_floats r "equivalence";
          cov_tfrc = Job.get_floats r "cov_tfrc";
          cov_tcp = Job.get_floats r "cov_tcp";
          tcp_rate = Job.get_float r "tcp_rate";
          tfrc_rate = Job.get_float r "tfrc_rate";
          loss_rate = Job.get_float r "loss_rate";
        })
      profiles
  in
  Format.fprintf ppf "Figure 16: equivalence ratio vs timescale per path@.@.";
  Table.print ppf
    ~header:
      ("path \\ tau" :: List.map (fun t -> Printf.sprintf "%.1f" t) timescales)
    (List.map
       (fun r -> r.profile_name :: List.map Table.f2 r.equivalence)
       results);
  Format.fprintf ppf "@.Figure 17: CoV vs timescale (TFRC | TCP)@.@.";
  Table.print ppf
    ~header:
      ("path \\ tau" :: List.map (fun t -> Printf.sprintf "%.1f" t) timescales)
    (List.map
       (fun r -> (r.profile_name ^ " TFRC") :: List.map Table.f2 r.cov_tfrc)
       results
    @ List.map
        (fun r -> (r.profile_name ^ " TCP") :: List.map Table.f2 r.cov_tcp)
        results);
  Format.fprintf ppf "@.Per-path rates and loss:@.@.";
  Table.print ppf
    ~header:[ "path"; "TCP KB/s"; "TFRC KB/s"; "loss %" ]
    (List.map
       (fun r ->
         [
           r.profile_name;
           Table.f2 (r.tcp_rate /. 1e3);
           Table.f2 (r.tfrc_rate /. 1e3);
           Table.f2 (100. *. r.loss_rate);
         ])
       results);
  let solaris = List.find (fun r -> r.profile_name = "UMASS (Solaris)") results in
  let linux = List.find (fun r -> r.profile_name = "UMASS (Linux)") results in
  Format.fprintf ppf
    "@.Solaris anomaly: equivalence at 10 s %.2f (Linux %.2f) — the \
     aggressive-RTO TCP hurts itself, as the paper observed: %s@."
    (List.nth solaris.equivalence 4)
    (List.nth linux.equivalence 4)
    (if List.nth solaris.equivalence 4 < List.nth linux.equivalence 4 then
       "reproduced"
     else "NOT reproduced")
