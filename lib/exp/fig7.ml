let counts ~full = if full then [ 4; 8; 16; 32; 64; 128 ] else [ 4; 16; 32 ]
let key total = Printf.sprintf "fig7/%d" total

(* One simulation per flow-count row. *)
let jobs ~full =
  let duration = if full then 90. else 40. in
  let bandwidth = Engine.Units.mbps 15. in
  List.map
    (fun total ->
      Job.make (key total) (fun rng ->
          let n = total / 2 in
          let params =
            {
              (Scenario.default_mixed ()) with
              bandwidth;
              queue = Scenario.scaled_queue `Red ~bandwidth;
              n_tcp = n;
              n_tfrc = n;
              duration;
              warmup = duration /. 3.;
              seed = Job.derive_seed rng;
            }
          in
          let r = Scenario.run_mixed params in
          let tcp, tfrc = Scenario.normalized_throughputs r in
          [ ("tcp", Job.floats tcp); ("tfrc", Job.floats tfrc) ]))
    (counts ~full)

let render ~full ~seed:_ finished ppf =
  Format.fprintf ppf
    "Figure 7: per-flow normalized throughput, 15 Mb/s RED (each row one \
     simulation)@.@.";
  let rows =
    List.map
      (fun total ->
        let r = Job.lookup finished (key total) in
        let tcp = Job.get_floats r "tcp" in
        let tfrc = Job.get_floats r "tfrc" in
        let spread l =
          let arr = Array.of_list l in
          let s = Stats.Running.of_array arr in
          (Stats.Running.mean s, Stats.Running.stddev s)
        in
        let tm, ts = spread tcp and fm, fs = spread tfrc in
        [
          string_of_int total;
          Table.f2 tm;
          Table.f2 ts;
          Table.f2 fm;
          Table.f2 fs;
          Table.f2 (Stats.Quantile.quantile (Array.of_list tcp) 0.05);
          Table.f2 (Stats.Quantile.quantile (Array.of_list tcp) 0.95);
          Table.f2 (Stats.Quantile.quantile (Array.of_list tfrc) 0.05);
          Table.f2 (Stats.Quantile.quantile (Array.of_list tfrc) 0.95);
        ])
      (counts ~full)
  in
  Table.print ppf
    ~header:
      [
        "flows";
        "TCP mean";
        "TCP sd";
        "TFRC mean";
        "TFRC sd";
        "TCP p5";
        "TCP p95";
        "TFRC p5";
        "TFRC p95";
      ]
    rows;
  Format.fprintf ppf
    "@.(paper: means comparable; TCP flows show the larger per-flow \
     variance, growing as bandwidth per flow shrinks)@."
