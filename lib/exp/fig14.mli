(** Figure 14: queue dynamics at the congested link. 40 long-lived flows
    (all TCP in one run, all TFRC in the other) with start times spread
    over the first 20 s, 15 Mb/s DropTail bottleneck, ~20% of the link used
    by short-lived web-like background TCP traffic, plus light reverse-path
    traffic. Compares queue occupancy, utilization and drop rate: TFRC
    should not degrade queue dynamics relative to TCP (paper: 99%
    utilization both; drops 4.9% TCP vs 3.5% TFRC). *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

type result = {
  label : string;
  utilization : float;
  drop_rate : float;
  queue_mean : float;
  queue_sd : float;
  queue_series : float array;  (** sampled occupancy, packets *)
}

val one : proto:[ `Tcp | `Tfrc ] -> duration:float -> seed:int -> result
