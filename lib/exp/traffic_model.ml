(* Exponential ON/OFF control source, locally defined: same mean ON/OFF as
   the Pareto sources but light-tailed, so the aggregate is Poisson-like. *)
let exp_on_off sim rng ~flow ~on_rate ~pkt_size ~mean_on ~mean_off ~transmit =
  let interval = 8. *. float_of_int pkt_size /. on_rate in
  let seq = ref 0 in
  let rec on_phase until =
    if Engine.Sim.now sim >= until then off_phase ()
    else begin
      let pkt =
        Netsim.Packet.make (Engine.Sim.runtime sim) ~flow ~seq:!seq ~size:pkt_size
          ~now:(Engine.Sim.now sim) Netsim.Packet.Data
      in
      incr seq;
      transmit pkt;
      ignore (Engine.Sim.after sim interval (fun () -> on_phase until))
    end
  and off_phase () =
    let d = Engine.Rng.exponential rng ~mean:mean_off in
    ignore (Engine.Sim.after sim d (fun () -> start_on ()))
  and start_on () =
    let d = Engine.Rng.exponential rng ~mean:mean_on in
    on_phase (Engine.Sim.now sim +. d)
  in
  start_on ()

let hurst_of_aggregate ~sources ~shape ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let ts = Stats.Time_series.create () in
  let transmit (p : Netsim.Packet.t) =
    Stats.Time_series.add ts ~time:(Engine.Sim.now sim)
      ~value:(float_of_int p.size)
  in
  for flow = 1 to sources do
    let source_rng = Engine.Rng.split rng in
    if shape > 0. then begin
      let src =
        Traffic.On_off.create (Engine.Sim.runtime sim) source_rng ~flow
          ~on_rate:(Engine.Units.kbps 100.) ~pkt_size:500 ~mean_on:1.
          ~mean_off:2. ~shape ~transmit ()
      in
      Traffic.On_off.start src ~at:(Engine.Rng.float rng 3.)
    end
    else
      ignore
        (Engine.Sim.after sim
           (Engine.Rng.float rng 3.)
           (fun () ->
             exp_on_off sim source_rng ~flow ~on_rate:(Engine.Units.kbps 100.)
               ~pkt_size:500 ~mean_on:1. ~mean_off:2. ~transmit))
  done;
  Engine.Sim.run sim ~until:duration;
  let counts =
    Stats.Time_series.binned ts ~t0:10. ~t1:(duration -. 10.) ~bin:0.1
  in
  (* fit beyond the ~3 s ON/OFF cycle: 64 * 0.1 s bins *)
  Stats.Selfsim.hurst_variance_time ~min_m:64 counts

let cases =
  [ ("exponential (control)", 0.); ("Pareto 1.2", 1.2); ("Pareto 1.5", 1.5);
    ("Pareto 1.9", 1.9) ]

let key shape = Printf.sprintf "traffic_model/shape%.1f" shape

let jobs ~full =
  let duration = if full then 6420. else 1620. in
  let sources = 30 in
  List.map
    (fun (_, shape) ->
      Job.make (key shape) (fun rng ->
          let seed = Job.derive_seed rng in
          [ ("h", Job.f (hurst_of_aggregate ~sources ~shape ~duration ~seed)) ]))
    cases

let render ~full ~seed:_ finished ppf =
  let duration = if full then 6420. else 1620. in
  let sources = 30 in
  Format.fprintf ppf
    "Background traffic model: Hurst parameter of %d aggregated ON/OFF \
     sources (variance-time estimate, %.0f s)@.@."
    sources duration;
  let h_of shape = Job.get_float (Job.lookup finished (key shape)) "h" in
  let rows =
    List.map
      (fun (label, shape) ->
        let theory =
          if shape > 1. && shape < 2. then Table.f2 ((3. -. shape) /. 2.)
          else "~0.50"
        in
        [ label; Table.f2 (h_of shape); theory ])
      cases
  in
  Table.print ppf ~header:[ "source model"; "H (estimated)"; "H (theory)" ] rows;
  let h_heavy = h_of 1.2 in
  let h_light = h_of 0. in
  Format.fprintf ppf
    "@.(heavy-tailed sources self-similar (H %.2f), exponential control \
     Poisson-like (H %.2f) — the [WTSW95] effect the paper's Section 4.1.3 \
     background relies on: %s)@."
    h_heavy h_light
    (if h_heavy > h_light +. 0.1 then "reproduced" else "NOT reproduced")
