(** Resilience ("chaos") scenario family: TFRC and TCP-Sack driven through
    link outages, flapping, reordering, feedback blackouts and route
    changes, with recovery metrics.

    The paper's robustness claims are about regime boundaries, not steady
    state: the no-feedback timer must keep the sender safe when the
    feedback path fails, and the rate must recover smoothly — not jump —
    when the path returns. Each case here scripts one such boundary with
    {!Netsim.Faults} and reports, per protocol:

    - [pre_rate]: mean goodput in the window before the fault, bytes/s;
    - [min_send_during]: the lowest sending rate observed while the fault
      is active (for TFRC this must respect the configured rate floor);
    - [floor_ok]: whether the TFRC pacing rate ever went below
      [min_rate] (always true for TCP, which has no rate floor);
    - [nofb_expiries]: TFRC no-feedback timer expirations over the run;
    - [recovery_time]: seconds after the fault clears until goodput first
      returns to 70% of [pre_rate] (NaN when it never does);
    - [overshoot]: the highest post-fault send-rate bin relative to
      [pre_rate] — slow restart should keep this near 1. *)

type report = {
  case : string;
  proto : string;
  pre_rate : float;
  min_send_during : float;
  floor_ok : bool;
  nofb_expiries : int;
  recovery_time : float;
  overshoot : float;
  post_rate : float;  (** mean goodput in the tail window, bytes/s *)
}

(** The scaled-down fault matrix (both protocols), for tests and the
    benchmark harness. Runs with an invariant audit (see
    {!audited_matrix}); the checker result is discarded here. *)
val matrix : seed:int -> full:bool -> report list

(** Like {!matrix}, but also returns the {!Tfrc.Invariants} checker that
    was subscribed to the default trace bus for the whole matrix: callers
    can assert [Tfrc.Invariants.ok checker] to turn RFC 3448 conformance
    under faults into a hard pass/fail signal. *)
val audited_matrix : seed:int -> full:bool -> report list * Tfrc.Invariants.t

(** One scripted TFRC outage run, the acceptance scenario: a mid-flow
    outage of [duration] seconds starting at [at]. Returns the report plus
    the sampled sender pacing-rate series (time, bytes/s) for timeline
    inspection. *)
val tfrc_outage_case :
  seed:int ->
  at:float ->
  duration:float ->
  unit ->
  report * (float * float) array

(** Registry job grid: one job per (case, protocol) cell, each running with
    its own {!Tfrc.Invariants} checker on the running domain's default
    trace bus. *)
val jobs : full:bool -> Job.t list

(** Lays the finished cells out as the resilience matrix, including the
    summed per-cell invariant audit. *)
val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** The scaled matrix as one line of JSON, for machine consumption from the
    benchmark harness. *)
val json_line : seed:int -> string
