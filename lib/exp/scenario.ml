type tcp_handle = {
  tcp_sender : Tcpsim.Tcp_sender.t;
  tcp_sink : Tcpsim.Tcp_sink.t;
  tcp_send_mon : Netsim.Flowmon.t;
  tcp_recv_mon : Netsim.Flowmon.t;
}

type tfrc_handle = {
  tfrc_sender : Tfrc.Tfrc_sender.t;
  tfrc_receiver : Tfrc.Tfrc_receiver.t;
  tfrc_send_mon : Netsim.Flowmon.t;
  tfrc_recv_mon : Netsim.Flowmon.t;
}

let attach_tcp db ~flow ~rtt_base ~config =
  let rt = Netsim.Dumbbell.runtime db in
  let now () = Engine.Runtime.now rt in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base;
  let send_mon = Netsim.Flowmon.create now in
  let recv_mon = Netsim.Flowmon.create now in
  let tcp_sink =
    Tcpsim.Tcp_sink.create rt ~config ~flow
      ~transmit:(Netsim.Dumbbell.dst_sender db ~flow) ()
  in
  Netsim.Dumbbell.set_dst_recv db ~flow
    (Netsim.Flowmon.wrap recv_mon (Tcpsim.Tcp_sink.recv tcp_sink));
  let tcp_sender =
    Tcpsim.Tcp_sender.create rt ~config ~flow
      ~transmit:
        (Netsim.Flowmon.wrap send_mon (Netsim.Dumbbell.src_sender db ~flow))
      ()
  in
  Netsim.Dumbbell.set_src_recv db ~flow (Tcpsim.Tcp_sender.recv tcp_sender);
  { tcp_sender; tcp_sink; tcp_send_mon = send_mon; tcp_recv_mon = recv_mon }

let attach_tfrc db ~flow ~rtt_base ~config =
  let rt = Netsim.Dumbbell.runtime db in
  let now () = Engine.Runtime.now rt in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base;
  let send_mon = Netsim.Flowmon.create now in
  let recv_mon = Netsim.Flowmon.create now in
  let tfrc_receiver =
    Tfrc.Tfrc_receiver.create rt ~config ~flow
      ~transmit:(Netsim.Dumbbell.dst_sender db ~flow) ()
  in
  Netsim.Dumbbell.set_dst_recv db ~flow
    (Netsim.Flowmon.wrap recv_mon (Tfrc.Tfrc_receiver.recv tfrc_receiver));
  let tfrc_sender =
    Tfrc.Tfrc_sender.create rt ~config ~flow
      ~transmit:
        (Netsim.Flowmon.wrap send_mon (Netsim.Dumbbell.src_sender db ~flow))
      ()
  in
  Netsim.Dumbbell.set_src_recv db ~flow (Tfrc.Tfrc_sender.recv tfrc_sender);
  { tfrc_sender; tfrc_receiver; tfrc_send_mon = send_mon; tfrc_recv_mon = recv_mon }

let scaled_queue kind ~bandwidth =
  (* ~100 packets at 15 Mb/s, linear in bandwidth, never below 10. *)
  let buffer = max 10 (int_of_float (bandwidth /. 1e6 *. 6.67)) in
  match kind with
  | `Droptail -> Netsim.Dumbbell.Droptail_q buffer
  | `Red ->
      let b = float_of_int buffer in
      Netsim.Dumbbell.Red_q
        (Netsim.Red.params ~min_th:(Float.max 5. (b /. 10.))
           ~max_th:(Float.max 15. (b /. 2.)) ~limit_pkts:buffer ())

type mixed_params = {
  bandwidth : float;
  delay : float;
  queue : Netsim.Dumbbell.queue_spec;
  n_tcp : int;
  n_tfrc : int;
  rtt_min : float;
  rtt_max : float;
  start_spread : float;
  duration : float;
  warmup : float;
  seed : int;
  tcp_config : Tcpsim.Tcp_common.config;
  tfrc_config : Tfrc.Tfrc_config.t;
}

let default_mixed () =
  {
    bandwidth = Engine.Units.mbps 15.;
    delay = 0.025;
    queue = scaled_queue `Red ~bandwidth:(Engine.Units.mbps 15.);
    n_tcp = 16;
    n_tfrc = 16;
    rtt_min = 0.08;
    rtt_max = 0.12;
    start_spread = 10.;
    duration = 150.;
    warmup = 50.;
    seed = 42;
    tcp_config = Tcpsim.Tcp_common.ns_sack;
    tfrc_config = Tfrc.Tfrc_config.default ();
  }

type flow_stats = {
  flow_id : int;
  mean_recv_rate : float;
  recv_series : Stats.Time_series.t;
  send_series : Stats.Time_series.t;
}

type mixed_result = {
  tcp_flows : flow_stats list;
  tfrc_flows : flow_stats list;
  utilization : float;
  drop_rate : float;
  fair_share : float;
  t0 : float;
  t1 : float;
  drop_times : float list;
}

let run_mixed p =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed:p.seed in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:p.bandwidth ~delay:p.delay
      ~queue:p.queue ()
  in
  let drop_times = ref [] in
  Netsim.Dumbbell.on_forward_drop db (fun _ ->
      drop_times := Engine.Sim.now sim :: !drop_times);
  let draw_rtt () = Engine.Rng.uniform rng p.rtt_min p.rtt_max in
  let draw_start () = Engine.Rng.float rng (Float.max 1e-3 p.start_spread) in
  let tcp_handles =
    List.init p.n_tcp (fun i ->
        let flow = i + 1 in
        let h = attach_tcp db ~flow ~rtt_base:(draw_rtt ()) ~config:p.tcp_config in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at:(draw_start ());
        (flow, h))
  in
  let tfrc_handles =
    List.init p.n_tfrc (fun i ->
        let flow = 1000 + i + 1 in
        let h =
          attach_tfrc db ~flow ~rtt_base:(draw_rtt ()) ~config:p.tfrc_config
        in
        Tfrc.Tfrc_sender.start h.tfrc_sender ~at:(draw_start ());
        (flow, h))
  in
  Engine.Sim.run sim ~until:p.duration;
  let t0 = p.warmup and t1 = p.duration in
  let span = t1 -. t0 in
  let fair_share =
    Engine.Units.bps_to_byte_rate p.bandwidth
    /. float_of_int (max 1 (p.n_tcp + p.n_tfrc))
  in
  let tcp_flows =
    List.map
      (fun (flow_id, h) ->
        {
          flow_id;
          mean_recv_rate = Netsim.Flowmon.mean_rate h.tcp_recv_mon ~t0 ~t1;
          recv_series = Netsim.Flowmon.series h.tcp_recv_mon;
          send_series = Netsim.Flowmon.series h.tcp_send_mon;
        })
      tcp_handles
  in
  let tfrc_flows =
    List.map
      (fun (flow_id, h) ->
        {
          flow_id;
          mean_recv_rate = Netsim.Flowmon.mean_rate h.tfrc_recv_mon ~t0 ~t1;
          recv_series = Netsim.Flowmon.series h.tfrc_recv_mon;
          send_series = Netsim.Flowmon.series h.tfrc_send_mon;
        })
      tfrc_handles
  in
  {
    tcp_flows;
    tfrc_flows;
    utilization =
      8.
      *. (List.fold_left (fun acc f -> acc +. (f.mean_recv_rate *. span)) 0.
            (tcp_flows @ tfrc_flows))
      /. (p.bandwidth *. span);
    drop_rate = Netsim.Dumbbell.forward_drop_rate db;
    fair_share;
    t0;
    t1;
    drop_times = List.rev !drop_times;
  }

let normalized_throughputs r =
  let f flows = List.map (fun s -> s.mean_recv_rate /. r.fair_share) flows in
  (f r.tcp_flows, f r.tfrc_flows)

let mean = function
  | [] -> 0.
  | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
