(** Figure 7: per-flow normalized throughput scatter at the 15 Mb/s RED
    column of Figure 6, for total flow counts 2..128. Shows that while the
    means are close to fair, individual TCP flows have higher variance than
    TFRC flows. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
