let key = function `Red -> "fig8/red" | `Droptail -> "fig8/droptail"

(* One simulation per queue discipline; the binned per-flow series for the
   displayed flows travel in the result so rendering needs no re-run. *)
let jobs ~full =
  let duration = if full then 30. else 20. in
  List.map
    (fun queue ->
      Job.make (key queue) (fun rng ->
          let bandwidth = Engine.Units.mbps 15. in
          let params =
            {
              (Scenario.default_mixed ()) with
              bandwidth;
              queue = Scenario.scaled_queue queue ~bandwidth;
              n_tcp = 16;
              n_tfrc = 16;
              duration;
              warmup = duration /. 2.;
              seed = Job.derive_seed rng;
            }
          in
          let r = Scenario.run_mixed params in
          let t0 = r.t0 and t1 = r.t1 in
          let bins s = Stats.Time_series.binned s ~t0 ~t1 ~bin:0.15 in
          let shown flows =
            List.filteri (fun i _ -> i < 4) flows
            |> List.map (fun (f : Scenario.flow_stats) ->
                   Array.to_list
                     (Array.map (fun v -> v /. 1e3 /. 0.15) (bins f.recv_series)))
          in
          let mean_cov flows =
            Scenario.mean
              (List.map
                 (fun (f : Scenario.flow_stats) ->
                   Stats.Metrics.cov_of_bins (bins f.recv_series))
                 flows)
          in
          [
            ("tfrc_bins", Job.rows (shown r.tfrc_flows));
            ("tcp_bins", Job.rows (shown r.tcp_flows));
            ("tfrc_cov", Job.f (mean_cov r.tfrc_flows));
            ("tcp_cov", Job.f (mean_cov r.tcp_flows));
            ( "drops",
              Job.i
                (List.length (List.filter (fun t -> t >= t0) r.drop_times)) );
          ]))
    [ `Red; `Droptail ]

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf
    "Figure 8: per-flow throughput in 0.15 s bins, 16 TCP + 16 TFRC, 15 \
     Mb/s (first 4 flows of each shown, second half of the run)@.@.";
  let section ~queue ~title =
    let r = Job.lookup finished (key queue) in
    Format.fprintf ppf "%s@.@." title;
    let show label row =
      let b = Array.of_list row in
      let cov = Stats.Metrics.cov_of_bins b in
      Format.fprintf ppf "%-7s CoV=%.2f %s@." label cov
        (Table.sparkline (Array.sub b 0 (min 100 (Array.length b))))
    in
    List.iteri
      (fun i row -> show (Printf.sprintf "TFRC %d" (i + 1)) row)
      (Job.get_rows r "tfrc_bins");
    List.iteri
      (fun i row -> show (Printf.sprintf "TCP %d" (i + 1)) row)
      (Job.get_rows r "tcp_bins");
    let tfrc_cov = Job.get_float r "tfrc_cov" in
    let tcp_cov = Job.get_float r "tcp_cov" in
    Format.fprintf ppf
      "drops in window: %d; mean CoV over 0.15s bins: TFRC %.2f vs TCP %.2f -> \
     TFRC smoother: %s@.@."
      (Job.get_int r "drops") tfrc_cov tcp_cov
      (if tfrc_cov < tcp_cov then "yes" else "NO")
  in
  section ~queue:`Red ~title:"RED queue";
  section ~queue:`Droptail ~title:"DropTail queue"
