(** Durable JSONL checkpoint store for supervised experiment runs.

    One file per grid identity (see [Registry.grid_id]): a header line
    naming the grid, then one line per completed cell, appended and
    fsync'd as each cell finishes — on worker domains too, so a SIGKILL
    mid-batch loses at most the cells still in flight (and at worst one
    torn final line, which the loader discards). Floats are stored as
    hex-float strings, so a resumed render is byte-identical to an
    uninterrupted run.

    Thread-safety: {!record} and {!close} may be called from any domain
    (appends are serialized internally); {!open_store} and {!find} belong
    to the coordinating domain. *)

type t

(** [ensure_dir dir] creates [dir] and any missing parents. Raises
    [Failure] with a message naming the path and the OS error when a
    component cannot be created (permissions, read-only filesystem, a
    file standing where a directory is needed) — callers writing
    artifacts get one clear diagnostic instead of a bare [Sys_error]
    mid-sweep. *)
val ensure_dir : string -> unit

(** [open_store ~dir ~grid ~resume] opens (creating [dir] if needed) the
    checkpoint file for [grid]. With [resume] true, an existing file whose
    header matches [grid] is loaded — its cells are served by {!find} and
    new records append after them; a missing, mismatched or unreadable
    file starts fresh. With [resume] false the file is truncated. Raises
    [Failure] with a clear message when [dir] cannot be created or the
    file cannot be opened for writing. *)
val open_store : dir:string -> grid:string -> resume:bool -> t

(** The store's file path. *)
val path : t -> string

(** [find t key] is the stored result for [key], if that cell completed in
    this run or a resumed one. *)
val find : t -> string -> Job.result option

(** Number of completed cells currently in the store. *)
val completed_count : t -> int

(** [record t ~key r] appends the cell's result and fsyncs before
    returning. Callable from worker domains. *)
val record : t -> key:string -> Job.result -> unit

(** Closes the file descriptor. Idempotent; {!record} afterwards raises
    [Invalid_argument]. *)
val close : t -> unit
