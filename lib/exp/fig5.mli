(** Figure 5: loss-event fraction as a function of Bernoulli loss
    probability, for a flow sending at the equation rate and at 2x / 0.5x
    that rate (Section 3.5.1). Computed from the self-consistent
    fixed point p_event = (1 - (1-p_loss)^N)/N with
    N = factor * f(p_event) packets/RTT, and cross-checked against a
    Monte-Carlo Bernoulli simulation. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [analytic ~p_loss ~factor] is the fixed-point loss-event fraction. *)
val analytic : p_loss:float -> factor:float -> float

(** [monte_carlo rng ~p_loss ~factor ~packets] simulates a Bernoulli loss
    process on a paced flow and measures loss events per packet, counting a
    loss event at most once per N-packet round trip. *)
val monte_carlo :
  Engine.Rng.t -> p_loss:float -> factor:float -> packets:int -> float
