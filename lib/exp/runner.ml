(* Executes a job list, sequentially or on a domain pool, and hands the
   finished results to a render step.

   Determinism: each job's RNG comes from [Rng.for_key ~seed job.key], so a
   cell's stream does not depend on which worker ran it or in what order;
   results are returned in job-list order regardless of scheduling. The
   render step then sees identical input at any [-j], making output
   byte-identical between [-j 1] and [-j N].

   Tracing: under [-j 1] jobs emit directly to this domain's default bus, so
   observers ([--trace]/[--check]) see events live. Under [-j N] each worker
   domain has its own (inert) default bus; when the coordinating domain's
   bus is active we attach a memory sink to the worker's bus around each
   job, ship the captured events back, and replay them on the coordinator's
   bus in job-list order — the same order a sequential run would have
   emitted them. *)

let run_job ~seed (jb : Job.t) = jb.run (Engine.Rng.for_key ~seed jb.key)

(* Runs one job on the current domain, capturing everything it emits to
   this domain's default bus. *)
let run_job_captured ~seed (jb : Job.t) =
  let bus = Engine.Trace.default () in
  let sink, captured = Engine.Trace.memory_sink () in
  Engine.Trace.add_sink bus sink;
  let result =
    Fun.protect
      ~finally:(fun () -> Engine.Trace.remove_sink bus sink)
      (fun () -> run_job ~seed jb)
  in
  (result, captured ())

let replay bus events =
  List.iter
    (fun (e : Engine.Trace.event) ->
      Engine.Trace.emit bus ~time:e.time ~cat:e.cat ~name:e.name e.fields)
    events

let run_jobs ?(j = 1) ~seed jobs =
  let n = List.length jobs in
  if j <= 1 || n <= 1 then
    List.map (fun (jb : Job.t) -> (jb.Job.key, run_job ~seed jb)) jobs
  else begin
    let main_bus = Engine.Trace.default () in
    let capture = Engine.Trace.active main_bus in
    let arr = Array.of_list jobs in
    let pool = Engine.Pool.create (min j n) in
    let results =
      Fun.protect
        ~finally:(fun () -> Engine.Pool.shutdown pool)
        (fun () ->
          Engine.Pool.map pool
            (fun jb ->
              if capture then run_job_captured ~seed jb
              else (run_job ~seed jb, []))
            arr)
    in
    Array.iter (fun (_, events) -> replay main_bus events) results;
    List.map2 (fun (jb : Job.t) (r, _) -> (jb.key, r)) jobs
      (Array.to_list results)
  end

let run_experiment ?(j = 1) ~full ~seed (e : Registry.experiment) ppf =
  let finished = run_jobs ~j ~seed (e.jobs ~full) in
  e.render ~full ~seed finished ppf
