(* Executes a job list, sequentially or on a domain pool, under
   supervision, and hands the finished results to a render step.

   Determinism: each job's RNG comes from [Rng.for_attempt ~seed ~attempt
   jb.key] (attempt 0 is exactly [Rng.for_key ~seed jb.key]), so a cell's
   stream does not depend on which worker ran it, in what order, or on how
   other cells fared; results are returned in job-list order regardless of
   scheduling. The render step then sees identical input at any [-j],
   making output byte-identical between [-j 1] and [-j N].

   Supervision: every job runs inside a try/with plus an optional
   cooperative budget ([Engine.Sim.with_budget]), so one hung or crashing
   cell cannot forfeit the batch. A job that raises [Sim.Budget_exhausted]
   is timed out, any other exception is failed; both are retried up to
   [retries] times with reproducible attempt-derived RNGs before the
   runner gives up and substitutes a [Job.missing] placeholder at render
   time. With a checkpoint store attached, each completed cell is appended
   (fsync'd) as it finishes — from worker domains too — and cells already
   in the store are skipped on resume.

   Tracing: under [-j 1] jobs emit directly to this domain's default bus, so
   observers ([--trace]/[--check]) see events live. Under [-j N] each worker
   domain has its own (inert) default bus; when the coordinating domain's
   bus is active we attach a memory sink to the worker's bus around each
   job, ship the captured events back, and replay them on the coordinator's
   bus in job-list order — the same order a sequential run would have
   emitted them. Captured events are replayed before any failure is
   surfaced, so a [--trace] file reflects the work actually done even when
   the batch ultimately raises. *)

type failure = {
  kind : [ `Timed_out | `Failed ];
  detail : string;
  attempts : int;
  exn_ : exn;
  backtrace : Printexc.raw_backtrace;
}

type outcome = Completed of Job.result | Gave_up of failure

type status = [ `Ok | `Timed_out | `Failed | `Resumed ]

type job_stat = { key : string; status : status; attempts : int; wall_s : float }

type report = {
  total : int;
  ok : int;
  resumed : int;
  retried : int;
  timed_out : int;
  failed : int;
  wall_s : float;
  jobs : job_stat list;
}

let failure_summary f =
  Printf.sprintf "%s after %d attempt%s: %s"
    (match f.kind with `Timed_out -> "timed out" | `Failed -> "failed")
    f.attempts
    (if f.attempts = 1 then "" else "s")
    f.detail

let status_str = function
  | `Ok -> "ok"
  | `Timed_out -> "timed_out"
  | `Failed -> "failed"
  | `Resumed -> "resumed"

let report_json r =
  let job s =
    Printf.sprintf "{\"key\":\"%s\",\"status\":\"%s\",\"attempts\":%d,\"wall_s\":%.3f}"
      (Job.json_escape s.key) (status_str s.status) s.attempts s.wall_s
  in
  Printf.sprintf
    "{\"report\":\"supervised_run\",\"total\":%d,\"ok\":%d,\"resumed\":%d,\"retried\":%d,\"timed_out\":%d,\"failed\":%d,\"wall_s\":%.3f,\"jobs\":[%s]}"
    r.total r.ok r.resumed r.retried r.timed_out r.failed r.wall_s
    (String.concat "," (List.map job r.jobs))

(* --- One supervised job --------------------------------------------------- *)

let sim_budget (b : Job.budget) =
  Engine.Sim.budget ?max_events:b.max_events ?max_time:b.max_time ()

(* Runs one job to an outcome: up to [1 + retries] attempts, each with a
   fresh attempt-derived RNG and a fresh budget meter. The final attempt's
   exception decides the failure kind. *)
let supervise ~seed ~retries ~budget (jb : Job.t) =
  let budget = match jb.budget with Some _ as b -> b | None -> budget in
  let attempt_once attempt =
    let rng = Engine.Rng.for_attempt ~seed ~attempt jb.key in
    match budget with
    | None -> jb.run rng
    | Some b -> Engine.Sim.with_budget (sim_budget b) (fun () -> jb.run rng)
  in
  let rec go attempt =
    match attempt_once attempt with
    | r -> (Completed r, attempt + 1)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if attempt < retries then go (attempt + 1)
        else
          let kind =
            match e with
            | Engine.Sim.Budget_exhausted _ -> `Timed_out
            | _ -> `Failed
          in
          ( Gave_up
              {
                kind;
                detail = Printexc.to_string e;
                attempts = attempt + 1;
                exn_ = e;
                backtrace = bt;
              },
            attempt + 1 )
  in
  go 0

(* Runs one job on the current domain: supervises it, optionally capturing
   everything it emits to this domain's default bus (all attempts — a
   sequential run would have emitted the failed tries live too), and
   checkpoints a completed result before returning. *)
let exec ~seed ~retries ~budget ~checkpoint ~capture ~scheduler (jb : Job.t) =
  (* Ambient state is domain-local: a worker domain starts from the DLS
     defaults, not the coordinator's, so the coordinator's scheduler choice
     must be re-installed here for [-j N] to match [-j 1]. Idempotent when
     already running on the coordinator. *)
  Engine.Sim.set_default_scheduler scheduler;
  let t0 = Unix.gettimeofday () in
  let run () = supervise ~seed ~retries ~budget jb in
  let (outcome, attempts), events =
    if capture then begin
      let bus = Engine.Trace.default () in
      let sink, captured = Engine.Trace.memory_sink () in
      Engine.Trace.add_sink bus sink;
      let r =
        Fun.protect
          ~finally:(fun () -> Engine.Trace.remove_sink bus sink)
          run
      in
      (r, captured ())
    end
    else (run (), [])
  in
  (match (outcome, checkpoint) with
  | Completed r, Some ck -> Checkpoint.record ck ~key:jb.Job.key r
  | _ -> ());
  (outcome, attempts, events, Unix.gettimeofday () -. t0)

let replay bus events =
  List.iter
    (fun (e : Engine.Trace.event) ->
      Engine.Trace.emit bus ~time:e.time ~cat:e.cat ~name:e.name e.fields)
    events

(* --- Batch execution ------------------------------------------------------ *)

let run_jobs_supervised ?(j = 1) ?(retries = 0) ?budget ?checkpoint ~seed jobs =
  let t0 = Unix.gettimeofday () in
  let main_bus = Engine.Trace.default () in
  let supervised = retries > 0 || budget <> None || checkpoint <> None in
  (* Cells already in the checkpoint store are served from it, in place. *)
  let plan =
    List.map
      (fun (jb : Job.t) ->
        match checkpoint with
        | Some ck -> (
            match Checkpoint.find ck jb.key with
            | Some r -> `Resumed (jb, r)
            | None -> `Run jb)
        | None -> `Run jb)
      jobs
  in
  let to_run =
    List.filter_map (function `Run jb -> Some jb | `Resumed _ -> None) plan
  in
  let nrun = List.length to_run in
  let scheduler = Engine.Sim.default_scheduler () in
  let exec_results =
    if j <= 1 || nrun <= 1 then
      List.map
        (fun jb ->
          ( jb,
            exec ~seed ~retries ~budget ~checkpoint ~capture:false ~scheduler
              jb ))
        to_run
    else begin
      let capture = Engine.Trace.active main_bus in
      let arr = Array.of_list to_run in
      let pool = Engine.Pool.create (min j nrun) in
      let out =
        Fun.protect
          ~finally:(fun () -> Engine.Pool.shutdown pool)
          (fun () ->
            Engine.Pool.try_map pool
              (exec ~seed ~retries ~budget ~checkpoint ~capture ~scheduler)
              arr)
      in
      (* A task-level Error here means the supervision harness itself
         raised (e.g. a checkpoint write failed): isolate it to the cell
         like any job failure. *)
      List.map2
        (fun (jb : Job.t) res ->
          match res with
          | Ok cell -> (jb, cell)
          | Error (e, bt) ->
              ( jb,
                ( Gave_up
                    {
                      kind = `Failed;
                      detail = Printexc.to_string e;
                      attempts = 0;
                      exn_ = e;
                      backtrace = bt;
                    },
                  0, [], 0. ) ))
        (Array.to_list arr) (Array.to_list out)
    end
  in
  (* Replay captured worker events in job-list order — before failures are
     surfaced, so observers see the work that was actually done. *)
  List.iter (fun (_, (_, _, events, _)) -> replay main_bus events) exec_results;
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun ((jb : Job.t), (outcome, attempts, _, wall)) ->
      Hashtbl.replace by_key jb.key (outcome, attempts, wall))
    exec_results;
  let cells =
    List.map
      (fun item ->
        match item with
        | `Resumed ((jb : Job.t), r) ->
            ( (jb.key, Completed r),
              { key = jb.key; status = `Resumed; attempts = 0; wall_s = 0. } )
        | `Run (jb : Job.t) ->
            (* find_opt, not find: a bare Not_found here would escape the
               crash-isolation machinery and kill the whole report. A job
               the executor somehow recorded no outcome for becomes a
               failure cell, rendered as a MISSING(key) hole downstream. *)
            let outcome, attempts, wall =
              match Hashtbl.find_opt by_key jb.key with
              | Some cell -> cell
              | None ->
                  ( Gave_up
                      {
                        kind = `Failed;
                        detail = "internal: executor recorded no outcome";
                        attempts = 0;
                        exn_ = Not_found;
                        backtrace = Printexc.get_callstack 0;
                      },
                    0,
                    0. )
            in
            let status =
              match outcome with
              | Completed _ -> `Ok
              | Gave_up { kind = `Timed_out; _ } -> `Timed_out
              | Gave_up { kind = `Failed; _ } -> `Failed
            in
            ( (jb.key, outcome),
              { key = jb.key; status; attempts; wall_s = wall } ))
      plan
  in
  let outcomes = List.map fst cells and stats = List.map snd cells in
  let count p = List.length (List.filter p stats) in
  let report =
    {
      total = List.length stats;
      ok = count (fun s -> s.status = `Ok);
      resumed = count (fun s -> s.status = `Resumed);
      retried = count (fun s -> s.status = `Ok && s.attempts > 1);
      timed_out = count (fun s -> s.status = `Timed_out);
      failed = count (fun s -> s.status = `Failed);
      wall_s = Unix.gettimeofday () -. t0;
      jobs = stats;
    }
  in
  (* Structured run report on the trace bus — only for supervised runs:
     the events carry wall-clock fields, which would make unsupervised
     [--trace] files differ run to run for no benefit. *)
  if supervised && Engine.Trace.active main_bus then begin
    List.iter
      (fun s ->
        Engine.Trace.emit main_bus ~time:0. ~cat:"exp" ~name:"job"
          [
            ("key", Engine.Trace.Str s.key);
            ("status", Engine.Trace.Str (status_str s.status));
            ("attempts", Engine.Trace.Int s.attempts);
            ("wall_s", Engine.Trace.Float s.wall_s);
          ])
      stats;
    Engine.Trace.emit main_bus ~time:0. ~cat:"exp" ~name:"report"
      [
        ("total", Engine.Trace.Int report.total);
        ("ok", Engine.Trace.Int report.ok);
        ("resumed", Engine.Trace.Int report.resumed);
        ("retried", Engine.Trace.Int report.retried);
        ("timed_out", Engine.Trace.Int report.timed_out);
        ("failed", Engine.Trace.Int report.failed);
        ("wall_s", Engine.Trace.Float report.wall_s);
      ]
  end;
  (outcomes, report)

let run_jobs ?(j = 1) ~seed jobs =
  let outcomes, _ = run_jobs_supervised ~j ~seed jobs in
  (* Legacy raising contract: traces were already replayed above; now
     surface the first failure in job-list order with its original
     backtrace. Note every job ran (crash isolation) before this raise. *)
  List.map
    (fun (key, o) ->
      match o with
      | Completed r -> (key, r)
      | Gave_up f -> Printexc.raise_with_backtrace f.exn_ f.backtrace)
    outcomes

let run_experiment ?(j = 1) ?(retries = 0) ?budget ?checkpoint ~full ~seed
    (e : Registry.experiment) ppf =
  let outcomes, report =
    run_jobs_supervised ~j ~retries ?budget ?checkpoint ~seed (e.jobs ~full)
  in
  let failures =
    List.filter_map
      (fun (k, o) -> match o with Gave_up f -> Some (k, f) | _ -> None)
      outcomes
  in
  let finished =
    List.map
      (fun (k, o) ->
        match o with
        | Completed r -> (k, r)
        | Gave_up f -> (k, Job.missing ~reason:(failure_summary f)))
      outcomes
  in
  List.iter
    (fun (k, f) -> Format.fprintf ppf "MISSING(%s): %s@." k (failure_summary f))
    failures;
  (match failures with
  | [] -> e.render ~full ~seed finished ppf
  | _ -> (
      (* Placeholder results make accessors yield hole values, but a render
         step may still trip over them in aggregate code; keep the holes
         visible rather than losing the whole figure. *)
      try e.render ~full ~seed finished ppf
      with ex ->
        Format.fprintf ppf "@.[render aborted after missing cells: %s]@."
          (Printexc.to_string ex)));
  report
