let rtt = 0.1
let pkt = 1000

let trace ~duration () =
  (* Simple control equation (as in Appendix A.1), fixed RTT, delay_gain
     off so spacing does not perturb the trace. *)
  let config =
    Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Simple
      ~delay_gain:false ~initial_rtt:rtt ~ndupack:1 ()
  in
  let count = ref 0 in
  let path_time = ref (fun () -> 0.) in
  let drop _pkt =
    incr count;
    let now = !path_time () in
    (* Every 100th packet dropped until t = 10. *)
    now < 10. && !count mod 100 = 0
  in
  let path = Direct_path.create ~config ~rtt ~drop () in
  (path_time := fun () -> Engine.Sim.now path.sim);
  let out = ref [] in
  Tfrc.Tfrc_sender.on_rate_update path.sender (fun time ~rate ~rtt:r ~p:_ ->
      out := (time, rate *. r /. float_of_int pkt) :: !out);
  Direct_path.run path ~until:duration;
  (List.rev !out, rtt)

let slope samples ~a ~b =
  (* Least-squares slope of pkts/RTT per RTT over window [a, b). *)
  let pts = List.filter (fun (t, _) -> t >= a && t < b) samples in
  match pts with
  | [] | [ _ ] -> 0.
  | _ ->
      let n = float_of_int (List.length pts) in
      let sx = List.fold_left (fun s (t, _) -> s +. t) 0. pts in
      let sy = List.fold_left (fun s (_, v) -> s +. v) 0. pts in
      let sxx = List.fold_left (fun s (t, _) -> s +. (t *. t)) 0. pts in
      let sxy = List.fold_left (fun s (t, v) -> s +. (t *. v)) 0. pts in
      let per_second = ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx)) in
      per_second *. rtt

(* Deterministic single-flow trace: one job carrying the sample series. *)
let jobs ~full:_ =
  [
    Job.make "fig19/trace" (fun _rng ->
        let samples, _ = trace ~duration:14. () in
        [ ("samples", Job.pairs samples) ]);
  ]

let render ~full:_ ~seed:_ finished ppf =
  let samples = Job.get_pairs (Job.lookup finished "fig19/trace") "samples" in
  Dataset.write_xy ~name:"fig19" ~x:"time" ~y:"pkts_per_rtt" samples;
  Format.fprintf ppf
    "Figure 19: allowed rate (pkts/RTT) around the end of congestion at \
     t=10 (every 100th packet dropped before)@.@.";
  let display =
    List.filter (fun (t, _) -> t >= 9.4 && t <= 13.) samples
    |> List.filteri (fun i _ -> i mod 2 = 0)
  in
  Table.series ppf ~label:"allowed rate (pkts/RTT)" display;
  (* Steady-state before: ~1.2*sqrt(100) = 12 pkts/RTT. *)
  let steady =
    Scenario.mean
      (List.filter_map
         (fun (t, v) -> if t >= 8. && t < 10. then Some v else None)
         samples)
  in
  (* Anchor the slope windows to the observed rise: the rate starts
     climbing once the open interval exceeds the average (~0.8 s after the
     last loss), and history discounting engages roughly one average
     interval later. *)
  let rise =
    match
      List.find_opt (fun (t, v) -> t > 10. && v > steady +. 0.1) samples
    with
    | Some (t, _) -> t
    | None -> 10.75
  in
  let s1 = slope samples ~a:rise ~b:(rise +. 0.55) in
  let s2 = slope samples ~a:(rise +. 1.3) ~b:(rise +. 2.6) in
  Format.fprintf ppf
    "@.steady rate before t=10: %.1f pkts/RTT (theory 1.2*sqrt(100) = \
     12)@.increase slope after rate starts rising: %.3f pkts/RTT per RTT \
     (paper/analysis: ~0.12)@.slope once history discounting engages: %.3f \
     pkts/RTT per RTT (paper: up to ~0.28)@."
    steady s1 s2
