type curves = {
  timescales : float list;
  tfrc_tfrc : Stats.Ci.t list;
  tcp_tcp : Stats.Ci.t list;
  tfrc_tcp : Stats.Ci.t list;
  cov_tfrc : Stats.Ci.t list;
  cov_tcp : Stats.Ci.t list;
  loss_rate : float;
}

let timescales = [ 0.2; 0.5; 1.; 2.; 5.; 10. ]

(* The paper monitors one flow of each protocol per run and averages 14
   runs. We monitor the first two flows of each protocol per run, using
   send-side series as in the R_{tau,F} definition. *)
let one_run ~duration ~seed =
  let bandwidth = Engine.Units.mbps 15. in
  let params =
    {
      (Scenario.default_mixed ()) with
      bandwidth;
      queue =
        Netsim.Dumbbell.Red_q
          (Netsim.Red.params ~min_th:10. ~max_th:50. ~limit_pkts:100 ());
      n_tcp = 16;
      n_tfrc = 16;
      duration;
      warmup = duration /. 3.;
      seed;
    }
  in
  let r = Scenario.run_mixed params in
  let t0 = r.t0 and t1 = r.t1 in
  let send (f : Scenario.flow_stats) = f.send_series in
  let tcp = List.filteri (fun i _ -> i < 2) r.tcp_flows |> List.map send in
  let tfrc = List.filteri (fun i _ -> i < 2) r.tfrc_flows |> List.map send in
  let eq pairs tau =
    Option.value ~default:0.
      (match pairs with
      | `Within l -> Stats.Metrics.mean_pairwise_equivalence l ~t0 ~t1 ~tau
      | `Cross (a, b) -> Stats.Metrics.mean_cross_equivalence a b ~t0 ~t1 ~tau)
  in
  let cov l tau =
    Scenario.mean
      (List.map (fun s -> Stats.Metrics.cov_at_timescale s ~t0 ~t1 ~tau) l)
  in
  ( List.map (fun tau -> eq (`Within tfrc) tau) timescales,
    List.map (fun tau -> eq (`Within tcp) tau) timescales,
    List.map (fun tau -> eq (`Cross (tfrc, tcp)) tau) timescales,
    List.map (fun tau -> cov tfrc tau) timescales,
    List.map (fun tau -> cov tcp tau) timescales,
    r.drop_rate )

let compute ~runs ~duration ~seed =
  let results =
    List.init runs (fun i -> one_run ~duration ~seed:(seed + (1009 * i)))
  in
  let collect f =
    (* For each timescale index, CI over runs. *)
    List.mapi
      (fun ti _ ->
        Stats.Ci.of_samples
          (Array.of_list (List.map (fun r -> List.nth (f r) ti) results)))
      timescales
  in
  {
    timescales;
    tfrc_tfrc = collect (fun (a, _, _, _, _, _) -> a);
    tcp_tcp = collect (fun (_, b, _, _, _, _) -> b);
    tfrc_tcp = collect (fun (_, _, c, _, _, _) -> c);
    cov_tfrc = collect (fun (_, _, _, d, _, _) -> d);
    cov_tcp = collect (fun (_, _, _, _, e, _) -> e);
    loss_rate =
      Scenario.mean (List.map (fun (_, _, _, _, _, l) -> l) results);
  }

(* One job per independent run; the render step aggregates the runs into
   confidence intervals. *)
let key i = Printf.sprintf "fig9_10/run%d" i

let jobs ~full =
  let runs = if full then 14 else 4 in
  let duration = if full then 150. else 60. in
  List.init runs (fun i ->
      Job.make (key i) (fun rng ->
          let a, b, c, d, e, loss =
            one_run ~duration ~seed:(Job.derive_seed rng)
          in
          [
            ("tfrc_tfrc", Job.floats a);
            ("tcp_tcp", Job.floats b);
            ("tfrc_tcp", Job.floats c);
            ("cov_tfrc", Job.floats d);
            ("cov_tcp", Job.floats e);
            ("loss", Job.f loss);
          ]))

let curves_of_results results =
  let collect field =
    List.mapi
      (fun ti _ ->
        Stats.Ci.of_samples
          (Array.of_list
             (List.map (fun r -> List.nth (Job.get_floats r field) ti) results)))
      timescales
  in
  {
    timescales;
    tfrc_tfrc = collect "tfrc_tfrc";
    tcp_tcp = collect "tcp_tcp";
    tfrc_tcp = collect "tfrc_tcp";
    cov_tfrc = collect "cov_tfrc";
    cov_tcp = collect "cov_tcp";
    loss_rate =
      Scenario.mean (List.map (fun r -> Job.get_float r "loss") results);
  }

let render ~full ~seed:_ finished ppf =
  let runs = if full then 14 else 4 in
  let c = curves_of_results (List.map snd finished) in
  Dataset.write_series ~name:"fig9"
    ~columns:[ "timescale"; "tfrc_tfrc"; "tcp_tcp"; "tfrc_tcp" ]
    (List.mapi
       (fun i tau ->
         let m l = (List.nth l i : Stats.Ci.t).Stats.Ci.mean in
         [ tau; m c.tfrc_tfrc; m c.tcp_tcp; m c.tfrc_tcp ])
       c.timescales);
  Dataset.write_series ~name:"fig10"
    ~columns:[ "timescale"; "cov_tfrc"; "cov_tcp" ]
    (List.mapi
       (fun i tau ->
         let m l = (List.nth l i : Stats.Ci.t).Stats.Ci.mean in
         [ tau; m c.cov_tfrc; m c.cov_tcp ])
       c.timescales);
  Format.fprintf ppf
    "Figures 9 & 10: steady state, 16 TCP + 16 TFRC, 15 Mb/s RED, %d runs \
     (90%% CI)@.@." runs;
  Format.fprintf ppf "Figure 9: equivalence ratio vs timescale@.@.";
  Table.print ppf
    ~header:[ "timescale s"; "TFRC vs TFRC"; "TCP vs TCP"; "TFRC vs TCP" ]
    (List.mapi
       (fun i tau ->
         let f l = Format.asprintf "%a" Stats.Ci.pp (List.nth l i) in
         [ Table.f2 tau; f c.tfrc_tfrc; f c.tcp_tcp; f c.tfrc_tcp ])
       c.timescales);
  Format.fprintf ppf "@.Figure 10: coefficient of variation vs timescale@.@.";
  Table.print ppf
    ~header:[ "timescale s"; "TFRC CoV"; "TCP CoV" ]
    (List.mapi
       (fun i tau ->
         let f l = Format.asprintf "%a" Stats.Ci.pp (List.nth l i) in
         [ Table.f2 tau; f c.cov_tfrc; f c.cov_tcp ])
       c.timescales);
  let nth l i = (List.nth l i : Stats.Ci.t).Stats.Ci.mean in
  Format.fprintf ppf
    "@.bottleneck loss rate %.4f (paper: ~0.001). At 1 s timescale: \
     TFRC/TCP equivalence %.2f (paper 0.6-0.8); CoV TFRC %.2f < TCP %.2f: \
     %s@."
    c.loss_rate (nth c.tfrc_tcp 2) (nth c.cov_tfrc 2) (nth c.cov_tcp 2)
    (if nth c.cov_tfrc 2 < nth c.cov_tcp 2 then "yes" else "NO")
