(** Ablation studies over TFRC's design choices (beyond the paper's own
    figures, but directly motivated by its Section 3 discussion):

    - loss-interval history size n (the paper argues n=8 is the knee),
    - history discounting on/off (recovery speed after congestion ends),
    - RTT EWMA gain x interpacket-spacing stabilization (oscillations),
    - expedited feedback on loss events on/off (response time),
    - the Section 4.1 burstiness aid (two packets every two intervals)
      against a small-window TCP competitor,
    - ECN marking vs dropping at a RED bottleneck (Section 7 outlook). *)

(** One job per table cell that runs a simulation, grouped by section key
    prefix (e.g. ["ablations/history/8"]). *)
val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
