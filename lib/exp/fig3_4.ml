(* Dummynet profile: one flow through a 2 Mb/s pipe (250 KB/s, matching the
   figures' 0-300 KB/s axis), 30 ms base RTT, DropTail buffer swept. *)

let bandwidth = Engine.Units.mbps 2.
let rtt_base = 0.030

(* Run one flow over the Dummynet-like pipe and return its send-side
   series (shared by the CoV and trace views). *)
let run_flow ~rtt_gain ~delay_gain ~buffer ~duration =
  let sim = Engine.Sim.create () in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.005
      ~queue:(Netsim.Dumbbell.Droptail_q buffer) ()
  in
  let config = Tfrc.Tfrc_config.default ~rtt_gain ~delay_gain () in
  let h = Scenario.attach_tfrc db ~flow:1 ~rtt_base ~config in
  Tfrc.Tfrc_sender.start h.tfrc_sender ~at:0.;
  Engine.Sim.run sim ~until:duration;
  Netsim.Flowmon.series h.tfrc_send_mon

let oscillation_with ~rtt_gain ~delay_gain ~buffer ~duration =
  let series = run_flow ~rtt_gain ~delay_gain ~buffer ~duration in
  let t0 = duration /. 2. and t1 = duration in
  ( Stats.Metrics.cov_at_timescale series ~t0 ~t1 ~tau:0.2,
    Stats.Time_series.mean_rate series ~t0 ~t1 )

let oscillation ~delay_gain ~buffer ~duration =
  oscillation_with ~rtt_gain:0.05 ~delay_gain ~buffer ~duration

let buffers = [ 2; 8; 32; 64 ]

(* Deterministic cells (a single flow, no randomness): one job per
   (adjustment, buffer) pair, computing the CoV, mean rate and display
   trace from a single run of the flow. *)
let key ~delay_gain ~buffer =
  Printf.sprintf "fig3_4/%s/%d"
    (if delay_gain then "adjusted" else "plain")
    buffer

let jobs ~full =
  let duration = if full then 180. else 60. in
  List.concat_map
    (fun delay_gain ->
      List.map
        (fun buffer ->
          Job.make (key ~delay_gain ~buffer) (fun _rng ->
              let series =
                run_flow ~rtt_gain:0.05 ~delay_gain ~buffer ~duration
              in
              let t0 = duration /. 2. and t1 = duration in
              [
                ( "cov",
                  Job.f (Stats.Metrics.cov_at_timescale series ~t0 ~t1 ~tau:0.2)
                );
                ("mean", Job.f (Stats.Time_series.mean_rate series ~t0 ~t1));
                ( "trace",
                  Job.floats
                    (Array.to_list
                       (Stats.Time_series.rates series ~t0 ~t1 ~bin:0.5)) );
              ]))
        buffers)
    [ false; true ]

let render ~full:_ ~seed:_ finished ppf =
  let section title delay_gain =
    Format.fprintf ppf "%s@.@." title;
    let rows =
      List.map
        (fun buffer ->
          let r = Job.lookup finished (key ~delay_gain ~buffer) in
          [
            string_of_int buffer;
            Table.f2 (Job.get_float r "mean" /. 1e3);
            Table.f3 (Job.get_float r "cov");
            Table.sparkline (Array.of_list (Job.get_floats r "trace"));
          ])
        buffers
    in
    Table.print ppf
      ~header:[ "buffer (pkts)"; "mean rate KB/s"; "CoV(0.2s)"; "rate trace" ]
      rows;
    Format.fprintf ppf "@."
  in
  section
    "Figure 3: TFRC over Dummynet, EWMA weight 0.05, no interpacket-spacing \
     adjustment"
    false;
  section "Figure 4: same, with the sqrt(R0)/M interpacket-spacing adjustment"
    true;
  (* Headline comparison at the large-buffer end, where Figure 3's
     oscillations are worst. *)
  let cov_of delay_gain =
    Job.get_float (Job.lookup finished (key ~delay_gain ~buffer:64)) "cov"
  in
  let c3 = cov_of false in
  let c4 = cov_of true in
  Format.fprintf ppf
    "oscillation (CoV at 64-pkt buffer): without adjustment %.3f, with \
     adjustment %.3f -> damped %s@."
    c3 c4
    (if c4 < c3 then "yes" else "NO")
