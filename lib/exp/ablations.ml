(* Each ablation isolates one knob of the TFRC design and measures the
   axis it is supposed to affect. Every table cell that runs a simulation
   is its own job, so the whole suite parallelizes; the render step lays
   the cells back out section by section. *)

(* Shared harness: one TFRC with the given config vs one SACK TCP over a
   15 Mb/s RED dumbbell; returns (normalized TFRC rate, normalized TCP
   rate, TFRC CoV at 0.5 s). *)
let versus_tcp ~config ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.025
      ~queue:(Scenario.scaled_queue `Red ~bandwidth) ()
  in
  (* Background load so a meaningful loss process exists. *)
  for i = 1 to 6 do
    let h =
      Scenario.attach_tcp db ~flow:(10 + i)
        ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
        ~config:Tcpsim.Tcp_common.ns_sack
    in
    Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.)
  done;
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:(Engine.Rng.float rng 2.);
  let tfrc =
    Scenario.attach_tfrc db ~flow:2
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:(Engine.Rng.float rng 2.);
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 3. and t1 = duration in
  let fair = Engine.Units.bps_to_byte_rate bandwidth /. 8. in
  ( Netsim.Flowmon.mean_rate tfrc.tfrc_recv_mon ~t0 ~t1 /. fair,
    Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1 /. fair,
    Stats.Metrics.cov_at_timescale
      (Netsim.Flowmon.series tfrc.tfrc_send_mon)
      ~t0 ~t1 ~tau:0.5 )

(* --- A: history size ------------------------------------------------------- *)

let history_ns = [ 4; 8; 16; 32 ]
let history_key n = Printf.sprintf "ablations/history/%d" n

let history_jobs ~duration =
  List.map
    (fun n ->
      Job.make (history_key n) (fun rng ->
          let seed = Job.derive_seed rng in
          let config = Tfrc.Tfrc_config.default ~n_intervals:n () in
          let tfrc, tcp, cov = versus_tcp ~config ~duration ~seed in
          [ ("tfrc", Job.f tfrc); ("tcp", Job.f tcp); ("cov", Job.f cov) ]))
    history_ns

let render_history ppf finished =
  Format.fprintf ppf "A. Loss-interval history size n (8 is the paper's choice)@.@.";
  let rows =
    List.map
      (fun n ->
        let r = Job.lookup finished (history_key n) in
        [
          string_of_int n;
          Table.f2 (Job.get_float r "tfrc");
          Table.f2 (Job.get_float r "tcp");
          Table.f2 (Job.get_float r "cov");
        ])
      history_ns
  in
  Table.print ppf
    ~header:[ "n"; "TFRC norm"; "TCP norm"; "TFRC CoV(0.5s)" ]
    rows;
  Format.fprintf ppf
    "(larger n smooths more but reacts slower; n=8 balances — Section 3.3)@.@."

(* --- B: history discounting ------------------------------------------------- *)

(* Fig19 scenario but with discounting toggled: measure the rate gained
   between t=11.5 and t=13 (the discounting window). Deterministic — the
   drop pattern is counter-driven. *)
let discount_slope ~discounting =
  let config =
    Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Simple
      ~delay_gain:false ~initial_rtt:0.1 ~ndupack:1
      ~history_discounting:discounting ()
  in
  let count = ref 0 in
  let time = ref (fun () -> 0.) in
  let drop _ =
    incr count;
    !time () < 10. && !count mod 100 = 0
  in
  let path = Direct_path.create ~config ~rtt:0.1 ~drop () in
  (time := fun () -> Engine.Sim.now path.sim);
  let samples = ref [] in
  Tfrc.Tfrc_sender.on_rate_update path.sender (fun t ~rate ~rtt:r ~p:_ ->
      samples := (t, rate *. r /. 1000.) :: !samples);
  Direct_path.run path ~until:13.5;
  let ordered = List.rev !samples in
  (* Rate at the last update before t0 (not a running max: the slow-start
     overshoot would swamp it). *)
  let at t0 =
    List.fold_left (fun acc (t, v) -> if t <= t0 then v else acc) 0. ordered
  in
  at 13.4 -. at 11.5

let discount_key d =
  Printf.sprintf "ablations/discount/%s" (if d then "on" else "off")

let discount_jobs () =
  List.map
    (fun d ->
      Job.make (discount_key d) (fun _rng ->
          [ ("slope", Job.f (discount_slope ~discounting:d)) ]))
    [ false; true ]

let render_discounting ppf finished =
  Format.fprintf ppf "B. History discounting: recovery after congestion ends@.@.";
  let slope d = Job.get_float (Job.lookup finished (discount_key d)) "slope" in
  let without = slope false in
  let with_d = slope true in
  Table.print ppf
    ~header:[ "history discounting"; "rate gained 11.5s-13.4s (pkts/RTT)" ]
    [ [ "off"; Table.f2 without ]; [ "on"; Table.f2 with_d ] ];
  Format.fprintf ppf
    "(discounting roughly doubles the recovery speed after a long loss-free \
     period: %s)@.@."
    (if with_d > 1.5 *. without then "reproduced" else "NOT reproduced")

(* --- C: RTT gain x delay gain ------------------------------------------------ *)

let rtt_gain_grid = [ 0.05; 0.1; 0.5 ]

let rtt_gain_key gain delay_gain =
  Printf.sprintf "ablations/rttgain/%.2f/%s" gain
    (if delay_gain then "on" else "off")

let rtt_gain_jobs ~duration =
  List.concat_map
    (fun gain ->
      List.map
        (fun delay_gain ->
          Job.make (rtt_gain_key gain delay_gain) (fun _rng ->
              let cov, mean =
                Fig3_4.oscillation_with ~rtt_gain:gain ~delay_gain ~buffer:64
                  ~duration
              in
              [ ("cov", Job.f cov); ("mean", Job.f mean) ]))
        [ false; true ])
    rtt_gain_grid

let render_rtt_gain ppf finished =
  Format.fprintf ppf
    "C. RTT EWMA gain and interpacket-spacing stabilization (Section 3.4)@.@.";
  let rows =
    List.concat_map
      (fun gain ->
        List.map
          (fun delay_gain ->
            let r = Job.lookup finished (rtt_gain_key gain delay_gain) in
            [
              Printf.sprintf "%.2f" gain;
              (if delay_gain then "on" else "off");
              Table.f3 (Job.get_float r "cov");
              Table.f2 (Job.get_float r "mean" /. 1e3);
            ])
          [ false; true ])
      rtt_gain_grid
  in
  Table.print ppf
    ~header:[ "EWMA gain"; "sqrt(R0)/M"; "CoV(0.2s)"; "rate KB/s" ]
    rows;
  Format.fprintf ppf
    "(the stabilization damps oscillations at every gain; a large gain \
     alone gives jittery delay-based backoff — Section 3.4)@.@."

(* --- D: expedited feedback ----------------------------------------------------- *)

(* Deterministic: counter-driven drops over a direct path. *)
let expedited_rtts ~feedback_on_loss =
  let config =
    Tfrc.Tfrc_config.default ~response:Tfrc.Response_function.Pftk
      ~delay_gain:false ~initial_rtt:0.1 ~ndupack:1 ~feedback_on_loss ()
  in
  let count = ref 0 in
  let time = ref (fun () -> 0.) in
  let drop _ =
    incr count;
    if !time () < 10. then !count mod 100 = 0 else !count mod 2 = 0
  in
  let path = Direct_path.create ~config ~rtt:0.1 ~drop () in
  (time := fun () -> Engine.Sim.now path.sim);
  let samples = ref [] in
  Tfrc.Tfrc_sender.on_rate_update path.sender (fun t ~rate ~rtt:_ ~p:_ ->
      samples := (t, rate) :: !samples);
  Direct_path.run path ~until:14.;
  let samples = List.rev !samples in
  let before =
    List.fold_left (fun acc (t, r) -> if t < 10. then r else acc) 0. samples
  in
  match
    List.find_opt (fun (t, r) -> t >= 10. && r <= before /. 2.) samples
  with
  | Some (t, _) -> Printf.sprintf "%.0f" (ceil ((t -. 10.) /. 0.1))
  | None -> "never"

let expedited_key on =
  Printf.sprintf "ablations/expedited/%s" (if on then "on" else "off")

let expedited_jobs () =
  List.map
    (fun on ->
      Job.make (expedited_key on) (fun _rng ->
          [ ("rtts", Job.s (expedited_rtts ~feedback_on_loss:on)) ]))
    [ true; false ]

let render_expedited ppf finished =
  Format.fprintf ppf "D. Expedited feedback on loss events@.@.";
  let rtts on = Job.get_str (Job.lookup finished (expedited_key on)) "rtts" in
  Table.print ppf
    ~header:[ "feedback on loss"; "RTTs to halve under persistent congestion" ]
    [
      [ "on (default)"; rtts true ];
      [ "off (per-RTT only)"; rtts false ];
    ];
  Format.fprintf ppf "@."

(* --- E: burstiness aid ------------------------------------------------------------ *)

(* Low-bandwidth bottleneck: TCP's window is tiny and TFRC's perfectly
   smooth spacing can crowd it out of a DropTail buffer. *)
let burst_run ~burst_pkts ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 0.8 in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:(Netsim.Dumbbell.Droptail_q 8) ()
  in
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(Engine.Rng.uniform rng 0.09 0.11)
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:0.5;
  let tfrc =
    Scenario.attach_tfrc db ~flow:2
      ~rtt_base:(Engine.Rng.uniform rng 0.09 0.11)
      ~config:(Tfrc.Tfrc_config.default ~burst_pkts ())
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:0.;
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 3. and t1 = duration in
  let tcp_rate = Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0 ~t1 in
  let tfrc_rate = Netsim.Flowmon.mean_rate tfrc.tfrc_recv_mon ~t0 ~t1 in
  (tcp_rate /. 1e3, tfrc_rate /. 1e3)

let burst_key n = Printf.sprintf "ablations/burst/%d" n

let burst_jobs ~duration =
  List.map
    (fun burst_pkts ->
      Job.make (burst_key burst_pkts) (fun rng ->
          let seed = Job.derive_seed rng in
          let tcp, tfrc = burst_run ~burst_pkts ~duration ~seed in
          [ ("tcp", Job.f tcp); ("tfrc", Job.f tfrc) ]))
    [ 1; 2 ]

let render_burstiness ppf finished =
  Format.fprintf ppf
    "E. Sending two packets every two interpacket intervals (Section 4.1) — \
     small-window TCP competitor@.@.";
  let cell n =
    let r = Job.lookup finished (burst_key n) in
    (Job.get_float r "tcp", Job.get_float r "tfrc")
  in
  let t1, f1 = cell 1 in
  let t2, f2 = cell 2 in
  Table.print ppf
    ~header:[ "TFRC bursting"; "TCP KB/s"; "TFRC KB/s"; "TCP share" ]
    [
      [ "1 pkt / interval"; Table.f2 t1; Table.f2 f1; Table.f2 (t1 /. (t1 +. f1)) ];
      [ "2 pkts / 2 intervals"; Table.f2 t2; Table.f2 f2; Table.f2 (t2 /. (t2 +. f2)) ];
    ];
  Format.fprintf ppf "@."

(* --- F: ECN ------------------------------------------------------------------------- *)

let ecn_run ~use_ecn ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let red =
    Netsim.Red.params ~min_th:10. ~max_th:50. ~limit_pkts:100 ~ecn:use_ecn ()
  in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.025
      ~queue:(Netsim.Dumbbell.Red_q red) ()
  in
  let tcps =
    List.init 8 (fun i ->
        let h =
          Scenario.attach_tcp db ~flow:(i + 1)
            ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
            ~config:(Tcpsim.Tcp_common.default ~ecn:use_ecn ())
        in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.);
        h)
  in
  let tfrcs =
    List.init 8 (fun i ->
        let h =
          Scenario.attach_tfrc db ~flow:(100 + i)
            ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
            ~config:(Tfrc.Tfrc_config.default ~ecn:use_ecn ())
        in
        Tfrc.Tfrc_sender.start h.tfrc_sender ~at:(Engine.Rng.float rng 2.);
        h)
  in
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 3. and t1 = duration in
  let rate mon = Netsim.Flowmon.mean_rate mon ~t0 ~t1 in
  let tcp_rates = List.map (fun h -> rate h.Scenario.tcp_recv_mon) tcps in
  let tfrc_rates = List.map (fun h -> rate h.Scenario.tfrc_recv_mon) tfrcs in
  let marks =
    List.fold_left
      (fun acc h ->
        acc
        + Tfrc.Loss_events.marked_packets
            (Tfrc.Tfrc_receiver.detector h.Scenario.tfrc_receiver))
      0 tfrcs
  in
  ( Netsim.Dumbbell.forward_drop_rate db,
    Stats.Fairness.jain (tcp_rates @ tfrc_rates),
    Scenario.mean tcp_rates /. Scenario.mean tfrc_rates,
    marks )

let ecn_key on = Printf.sprintf "ablations/ecn/%s" (if on then "on" else "off")

let ecn_jobs ~duration =
  List.map
    (fun use_ecn ->
      Job.make (ecn_key use_ecn) (fun rng ->
          let seed = Job.derive_seed rng in
          let d, j, r, marks = ecn_run ~use_ecn ~duration ~seed in
          [
            ("drop", Job.f d); ("jain", Job.f j); ("ratio", Job.f r);
            ("marks", Job.i marks);
          ]))
    [ false; true ]

let render_ecn ppf finished =
  Format.fprintf ppf
    "F. ECN: marking instead of dropping at the RED bottleneck (Section 7 \
     outlook)@.@.";
  let cell on =
    let r = Job.lookup finished (ecn_key on) in
    ( Job.get_float r "drop", Job.get_float r "jain", Job.get_float r "ratio",
      Job.get_int r "marks" )
  in
  let d0, j0, r0, _ = cell false in
  let d1, j1, r1, marks = cell true in
  Table.print ppf
    ~header:[ "mode"; "drop rate %"; "Jain index"; "TCP/TFRC ratio"; "ECN marks" ]
    [
      [ "drop (no ECN)"; Table.f2 (100. *. d0); Table.f3 j0; Table.f2 r0; "-" ];
      [
        "ECN marking";
        Table.f2 (100. *. d1);
        Table.f3 j1;
        Table.f2 r1;
        string_of_int marks;
      ];
    ];
  Format.fprintf ppf
    "(with ECN the early-congestion signal arrives without packet loss: \
     drops %s, fairness preserved: %s)@.@."
    (if d1 < d0 then "fall" else "did NOT fall")
    (if j1 > 0.7 then "yes" else "NO")

(* --- G: smooth AIMD vs equation-based ------------------------------------------ *)

(* Mixed run: 4 standard TCP + 4 smooth-AIMD "TCP" flows. *)
let aimd_mixed ~smooth_config ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.025
      ~queue:(Scenario.scaled_queue `Red ~bandwidth) ()
  in
  let attach config flow =
    let h =
      Scenario.attach_tcp db ~flow
        ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
        ~config
    in
    Tcpsim.Tcp_sender.start h.tcp_sender ~at:(Engine.Rng.float rng 2.);
    h
  in
  let std = List.init 4 (fun i -> attach Tcpsim.Tcp_common.ns_sack (i + 1)) in
  let smooth = List.init 4 (fun i -> attach smooth_config (100 + i)) in
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 3. and t1 = duration in
  let fair = Engine.Units.bps_to_byte_rate bandwidth /. 8. in
  let norm h = Netsim.Flowmon.mean_rate h.Scenario.tcp_recv_mon ~t0 ~t1 /. fair in
  let cov h =
    Stats.Metrics.cov_at_timescale
      (Netsim.Flowmon.series h.Scenario.tcp_send_mon)
      ~t0 ~t1 ~tau:0.5
  in
  ( Scenario.mean (List.map norm std),
    Scenario.mean (List.map norm smooth),
    Scenario.mean (List.map cov smooth) )

let aimd_mixed_key = "ablations/aimd/mixed"
let aimd_tfrc_key = "ablations/aimd/tfrc"

let aimd_jobs ~duration =
  [
    Job.make aimd_mixed_key (fun rng ->
        let seed = Job.derive_seed rng in
        let tcp_norm, aimd_norm, aimd_cov =
          aimd_mixed ~smooth_config:Tcpsim.Tcp_common.aimd_smooth ~duration
            ~seed
        in
        [
          ("tcp_norm", Job.f tcp_norm);
          ("aimd_norm", Job.f aimd_norm);
          ("aimd_cov", Job.f aimd_cov);
        ]);
    (* TFRC reference from the shared harness. *)
    Job.make aimd_tfrc_key (fun rng ->
        let seed = Job.derive_seed rng in
        let tfrc_norm, _, tfrc_cov =
          versus_tcp ~config:(Tfrc.Tfrc_config.default ()) ~duration ~seed
        in
        [ ("tfrc_norm", Job.f tfrc_norm); ("tfrc_cov", Job.f tfrc_cov) ]);
  ]

let render_aimd ppf finished =
  Format.fprintf ppf
    "G. Alternative smooth congestion control: TCP-compatible AIMD(a, 7/8)      vs TFRC ([FHP00], Section 2.1)@.@.";
  let m = Job.lookup finished aimd_mixed_key in
  let t = Job.lookup finished aimd_tfrc_key in
  Table.print ppf
    ~header:[ "contender"; "norm. throughput"; "CoV(0.5s)" ]
    [
      [ "std TCP (control)"; Table.f2 (Job.get_float m "tcp_norm"); "-" ];
      [
        "AIMD(0.31, 7/8)";
        Table.f2 (Job.get_float m "aimd_norm");
        Table.f3 (Job.get_float m "aimd_cov");
      ];
      [
        "TFRC";
        Table.f2 (Job.get_float t "tfrc_norm");
        Table.f3 (Job.get_float t "tfrc_cov");
      ];
    ];
  Format.fprintf ppf
    "(smooth AIMD narrows TCP's oscillations but still reduces on every      loss event; TFRC's CoV stays lowest — the [FHP00] conclusion)@.@."

(* --- Assembly ----------------------------------------------------------------- *)

let jobs ~full =
  let duration = if full then 120. else 45. in
  List.concat
    [
      history_jobs ~duration;
      discount_jobs ();
      rtt_gain_jobs ~duration:(if full then 120. else 40.);
      expedited_jobs ();
      burst_jobs ~duration;
      ecn_jobs ~duration;
      aimd_jobs ~duration;
    ]

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf "Ablations over TFRC's design choices@.@.";
  render_history ppf finished;
  render_discounting ppf finished;
  render_rtt_gain ppf finished;
  render_expedited ppf finished;
  render_burstiness ppf finished;
  render_ecn ppf finished;
  render_aimd ppf finished
