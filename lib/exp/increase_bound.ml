(* Pure closed-form table (Equation 4); a single cheap job. *)
let cases () =
  [
    ("normal (w = w1/sum = 1/6)", Tfrc.Analysis.recent_weight ~n:8);
    ("max history discounting", Tfrc.Analysis.recent_weight_discounted ~n:8 ());
    ("all weight on recent (w = 1)", 1.0);
  ]

let jobs ~full:_ =
  [
    Job.make "tableA1/bound" (fun _rng ->
        [
          ( "rows",
            Job.rows
              (List.map
                 (fun (_, w) ->
                   [
                     w;
                     Tfrc.Analysis.delta_t ~a:100. ~w;
                     Tfrc.Analysis.max_delta_t ~w;
                   ])
                 (cases ())) );
        ]);
  ]

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf
    "Appendix A.1: upper bound on the rate increase (Equation 4), \
     packets/RTT per loss-free RTT@.@.";
  let rows = Job.get_rows (Job.lookup finished "tableA1/bound") "rows" in
  Table.print ppf
    ~header:[ "weighting"; "w"; "dT @ A=100"; "sup dT (bound)" ]
    (List.map2
       (fun (label, _) row ->
         match row with
         | [ w; dt; sup ] -> [ label; Table.f3 w; Table.f3 dt; Table.f3 sup ]
         | _ -> failwith "tableA1: malformed row")
       (cases ()) rows);
  Format.fprintf ppf
    "@.(paper: ~0.12 without discounting, ~0.28 with, ~0.7 even at w=1 — \
     all below TCP's 1 pkt/RTT)@."
