(** Registry of all reproducible experiments: one entry per paper figure
    (plus the Appendix A.1 table). Used by the CLI and the benchmark
    harness, which drive experiments generically through {!Runner}.

    An experiment is a declarative grid: [jobs ~full] describes the cells
    (pure, cheap — no simulation runs), and [render] lays the finished
    results out in the figure's textual format. [render] receives the
    [(key, result)] list in job order plus the same [full]/[seed] the grid
    was built and run with, so it can reconstruct the grid shape. *)

type experiment = {
  id : string;  (** e.g. "fig6" *)
  title : string;
  jobs : full:bool -> Job.t list;
  render :
    full:bool ->
    seed:int ->
    (string * Job.result) list ->
    Format.formatter ->
    unit;
}

val all : experiment list
val find : string -> experiment option
val ids : unit -> string list

(** [grid_id e ~full ~seed] names one concrete grid instantiation, e.g.
    ["fig6.seed42.quick"] — the key under which a checkpoint store for
    this run is filed. Two runs share a grid id exactly when they would
    produce identical cells. *)
val grid_id : experiment -> full:bool -> seed:int -> string
