(** Figure 2: the Average Loss Interval method under idealized periodic
    loss. Link loss rate is 1% before t=6 s, 10% until t=9 s, then 0.5%.
    Reports the current loss interval s0, the estimated average interval,
    the estimated loss event rate p (and sqrt p) and the sender's
    transmission rate over time. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** Raw samples for tests: (time, s0, estimated_interval, p, tx_rate_bytes_s)
    sampled at each sender rate update. *)
val samples :
  ?rtt:float -> duration:float -> unit -> (float * float * float * float * float) list
