type result = {
  sources : int;
  loss_rate : float;
  timescales : float list;
  equivalence : float list;
  cov_tfrc : float list;
  cov_tcp : float list;
}

let timescales = [ 0.5; 1.; 2.; 5.; 10.; 20.; 50. ]

let one ~sources ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.025
      ~queue:
        (Netsim.Dumbbell.Red_q
           (Netsim.Red.params ~min_th:10. ~max_th:50. ~limit_pkts:100 ()))
      ()
  in
  (* Monitored long-duration flows. *)
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config:Tcpsim.Tcp_common.ns_sack
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:(Engine.Rng.float rng 2.);
  let tfrc =
    Scenario.attach_tfrc db ~flow:2
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12)
      ~config:(Tfrc.Tfrc_config.default ())
  in
  Tfrc.Tfrc_sender.start tfrc.tfrc_sender ~at:(Engine.Rng.float rng 2.);
  (* Background ON/OFF UDP sources. *)
  for i = 1 to sources do
    let flow = 100 + i in
    Netsim.Dumbbell.add_flow db ~flow
      ~rtt_base:(Engine.Rng.uniform rng 0.08 0.12);
    Netsim.Dumbbell.set_dst_recv db ~flow ignore;
    let src =
      Traffic.On_off.create (Engine.Sim.runtime sim) (Engine.Rng.split rng) ~flow
        ~on_rate:(Engine.Units.kbps 500.) ~pkt_size:1000 ~mean_on:1.
        ~mean_off:2.
        ~transmit:(Netsim.Dumbbell.src_sender db ~flow)
        ()
    in
    Traffic.On_off.start src ~at:(Engine.Rng.float rng 5.)
  done;
  Engine.Sim.run sim ~until:duration;
  let t0 = duration /. 5. and t1 = duration in
  let eq tau =
    Option.value ~default:0.
      (Stats.Metrics.equivalence_ratio
         (Netsim.Flowmon.series tfrc.tfrc_send_mon)
         (Netsim.Flowmon.series tcp.tcp_send_mon)
         ~t0 ~t1 ~tau)
  in
  let cov mon tau =
    Stats.Metrics.cov_at_timescale (Netsim.Flowmon.series mon) ~t0 ~t1 ~tau
  in
  {
    sources;
    loss_rate = Netsim.Dumbbell.forward_drop_rate db;
    timescales;
    equivalence = List.map eq timescales;
    cov_tfrc = List.map (cov tfrc.tfrc_send_mon) timescales;
    cov_tcp = List.map (cov tcp.tcp_send_mon) timescales;
  }

let counts ~full = if full then [ 50; 60; 100; 130; 150 ] else [ 50; 100; 150 ]
let key sources = Printf.sprintf "fig11_13/%d" sources

let jobs ~full =
  let duration = if full then 2500. else 200. in
  List.map
    (fun sources ->
      Job.make (key sources) (fun rng ->
          let r = one ~sources ~duration ~seed:(Job.derive_seed rng) in
          [
            ("loss_rate", Job.f r.loss_rate);
            ("equivalence", Job.floats r.equivalence);
            ("cov_tfrc", Job.floats r.cov_tfrc);
            ("cov_tcp", Job.floats r.cov_tcp);
          ]))
    (counts ~full)

let render ~full ~seed:_ finished ppf =
  let duration = if full then 2500. else 200. in
  let results =
    List.map
      (fun sources ->
        let r = Job.lookup finished (key sources) in
        {
          sources;
          loss_rate = Job.get_float r "loss_rate";
          timescales;
          equivalence = Job.get_floats r "equivalence";
          cov_tfrc = Job.get_floats r "cov_tfrc";
          cov_tcp = Job.get_floats r "cov_tcp";
        })
      (counts ~full)
  in
  Format.fprintf ppf
    "Figures 11-13: Pareto ON/OFF background traffic, 15 Mb/s RED, one \
     monitored TCP + one TFRC (duration %.0f s)@.@." duration;
  Format.fprintf ppf "Figure 11: loss rate at the bottleneck@.@.";
  Table.print ppf
    ~header:[ "ON/OFF sources"; "loss rate %" ]
    (List.map
       (fun r -> [ string_of_int r.sources; Table.f2 (100. *. r.loss_rate) ])
       results);
  Format.fprintf ppf "@.Figure 12: TFRC/TCP equivalence ratio vs timescale@.@.";
  Table.print ppf
    ~header:
      ("sources \\ tau"
      :: List.map (fun t -> Printf.sprintf "%.1f" t) timescales)
    (List.map
       (fun r ->
         string_of_int r.sources :: List.map Table.f2 r.equivalence)
       results);
  Format.fprintf ppf "@.Figure 13: CoV vs timescale (TFRC | TCP)@.@.";
  Table.print ppf
    ~header:
      ("sources \\ tau"
      :: List.map (fun t -> Printf.sprintf "%.1f" t) timescales)
    (List.map
       (fun r ->
         (string_of_int r.sources ^ " TFRC") :: List.map Table.f2 r.cov_tfrc)
       results
    @ List.map
        (fun r ->
          (string_of_int r.sources ^ " TCP") :: List.map Table.f2 r.cov_tcp)
        results);
  let low = List.hd results and high = List.nth results (List.length results - 1) in
  (* At the heaviest loads both flows send around one packet per RTT — a
     regime the paper itself flags as degenerate (Section 4.3) — and short
     scaled runs give few bins; judge the smoothness claim at the loads
     with meaningful statistics. *)
  let moderate = List.filter (fun r -> r.loss_rate < 0.2) results in
  Format.fprintf ppf
    "@.loss grows with sources: %.2f%% -> %.2f%% (paper: up to ~40%% at 150 \
     sources on 5000 s runs); TFRC smoother than TCP at 1 s timescale under \
     light/moderate load: %s@."
    (100. *. low.loss_rate)
    (100. *. high.loss_rate)
    (if
       List.for_all
         (fun r -> List.nth r.cov_tfrc 1 <= List.nth r.cov_tcp 1)
         moderate
     then "yes"
     else "NO")
