(** Figures 20 and 21 / Appendix A.2: response to persistent congestion.

    Until t=10 every (1/p0)-th packet is dropped; from t=10 every second
    packet is dropped. Figure 20 traces the allowed sending rate through
    the transition (paper: five round-trip times to halve at p0 = 0.01);
    Figure 21 sweeps the initial drop rate p0 and reports the number of
    RTTs of persistent congestion needed to halve the rate (paper: three
    to eight, never fewer than five at low p0). *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [rtts_to_halve ~p0] runs the A.2 scenario and counts feedback rounds
    (RTTs) after t=10 until the allowed rate is half its pre-congestion
    value. Also returns the rate trace. *)
val rtts_to_halve : p0:float -> int * (float * float) list
