(** Figures 3 and 4: oscillations of a single TFRC flow over a
    Dummynet-like bottleneck as a function of the buffer size, with the RTT
    EWMA weight at 0.05. Figure 3 runs without the interpacket-spacing
    adjustment (oscillatory with DropTail); Figure 4 enables the
    sqrt(R0)/M adjustment, damping the oscillations. The printed metric is
    the per-buffer coefficient of variation of the send rate, plus a
    sparkline of the rate evolution. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [oscillation ~delay_gain ~buffer ~duration] returns (CoV of the send
    rate over the second half, mean rate bytes/s); used by tests. *)
val oscillation :
  delay_gain:bool -> buffer:int -> duration:float -> float * float

(** Same with an explicit RTT EWMA gain; used by the ablation bench. *)
val oscillation_with :
  rtt_gain:float -> delay_gain:bool -> buffer:int -> duration:float -> float * float
