type t = {
  sim : Engine.Sim.t;
  sender : Tfrc.Tfrc_sender.t;
  receiver : Tfrc.Tfrc_receiver.t;
}

let create ?config ~rtt ~drop () =
  let config =
    match config with Some c -> c | None -> Tfrc.Tfrc_config.default ()
  in
  let sim = Engine.Sim.create () in
  let one_way = rtt /. 2. in
  (* Forward references broken with a mutable cell: the sender needs a
     transmit function before the receiver exists. *)
  let receiver_cell = ref None in
  let to_receiver pkt =
    if not (drop pkt) then
      ignore
        (Engine.Sim.after sim one_way (fun () ->
             match !receiver_cell with
             | Some r -> Tfrc.Tfrc_receiver.recv r pkt
             | None -> ()))
  in
  let sender = Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_receiver () in
  let to_sender pkt =
    ignore
      (Engine.Sim.after sim one_way (fun () -> Tfrc.Tfrc_sender.recv sender pkt))
  in
  let receiver =
    Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow:1 ~transmit:to_sender ()
  in
  receiver_cell := Some receiver;
  { sim; sender; receiver }

let run t ~until =
  Tfrc.Tfrc_sender.start t.sender ~at:0.;
  Engine.Sim.run t.sim ~until
