(** Figure 8: throughput of individual TFRC and TCP flows over time
    (0.15 s bins) for the 32-flow, 15 Mb/s case of Figure 6, under RED and
    DropTail. The headline: TFRC's per-flow rate is visibly smoother than
    TCP's at the timescales a multimedia user would notice. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
