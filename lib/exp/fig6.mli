(** Figure 6: mean normalized TCP throughput when n TCP and n TFRC flows
    share a bottleneck, over a grid of link rates and flow counts, for
    DropTail and RED queueing. A value of 1.0 means TCP gets exactly its
    fair share while co-existing with TFRC. Also checks the paper's side
    claims: utilization above 90% and TFRC taking roughly the remainder. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

type cell = {
  link_mbps : float;
  total_flows : int;
  norm_tcp : float;  (** mean TCP throughput / fair share *)
  norm_tfrc : float;
  utilization : float;
  drop_rate : float;
}

(** One grid cell; [queue] selects the discipline. *)
val cell :
  queue:[ `Droptail | `Red ] ->
  link_mbps:float ->
  total_flows:int ->
  duration:float ->
  seed:int ->
  cell
