(** Figures 15-17: the paper's live-Internet experiments, reproduced over
    synthetic path profiles (see DESIGN.md, substitution 3 — the sealed
    environment has no transcontinental links).

    Each profile models one of the paper's paths: bottleneck rate, base
    RTT, background web-like load, and the TCP flavor of the far end —
    including the "UMass (Solaris)" pathology, a TCP whose aggressive
    retransmit timer spuriously retransmits and hurts its own throughput.

    - Figure 15: one TFRC vs three TCPs on the "UCL -> ACIRI" profile,
      1 s-binned throughput.
    - Figure 16: TFRC/TCP equivalence ratio vs timescale per profile.
    - Figure 17: CoV per profile (TFRC vs TCP). *)

type profile = {
  name : string;
  bandwidth : float;  (** bits/s *)
  rtt : float;
  queue_pkts : int;
  bg_load : float;  (** fraction of capacity used by web background *)
  tcp_config : Tcpsim.Tcp_common.config;
}

val profiles : profile list

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

type path_result = {
  profile_name : string;
  timescales : float list;
  equivalence : float list;
  cov_tfrc : float list;
  cov_tcp : float list;
  tcp_rate : float;  (** bytes/s *)
  tfrc_rate : float;
  loss_rate : float;
}

val measure_path : profile -> duration:float -> seed:int -> path_result
