(** Figures 9 and 10: long-duration steady-state comparison on the
    "dumbbell" (Section 4.1.2). 16 SACK TCP + 16 TFRC flows, 15 Mb/s RED
    bottleneck, base RTTs uniform in 80-120 ms, starts uniform in 0-10 s.

    - Figure 9: equivalence ratio vs measurement timescale for TFRC/TFRC,
      TCP/TCP and TFRC/TCP pairs, mean of several runs with 90% CI.
    - Figure 10: coefficient of variation of the send rate vs timescale
      for each protocol. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

type curves = {
  timescales : float list;
  tfrc_tfrc : Stats.Ci.t list;
  tcp_tcp : Stats.Ci.t list;
  tfrc_tcp : Stats.Ci.t list;
  cov_tfrc : Stats.Ci.t list;
  cov_tcp : Stats.Ci.t list;
  loss_rate : float;  (** mean bottleneck loss over runs *)
}

val compute : runs:int -> duration:float -> seed:int -> curves
