(** Figures 11-13: behavior under ON/OFF background traffic
    (Section 4.1.3). N Pareto ON/OFF UDP sources (mean ON 1 s at
    500 kbit/s, mean OFF 2 s) load a 15 Mb/s RED bottleneck shared with one
    monitored long-lived TCP and one monitored TFRC flow.

    - Figure 11: bottleneck loss rate vs number of sources.
    - Figure 12: TFRC/TCP equivalence ratio vs timescale per source count.
    - Figure 13: CoV of each monitored flow vs timescale. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

type result = {
  sources : int;
  loss_rate : float;
  timescales : float list;
  equivalence : float list;
  cov_tfrc : float list;
  cov_tcp : float list;
}

val one : sources:int -> duration:float -> seed:int -> result
