(** Validation of the ON/OFF background-traffic model (Section 4.1.3).

    The paper justifies Pareto ON/OFF sources by [WTSW95]: aggregating many
    heavy-tailed ON/OFF sources produces self-similar traffic. This
    experiment estimates the Hurst parameter of the aggregate arrival
    process by the variance-time method for several tail indices, with
    exponential (Poisson-like) sources as the control: heavy tails push H
    toward (3 - shape) / 2, the control stays near 0.5. *)

(** One job per source model (tail index), each estimating H. *)
val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [hurst_of_aggregate ~sources ~shape ~duration ~seed] builds the
    aggregate and estimates H. [shape <= 0.] selects exponential ON/OFF
    durations instead of Pareto (the control). *)
val hurst_of_aggregate :
  sources:int -> shape:float -> duration:float -> seed:int -> float
