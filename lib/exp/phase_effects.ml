let nokia ~delay_gain ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 1.5 in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.015
      ~queue:(Netsim.Dumbbell.Droptail_q 15) ()
  in
  let n_tfrc = 6 in
  for i = 1 to n_tfrc do
    let h =
      Scenario.attach_tfrc db ~flow:(100 + i)
        ~rtt_base:(Engine.Rng.uniform rng 0.068 0.072)
        ~config:(Tfrc.Tfrc_config.default ~delay_gain ())
    in
    Tfrc.Tfrc_sender.start h.tfrc_sender ~at:(Engine.Rng.float rng 1.)
  done;
  let tcp =
    Scenario.attach_tcp db ~flow:1
      ~rtt_base:(Engine.Rng.uniform rng 0.068 0.072)
      ~config:Tcpsim.Tcp_common.freebsd_coarse
  in
  Tcpsim.Tcp_sender.start tcp.tcp_sender ~at:(Engine.Rng.float rng 1.);
  Engine.Sim.run sim ~until:duration;
  let fair =
    Engine.Units.bps_to_byte_rate bandwidth /. float_of_int (n_tfrc + 1)
  in
  Netsim.Flowmon.mean_rate tcp.tcp_recv_mon ~t0:(duration /. 3.) ~t1:duration
  /. fair

(* 4 TCP flows; returns (Jain index, bottleneck utilization). *)
let tcp_phase_full ~queue ~identical_rtt ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 10. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.02
      ~queue:(Scenario.scaled_queue queue ~bandwidth) ()
  in
  let handles =
    List.init 4 (fun i ->
        let rtt_base =
          if identical_rtt then 0.1 else Engine.Rng.uniform rng 0.08 0.12
        in
        let h =
          Scenario.attach_tcp db ~flow:(i + 1) ~rtt_base
            ~config:Tcpsim.Tcp_common.ns_sack
        in
        (* Identical start times too in the phase-locked case. *)
        let at = if identical_rtt then 0.1 else Engine.Rng.float rng 2. in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at;
        h)
  in
  Engine.Sim.run sim ~until:duration;
  let rates =
    List.map
      (fun h ->
        Netsim.Flowmon.mean_rate h.Scenario.tcp_recv_mon ~t0:(duration /. 3.)
          ~t1:duration)
      handles
  in
  ( Stats.Fairness.jain rates,
    Netsim.Link.utilization (Netsim.Dumbbell.forward_link db) ~duration )

let tcp_phase ~queue ~identical_rtt ~duration ~seed =
  fst (tcp_phase_full ~queue ~identical_rtt ~duration ~seed)

let nokia_key i = Printf.sprintf "phase/nokia/%d" i
let phase_combos = [ ("DropTail", `Droptail, true); ("DropTail", `Droptail, false);
                     ("RED", `Red, true); ("RED", `Red, false) ]

let phase_key queue identical =
  Printf.sprintf "phase/lock/%s/%s" queue
    (if identical then "identical" else "randomized")

let jobs ~full =
  let duration = if full then 300. else 90. in
  List.init 3 (fun i ->
      Job.make (nokia_key i) (fun rng ->
          (* Both columns run from the same derived seed, as the original
             table reused one seed per row; the row reports which seed. *)
          let s = Job.derive_seed rng in
          [
            ("seed", Job.i s);
            ("plain", Job.f (nokia ~delay_gain:false ~duration ~seed:s));
            ("adjusted", Job.f (nokia ~delay_gain:true ~duration ~seed:s));
          ]))
  @ List.map
      (fun (qlabel, queue, identical) ->
        Job.make (phase_key qlabel identical) (fun rng ->
            let jain, util =
              tcp_phase_full ~queue ~identical_rtt:identical ~duration
                ~seed:(Job.derive_seed rng)
            in
            [ ("jain", Job.f jain); ("util", Job.f util) ]))
      phase_combos

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf "Section 4.3's phase effects over DropTail queues@.@.";
  Format.fprintf ppf
    "1. The Nokia T1 scenario: 6 TFRC + 1 coarse-clock TCP on a loaded 1.5 \
     Mb/s DropTail link. The TCP flow's share is extremely sensitive to \
     initial conditions — the signature of a phase effect:@.@.";
  let rows =
    List.init 3 (fun i ->
        let r = Job.lookup finished (nokia_key i) in
        [
          string_of_int (Job.get_int r "seed");
          Table.f2 (Job.get_float r "plain");
          Table.f2 (Job.get_float r "adjusted");
        ])
  in
  Table.print ppf
    ~header:[ "seed"; "TCP share, no adjustment"; "TCP share, with adjustment" ]
    rows;
  Format.fprintf ppf
    "(the paper's real-world fix — the Section 3.4 interpacket-spacing \
     adjustment picking up 'small queuing variations downstream' — depends \
     on path noise that a clean simulator does not generate, so here the \
     adjustment alone does not rescue the coarse-clock TCP; the wild \
     run-to-run variance is the phase effect itself)@.@.";
  Format.fprintf ppf
    "2. Phase locking between identical TCP flows (why the paper randomizes \
     RTTs)@.@.";
  let rows =
    List.map
      (fun (qlabel, _, identical) ->
        let r = Job.lookup finished (phase_key qlabel identical) in
        [
          qlabel;
          (if identical then "identical" else "randomized");
          Table.f3 (Job.get_float r "jain");
          Table.f3 (Job.get_float r "util");
        ])
      phase_combos
  in
  Table.print ppf
    ~header:[ "queue"; "RTTs/starts"; "Jain index"; "utilization" ]
    rows;
  Format.fprintf ppf
    "@.(identical deterministic flows move in lockstep — trivially 'fair' \
     but synchronized, the degenerate symmetry real networks never have; \
     with randomized RTTs DropTail shows RTT-dependent unfairness that \
     RED's randomization largely removes — hence the paper's U(80,120) ms \
     RTT draws and RED-based headline experiments)@."
