type experiment = {
  id : string;
  title : string;
  run : full:bool -> seed:int -> Format.formatter -> unit;
}

let all =
  [
    {
      id = "fig2";
      title = "Average Loss Interval method under idealized periodic loss";
      run = Fig2.run;
    };
    {
      id = "fig3";
      title = "Oscillations without interpacket-spacing adjustment (and fig4 with)";
      run = Fig3_4.run;
    };
    {
      id = "fig5";
      title = "Loss-event fraction vs Bernoulli loss probability";
      run = Fig5.run;
    };
    {
      id = "fig6";
      title = "Normalized TCP throughput vs link rate and flow count";
      run = Fig6.run;
    };
    {
      id = "fig7";
      title = "Per-flow normalized throughput scatter at 15 Mb/s RED";
      run = Fig7.run;
    };
    {
      id = "fig8";
      title = "Per-flow throughput over time at 0.15 s bins";
      run = Fig8.run;
    };
    {
      id = "fig9";
      title = "Equivalence ratio and CoV vs timescale (steady state; fig10 too)";
      run = Fig9_10.run;
    };
    {
      id = "fig11";
      title = "ON/OFF background traffic: loss, equivalence, CoV (figs 11-13)";
      run = Fig11_13.run;
    };
    {
      id = "fig14";
      title = "Queue dynamics: 40 TCP vs 40 TFRC flows";
      run = Fig14.run;
    };
    {
      id = "fig15";
      title = "Emulated Internet paths: fairness and smoothness (figs 15-17)";
      run = Fig15_17.run;
    };
    {
      id = "fig18";
      title = "Loss predictor quality vs history size and weighting";
      run = Fig18.run;
    };
    {
      id = "fig19";
      title = "Rate increase after congestion ends (Appendix A.1)";
      run = Fig19.run;
    };
    {
      id = "fig20";
      title = "Rate halving under persistent congestion (figs 20-21, A.2)";
      run = Fig20_21.run;
    };
    {
      id = "tableA1";
      title = "Closed-form increase bound (Equation 4)";
      run = Increase_bound.run;
    };
    {
      id = "variants";
      title = "TFRC vs TCP flavors and timer granularities (Section 4.1)";
      run = Variants.run;
    };
    {
      id = "phase";
      title = "Phase effects over DropTail and the interpacket-spacing fix (Section 4.3)";
      run = Phase_effects.run;
    };
    {
      id = "traffic-model";
      title = "Self-similarity of the ON/OFF background model ([WTSW95])";
      run = Traffic_model.run;
    };
    {
      id = "resilience";
      title =
        "Chaos matrix: outages, flapping, reordering, feedback blackouts, \
         route changes";
      run = Resilience.run;
    };
    {
      id = "ablations";
      title =
        "Design-choice ablations: history, discounting, RTT gain, feedback,          burstiness, ECN";
      run = Ablations.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all
