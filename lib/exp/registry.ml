type experiment = {
  id : string;
  title : string;
  jobs : full:bool -> Job.t list;
  render :
    full:bool ->
    seed:int ->
    (string * Job.result) list ->
    Format.formatter ->
    unit;
}

let all =
  [
    {
      id = "fig2";
      title = "Average Loss Interval method under idealized periodic loss";
      jobs = Fig2.jobs;
      render = Fig2.render;
    };
    {
      id = "fig3";
      title = "Oscillations without interpacket-spacing adjustment (and fig4 with)";
      jobs = Fig3_4.jobs;
      render = Fig3_4.render;
    };
    {
      id = "fig5";
      title = "Loss-event fraction vs Bernoulli loss probability";
      jobs = Fig5.jobs;
      render = Fig5.render;
    };
    {
      id = "fig6";
      title = "Normalized TCP throughput vs link rate and flow count";
      jobs = Fig6.jobs;
      render = Fig6.render;
    };
    {
      id = "fig7";
      title = "Per-flow normalized throughput scatter at 15 Mb/s RED";
      jobs = Fig7.jobs;
      render = Fig7.render;
    };
    {
      id = "fig8";
      title = "Per-flow throughput over time at 0.15 s bins";
      jobs = Fig8.jobs;
      render = Fig8.render;
    };
    {
      id = "fig9";
      title = "Equivalence ratio and CoV vs timescale (steady state; fig10 too)";
      jobs = Fig9_10.jobs;
      render = Fig9_10.render;
    };
    {
      id = "fig11";
      title = "ON/OFF background traffic: loss, equivalence, CoV (figs 11-13)";
      jobs = Fig11_13.jobs;
      render = Fig11_13.render;
    };
    {
      id = "fig14";
      title = "Queue dynamics: 40 TCP vs 40 TFRC flows";
      jobs = Fig14.jobs;
      render = Fig14.render;
    };
    {
      id = "fig15";
      title = "Emulated Internet paths: fairness and smoothness (figs 15-17)";
      jobs = Fig15_17.jobs;
      render = Fig15_17.render;
    };
    {
      id = "fig18";
      title = "Loss predictor quality vs history size and weighting";
      jobs = Fig18.jobs;
      render = Fig18.render;
    };
    {
      id = "fig19";
      title = "Rate increase after congestion ends (Appendix A.1)";
      jobs = Fig19.jobs;
      render = Fig19.render;
    };
    {
      id = "fig20";
      title = "Rate halving under persistent congestion (figs 20-21, A.2)";
      jobs = Fig20_21.jobs;
      render = Fig20_21.render;
    };
    {
      id = "tableA1";
      title = "Closed-form increase bound (Equation 4)";
      jobs = Increase_bound.jobs;
      render = Increase_bound.render;
    };
    {
      id = "variants";
      title = "TFRC vs TCP flavors and timer granularities (Section 4.1)";
      jobs = Variants.jobs;
      render = Variants.render;
    };
    {
      id = "phase";
      title = "Phase effects over DropTail and the interpacket-spacing fix (Section 4.3)";
      jobs = Phase_effects.jobs;
      render = Phase_effects.render;
    };
    {
      id = "traffic-model";
      title = "Self-similarity of the ON/OFF background model ([WTSW95])";
      jobs = Traffic_model.jobs;
      render = Traffic_model.render;
    };
    {
      id = "resilience";
      title =
        "Chaos matrix: outages, flapping, reordering, feedback blackouts, \
         route changes";
      jobs = Resilience.jobs;
      render = Resilience.render;
    };
    {
      id = "topology";
      title =
        "Failure impact on a routed WAN: partition vs re-route, static \
         analysis vs chaos-layer dynamics";
      jobs = Topo_impact.jobs;
      render = Topo_impact.render;
    };
    {
      id = "ablations";
      title =
        "Design-choice ablations: history, discounting, RTT gain, feedback,          burstiness, ECN";
      jobs = Ablations.jobs;
      render = Ablations.render;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all
let ids () = List.map (fun e -> e.id) all

(* Identity of one concrete grid instantiation — everything that determines
   the cell set and each cell's result. A checkpoint written under one
   grid id must never be resumed under another (different seed or scale =
   different results), so the id doubles as the checkpoint filename. *)
let grid_id e ~full ~seed =
  Printf.sprintf "%s.seed%d.%s" e.id seed (if full then "full" else "quick")
