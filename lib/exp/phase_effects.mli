(** Section 4.3's "apparent phase effect": on a heavily loaded DropTail
    link shared by several TFRC flows and one TCP, TFRC's perfectly smooth
    spacing can interact with a persistently full buffer so that bursty TCP
    loses disproportionately; the interpacket-spacing adjustment introduces
    enough short-term variation to break the phase and restore fairness
    ("Adding the interpacket spacing adjustment ... fairness improved
    greatly").

    Also demonstrates the classic DropTail phase-locking between identical
    TCP flows, and that RED or RTT randomization removes it. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [nokia ~delay_gain ~duration ~seed] is the T1 scenario: 6 TFRC + 1 TCP
    on 1.5 Mb/s DropTail; returns the TCP flow's share of its fair share. *)
val nokia : delay_gain:bool -> duration:float -> seed:int -> float

(** [tcp_phase ~queue ~identical_rtt ~duration ~seed] runs 4 TCP flows and
    returns the Jain index of their throughputs. *)
val tcp_phase :
  queue:[ `Droptail | `Red ] ->
  identical_rtt:bool ->
  duration:float ->
  seed:int ->
  float
