type result = {
  label : string;
  utilization : float;
  drop_rate : float;
  queue_mean : float;
  queue_sd : float;
  queue_series : float array;
}

let one ~proto ~duration ~seed =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let bandwidth = Engine.Units.mbps 15. in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth ~delay:0.011
      ~queue:(Netsim.Dumbbell.Droptail_q 250) ()
  in
  (* 40 long-lived flows, starts spread over the first 20 s; round-trip
     times around 45 ms as in the paper. *)
  for i = 1 to 40 do
    let rtt_base = Engine.Rng.uniform rng 0.04 0.05 in
    let at = Engine.Rng.float rng 20. in
    match proto with
    | `Tcp ->
        let h =
          Scenario.attach_tcp db ~flow:i ~rtt_base
            ~config:Tcpsim.Tcp_common.ns_sack
        in
        Tcpsim.Tcp_sender.start h.tcp_sender ~at
    | `Tfrc ->
        let h =
          Scenario.attach_tfrc db ~flow:i ~rtt_base
            ~config:(Tfrc.Tfrc_config.default ())
        in
        Tfrc.Tfrc_sender.start h.tfrc_sender ~at
  done;
  (* ~20% of the link as short-lived background TCP: arrival rate sized so
     rate * mean_size * pktsize ~= 0.2 * capacity. *)
  let web =
    Traffic.Web_mix.create db (Engine.Rng.split rng) ~first_flow_id:2000
      ~arrival_rate:(0.2 *. bandwidth /. 8. /. 1000. /. 20.)
      ~mean_size:20. ~rtt_base:0.045 ()
  in
  Traffic.Web_mix.start web ~at:0.;
  (* Light reverse-path traffic: a CBR stream at ~5% of capacity. *)
  Netsim.Dumbbell.add_flow db ~flow:9999 ~rtt_base:0.045;
  Netsim.Dumbbell.set_src_recv db ~flow:9999 ignore;
  let rev =
    Traffic.Cbr.create (Engine.Sim.runtime sim) ~flow:9999 ~rate:(0.05 *. bandwidth) ~pkt_size:1000
      ~transmit:(Netsim.Dumbbell.dst_sender db ~flow:9999) ()
  in
  Traffic.Cbr.start rev ~at:0.;
  let sampler =
    Netsim.Flowmon.Queue_sampler.start (Engine.Sim.runtime sim) ~period:0.1
      ~queue:(Netsim.Link.queue (Netsim.Dumbbell.forward_link db))
  in
  Engine.Sim.run sim ~until:duration;
  let t0 = 20. and t1 = duration in
  let qs =
    Stats.Time_series.events (Netsim.Flowmon.Queue_sampler.series sampler)
    |> Array.to_list
    |> List.filter (fun (t, _) -> t >= t0 && t < t1)
    |> List.map snd |> Array.of_list
  in
  let r = Stats.Running.of_array qs in
  {
    label = (match proto with `Tcp -> "TCP" | `Tfrc -> "TFRC");
    utilization =
      Netsim.Link.utilization (Netsim.Dumbbell.forward_link db)
        ~duration:(t1 -. 0.)
      /. ((t1 -. 0.) /. t1);
    drop_rate = Netsim.Dumbbell.forward_drop_rate db;
    queue_mean = Stats.Running.mean r;
    queue_sd = Stats.Running.stddev r;
    queue_series = qs;
  }

let key = function `Tcp -> "fig14/tcp" | `Tfrc -> "fig14/tfrc"

let jobs ~full =
  let duration = if full then 60. else 30. in
  List.map
    (fun proto ->
      Job.make (key proto) (fun rng ->
          let r = one ~proto ~duration ~seed:(Job.derive_seed rng) in
          [
            ("label", Job.s r.label);
            ("utilization", Job.f r.utilization);
            ("drop_rate", Job.f r.drop_rate);
            ("queue_mean", Job.f r.queue_mean);
            ("queue_sd", Job.f r.queue_sd);
            ("queue_series", Job.floats (Array.to_list r.queue_series));
          ]))
    [ `Tcp; `Tfrc ]

let render ~full:_ ~seed:_ finished ppf =
  let result_of proto =
    let r = Job.lookup finished (key proto) in
    {
      label = Job.get_str r "label";
      utilization = Job.get_float r "utilization";
      drop_rate = Job.get_float r "drop_rate";
      queue_mean = Job.get_float r "queue_mean";
      queue_sd = Job.get_float r "queue_sd";
      queue_series = Array.of_list (Job.get_floats r "queue_series");
    }
  in
  let tcp = result_of `Tcp in
  let tfrc = result_of `Tfrc in
  Format.fprintf ppf
    "Figure 14: queue dynamics, 40 long-lived flows + 20%% web background, \
     15 Mb/s DropTail@.@.";
  Table.print ppf
    ~header:[ "protocol"; "utilization"; "drop rate %"; "queue mean"; "queue sd" ]
    (List.map
       (fun r ->
         [
           r.label;
           Table.f3 r.utilization;
           Table.f2 (100. *. r.drop_rate);
           Table.f2 r.queue_mean;
           Table.f2 r.queue_sd;
         ])
       [ tcp; tfrc ]);
  let spark r =
    Format.fprintf ppf "%-5s queue: %s@." r.label
      (Table.sparkline
         (Array.init (min 100 (Array.length r.queue_series)) (fun i ->
              r.queue_series.(i * Array.length r.queue_series / 100))))
  in
  Format.fprintf ppf "@.";
  spark tcp;
  spark tfrc;
  Format.fprintf ppf
    "@.(paper: both ~99%% utilization; drop rate TCP 4.9%% vs TFRC 3.5%%; \
     TFRC does not degrade queue dynamics)@."
