let cell ~tcp_config ~duration ~seed =
  let bandwidth = Engine.Units.mbps 15. in
  let params =
    {
      (Scenario.default_mixed ()) with
      bandwidth;
      queue = Scenario.scaled_queue `Red ~bandwidth;
      n_tcp = 4;
      n_tfrc = 4;
      duration;
      warmup = duration /. 3.;
      seed;
      tcp_config;
    }
  in
  let r = Scenario.run_mixed params in
  let tcp, tfrc = Scenario.normalized_throughputs r in
  (Scenario.mean tcp, Scenario.mean tfrc, Stats.Fairness.jain (tcp @ tfrc))

let cases () =
  [
    ("Sack, fine timers", Tcpsim.Tcp_common.default ());
    ("NewReno, fine timers", Tcpsim.Tcp_common.default ~variant:Tcpsim.Tcp_common.Newreno ());
    ("Reno, fine timers", Tcpsim.Tcp_common.default ~variant:Tcpsim.Tcp_common.Reno ());
    ("Tahoe, fine timers", Tcpsim.Tcp_common.default ~variant:Tcpsim.Tcp_common.Tahoe ());
    ( "Sack, 100 ms clock",
      Tcpsim.Tcp_common.default ~granularity:0.1 ~min_rto:0.4 () );
    ( "Reno, 500 ms clock (BSD)",
      Tcpsim.Tcp_common.default ~variant:Tcpsim.Tcp_common.Reno
        ~granularity:0.5 ~min_rto:1.0 () );
    ("Reno, aggressive RTO (Solaris)", Tcpsim.Tcp_common.solaris_aggressive);
  ]

let key i = Printf.sprintf "variants/%d" i

let jobs ~full =
  let duration = if full then 120. else 50. in
  List.mapi
    (fun i (_, tcp_config) ->
      Job.make (key i) (fun rng ->
          let tcp, tfrc, jain =
            cell ~tcp_config ~duration ~seed:(Job.derive_seed rng)
          in
          [ ("tcp", Job.f tcp); ("tfrc", Job.f tfrc); ("jain", Job.f jain) ]))
    (cases ())

let render ~full:_ ~seed:_ finished ppf =
  Format.fprintf ppf
    "TCP flavors and timer granularities vs TFRC (4 + 4 on 15 Mb/s RED)@.@.";
  let rows =
    List.mapi
      (fun i (label, _) ->
        let r = Job.lookup finished (key i) in
        [
          label;
          Table.f2 (Job.get_float r "tcp");
          Table.f2 (Job.get_float r "tfrc");
          Table.f3 (Job.get_float r "jain");
        ])
      (cases ())
  in
  Table.print ppf
    ~header:[ "TCP flavor"; "TCP norm"; "TFRC norm"; "Jain (all flows)" ]
    rows;
  Format.fprintf ppf
    "@.(paper: Sack with fine timers competes best; conservative-clock and \
     buggy-RTO TCPs lose ground to TFRC through their own timeouts, not \
     TFRC's aggression)@."
