type cell = {
  link_mbps : float;
  total_flows : int;
  norm_tcp : float;
  norm_tfrc : float;
  utilization : float;
  drop_rate : float;
}

let cell ~queue ~link_mbps ~total_flows ~duration ~seed =
  let bandwidth = Engine.Units.mbps link_mbps in
  let n = max 1 (total_flows / 2) in
  let params =
    {
      (Scenario.default_mixed ()) with
      bandwidth;
      queue = Scenario.scaled_queue queue ~bandwidth;
      n_tcp = n;
      n_tfrc = n;
      duration;
      warmup = duration /. 3.;
      start_spread = Float.min 10. (duration /. 8.);
      seed;
    }
  in
  let r = Scenario.run_mixed params in
  let tcp_norm, tfrc_norm = Scenario.normalized_throughputs r in
  {
    link_mbps;
    total_flows;
    norm_tcp = Scenario.mean tcp_norm;
    norm_tfrc = Scenario.mean tfrc_norm;
    utilization = r.utilization;
    drop_rate = r.drop_rate;
  }

let grid ~full =
  let links = if full then [ 1.; 2.; 4.; 8.; 16.; 32.; 64. ] else [ 1.; 4.; 16.; 64. ] in
  let flows = if full then [ 2; 8; 32; 128 ] else [ 2; 8; 32 ] in
  (links, flows)

let queue_name = function `Droptail -> "droptail" | `Red -> "red"

let key ~queue ~link_mbps ~total_flows =
  Printf.sprintf "fig6/%s/%g/%d" (queue_name queue) link_mbps total_flows

let queues = [ `Droptail; `Red ]

let jobs ~full =
  let duration = if full then 90. else 30. in
  let links, flows = grid ~full in
  List.concat_map
    (fun queue ->
      List.concat_map
        (fun total_flows ->
          List.map
            (fun link_mbps ->
              Job.make (key ~queue ~link_mbps ~total_flows) (fun rng ->
                  let c =
                    cell ~queue ~link_mbps ~total_flows ~duration
                      ~seed:(Job.derive_seed rng)
                  in
                  [
                    ("norm_tcp", Job.f c.norm_tcp);
                    ("norm_tfrc", Job.f c.norm_tfrc);
                    ("utilization", Job.f c.utilization);
                    ("drop_rate", Job.f c.drop_rate);
                  ]))
            links)
        flows)
    queues

let render ~full ~seed:_ finished ppf =
  Format.fprintf ppf
    "Figure 6: normalized TCP throughput, n TCP + n TFRC sharing the \
     bottleneck (1.0 = fair share)@.@.";
  let links, flows = grid ~full in
  let surface ~queue ~title =
    Format.fprintf ppf "%s@.@." title;
    let cells =
      List.map
        (fun total_flows ->
          List.map
            (fun link_mbps ->
              Job.lookup finished (key ~queue ~link_mbps ~total_flows))
            links)
        flows
    in
    let header =
      "flows \\ Mb/s" :: List.map (fun l -> Printf.sprintf "%.0f" l) links
    in
    let rows =
      List.map2
        (fun total_flows row ->
          string_of_int total_flows
          :: List.map (fun r -> Table.f2 (Job.get_float r "norm_tcp")) row)
        flows cells
    in
    Table.print ppf ~header rows;
    let all = List.concat cells in
    let mean_util =
      Scenario.mean (List.map (fun r -> Job.get_float r "utilization") all)
    in
    let n_above_90 =
      List.length
        (List.filter (fun r -> Job.get_float r "utilization" > 0.9) all)
    in
    Format.fprintf ppf
      "mean utilization %.3f; %d/%d cells above 90%%; mean normalized TFRC %.2f@.@."
      mean_util n_above_90 (List.length all)
      (Scenario.mean (List.map (fun r -> Job.get_float r "norm_tfrc") all));
    all
  in
  let dt =
    surface ~queue:`Droptail
      ~title:"DropTail queueing (normalized mean TCP throughput)"
  in
  let red =
    surface ~queue:`Red ~title:"RED queueing (normalized mean TCP throughput)"
  in
  let overall =
    Scenario.mean (List.map (fun r -> Job.get_float r "norm_tcp") (dt @ red))
  in
  Format.fprintf ppf
    "overall mean normalized TCP throughput: %.2f (paper: close to fair \
     share across the grid, TCP suffering somewhat where its window is \
     smallest)@."
    overall
