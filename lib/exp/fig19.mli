(** Figure 19 / Appendix A.1: the rate-increase bound. A TFRC flow sees
    every 100th packet dropped until t=10 s, then no further loss. With a
    fixed RTT and the simple control equation the allowed rate should stay
    flat until the open interval exceeds the average (~t=10.75 in the
    paper), then increase by ~0.12 packets/RTT per RTT, accelerating to
    ~0.28 when history discounting kicks in. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** (time, allowed rate in pkts/RTT) samples at each sender rate update,
    plus the RTT used. *)
val trace : duration:float -> unit -> (float * float) list * float
