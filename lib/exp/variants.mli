(** Section 4.1's side study: TFRC coexisting with different TCP flavors
    and retransmit-timer granularities ("Although Sack TCP with relatively
    low timer granularity does better against TFRC than the alternatives,
    their performance is still quite respectable"). 4 TCP of the given
    flavor + 4 TFRC share a 15 Mb/s RED bottleneck. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
