(* Loss traces are lists of loss-interval lengths. Each environment mirrors
   a network condition from the paper's Internet experiment set. *)

let bernoulli_trace rng ~p ~packets =
  let out = ref [] and run = ref 0 and n = ref 0 in
  while !n < packets do
    incr n;
    incr run;
    if Engine.Rng.bool rng ~p then begin
      out := float_of_int !run :: !out;
      run := 0
    end
  done;
  List.rev !out

let gilbert_trace rng ~p_gb ~p_bg ~loss_bad ~packets =
  let out = ref [] and run = ref 0 and n = ref 0 and bad = ref false in
  while !n < packets do
    incr n;
    incr run;
    (if !bad then begin
       if Engine.Rng.bool rng ~p:p_bg then bad := false
     end
     else if Engine.Rng.bool rng ~p:p_gb then bad := true);
    let p = if !bad then loss_bad else 0.001 in
    if Engine.Rng.bool rng ~p then begin
      out := float_of_int !run :: !out;
      run := 0
    end
  done;
  List.rev !out

let switching_trace rng ~p1 ~p2 ~switch_every ~packets =
  let out = ref [] and run = ref 0 and n = ref 0 in
  while !n < packets do
    incr n;
    incr run;
    let phase = !n / switch_every mod 2 in
    let p = if phase = 0 then p1 else p2 in
    if Engine.Rng.bool rng ~p then begin
      out := float_of_int !run :: !out;
      run := 0
    end
  done;
  List.rev !out

let standard_traces ~seed ~packets_per_trace =
  (* Environments span the paper's Internet loss range (~0.1%% to 5%%). *)
  let rng = Engine.Rng.create ~seed in
  let p = packets_per_trace in
  [
    bernoulli_trace (Engine.Rng.split rng) ~p:0.002 ~packets:p;
    bernoulli_trace (Engine.Rng.split rng) ~p:0.005 ~packets:p;
    bernoulli_trace (Engine.Rng.split rng) ~p:0.01 ~packets:p;
    bernoulli_trace (Engine.Rng.split rng) ~p:0.03 ~packets:p;
    gilbert_trace (Engine.Rng.split rng) ~p_gb:0.002 ~p_bg:0.1 ~loss_bad:0.05
      ~packets:p;
    switching_trace (Engine.Rng.split rng) ~p1:0.005 ~p2:0.02
      ~switch_every:(p / 10) ~packets:p;
  ]

(* Drive the estimator over a trace: before observing intervals i..i+3,
   predict p_hat = 1/average; the realized "immediate future" loss rate is
   measured over the next four intervals (a single interval is far too
   noisy a target to compare predictors on). *)
let future_window = 4

let evaluate ~history ~constant_weights ~traces =
  let errors = Stats.Running.create () in
  List.iter
    (fun trace ->
      let arr = Array.of_list trace in
      let est =
        Tfrc.Loss_intervals.create ~n:history ~discounting:false
          ~constant_weights ()
      in
      Array.iteri
        (fun i interval ->
          (if i + future_window <= Array.length arr then
             match Tfrc.Loss_intervals.average est with
             | Some avg when avg > 0. ->
                 let predicted = 1. /. avg in
                 let future = ref 0. in
                 for k = i to i + future_window - 1 do
                   future := !future +. arr.(k)
                 done;
                 let actual = float_of_int future_window /. Float.max 1. !future in
                 Stats.Running.add errors (Float.abs (predicted -. actual))
             | _ -> ());
          Tfrc.Loss_intervals.record_interval est ~length:interval)
        arr)
    traces;
  (Stats.Running.mean errors, Stats.Running.stddev errors)

let sizes = [ 2; 4; 8; 16; 32 ]

(* A single job: every (history, weighting) cell must score the same six
   traces for the comparison to be paired, so the grid shares one RNG
   stream and one worker. *)
let jobs ~full =
  let packets = if full then 2_000_000 else 300_000 in
  [
    Job.make "fig18/grid" (fun rng ->
        let traces =
          standard_traces ~seed:(Job.derive_seed rng) ~packets_per_trace:packets
        in
        let row constant =
          Job.rows
            (List.map
               (fun history ->
                 let mean, sd =
                   evaluate ~history ~constant_weights:constant ~traces
                 in
                 [ float_of_int history; mean; sd ])
               sizes)
        in
        [ ("const", row true); ("decr", row false) ]);
  ]

let render ~full:_ ~seed:_ finished ppf =
  let r = Job.lookup finished "fig18/grid" in
  let unpack field =
    List.map
      (function
        | [ h; m; sd ] -> (int_of_float h, m, sd)
        | _ -> failwith "fig18: malformed row")
      (Job.get_rows r field)
  in
  let const = unpack "const" and decr = unpack "decr" in
  Format.fprintf ppf
    "Figure 18: loss predictor quality vs history size (mean |error| and \
     stddev of predicted vs realized loss rate)@.@.";
  Table.print ppf
    ~header:
      [ "history"; "const: err"; "const: sd"; "decr: err"; "decr: sd" ]
    (List.map2
       (fun (h, m1, s1) (_, m2, s2) ->
         [ string_of_int h; Table.f4 m1; Table.f4 s1; Table.f4 m2; Table.f4 s2 ])
       const decr);
  let err8_decr =
    let _, m, _ = List.nth decr 2 in
    m
  in
  let err2_decr =
    let _, m, _ = List.nth decr 0 in
    m
  in
  Format.fprintf ppf
    "@.(paper: error shrinks with history size and flattens by n=8; n=8 \
     with decreasing weights is the chosen operating point) n=8 err %.4f \
     vs n=2 err %.4f: improved %s@."
    err8_decr err2_decr
    (if err8_decr < err2_decr then "yes" else "NO")
