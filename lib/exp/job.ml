(* A job is one cell of an experiment grid: a stable key naming the cell
   plus a closure from an RNG to a serializable result. Keeping results as
   data (not formatter side effects) is what lets the runner execute cells
   on worker domains and lay them out later in the figure's original
   textual order. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of value list

type result = (string * value) list

(* A per-cell execution budget, enforced cooperatively by [Engine.Sim.run]
   when the supervised runner installs it around the job (see Exp.Runner).
   [max_events] meters executed simulator events across the whole cell;
   [max_time] caps each Sim.run's virtual clock. *)
type budget = { max_events : int option; max_time : float option }

type t = { key : string; run : Engine.Rng.t -> result; budget : budget option }

let make ?budget key run = { key; run; budget }

(* Jobs that need an integer seed for sub-components (e.g. Scenario.run_mixed
   takes [seed : int]) derive one from their keyed stream, so the value still
   depends only on (experiment seed, job key). *)
let derive_seed rng = Engine.Rng.bits32 rng

(* --- Constructors -------------------------------------------------------- *)

let b v = Bool v
let i v = Int v
let f v = Float v
let s v = Str v
let floats l = List (List.map (fun x -> Float x) l)
let pairs l = List (List.map (fun (x, y) -> List [ Float x; Float y ]) l)
let rows ll = List (List.map (fun r -> List (List.map (fun x -> Float x) r)) ll)
let strs l = List (List.map (fun x -> Str x) l)

(* --- Missing-cell placeholders ------------------------------------------- *)

(* A cell the supervised runner gave up on (timed out / crashed after
   retries) renders as a placeholder result rather than aborting the whole
   figure: the runner prints an explicit MISSING(key: reason) line, and the
   typed accessors below return inert hole values (nan, 0, "", []) so
   renderers lay the surviving cells out around the gap. *)

let missing_field = "$missing"
let missing ~reason = [ (missing_field, Str reason) ]

let missing_reason (r : result) =
  match r with
  | [ (k, Str reason) ] when String.equal k missing_field -> Some reason
  | _ -> None

let is_missing r = missing_reason r <> None

(* --- Accessors ----------------------------------------------------------- *)

(* All raising, with the field name in the message: a missing or mistyped
   field is a bug in the experiment's job/render pairing, not a runtime
   condition to recover from. The one exception: placeholder results for
   cells the supervised runner gave up on read as hole values instead, so
   renderers degrade to printed gaps rather than exceptions. *)

let bad key what = failwith (Printf.sprintf "Job: field %S %s" key what)

let get r key =
  match List.assoc_opt key r with
  | Some v -> v
  | None -> bad key "missing from result"

let get_float r key =
  if is_missing r then Float.nan
  else
    match get r key with
    | Float f -> f
    | Int i -> float_of_int i
    | _ -> bad key "is not a float"

let get_int r key =
  if is_missing r then 0
  else match get r key with Int i -> i | _ -> bad key "is not an int"

let get_str r key =
  if is_missing r then "MISSING"
  else match get r key with Str s -> s | _ -> bad key "is not a string"

let get_bool r key =
  if is_missing r then false
  else match get r key with Bool b -> b | _ -> bad key "is not a bool"

let as_float key = function
  | Float f -> f
  | Int i -> float_of_int i
  | _ -> bad key "holds a non-numeric element"

let get_floats r key =
  if is_missing r then []
  else
    match get r key with
    | List l -> List.map (as_float key) l
    | _ -> bad key "is not a list"

let get_pairs r key =
  if is_missing r then []
  else
    match get r key with
    | List l ->
        List.map
          (function
            | List [ x; y ] -> (as_float key x, as_float key y)
            | _ -> bad key "holds a non-pair element")
          l
    | _ -> bad key "is not a list"

let get_rows r key =
  if is_missing r then []
  else
    match get r key with
    | List l ->
        List.map
          (function
            | List xs -> List.map (as_float key) xs
            | _ -> bad key "holds a non-row element")
          l
    | _ -> bad key "is not a list"

let get_strs r key =
  if is_missing r then []
  else
    match get r key with
    | List l ->
        List.map (function Str s -> s | _ -> bad key "holds a non-string") l
    | _ -> bad key "is not a list"

(* [lookup finished key] finds one job's result in a finished-run list. *)
let lookup finished key =
  match List.assoc_opt key finished with
  | Some r -> r
  | None -> failwith (Printf.sprintf "Job: no result for key %S" key)

(* --- JSON ---------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if Float.is_nan f then "null"
  else if f = Float.infinity then "1e999"
  else if f = Float.neg_infinity then "-1e999"
  else Printf.sprintf "%.12g" f

let rec json_value = function
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> json_float f
  | Str s -> Printf.sprintf "\"%s\"" (json_escape s)
  | List l -> Printf.sprintf "[%s]" (String.concat "," (List.map json_value l))

let to_json (r : result) =
  Printf.sprintf "{%s}"
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "\"%s\":%s" (json_escape k) (json_value v))
          r))
