(** The Section 3.5.3 / Appendix A.1 numbers: evaluates the closed-form
    increase bound (Equation 4) for the normal weighting, maximal history
    discounting and all-weight-on-recent cases, and cross-checks the
    simulated TFRC increase rate against it. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
