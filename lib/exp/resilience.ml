(* Chaos matrix: scripted faults against TFRC and TCP-Sack on a dumbbell,
   with recovery metrics. See resilience.mli for the metric definitions. *)

type report = {
  case : string;
  proto : string;
  pre_rate : float;
  min_send_during : float;
  floor_ok : bool;
  nofb_expiries : int;
  recovery_time : float;
  overshoot : float;
  post_rate : float;
}

type fault =
  | Outage of { at : float; duration : float }
  | Flap of { at : float; stop : float; period : float; down_fraction : float }
  | Reorder of { at : float; duration : float; p : float; jitter : float }
  | Fb_blackout of { at : float; duration : float }
  | Route_change of { at : float; bandwidth_factor : float }

(* The window in which the fault is active, for the metric computations. *)
let fault_window ~run_until = function
  | Outage { at; duration } | Fb_blackout { at; duration } ->
      (at, at +. duration)
  | Reorder { at; duration; _ } -> (at, at +. duration)
  | Flap { at; stop; _ } -> (at, stop)
  | Route_change { at; _ } -> (at, Float.min (at +. 2.) run_until)

(* Post-fault goodput target relative to the pre-fault rate: a permanent
   capacity change scales the bar. *)
let target_factor = function
  | Route_change { bandwidth_factor; _ } -> bandwidth_factor
  | _ -> 1.

(* A fast-ish path with a short queue keeps the RTT (and with it the
   no-feedback interval 4R) small, so a 2 s outage spans enough timer
   expirations to walk the rate all the way down to the floor. *)
let bottleneck_bw = Engine.Units.mbps 4.
let rtt_base = 0.03
let floor_rate = 8000. (* bytes/s: a streaming application's rate floor *)

let tfrc_config () =
  Tfrc.Tfrc_config.default ~initial_rtt:0.1 ~min_rate:floor_rate ()

(* Apply [faulty] only inside [a, b); outside, packets take the clean path. *)
let windowed ~now ~a ~b faulty clean pkt =
  let t = now () in
  if t >= a && t < b then faulty pkt else clean pkt

type probe = {
  send_series : Stats.Time_series.t; (* bytes injected by the sender *)
  recv_series : Stats.Time_series.t; (* bytes delivered to the endpoint *)
  pace_samples : (float * float) list ref; (* TFRC pacing rate, newest first *)
  nofb : unit -> int;
}

let run_case ~seed ~proto ~fault ~run_until =
  let sim = Engine.Sim.create () in
  let rng = Engine.Rng.create ~seed in
  let db =
    Netsim.Dumbbell.create (Engine.Sim.runtime sim) ~bandwidth:bottleneck_bw ~delay:0.005
      ~queue:(Netsim.Dumbbell.Droptail_q 20) ()
  in
  let now () = Engine.Sim.now sim in
  let flow = 1 in
  Netsim.Dumbbell.add_flow db ~flow ~rtt_base;
  let a, b = fault_window ~run_until fault in
  (* Link-level faults. *)
  (match fault with
  | Outage { at; duration } ->
      Netsim.Faults.outage (Engine.Sim.runtime sim) (Netsim.Dumbbell.forward_link db) ~at ~duration ()
  | Flap { at; stop; period; down_fraction } ->
      Netsim.Faults.flapping (Engine.Sim.runtime sim)
        (Netsim.Dumbbell.forward_link db)
        ~start:at ~stop ~period ~down_fraction ()
  | Route_change { at; bandwidth_factor } ->
      Netsim.Faults.route_change (Engine.Sim.runtime sim)
        (Netsim.Dumbbell.forward_link db)
        ~at
        ~bandwidth:(bottleneck_bw *. bandwidth_factor)
        ()
  | Reorder _ | Fb_blackout _ -> ());
  (* Handler-level faults: [wrap_data] sits between the bottleneck and the
     receiving endpoint, [wrap_fb] on the endpoint's feedback/ack path. *)
  let wrap_data dest =
    match fault with
    | Reorder { p; jitter; _ } ->
        let faulty, _ = Netsim.Faults.reorder (Engine.Sim.runtime sim) rng ~p ~jitter dest in
        windowed ~now ~a ~b faulty dest
    | _ -> dest
  in
  let wrap_fb dest =
    match fault with
    | Fb_blackout _ ->
        let faulty, _ = Netsim.Faults.blackout ~now ~windows:[ (a, b) ] dest in
        faulty
    | _ -> dest
  in
  let send_mon = Netsim.Flowmon.create now in
  let recv_mon = Netsim.Flowmon.create now in
  let pace_samples = ref [] in
  let nofb =
    match proto with
    | `Tfrc ->
        let config = tfrc_config () in
        let receiver =
          Tfrc.Tfrc_receiver.create (Engine.Sim.runtime sim) ~config ~flow
            ~transmit:(wrap_fb (Netsim.Dumbbell.dst_sender db ~flow))
            ()
        in
        Netsim.Dumbbell.set_dst_recv db ~flow
          (wrap_data
             (Netsim.Flowmon.wrap recv_mon (Tfrc.Tfrc_receiver.recv receiver)));
        let sender =
          Tfrc.Tfrc_sender.create (Engine.Sim.runtime sim) ~config ~flow
            ~transmit:
              (Netsim.Flowmon.wrap send_mon (Netsim.Dumbbell.src_sender db ~flow))
            ()
        in
        Netsim.Dumbbell.set_src_recv db ~flow (Tfrc.Tfrc_sender.recv sender);
        (* Sample the pacing rate on a fixed clock so the floor check sees
           the rate between updates too. *)
        let rec sample () =
          pace_samples := (now (), Tfrc.Tfrc_sender.rate sender) :: !pace_samples;
          ignore (Engine.Sim.after sim 0.02 sample)
        in
        ignore (Engine.Sim.at sim 0.02 sample);
        Tfrc.Tfrc_sender.start sender ~at:0.;
        fun () -> Tfrc.Tfrc_sender.no_feedback_expirations sender
    | `Tcp ->
        let config = Tcpsim.Tcp_common.ns_sack in
        let sink =
          Tcpsim.Tcp_sink.create (Engine.Sim.runtime sim) ~config ~flow
            ~transmit:(wrap_fb (Netsim.Dumbbell.dst_sender db ~flow))
            ()
        in
        Netsim.Dumbbell.set_dst_recv db ~flow
          (wrap_data
             (Netsim.Flowmon.wrap recv_mon (Tcpsim.Tcp_sink.recv sink)));
        let sender =
          Tcpsim.Tcp_sender.create (Engine.Sim.runtime sim) ~config ~flow
            ~transmit:
              (Netsim.Flowmon.wrap send_mon (Netsim.Dumbbell.src_sender db ~flow))
            ()
        in
        Netsim.Dumbbell.set_src_recv db ~flow (Tcpsim.Tcp_sender.recv sender);
        Tcpsim.Tcp_sender.start sender ~at:0.;
        fun () -> 0
  in
  Engine.Sim.run sim ~until:run_until;
  let probe =
    {
      send_series = Netsim.Flowmon.series send_mon;
      recv_series = Netsim.Flowmon.series recv_mon;
      pace_samples;
      nofb;
    }
  in
  (probe, a, b)

let case_report ~case ~proto ~fault ~run_until (probe, a, b) =
  let bin = 0.5 in
  let pre_rate =
    Stats.Time_series.mean_rate probe.recv_series ~t0:(Float.max 0. (a -. 5.)) ~t1:a
  in
  let min_send_during =
    match proto with
    | `Tfrc ->
        List.fold_left
          (fun acc (t, r) -> if t >= a && t <= b then Float.min acc r else acc)
          infinity !(probe.pace_samples)
    | `Tcp ->
        let rates =
          Stats.Time_series.rates probe.send_series ~t0:a
            ~t1:(Float.max b (a +. bin)) ~bin
        in
        Array.fold_left Float.min infinity rates
  in
  let floor_ok =
    match proto with
    | `Tcp -> true
    | `Tfrc ->
        List.for_all (fun (_, r) -> r >= floor_rate -. 1e-6) !(probe.pace_samples)
  in
  let target = 0.7 *. pre_rate *. target_factor fault in
  let recovery_time =
    if pre_rate <= 0. then Float.nan
    else begin
      let rates =
        Stats.Time_series.rates probe.recv_series ~t0:b ~t1:run_until ~bin
      in
      let n = Array.length rates in
      let rec scan i =
        if i >= n then Float.nan
        else if rates.(i) >= target then float_of_int i *. bin
        else scan (i + 1)
      in
      scan 0
    end
  in
  let overshoot =
    if pre_rate <= 0. then Float.nan
    else
      let rates =
        Stats.Time_series.rates probe.send_series ~t0:b
          ~t1:(Float.min run_until (b +. 10.))
          ~bin
      in
      Array.fold_left Float.max 0. rates /. pre_rate
  in
  let post_rate =
    Stats.Time_series.mean_rate probe.recv_series ~t0:(run_until -. 5.)
      ~t1:run_until
  in
  {
    case;
    proto = (match proto with `Tfrc -> "tfrc" | `Tcp -> "tcp-sack");
    pre_rate;
    min_send_during;
    floor_ok;
    nofb_expiries = probe.nofb ();
    recovery_time;
    overshoot;
    post_rate;
  }

let cases ~full =
  let base =
    [
      ("outage-2s", Outage { at = 15.; duration = 2. });
      ( "flap",
        Flap { at = 15.; stop = 25.; period = 2.; down_fraction = 0.25 } );
      ( "reorder",
        Reorder { at = 15.; duration = 10.; p = 0.1; jitter = 0.03 } );
      ("fb-blackout-2s", Fb_blackout { at = 15.; duration = 2. });
      ("route-change-0.5x", Route_change { at = 15.; bandwidth_factor = 0.5 });
    ]
  in
  if full then
    base
    @ [
        ("outage-5s", Outage { at = 15.; duration = 5. });
        ( "reorder-heavy",
          Reorder { at = 15.; duration = 10.; p = 0.3; jitter = 0.06 } );
        ( "flap-fast",
          Flap { at = 15.; stop = 25.; period = 0.5; down_fraction = 0.5 } );
      ]
  else base

let run_until ~full = if full then 60. else 40.

(* The resilience family doubles as the invariant checker's proving ground:
   every fault case is run with a checker subscribed to the default trace
   bus, so a regression that makes the sender violate its rate bounds or
   backoff ladder under faults fails loudly rather than just shifting a
   metric. *)
let audited_matrix ~seed ~full =
  let until = run_until ~full in
  let checker = Tfrc.Invariants.create () in
  let bus = Engine.Trace.default () in
  Tfrc.Invariants.attach checker bus;
  let reports =
    Fun.protect
      ~finally:(fun () -> Tfrc.Invariants.detach checker bus)
      (fun () ->
        List.concat_map
          (fun (case, fault) ->
            List.map
              (fun proto ->
                case_report ~case ~proto ~fault ~run_until:until
                  (run_case ~seed ~proto ~fault ~run_until:until))
              [ `Tfrc; `Tcp ])
          (cases ~full))
  in
  (reports, checker)

let matrix ~seed ~full = fst (audited_matrix ~seed ~full)

let tfrc_outage_case ~seed ~at ~duration () =
  let until = Float.max 40. (at +. duration +. 20.) in
  let fault = Outage { at; duration } in
  let ((probe, _, _) as r) = run_case ~seed ~proto:`Tfrc ~fault ~run_until:until in
  let report = case_report ~case:"outage" ~proto:`Tfrc ~fault ~run_until:until r in
  (report, Array.of_list (List.rev !(probe.pace_samples)))

let pp_s ppf v =
  if Float.is_nan v then Format.fprintf ppf "never" else Format.fprintf ppf "%.1f" v

(* --- Job grid ------------------------------------------------------------- *)

let proto_name = function `Tfrc -> "tfrc" | `Tcp -> "tcp-sack"

let case_key case proto = Printf.sprintf "resilience/%s/%s" case (proto_name proto)

(* Each cell runs one (case, proto) pair with its own invariant checker
   subscribed to the running domain's default bus, so the audit composes
   under parallel execution: per-cell counts are summed in render. *)
let case_job ~full (case, fault) proto =
  let until = run_until ~full in
  Job.make (case_key case proto) (fun rng ->
      let seed = Job.derive_seed rng in
      let checker = Tfrc.Invariants.create () in
      let bus = Engine.Trace.default () in
      Tfrc.Invariants.attach checker bus;
      let r =
        Fun.protect
          ~finally:(fun () -> Tfrc.Invariants.detach checker bus)
          (fun () ->
            case_report ~case ~proto ~fault ~run_until:until
              (run_case ~seed ~proto ~fault ~run_until:until))
      in
      [
        ("pre_rate", Job.f r.pre_rate);
        ("min_send_during", Job.f r.min_send_during);
        ("floor_ok", Job.b r.floor_ok);
        ("nofb_expiries", Job.i r.nofb_expiries);
        ("recovery_time", Job.f r.recovery_time);
        ("overshoot", Job.f r.overshoot);
        ("post_rate", Job.f r.post_rate);
        ("inv_events", Job.i (Tfrc.Invariants.n_events checker));
        ("inv_violations", Job.i (Tfrc.Invariants.n_violations checker));
        ( "inv_details",
          Job.strs
            (List.map
               (fun (v : Tfrc.Invariants.violation) ->
                 Printf.sprintf "[%.6f] %-18s %s" v.time v.rule v.detail)
               (Tfrc.Invariants.violations checker)) );
      ])

let jobs ~full =
  List.concat_map
    (fun cf -> List.map (case_job ~full cf) [ `Tfrc; `Tcp ])
    (cases ~full)

let report_of ~case ~proto result =
  {
    case;
    proto = proto_name proto;
    pre_rate = Job.get_float result "pre_rate";
    min_send_during = Job.get_float result "min_send_during";
    floor_ok = Job.get_bool result "floor_ok";
    nofb_expiries = Job.get_int result "nofb_expiries";
    recovery_time = Job.get_float result "recovery_time";
    overshoot = Job.get_float result "overshoot";
    post_rate = Job.get_float result "post_rate";
  }

let render ~full ~seed:_ finished ppf =
  let cells =
    List.concat_map
      (fun (case, _) ->
        List.map
          (fun proto -> (case, proto, Job.lookup finished (case_key case proto)))
          [ `Tfrc; `Tcp ])
      (cases ~full)
  in
  let reports = List.map (fun (case, proto, r) -> report_of ~case ~proto r) cells in
  Format.fprintf ppf
    "Resilience matrix: faults on a %.0f kb/s dumbbell (RTT %.0f ms), one \
     flow per run; TFRC rate floor %.0f B/s.@.@."
    (bottleneck_bw /. 1e3) (rtt_base *. 1e3) floor_rate;
  Table.print ppf
    ~header:
      [
        "case"; "proto"; "pre KB/s"; "min send"; "floor"; "nofb"; "recov s";
        "overshoot"; "post KB/s";
      ]
    (List.map
       (fun r ->
         [
           r.case;
           r.proto;
           Printf.sprintf "%.1f" (r.pre_rate /. 1e3);
           Printf.sprintf "%.2f" (r.min_send_during /. 1e3);
           (if r.floor_ok then "ok" else "VIOLATED");
           string_of_int r.nofb_expiries;
           Format.asprintf "%a" pp_s r.recovery_time;
           Printf.sprintf "%.2f" r.overshoot;
           Printf.sprintf "%.1f" (r.post_rate /. 1e3);
         ])
       reports);
  Format.fprintf ppf
    "@.min send: lowest sending rate while the fault is active (TFRC pacing \
     rate; binned send rate for TCP).@.recov: time after the fault clears \
     until goodput returns to 70%% of the pre-fault rate (scaled by the new \
     capacity for route changes).@.";
  (* Inline shape checks mirroring the acceptance criteria. *)
  let tfrc_outage =
    List.find_opt (fun r -> r.case = "outage-2s" && r.proto = "tfrc") reports
  in
  (match tfrc_outage with
  | None -> ()
  | Some r ->
      Format.fprintf ppf
        "@.outage-2s/tfrc: backed off to %.0f B/s (floor %.0f) over %d \
         no-feedback expirations; recovered in %a s with overshoot %.2f@."
        r.min_send_during floor_rate r.nofb_expiries pp_s r.recovery_time
        r.overshoot);
  (* Per-cell invariant audits, summed; same layout as
     [Tfrc.Invariants.report] on a whole-matrix checker. *)
  let events =
    List.fold_left (fun acc (_, _, r) -> acc + Job.get_int r "inv_events") 0 cells
  in
  let violations =
    List.fold_left
      (fun acc (_, _, r) -> acc + Job.get_int r "inv_violations")
      0 cells
  in
  let details = List.concat_map (fun (_, _, r) -> Job.get_strs r "inv_details") cells in
  Format.fprintf ppf "@.invariant audit: ";
  if violations = 0 then
    Format.fprintf ppf "invariants: %d trace events checked, 0 violations@."
      events
  else begin
    Format.fprintf ppf "invariants: %d trace events checked, %d VIOLATIONS@."
      events violations;
    List.iter (fun d -> Format.fprintf ppf "  %s@." d) details;
    if violations > List.length details then
      Format.fprintf ppf "  ... and %d more@." (violations - List.length details)
  end;
  Format.fprintf ppf "@."

let json_line ~seed =
  let reports, checker = audited_matrix ~seed ~full:false in
  let case_json r =
    Printf.sprintf
      "{\"case\":\"%s\",\"proto\":\"%s\",\"pre_rate\":%.1f,\"min_send_during\":%.2f,\"floor_ok\":%b,\"nofb_expiries\":%d,\"recovery_time\":%s,\"overshoot\":%s,\"post_rate\":%.1f}"
      r.case r.proto r.pre_rate r.min_send_during r.floor_ok r.nofb_expiries
      (if Float.is_nan r.recovery_time then "null"
       else Printf.sprintf "%.2f" r.recovery_time)
      (if Float.is_nan r.overshoot then "null"
       else Printf.sprintf "%.3f" r.overshoot)
      r.post_rate
  in
  Printf.sprintf
    "{\"bench\":\"resilience\",\"seed\":%d,\"invariant_events\":%d,\"invariant_violations\":%d,\"cases\":[%s]}"
    seed
    (Tfrc.Invariants.n_events checker)
    (Tfrc.Invariants.n_violations checker)
    (String.concat "," (List.map case_json reports))
