(* Periodic loss with a rate schedule: 1% -> 10% at t=6 -> 0.5% at t=9,
   mirroring the paper's idealized illustration. *)
let schedule t = if t < 6. then 0.01 else if t < 9. then 0.10 else 0.005

let samples ?(rtt = 0.1) ~duration () =
  let out = ref [] in
  (* delay_gain off: the path has no queueing, so the adjustment is inert
     but keeps M warm-up noise out of the plotted rate. *)
  let config = Tfrc.Tfrc_config.default ~delay_gain:false ~initial_rtt:rtt () in
  let path_ref = ref None in
  let drop =
    let acc = ref 0. in
    fun (pkt : Netsim.Packet.t) ->
      ignore pkt;
      let now =
        match !path_ref with
        | Some (p : Direct_path.t) -> Engine.Sim.now p.sim
        | None -> 0.
      in
      let rate = schedule now in
      acc := !acc +. rate;
      if !acc >= 1. then begin
        acc := !acc -. 1.;
        true
      end
      else false
  in
  let path = Direct_path.create ~config ~rtt ~drop () in
  path_ref := Some path;
  Tfrc.Tfrc_sender.on_rate_update path.sender (fun time ~rate ~rtt:_ ~p ->
      let intervals = Tfrc.Tfrc_receiver.intervals path.receiver in
      let s0 = Tfrc.Loss_intervals.open_interval intervals in
      let est =
        Option.value (Tfrc.Loss_intervals.average intervals) ~default:0.
      in
      out := (time, s0, est, p, rate) :: !out);
  Direct_path.run path ~until:duration;
  List.rev !out

(* The staircase is a single deterministic cell: losses are periodic, so
   the RNG goes unused and the grid has one job. *)
let jobs ~full:_ =
  [
    Job.make "fig2/staircase" (fun _rng ->
        let data = samples ~duration:16. () in
        [
          ( "samples",
            Job.rows (List.map (fun (t, s0, est, p, r) -> [ t; s0; est; p; r ]) data)
          );
        ]);
  ]

let render ~full:_ ~seed:_ finished ppf =
  let data =
    List.map
      (function
        | [ t; s0; est; p; r ] -> (t, s0, est, p, r)
        | _ -> failwith "fig2: malformed sample row")
      (Job.get_rows (Job.lookup finished "fig2/staircase") "samples")
  in
  Dataset.write_series ~name:"fig2"
    ~columns:[ "time"; "s0"; "est_interval"; "p"; "tx_rate" ]
    (List.map (fun (t, s0, est, p, r) -> [ t; s0; est; p; r ]) data);
  (* Thin to roughly 2 samples per second for display. *)
  let display =
    let last = ref neg_infinity in
    List.filter
      (fun (t, _, _, _, _) ->
        if t -. !last >= 0.5 then begin
          last := t;
          true
        end
        else false)
      data
  in
  Format.fprintf ppf
    "Figure 2: Average Loss Interval under periodic loss (1%% -> 10%% at t=6 \
     -> 0.5%% at t=9)@.@.";
  Table.print ppf
    ~header:[ "time"; "s0 (pkts)"; "est interval"; "est p"; "sqrt p"; "TX KB/s" ]
    (List.map
       (fun (t, s0, est, p, rate) ->
         [
           Table.f2 t;
           Printf.sprintf "%.0f" s0;
           Printf.sprintf "%.1f" est;
           Table.f4 p;
           Table.f3 (sqrt p);
           Table.f2 (rate /. 1e3);
         ])
       display);
  Format.fprintf ppf "@.";
  Plot.series ppf ~title:"transmission rate (KB/s) vs time" ~ylabel:"t, s"
    (List.map (fun (t, _, _, _, r) -> (t, r /. 1e3)) data);
  Format.fprintf ppf "@.";
  Plot.series ppf ~title:"estimated loss event rate vs time" ~ylabel:"t, s"
    (List.map (fun (t, _, _, p, _) -> (t, p)) data);
  (* Paper-shape checks, reported inline. *)
  let in_window a b f =
    List.filter (fun (t, _, _, _, _) -> t >= a && t < b) data |> List.map f
  in
  let mean l = if l = [] then 0. else List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let p_of (_, _, _, p, _) = p in
  Format.fprintf ppf
    "@.mean estimated p:  [3,6)s %.4f (target ~0.01)   [7.5,9)s %.4f (target \
     ~0.1)   [14,16)s %.4f (drifting toward 0.005)@."
    (mean (in_window 3. 6. p_of))
    (mean (in_window 7.5 9. p_of))
    (mean (in_window 14. 16. p_of))
