(** Topology failure-impact experiment family.

    Built on the {!Netsim.Topo_builders.Transcontinental} two-route WAN
    with three TFRC probe flows: [coast] (nyc-sfo, rides the northern
    path), [short] (nyc-chi) and [south] (atl-sfo). Reports:

    - the {e static} {!Netsim.Topology.impact} matrix — each backbone
      segment's hypothetical failure classified per flow as partitioned /
      rerouted / unaffected on the healthy graph;
    - {e dynamic} cases where the chaos layer actually cuts [chi-den]
      mid-run: [reroute] on the healthy graph (coast traffic must detour
      south and keep flowing), [partition] with the southern detour
      pre-darkened (coast traffic must starve), and — under [--full] —
      [flap] (periodic up/down, routes must chase the link state).

    Each dynamic case cross-checks the static verdict against measured
    goodput: a rerouted flow keeps at least 5% of its pre-fault rate
    through the outage, a partitioned one falls below 5%. A mismatch
    renders as [MISMATCH] in the verdict column. Every dynamic run is
    audited by {!Tfrc.Invariants} (including the [topo-loop-free] rule). *)

(** The backbone segment labels a scripted run may cut or darken. *)
val segment_labels : string list

(** One probe flow's outcome in a scripted run: [kind] is the static
    {!Netsim.Topology.impact} classification of the failed segment for
    this flow (sampled mid-run, after any pre-darkened segments are
    down), [pre]/[during]/[post] are goodput in bytes/s, and [consistent]
    is the static-vs-dynamic cross-check. *)
type flow_report = {
  fname : string;
  kind : string;
  pre : float;
  during : float;
  post : float;
  consistent : bool;
}

(** [scripted ~fail ~dark ~at ~duration ()] cuts both directions of the
    [fail] segment over [at, at+duration), with every [dark] segment down
    for the whole run, and returns the per-flow reports plus the number
    of routing recomputations. Backs the [tfrc_sim topo] subcommand. *)
val scripted :
  fail:string ->
  dark:string list ->
  at:float ->
  duration:float ->
  unit ->
  flow_report list * int

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit
