(** Figure 18: quality of the loss-rate predictor. For history sizes
    {2,4,8,16,32} and both constant and decreasing weights, the loss-
    interval estimator is driven over loss traces from a range of synthetic
    environments (steady Bernoulli at several rates, bursty Gilbert
    channels, rate switching); at each loss event the estimator's predicted
    loss rate is compared with the realized rate over the next loss
    interval. Reports the mean absolute prediction error and its standard
    deviation, averaged over environments. *)

val jobs : full:bool -> Job.t list

val render :
  full:bool ->
  seed:int ->
  (string * Job.result) list ->
  Format.formatter ->
  unit

(** [evaluate ~history ~constant_weights ~traces] returns
    (mean |error|, stddev of error) over all loss events in all traces;
    each trace is a list of loss-interval lengths (packets). *)
val evaluate :
  history:int -> constant_weights:bool -> traces:float list list -> float * float

(** Builds the standard trace set from a seed. *)
val standard_traces : seed:int -> packets_per_trace:int -> float list list
