(* Failure impact on the transcontinental WAN: the static
   [Netsim.Topology.impact] classification of a link failure
   (partitioned / rerouted / unaffected) checked against the dynamics the
   chaos layer actually produces when the same link goes down mid-run.
   See topo_impact.mli for the case definitions. *)

module TB = Netsim.Topo_builders.Transcontinental

type case = Reroute | Partition | Flap

let case_name = function
  | Reroute -> "reroute"
  | Partition -> "partition"
  | Flap -> "flap"

(* The three probe flows. [coast] rides the northern path and is the one
   a chi-den failure touches; [short] and [south] are controls that must
   classify as unaffected. *)
let probe_flows = [ (1, "coast", TB.Nyc, TB.Sfo); (2, "short", TB.Nyc, TB.Chi); (3, "south", TB.Atl, TB.Sfo) ]

let failed_label = "chi-den"
let fault_at = 15.
let fault_duration = 10.
let run_until = 40.
let access = 0.002

let queue () = Netsim.Droptail.create ~limit_pkts:40

let build sim =
  let rt = Engine.Sim.runtime sim in
  let wan = TB.create rt ~queue () in
  List.iter (fun (flow, _, src, dst) -> TB.add_flow wan ~flow ~src ~dst ~access)
    probe_flows;
  wan

(* One TFRC session per probe flow; returns the per-flow goodput series. *)
let wire_flows sim wan =
  let rt = Engine.Sim.runtime sim in
  let now () = Engine.Sim.now sim in
  List.map
    (fun (flow, fname, _, _) ->
      let config = Tfrc.Tfrc_config.default ~initial_rtt:0.1 () in
      let recv_mon = Netsim.Flowmon.create now in
      let receiver =
        Tfrc.Tfrc_receiver.create rt ~config ~flow
          ~transmit:(TB.dst_sender wan ~flow) ()
      in
      TB.set_dst_recv wan ~flow
        (Netsim.Flowmon.wrap recv_mon (Tfrc.Tfrc_receiver.recv receiver));
      let sender =
        Tfrc.Tfrc_sender.create rt ~config ~flow
          ~transmit:(TB.src_sender wan ~flow) ()
      in
      TB.set_src_recv wan ~flow (Tfrc.Tfrc_sender.recv sender);
      Tfrc.Tfrc_sender.start sender ~at:0.;
      (flow, fname, recv_mon))
    probe_flows

(* Cut or flap both directions of a duplex segment, so the failure takes
   the data and the feedback path down together like a real fiber cut. *)
let duplex_links wan label =
  let rev =
    match String.split_on_char '-' label with
    | [ a; b ] -> b ^ "-" ^ a
    | _ -> invalid_arg "duplex_links"
  in
  [ fst (TB.link wan label); fst (TB.link wan rev) ]

let schedule_fault rt wan case =
  match case with
  | Reroute | Partition ->
      List.iter
        (fun l -> Netsim.Faults.outage rt l ~at:fault_at ~duration:fault_duration ())
        (duplex_links wan failed_label)
  | Flap ->
      List.iter
        (fun l ->
          Netsim.Faults.flapping rt l ~start:fault_at
            ~stop:(fault_at +. fault_duration) ~period:2. ~down_fraction:0.5 ())
        (duplex_links wan failed_label)

(* The partition case pre-darkens the southern detour for the whole run,
   so losing chi-den leaves coast-to-coast traffic with no path at all. *)
let darken_south rt wan =
  List.iter
    (fun l -> Netsim.Faults.outage rt l ~at:0.5 ~duration:(run_until +. 10.) ())
    (duplex_links wan "nyc-atl" @ duplex_links wan "atl-sfo")

type dyn = {
  case : string;
  static_kind : string;  (** impact of chi-den on [coast], sampled at t=5 *)
  pre : float;
  during : float;
  post : float;
  recomputes : int;
  consistent : bool;
}

(* Static impact says what the dynamics must show: a rerouted flow keeps
   meaningful goodput through the outage, a partitioned one starves. *)
let consistent_with ~static_kind ~pre ~during =
  match static_kind with
  | "rerouted" -> pre > 0. && during >= 0.05 *. pre
  | "partitioned" -> during <= 0.05 *. pre
  | _ -> true

let run_dynamic case =
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  let wan = build sim in
  let topo = TB.topology wan in
  if case = Partition then darken_south rt wan;
  schedule_fault rt wan case;
  let mons = wire_flows sim wan in
  let static_kind = ref "?" in
  (* Sample the hypothetical-failure classification before the fault
     fires, but after any pre-darkening outage is in effect. *)
  ignore
    (Engine.Sim.at sim 5. (fun () ->
         let _, edge = TB.link wan failed_label in
         match List.assoc_opt 1 (Netsim.Topology.impact topo edge) with
         | Some k -> static_kind := Netsim.Topology.impact_str k
         | None -> ()));
  Engine.Sim.run sim ~until:run_until;
  let _, _, coast_mon = List.find (fun (f, _, _) -> f = 1) mons in
  let series = Netsim.Flowmon.series coast_mon in
  let rate t0 t1 = Stats.Time_series.mean_rate series ~t0 ~t1 in
  let pre = rate 5. fault_at in
  let during = rate (fault_at +. 1.) (fault_at +. fault_duration -. 1.) in
  let post = rate (run_until -. 5.) run_until in
  {
    case = case_name case;
    static_kind = !static_kind;
    pre;
    during;
    post;
    recomputes = Netsim.Topology.recomputes topo;
    consistent = consistent_with ~static_kind:!static_kind ~pre ~during;
  }

(* --- Scripted run for the `tfrc_sim topo' subcommand ---------------------- *)

type flow_report = {
  fname : string;
  kind : string;
  pre : float;
  during : float;
  post : float;
  consistent : bool;
}

let scripted ~fail ~dark ~at ~duration () =
  let sim = Engine.Sim.create () in
  let rt = Engine.Sim.runtime sim in
  let wan = build sim in
  let topo = TB.topology wan in
  let until = at +. duration +. 15. in
  List.iter
    (fun label ->
      List.iter
        (fun l -> Netsim.Faults.outage rt l ~at:0.5 ~duration:(until +. 10.) ())
        (duplex_links wan label))
    dark;
  List.iter
    (fun l -> Netsim.Faults.outage rt l ~at ~duration ())
    (duplex_links wan fail);
  let mons = wire_flows sim wan in
  (* Sample the static classification after the pre-darkened segments are
     down but before the scripted cut fires. *)
  let kinds = ref [] in
  ignore
    (Engine.Sim.at sim (Float.max 1. (at /. 2.)) (fun () ->
         let _, edge = TB.link wan fail in
         kinds :=
           List.map
             (fun (f, k) -> (f, Netsim.Topology.impact_str k))
             (Netsim.Topology.impact topo edge)));
  Engine.Sim.run sim ~until;
  let reports =
    List.map
      (fun (flow, fname, mon) ->
        let series = Netsim.Flowmon.series mon in
        let rate t0 t1 = Stats.Time_series.mean_rate series ~t0 ~t1 in
        let pre = rate (Float.max 1. (at -. 10.)) at in
        let d0, d1 =
          if duration > 2. then (at +. 1., at +. duration -. 1.)
          else (at, at +. duration)
        in
        let during = rate d0 d1 in
        let post = rate (Float.max (at +. duration) (until -. 5.)) until in
        let kind = Option.value ~default:"?" (List.assoc_opt flow !kinds) in
        {
          fname;
          kind;
          pre;
          during;
          post;
          consistent = consistent_with ~static_kind:kind ~pre ~during;
        })
      mons
  in
  (reports, Netsim.Topology.recomputes topo)

(* Static impact matrix: every duplex segment (forward direction) against
   every probe flow, on the healthy graph. *)
let segment_labels = [ "nyc-chi"; "chi-den"; "den-sfo"; "nyc-atl"; "atl-sfo" ]

let static_matrix () =
  let sim = Engine.Sim.create () in
  let wan = build sim in
  let topo = TB.topology wan in
  List.map
    (fun label ->
      let _, edge = TB.link wan label in
      let by_flow = Netsim.Topology.impact topo edge in
      ( label,
        List.map
          (fun (flow, fname, _, _) ->
            let kind =
              match List.assoc_opt flow by_flow with
              | Some k -> Netsim.Topology.impact_str k
              | None -> "?"
            in
            (fname, kind))
          probe_flows ))
    segment_labels

(* --- Job grid ------------------------------------------------------------- *)

let static_key = "topology/static"
let dyn_key case = "topology/" ^ case_name case
let dyn_cases ~full = if full then [ Reroute; Partition; Flap ] else [ Reroute; Partition ]

let static_job =
  Job.make static_key (fun _rng ->
      let matrix = static_matrix () in
      [
        ( "rows",
          Job.strs
            (List.concat_map
               (fun (label, kinds) ->
                 List.map (fun (fname, k) -> Printf.sprintf "%s %s %s" label fname k) kinds)
               matrix) );
      ])

let dyn_job case =
  Job.make (dyn_key case) (fun _rng ->
      let checker = Tfrc.Invariants.create () in
      let bus = Engine.Trace.default () in
      Tfrc.Invariants.attach checker bus;
      let r =
        Fun.protect
          ~finally:(fun () -> Tfrc.Invariants.detach checker bus)
          (fun () -> run_dynamic case)
      in
      [
        ("static_kind", Job.s r.static_kind);
        ("pre", Job.f r.pre);
        ("during", Job.f r.during);
        ("post", Job.f r.post);
        ("recomputes", Job.i r.recomputes);
        ("consistent", Job.b r.consistent);
        ("inv_events", Job.i (Tfrc.Invariants.n_events checker));
        ("inv_violations", Job.i (Tfrc.Invariants.n_violations checker));
        ( "inv_details",
          Job.strs
            (List.map
               (fun (v : Tfrc.Invariants.violation) ->
                 Printf.sprintf "[%.6f] %-18s %s" v.time v.rule v.detail)
               (Tfrc.Invariants.violations checker)) );
      ])

let jobs ~full = static_job :: List.map dyn_job (dyn_cases ~full)

let render ~full ~seed:_ finished ppf =
  Format.fprintf ppf
    "Failure impact on the transcontinental WAN: north path \
     nyc-chi-den-sfo (45 Mb/s), southern detour nyc-atl-sfo (10 Mb/s), \
     delay-cost routing; TFRC probe flows coast (nyc-sfo), short \
     (nyc-chi), south (atl-sfo).@.@.";
  (* Static matrix: flows in column order, one row per failed segment. *)
  let static_rows = Job.get_strs (Job.lookup finished static_key) "rows" in
  let cell label fname =
    let prefix = label ^ " " ^ fname ^ " " in
    match
      List.find_opt (fun r -> String.length r > String.length prefix
                              && String.sub r 0 (String.length prefix) = prefix)
        static_rows
    with
    | Some r ->
        String.sub r (String.length prefix) (String.length r - String.length prefix)
    | None -> "?"
  in
  let flow_names = List.map (fun (_, n, _, _) -> n) probe_flows in
  Format.fprintf ppf "Static impact of failing each segment (healthy graph):@.";
  Table.print ppf
    ~header:("failed segment" :: flow_names)
    (List.map (fun label -> label :: List.map (cell label) flow_names)
       segment_labels);
  (* Dynamics vs the static verdict. *)
  let cells =
    List.map (fun c -> (c, Job.lookup finished (dyn_key c))) (dyn_cases ~full)
  in
  Format.fprintf ppf
    "@.Scripted %s failure at t=%.0f for %.0f s (partition case darkens \
     the southern detour first), coast-flow goodput:@."
    failed_label fault_at fault_duration;
  Table.print ppf
    ~header:
      [ "case"; "static impact"; "pre KB/s"; "during KB/s"; "post KB/s";
        "recomputes"; "verdict" ]
    (List.map
       (fun (c, r) ->
         [
           case_name c;
           Job.get_str r "static_kind";
           Printf.sprintf "%.1f" (Job.get_float r "pre" /. 1e3);
           Printf.sprintf "%.1f" (Job.get_float r "during" /. 1e3);
           Printf.sprintf "%.1f" (Job.get_float r "post" /. 1e3);
           string_of_int (Job.get_int r "recomputes");
           (if Job.get_bool r "consistent" then "consistent" else "MISMATCH");
         ])
       cells);
  Format.fprintf ppf
    "@.verdict: a statically rerouted flow must keep >= 5%% of its \
     pre-fault goodput through the outage; a partitioned one must fall \
     below 5%%.@.";
  let events =
    List.fold_left (fun acc (_, r) -> acc + Job.get_int r "inv_events") 0 cells
  in
  let violations =
    List.fold_left (fun acc (_, r) -> acc + Job.get_int r "inv_violations") 0 cells
  in
  Format.fprintf ppf "@.invariant audit: ";
  if violations = 0 then
    Format.fprintf ppf "%d trace events checked, 0 violations@." events
  else begin
    Format.fprintf ppf "%d trace events checked, %d VIOLATIONS@." events violations;
    List.iter
      (fun (_, r) ->
        List.iter (fun d -> Format.fprintf ppf "  %s@." d) (Job.get_strs r "inv_details"))
      cells
  end;
  Format.fprintf ppf "@."
