(* Durable JSONL checkpoint store for supervised experiment runs.

   One file per grid identity (experiment id + seed + scale): a header line
   naming the grid, then one line per completed cell. Every append is
   fsync'd before [record] returns, so after SIGKILL the file holds exactly
   the cells whose results were handed back — at worst one torn final line,
   which the loader discards. Resume = load the file into a key-indexed
   table and skip those cells.

   Byte-identical resume needs lossless round-trips, and %.12g (Job.to_json)
   is not one for doubles. Floats are therefore encoded as hex-float
   strings ({"f":"0x1.9p-4"}) via [Engine.Hexfloat] (shared with the
   fuzzer's scenario codec), which reads back exactly; ints, bools,
   strings and lists use plain JSON, so the Int/Float distinction in
   Job.value survives too.

   [record] may be called from worker domains (the parallel runner
   checkpoints each cell as it completes, not at batch end — that is what
   makes a SIGKILL mid-batch recoverable), so appends are serialized by a
   mutex. *)

type t = {
  path : string;
  fd : Unix.file_descr;
  m : Mutex.t;
  completed : (string, Job.result) Hashtbl.t;
  mutable closed : bool;
}

(* --- Serialization -------------------------------------------------------- *)

let add_quoted buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Job.json_escape s);
  Buffer.add_char buf '"'

let rec add_value buf (v : Job.value) =
  match v with
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      Buffer.add_string buf "{\"f\":\"";
      Buffer.add_string buf (Engine.Hexfloat.to_string f);
      Buffer.add_string buf "\"}"
  | Str s -> add_quoted buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          add_value buf v)
        l;
      Buffer.add_char buf ']'

let result_line ~key (r : Job.result) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"key\":";
  add_quoted buf key;
  Buffer.add_string buf ",\"result\":[";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      add_quoted buf name;
      Buffer.add_char buf ',';
      add_value buf v;
      Buffer.add_char buf ']')
    r;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let header_line ~grid =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "{\"grid\":";
  add_quoted buf grid;
  Buffer.add_string buf ",\"version\":1}\n";
  Buffer.contents buf

(* --- Minimal JSON parser -------------------------------------------------- *)

(* Recursive descent over exactly the subset the serializer emits: objects,
   arrays, strings with the escapes Job.json_escape produces, integers,
   true/false. A malformed line (torn tail after a crash) raises [Bad] and
   the loader stops there. *)

exception Bad of string

type json =
  | J_bool of bool
  | J_int of int
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then s.[!pos] else raise (Bad "eof") in
  let advance () = incr pos in
  let expect c =
    if peek () <> c then raise (Bad (Printf.sprintf "expected %c" c));
    advance ()
  in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then raise (Bad "short \\u escape");
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              (* The serializer only emits \u for control bytes < 0x20. *)
              Buffer.add_char buf (Char.chr (code land 0xff));
              pos := !pos + 4
          | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_str (parse_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let name = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                fields ((name, v) :: acc)
            | '}' ->
                advance ();
                List.rev ((name, v) :: acc)
            | c -> raise (Bad (Printf.sprintf "bad object separator %c" c))
          in
          J_obj (fields [])
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          J_list []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elems (v :: acc)
            | ']' ->
                advance ();
                List.rev (v :: acc)
            | c -> raise (Bad (Printf.sprintf "bad array separator %c" c))
          in
          J_list (elems [])
        end
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then begin
          pos := !pos + 4;
          J_bool true
        end
        else raise (Bad "bad literal")
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then begin
          pos := !pos + 5;
          J_bool false
        end
        else raise (Bad "bad literal")
    | '-' | '0' .. '9' ->
        let start = !pos in
        if peek () = '-' then advance ();
        while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
          advance ()
        done;
        if !pos = start then raise (Bad "empty number");
        J_int (int_of_string (String.sub s start (!pos - start)))
    | c -> raise (Bad (Printf.sprintf "unexpected %c" c))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Bad "trailing garbage");
  v

let rec value_of_json : json -> Job.value = function
  | J_bool b -> Bool b
  | J_int i -> Int i
  | J_str s -> Str s
  | J_obj [ ("f", J_str h) ] -> (
      match Engine.Hexfloat.of_string_opt h with
      | Some f -> Float f
      | None -> raise (Bad ("bad hex float " ^ h)))
  | J_list l -> List (List.map value_of_json l)
  | J_obj _ -> raise (Bad "unexpected object value")

let line_of_json : json -> string * Job.result = function
  | J_obj [ ("key", J_str key); ("result", J_list pairs) ] ->
      let field = function
        | J_list [ J_str name; v ] -> (name, value_of_json v)
        | _ -> raise (Bad "bad result field")
      in
      (key, List.map field pairs)
  | _ -> raise (Bad "bad checkpoint line")

(* --- Store ---------------------------------------------------------------- *)

let ensure_dir dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      match Unix.mkdir d 0o755 with
      | () -> ()
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      | exception Unix.Unix_error (err, _, _) ->
          failwith
            (Printf.sprintf "cannot create directory %s: %s" d
               (Unix.error_message err))
    end
  in
  go dir;
  (* [dir] may have existed all along — as a file. Catch that here rather
     than as a confusing ENOTDIR/EEXIST from the first write into it. *)
  if Sys.file_exists dir && not (Sys.is_directory dir) then
    failwith (Printf.sprintf "cannot create directory %s: %s" dir
                "a file with that name exists")

(* Loads a checkpoint file written for [grid]. Returns None when the file
   is absent or its header names a different grid (stale identity: start
   fresh rather than resume someone else's cells). Stops at the first
   malformed line — after a crash only the final line can be torn. *)
let load ~grid path =
  match open_in_bin path with
  | exception Sys_error _ -> None (* missing or unreadable: start fresh *)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | exception End_of_file -> None
        | header -> (
            match parse header with
            | exception Bad _ -> None
            | J_obj (("grid", J_str g) :: _) when String.equal g grid ->
                let completed = Hashtbl.create 64 in
                let rec lines () =
                  match input_line ic with
                  | exception End_of_file -> ()
                  | line -> (
                      match line_of_json (parse line) with
                      | exception Bad _ -> () (* torn tail: stop *)
                      | key, r ->
                          Hashtbl.replace completed key r;
                          lines ())
                in
                lines ();
                Some completed
            | _ -> None))

let append_fsync t s =
  let len = String.length s in
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring t.fd s !written (len - !written)
  done;
  Unix.fsync t.fd

let open_store ~dir ~grid ~resume =
  ensure_dir dir;
  (* Grid identities are filename-safe by construction (experiment ids,
     seeds, scale tags); guard anyway so a hostile id cannot escape dir. *)
  String.iter
    (fun c ->
      if c = '/' || c = '\x00' then
        invalid_arg "Checkpoint.open_store: grid identity has unsafe characters")
    grid;
  let path = Filename.concat dir (grid ^ ".jsonl") in
  let openfile path flags =
    try Unix.openfile path flags 0o644
    with Unix.Unix_error (err, _, _) ->
      failwith
        (Printf.sprintf "cannot open checkpoint file %s: %s" path
           (Unix.error_message err))
  in
  let prior = if resume then load ~grid path else None in
  match prior with
  | Some completed ->
      let fd = openfile path [ O_WRONLY; O_APPEND ] in
      { path; fd; m = Mutex.create (); completed; closed = false }
  | None ->
      let fd = openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] in
      let t =
        { path; fd; m = Mutex.create (); completed = Hashtbl.create 64;
          closed = false }
      in
      append_fsync t (header_line ~grid);
      t

let path t = t.path
let find t key = Hashtbl.find_opt t.completed key
let completed_count t = Hashtbl.length t.completed

let record t ~key r =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if t.closed then invalid_arg "Checkpoint.record: store is closed";
      append_fsync t (result_line ~key r);
      Hashtbl.replace t.completed key r)

let close t =
  Mutex.lock t.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.m)
    (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Unix.close t.fd
      end)
