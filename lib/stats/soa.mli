(** Struct-of-arrays store of {!Running}-style Welford accumulators.

    A fixed-length bank of per-slot streaming statistics (one slot per
    flow, say) backed by flat Bigarrays: each field is a contiguous
    unboxed array, so a million accumulators cost seven cache-friendly
    vectors instead of a million GC-traced records. Slot arithmetic is
    identical to {!Running} — same Welford update, same NaN-exclusion
    rule, same denormal-mean [cov] guard — so the two are
    interchangeable sample-for-sample. *)

type t

(** [create len] makes [len] empty accumulators (slots [0 .. len-1]).
    Raises [Invalid_argument] on negative [len]. *)
val create : int -> t

val length : t -> int

(** [add t i x] folds sample [x] into slot [i]. NaN samples are counted
    in {!nans} and excluded from all moments. *)
val add : t -> int -> float -> unit

val count : t -> int -> int
val nans : t -> int -> int
val mean : t -> int -> float
val variance : t -> int -> float
val population_variance : t -> int -> float
val stddev : t -> int -> float
val population_stddev : t -> int -> float

(** See {!Running.cov}: 0. when the slot mean's magnitude is below
    [Float.min_float]. *)
val cov : t -> int -> float

val min_value : t -> int -> float (* +infinity when empty *)
val max_value : t -> int -> float (* -infinity when empty *)
val total : t -> int -> float

(** [merge_into ~src i ~dst j] folds slot [i] of [src] into slot [j] of
    [dst], as if [dst.(j)] had also seen [src.(i)]'s samples (same
    pairwise formula as {!Running.merge}). *)
val merge_into : src:t -> int -> dst:t -> int -> unit

(** [reset_slot t i] returns slot [i] to the empty state. *)
val reset_slot : t -> int -> unit
