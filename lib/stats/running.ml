type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float; (* sum of squared deviations from the mean *)
  mutable min_v : float;
  mutable max_v : float;
  mutable total : float;
  mutable nans : int; (* NaN samples, counted but excluded from the moments *)
}

let create () =
  {
    n = 0;
    mean = 0.;
    m2 = 0.;
    min_v = infinity;
    max_v = neg_infinity;
    total = 0.;
    nans = 0;
  }

let add t x =
  (* A NaN sample used to poison mean/total while min/max silently ignored
     it (both comparisons are false), leaving the accumulator internally
     inconsistent. Count NaNs on the side instead, so the moments stay
     meaningful and the caller can still detect that bad samples arrived. *)
  if Float.is_nan x then t.nans <- t.nans + 1
  else begin
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x;
    t.total <- t.total +. x
  end

let count t = t.n
let nans t = t.nans
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let population_variance t = if t.n = 0 then 0. else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let population_stddev t = sqrt (population_variance t)

let cov t =
  (* A denormal mean is numerically zero for this purpose: dividing by it
     manufactures a huge, meaningless ratio (and an exact [= 0.] test lets
     such means through). *)
  let m = mean t in
  if Float.abs m < Float.min_float then 0. else population_stddev t /. m

let min_value t = t.min_v
let max_value t = t.max_v
let total t = t.total

let merge a b =
  if a.n = 0 then { b with nans = a.nans + b.nans }
  else if b.n = 0 then { a with nans = a.nans + b.nans }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
      total = a.total +. b.total;
      nans = a.nans + b.nans;
    }
  end

let of_array arr =
  let t = create () in
  Array.iter (add t) arr;
  t
