let quantile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Quantile.quantile: empty array";
  if q < 0. || q > 1. then invalid_arg "Quantile.quantile: q out of range";
  if n = 1 then sorted.(0)
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let quantile a q =
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  quantile_sorted sorted q

let median a = quantile a 0.5

let percentiles a qs =
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  List.map (quantile_sorted sorted) qs
