(** Timestamped event accumulation and binning.

    A [Time_series.t] records (time, value) events — e.g. bytes received at
    packet arrivals — and can be re-binned at any timescale afterwards. This
    implements the R_{tau,F}(t) send-rate measurement of Section 4.1.1 of the
    paper. *)

type t

val create : unit -> t

(** [add t ~time ~value] appends an event. Times must be non-decreasing. *)
val add : t -> time:float -> value:float -> unit

val n_events : t -> int
val total : t -> float

(** [first_time t] / [last_time t]: event time bounds; [None] when empty. *)
val first_time : t -> float option

val last_time : t -> float option

(** [binned t ~t0 ~t1 ~bin] sums event values into consecutive bins of width
    [bin] covering the closed window [\[t0, t1\]]; an event exactly at [t1]
    counts in the final bin. Events outside the window are ignored. The
    result has [ceil ((t1 - t0) / bin)] entries. *)
val binned : t -> t0:float -> t1:float -> bin:float -> float array

(** [rates t ~t0 ~t1 ~bin] is [binned] divided by the bin width: per-bin
    average rates (value units per second). *)
val rates : t -> t0:float -> t1:float -> bin:float -> float array

(** [mean_rate t ~t0 ~t1] is total value in the closed window [\[t0, t1\]]
    over its duration, with the same endpoint rule as {!binned}. *)
val mean_rate : t -> t0:float -> t1:float -> float

(** [iter t f] applies [f time value] to every event in order. *)
val iter : t -> (float -> float -> unit) -> unit

(** [events t] returns a copy of all events in order. *)
val events : t -> (float * float) array
