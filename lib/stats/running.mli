(** Streaming univariate statistics (Welford's algorithm).

    Constant-space accumulation of count, mean, variance, min and max.
    NaN samples are counted separately (see {!nans}) and excluded from
    every moment, so one bad sample cannot poison the accumulator. *)

type t

val create : unit -> t
val add : t -> float -> unit

(** [count t] is the number of non-NaN samples. *)
val count : t -> int

(** [nans t] is the number of NaN samples seen (and excluded). *)
val nans : t -> int

(** [mean t] is 0. when empty. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance; 0. for fewer than two
    samples. *)
val variance : t -> float

(** [population_variance t] divides by n rather than n-1. *)
val population_variance : t -> float

val stddev : t -> float
val population_stddev : t -> float

(** [cov t] is the coefficient of variation, [population_stddev /. mean];
    0. when the mean's magnitude is below [Float.min_float] (zero or
    denormal — a ratio against such a mean is numeric noise). *)
val cov : t -> float

val min_value : t -> float (* +infinity when empty *)
val max_value : t -> float (* -infinity when empty *)
val total : t -> float

(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams. *)
val merge : t -> t -> t

val of_array : float array -> t
