(* Struct-of-arrays Welford accumulators.

   One boxed Running.t per flow is fine at 10 flows and hostile at a
   million: each record is a separate heap object the GC must trace and
   the cache must chase. Here every field lives in its own Bigarray, so
   slot [i]'s accumulator is six float loads from flat unboxed storage and
   the whole store is invisible to the GC (Bigarray data is off-heap).
   The arithmetic is kept textually in step with Running.add/merge so the
   two stay bit-for-bit interchangeable (the equivalence is property
   tested). *)

open Bigarray

type f64 = (float, float64_elt, c_layout) Array1.t
type i64 = (int64, int64_elt, c_layout) Array1.t

type t = {
  len : int;
  n : i64;
  nans : i64;
  mean : f64;
  m2 : f64;
  min_v : f64;
  max_v : f64;
  total : f64;
}

let reset_slot t i =
  Array1.set t.n i 0L;
  Array1.set t.nans i 0L;
  Array1.set t.mean i 0.;
  Array1.set t.m2 i 0.;
  Array1.set t.min_v i infinity;
  Array1.set t.max_v i neg_infinity;
  Array1.set t.total i 0.

let create len =
  if len < 0 then invalid_arg "Stats.Soa.create: negative length";
  let t =
    {
      len;
      n = Array1.create Int64 c_layout len;
      nans = Array1.create Int64 c_layout len;
      mean = Array1.create Float64 c_layout len;
      m2 = Array1.create Float64 c_layout len;
      min_v = Array1.create Float64 c_layout len;
      max_v = Array1.create Float64 c_layout len;
      total = Array1.create Float64 c_layout len;
    }
  in
  for i = 0 to len - 1 do
    reset_slot t i
  done;
  t

let length t = t.len

let add t i x =
  if Float.is_nan x then
    Array1.set t.nans i (Int64.add (Array1.get t.nans i) 1L)
  else begin
    let n = Int64.add (Array1.get t.n i) 1L in
    Array1.set t.n i n;
    let mean = Array1.get t.mean i in
    let delta = x -. mean in
    let mean = mean +. (delta /. Int64.to_float n) in
    Array1.set t.mean i mean;
    Array1.set t.m2 i (Array1.get t.m2 i +. (delta *. (x -. mean)));
    if x < Array1.get t.min_v i then Array1.set t.min_v i x;
    if x > Array1.get t.max_v i then Array1.set t.max_v i x;
    Array1.set t.total i (Array1.get t.total i +. x)
  end

let count t i = Int64.to_int (Array1.get t.n i)
let nans t i = Int64.to_int (Array1.get t.nans i)
let mean t i = if count t i = 0 then 0. else Array1.get t.mean i

let variance t i =
  let n = count t i in
  if n < 2 then 0. else Array1.get t.m2 i /. float_of_int (n - 1)

let population_variance t i =
  let n = count t i in
  if n = 0 then 0. else Array1.get t.m2 i /. float_of_int n

let stddev t i = sqrt (variance t i)
let population_stddev t i = sqrt (population_variance t i)

let cov t i =
  let m = mean t i in
  if Float.abs m < Float.min_float then 0. else population_stddev t i /. m

let min_value t i = Array1.get t.min_v i
let max_value t i = Array1.get t.max_v i
let total t i = Array1.get t.total i

(* Chan et al. pairwise merge, same formula as Running.merge. *)
let merge_into ~src i ~dst j =
  let na = count dst j and nb = count src i in
  Array1.set dst.nans j
    (Int64.add (Array1.get dst.nans j) (Array1.get src.nans i));
  if nb = 0 then ()
  else if na = 0 then begin
    Array1.set dst.n j (Array1.get src.n i);
    Array1.set dst.mean j (Array1.get src.mean i);
    Array1.set dst.m2 j (Array1.get src.m2 i);
    Array1.set dst.min_v j (Array1.get src.min_v i);
    Array1.set dst.max_v j (Array1.get src.max_v i);
    Array1.set dst.total j (Array1.get src.total i)
  end
  else begin
    let n = na + nb in
    let delta = Array1.get src.mean i -. Array1.get dst.mean j in
    let mean =
      Array1.get dst.mean j
      +. (delta *. float_of_int nb /. float_of_int n)
    in
    let m2 =
      Array1.get dst.m2 j +. Array1.get src.m2 i
      +. (delta *. delta *. float_of_int na *. float_of_int nb
         /. float_of_int n)
    in
    Array1.set dst.n j (Int64.of_int n);
    Array1.set dst.mean j mean;
    Array1.set dst.m2 j m2;
    Array1.set dst.min_v j
      (Float.min (Array1.get dst.min_v j) (Array1.get src.min_v i));
    Array1.set dst.max_v j
      (Float.max (Array1.get dst.max_v j) (Array1.get src.max_v i));
    Array1.set dst.total j
      (Array1.get dst.total j +. Array1.get src.total i)
  end
