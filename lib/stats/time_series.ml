(* Growable parallel arrays of times and values; binning is a single linear
   pass, so a series recorded once can be analyzed at many timescales. *)

type t = {
  mutable times : float array;
  mutable values : float array;
  mutable n : int;
  mutable total : float;
}

let create () = { times = [||]; values = [||]; n = 0; total = 0. }

let grow t =
  let cap = max 64 (2 * Array.length t.times) in
  let times = Array.make cap 0. and values = Array.make cap 0. in
  Array.blit t.times 0 times 0 t.n;
  Array.blit t.values 0 values 0 t.n;
  t.times <- times;
  t.values <- values

let add t ~time ~value =
  if t.n > 0 && time < t.times.(t.n - 1) then
    invalid_arg "Time_series.add: non-monotone time";
  if t.n = Array.length t.times then grow t;
  t.times.(t.n) <- time;
  t.values.(t.n) <- value;
  t.n <- t.n + 1;
  t.total <- t.total +. value

let n_events t = t.n
let total t = t.total
let first_time t = if t.n = 0 then None else Some t.times.(0)
let last_time t = if t.n = 0 then None else Some t.times.(t.n - 1)

(* The window is closed on both ends: an event exactly at [t1] lands in the
   last bin (the index clamp below) rather than being dropped, so summing a
   series over [first_time, last_time] conserves its total. *)
let binned t ~t0 ~t1 ~bin =
  if bin <= 0. then invalid_arg "Time_series.binned: bin must be positive";
  if t1 <= t0 then invalid_arg "Time_series.binned: empty window";
  let nbins = int_of_float (ceil ((t1 -. t0) /. bin)) in
  let out = Array.make nbins 0. in
  for i = 0 to t.n - 1 do
    let time = t.times.(i) in
    if time >= t0 && time <= t1 then begin
      let b = int_of_float ((time -. t0) /. bin) in
      let b = if b >= nbins then nbins - 1 else b in
      out.(b) <- out.(b) +. t.values.(i)
    end
  done;
  out

let rates t ~t0 ~t1 ~bin =
  let b = binned t ~t0 ~t1 ~bin in
  Array.map (fun v -> v /. bin) b

(* Closed window, matching [binned]. *)
let mean_rate t ~t0 ~t1 =
  if t1 <= t0 then invalid_arg "Time_series.mean_rate: empty window";
  let sum = ref 0. in
  for i = 0 to t.n - 1 do
    let time = t.times.(i) in
    if time >= t0 && time <= t1 then sum := !sum +. t.values.(i)
  done;
  !sum /. (t1 -. t0)

let iter t f =
  for i = 0 to t.n - 1 do
    f t.times.(i) t.values.(i)
  done

let events t = Array.init t.n (fun i -> (t.times.(i), t.values.(i)))
