(** The Rate Adaptation Protocol (RAP) of Rejaie/Handley/Estrin
    (INFOCOM 1999), reconstructed for the Section 5 comparison.

    A pure AIMD rate-based scheme: the receiver acks every packet; once per
    smoothed RTT the sender additively increases its rate by one packet per
    RTT, and on each detected loss event (3 duplicate acks or an ack gap,
    at most once per RTT) it halves the rate. No equation, no timeout
    modelling — which is why RAP underperforms TCP where retransmission
    timeouts matter (the paper's argument for TFRC).

    The receiver side is {!Tcpsim.Tcp_sink} (per-packet cumulative +
    SACK acks). *)

type t

val create :
  Engine.Runtime.t ->
  ?pkt_size:int ->
  ?initial_rtt:float ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

val recv : t -> Netsim.Packet.handler
val start : t -> at:float -> unit
val stop : t -> unit
val rate : t -> float (** bytes/s *)

val packets_sent : t -> int
val loss_events : t -> int
