(** TEAR — TCP Emulation At the Receivers (Ozdemir/Rhee 1999), the
    remaining Section 5 comparison protocol; the paper's authors "did not
    have access to sufficient information ... to perform comparative
    studies", so this is a good-faith reconstruction from the cited
    presentation's idea:

    the {e receiver} emulates a TCP congestion window against the arrival
    stream (slow start, congestion avoidance, halving on a loss, at most
    once per emulated round), smooths cwnd/RTT with an EWMA, and feeds the
    resulting rate to the sender, which simply paces at it. Rate changes
    are smoother than TCP's because of the receiver-side smoothing, but the
    window emulation is still AIMD underneath.

    Wire format: the sender emits [Tfrc_data] packets (for the piggybacked
    RTT); the receiver replies with [Tfrc_feedback] whose [recv_rate] field
    carries the computed allowed rate. *)

module Sender : sig
  type t

  val create :
    Engine.Runtime.t ->
    ?pkt_size:int ->
    ?initial_rtt:float ->
    flow:int ->
    transmit:Netsim.Packet.handler ->
    unit ->
    t

  val recv : t -> Netsim.Packet.handler
  val start : t -> at:float -> unit
  val stop : t -> unit
  val rate : t -> float (** bytes/s *)

  val packets_sent : t -> int
end

module Receiver : sig
  type t

  val create :
    Engine.Runtime.t ->
    ?pkt_size:int ->
    ?ewma:float (** weight on the newest cwnd/RTT sample, default 0.1 *) ->
    ?initial_rtt:float ->
    flow:int ->
    transmit:Netsim.Packet.handler ->
    unit ->
    t

  val recv : t -> Netsim.Packet.handler
  val stop : t -> unit

  (** Emulated congestion window, packets. *)
  val cwnd : t -> float

  (** Smoothed allowed rate, bytes/s. *)
  val rate : t -> float

  val losses : t -> int
end
