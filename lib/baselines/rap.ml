type t = {
  rt : Engine.Runtime.t;
  pkt_size : int;
  flow : int;
  transmit : Netsim.Packet.handler;
  mutable rate : float; (* bytes/s *)
  mutable srtt : float;
  mutable have_rtt : bool;
  mutable running : bool;
  mutable seq : int;
  mutable send_times : (int * float) option; (* single-segment timing *)
  mutable expected : int; (* next echo seq expected *)
  mutable last_decrease : float;
  mutable loss_events : int;
  mutable last_ack_at : float;
}

let create rt ?(pkt_size = 1000) ?(initial_rtt = 0.5) ~flow ~transmit () =
  {
    rt;
    pkt_size;
    flow;
    transmit;
    rate = float_of_int pkt_size /. initial_rtt;
    srtt = initial_rtt;
    have_rtt = false;
    running = false;
    seq = 0;
    send_times = None;
    expected = 0;
    last_decrease = -1e9;
    loss_events = 0;
    last_ack_at = 0.;
  }

let s_bytes t = float_of_int t.pkt_size

let rec send_loop t =
  if t.running then begin
    let now = Engine.Runtime.now t.rt in
    let pkt =
      Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.seq ~size:t.pkt_size ~now
        Netsim.Packet.Data
    in
    if t.send_times = None then t.send_times <- Some (t.seq, now);
    t.seq <- t.seq + 1;
    t.transmit pkt;
    ignore (Engine.Runtime.after t.rt (s_bytes t /. t.rate) (fun () -> send_loop t))
  end

(* Additive increase: one packet per RTT, applied once per RTT. *)
let rec increase_loop t =
  if t.running then begin
    let now = Engine.Runtime.now t.rt in
    (* Silence detection: no acks for several RTTs means heavy loss. *)
    if now -. t.last_ack_at > 4. *. t.srtt && t.have_rtt then begin
      t.rate <- Float.max (s_bytes t /. 4.) (t.rate /. 2.);
      t.loss_events <- t.loss_events + 1;
      t.last_decrease <- now
    end
    else t.rate <- t.rate +. (s_bytes t /. t.srtt);
    ignore (Engine.Runtime.after t.rt t.srtt (fun () -> increase_loop t))
  end

let decrease t =
  let now = Engine.Runtime.now t.rt in
  (* At most one multiplicative decrease per RTT: losses within a round
     trip are one congestion signal. *)
  if now -. t.last_decrease > t.srtt then begin
    t.rate <- Float.max (s_bytes t /. 4.) (t.rate /. 2.);
    t.loss_events <- t.loss_events + 1;
    t.last_decrease <- now
  end

(* Echo acks carry seq+1 of the echoed packet; a jump past [expected]
   reveals losses in between. *)
let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | Tcp_ack { ack; _ } ->
      if t.running then begin
        let now = Engine.Runtime.now t.rt in
        t.last_ack_at <- now;
        let echoed = ack - 1 in
        (match t.send_times with
        | Some (seq, sent) when echoed >= seq ->
            let sample = now -. sent in
            t.srtt <-
              (if t.have_rtt then (0.875 *. t.srtt) +. (0.125 *. sample)
               else sample);
            t.have_rtt <- true;
            t.send_times <- None
        | _ -> ());
        if echoed >= t.expected then begin
          if echoed > t.expected then decrease t (* gap: packets lost *);
          t.expected <- echoed + 1
        end
      end
  | Data | Tfrc_data _ | Tfrc_feedback _ -> ()

let recv t = recv t

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         t.last_ack_at <- Engine.Runtime.now t.rt;
         send_loop t;
         increase_loop t))

let stop t = t.running <- false
let rate t = t.rate
let packets_sent t = t.seq
let loss_events t = t.loss_events
