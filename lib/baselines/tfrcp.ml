type t = {
  rt : Engine.Runtime.t;
  pkt_size : int;
  update_interval : float;
  ewma : float;
  flow : int;
  transmit : Netsim.Packet.handler;
  mutable rate : float; (* bytes/s *)
  mutable srtt : float;
  mutable have_rtt : bool;
  mutable running : bool;
  mutable seq : int;
  mutable timing : (int * float) option;
  mutable expected : int; (* next echo seq expected *)
  mutable p : float; (* smoothed loss fraction *)
  (* Per-epoch accounting. *)
  mutable epoch_echoes : int;
  mutable epoch_holes : int;
}

let create rt ?(pkt_size = 1000) ?(initial_rtt = 0.5) ?(update_interval = 0.5)
    ?(ewma = 0.3) ~flow ~transmit () =
  {
    rt;
    pkt_size;
    update_interval;
    ewma;
    flow;
    transmit;
    rate = float_of_int pkt_size /. initial_rtt;
    srtt = initial_rtt;
    have_rtt = false;
    running = false;
    seq = 0;
    timing = None;
    expected = 0;
    p = 0.;
    epoch_echoes = 0;
    epoch_holes = 0;
  }

let s_bytes t = float_of_int t.pkt_size

let rec send_loop t =
  if t.running then begin
    let now = Engine.Runtime.now t.rt in
    let pkt =
      Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.seq ~size:t.pkt_size ~now
        Netsim.Packet.Data
    in
    if t.timing = None then t.timing <- Some (t.seq, now);
    t.seq <- t.seq + 1;
    t.transmit pkt;
    ignore (Engine.Runtime.after t.rt (s_bytes t /. t.rate) (fun () -> send_loop t))
  end

let rec epoch_loop t =
  if t.running then begin
    (* Loss fraction over the epoch: holes observed in the echo stream over
       echoes + holes. Measuring per fixed epoch (rather than per loss
       interval) is exactly the weakness the paper points out. *)
    let samples = t.epoch_echoes + t.epoch_holes in
    if samples > 0 then begin
      let frac = float_of_int t.epoch_holes /. float_of_int samples in
      t.p <- ((1. -. t.ewma) *. t.p) +. (t.ewma *. frac);
      if t.p > 1e-6 then
        t.rate <-
          Float.max (s_bytes t /. 4.)
            (Tfrc.Response_function.rate Tfrc.Response_function.Pftk
               ~s:t.pkt_size ~r:t.srtt ~t_rto:(4. *. t.srtt) ~p:t.p)
      else t.rate <- 2. *. t.rate
    end;
    t.epoch_echoes <- 0;
    t.epoch_holes <- 0;
    ignore (Engine.Runtime.after t.rt t.update_interval (fun () -> epoch_loop t))
  end

let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | Tcp_ack { ack; _ } ->
      if t.running then begin
        let now = Engine.Runtime.now t.rt in
        let echoed = ack - 1 in
        (match t.timing with
        | Some (seq, sent) when echoed >= seq ->
            let sample = now -. sent in
            t.srtt <-
              (if t.have_rtt then (0.875 *. t.srtt) +. (0.125 *. sample)
               else sample);
            t.have_rtt <- true;
            t.timing <- None
        | _ -> ());
        if echoed >= t.expected then begin
          t.epoch_holes <- t.epoch_holes + (echoed - t.expected);
          t.epoch_echoes <- t.epoch_echoes + 1;
          t.expected <- echoed + 1
        end
      end
  | Data | Tfrc_data _ | Tfrc_feedback _ -> ()

let recv t = recv t

let start t ~at =
  ignore
    (Engine.Runtime.at t.rt at (fun () ->
         t.running <- true;
         send_loop t;
         ignore
           (Engine.Runtime.after t.rt t.update_interval (fun () -> epoch_loop t))))

let stop t = t.running <- false
let rate t = t.rate
let loss_estimate t = t.p
let packets_sent t = t.seq
