(** TFRCP — the Model-Based TCP-Friendly Rate Control Protocol of
    Padhye/Kurose/Towsley/Koodli (NOSSDAV 1999), reconstructed for the
    Section 5 comparison.

    The receiver acks every packet; at {e fixed} wall-clock intervals the
    sender computes the loss fraction observed in the last interval,
    smooths it (EWMA), and sets the rate from the full PFTK equation — or
    doubles the rate if the interval was loss-free. Because updates happen
    only at fixed epochs, its transient response at shorter timescales is
    poor, and computing the loss rate per epoch makes it sensitive to RTT
    and rate changes — which is what the paper's comparison shows. *)

type t

val create :
  Engine.Runtime.t ->
  ?pkt_size:int ->
  ?initial_rtt:float ->
  ?update_interval:float (** epoch length, default 0.5 s *) ->
  ?ewma:float (** weight on the newest epoch's loss fraction, default 0.3 *) ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

val recv : t -> Netsim.Packet.handler
val start : t -> at:float -> unit
val stop : t -> unit
val rate : t -> float (** bytes/s *)

val loss_estimate : t -> float
val packets_sent : t -> int
