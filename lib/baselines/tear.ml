module Sender = struct
  type t = {
    rt : Engine.Runtime.t;
    pkt_size : int;
    flow : int;
    transmit : Netsim.Packet.handler;
    mutable rate : float;
    mutable rtt : float;
    mutable running : bool;
    mutable seq : int;
  }

  let create rt ?(pkt_size = 1000) ?(initial_rtt = 0.5) ~flow ~transmit () =
    {
      rt;
      pkt_size;
      flow;
      transmit;
      rate = float_of_int pkt_size /. initial_rtt;
      rtt = initial_rtt;
      running = false;
      seq = 0;
    }

  let rec send_loop t =
    if t.running then begin
      let pkt =
        Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.seq ~size:t.pkt_size
          ~now:(Engine.Runtime.now t.rt)
          (Netsim.Packet.Tfrc_data { rtt = t.rtt })
      in
      t.seq <- t.seq + 1;
      t.transmit pkt;
      ignore
        (Engine.Runtime.after t.rt
           (float_of_int t.pkt_size /. t.rate)
           (fun () -> send_loop t))
    end

  (* The receiver dictates the rate; the sender only paces. *)
  let recv t (pkt : Netsim.Packet.t) =
    match pkt.payload with
    | Tfrc_feedback { recv_rate; ts_echo; ts_delay; _ } ->
        if t.running then begin
          let sample = Engine.Runtime.now t.rt -. ts_echo -. ts_delay in
          if sample > 0. then t.rtt <- (0.9 *. t.rtt) +. (0.1 *. sample);
          if recv_rate > 0. then
            t.rate <- Float.max (float_of_int t.pkt_size /. 8.) recv_rate
        end
    | Data | Tcp_ack _ | Tfrc_data _ -> ()

  let recv t = recv t

  let start t ~at =
    ignore
      (Engine.Runtime.at t.rt at (fun () ->
           t.running <- true;
           send_loop t))

  let stop t = t.running <- false
  let rate t = t.rate
  let packets_sent t = t.seq
end

module Receiver = struct
  type t = {
    rt : Engine.Runtime.t;
    pkt_size : int;
    ewma : float;
    flow : int;
    transmit : Netsim.Packet.handler;
    mutable rtt : float; (* piggybacked sender estimate *)
    mutable cwnd : float;
    mutable ssthresh : float;
    mutable round_left : int; (* packets until the emulated round ends *)
    mutable loss_this_round : bool;
    mutable expected : int;
    mutable smoothed_rate : float;
    mutable have_rate : bool;
    mutable losses : int;
    mutable last_data_sent_at : float;
    mutable last_data_arrival : float;
    mutable fb_seq : int;
    mutable running : bool;
  }

  let rec create rt ?(pkt_size = 1000) ?(ewma = 0.1) ?(initial_rtt = 0.5)
      ~flow ~transmit () =
    let t =
      {
        rt;
        pkt_size;
        ewma;
        flow;
        transmit;
        rtt = initial_rtt;
        cwnd = 2.;
        ssthresh = 1e9;
        round_left = 2;
        loss_this_round = false;
        expected = 0;
        smoothed_rate = 0.;
        have_rate = false;
        losses = 0;
        last_data_sent_at = 0.;
        last_data_arrival = 0.;
        fb_seq = 0;
        running = true;
      }
    in
    let rec tick () =
      if t.running then begin
        send_feedback t;
        ignore (Engine.Runtime.after rt t.rtt tick)
      end
    in
    ignore (Engine.Runtime.after rt t.rtt tick);
    t

  and send_feedback t =
    if t.have_rate then begin
      let now = Engine.Runtime.now t.rt in
      t.fb_seq <- t.fb_seq + 1;
      t.transmit
        (Netsim.Packet.make t.rt ~flow:t.flow ~seq:t.fb_seq ~size:40 ~now
           (Netsim.Packet.Tfrc_feedback
              {
                p = 0.;
                recv_rate = t.smoothed_rate;
                ts_echo = t.last_data_sent_at;
                ts_delay = now -. t.last_data_arrival;
              }))
    end

  (* One emulated round has elapsed: fold cwnd/RTT into the rate. While the
     emulated window is still in slow start the sample is used directly —
     smoothing there would throttle the startup the window emulation is
     supposed to provide. *)
  let end_round t =
    let sample = t.cwnd *. float_of_int t.pkt_size /. t.rtt in
    if t.have_rate && t.cwnd >= t.ssthresh then
      t.smoothed_rate <-
        ((1. -. t.ewma) *. t.smoothed_rate) +. (t.ewma *. sample)
    else begin
      t.smoothed_rate <- sample;
      t.have_rate <- true
    end;
    t.loss_this_round <- false;
    t.round_left <- max 1 (int_of_float t.cwnd)

  let on_loss t =
    t.losses <- t.losses + 1;
    if not t.loss_this_round then begin
      (* Emulated TCP: halve once per round. *)
      t.loss_this_round <- true;
      t.ssthresh <- Float.max 2. (t.cwnd /. 2.);
      t.cwnd <- t.ssthresh;
      end_round t
    end

  let on_arrival t =
    (* Window growth per arrival, as the emulated TCP would on an ack. *)
    if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.
    else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
    t.round_left <- t.round_left - 1;
    if t.round_left <= 0 then end_round t

  let recv t (pkt : Netsim.Packet.t) =
    match pkt.payload with
    | Tfrc_data { rtt } ->
        if rtt > 0. then t.rtt <- rtt;
        t.last_data_sent_at <- pkt.sent_at;
        t.last_data_arrival <- Engine.Runtime.now t.rt;
        if pkt.seq > t.expected then
          (* Gap: the missing packets are losses for the emulation. *)
          for _ = t.expected to pkt.seq - 1 do
            on_loss t
          done;
        if pkt.seq >= t.expected then begin
          t.expected <- pkt.seq + 1;
          on_arrival t
        end
    | Data | Tcp_ack _ | Tfrc_feedback _ -> ()

  let recv t = recv t
  let stop t = t.running <- false
  let cwnd t = t.cwnd
  let rate t = t.smoothed_rate
  let losses t = t.losses
end
