(** Receiver for unreliable rate-based protocols (RAP, TFRCP): echoes every
    data packet individually as an ack carrying [seq + 1], with no
    cumulative semantics — the sender infers losses from gaps in the echo
    stream. (A cumulative-ack sink would stall at the first hole, since
    these protocols never retransmit.) *)

type t

val create :
  Engine.Runtime.t ->
  ?ack_size:int ->
  flow:int ->
  transmit:Netsim.Packet.handler ->
  unit ->
  t

val recv : t -> Netsim.Packet.handler
val packets_received : t -> int
val bytes_received : t -> int
