type t = {
  rt : Engine.Runtime.t;
  ack_size : int;
  flow : int;
  transmit : Netsim.Packet.handler;
  mutable packets : int;
  mutable bytes : int;
}

let create rt ?(ack_size = 40) ~flow ~transmit () =
  { rt; ack_size; flow; transmit; packets = 0; bytes = 0 }

let recv t (pkt : Netsim.Packet.t) =
  match pkt.payload with
  | Data | Tfrc_data _ ->
      t.packets <- t.packets + 1;
      t.bytes <- t.bytes + pkt.size;
      let echo =
        Netsim.Packet.make t.rt ~flow:t.flow ~seq:pkt.seq ~size:t.ack_size
          ~now:(Engine.Runtime.now t.rt)
          (Netsim.Packet.Tcp_ack
             { ack = pkt.seq + 1; sack = []; ece = pkt.ecn_marked })
      in
      t.transmit echo
  | Tcp_ack _ | Tfrc_feedback _ -> ()

let recv t = recv t
let packets_received t = t.packets
let bytes_received t = t.bytes
