(** Non-blocking UDP endpoint on a {!Loop}.

    Binds a loopback datagram socket, watches it on the loop, and drains
    every readable datagram to the installed handler. All socket
    operations go through an injectable {!Netio} interface (default: the
    real one), so deterministic syscall faults ({!Faultio}) exercise the
    exact production error paths.

    Errno policy — no [Unix_error] ever unwinds into the loop:

    - sends: transient failures (full socket buffer, [ENOBUFS],
      ICMP-induced [ECONNREFUSED]) count as drops — UDP semantics;
      [EINTR] is retried a bounded number of times; any other errno
      ([EHOSTUNREACH], [ENETUNREACH], [EPERM], [ENOMEM], …) counts as a
      send {e error} and is surfaced to the health handler, where a
      {!Supervisor} treats it as a degradation signal;
    - receives: [EINTR] and [ECONNREFUSED] retry the drain, a
      zero-length datagram is counted and delivered (the {!Codec}
      rejects it as truncated), and any unexpected errno counts as a
      receive error, goes to the health handler, and ends only the
      current drain pass. *)

type t

(** [create loop ?port ?netio ()] binds [127.0.0.1:port] ([port] defaults
    to 0 = ephemeral) and registers with [loop] — both the readable
    watch and the netio's in-flight counter
    ({!Loop.register_inflight}). [netio] defaults to {!Netio.unix}. *)
val create : Loop.t -> ?port:int -> ?netio:Netio.t -> unit -> t

(** The locally bound port (useful after an ephemeral bind). *)
val port : t -> int

(** [addr ~port] is the loopback destination for [port]. *)
val addr : port:int -> Unix.sockaddr

(** [set_handler t f] installs the datagram handler, called with each
    datagram's bytes and source address. Replaces any previous handler. *)
val set_handler : t -> (string -> Unix.sockaddr -> unit) -> unit

(** [set_health_handler t f] installs the hard-error observer: [f err]
    runs on every send or receive failure outside the transient set
    (after the error was counted). Replaces any previous handler. *)
val set_health_handler : t -> (Unix.error -> unit) -> unit

(** [send t ~dest data] transmits one datagram; drops (and counts) it on
    transient failure, counts-and-surfaces hard errors. Raises
    [Invalid_argument] if [data] exceeds {!Codec.max_frame}. *)
val send : t -> dest:Unix.sockaddr -> string -> unit

(** [drain_now t] synchronously drains every currently readable
    datagram, as the loop's readiness callback would. For harness
    finalization (flush what the kernel still holds before reading
    counters). *)
val drain_now : t -> unit

val datagrams_received : t -> int
val datagrams_sent : t -> int

(** Sends dropped on transient socket errors (incl. exhausted EINTR
    retries). *)
val send_drops : t -> int

(** Sends that failed with a hard errno (routed to the health handler). *)
val send_errors : t -> int

(** Drain passes ended by an unexpected errno. *)
val recv_errors : t -> int

(** Unregisters from the loop and closes the socket. Idempotent. *)
val close : t -> unit
