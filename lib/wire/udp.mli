(** Non-blocking UDP endpoint on a {!Loop}.

    Binds a loopback datagram socket, watches it on the loop, and drains
    every readable datagram to the installed handler. Sends are
    fire-and-forget: transient send failures (full socket buffer,
    ICMP-induced [ECONNREFUSED] from a not-yet-listening peer) count as
    drops — UDP semantics — rather than raising into protocol code. *)

type t

(** [create loop ?port ()] binds [127.0.0.1:port] ([port] defaults to 0 =
    ephemeral) and registers with [loop]. *)
val create : Loop.t -> ?port:int -> unit -> t

(** The locally bound port (useful after an ephemeral bind). *)
val port : t -> int

(** [addr ~port] is the loopback destination for [port]. *)
val addr : port:int -> Unix.sockaddr

(** [set_handler t f] installs the datagram handler, called with each
    datagram's bytes and source address. Replaces any previous handler. *)
val set_handler : t -> (string -> Unix.sockaddr -> unit) -> unit

(** [send t ~dest data] transmits one datagram; drops (and counts) it on
    transient failure. Raises [Invalid_argument] if [data] exceeds
    {!Codec.max_frame}. *)
val send : t -> dest:Unix.sockaddr -> string -> unit

val datagrams_received : t -> int
val datagrams_sent : t -> int

(** Sends dropped on transient socket errors. *)
val send_drops : t -> int

(** Unregisters from the loop and closes the socket. Idempotent. *)
val close : t -> unit
