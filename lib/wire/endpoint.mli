(** TFRC endpoints over UDP: the simulator's {!Tfrc.Tfrc_sender} and
    {!Tfrc.Tfrc_receiver} — the same modules, no wire-specific protocol
    code — driven by a {!Loop} runtime, with {!Codec} framing on a
    {!Udp} socket. *)

(** A running sender endpoint. *)
type sender

(** [sender loop udp ~config ~flow ~dest ?send ()] starts a TFRC sender
    whose data frames go to [dest] (or through [send] when given — the
    loopback demo routes frames through a {!Shaper} this way) and which
    decodes feedback from [udp]'s datagrams. Undecodable datagrams are
    counted, not raised. Call {!start_sender} to begin transmitting. *)
val sender :
  Loop.t ->
  Udp.t ->
  config:Tfrc.Tfrc_config.t ->
  flow:int ->
  dest:Unix.sockaddr ->
  ?send:(string -> unit) ->
  unit ->
  sender

val start_sender : sender -> at:float -> unit
val stop_sender : sender -> unit
val sender_machine : sender -> Tfrc.Tfrc_sender.t
val sender_decode_errors : sender -> int

(** A running receiver endpoint. *)
type receiver

(** [receiver loop udp ~config ~flow ?reply_to ?send ()] starts a TFRC
    receiver. Feedback is sent to [reply_to] when given, otherwise to
    the source address of the most recent decoded datagram (so a
    receiver serves whichever sender finds it); [send] overrides the
    socket path entirely, as for {!sender}. *)
val receiver :
  Loop.t ->
  Udp.t ->
  config:Tfrc.Tfrc_config.t ->
  flow:int ->
  ?reply_to:Unix.sockaddr ->
  ?send:(string -> unit) ->
  unit ->
  receiver

val stop_receiver : receiver -> unit
val receiver_machine : receiver -> Tfrc.Tfrc_receiver.t
val receiver_decode_errors : receiver -> int

(** Outcome of {!loopback_demo}. *)
type demo_result = {
  completed : bool;  (** the target packet count arrived in time *)
  elapsed : float;  (** loop time when the run ended, seconds *)
  data_sent : int;
  data_received : int;
  feedbacks_sent : int;
  feedbacks_received : int;
  shaper_dropped : int;  (** frames dropped by the seeded shaper *)
  decode_errors : int;
  final_rate : float;  (** sender's allowed rate at the end, bytes/s *)
  final_rtt : float;
}

(** [loopback_demo ~packets ~seed ()] runs a complete TFRC transfer over
    two real UDP sockets on 127.0.0.1 inside one [`Monotonic] loop,
    with both directions passing through a seeded {!Shaper} (default:
    2 ms one-way delay, no loss), and returns once the receiver has
    [packets] data packets or [timeout] (default 30 s of loop time)
    expires. [config] defaults to the paper's parameters with
    [initial_rtt] = 50 ms so slow start reaches a useful rate within a
    short demo. Deterministic apart from wall-clock pacing: the shaper's
    loss/reorder pattern depends only on [seed]. *)
val loopback_demo :
  packets:int ->
  seed:int ->
  ?config:Tfrc.Tfrc_config.t ->
  ?shaper:Shaper.config ->
  ?timeout:float ->
  unit ->
  demo_result

val pp_demo_result : Format.formatter -> demo_result -> unit
