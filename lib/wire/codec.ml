let header_len = 31
let max_frame = 65535
let version = 2
let max_epoch = 0xFFFF

type error =
  | Truncated of { expected : int; got : int }
  | Oversized of { limit : int; got : int }
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Bad_length of { expected : int; got : int }
  | Bad_checksum of { expected : int; got : int }
  | Bad_value of string

let pp_error ppf = function
  | Truncated { expected; got } ->
      Format.fprintf ppf "truncated: need %d bytes, got %d" expected got
  | Oversized { limit; got } ->
      Format.fprintf ppf "oversized: %d bytes exceeds limit %d" got limit
  | Bad_magic -> Format.fprintf ppf "bad magic"
  | Bad_version v -> Format.fprintf ppf "unsupported version %d" v
  | Bad_tag tag -> Format.fprintf ppf "unknown payload tag %d" tag
  | Bad_length { expected; got } ->
      Format.fprintf ppf "bad length: expected %d bytes, got %d" expected got
  | Bad_checksum { expected; got } ->
      Format.fprintf ppf "bad checksum: expected %08x, got %08x" expected got
  | Bad_value what -> Format.fprintf ppf "bad value: %s" what

let error_to_string e = Format.asprintf "%a" pp_error e

(* FNV-1a 32-bit over [pos, pos+len). Not cryptographic — it guards
   against in-flight corruption and truncation splices, like UDP's own
   checksum but over the whole frame. *)
let fnv_seed = 0x811c9dc5

let fnv1a32 b ~pos ~len ~init =
  let h = ref init in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get b i)) * 0x01000193
         land 0xFFFFFFFF
  done;
  !h

(* Checksum of everything except the checksum field itself (bytes 7-10). *)
let frame_checksum b =
  let head = fnv1a32 b ~pos:0 ~len:7 ~init:fnv_seed in
  fnv1a32 b ~pos:11 ~len:(Bytes.length b - 11) ~init:head

let tag_of_payload : Netsim.Packet.payload -> int = function
  | Data -> 0
  | Tcp_ack _ -> 1
  | Tfrc_data _ -> 2
  | Tfrc_feedback _ -> 3

let tag_close = 4
let tag_close_ack = 5

let payload_len : Netsim.Packet.payload -> int = function
  | Data -> 0
  | Tcp_ack { sack; _ } -> 7 + (8 * List.length sack)
  | Tfrc_data _ -> 8
  | Tfrc_feedback _ -> 32

let u32_max = 0xFFFFFFFF

let check_u32 what v =
  if v < 0 || v > u32_max then
    invalid_arg (Printf.sprintf "Wire.Codec.encode: %s %d out of u32 range" what v)

let check_epoch v =
  if v < 0 || v > max_epoch then
    invalid_arg
      (Printf.sprintf "Wire.Codec.encode: epoch %d out of u16 range" v)

let set_u32 b off v = Bytes.set_int32_be b off (Int32.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_be b off) land u32_max

let set_f64 b off f = Bytes.set_int64_be b off (Int64.bits_of_float f)
let get_f64 b off = Int64.float_of_bits (Bytes.get_int64_be b off)

(* Shared header writer: everything except the checksum, which is set
   last over the complete frame. *)
let write_header b ~tag ~flags ~epoch ~flow ~seq ~size ~sent_at =
  Bytes.set b 0 'T';
  Bytes.set b 1 'F';
  Bytes.set_uint8 b 2 version;
  Bytes.set_uint8 b 3 tag;
  Bytes.set_uint8 b 4 flags;
  Bytes.set_uint16_be b 5 epoch;
  set_u32 b 11 flow;
  set_u32 b 15 seq;
  set_u32 b 19 size;
  set_f64 b 23 sent_at

let encode ?(epoch = 0) (p : Netsim.Packet.t) =
  check_u32 "flow" p.flow;
  check_u32 "seq" p.seq;
  check_u32 "size" p.size;
  check_epoch epoch;
  let plen = payload_len p.payload in
  let total = header_len + plen in
  if total > max_frame then
    invalid_arg
      (Printf.sprintf "Wire.Codec.encode: frame %d exceeds max_frame" total);
  let b = Bytes.create total in
  let flags =
    (if p.ecn_capable then 1 else 0)
    lor (if p.ecn_marked then 2 else 0)
    lor if p.corrupted then 4 else 0
  in
  write_header b
    ~tag:(tag_of_payload p.payload)
    ~flags ~epoch ~flow:p.flow ~seq:p.seq ~size:p.size ~sent_at:p.sent_at;
  (match p.payload with
  | Data -> ()
  | Tfrc_data { rtt } -> set_f64 b 31 rtt
  | Tfrc_feedback { p = lp; recv_rate; ts_echo; ts_delay } ->
      set_f64 b 31 lp;
      set_f64 b 39 recv_rate;
      set_f64 b 47 ts_echo;
      set_f64 b 55 ts_delay
  | Tcp_ack { ack; sack; ece } ->
      check_u32 "ack" ack;
      let n = List.length sack in
      if n > 0xFFFF then
        invalid_arg "Wire.Codec.encode: more than 65535 sack ranges";
      set_u32 b 31 ack;
      Bytes.set_uint8 b 35 (if ece then 1 else 0);
      Bytes.set_uint16_be b 36 n;
      List.iteri
        (fun i (lo, hi) ->
          check_u32 "sack lo" lo;
          check_u32 "sack hi" hi;
          set_u32 b (38 + (8 * i)) lo;
          set_u32 b (42 + (8 * i)) hi)
        sack);
  set_u32 b 7 (frame_checksum b);
  Bytes.unsafe_to_string b

let encode_ctrl ~tag ~epoch ~flow ~now =
  check_u32 "flow" flow;
  check_epoch epoch;
  if not (Float.is_finite now) then
    invalid_arg "Wire.Codec.encode_close: non-finite time";
  let b = Bytes.create header_len in
  write_header b ~tag ~flags:0 ~epoch ~flow ~seq:0 ~size:0 ~sent_at:now;
  set_u32 b 7 (frame_checksum b);
  Bytes.unsafe_to_string b

let encode_close ~epoch ~flow ~now = encode_ctrl ~tag:tag_close ~epoch ~flow ~now

let encode_close_ack ~epoch ~flow ~now =
  encode_ctrl ~tag:tag_close_ack ~epoch ~flow ~now

type body =
  | Packet of Netsim.Packet.t
  | Close
  | Close_ack

type msg = { epoch : int; flow : int; body : body }

(* Monadic short-circuit keeps the check sequence flat. *)
let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let finite what f =
  if Float.is_finite f then Ok f
  else Error (Bad_value (what ^ " is not finite"))

let decode rt s =
  let got = String.length s in
  if got > max_frame then Error (Oversized { limit = max_frame; got })
  else if got < header_len then
    Error (Truncated { expected = header_len; got })
  else begin
    let b = Bytes.unsafe_of_string s in
    if Bytes.get b 0 <> 'T' || Bytes.get b 1 <> 'F' then Error Bad_magic
    else begin
      let v = Bytes.get_uint8 b 2 in
      if v <> version then Error (Bad_version v)
      else begin
        let tag = Bytes.get_uint8 b 3 in
        let expected_len =
          match tag with
          | 0 -> Ok header_len
          | 2 -> Ok (header_len + 8)
          | 3 -> Ok (header_len + 32)
          | 4 | 5 -> Ok header_len
          | 1 ->
              (* Variable: the sack count lives 7 bytes into the payload. *)
              if got < header_len + 7 then
                Error (Truncated { expected = header_len + 7; got })
              else Ok (header_len + 7 + (8 * Bytes.get_uint16_be b 36))
          | tag -> Error (Bad_tag tag)
        in
        let* expected = expected_len in
        if got <> expected then Error (Bad_length { expected; got })
        else begin
          let sum = get_u32 b 7 in
          let computed = frame_checksum b in
          if sum <> computed then
            Error (Bad_checksum { expected = computed; got = sum })
          else begin
            let epoch = Bytes.get_uint16_be b 5 in
            let flow = get_u32 b 11 in
            if tag = tag_close then Ok { epoch; flow; body = Close }
            else if tag = tag_close_ack then Ok { epoch; flow; body = Close_ack }
            else begin
              let flags = Bytes.get_uint8 b 4 in
              let* sent_at = finite "sent_at" (get_f64 b 23) in
              let* payload =
                match tag with
                | 0 -> Ok Netsim.Packet.Data
                | 2 ->
                    let* rtt = finite "rtt" (get_f64 b 31) in
                    Ok (Netsim.Packet.Tfrc_data { rtt })
                | 3 ->
                    let* p = finite "p" (get_f64 b 31) in
                    let* recv_rate = finite "recv_rate" (get_f64 b 39) in
                    let* ts_echo = finite "ts_echo" (get_f64 b 47) in
                    let* ts_delay = finite "ts_delay" (get_f64 b 55) in
                    Ok (Netsim.Packet.Tfrc_feedback
                          { p; recv_rate; ts_echo; ts_delay })
                | _ ->
                    let ack = get_u32 b 31 in
                    let ece = Bytes.get_uint8 b 35 <> 0 in
                    let n = Bytes.get_uint16_be b 36 in
                    let sack =
                      List.init n (fun i ->
                          (get_u32 b (38 + (8 * i)), get_u32 b (42 + (8 * i))))
                    in
                    Ok (Netsim.Packet.Tcp_ack { ack; sack; ece })
              in
              let p =
                Netsim.Packet.make rt
                  ~ecn:(flags land 1 <> 0)
                  ~flow ~seq:(get_u32 b 15) ~size:(get_u32 b 19)
                  ~now:sent_at payload
              in
              p.ecn_marked <- flags land 2 <> 0;
              p.corrupted <- flags land 4 <> 0;
              Ok { epoch; flow; body = Packet p }
            end
          end
        end
      end
    end
  end

let decode_packet rt s =
  match decode rt s with
  | Ok { body = Packet p; _ } -> Ok p
  | Ok _ -> Error (Bad_value "control frame where a packet was expected")
  | Error _ as e -> e
