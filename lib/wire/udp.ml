type t = {
  fd : Unix.file_descr;
  loop : Loop.t;
  buf : Bytes.t;
  mutable on_datagram : string -> Unix.sockaddr -> unit;
  mutable rx : int;
  mutable tx : int;
  mutable tx_drops : int;
  mutable closed : bool;
}

let addr ~port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

(* Drain every queued datagram: select is level-triggered, but one
   callback per readiness event would add a loop turn of latency per
   datagram under bursts. *)
let rec drain t =
  if not t.closed then
    match Unix.recvfrom t.fd t.buf 0 (Bytes.length t.buf) [] with
    | 0, _ -> ()
    | n, src ->
        t.rx <- t.rx + 1;
        t.on_datagram (Bytes.sub_string t.buf 0 n) src;
        drain t
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain t
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* Linux surfaces a previous send's ICMP error on recv; the
           datagram it refers to is already counted as sent. *)
        drain t

let create loop ?(port = 0) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (addr ~port);
  let t =
    {
      fd;
      loop;
      buf = Bytes.create Codec.max_frame;
      on_datagram = (fun _ _ -> ());
      rx = 0;
      tx = 0;
      tx_drops = 0;
      closed = false;
    }
  in
  Loop.watch_fd loop fd ~on_readable:(fun () -> drain t);
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> 0

let set_handler t f = t.on_datagram <- f

let send t ~dest data =
  let len = String.length data in
  if len > Codec.max_frame then
    invalid_arg
      (Printf.sprintf "Wire.Udp.send: datagram %d exceeds max_frame" len);
  if not t.closed then
    match
      Unix.sendto t.fd (Bytes.unsafe_of_string data) 0 len [] dest
    with
    | _ -> t.tx <- t.tx + 1
    | exception
        Unix.Unix_error
          ( ( Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ECONNREFUSED
            | Unix.ENOBUFS ),
            _,
            _ ) ->
        t.tx_drops <- t.tx_drops + 1

let datagrams_received t = t.rx
let datagrams_sent t = t.tx
let send_drops t = t.tx_drops

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.unwatch_fd t.loop t.fd;
    Unix.close t.fd
  end
