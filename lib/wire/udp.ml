type t = {
  fd : Unix.file_descr;
  loop : Loop.t;
  netio : Netio.t;
  buf : Bytes.t;
  mutable on_datagram : string -> Unix.sockaddr -> unit;
  mutable on_health : Unix.error -> unit;
  mutable rx : int;
  mutable tx : int;
  mutable tx_drops : int;
  mutable tx_errors : int;
  mutable rx_errors : int;
  mutable closed : bool;
}

let addr ~port = Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let emit_errno_event t ~name err =
  let tr = Engine.Runtime.trace (Loop.runtime t.loop) in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time:(Loop.now t.loop) ~cat:"wire" ~name
      [ ("errno", Engine.Trace.Str (Unix.error_message err)) ]

(* Drain every queued datagram: select is level-triggered, but one
   callback per readiness event would add a loop turn of latency per
   datagram under bursts. Every [Unix_error] goes through the errno
   policy; none unwinds into the loop. *)
let rec drain t =
  if not t.closed then
    match t.netio.recvfrom t.fd t.buf 0 (Bytes.length t.buf) with
    | n, src ->
        (* n = 0 is a legitimate zero-length datagram, not end-of-input:
           count it and deliver it (Codec rejects it as truncated), then
           keep draining. *)
        t.rx <- t.rx + 1;
        t.on_datagram (Bytes.sub_string t.buf 0 n) src;
        drain t
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
        ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain t
    | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
        (* Linux surfaces a previous send's ICMP error on recv; the
           datagram it refers to is already counted as sent. *)
        drain t
    | exception Unix.Unix_error (err, _, _) ->
        (* Anything else (ENOMEM, injected chaos): count, surface to the
           health handler, stop this drain — the loop survives and the
           next readiness event retries. *)
        t.rx_errors <- t.rx_errors + 1;
        emit_errno_event t ~name:"rx_error" err;
        t.on_health err

let create loop ?(port = 0) ?netio () =
  let netio = match netio with Some io -> io | None -> Netio.unix () in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.set_nonblock fd;
  (* A generous receive buffer keeps paced loopback traffic from
     overflowing the socket while the warp loop settles in-flight
     datagrams; best effort (the kernel clamps to its limits). *)
  (try Unix.setsockopt_int fd Unix.SO_RCVBUF (1 lsl 20)
   with Unix.Unix_error _ -> ());
  Unix.bind fd (addr ~port);
  let t =
    {
      fd;
      loop;
      netio;
      buf = Bytes.create Codec.max_frame;
      on_datagram = (fun _ _ -> ());
      on_health = (fun _ -> ());
      rx = 0;
      tx = 0;
      tx_drops = 0;
      tx_errors = 0;
      rx_errors = 0;
      closed = false;
    }
  in
  Loop.register_inflight loop netio.Netio.inflight;
  Loop.watch_fd loop fd ~on_readable:(fun () -> drain t);
  t

let port t =
  match Unix.getsockname t.fd with
  | Unix.ADDR_INET (_, p) -> p
  | Unix.ADDR_UNIX _ -> 0

let set_handler t f = t.on_datagram <- f
let set_health_handler t f = t.on_health <- f

(* Errno policy for sends. Transient conditions (full buffer, ICMP
   ECONNREFUSED replay, ENOBUFS) are UDP drops; EINTR gets a bounded
   retry; everything else — EHOSTUNREACH, ENETUNREACH, EPERM, ENOMEM,
   whatever an adversarial kernel produces — is counted and surfaced to
   the health handler. Nothing unwinds into protocol code. *)
let rec send_bytes t data len dest retries =
  match t.netio.sendto t.fd data 0 len dest with
  | _ -> t.tx <- t.tx + 1
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if retries > 0 then send_bytes t data len dest (retries - 1)
      else t.tx_drops <- t.tx_drops + 1
  | exception
      Unix.Unix_error
        ( ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.ECONNREFUSED | Unix.ENOBUFS)
           as err),
          _,
          _ ) ->
      t.tx_drops <- t.tx_drops + 1;
      emit_errno_event t ~name:"tx_drop" err
  | exception Unix.Unix_error (err, _, _) ->
      t.tx_errors <- t.tx_errors + 1;
      emit_errno_event t ~name:"tx_error" err;
      t.on_health err

let send t ~dest data =
  let len = String.length data in
  if len > Codec.max_frame then
    invalid_arg
      (Printf.sprintf "Wire.Udp.send: datagram %d exceeds max_frame" len);
  if not t.closed then
    send_bytes t (Bytes.unsafe_of_string data) len dest 3

let drain_now t = drain t
let datagrams_received t = t.rx
let datagrams_sent t = t.tx
let send_drops t = t.tx_drops
let send_errors t = t.tx_errors
let recv_errors t = t.rx_errors

let close t =
  if not t.closed then begin
    t.closed <- true;
    Loop.unwatch_fd t.loop t.fd;
    t.netio.close t.fd
  end
