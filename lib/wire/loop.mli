(** Real-time event loop: the wire-side {!Engine.Runtime} implementation.

    Owns a timer queue (reusing {!Engine.Timing_wheel}, the same backend
    the simulator runs on) and a set of watched file descriptors serviced
    through [Unix.select]. Protocol state machines written against
    {!Engine.Runtime} — the TFRC sender and receiver, the baselines — run
    on this loop unchanged: {!runtime} hands them the same interface
    {!Engine.Sim.runtime} does.

    Two clock modes:

    - [`Monotonic] (default): time is the monotonic wall clock ({!Clock}),
      starting at 0 when the loop is created. [run] sleeps in [select]
      until the next timer deadline or a watched descriptor becomes
      readable. This is the mode for real UDP endpoints.

    - [`Warp]: time is virtual. [run] never sleeps on timers; it jumps
      the clock to each timer's deadline and fires timers in exactly the
      simulator's (time, insertion-sequence) order. A protocol driven by
      a warp loop is deterministic — no wall-clock jitter reaches its
      RTT samples — which is what lets the sim-vs-wire differential
      ({!Validate}) demand bit-identical decision logs. Descriptors may
      still be watched; they are polled (zero timeout) between timer
      batches, or — when sockets register their {!Netio} in-flight
      counters via {!register_inflight} — drained to quiescence before
      each batch ({!settle_io}), which extends the determinism guarantee
      to traffic through real loopback sockets. *)

type t

type mode = [ `Monotonic | `Warp ]

(** [create ?trace ?mode ()] makes a loop at time 0 attached to [trace]
    (default {!Engine.Trace.default}); [mode] defaults to [`Monotonic]. *)
val create : ?trace:Engine.Trace.t -> ?mode:mode -> unit -> t

val mode : t -> mode

(** Current loop time, seconds: elapsed monotonic time since [create]
    ([`Monotonic]) or the virtual clock ([`Warp]). Never decreases. *)
val now : t -> float

(** Timer handle, with {!Engine.Sim}'s cancel/is_pending semantics. *)
type timer

(** [at t time f] schedules [f] at absolute loop time [time] ([time]
    must be finite; [Invalid_argument] otherwise). A [time] earlier than
    [now t] is clamped to the current instant in [`Monotonic] mode —
    on a real clock every absolute deadline races against time itself —
    but raises [Invalid_argument] in [`Warp] mode, where the clock only
    moves when timers fire, making a past deadline a caller bug (same
    contract as [Engine.Sim.at]). *)
val at : t -> float -> (unit -> unit) -> timer

(** [after t delay f] schedules [f] in [delay] seconds ([delay] finite and
    non-negative). *)
val after : t -> float -> (unit -> unit) -> timer

val cancel : timer -> unit
val is_pending : timer -> bool

(** Timers still queued, including cancelled ones not yet swept. *)
val pending_timers : t -> int

(** [watch_fd t fd ~on_readable] has [run] call [on_readable] whenever
    [fd] selects readable. One watch per descriptor; watching an already
    watched [fd] replaces its callback. *)
val watch_fd : t -> Unix.file_descr -> on_readable:(unit -> unit) -> unit

val unwatch_fd : t -> Unix.file_descr -> unit

(** [register_inflight t r] adds a {!Netio.t.inflight} counter to the
    loop's in-kernel datagram accounting ({!Udp.create} does this).
    Idempotent per ref. The sum over registered refs is the number of
    datagrams sent between this loop's sockets but not yet received. *)
val register_inflight : t -> int ref -> unit

(** [settle_io t] polls watched descriptors — blocking a few
    milliseconds per try, bounded — until the registered in-flight sum
    reaches zero, so every datagram already handed to the kernel is
    processed at the current virtual time. Called by [`Warp]'s [run]
    before each timer pop and once before returning; exposed for tests
    and harnesses that inject datagrams outside [run]. If the kernel
    genuinely dropped a datagram the wait gives up after a bounded
    number of tries, zeroes the counters, and counts an
    {!io_giveups}. *)
val settle_io : t -> unit

(** Diagnostic counters over the loop's lifetime: [select] calls made,
    timers fired, and settle give-ups (kernel-dropped datagrams; 0 in a
    healthy run). The soak's busy-loop oracle bounds [polls] by work
    done. *)
val polls : t -> int

val fired : t -> int
val io_giveups : t -> int

(** The sans-IO view of this loop, memoized. Timers scheduled through it
    are loop timers; ids come from the loop's private counter, so decoded
    packets get deterministic identities per loop. *)
val runtime : t -> Engine.Runtime.t

(** [run t ~until] drives the loop until loop time reaches [until], or
    {!stop} is called, or — when [until] is infinite — no timer is queued
    and no descriptor watched (nothing can ever happen again). In
    [`Warp] mode the clock lands exactly on [until] (finite) when the
    queue drains early, mirroring [Sim.run]. *)
val run : t -> until:float -> unit

(** [stop t] makes [run] return after the currently executing callback. *)
val stop : t -> unit
