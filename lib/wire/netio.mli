(** Injectable syscall interface for the wire stack.

    Mirrors {!Engine.Runtime}'s record-of-closures style at the OS
    boundary: {!Udp} performs every socket operation through a [Netio.t]
    instead of calling [Unix] directly, so tests and the chaos soak can
    substitute implementations that fail deterministically ({!Faultio})
    without monkey-patching or subprocesses.

    The closures keep [Unix]'s error contract: failures are signalled by
    raising [Unix.Unix_error], exactly as the real syscalls do, so the
    errno policy in {!Udp} is exercised identically against the kernel
    and against injected faults.

    [inflight] counts datagrams handed to the kernel but not yet pulled
    back out ([sendto] successes minus [recvfrom] successes). Loopback
    delivery is asynchronous — a datagram sent a microsecond ago may not
    be readable yet — so the [`Warp] loop sums these counters across its
    sockets and waits for the sum to reach zero before advancing virtual
    time, which is what makes warp runs over real sockets deterministic.
    Within one loop the counter is meaningful only as part of that sum: a
    socket that receives more than it sends goes negative. *)

type t = {
  sendto : Unix.file_descr -> Bytes.t -> int -> int -> Unix.sockaddr -> int;
  recvfrom : Unix.file_descr -> Bytes.t -> int -> int -> int * Unix.sockaddr;
  close : Unix.file_descr -> unit;
  inflight : int ref;
      (** sends minus receives through this interface; see above *)
}

(** The real thing: wraps [Unix.sendto]/[Unix.recvfrom]/[Unix.close]
    (no flags), maintaining [inflight]. *)
val unix : unit -> t
