(** Monotonic wall clock, in seconds since {!create}.

    [Unix.gettimeofday] is the only portable clock in the stdlib Unix
    binding, and it can step backwards (NTP adjustment, manual clock
    set). Protocol code built on {!Engine.Runtime} assumes time never
    decreases — the scheduler rejects past timers — so this clock
    remembers the highest value it has reported and never goes below
    it: a backwards step freezes the clock until real time catches up
    again.

    Starting at 0 (rather than the epoch) keeps wire timestamps in the
    same magnitude range as simulation virtual time, so traces and
    decision logs from the two runtimes are directly comparable. *)

type t

(** [create ()] starts a clock reading 0 now. *)
val create : unit -> t

(** [now t] is the elapsed time since [create], monotonically
    non-decreasing across calls. *)
val now : t -> float
