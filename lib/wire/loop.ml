type mode = [ `Monotonic | `Warp ]

type timer = {
  mutable state : [ `Pending | `Fired | `Cancelled ];
  f : unit -> unit;
  (* Shared with the owning loop: counts cancelled timers still in the
     wheel, so [run] knows when a sweep pays off (same scheme as Sim). *)
  cancelled_in_wheel : int ref;
}

type watch = { wfd : Unix.file_descr; on_readable : unit -> unit }

type t = {
  mode : mode;
  clock : Clock.t;
  (* Monotone time watermark. [`Warp]: the virtual clock itself, advanced
     by firing timers. [`Monotonic]: the highest observed Clock reading,
     so [now] never decreases even across the Clock's own clamping. *)
  mutable vnow : float;
  timers : timer Engine.Timing_wheel.t;
  cancelled : int ref;
  trace : Engine.Trace.t;
  mutable next_id : int;
  mutable stopping : bool;
  mutable watches : watch list;
  mutable runtime : Engine.Runtime.t option;
  (* Per-socket sends-minus-receives counters ({!Netio.t.inflight});
     their sum is the number of datagrams inside the kernel between this
     loop's sockets. [`Warp] waits for the sum to reach zero before
     advancing virtual time — see [settle_io]. *)
  mutable inflight_refs : int ref list;
  mutable polls : int;  (* poll_fds calls; the busy-loop oracle's input *)
  mutable fired : int;  (* timers actually fired *)
  mutable io_giveups : int;  (* settle rounds that timed out *)
}

let create ?trace ?(mode = `Monotonic) () =
  let trace =
    match trace with Some tr -> tr | None -> Engine.Trace.default ()
  in
  let t =
    {
      mode;
      clock = Clock.create ();
      vnow = 0.;
      timers = Engine.Timing_wheel.create ();
      cancelled = ref 0;
      trace;
      next_id = 0;
      stopping = false;
      watches = [];
      runtime = None;
      inflight_refs = [];
      polls = 0;
      fired = 0;
      io_giveups = 0;
    }
  in
  if Engine.Trace.active trace then
    Engine.Trace.emit trace ~time:0. ~cat:"wire" ~name:"loop_created"
      [ ("mode", Engine.Trace.Str (match mode with
          | `Monotonic -> "monotonic" | `Warp -> "warp")) ];
  t

let mode t = t.mode

let now t =
  (match t.mode with
  | `Warp -> ()
  | `Monotonic ->
      let e = Clock.now t.clock in
      if e > t.vnow then t.vnow <- e);
  t.vnow

let at t time f =
  if not (Float.is_finite time) then
    invalid_arg (Printf.sprintf "Wire.Loop.at: non-finite time %g" time);
  let time =
    if time >= now t then time
    else
      match t.mode with
      (* Real clock: "at" races against time itself — the caller computed
         a deadline from a [now] that has already moved on. A
         microseconds-stale deadline is a request to fire as soon as
         possible, not a bug, so clamp it to the current instant. *)
      | `Monotonic -> t.vnow
      (* Virtual clock: time only moves when the loop fires a timer, so a
         past deadline here is a genuine caller bug, as in Sim. *)
      | `Warp ->
          invalid_arg
            (Printf.sprintf "Wire.Loop.at: time %g is in the past (now %g)"
               time t.vnow)
  in
  let tm = { state = `Pending; f; cancelled_in_wheel = t.cancelled } in
  Engine.Timing_wheel.push t.timers ~time tm;
  tm

let after t delay f =
  if not (Float.is_finite delay) then
    invalid_arg (Printf.sprintf "Wire.Loop.after: non-finite delay %g" delay);
  if delay < 0. then invalid_arg "Wire.Loop.after: negative delay";
  at t (now t +. delay) f

let cancel tm =
  if tm.state = `Pending then begin
    tm.state <- `Cancelled;
    incr tm.cancelled_in_wheel
  end

let is_pending tm = tm.state = `Pending

let pending_timers t = Engine.Timing_wheel.size t.timers

let stop t = t.stopping <- true

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let wrap_timer tm =
  Engine.Runtime.handle
    ~cancel:(fun () -> cancel tm)
    ~is_pending:(fun () -> is_pending tm)

let runtime t =
  match t.runtime with
  | Some rt -> rt
  | None ->
      let rt =
        Engine.Runtime.make
          ~now:(fun () -> now t)
          ~at:(fun time f -> wrap_timer (at t time f))
          ~after:(fun delay f -> wrap_timer (after t delay f))
          ~trace:t.trace
          ~fresh_id:(fun () -> fresh_id t)
      in
      t.runtime <- Some rt;
      rt

let register_inflight t r =
  if not (List.memq r t.inflight_refs) then
    t.inflight_refs <- r :: t.inflight_refs

let total_inflight t =
  List.fold_left (fun acc r -> acc + !r) 0 t.inflight_refs

let polls t = t.polls
let fired t = t.fired
let io_giveups t = t.io_giveups

let watch_fd t fd ~on_readable =
  t.watches <-
    { wfd = fd; on_readable }
    :: List.filter (fun w -> w.wfd <> fd) t.watches

let unwatch_fd t fd =
  t.watches <- List.filter (fun w -> w.wfd <> fd) t.watches

(* Same sweep policy as Sim: once cancelled timers dominate a non-tiny
   wheel, prune them in bulk so cancel-heavy protocols (the TFRC
   no-feedback timer is re-armed on every feedback) keep memory bounded
   by the live-timer count. *)
let sweep_floor = 64

let maybe_sweep t =
  let n = Engine.Timing_wheel.size t.timers in
  if n >= sweep_floor && 2 * !(t.cancelled) > n then begin
    Engine.Timing_wheel.prune t.timers ~keep:(fun tm -> tm.state = `Pending);
    Engine.Timing_wheel.compact t.timers;
    t.cancelled := 0;
    if Engine.Trace.active t.trace then
      Engine.Trace.emit t.trace ~time:t.vnow ~cat:"wire" ~name:"sweep"
        [
          ("before", Engine.Trace.Int n);
          ("after", Engine.Trace.Int (Engine.Timing_wheel.size t.timers));
        ]
  end

(* Service watched descriptors, sleeping at most [timeout] (0 = poll).
   With nothing watched this is a plain sleep. EINTR is a retry at the
   caller's next iteration, not an error. *)
let poll_fds t ~timeout =
  t.polls <- t.polls + 1;
  match t.watches with
  | [] -> if timeout > 0. then ignore (Unix.select [] [] [] timeout)
  | ws -> (
      let fds = List.map (fun w -> w.wfd) ws in
      match Unix.select fds [] [] timeout with
      | ready, _, _ ->
          List.iter
            (fun w -> if List.mem w.wfd ready then w.on_readable ())
            ws
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())

(* Fire the next due timer; true if the queue may hold more work. *)
let pop_fire t ~due =
  match Engine.Timing_wheel.pop t.timers with
  | None -> false
  | Some (time, tm) ->
      (match tm.state with
      | `Cancelled -> decr t.cancelled
      | `Fired -> ()
      | `Pending ->
          if time > t.vnow then t.vnow <- time;
          tm.state <- `Fired;
          t.fired <- t.fired + 1;
          tm.f ());
      ignore due;
      true

(* Loopback delivery is asynchronous: a datagram written a microsecond
   ago may not be readable yet, and whether a zero-timeout poll sees it
   is a kernel race. Under [`Warp] that race would move the datagram's
   processing to a different virtual time between runs, so before each
   timer pop the loop waits — with a short real block per try — until
   every in-kernel datagram has been drained (or injected away by a
   Faultio). select returns as soon as an fd turns readable, so the wait
   costs delivery latency, not the timeout. A datagram the kernel
   genuinely dropped (receive-buffer overflow) would stall this forever;
   the bounded retry count turns that into a counted give-up instead. *)
let settle_wait = 0.002
let settle_max_tries = 250

let settle_io t =
  if t.inflight_refs <> [] then begin
    let tries = ref 0 in
    while total_inflight t > 0 && !tries < settle_max_tries do
      incr tries;
      poll_fds t ~timeout:settle_wait
    done;
    if total_inflight t > 0 then begin
      t.io_giveups <- t.io_giveups + 1;
      if Engine.Trace.active t.trace then
        Engine.Trace.emit t.trace ~time:t.vnow ~cat:"wire"
          ~name:"settle_giveup"
          [ ("inflight", Engine.Trace.Int (total_inflight t)) ];
      List.iter (fun r -> r := 0) t.inflight_refs
    end
  end

let run_warp t ~until =
  let continue = ref true in
  while !continue && not t.stopping do
    maybe_sweep t;
    if t.watches <> [] then
      if t.inflight_refs = [] then poll_fds t ~timeout:0. else settle_io t;
    match Engine.Timing_wheel.peek_time t.timers with
    | None -> continue := false
    | Some time when time > until -> continue := false
    | Some time -> continue := pop_fire t ~due:time
  done;
  settle_io t;
  if until < infinity && t.vnow < until && not t.stopping then t.vnow <- until

(* Cap one select so [until] and newly due timers stay responsive even if
   a watched descriptor goes quiet for a long stretch. *)
let max_block = 0.25

let run_monotonic t ~until =
  let continue = ref true in
  while !continue && not t.stopping do
    maybe_sweep t;
    let now_ = now t in
    if now_ >= until then continue := false
    else begin
      (* Fire everything due; callbacks may schedule more due work. *)
      let rec fire_due () =
        if not t.stopping then
          match Engine.Timing_wheel.peek_time t.timers with
          | Some time when time <= now_ ->
              ignore (pop_fire t ~due:time);
              fire_due ()
          | _ -> ()
      in
      fire_due ();
      if not t.stopping then begin
        match (Engine.Timing_wheel.peek_time t.timers, t.watches) with
        | None, [] ->
            (* Nothing queued, nothing watched: no event can ever arrive.
               Returning beats sleeping to a possibly-infinite [until]. *)
            continue := false
        | next, _ ->
            let deadline =
              match next with Some tt -> Float.min tt until | None -> until
            in
            let timeout = Float.max 0. (deadline -. now t) in
            poll_fds t ~timeout:(Float.min timeout max_block)
      end
    end
  done

let run t ~until =
  t.stopping <- false;
  if Engine.Trace.active t.trace then
    Engine.Trace.emit t.trace ~time:(now t) ~cat:"wire" ~name:"run_start"
      [ ("until", Engine.Trace.Float until) ];
  (match t.mode with
  | `Warp -> run_warp t ~until
  | `Monotonic -> run_monotonic t ~until);
  if Engine.Trace.active t.trace then
    Engine.Trace.emit t.trace ~time:t.vnow ~cat:"wire" ~name:"run_end"
      [ ("pending", Engine.Trace.Int (Engine.Timing_wheel.size t.timers)) ]
