(** Sim-vs-wire differential: the proof that the sans-IO refactor left no
    scheduler-specific behavior in the protocol.

    The same TFRC session — identical configuration, identical seeded
    {!Shaper} on both directions — runs twice:

    - {b sim side}: on {!Engine.Sim}'s runtime, shaping whole
      {!Netsim.Packet} records (no serialization anywhere);
    - {b wire side}: on a [`Warp] {!Loop} runtime, every packet passing
      through {!Codec.encode} on transmit and {!Codec.decode} on
      delivery, exactly as it would over a socket.

    Both sides record the sender's rate decisions ({!Tfrc.Tfrc_sender}'s
    [on_rate_update]: time, allowed rate, smoothed RTT, loss event rate)
    as hex-float lines. Because the warp loop fires timers in the
    simulator's (time, insertion-sequence) order, and the codec is
    bit-lossless on floats, the two logs must match {e exactly} — any
    divergence means either the codec lost information or one of the
    runtimes scheduled differently. This holds under shaper loss, delay,
    jitter and reordering too: both sides draw the same RNG streams. *)

type result = {
  equal : bool;
  decisions_sim : int;
  decisions_wire : int;
  first_diff : (int * string * string) option;
      (** (index, sim line, wire line) of the first divergence; a missing
          line reports as [""] *)
  sim_log : string list;
  wire_log : string list;
}

(** [run ~seed ~duration ()] drives both sides for [duration] seconds of
    virtual time. [config] defaults to the paper's parameters; [shaper]
    defaults to {!Shaper.passthrough} (the acceptance setting: zero
    loss/delay). [app_limit] (bytes/s), applied identically to both
    senders, bounds a loss-free run: without it slow start doubles the
    rate every RTT indefinitely and the event count grows exponentially
    with [duration] — pass a limit for durations beyond a few seconds of
    lossless virtual time. *)
val run :
  ?config:Tfrc.Tfrc_config.t ->
  ?shaper:Shaper.config ->
  ?app_limit:float ->
  seed:int ->
  duration:float ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
