let decision time ~rate ~rtt ~p =
  String.concat " "
    (List.map Engine.Hexfloat.to_string [ time; rate; rtt; p ])

(* One session wired sender -> data shaper -> receiver -> feedback shaper
   -> sender, on an arbitrary runtime. [through] is the per-direction
   transport representation: the sim side shapes Packet records
   unserialized, the wire side shapes encoded frames and decodes on
   delivery. Construction order is identical on both sides, so timer
   insertion sequences line up. *)
let session rt ~config ~seed ~shaper ~app_limit ~encode ~decode =
  let log = ref [] in
  let receiver_cell = ref None in
  let data_shaper =
    Shaper.create rt ~seed ~config:shaper
      ~deliver:(fun x ->
        match !receiver_cell with
        | Some r -> Tfrc.Tfrc_receiver.recv r (decode x)
        | None -> ())
      ()
  in
  let sender =
    Tfrc.Tfrc_sender.create rt ~config ~flow:1
      ~transmit:(fun pkt -> Shaper.send data_shaper (encode pkt))
      ()
  in
  let fb_shaper =
    Shaper.create rt ~seed:(seed + 1) ~config:shaper
      ~deliver:(fun x -> Tfrc.Tfrc_sender.recv sender (decode x))
      ()
  in
  let receiver =
    Tfrc.Tfrc_receiver.create rt ~config ~flow:1
      ~transmit:(fun pkt -> Shaper.send fb_shaper (encode pkt))
      ()
  in
  receiver_cell := Some receiver;
  (* An application pacing limit keeps a loss-free run bounded: with no
     loss and no delay, slow start doubles the allowed rate every RTT
     forever, and the event count grows exponentially with duration. The
     limit is applied identically on both sides, so parity holds. *)
  Tfrc.Tfrc_sender.set_app_limit sender app_limit;
  Tfrc.Tfrc_sender.on_rate_update sender (fun time ~rate ~rtt ~p ->
      log := decision time ~rate ~rtt ~p :: !log);
  Tfrc.Tfrc_sender.start sender ~at:0.;
  let finish () =
    Tfrc.Tfrc_sender.stop sender;
    Tfrc.Tfrc_receiver.stop receiver;
    List.rev !log
  in
  finish

let run_sim ~config ~seed ~shaper ~app_limit ~duration =
  let sim = Engine.Sim.create ~trace:(Engine.Trace.create ()) () in
  let finish =
    session (Engine.Sim.runtime sim) ~config ~seed ~shaper ~app_limit
      ~encode:Fun.id ~decode:Fun.id
  in
  Engine.Sim.run sim ~until:duration;
  finish ()

let run_wire ~config ~seed ~shaper ~app_limit ~duration =
  let loop = Loop.create ~trace:(Engine.Trace.create ()) ~mode:`Warp () in
  let rt = Loop.runtime loop in
  let decode frame =
    match Codec.decode_packet rt frame with
    | Ok pkt -> pkt
    | Error e ->
        (* Unreachable by construction: the codec just produced the
           frame. A failure here is a codec bug the differential exists
           to catch, so surface it loudly. *)
        failwith ("wire validate: decode failed: " ^ Codec.error_to_string e)
  in
  let finish =
    session rt ~config ~seed ~shaper ~app_limit ~encode:Codec.encode ~decode
  in
  Loop.run loop ~until:duration;
  finish ()

type result = {
  equal : bool;
  decisions_sim : int;
  decisions_wire : int;
  first_diff : (int * string * string) option;
  sim_log : string list;
  wire_log : string list;
}

let compare_logs sim_log wire_log =
  let rec go i = function
    | [], [] -> None
    | a :: rest_a, b :: rest_b ->
        if String.equal a b then go (i + 1) (rest_a, rest_b)
        else Some (i, a, b)
    | a :: _, [] -> Some (i, a, "")
    | [], b :: _ -> Some (i, "", b)
  in
  go 0 (sim_log, wire_log)

let run ?config ?(shaper = Shaper.passthrough) ?app_limit ~seed ~duration () =
  let config =
    match config with Some c -> c | None -> Tfrc.Tfrc_config.default ()
  in
  let sim_log = run_sim ~config ~seed ~shaper ~app_limit ~duration in
  let wire_log = run_wire ~config ~seed ~shaper ~app_limit ~duration in
  let first_diff = compare_logs sim_log wire_log in
  {
    equal = first_diff = None;
    decisions_sim = List.length sim_log;
    decisions_wire = List.length wire_log;
    first_diff;
    sim_log;
    wire_log;
  }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>sim decisions:  %d@,wire decisions: %d@,"
    r.decisions_sim r.decisions_wire;
  (match r.first_diff with
  | None -> Format.fprintf ppf "logs identical: yes@]"
  | Some (i, a, b) ->
      Format.fprintf ppf
        "logs identical: NO@,first divergence at decision %d:@,  sim:  %s@,  wire: %s@]"
        i
        (if a = "" then "<missing>" else a)
        (if b = "" then "<missing>" else b))
