type plan = {
  send_eagain : float;
  send_enobufs : float;
  send_eintr : float;
  send_refused : float;
  send_hard : float;
  send_hard_errno : Unix.error;
  send_blackout : (float * float) option;
  blackout_errno : Unix.error;
  recv_drop : float;
  recv_truncate : float;
  recv_eintr : float;
  recv_refused : float;
  recv_blackout : (float * float) option;
}

let no_faults =
  {
    send_eagain = 0.;
    send_enobufs = 0.;
    send_eintr = 0.;
    send_refused = 0.;
    send_hard = 0.;
    send_hard_errno = Unix.EHOSTUNREACH;
    send_blackout = None;
    blackout_errno = Unix.EHOSTUNREACH;
    recv_drop = 0.;
    recv_truncate = 0.;
    recv_eintr = 0.;
    recv_refused = 0.;
    recv_blackout = None;
  }

let check_plan p =
  let prob what v =
    if not (Float.is_finite v) || v < 0. || v > 1. then
      invalid_arg
        (Printf.sprintf "Wire.Faultio: %s = %g outside [0, 1]" what v)
  in
  prob "send_eagain" p.send_eagain;
  prob "send_enobufs" p.send_enobufs;
  prob "send_eintr" p.send_eintr;
  prob "send_refused" p.send_refused;
  prob "send_hard" p.send_hard;
  prob "recv_drop" p.recv_drop;
  prob "recv_truncate" p.recv_truncate;
  prob "recv_eintr" p.recv_eintr;
  prob "recv_refused" p.recv_refused;
  let sum what v =
    if v > 1. then
      invalid_arg
        (Printf.sprintf "Wire.Faultio: %s fate probabilities sum to %g > 1"
           what v)
  in
  sum "send"
    (p.send_eagain +. p.send_enobufs +. p.send_eintr +. p.send_refused
   +. p.send_hard);
  sum "recv" (p.recv_drop +. p.recv_truncate +. p.recv_eintr +. p.recv_refused);
  let window what = function
    | None -> ()
    | Some (t0, t1) ->
        if not (Float.is_finite t0 && Float.is_finite t1) || t0 > t1 then
          invalid_arg
            (Printf.sprintf "Wire.Faultio: bad %s window (%g, %g)" what t0 t1)
  in
  window "send_blackout" p.send_blackout;
  window "recv_blackout" p.recv_blackout;
  p

(* A pulled datagram parked while its errno raises replay. *)
type pending = {
  p_data : Bytes.t;  (* already cut if the truncate fate also hit *)
  p_len : int;
  p_src : Unix.sockaddr;
  mutable p_raises : int;
  p_errno : Unix.error;
}

type t = {
  rt : Engine.Runtime.t;
  plan : plan;
  rng : Engine.Rng.t;
  inner : Netio.t;
  scratch : Bytes.t;
  mutable log : string list;  (* newest first *)
  mutable injected : int;
  counts : (string, int) Hashtbl.t;
  mutable pulled : int;
  mutable drops : int;
  mutable truncated : int;
  mutable pending : pending option;
  mutable io : Netio.t option;  (* the faulty interface, built once *)
}

let record t ~op ~kind =
  t.injected <- t.injected + 1;
  let label = op ^ " " ^ kind in
  Hashtbl.replace t.counts label
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts label));
  let time = Engine.Runtime.now t.rt in
  t.log <- Printf.sprintf "%.6f %s" time label :: t.log;
  let tr = Engine.Runtime.trace t.rt in
  if Engine.Trace.active tr then
    Engine.Trace.emit tr ~time ~cat:"wire" ~name:"faultio"
      [ ("op", Engine.Trace.Str op); ("kind", Engine.Trace.Str kind) ]

let in_window t = function
  | Some (t0, t1) ->
      let now = Engine.Runtime.now t.rt in
      now >= t0 && now < t1
  | None -> false

let raise_errno errno call = raise (Unix.Unix_error (errno, call, ""))

(* One draw partitions the send fates; zero-probability plans draw
   nothing, keeping a no-fault wrapper transparent to RNG streams. *)
let send_fate t =
  let p = t.plan in
  let total =
    p.send_eagain +. p.send_enobufs +. p.send_eintr +. p.send_refused
    +. p.send_hard
  in
  if total <= 0. then `Pass
  else begin
    let u = Engine.Rng.float t.rng 1.0 in
    if u < p.send_eagain then `Eagain
    else if u < p.send_eagain +. p.send_enobufs then `Enobufs
    else if u < p.send_eagain +. p.send_enobufs +. p.send_eintr then `Eintr
    else if
      u < p.send_eagain +. p.send_enobufs +. p.send_eintr +. p.send_refused
    then `Refused
    else if u < total then `Hard
    else `Pass
  end

let sendto t fd b pos len dest =
  if in_window t t.plan.send_blackout then begin
    record t ~op:"send" ~kind:"blackout";
    raise_errno t.plan.blackout_errno "sendto"
  end;
  (match send_fate t with
  | `Pass -> ()
  | `Eagain ->
      record t ~op:"send" ~kind:"eagain";
      raise_errno Unix.EAGAIN "sendto"
  | `Enobufs ->
      record t ~op:"send" ~kind:"enobufs";
      raise_errno Unix.ENOBUFS "sendto"
  | `Eintr ->
      record t ~op:"send" ~kind:"eintr";
      raise_errno Unix.EINTR "sendto"
  | `Refused ->
      record t ~op:"send" ~kind:"refused";
      raise_errno Unix.ECONNREFUSED "sendto"
  | `Hard ->
      record t ~op:"send" ~kind:"hard";
      raise_errno t.plan.send_hard_errno "sendto");
  t.inner.sendto fd b pos len dest

let deliver buf pos len data dlen src =
  let n = min dlen len in
  Bytes.blit data 0 buf pos n;
  (n, src)

(* Per-datagram recv fate; the datagram is already out of the kernel. *)
let recv_fate t =
  let p = t.plan in
  let total = p.recv_drop +. p.recv_truncate +. p.recv_eintr +. p.recv_refused in
  if total <= 0. then `Deliver
  else begin
    let u = Engine.Rng.float t.rng 1.0 in
    if u < p.recv_drop then `Drop
    else if u < p.recv_drop +. p.recv_truncate then `Truncate
    else if u < p.recv_drop +. p.recv_truncate +. p.recv_eintr then `Eintr
    else if u < total then `Refused
    else `Deliver
  end

let rec recvfrom t fd buf pos len =
  match t.pending with
  | Some pend when pend.p_raises > 0 ->
      pend.p_raises <- pend.p_raises - 1;
      raise_errno pend.p_errno "recvfrom"
  | Some pend ->
      t.pending <- None;
      deliver buf pos len pend.p_data pend.p_len pend.p_src
  | None -> (
      (* Pull through the scratch buffer so raise-then-deliver fates can
         park the datagram without touching the caller's buffer. *)
      let n, src = t.inner.recvfrom fd t.scratch 0 (Bytes.length t.scratch) in
      t.pulled <- t.pulled + 1;
      if in_window t t.plan.recv_blackout then begin
        t.drops <- t.drops + 1;
        record t ~op:"recv" ~kind:"blackout";
        recvfrom t fd buf pos len
      end
      else
        match recv_fate t with
        | `Deliver -> deliver buf pos len t.scratch n src
        | `Drop ->
            t.drops <- t.drops + 1;
            record t ~op:"recv" ~kind:"drop";
            recvfrom t fd buf pos len
        | `Truncate ->
            t.truncated <- t.truncated + 1;
            record t ~op:"recv" ~kind:"truncate";
            (* A strict prefix: [0, n) bytes of an n-byte datagram. *)
            let cut = if n = 0 then 0 else Engine.Rng.int t.rng n in
            deliver buf pos len t.scratch cut src
        | `Eintr ->
            record t ~op:"recv" ~kind:"eintr";
            let raises = 1 + Engine.Rng.int t.rng 2 in
            t.pending <-
              Some
                {
                  p_data = Bytes.sub t.scratch 0 n;
                  p_len = n;
                  p_src = src;
                  p_raises = raises;
                  p_errno = Unix.EINTR;
                };
            raise_errno Unix.EINTR "recvfrom"
        | `Refused ->
            record t ~op:"recv" ~kind:"refused";
            t.pending <-
              Some
                {
                  p_data = Bytes.sub t.scratch 0 n;
                  p_len = n;
                  p_src = src;
                  p_raises = 0;
                  p_errno = Unix.ECONNREFUSED;
                };
            raise_errno Unix.ECONNREFUSED "recvfrom")

let wrap rt ~seed ?(plan = no_faults) inner =
  let plan = check_plan plan in
  {
    rt;
    plan;
    rng = Engine.Rng.create ~seed;
    inner;
    scratch = Bytes.create Codec.max_frame;
    log = [];
    injected = 0;
    counts = Hashtbl.create 8;
    pulled = 0;
    drops = 0;
    truncated = 0;
    pending = None;
    io = None;
  }

let netio t =
  match t.io with
  | Some io -> io
  | None ->
      let io =
        {
          Netio.sendto = (fun fd b pos len dest -> sendto t fd b pos len dest);
          recvfrom = (fun fd buf pos len -> recvfrom t fd buf pos len);
          close = t.inner.close;
          inflight = t.inner.inflight;
        }
      in
      t.io <- Some io;
      io

let log t = List.rev t.log
let injected t = t.injected

let counts t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []
  |> List.sort compare

let pulled t = t.pulled
let drops t = t.drops
let truncated t = t.truncated
