(** Supervised endpoint lifecycle above the TFRC rate machinery.

    The paper's no-feedback behavior (RFC 3448 §4.3/§4.4) governs the
    {e rate} under silence — halve per timer expiry, floor at
    {!Tfrc.Tfrc_config.t.min_rate}, probe at most every
    {!Tfrc.Tfrc_config.t.t_mbi} — but says nothing about the session: a
    production endpoint must also decide the peer is {e dead}, tear the
    session down, back off, and try again. This module is that layer.

    {2 Sender lifecycle}

    {v
      Starting ──feedback──▶ Established ──starvation/tx errors──▶ Degraded
         │  ▲                     │              │       ▲
         │  └──────Backoff◀───────┼──────────────┘       └──feedback──
         │           │        (dead: N expiries at the min-rate floor)
         └───────────┘
      any state ──CLOSE/CLOSE-ACK or timeout──▶ Closed (terminal)
    v}

    - [Starting]: a fresh incarnation is transmitting but no feedback has
      arrived yet.
    - [Established]: feedback flows.
    - [Degraded]: still transmitting, but feedback has starved beyond the
      no-feedback thresholds ([degrade_expiries] timer expiries since the
      last feedback, or silence beyond [starve_factor * t_mbi]), or sends
      are failing with hard errnos (the {!Udp} health signal).
    - [Backoff]: the peer was declared dead — [dead_expiries] consecutive
      no-feedback halvings with the rate at the floor — so the incarnation
      was torn down; a restart timer runs with bounded exponential backoff
      and deterministic jitter.
    - [Closed]: terminal, via graceful CLOSE/CLOSE-ACK (with a timeout
      fallback) or a peer-initiated CLOSE.

    Each restart bumps the session {e epoch} carried in every {!Codec}
    frame; feedback from a previous incarnation is discarded as stale
    rather than corrupting the fresh RTT/loss state. All outgoing frames
    (data and control) go through the configured send path, and every
    transition is recorded and emitted as a [wire/sup_transition] trace
    event, checked for legality by {!Tfrc.Invariants}. *)

type state = Starting | Established | Degraded | Backoff | Closed

val state_name : state -> string

(** [legal from to_] is the transition relation drawn above — what the
    invariant checker enforces. No self-loops. *)
val legal : state -> state -> bool

type config = {
  degrade_expiries : int;
      (** no-feedback expiries since last feedback before Established
          degrades (default 1) *)
  dead_expiries : int;
      (** consecutive expiries, with the rate at the min-rate floor,
          before the peer is declared dead (default 3) *)
  starve_factor : float;
      (** silence beyond this multiple of t_mbi degrades even without
          expiries (default 4.) *)
  backoff_base : float;  (** first restart delay, seconds (default 0.5) *)
  backoff_max : float;  (** restart delay ceiling (default 8.) *)
  backoff_jitter : float;
      (** each delay is scaled by [1 + U[0, jitter)] from the
          supervisor's seeded stream (default 0.1) *)
  close_timeout : float;
      (** how long to wait for CLOSE-ACK before closing anyway
          (default 1.) *)
  health_period : float;  (** lifecycle check period (default 0.1) *)
}

val default_config : config

type t

(** [create loop udp ~config ?sup ~flow ~dest ?send ~seed ()] builds a
    supervised sender on [udp]: epoch-stamped data frames go to [dest]
    (or through [send] — the soak routes them through a {!Shaper});
    feedback, CLOSE and CLOSE-ACK frames are decoded from [udp]'s
    datagrams (this installs the datagram and health handlers). [seed]
    drives the backoff jitter. [mutate] plants the soak's self-test bug:
    a dead peer restarts {e immediately}, skipping [Backoff] — an
    illegal transition the invariant rule must catch. Call {!start}. *)
val create :
  Loop.t ->
  Udp.t ->
  config:Tfrc.Tfrc_config.t ->
  ?sup:config ->
  flow:int ->
  dest:Unix.sockaddr ->
  ?send:(string -> unit) ->
  seed:int ->
  ?mutate:bool ->
  unit ->
  t

(** Starts the first incarnation and the health timer. *)
val start : t -> at:float -> unit

(** Graceful teardown: sends CLOSE, stops transmitting, and reaches
    [Closed] on CLOSE-ACK or after [close_timeout], whichever comes
    first. Idempotent. *)
val close : t -> unit

(** Stops machinery and timers {e without} a lifecycle transition, for
    harness finalization: frames that arrive afterwards are counted
    ({!post_quiesce}) but not processed. *)
val quiesce : t -> unit

val state : t -> state

(** Current session epoch (starts at 1; +1 per restart). *)
val epoch : t -> int

val restarts : t -> int

(** The current incarnation's machine. An application pacing limit
    ({!Tfrc.Tfrc_sender.set_app_limit}) set on it carries over to the
    next incarnation on restart. *)
val machine : t -> Tfrc.Tfrc_sender.t

(** Transitions in order: [(time, from, to)]. *)
val transitions : t -> (float * state * state) list

(** {2 Counters} (each decoded frame lands in exactly one bucket) *)

(** Feedback frames delivered to the current machine. *)
val feedback_delivered : t -> int

(** Valid frames for another incarnation's epoch, or arriving while the
    session was down (Backoff/Closed) — discarded. *)
val stale_frames : t -> int

(** CLOSE/CLOSE-ACK frames seen. *)
val ctrl_frames : t -> int

val decode_errors : t -> int

(** Frames arriving after {!quiesce}. *)
val post_quiesce : t -> int

(** Data packets sent across all incarnations. *)
val data_packets_sent : t -> int

(** {2 Managed receiver}

    The receiving-side counterpart: tracks the sender's epoch
    (latest-wins — a higher epoch retires the current
    {!Tfrc.Tfrc_receiver} and starts a fresh one, since a restarted
    sender's sequence numbers restart too), re-learns the peer address
    on every validly decoded data frame, and answers CLOSE with
    CLOSE-ACK. *)
module Receiver : sig
  type r

  val create :
    Loop.t ->
    Udp.t ->
    config:Tfrc.Tfrc_config.t ->
    flow:int ->
    ?reply_to:Unix.sockaddr ->
    ?send:(string -> unit) ->
    unit ->
    r

  val machine : r -> Tfrc.Tfrc_receiver.t

  (** Epoch currently served (0 until a supervised sender appears). *)
  val current_epoch : r -> int

  (** Incarnations adopted (epoch increases observed). *)
  val epochs_seen : r -> int

  (** True after a CLOSE for the current epoch (cleared by a higher
      epoch). *)
  val closed : r -> bool

  val quiesce : r -> unit

  (** Data frames forwarded to a machine, across epochs. *)
  val delivered : r -> int

  val stale_frames : r -> int
  val ctrl_frames : r -> int
  val decode_errors : r -> int
  val post_quiesce : r -> int

  (** Data packets accepted by the machines across epochs. *)
  val packets_received : r -> int

  (** Feedback packets sent across epochs. *)
  val feedbacks_sent : r -> int
end
