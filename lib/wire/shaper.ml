type config = {
  loss : float;
  delay : float;
  jitter : float;
  reorder : float;
}

let passthrough = { loss = 0.; delay = 0.; jitter = 0.; reorder = 0. }

let validate c =
  let prob what v =
    if not (Float.is_finite v) || v < 0. || v > 1. then
      invalid_arg
        (Printf.sprintf "Wire.Shaper: %s %g not a probability" what v)
  in
  let nonneg what v =
    if not (Float.is_finite v) || v < 0. then
      invalid_arg
        (Printf.sprintf "Wire.Shaper: %s %g must be finite and >= 0" what v)
  in
  prob "loss" c.loss;
  prob "reorder" c.reorder;
  nonneg "delay" c.delay;
  nonneg "jitter" c.jitter;
  c

type 'a t = {
  rt : Engine.Runtime.t;
  rng : Engine.Rng.t;
  config : config;
  deliver : 'a -> unit;
  mutable sent : int;
  mutable dropped : int;
  mutable reordered : int;
}

let create rt ~seed ?(config = passthrough) ~deliver () =
  {
    rt;
    rng = Engine.Rng.create ~seed;
    config = validate config;
    deliver;
    sent = 0;
    dropped = 0;
    reordered = 0;
  }

(* Zero-valued parameters must not touch the RNG: the sim side and the
   wire side of a differential run share a seed, and any conditional
   draw on one side only would desynchronize every draw after it. *)
let send t x =
  t.sent <- t.sent + 1;
  let c = t.config in
  if c.loss > 0. && Engine.Rng.bool t.rng ~p:c.loss then
    t.dropped <- t.dropped + 1
  else begin
    let jitter =
      if c.jitter > 0. then Engine.Rng.float t.rng c.jitter else 0.
    in
    let fast =
      c.reorder > 0. && Engine.Rng.bool t.rng ~p:c.reorder
    in
    let delay =
      if fast then begin
        t.reordered <- t.reordered + 1;
        jitter
      end
      else c.delay +. jitter
    in
    (* Even a zero delay goes through the scheduler, keeping delivery at
       the same (time, insertion-seq) slot on every runtime. *)
    ignore (Engine.Runtime.after t.rt delay (fun () -> t.deliver x))
  end

let sent t = t.sent
let dropped t = t.dropped
let reordered t = t.reordered
