(** Deterministic syscall-level fault injection.

    [Faultio] wraps any {!Netio.t} with a fault plan whose every decision
    is drawn from a PCG32 stream seeded by the caller (use
    [Engine.Rng.for_key]), so EAGAIN/ENOBUFS bursts, EINTR storms,
    ECONNREFUSED replays, timed blackouts and truncated deliveries replay
    exactly from a seed. The {!Shaper} stays the in-flight impairment
    layer (loss, delay, reordering of frames between sockets); Faultio is
    the OS-boundary layer below it — the syscalls themselves misbehave.

    {2 Draw discipline}

    Determinism under real kernel timing needs the RNG consumption to be
    independent of {e when} the loop happens to observe readiness, so:

    - send-side faults draw once per [sendto] call (the call sequence is
      timer-driven and deterministic); a probability set to zero
      contributes nothing, and an all-zero send plan draws nothing;
    - recv-side faults draw once per {e datagram pulled} from the inner
      interface, never per [recvfrom] call — kernel scheduling can split
      the same datagrams across different numbers of calls between runs,
      but the datagram sequence per socket is FIFO and fixed;
    - blackout windows are pure time predicates and draw nothing.

    Raise-then-deliver fates (EINTR, ECONNREFUSED) park the pulled
    datagram in a one-slot pending buffer: the next [recvfrom] calls
    replay the errno the drawn number of times, then deliver the datagram
    intact — matching how a real drain loop experiences interrupted
    syscalls and ICMP error replays without ever losing the datagram. *)

type plan = {
  send_eagain : float;  (** P(sendto raises EAGAIN) — full buffer burst *)
  send_enobufs : float;  (** P(sendto raises ENOBUFS) *)
  send_eintr : float;  (** P(sendto raises EINTR) — retried by {!Udp} *)
  send_refused : float;
      (** P(sendto raises ECONNREFUSED) — ICMP error replay *)
  send_hard : float;  (** P(sendto raises [send_hard_errno]) *)
  send_hard_errno : Unix.error;
      (** the hard-failure errno, default [EHOSTUNREACH] *)
  send_blackout : (float * float) option;
      (** [(t0, t1)]: every send with [t0 <= now < t1] raises
          [blackout_errno]; no RNG draws *)
  blackout_errno : Unix.error;  (** default [EHOSTUNREACH] *)
  recv_drop : float;  (** P(a pulled datagram is discarded) *)
  recv_truncate : float;
      (** P(a pulled datagram is delivered cut to a strict prefix) *)
  recv_eintr : float;
      (** P(delivery is preceded by 1-2 EINTR raises) *)
  recv_refused : float;
      (** P(delivery is preceded by one ECONNREFUSED raise) *)
  recv_blackout : (float * float) option;
      (** [(t0, t1)]: datagrams pulled in the window are discarded;
          no RNG draws *)
}

(** All probabilities 0, no blackouts: the wrapped interface is
    transparent and consumes no RNG. *)
val no_faults : plan

type t

(** [wrap rt ~seed ?plan inner] validates [plan] (probabilities in
    [0, 1] with each side's fate probabilities summing to at most 1,
    blackout windows finite with [t0 <= t1]; [Invalid_argument]
    otherwise; default {!no_faults}) and returns a handle whose
    {!netio} misbehaves per the plan. Blackout windows are judged
    against [rt]'s clock; injections are logged and, when [rt]'s trace
    bus is active, emitted as [wire/faultio] events. *)
val wrap : Engine.Runtime.t -> seed:int -> ?plan:plan -> Netio.t -> t

(** The faulty interface to hand to {!Udp.create}. *)
val netio : t -> Netio.t

(** Injections in order: ["<time> send|recv <kind>"] lines with the
    virtual time at injection. Same seed, same traffic ⇒ same log. *)
val log : t -> string list

(** Total injections (= [List.length (log t)]). *)
val injected : t -> int

(** Injection counts per ["op kind"] label, sorted by label. *)
val counts : t -> (string * int) list

(** Datagrams pulled out of the inner interface (delivered, truncated
    or discarded). *)
val pulled : t -> int

(** Pulled datagrams discarded ([recv_drop] fate or recv blackout) —
    they consume a pull but never reach the caller. *)
val drops : t -> int

(** Pulled datagrams delivered cut short. *)
val truncated : t -> int
