(** Binary wire format for {!Netsim.Packet} headers.

    Layout (big-endian), [header_len] = 29 bytes:

    {v
      0-1   magic 'T' 'F'
      2     version (1)
      3     payload tag: 0 Data, 1 Tcp_ack, 2 Tfrc_data, 3 Tfrc_feedback
      4     flags: bit0 ecn_capable, bit1 ecn_marked, bit2 corrupted
      5-8   FNV-1a-32 checksum of bytes 0-4 and 9..end
      9-12  flow id        (u32)
      13-16 sequence       (u32)
      17-20 size in bytes  (u32; the simulated size, not the frame length)
      21-28 sent_at        (IEEE-754 bits, lossless)
      29-   payload, by tag:
              Data           nothing
              Tfrc_data      rtt (8B float bits)
              Tfrc_feedback  p, recv_rate, ts_echo, ts_delay (4 x 8B)
              Tcp_ack        ack (u32), ece (u8), sack count (u16),
                             then lo,hi (u32 each) per sack range
    v}

    Floats travel as raw IEEE-754 bits, so every value — nan, -0.,
    denormals — survives the trip bit-for-bit; the sim-vs-wire
    differential depends on that.

    {!decode} is total: any byte string returns [Ok] or [Error], never
    raises. The checksum covers everything except its own field, so a
    corrupted datagram (any flipped bit) is rejected rather than parsed
    into a half-plausible packet. *)

val header_len : int

(** Largest frame {!encode} emits / {!decode} accepts (one UDP datagram). *)
val max_frame : int

type error =
  | Truncated of { expected : int; got : int }
      (** shorter than its header or its declared payload *)
  | Oversized of { limit : int; got : int }
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Bad_length of { expected : int; got : int }
      (** trailing or missing payload bytes *)
  | Bad_checksum of { expected : int; got : int }
  | Bad_value of string
      (** structurally valid but semantically impossible field (e.g. a
          non-finite [sent_at]) — only reachable with a correct checksum,
          i.e. a crafted datagram *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [encode p] renders [p] as one datagram. Raises [Invalid_argument] if a
    field does not fit the format (negative or >2^32-1 counters, more than
    65535 sack ranges) — encoder misuse, not a runtime condition. *)
val encode : Netsim.Packet.t -> string

(** [decode rt s] parses a datagram. The packet's id is drawn fresh from
    [rt] ({!Engine.Runtime.fresh_id}) — wire ids are local to the
    receiving loop, exactly as simulated ids are local to their sim. *)
val decode :
  Engine.Runtime.t -> string -> (Netsim.Packet.t, error) result
