(** Binary wire format for {!Netsim.Packet} headers and session control
    frames.

    Layout (big-endian), [header_len] = 31 bytes:

    {v
      0-1   magic 'T' 'F'
      2     version (2)
      3     tag: 0 Data, 1 Tcp_ack, 2 Tfrc_data, 3 Tfrc_feedback,
            4 CLOSE, 5 CLOSE-ACK
      4     flags: bit0 ecn_capable, bit1 ecn_marked, bit2 corrupted
      5-6   session epoch (u16)
      7-10  FNV-1a-32 checksum of bytes 0-6 and 11..end
      11-14 flow id        (u32)
      15-18 sequence       (u32)
      19-22 size in bytes  (u32; the simulated size, not the frame length)
      23-30 sent_at        (IEEE-754 bits, lossless)
      31-   payload, by tag:
              Data           nothing
              Tfrc_data      rtt (8B float bits)
              Tfrc_feedback  p, recv_rate, ts_echo, ts_delay (4 x 8B)
              Tcp_ack        ack (u32), ece (u8), sack count (u16),
                             then lo,hi (u32 each) per sack range
              CLOSE/CLOSE-ACK  nothing (header-only; seq and size are 0)
    v}

    Version 2 adds the session-epoch field and the CLOSE/CLOSE-ACK
    control pair for supervised endpoint lifecycles: a restarted sender
    bumps its epoch so frames from the previous incarnation are
    discarded instead of corrupting RTT/loss state. Version-1 frames
    fail with [Bad_version 1] — rejected cleanly, never misparsed
    (their checksum field lands elsewhere, so even a same-length v1
    frame cannot pass the v2 checksum).

    Floats travel as raw IEEE-754 bits, so every value — nan, -0.,
    denormals — survives the trip bit-for-bit; the sim-vs-wire
    differential depends on that.

    {!decode} is total: any byte string returns [Ok] or [Error], never
    raises. The checksum covers everything except its own field, so a
    corrupted datagram (any flipped bit) is rejected rather than parsed
    into a half-plausible packet. *)

val header_len : int

(** Largest frame {!encode} emits / {!decode} accepts (one UDP datagram). *)
val max_frame : int

val version : int

(** Epochs are u16: [0] (the default for unsupervised endpoints) through
    [max_epoch]. *)
val max_epoch : int

type error =
  | Truncated of { expected : int; got : int }
      (** shorter than its header or its declared payload *)
  | Oversized of { limit : int; got : int }
  | Bad_magic
  | Bad_version of int
  | Bad_tag of int
  | Bad_length of { expected : int; got : int }
      (** trailing or missing payload bytes *)
  | Bad_checksum of { expected : int; got : int }
  | Bad_value of string
      (** structurally valid but semantically impossible field (e.g. a
          non-finite [sent_at]) — only reachable with a correct checksum,
          i.e. a crafted datagram *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [encode ?epoch p] renders [p] as one datagram stamped with the
    session [epoch] (default 0). Raises [Invalid_argument] if a field
    does not fit the format (negative or >2^32-1 counters, epoch outside
    u16, more than 65535 sack ranges) — encoder misuse, not a runtime
    condition. *)
val encode : ?epoch:int -> Netsim.Packet.t -> string

(** Header-only control frames for graceful teardown. [flow] and [now]
    fill the flow-id and [sent_at] fields. *)
val encode_close : epoch:int -> flow:int -> now:float -> string

val encode_close_ack : epoch:int -> flow:int -> now:float -> string

type body =
  | Packet of Netsim.Packet.t
  | Close
  | Close_ack

(** A decoded frame: its session epoch, flow id, and either a packet or
    a control message. For [Packet p], [flow = p.flow]. *)
type msg = { epoch : int; flow : int; body : body }

(** [decode rt s] parses a datagram. A packet's id is drawn fresh from
    [rt] ({!Engine.Runtime.fresh_id}) — wire ids are local to the
    receiving loop, exactly as simulated ids are local to their sim;
    control frames draw nothing. *)
val decode : Engine.Runtime.t -> string -> (msg, error) result

(** [decode_packet rt s] is {!decode} restricted to data-plane frames:
    control frames return [Error (Bad_value _)]. For callers that
    predate the session layer. *)
val decode_packet :
  Engine.Runtime.t -> string -> (Netsim.Packet.t, error) result
